(* jury-cli: ad-hoc front-end to the JURY reproduction.

   Subcommands:
     list                         -- list fault scenarios
     scenario NAME [...]          -- run one fault scenario, print forensics
     matrix [...]                 -- run every scenario N times on a domain
                                     pool, print the detection matrix
     simulate [...]               -- benign run, print validation stats
     validator-scale [...]        -- trigger-rate x shard-count sweep
     policy FILE                  -- parse and lint a policy file (.xml or DSL)

   Shared flags (--nodes, --k, --seed, --shards, --batch-us, ...) are
   declared once in the Common table below and reused by every
   subcommand that understands them. *)

open Cmdliner
module Time = Jury_sim.Time

(* --- shared flag table ---------------------------------------------

   Every tunable that more than one subcommand understands is declared
   exactly once in [Common]; subcommands assemble their option set from
   these rows, so a flag has the same name, default and `--help` text
   everywhere it appears. New shared flags go here, not in a
   subcommand. *)

module Common = struct
  let nodes =
    Arg.(value & opt int 7 & info [ "n"; "nodes" ] ~doc:"Cluster size.")

  let k = Arg.(value & opt int 6 & info [ "k" ] ~doc:"Replication factor.")

  let faulty =
    Arg.(value & opt int 2 & info [ "faulty" ] ~doc:"Id of the faulty replica.")

  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"RNG seed.")

  let switches =
    Arg.(value & opt int 24 & info [ "switches" ] ~doc:"Linear topology size.")

  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for the sweep fan-out (default: \
                   \\$JURY_JOBS if set, else cores - 1; 1 = serial). \
                   Results are byte-identical whatever the value.")

  (* Validator tuning: the sharded/bounded/batched verdict state. The
     three flags travel together as one [tuning] value. *)

  type tuning = {
    shards : int;
    max_inflight : int option;
    batch : Time.t option;
    pipeline_jobs : int;
  }

  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Validator shard-count hint, rounded up to a power of \
                   two (1 = seed behaviour).")

  let max_inflight =
    Arg.(value & opt (some int) None
         & info [ "max-inflight" ]
             ~doc:"High-water mark on undecided triggers; past it the \
                   oldest verdict epoch is force-expired with Overload \
                   verdicts instead of growing without bound.")

  let batch_us =
    Arg.(value & opt (some float) None
         & info [ "batch-us" ] ~docv:"US"
             ~doc:"Batch window in microseconds for response ingestion \
                   (absent = per-event delivery, seed behaviour).")

  let batch_of_us = Option.map Time.of_float_us

  let pipeline_jobs =
    Arg.(value & opt int 1
         & info [ "pipeline-jobs" ] ~docv:"N"
             ~doc:"Intra-run parallelism: run validation as a staged \
                   pipeline over N-1 consumer domains (1 = serial, seed \
                   behaviour; results are identical whatever the value).")

  let tuning =
    let mk shards max_inflight batch_us pipeline_jobs =
      { shards; max_inflight; batch = batch_of_us batch_us; pipeline_jobs }
    in
    Term.(const mk $ shards $ max_inflight $ batch_us $ pipeline_jobs)

  (* Oracle selection is shared by `check --oracle` and `mc --oracle`;
     both resolve through the same name table, so the two subcommands
     accept exactly the same selectors and reject unknown ones with the
     same listing. *)

  let oracle =
    Arg.(value & opt (some string) None
         & info [ "oracle" ] ~docv:"SELECTOR"
             ~doc:"Restrict the battery to one oracle family \
                   ($(b,conservation), $(b,sharding), $(b,batching), \
                   $(b,parallel), $(b,pipeline), $(b,channel), $(b,obs), \
                   $(b,policy)) or one oracle by name; $(b,--oracle) with \
                   an unknown selector lists every valid choice.")

  let resolve_oracles = function
    | None -> Jury_check.Registry.all ()
    | Some sel -> (
        match Jury_check.Registry.resolve sel with
        | Ok os -> os
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 2)
end

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Jury_faults.Scenarios.t) ->
        Printf.printf "%-28s %s  %s\n" s.Jury_faults.Scenarios.name
          (match s.Jury_faults.Scenarios.klass with
          | `T1 -> "T1"
          | `T2 -> "T2"
          | `T3 -> "T3")
          s.Jury_faults.Scenarios.expected_name)
      Jury_faults.Scenarios.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the fault scenario catalog")
    Term.(const run $ const ())

(* --- scenario --- *)

let scenario_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let run name nodes k faulty seed switches (tuning : Common.tuning) =
    match Jury_faults.Scenarios.find name with
    | None ->
        Printf.eprintf "unknown scenario %S; try 'jury-cli list'\n" name;
        exit 2
    | Some scenario ->
        let report =
          Jury_faults.Runner.run ~seed ~nodes ~k ~faulty ~switches
            ~shards:tuning.Common.shards
            ?max_inflight:tuning.Common.max_inflight
            ?batch:tuning.Common.batch
            ~pipeline_jobs:tuning.Common.pipeline_jobs scenario
        in
        Format.printf "%a@." Jury_faults.Runner.pp_report report;
        List.iter
          (fun a -> Format.printf "  %a@." Jury.Alarm.pp a)
          report.Jury_faults.Runner.matching_alarms;
        if not report.Jury_faults.Runner.detected then exit 1
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Inject one fault scenario and report detection")
    Term.(const run $ name_arg $ Common.nodes $ Common.k $ Common.faulty
          $ Common.seed $ Common.switches $ Common.tuning)

(* --- matrix --- *)

let matrix_cmd =
  let repeats_arg =
    Arg.(value & opt int 5
         & info [ "repeats" ] ~doc:"Runs per scenario (paper: 10).")
  in
  let run nodes k faulty seed switches repeats jobs =
    Option.iter Jury_par.Pool.set_default_jobs jobs;
    let results =
      Jury_faults.Runner.run_matrix ~seed ~repeats ~nodes ~k ~faulty
        ~switches Jury_faults.Scenarios.all
    in
    let missed = ref 0 in
    List.iter
      (fun ((scenario : Jury_faults.Scenarios.t), reports) ->
        let detected =
          List.length
            (List.filter (fun r -> r.Jury_faults.Runner.detected) reports)
        in
        if detected < repeats then incr missed;
        Printf.printf "%-28s %s  %d/%d  %s\n" scenario.Jury_faults.Scenarios.name
          (match scenario.Jury_faults.Scenarios.klass with
          | `T1 -> "T1"
          | `T2 -> "T2"
          | `T3 -> "T3")
          detected repeats scenario.Jury_faults.Scenarios.expected_name)
      results;
    if !missed > 0 then begin
      Printf.printf "%d scenario(s) with missed detections\n" !missed;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Run every fault scenario repeatedly on a domain pool and \
             print the detection matrix")
    Term.(const run $ Common.nodes $ Common.k $ Common.faulty $ Common.seed
          $ Common.switches $ repeats_arg $ Common.jobs)

(* --- simulate --- *)

let simulate_cmd =
  let profile_arg =
    Arg.(value
         & opt (enum [ ("onos", `Onos); ("odl", `Odl); ("ryu", `Ryu) ]) `Onos
         & info [ "profile" ]
             ~doc:"Controller flavour: onos, odl, or ryu (standalone — \
                   JURY validates in state-blind response-voting mode).")
  in
  let election_arg =
    Arg.(value & opt (some int) None
         & info [ "election-ms" ] ~docv:"MS"
             ~doc:"Enable dynamic master election with this heartbeat \
                   period (ms); a node missing 2 beats is declared dead \
                   and its switches fail over to the new term's master.")
  in
  let rate_arg =
    Arg.(value & opt float 1000. & info [ "rate" ] ~doc:"PACKET_IN rate.")
  in
  let duration_arg =
    Arg.(value & opt int 5 & info [ "duration" ] ~doc:"Seconds of workload.")
  in
  let drop_arg =
    Arg.(value & opt float 0.
         & info [ "drop" ]
             ~doc:"Per-message loss probability on every replication and \
                   response link (0 = reliable, seed behaviour).")
  in
  let duplicate_arg =
    Arg.(value & opt float 0.
         & info [ "duplicate" ]
             ~doc:"Probability a delivered message is duplicated.")
  in
  let jitter_arg =
    Arg.(value & opt float 0.
         & info [ "jitter-us" ]
             ~doc:"Mean exponential reorder jitter (microseconds) added to \
                   channel delays.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ]
             ~doc:"Retransmission rounds per straggling secondary (0 = \
                   none).")
  in
  let degraded_arg =
    Arg.(value & opt (some int) None
         & info [ "degraded-quorum" ]
             ~doc:"Allow reduced-quorum ok-degraded verdicts at this quorum \
                   size.")
  in
  let run profile nodes k rate duration seed switches drop duplicate jitter_us
      retries degraded_quorum election_ms (tuning : Common.tuning) =
    let profile =
      match profile with
      | `Onos -> Jury_controller.Profile.onos
      | `Odl -> Jury_controller.Profile.odl
      | `Ryu -> Jury_controller.Profile.ryu
    in
    let engine = Jury_sim.Engine.create ~seed () in
    let plan =
      Jury_topo.Builder.linear ~switches ~hosts_per_switch:1
    in
    let network = Jury_net.Network.create engine plan () in
    let cluster =
      Jury_controller.Cluster.create engine ~profile ~nodes ~network ()
    in
    let channel =
      if drop = 0. && duplicate = 0. && jitter_us = 0. then
        Jury.Channel.reliable
      else Jury.Jury_config.lossy_channel ~drop ~duplicate ~jitter_us ()
    in
    let retransmit =
      if retries > 0 then
        Some (Jury.Jury_config.retransmit ~max_retries:retries ())
      else None
    in
    let election =
      Option.map
        (fun ms ->
          { Jury_controller.Cluster.period = Time.ms ms; timeout_beats = 2 })
        election_ms
    in
    let deployment =
      Jury.Jury_config.install cluster
        (Jury.Jury_config.make ~k ~channel ?retransmit ?degraded_quorum
           ~shards:tuning.Common.shards
           ?max_inflight:tuning.Common.max_inflight ?batch:tuning.Common.batch
           ~pipeline_jobs:tuning.Common.pipeline_jobs ?election ())
    in
    let validator = Jury.Deployment.validator deployment in
    Jury_controller.Cluster.converge cluster;
    List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
    Jury_sim.Engine.run engine
      ~until:(Time.add (Jury_sim.Engine.now engine) (Time.sec 1));
    let rng = Jury_sim.Rng.split (Jury_sim.Engine.rng engine) in
    Jury_workload.Flows.controlled_mix network ~rng ~packet_in_rate:rate
      ~duration:(Time.sec duration);
    Jury_sim.Engine.run engine
      ~until:(Time.add (Jury_sim.Engine.now engine) (Time.sec (duration + 2)));
    Jury.Validator.drain_pipeline validator;
    let report = Jury.Report.of_validator validator in
    print_string (Jury.Report.to_string report);
    if Jury_controller.Cluster.election_enabled cluster then
      Printf.printf "election: term %d, leader %d, alive [%s]\n"
        (Jury_controller.Cluster.current_term cluster)
        (Jury_controller.Cluster.leader cluster)
        (String.concat ", "
           (List.map string_of_int
              (Jury_controller.Cluster.alive_nodes cluster)));
    Printf.printf
      "overheads: store %d bytes, jury replication %d bytes, validator %d \
       bytes\n"
      (Jury_store.Fabric.bytes_replicated
         (Jury_controller.Cluster.fabric cluster))
      (Jury.Deployment.replication_bytes deployment)
      (Jury.Deployment.validator_bytes deployment);
    if not (Jury.Channel.is_reliable channel) || retries > 0 then begin
      Format.printf "channels (all links): %a@." Jury.Channel.pp_stats
        (Jury.Deployment.channel_totals deployment);
      Printf.printf
        "validator: %d retransmit request(s), %d duplicate(s) discarded, %d \
         late, %d straggler slot(s), %d degraded verdict(s)\n"
        (Jury.Validator.retransmit_count validator)
        (Jury.Validator.duplicate_count validator)
        (Jury.Validator.late_count validator)
        (Jury.Validator.straggler_count validator)
        (Jury.Validator.degraded_count validator)
    end;
    if
      tuning.Common.shards > 1
      || tuning.Common.batch <> None
      || tuning.Common.max_inflight <> None
    then begin
      Printf.printf
        "validator: %d shard(s), %d batch(es) carrying %d response(s), %d \
         overload verdict(s)\n"
        (Jury.Validator.shard_count validator)
        (Jury.Validator.batch_count validator)
        (Jury.Validator.batched_response_count validator)
        (Jury.Validator.overload_count validator);
      List.iter
        (fun (s : Jury.Validator.shard_stats) ->
          Printf.printf "  shard %d: decided %d, batches %d, overloads %d\n"
            s.Jury.Validator.shard_index s.Jury.Validator.shard_decided
            s.Jury.Validator.shard_batches s.Jury.Validator.shard_overloads)
        (Jury.Validator.shard_stats validator)
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a benign workload on a JURY-enhanced cluster, optionally \
             over lossy channels")
    Term.(const run $ profile_arg $ Common.nodes $ Common.k $ rate_arg
          $ duration_arg $ Common.seed $ Common.switches $ drop_arg
          $ duplicate_arg $ jitter_arg $ retries_arg $ degraded_arg
          $ election_arg $ Common.tuning)

(* --- failover --- *)

let failover_cmd =
  let run nodes k seed switches =
    let engine = Jury_sim.Engine.create ~seed () in
    let plan = Jury_topo.Builder.linear ~switches ~hosts_per_switch:1 in
    let network = Jury_net.Network.create engine plan () in
    let cluster =
      Jury_controller.Cluster.create engine
        ~profile:Jury_controller.Profile.onos ~nodes ~network ()
    in
    let deployment =
      Jury.Jury_config.install cluster (Jury.Jury_config.make ~k ())
    in
    Jury_controller.Cluster.converge cluster;
    List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
    Jury_sim.Engine.run engine
      ~until:(Time.add (Jury_sim.Engine.now engine) (Time.sec 1));
    let victim = 1 in
    Printf.printf "crashing replica %d and failing over its switches...\n"
      victim;
    Jury_faults.Injector.crash cluster ~node:victim;
    Jury_controller.Cluster.fail_over cluster ~node:victim;
    Jury_sim.Engine.run engine
      ~until:(Time.add (Jury_sim.Engine.now engine) (Time.sec 2));
    Printf.printf "alive replicas: [%s]\n"
      (String.concat ", "
         (List.map string_of_int
            (Jury_controller.Cluster.alive_nodes cluster)));
    (* Push traffic through a reassigned switch to show service resumed. *)
    let h0 = Jury_net.Network.host network 0 in
    let h_last =
      Jury_net.Network.host network (switches - 1)
    in
    Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac h_last)
      ~dst_ip:(Jury_net.Host.ip h_last) ~src_port:9000 ~dst_port:80 ();
    Jury_sim.Engine.run engine
      ~until:(Time.add (Jury_sim.Engine.now engine) (Time.sec 2));
    Printf.printf "traffic after failover: %s\n"
      (if Jury_net.Host.received_count h_last > 0 then "delivered"
       else "LOST");
    print_string
      (Jury.Report.to_string
         (Jury.Report.of_validator (Jury.Deployment.validator deployment)))
  in
  Cmd.v
    (Cmd.info "failover"
       ~doc:"Crash a replica, fail its switches over, verify service")
    Term.(const run $ Common.nodes $ Common.k $ Common.seed $ Common.switches)

(* --- trace --- *)

let trace_cmd =
  let scenario_arg =
    Arg.(value & opt (some string) None
         & info [ "scenario" ]
             ~doc:"Fault scenario to run under the trace (default: a short \
                   benign ONOS workload).")
  in
  let taint_arg =
    Arg.(value & opt (some string) None
         & info [ "taint" ] ~doc:"Focus on one taint, e.g. ext:0:17.")
  in
  let node_arg =
    Arg.(value & opt (some int) None
         & info [ "node" ] ~doc:"Filter exported events by controller id.")
  in
  let phase_arg =
    Arg.(value & opt (some string) None
         & info [ "phase" ]
             ~doc:"Filter exported events by phase (trigger, intercept, \
                   replicate, pipeline-service, cache-write, net-write, \
                   validate, verdict).")
  in
  let jsonl_arg =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Write the (filtered) events to FILE as JSONL.")
  in
  let run scenario nodes k seed switches taint_f node_f phase_f jsonl =
    let trace = Jury_obs.Trace.create ~capacity:500_000 () in
    let focus =
      match scenario with
      | Some name -> (
          match Jury_faults.Scenarios.find name with
          | None ->
              Printf.eprintf "unknown scenario %S; try 'jury-cli list'\n" name;
              exit 2
          | Some sc ->
              let report =
                Jury_faults.Runner.run ~seed ~nodes ~k ~switches ~trace sc
              in
              Format.printf "%a@." Jury_faults.Runner.pp_report report;
              (match report.Jury_faults.Runner.matching_alarms with
              | a :: _ ->
                  Some
                    (Jury_controller.Types.Taint.to_string a.Jury.Alarm.taint)
              | [] -> None))
      | None ->
          let engine = Jury_sim.Engine.create ~seed () in
          Jury_sim.Engine.set_trace engine trace;
          let plan = Jury_topo.Builder.linear ~switches ~hosts_per_switch:1 in
          let network = Jury_net.Network.create engine plan () in
          let cluster =
            Jury_controller.Cluster.create engine
              ~profile:Jury_controller.Profile.onos ~nodes ~network ()
          in
          ignore
            (Jury.Jury_config.install cluster (Jury.Jury_config.make ~k ()));
          Jury_controller.Cluster.converge cluster;
          List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
          Jury_sim.Engine.run engine
            ~until:(Time.add (Jury_sim.Engine.now engine) (Time.sec 1));
          let rng = Jury_sim.Rng.split (Jury_sim.Engine.rng engine) in
          Jury_workload.Flows.controlled_mix network ~rng ~packet_in_rate:500.
            ~duration:(Time.sec 2);
          Jury_sim.Engine.run engine
            ~until:(Time.add (Jury_sim.Engine.now engine) (Time.sec 3));
          None
    in
    let events = Jury_obs.Trace.events trace in
    let phase_f =
      match phase_f with
      | None -> None
      | Some p -> (
          match Jury_obs.Trace.phase_of_name p with
          | Some _ as ph -> ph
          | None ->
              Printf.eprintf "unknown phase %S\n" p;
              exit 2)
    in
    let filtered =
      Jury_obs.Export.query ?taint:taint_f ?node:node_f ?phase:phase_f events
    in
    let roots = Jury_obs.Span.assemble events in
    Printf.printf "trace: %d event(s) (%d dropped), %d after filters, %d root \
                   span(s)\n"
      (List.length events)
      (Jury_obs.Trace.dropped trace)
      (List.length filtered) (List.length roots);
    (match jsonl with
    | Some file ->
        Jury_obs.Export.write_file file filtered;
        Printf.printf "wrote %d event(s) to %s\n" (List.length filtered) file
    | None -> ());
    let target =
      match (taint_f, focus) with
      | Some taint, _ | None, Some taint -> Jury_obs.Span.find roots ~taint
      | None, None ->
          (* Longest closed root: the most interesting trigger. *)
          List.fold_left
            (fun best root ->
              match (Jury_obs.Span.duration_ns root, best) with
              | None, _ -> best
              | Some d, Some (best_d, _) when d <= best_d -> best
              | Some d, _ -> Some (d, root))
            None roots
          |> Option.map snd
    in
    match target with
    | None -> print_endline "no matching root span to render"
    | Some root -> print_string (Jury_obs.Span.render_timeline root)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run with the causal trace enabled and render a trigger timeline")
    Term.(const run $ scenario_arg $ Common.nodes $ Common.k $ Common.seed
          $ Common.switches $ taint_arg $ node_arg $ phase_arg $ jsonl_arg)

(* --- validator-scale --- *)

let validator_scale_cmd =
  let rates_arg =
    Arg.(value & opt (list float) [ 1000.; 3000. ]
         & info [ "rates" ] ~docv:"R1,R2,..."
             ~doc:"PACKET_IN rates to sweep.")
  in
  let shards_list_arg =
    Arg.(value & opt (list int) [ 1; 2; 4 ]
         & info [ "shard-counts" ] ~docv:"S1,S2,..."
             ~doc:"Shard counts to sweep (each rounded up to a power of \
                   two).")
  in
  let duration_arg =
    Arg.(value & opt int 3 & info [ "duration" ] ~doc:"Seconds of workload.")
  in
  let run seed duration rates shard_counts jobs max_inflight batch_us =
    Option.iter Jury_par.Pool.set_default_jobs jobs;
    let rows =
      Jury_experiments.Figures.validator_scale ~seed
        ~duration:(Time.sec duration) ~rates ~shard_counts ?max_inflight
        ?batch:(Common.batch_of_us batch_us) ()
    in
    Printf.printf "%-8s %-7s %-8s %-11s %-8s %s\n" "rate" "shards" "decided"
      "verdicts/s" "batches" "per-shard batches";
    List.iter
      (fun (r : Jury_experiments.Figures.scale_row) ->
        Printf.printf "%-8.0f %-7d %-8d %-11.0f %-8d %s\n"
          r.Jury_experiments.Figures.vs_rate r.Jury_experiments.Figures.vs_shards
          r.Jury_experiments.Figures.vs_decided
          r.Jury_experiments.Figures.vs_verdicts_per_s
          r.Jury_experiments.Figures.vs_batches
          (String.concat "/"
             (List.map string_of_int
                r.Jury_experiments.Figures.vs_shard_batches)))
      rows
  in
  Cmd.v
    (Cmd.info "validator-scale"
       ~doc:"Sweep trigger rate x validator shard count with batched \
             response ingestion and print per-shard throughput")
    Term.(const run $ Common.seed $ duration_arg $ rates_arg $ shards_list_arg
          $ Common.jobs $ Common.max_inflight $ Common.batch_us)

(* --- policy --- *)

let policy_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    let src =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let parsed =
      if Filename.check_suffix file ".xml" then Jury_policy.Parse.xml src
      else Jury_policy.Parse.dsl src
    in
    match parsed with
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 1
    | Ok rules ->
        Printf.printf "%d rule(s):\n" (List.length rules);
        List.iter
          (fun r -> Format.printf "  %a@." Jury_policy.Ast.pp_rule r)
          rules
  in
  Cmd.v (Cmd.info "policy" ~doc:"Parse and lint a policy file")
    Term.(const run $ file_arg)

let check_cmd =
  let cases_arg =
    Arg.(value & opt int 100
         & info [ "cases" ] ~docv:"N" ~doc:"Number of random cases to fuzz.")
  in
  let max_shrink_arg =
    Arg.(value & opt int 200
         & info [ "max-shrink" ] ~docv:"N"
             ~doc:"Re-execution budget for minimising each failing case \
                   (0 disables shrinking).")
  in
  let fuzz_arg =
    Arg.(value & flag
         & info [ "fuzz" ]
             ~doc:"Coverage-guided mode: seed a corpus with blind cases, \
                   then spend the remaining $(b,--budget) mutating corpus \
                   entries (including the stateful fault levers — \
                   crash-rejoin, Byzantine, store partition, policy churn — \
                   that blind generation never draws), admitting mutants \
                   that exhibit new behaviour features.")
  in
  let budget_arg =
    Arg.(value & opt int 60
         & info [ "budget" ] ~docv:"N"
             ~doc:"Guided mode: total primary executions (seeding included).")
  in
  let seed_cases_arg =
    Arg.(value & opt (some int) None
         & info [ "seed-cases" ] ~docv:"N"
             ~doc:"Guided mode: blind cases seeding the corpus (default \
                   three quarters of the budget).")
  in
  let corpus_out_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus-out" ] ~docv:"FILE"
             ~doc:"Guided mode: write the final corpus (one replayable \
                   lineage per line, with its novel features) to FILE.")
  in
  let compare_blind_arg =
    Arg.(value & flag
         & info [ "compare-blind" ]
             ~doc:"Guided mode: also run the same budget of purely blind \
                   cases and report both feature counts.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"LINEAGE"
             ~doc:"Replay one corpus lineage (e.g. 'seed=42 \
                   fault-inject@7') and run the oracle battery on the \
                   reconstructed case.")
  in
  let run_replay lineage oracles max_shrink =
    match Jury_check.Corpus.lineage_of_string lineage with
    | Error msg ->
        Printf.eprintf "bad lineage: %s\n" msg;
        exit 2
    | Ok (base_seed, trace) ->
        let case = Jury_check.Corpus.replay_trace ~base_seed ~trace in
        Printf.printf "replaying %s\n  case: %s\n%!" lineage
          (Format.asprintf "%a" Jury_check.Case.pp case);
        (match Jury_check.Oracle.check_case ~oracles case with
        | [] -> Printf.printf "case upholds every selected invariant\n"
        | violations ->
            let f =
              { Jury_check.Fuzz.lineage; case; violations;
                shrink =
                  (if max_shrink <= 0 then None
                   else
                     Some
                       (Jury_check.Shrink.minimise ~max_steps:max_shrink
                          ~oracles case violations)) }
            in
            print_endline (Jury_check.Fuzz.repro f);
            exit 1)
  in
  let run_fuzz budget seed seed_cases corpus_out compare_blind selector
      max_shrink =
    let oracles =
      match selector with
      | None -> Jury_check.Fuzz.default_oracles ()
      | Some _ -> Common.resolve_oracles selector
    in
    Printf.printf
      "guided fuzzing: budget %d from seed %d (%d oracle(s))\n%!" budget seed
      (List.length oracles);
    let summary =
      Jury_check.Fuzz.run ~log:print_endline ~oracles ?seed_cases ~max_shrink
        ~budget ~seed ()
    in
    let corpus = summary.Jury_check.Fuzz.corpus in
    Printf.printf
      "guided: %d execution(s), corpus %d, %d coverage feature(s) (blind \
       baseline after seeding: %d)\n"
      summary.Jury_check.Fuzz.executed
      (Jury_check.Corpus.size corpus)
      (Jury_check.Corpus.feature_count corpus)
      summary.Jury_check.Fuzz.blind_features;
    (match corpus_out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        List.iter
          (fun (e : Jury_check.Corpus.entry) ->
            Printf.fprintf oc "%s %s # novel: %s\n" e.Jury_check.Corpus.id
              (Jury_check.Corpus.lineage e)
              (String.concat "," e.Jury_check.Corpus.novel))
          (Jury_check.Corpus.entries corpus);
        close_out oc;
        Printf.printf "corpus written to %s\n" file);
    if compare_blind then begin
      let blind =
        Jury_check.Fuzz.blind_feature_count ~cases:budget ~seed ()
      in
      Printf.printf "same-budget blind: %d feature(s); guided: %d (%+d)\n"
        blind
        (Jury_check.Corpus.feature_count corpus)
        (Jury_check.Corpus.feature_count corpus - blind)
    end;
    if summary.Jury_check.Fuzz.failures <> [] then begin
      Printf.printf "%d mutant(s) FAILED the battery\n"
        (List.length summary.Jury_check.Fuzz.failures);
      exit 1
    end
  in
  let run cases seed jobs max_shrink selector fuzz budget seed_cases
      corpus_out compare_blind replay =
    match replay with
    | Some lineage ->
        run_replay lineage (Common.resolve_oracles selector) max_shrink
    | None ->
        if fuzz then
          run_fuzz budget seed seed_cases corpus_out compare_blind selector
            max_shrink
        else begin
          let oracles = Common.resolve_oracles selector in
          let jobs = Option.value jobs ~default:1 in
          Printf.printf
            "fuzzing %d case(s) from seed %d (%d oracle(s), %d job(s))\n%!"
            cases seed (List.length oracles) jobs;
          let summary =
            Jury_check.Harness.run ~log:print_endline ~jobs ~oracles
              ~max_shrink ~cases ~seed ()
          in
          match summary.Jury_check.Harness.failures with
          | [] ->
              Printf.printf "all %d case(s) upheld every invariant\n"
                summary.Jury_check.Harness.cases
          | fs ->
              Printf.printf "%d of %d case(s) FAILED\n" (List.length fs)
                summary.Jury_check.Harness.cases;
              exit 1
        end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Property-based fuzzing of the validator invariants"
       ~man:
         [ `S Manpage.s_description;
           `P "Generates random cases (topology, workload, fault schedule, \
               channel and validator configuration), runs each through the \
               full deployment, and checks the oracle battery: verdict \
               conservation, shard-count independence, batching and \
               serial/parallel equivalence, pipeline-job independence, \
               channel counter conservation and observability \
               consistency.";
           `P "Case $(i,i) of a run with --seed $(i,s) is generated from \
               seed $(i,s+i); every failure report prints that per-case \
               seed, and $(b,check --cases 1 --seed) $(i,s+i) replays the \
               case bit-for-bit. Failing cases are shrunk to a minimal \
               repro and printed as a corpus entry for test/repros.";
           `P "$(b,--fuzz) switches to coverage-guided mode: blind cases \
               seed a corpus, mutation explores from it (fault-schedule \
               splice/duplicate/shift/inject — including the stateful \
               crash-rejoin, Byzantine, partition and policy-churn levers \
               blind mode never draws — plus workload bursts and knob \
               churn), and a mutant is kept iff it exhibits a behaviour \
               feature no earlier run did. Every corpus entry replays \
               bit-identically from its printed lineage via \
               $(b,check --replay)." ])
    Term.(const run $ cases_arg $ Common.seed $ Common.jobs $ max_shrink_arg
          $ Common.oracle $ fuzz_arg $ budget_arg $ seed_cases_arg
          $ corpus_out_arg $ compare_blind_arg $ replay_arg)

let mc_cmd =
  let module Explorer = Jury_mc.Explorer in
  let module Trace = Jury_mc.Trace in
  let switches_arg =
    Arg.(value & opt int 2
         & info [ "switches" ] ~docv:"N"
             ~doc:"Switches in the explored deployment (1-3).")
  in
  let triggers_arg =
    Arg.(value & opt int 3
         & info [ "triggers" ] ~docv:"N"
             ~doc:"Approximate trigger budget of the workload (1-5).")
  in
  let nodes_arg =
    Arg.(value & opt int 3
         & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size (2-5).")
  in
  let max_schedules_arg =
    Arg.(value & opt int 1000
         & info [ "max-schedules" ] ~docv:"N"
             ~doc:"Stop after executing N schedules (bounded mode; the \
                   report says when the bound truncated enumeration).")
  in
  let max_depth_arg =
    Arg.(value & opt (some int) None
         & info [ "max-depth" ] ~docv:"N"
             ~doc:"Stop branching past N choice points per schedule \
                   (deeper ties take the default order).")
  in
  let no_prune_arg =
    Arg.(value & flag
         & info [ "no-prune" ]
             ~doc:"Disable independence pruning: enumerate every \
                   tie-break order naively. Only useful to measure what \
                   pruning saves.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"TRACE"
             ~doc:"Replay one schedule instead of exploring: a \
                   dot-separated choice trace as printed in divergence \
                   reports ($(b,-) for the default FIFO schedule).")
  in
  let minimise_arg =
    Arg.(value & flag
         & info [ "minimise" ]
             ~doc:"On divergence, shrink the case and trace to a minimal \
                   counterexample and print it as a repro corpus entry.")
  in
  let run seed switches triggers nodes selector max_schedules max_depth
      no_prune trace_str minimise =
    let case =
      try Explorer.demo_case ~seed ~switches ~triggers ~nodes ()
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    (* `--oracle none` skips the battery (schedule-blindness only);
       anything else goes through the shared name table. *)
    let oracles =
      match selector with
      | Some "none" -> []
      | sel -> Common.resolve_oracles sel
    in
    let max_depth = Option.value max_depth ~default:max_int in
    match trace_str with
    | Some s -> (
        match Trace.of_string s with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 2
        | Ok trace -> (
            let outcome, div = Explorer.replay ~oracles case trace in
            Printf.printf
              "replayed schedule %s: %d decided, %d fault(s), %d \
               unverifiable, %d degraded\n"
              (Trace.to_string trace) outcome.Jury_check.Run.fp.decided
              outcome.Jury_check.Run.fp.faults
              outcome.Jury_check.Run.fp.unverifiable
              outcome.Jury_check.Run.fp.degraded;
            match div with
            | None ->
                Printf.printf
                  "schedule agrees with the FIFO reference (%d oracle(s) \
                   green)\n"
                  (List.length oracles)
            | Some d ->
                Printf.printf "DIVERGENCE %s\n"
                  (Explorer.describe_divergence d);
                exit 1))
    | None -> (
        Format.printf "mc: exploring %a@." Jury_check.Case.pp case;
        let r =
          Explorer.explore ~prune:(not no_prune) ~max_schedules ~max_depth
            ~oracles case
        in
        let s = r.Explorer.rep_stats in
        Printf.printf
          "%s%d schedule(s) explored (%d choice points, deepest %d): %d \
           branch(es) taken, %d pruned as independent\n"
          (if s.Explorer.truncated then "TRUNCATED: " else "")
          s.Explorer.explored s.Explorer.choice_points s.Explorer.deepest
          s.Explorer.branched s.Explorer.pruned;
        Printf.printf
          "reference schedule: %d decided, %d fault(s), %d oracle(s) per \
           schedule\n"
          r.Explorer.rep_reference.Jury_check.Run.fp.decided
          r.Explorer.rep_reference.Jury_check.Run.fp.faults
          (List.length oracles);
        match r.Explorer.rep_divergences with
        | [] ->
            Printf.printf
              "every explored schedule agrees with the FIFO reference\n"
        | ds ->
            Printf.printf "%d DIVERGENT schedule(s):\n" (List.length ds);
            List.iter
              (fun d ->
                Printf.printf "  %s\n" (Explorer.describe_divergence d))
              ds;
            if minimise then begin
              match Explorer.minimise ~max_schedules ~max_depth ~oracles case with
              | Error msg -> Printf.printf "minimise: %s\n" msg
              | Ok m ->
                  Printf.printf
                    "minimised to trace %s (%d step(s), %d reduction(s)); \
                     repro:\n%s\n"
                    (Trace.to_string m.Explorer.min_trace)
                    m.Explorer.min_steps m.Explorer.min_shrunk
                    (Jury_check.Case.to_ocaml m.Explorer.min_case)
            end;
            exit 1)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Exhaustively explore event-schedule tie-breaks on a small \
             deployment"
       ~man:
         [ `S Manpage.s_description;
           `P "Enumerates every tie-break order of the event queue for a \
               small benign deployment (jitter-free latencies, so \
               same-instant events are the only scheduling freedom), \
               pruning orders of provably-commuting events via declared \
               footprints, and checks on every schedule that JURY's \
               verdicts match the default schedule and that the oracle \
               battery holds.";
           `P "A divergence report prints a compact choice trace; \
               $(b,mc --trace) replays exactly that schedule, and \
               $(b,mc --minimise) shrinks case and trace to a minimal \
               repro." ])
    Term.(const run $ Common.seed $ switches_arg $ triggers_arg $ nodes_arg
          $ Common.oracle $ max_schedules_arg $ max_depth_arg $ no_prune_arg
          $ trace_arg $ minimise_arg)

let () =
  let info =
    Cmd.info "jury-cli"
      ~doc:"Ad-hoc driver for the JURY controller-validation reproduction"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; scenario_cmd; matrix_cmd; simulate_cmd; failover_cmd;
            trace_cmd; validator_scale_cmd; policy_cmd; check_cmd; mc_cmd ]))
