(* Network debugging: the operational tooling around JURY —
   - packet capture on the data plane (OFRewind-style recording),
   - latency-weighted path inspection,
   - the administrator's aggregated alarm report.

     dune exec examples/network_debugging.exe *)

open Jury_sim
module Builder = Jury_topo.Builder
module Graph = Jury_topo.Graph
module Weighted = Jury_topo.Weighted
module Network = Jury_net.Network
module Capture = Jury_net.Capture
module Host = Jury_net.Host
module Cluster = Jury_controller.Cluster
module Dpid = Jury_openflow.Of_types.Dpid

let () =
  let engine = Engine.create ~seed:5 () in
  let plan = Builder.ring ~switches:5 ~hosts_per_switch:1 in
  let network = Network.create engine plan () in
  let cluster =
    Cluster.create engine ~profile:Jury_controller.Profile.onos ~nodes:3
      ~network ()
  in
  let deployment =
    Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:2 ())
  in
  (* Tap every switch before any traffic flows. *)
  let capture = Capture.create ~capacity:5_000 engine in
  List.iter (Capture.tap_switch capture) (Network.switches network);
  Cluster.converge cluster;
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));

  (* 1. Weighted routing: on the ring, going clockwise or counter-
     clockwise differs once we weight a link as congested. *)
  let g = plan.Builder.graph in
  let d = Dpid.of_int in
  (match Weighted.shortest_path g Weighted.uniform (d 1) (d 3) with
  | Some (hops, w) ->
      Printf.printf "uniform route 1 -> 3: %d hops, weight %.0f\n"
        (List.length hops) w
  | None -> ());
  let congested =
    Graph.edges g
    |> List.filter_map (fun (e : Graph.edge) ->
           if Dpid.equal e.Graph.a.Graph.dpid (d 2)
              || Dpid.equal e.Graph.b.Graph.dpid (d 2)
           then Some (e.Graph.a, e.Graph.b, 10.)
           else None)
  in
  (match
     Weighted.shortest_path g (Weighted.of_assignments congested) (d 1) (d 3)
   with
  | Some (hops, w) ->
      Printf.printf
        "with switch 2's links weighted 10x: %d hops, weight %.0f (detours \
         around the congestion)\n"
        (List.length hops) w
  | None -> ());

  (* 2. Drive a flow and look at what the capture recorded. *)
  let t0 = Engine.now engine in
  let h0 = Network.host network 0 and h2 = Network.host network 2 in
  Host.send_tcp h0 ~dst_mac:(Host.mac h2) ~dst_ip:(Host.ip h2) ~src_port:5000
    ~dst_port:80 ();
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  let tcp_entries =
    Capture.between capture ~since:t0 ~until:(Engine.now engine)
    |> List.filter (fun (e : Capture.entry) ->
           match e.Capture.frame.Jury_packet.Frame.payload with
           | Jury_packet.Frame.Ipv4 _ -> true
           | _ -> false)
  in
  Printf.printf "\ncapture: %d frames total, TCP movements of the new flow:\n"
    (Capture.count capture);
  List.iteri
    (fun i e -> if i < 6 then Format.printf "  %a@." Capture.pp_entry e)
    tcp_entries;

  (* 3. The administrator's report after some background churn. *)
  let rng = Rng.split (Engine.rng engine) in
  Jury_workload.Flows.controlled_mix network ~rng ~packet_in_rate:300.
    ~duration:(Time.sec 3);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 5));
  print_newline ();
  print_string
    (Jury.Report.to_string
       (Jury.Report.of_validator (Jury.Deployment.validator deployment)))
