(* Policy audit: author administrator policies in both supported
   syntaxes (the paper's Fig. 3 XML form and the compact DSL), install
   them into JURY's validator, and demonstrate that a T3 fault —
   consistent cache and network writes that are nevertheless wrong — is
   caught only by policy (§V, §VII-A1 synthetic fault 3).

     dune exec examples/policy_audit.exe *)

open Jury_sim
module Builder = Jury_topo.Builder
module Network = Jury_net.Network
module Host = Jury_net.Host
module Cluster = Jury_controller.Cluster
module Controller = Jury_controller.Controller
module Types = Jury_controller.Types
module Values = Jury_controller.Values
module Graph = Jury_topo.Graph

(* The exact policy from the paper's Fig. 3: alarm whenever any
   controller proactively modifies the topology caches. *)
let fig3_xml =
  {|<Policy allow="No" name="no-proactive-topology">
      <Controller id="*"/>
      <Action type="Internal"/>
      <Cache ="EdgesDB" entry="*,*" operation="*"/>
      <Destination value="*"/>
    </Policy>
    <Policy allow="No" name="no-proactive-links">
      <Controller id="*"/>
      <Action type="Internal"/>
      <Cache ="LinksDB" entry="*,*" operation="*"/>
      <Destination value="*"/>
    </Policy>|}

(* The same idea in the compact DSL, plus the OF 1.0 field-hierarchy
   guard that catches the "ODL incorrect FLOW_MOD" fault. *)
let dsl =
  "deny name=flow-field-hierarchy cache=FLOWSDB check=flow-hierarchy\n\
   deny name=no-drop-rules cache=FLOWSDB check=flow-drop trigger=external"

let () =
  let xml_rules =
    match Jury_policy.Parse.xml fig3_xml with
    | Ok rules -> rules
    | Error e -> failwith ("XML policy: " ^ e)
  in
  let dsl_rules =
    match Jury_policy.Parse.dsl dsl with
    | Ok rules -> rules
    | Error e -> failwith ("DSL policy: " ^ e)
  in
  let policies = Jury_policy.Engine.create (xml_rules @ dsl_rules) in
  Printf.printf "loaded %d policies:\n" (Jury_policy.Engine.rule_count policies);
  List.iter
    (fun r -> Format.printf "  %a@." Jury_policy.Ast.pp_rule r)
    (Jury_policy.Engine.rules policies);

  let engine = Engine.create ~seed:7 () in
  let plan = Builder.linear ~switches:6 ~hosts_per_switch:1 in
  let network = Network.create engine plan () in
  let cluster =
    Cluster.create engine ~profile:Jury_controller.Profile.onos ~nodes:5
      ~network ()
  in
  let deployment =
    Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:2 ~policies ())
  in
  let validator = Jury.Deployment.validator deployment in
  Cluster.converge cluster;
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));

  (* A rogue proactive application on replica 3 marks a healthy link as
     down. Cache and network stay consistent — consensus and sanity
     checks have nothing to say — but the Fig. 3 policy fires. *)
  Printf.printf "\nrogue proactive app on replica 3 disables a core link...\n";
  let edge = List.hd (Graph.edges plan.Builder.graph) in
  Controller.run_internal
    (Cluster.controller cluster 3)
    ~app:"rogue-traffic-engineering"
    (Types.Proactive
       [ Types.Cache_write
           { cache = Jury_store.Cache_names.linksdb;
             op = Jury_store.Event.Update;
             key =
               Values.Link.key
                 (edge.Graph.a.Graph.dpid, edge.Graph.a.Graph.port)
                 (edge.Graph.b.Graph.dpid, edge.Graph.b.Graph.port);
             value = Values.Link.value_down } ]);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  List.iter
    (fun a -> Format.printf "  !! %a@." Jury.Alarm.pp a)
    (Jury.Validator.alarms validator);

  (* And an administrator pushes a FLOW_MOD whose match violates the
     OF 1.0 field hierarchy — the T3 fault the hierarchy policy guards
     against. *)
  Printf.printf "\nadministrator installs a hierarchy-violating flow...\n";
  let bad_match =
    { Jury_openflow.Of_match.wildcard_all with
      Jury_openflow.Of_match.tp_dst = Some 80 }
  in
  Cluster.rest cluster ~node:0
    (Types.Install_flow
       { dpid = Jury_openflow.Of_types.Dpid.of_int 1;
         flow =
           Jury_openflow.Of_message.flow_mod ~priority:400 bad_match
             [ Jury_openflow.Of_action.Output 1 ] });
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  let alarms = Jury.Validator.alarms validator in
  List.iter (fun a -> Format.printf "  !! %a@." Jury.Alarm.pp a) alarms;
  Printf.printf "\n%d alarm(s) total — both T3 faults caught by policy.\n"
    (List.length alarms)
