(* Trace replay: drive a JURY-enhanced ONOS cluster with the three
   benign background-traffic profiles standing in for the paper's
   LBNL / UNIV / SMIA traces, and report the false-alarm rate and
   validation-latency distribution per trace (the Fig. 4d experiment).

     dune exec examples/trace_replay.exe *)

open Jury_sim
module Builder = Jury_topo.Builder
module Network = Jury_net.Network
module Host = Jury_net.Host
module Cluster = Jury_controller.Cluster
module Traces = Jury_workload.Traces
module Summary = Jury_stats.Summary

let run_trace (profile : Traces.profile) =
  let engine = Engine.create ~seed:99 () in
  let plan = Builder.linear ~switches:12 ~hosts_per_switch:2 in
  let network = Network.create engine plan () in
  let cluster =
    Cluster.create engine ~profile:Jury_controller.Profile.onos ~nodes:7
      ~network ()
  in
  let deployment =
    Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:6 ())
  in
  let validator = Jury.Deployment.validator deployment in
  Cluster.converge cluster;
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  let rng = Rng.split (Engine.rng engine) in
  let before_decided = Jury.Validator.decided_count validator in
  let before_faults = Jury.Validator.fault_count validator in
  Traces.replay network ~rng ~profile ~duration:(Time.sec 5);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 7));
  let decided = Jury.Validator.decided_count validator - before_decided in
  let faults = Jury.Validator.fault_count validator - before_faults in
  let times = Jury.Validator.detection_times_ms validator in
  let s = Summary.of_array times in
  Printf.printf
    "%-5s rate=%5.0f/s burst=%.1f  validated=%-6d false-alarms=%d (%.2f%%)  \
     p50=%.1fms p95=%.1fms\n"
    profile.Traces.name profile.Traces.mean_rate profile.Traces.burstiness
    decided faults
    (if decided = 0 then 0. else 100. *. float_of_int faults /. float_of_int decided)
    s.Summary.p50 s.Summary.p95

let () =
  print_endline
    "Benign trace replay on JURY-enhanced ONOS (n=7, k=6) -- paper reports \
     0.35% false positives:";
  List.iter run_trace Traces.all
