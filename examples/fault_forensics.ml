(* Fault forensics: run every fault scenario from the paper (§III-B,
   §VII-A1 and the appendix) against a JURY-enhanced 7-node cluster and
   print a forensic report per scenario — which alarm fired, how fast,
   and who was blamed (JURY's action attribution, §V), plus the causal
   span timeline of the offending trigger from the obs layer.

     dune exec examples/fault_forensics.exe *)

let () =
  Printf.printf
    "Replaying the paper's fault catalog on a 7-node cluster (k=6, one \
     armed replica)\n\n";
  let detected = ref 0 in
  List.iter
    (fun scenario ->
      let trace = Jury_obs.Trace.create ~capacity:500_000 () in
      let report = Jury_faults.Runner.run ~switches:12 ~trace scenario in
      Format.printf "%a@." Jury_faults.Runner.pp_report report;
      Printf.printf "     %s\n" scenario.Jury_faults.Scenarios.description;
      (match report.Jury_faults.Runner.matching_alarms with
      | alarm :: _ ->
          Format.printf "     attribution: %a@.@." Jury.Alarm.pp alarm;
          (* Reconstruct how the flagged trigger travelled through the
             system: replication fan-out, shadow executions, validator
             responses, verdict. *)
          let taint =
            Jury_controller.Types.Taint.to_string alarm.Jury.Alarm.taint
          in
          let roots = Jury_obs.Span.assemble (Jury_obs.Trace.events trace) in
          (match Jury_obs.Span.find roots ~taint with
          | Some root -> print_string (Jury_obs.Span.render_timeline root)
          | None -> Printf.printf "     (trigger %s not in trace)\n" taint);
          print_newline ()
      | [] -> Format.printf "     (no matching alarm)@.@.");
      if report.Jury_faults.Runner.detected then incr detected)
    Jury_faults.Scenarios.all;
  Printf.printf "detected %d/%d scenarios\n" !detected
    (List.length Jury_faults.Scenarios.all)
