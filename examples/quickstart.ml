(* Quickstart: stand up a JURY-enhanced 5-node controller cluster on a
   small network, push traffic, then corrupt one replica and watch JURY
   detect and attribute the fault.

     dune exec examples/quickstart.exe *)

open Jury_sim
module Builder = Jury_topo.Builder
module Network = Jury_net.Network
module Host = Jury_net.Host
module Cluster = Jury_controller.Cluster
module Controller = Jury_controller.Controller
module Profile = Jury_controller.Profile

let () =
  (* 1. A deterministic simulation engine and a small data plane: eight
     switches in a line, one host each. *)
  let engine = Engine.create ~seed:2026 () in
  let plan = Builder.linear ~switches:8 ~hosts_per_switch:1 in
  let network = Network.create engine plan () in

  (* 2. An ONOS-flavoured HA cluster of five replicas, and JURY on top:
     every external trigger is replicated to k=2 random secondaries and
     validated out-of-band. *)
  let cluster = Cluster.create engine ~profile:Profile.onos ~nodes:5 ~network () in
  let deployment =
    Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:2 ())
  in
  let validator = Jury.Deployment.validator deployment in
  Jury.Validator.set_alarm_handler validator (fun alarm ->
      Format.printf "  !! ALARM %a@." Jury.Alarm.pp alarm);

  (* 3. Boot: mastership assignment, switch connection, LLDP topology
     discovery, host announcement. *)
  Cluster.converge cluster;
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  Printf.printf "cluster up: %d switches, %d links discovered\n"
    (Jury_store.Fabric.entry_count (Cluster.fabric cluster) ~node:0
       ~cache:"SWITCHDB")
    (Jury_store.Fabric.entry_count (Cluster.fabric cluster) ~node:0
       ~cache:"LINKSDB");

  (* 4. Benign traffic: host 0 talks to host 7 across the whole chain.
     Reactive forwarding installs a rule per hop; JURY validates every
     PACKET_IN response along the way. *)
  let h0 = Network.host network 0 and h7 = Network.host network 7 in
  Host.send_tcp h0 ~dst_mac:(Host.mac h7) ~dst_ip:(Host.ip h7) ~src_port:40000
    ~dst_port:80 ();
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  Printf.printf "benign traffic: %d controller responses validated, %d alarms\n"
    (Jury.Validator.decided_count validator)
    (Jury.Validator.fault_count validator);

  (* 5. Now make replica 1 faulty: it silently turns every FLOW_MOD it
     sends into a packet-dropping rule (the paper's "undesirable
     FLOW_MOD" T2 fault) while writing the correct rule to the cache. *)
  Printf.printf "\ninjecting fault: replica 1 blackholes FLOW_MODs...\n";
  Controller.set_mutator
    (Cluster.controller cluster 1)
    (Some Jury_faults.Injector.blackhole_flow_mods);
  (* An administrator installs a flow through replica 1's northbound API. *)
  let dpid = Jury_openflow.Of_types.Dpid.of_int 2 in
  let rule =
    Jury_openflow.Of_message.flow_mod ~priority:300
      (Jury_openflow.Of_match.l2_dst ~dst:(Host.mac h7))
      [ Jury_openflow.Of_action.Output 2 ]
  in
  Cluster.rest cluster ~node:1
    (Jury_controller.Types.Install_flow { dpid; flow = rule });
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 2));

  let alarms = Jury.Validator.alarms validator in
  Printf.printf "\nJURY raised %d alarm(s); detection time of the first: %s\n"
    (List.length alarms)
    (match alarms with
    | a :: _ -> Time.to_string (Jury.Alarm.detection_time a)
    | [] -> "n/a");
  print_endline "done."
