(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VII), plus the DESIGN.md ablations and a Bechamel
   micro-benchmark section for the hot paths.

   Usage:
     dune exec bench/main.exe                 -- run everything (quick)
     dune exec bench/main.exe -- fig4a fig4f  -- selected experiments
     dune exec bench/main.exe -- --full       -- paper-length runs
     dune exec bench/main.exe -- --jobs 4     -- fan sweep points out on
                                                 4 worker domains
     dune exec bench/main.exe -- --json BENCH_results.json
                                              -- machine-readable results *)

open Jury_experiments
module Time = Jury_sim.Time
module Table = Jury_stats.Table
module Cdf = Jury_stats.Cdf

let section title = Printf.printf "\n=== %s ===\n" title

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let print_cdf_series ~unit_label (series : Figures.cdf_series list) =
  List.iter
    (fun (s : Figures.cdf_series) ->
      Printf.printf "  -- %s: n=%d  p50=%.1f%s  p95=%.1f%s\n" s.label
        s.samples s.p50_ms unit_label s.p95_ms unit_label)
    series;
  let curves =
    List.filter_map
      (fun (s : Figures.cdf_series) ->
        if s.samples = 0 then None else Some (s.label, s.cdf))
      series
  in
  if curves <> [] then
    print_string
      (Jury_stats.Ascii_plot.cdf ~x_label:unit_label curves)

let print_xy_series (series : Figures.xy_series list) ~x_label ~y_label =
  let t =
    Table.create
      ~header:
        (x_label
        :: List.map
             (fun (s : Figures.xy_series) -> s.series_label ^ " " ^ y_label)
             series)
  in
  (* Index every series into an array once: List.nth per cell would
     rescan each point list for every row (quadratic in sweep size). *)
  let columns =
    List.map
      (fun (s : Figures.xy_series) -> Array.of_list s.points)
      series
  in
  (match columns with
  | [] -> ()
  | first :: _ ->
      Array.iteri
        (fun i (x, _) ->
          Table.add_row t
            (Printf.sprintf "%.0f" x
            :: List.map
                 (fun column -> Printf.sprintf "%.0f" (snd column.(i)))
                 columns))
        first);
  Table.print t;
  print_string
    (Jury_stats.Ascii_plot.xy ~x_label ~y_label
       (List.map (fun (s : Figures.xy_series) -> (s.series_label, s.points))
          series))

(* --- Experiment wrappers --- *)

let fig4a ~full () =
  section "Fig 4a: ONOS detection-time CDFs (k secondaries, m faulty)";
  note "paper: p95 ~97ms (k=6,m=0), ~129ms (k=6,m=2); grows with k and m";
  let duration = Time.sec (if full then 60 else 10) in
  print_cdf_series ~unit_label:"ms" (Figures.fig4a ~duration ())

let fig4b ~full () =
  section "Fig 4b: ONOS detection times vs PACKET_IN rate (k=6, m=0)";
  note "paper: detection time increases with PACKET_IN rate";
  let duration = Time.sec (if full then 60 else 10) in
  print_cdf_series ~unit_label:"ms" (Figures.fig4b ~duration ())

let fig4c ~full () =
  section "Fig 4c: ODL detection-time CDFs (k secondaries, m faulty)";
  note "paper: ~500ms (k=6,m=0), ~700ms (k=6,m=2) at 500 pps";
  let duration = Time.sec (if full then 60 else 10) in
  print_cdf_series ~unit_label:"ms" (Figures.fig4c ~duration ())

let fig4d ~full () =
  section "Fig 4d: ONOS detection times on benign traces (k=6, m=2)";
  note "paper: 0.35%% false positives across LBNL/UNIV/SMIA";
  let duration = Time.sec (if full then 60 else 10) in
  let results = Figures.fig4d ~duration () in
  let fps =
    List.map
      (fun ((s : Figures.cdf_series), fp) ->
        Printf.printf "  -- %s: n=%d p50=%.1fms p95=%.1fms FP=%.2f%%\n"
          s.label s.samples s.p50_ms s.p95_ms (100. *. fp);
        fp)
      results
  in
  let mean_fp = List.fold_left ( +. ) 0. fps /. float_of_int (List.length fps) in
  Printf.printf "  => overall false-positive rate: %.2f%% (paper: 0.35%%)\n"
    (100. *. mean_fp)

let detection ~full () =
  section "Detection matrix (Sec VII-A1): every fault scenario, n=7 k=6 m=2";
  note "paper: all faults detected in 10/10 runs within the timeout";
  let repeats = if full then 10 else 5 in
  let t =
    Table.create
      ~header:[ "scenario"; "class"; "detected"; "mean ms"; "alarm" ]
  in
  List.iter
    (fun (r : Figures.detection_row) ->
      Table.add_row t
        [ r.scenario_name;
          r.klass;
          Printf.sprintf "%d/%d" r.detected r.repeats;
          Printf.sprintf "%.1f" r.mean_ms;
          r.expected ])
    (Figures.detection_matrix ~repeats ());
  Table.print t

let fig4e ~full () =
  section "Fig 4e: Cbench PACKET_IN bursts overwhelm ONOS";
  note "paper: FLOW_MOD throughput lags the burst then collapses to ~0";
  let duration = Time.sec (if full then 50 else 20) in
  let rows = Figures.fig4e ~duration () in
  let t = Table.create ~header:[ "t (s)"; "PacketIn/s"; "FlowMod/s" ] in
  List.iteri
    (fun i (ts, pi, fm) ->
      if i mod 2 = 0 then
        Table.add_row t
          [ Printf.sprintf "%.0f" ts;
            Printf.sprintf "%.0f" pi;
            Printf.sprintf "%.0f" fm ])
    rows;
  Table.print t

let fig4f ~full () =
  section "Fig 4f: vanilla ONOS FLOW_MOD vs PACKET_IN rate, n=1/3/5/7";
  note "paper: saturates ~5K at ~7.5K pps; n=7 within 8%% of n=1";
  let duration = Time.sec (if full then 10 else 3) in
  print_xy_series (Figures.fig4f ~duration ()) ~x_label:"PacketIn/s"
    ~y_label:"FlowMod/s"

let fig4g ~full () =
  section "Fig 4g: vanilla ODL FLOW_MOD vs PACKET_IN rate, n=1/3/5/7";
  note "paper: n=1 peaks ~800, n=7 drops to ~140 FLOW_MOD/s";
  let duration = Time.sec (if full then 10 else 3) in
  print_xy_series (Figures.fig4g ~duration ()) ~x_label:"PacketIn/s"
    ~y_label:"FlowMod/s"

let fig4h ~full () =
  section "Fig 4h: JURY impact on ONOS throughput (n=7, k=2/4/6)";
  note "paper: <11%% FLOW_MOD throughput drop at full replication";
  let duration = Time.sec (if full then 10 else 3) in
  let series = Figures.fig4h ~duration () in
  print_xy_series series ~x_label:"PacketIn/s" ~y_label:"FlowMod/s";
  match series with
  | base :: rest when base.points <> [] ->
      let last_of (s : Figures.xy_series) =
        snd (List.nth s.points (List.length s.points - 1))
      in
      let base_rate = last_of base in
      List.iter
        (fun (s : Figures.xy_series) ->
          Printf.printf "  => %s: %.1f%% drop vs vanilla\n" s.series_label
            (100. *. (base_rate -. last_of s) /. base_rate))
        rest
  | _ -> ()

let fig4i ~full () =
  section "Fig 4i: ODL decapsulation overhead (n=7, k=6)";
  note "paper: 80%% of packets under 150us across all rates";
  let duration = Time.sec (if full then 10 else 5) in
  let series = Figures.fig4i ~duration () in
  List.iter
    (fun (s : Figures.cdf_series) ->
      let p80 =
        if s.samples = 0 then 0. else Cdf.value_at s.cdf 0.8
      in
      Printf.printf "  -- %s: n=%d p50=%.1fus p80=%.1fus p95=%.1fus\n" s.label
        s.samples s.p50_ms p80 s.p95_ms)
    series

let print_profile_rows (rows : Figures.profile_row list) =
  let t =
    Table.create
      ~header:
        [ "profile"; "mode"; "rate"; "p50 ms"; "p95 ms"; "base FM/s";
          "JURY FM/s"; "overhead" ]
  in
  List.iter
    (fun (r : Figures.profile_row) ->
      Table.add_row t
        [ r.pr_name;
          (if r.pr_clustered then "clustered" else "standalone");
          Printf.sprintf "%.0f" r.pr_rate;
          Printf.sprintf "%.1f" r.pr_detection.p50_ms;
          Printf.sprintf "%.1f" r.pr_detection.p95_ms;
          Printf.sprintf "%.0f" r.pr_base_fm_rate;
          Printf.sprintf "%.0f" r.pr_jury_fm_rate;
          Printf.sprintf "%.1f%%" r.pr_overhead_pct ])
    rows;
  Table.print t

let profiles ~full () =
  section "Controller profiles: detection + throughput, ONOS/ODL/Ryu";
  note "clustered profiles validate state-aware against the shared \
        store; the standalone Ryu-style profile runs JURY in \
        state-blind response-voting mode";
  let duration = Time.sec (if full then 10 else 3) in
  let rows = Figures.profile_comparison ~duration () in
  print_profile_rows rows;
  print_cdf_series ~unit_label:"ms"
    (List.map (fun (r : Figures.profile_row) -> r.pr_detection) rows)

(* One experiment per profile so the --json record (and the bench
   gate) carries a separate events_per_sec figure for each controller
   flavour. *)
let profile_one name ~full () =
  section (Printf.sprintf "Controller profile: %s" name);
  let duration = Time.sec (if full then 10 else 3) in
  print_profile_rows (Figures.profile_comparison ~duration ~names:[ name ] ())

let overhead ~full () =
  section "Network overhead (Sec VII-B2): store vs JURY traffic";
  note
    "paper: ONOS@5.5Kpps Hazelcast 142 Mbps vs JURY 14.2/25.2/36.1 Mbps \
     (k=2/4/6); ODL@500pps Infinispan 37 vs JURY 12 Mbps";
  let duration = Time.sec (if full then 10 else 5) in
  let t =
    Table.create
      ~header:
        [ "config"; "store Mbps"; "JURY Mbps"; "chatter Mbps"; "JURY share" ]
  in
  List.iter
    (fun (r : Figures.overhead_row) ->
      Table.add_row t
        [ r.config;
          Printf.sprintf "%.1f" r.store_mbps;
          Printf.sprintf "%.1f" r.jury_mbps;
          Printf.sprintf "%.1f" r.chatter_mbps;
          Table.cell_pct r.jury_fraction ])
    (Figures.overhead ~duration ());
  Table.print t

let policy_scaling ~full:_ () =
  section "Policy validation scaling (Sec VII-B2(3))";
  note "paper: 100 -> 200us, 1K -> 1.2ms, 10K -> 11.2ms (linear)";
  let t = Table.create ~header:[ "policies"; "validation us" ] in
  List.iter
    (fun (n, us) ->
      Table.add_row t [ string_of_int n; Printf.sprintf "%.1f" us ])
    (Figures.policy_scaling ());
  Table.print t;
  Printf.printf "  => PACKET_OUT pipeline peak (model): %.0f msg/s (paper: ~220K)\n"
    (Figures.packet_out_peak ())

(* Filled by [policy_scale] and [micro] so --json can report ns/op
   figures; both append. *)
let micro_rows : (string * float) list ref = ref []

let policy_scale ~full () =
  section "Policy compiler scaling: interpreted vs compiled check cost";
  note "per-response cost must stay ~flat in rule count on the compiled \
        path (dispatch trie), vs linear on the interpreter";
  let sizes =
    if full then [ 100; 500; 1000; 2000; 4000; 8000 ]
    else [ 100; 500; 1000; 2000; 4000 ]
  in
  let caches =
    [| Jury_store.Cache_names.flowsdb; Jury_store.Cache_names.linksdb;
       Jury_store.Cache_names.edgedb; Jury_store.Cache_names.hostdb;
       Jury_store.Cache_names.arpdb |]
  in
  let ops = [| Jury_store.Event.Create; Jury_store.Event.Update;
               Jury_store.Event.Delete |] in
  (* A structured admin policy: mostly cache/controller/op-specific deny
     rules with never-matching entry globs (worst case: every applicable
     rule's residual is evaluated), plus periodic wildcard selectors so
     the trie's fallthrough branches carry weight too. *)
  let make_rules n =
    List.init n (fun i ->
        Jury_policy.Ast.rule
          ~name:(Printf.sprintf "p%d" i)
          ?cache:(if i mod 37 = 0 then None else Some caches.(i mod 5))
          ~controller:
            (if i mod 41 = 0 then Jury_policy.Ast.Any_controller
             else Jury_policy.Ast.Controller_id (i mod 8))
          ~operation:
            (if i mod 31 = 0 then Jury_policy.Ast.Any_op
             else Jury_policy.Ast.Op_is ops.(i mod 3))
          ~entry:
            (Jury_policy.Ast.Entry_glob
               { key = Jury_policy.Pattern.compile
                   (Printf.sprintf "never-%d-*" i);
                 value = Jury_policy.Pattern.compile "*" })
          ())
  in
  let query =
    { Jury_policy.Ast.q_controller = 3;
      q_trigger = `External;
      q_cache = Jury_store.Cache_names.flowsdb;
      q_op = Jury_store.Event.Create;
      q_key = "a1b2c3d4/deadbeefdeadbeefdeadbeefdeadbeef";
      q_value = String.make 160 'f';
      q_destination = `Local }
  in
  let time_us ~iterations f =
    for _ = 1 to 50 do ignore (f ()) done;
    let t0 = Sys.time () in
    for _ = 1 to iterations do ignore (f ()) done;
    (Sys.time () -. t0) /. float_of_int iterations *. 1e6
  in
  let t =
    Table.create
      ~header:
        [ "rules"; "load ms"; "compile ms"; "interp us"; "compiled us";
          "speedup"; "leaves"; "max leaf" ]
  in
  let rows =
    List.map
      (fun n ->
        let rules = make_rules n in
        let t0 = Sys.time () in
        let engine = Jury_policy.Engine.create rules in
        let load_ms = (Sys.time () -. t0) *. 1e3 in
        let t0 = Sys.time () in
        let compiled = Jury_policy.Engine.compiled engine in
        let compile_ms = (Sys.time () -. t0) *. 1e3 in
        let interp_us =
          time_us ~iterations:(max 500 (10_000_000 / n)) (fun () ->
              Jury_policy.Engine.check engine query)
        in
        let compiled_us =
          time_us ~iterations:200_000 (fun () ->
              Jury_policy.Compiled.check compiled query)
        in
        let st = Jury_policy.Compiled.stats compiled in
        Table.add_row t
          [ string_of_int n;
            Printf.sprintf "%.1f" load_ms;
            Printf.sprintf "%.1f" compile_ms;
            Printf.sprintf "%.2f" interp_us;
            Printf.sprintf "%.3f" compiled_us;
            Printf.sprintf "%.0fx" (interp_us /. compiled_us);
            Printf.sprintf "%d/%d" st.Jury_policy.Compiled.st_distinct_leaves
              st.Jury_policy.Compiled.st_leaves;
            string_of_int st.Jury_policy.Compiled.st_max_leaf ];
        micro_rows :=
          !micro_rows
          @ [ (Printf.sprintf "policy-scale-%d-interpreted" n,
               interp_us *. 1e3);
              (Printf.sprintf "policy-scale-%d-compiled" n,
               compiled_us *. 1e3) ];
        (n, interp_us, compiled_us))
      sizes
  in
  Table.print t;
  match (rows, List.rev rows) with
  | (n0, _, c0) :: _, (nl, il, cl) :: _ ->
      note "=> compiled %.3fus at %d rules vs %.3fus at %d (%.1fx growth); \
            interpreter %.2fus at %d (%.0fx slower)"
        c0 n0 cl nl (cl /. c0) il nl (il /. cl)
  | _ -> ()

let ablations ~full () =
  section "Ablation: state-aware consensus vs naive majority";
  let t =
    Table.create ~header:[ "mode"; "decided"; "false alarms"; "unverifiable" ]
  in
  List.iter
    (fun (mode, decided, faults, unver) ->
      Table.add_row t
        [ mode; string_of_int decided; string_of_int faults;
          string_of_int unver ])
    (Figures.ablation_state_aware ());
  Table.print t;
  section "Ablation: validation-timeout trade-off (Sec VIII-1)";
  let t =
    Table.create ~header:[ "timeout ms"; "FP rate"; "p95 detection ms" ]
  in
  List.iter
    (fun (ms, fp, p95) ->
      Table.add_row t
        [ string_of_int ms;
          Table.cell_pct fp;
          Printf.sprintf "%.1f" p95 ])
    (Figures.ablation_timeout ());
  Table.print t;
  section "Ablation: random vs static secondary selection";
  let repeats = if full then 10 else 5 in
  let t = Table.create ~header:[ "selection"; "detected"; "runs" ] in
  List.iter
    (fun (label, detected, total) ->
      Table.add_row t [ label; string_of_int detected; string_of_int total ])
    (Figures.ablation_secondary_selection ~repeats ());
  Table.print t;
  section "Extension (Sec VIII-1): adaptive validation timeout";
  let t =
    Table.create
      ~header:[ "theta-tau"; "decided"; "false alarms"; "p95 ms"; "final theta ms" ]
  in
  List.iter
    (fun (label, decided, faults, p95, theta) ->
      Table.add_row t
        [ label; string_of_int decided; string_of_int faults;
          Printf.sprintf "%.1f" p95; Printf.sprintf "%.1f" theta ])
    (Figures.ablation_adaptive_timeout ());
  Table.print t;
  section
    "Extension (Sec VIII-2): non-deterministic (ECMP) app — the paper's \
     admitted limitation";
  let t =
    Table.create
      ~header:[ "mode"; "decided"; "false alarms"; "labelled non-det" ]
  in
  List.iter
    (fun (label, decided, faults, nondet) ->
      Table.add_row t
        [ label; string_of_int decided; string_of_int faults;
          string_of_int nondet ])
    (Figures.ablation_nondeterminism ());
  Table.print t

let lossy ~full () =
  section "Lossy replication channel: retransmission + degraded quorum";
  note "10%% drop, ONOS k=2; 'lossy+retx' should cut spurious \
        timeout/unverifiable verdicts vs 'lossy'";
  let duration = Time.sec (if full then 30 else 5) in
  let rows = Figures.lossy_channel ~duration () in
  let t =
    Table.create
      ~header:
        [ "mode"; "decided"; "timeouts"; "unverif"; "degraded"; "retx";
          "sent"; "dropped"; "dup"; "p50 ms"; "p95 ms" ]
  in
  List.iter
    (fun (r : Figures.channel_row) ->
      Table.add_row t
        [ r.mode;
          string_of_int r.c_decided;
          string_of_int r.c_timeout_alarms;
          string_of_int r.c_unverifiable;
          string_of_int r.c_degraded;
          string_of_int r.c_retransmits;
          string_of_int r.c_channel.Jury.Channel.sent;
          string_of_int r.c_channel.Jury.Channel.dropped;
          string_of_int r.c_channel.Jury.Channel.duplicated;
          Printf.sprintf "%.1f" r.c_detection.p50_ms;
          Printf.sprintf "%.1f" r.c_detection.p95_ms ])
    rows;
  Table.print t;
  (match
     ( List.find_opt (fun (r : Figures.channel_row) -> r.mode = "lossy") rows,
       List.find_opt
         (fun (r : Figures.channel_row) -> r.mode = "lossy+retx")
         rows )
   with
  | Some l, Some x ->
      let benign r =
        r.Figures.c_timeout_alarms + r.Figures.c_unverifiable
      in
      note "=> spurious timeout+unverifiable verdicts: %d (no mitigation) \
            -> %d (retransmit + degraded quorum)"
        (benign l) (benign x)
  | _ -> ());
  print_cdf_series ~unit_label:"ms"
    (List.map (fun (r : Figures.channel_row) -> r.c_detection) rows)

let validator_scale ~full () =
  section "Validator scaling: trigger rate x shard count (batched ingest)";
  note "verdict counts must match across shard counts; per-shard batch \
        counters show the fan-out (single-core containers cap the \
        wall-clock speedup — see DESIGN.md)";
  let duration = Time.sec (if full then 10 else 3) in
  let rows = Figures.validator_scale ~duration () in
  let t =
    Table.create
      ~header:
        [ "rate"; "shards"; "decided"; "verdicts/s"; "batches"; "resp/batch";
          "per-shard batches" ]
  in
  List.iter
    (fun (r : Figures.scale_row) ->
      Table.add_row t
        [ Printf.sprintf "%.0f" r.vs_rate;
          string_of_int r.vs_shards;
          string_of_int r.vs_decided;
          Printf.sprintf "%.0f" r.vs_verdicts_per_s;
          string_of_int r.vs_batches;
          (if r.vs_batches = 0 then "0"
           else
             Printf.sprintf "%.1f"
               (float_of_int r.vs_batched_responses
               /. float_of_int r.vs_batches));
          String.concat "/" (List.map string_of_int r.vs_shard_batches) ])
    rows;
  Table.print t;
  (* Speedup per rate: shards=max vs shards=1, same workload. *)
  let by_rate = Hashtbl.create 8 in
  List.iter
    (fun (r : Figures.scale_row) ->
      let prev = try Hashtbl.find by_rate r.vs_rate with Not_found -> [] in
      Hashtbl.replace by_rate r.vs_rate (r :: prev))
    rows;
  Hashtbl.fold (fun rate rs acc -> (rate, List.rev rs) :: acc) by_rate []
  |> List.sort compare
  |> List.iter (fun (rate, rs) ->
         match
           ( List.find_opt (fun (r : Figures.scale_row) -> r.vs_shards = 1) rs,
             List.fold_left
               (fun acc (r : Figures.scale_row) ->
                 match acc with
                 | Some (b : Figures.scale_row) when b.vs_shards >= r.vs_shards
                   -> acc
                 | _ -> Some r)
               None rs )
         with
         | Some base, Some best when base.vs_shards <> best.vs_shards ->
             note "=> %.0f pps: %.2fx verdicts/s at shards=%d vs shards=1 \
                   (decided %d vs %d%s)"
               rate
               (if base.vs_verdicts_per_s > 0. then
                  best.vs_verdicts_per_s /. base.vs_verdicts_per_s
                else 0.)
               best.vs_shards best.vs_decided base.vs_decided
               (if best.vs_decided = base.vs_decided then ", identical"
                else " -- MISMATCH")
         | _ -> ())

(* Filled by [firehose] so --json can report the sweep rows. *)
let firehose_rows : Firehose_bench.row list ref = ref []

let firehose ~full () =
  section "Firehose: staged validation pipeline throughput (jobs x shards)";
  note "wall-clock ingest of a heavy-tailed capture stream (2M-host \
        enterprise profile); trigger/verdict counts must be identical \
        across every (jobs, shards) point (single-core containers cap \
        the wall-clock speedup -- see DESIGN.md)";
  let duration = Time.ms (if full then 2000 else 300) in
  let rows = Firehose_bench.sweep ~duration () in
  firehose_rows := !firehose_rows @ rows;
  let t =
    Table.create
      ~header:
        [ "profile"; "jobs"; "shards"; "triggers"; "decided"; "wall s";
          "events/s"; "verdicts/s"; "spawned" ]
  in
  let baseline =
    List.find_opt (fun (r : Firehose_bench.row) -> r.fh_jobs = 1) rows
  in
  List.iter
    (fun (r : Firehose_bench.row) ->
      let identical =
        match baseline with
        | Some b ->
            b.fh_decided = r.fh_decided && b.fh_faults = r.fh_faults
            && b.fh_triggers = r.fh_triggers
        | None -> true
      in
      Table.add_row t
        [ r.fh_profile;
          string_of_int r.fh_jobs;
          string_of_int r.fh_shards;
          string_of_int r.fh_triggers;
          string_of_int r.fh_decided ^ (if identical then "" else " MISMATCH");
          Printf.sprintf "%.2f" r.fh_wall_s;
          Printf.sprintf "%.0f" r.fh_events_per_s;
          Printf.sprintf "%.0f" r.fh_verdicts_per_s;
          string_of_int r.fh_domains_spawned ])
    rows;
  Table.print t;
  match baseline with
  | Some b when b.fh_verdicts_per_s > 0. ->
      List.iter
        (fun (r : Firehose_bench.row) ->
          if r.fh_jobs > 1 then
            note "=> jobs=%d shards=%d: %.2fx verdicts/s vs serial%s"
              r.fh_jobs r.fh_shards
              (r.fh_verdicts_per_s /. b.fh_verdicts_per_s)
              (if r.fh_decided = b.fh_decided then "" else " -- MISMATCH"))
        rows
  | _ -> ()

let pool_bench ~full:_ () =
  section "Domain pool: persistent workers (spawn amortisation)";
  note "map_ordered keeps its worker domains across calls; only the \
        first call pays Domain.spawn";
  let pool = Jury_par.Pool.create ~jobs:4 () in
  let items = List.init 128 Fun.id in
  let call () =
    let t0 = Unix.gettimeofday () in
    ignore (Jury_par.Pool.map_ordered pool items (fun x -> x * x));
    Unix.gettimeofday () -. t0
  in
  let d0 = Jury_par.Pool.domains_spawned () in
  let first_s = call () in
  let spawned_first = Jury_par.Pool.domains_spawned () - d0 in
  let d1 = Jury_par.Pool.domains_spawned () in
  let reps = 20 in
  let reused_s =
    let total = ref 0. in
    for _ = 1 to reps do
      total := !total +. call ()
    done;
    !total /. float_of_int reps
  in
  let spawned_reused = Jury_par.Pool.domains_spawned () - d1 in
  note "first call: %.0fus (%d domain(s) spawned); steady state: %.0fus \
        per call (%d spawned over %d calls)"
    (first_s *. 1e6) spawned_first (reused_s *. 1e6) spawned_reused reps;
  if spawned_reused > 0 then
    note "=> WARNING: steady-state calls still spawn domains";
  micro_rows :=
    !micro_rows
    @ [ ("pool-map-ordered-first-call", first_s *. 1e9);
        ("pool-map-ordered-reused", reused_s *. 1e9) ]

(* --- Bechamel micro-benchmarks --- *)

let micro ~full:_ () =
  section "Micro-benchmarks (Bechamel): hot paths";
  let open Bechamel in
  let policy_engine =
    Jury_policy.Engine.create
      (List.init 1000 (fun i ->
           Jury_policy.Ast.rule
             ~name:(Printf.sprintf "p%d" i)
             ~cache:Jury_store.Cache_names.flowsdb
             ~entry:
               (Jury_policy.Ast.Entry_glob
                  { key = Jury_policy.Pattern.compile
                      (Printf.sprintf "never-%d-*" i);
                    value = Jury_policy.Pattern.compile "*" })
             ()))
  in
  let query =
    { Jury_policy.Ast.q_controller = 3;
      q_trigger = `External;
      q_cache = Jury_store.Cache_names.flowsdb;
      q_op = Jury_store.Event.Create;
      q_key = "a1b2c3d4/deadbeef";
      q_value = String.make 160 'f';
      q_destination = `Local }
  in
  let mac i = Jury_packet.Addr.Mac.of_host_index i in
  let flow_mod =
    Jury_openflow.Of_message.flow_mod
      (Jury_openflow.Of_match.l2_pair ~src:(mac 1) ~dst:(mac 2))
      [ Jury_openflow.Of_action.Output 3 ]
  in
  let msg =
    Jury_openflow.Of_message.make ~xid:7
      (Jury_openflow.Of_message.Flow_mod flow_mod)
  in
  let wire = Jury_openflow.Of_wire.encode msg in
  let table = Jury_openflow.Flow_table.create () in
  let engine_now = Jury_sim.Time.ms 1 in
  for i = 1 to 100 do
    ignore
      (Jury_openflow.Flow_table.apply_flow_mod table ~now:engine_now
         (Jury_openflow.Of_message.flow_mod ~priority:i
            (Jury_openflow.Of_match.l2_pair ~src:(mac i) ~dst:(mac (i + 1)))
            [ Jury_openflow.Of_action.Output 2 ]))
  done;
  let probe_frame =
    Jury_packet.Frame.tcp_packet
      ~src:(mac 50, Jury_packet.Addr.Ipv4.of_host_index 50)
      ~dst:(mac 51, Jury_packet.Addr.Ipv4.of_host_index 51)
      ~src_port:1234 ~dst_port:80 ()
  in
  let graph =
    (Jury_topo.Builder.linear ~switches:24 ~hosts_per_switch:1)
      .Jury_topo.Builder.graph
  in
  let d1 = Jury_openflow.Of_types.Dpid.of_int 1 in
  let d24 = Jury_openflow.Of_types.Dpid.of_int 24 in
  let tests =
    [ Test.make ~name:"policy-check-1k"
        (Staged.stage (fun () -> Jury_policy.Engine.check policy_engine query));
      Test.make ~name:"of-wire-encode"
        (Staged.stage (fun () -> Jury_openflow.Of_wire.encode msg));
      Test.make ~name:"of-wire-decode"
        (Staged.stage (fun () -> Jury_openflow.Of_wire.decode wire));
      Test.make ~name:"flow-table-lookup-100"
        (Staged.stage (fun () ->
             Jury_openflow.Flow_table.lookup table ~now:engine_now ~in_port:1
               probe_frame));
      Test.make ~name:"shortest-path-linear24"
        (Staged.stage (fun () -> Jury_topo.Graph.shortest_path graph d1 d24));
      Test.make ~name:"frame-encode"
        (Staged.stage (fun () -> Jury_packet.Frame.encode probe_frame)) ]
  in
  let grouped = Test.make_grouped ~name:"jury" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort compare
  in
  micro_rows :=
    !micro_rows
    @ List.filter_map
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Some (name, est)
          | _ -> None)
        rows;
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-34s %10.1f ns/op\n" name est
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    rows

let all_experiments =
  [ ("fig4a", fig4a);
    ("fig4b", fig4b);
    ("fig4c", fig4c);
    ("fig4d", fig4d);
    ("detection", detection);
    ("fig4e", fig4e);
    ("fig4f", fig4f);
    ("fig4g", fig4g);
    ("fig4h", fig4h);
    ("fig4i", fig4i);
    ("overhead", overhead);
    ("profiles", profiles);
    ("profile-onos", profile_one "onos");
    ("profile-odl", profile_one "odl");
    ("profile-ryu", profile_one "ryu");
    ("policy-scaling", policy_scaling);
    ("policy-scale", policy_scale);
    ("ablations", ablations);
    ("lossy", lossy);
    ("validator-scale", validator_scale);
    ("firehose", firehose);
    ("pool", pool_bench);
    ("micro", micro) ]

(* --- machine-readable results (--json) --- *)

type record = {
  r_name : string;
  r_wall_s : float;
  r_events : int;  (** simulator events executed, summed over domains *)
  r_verdicts : int;  (** validator verdicts decided, summed over domains *)
  r_batches : int;  (** per-shard response batches delivered *)
  r_overloads : int;  (** triggers force-expired at max_inflight *)
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~jobs ~full records =
  let buf = Buffer.create 4096 in
  let total_wall = List.fold_left (fun a r -> a +. r.r_wall_s) 0. records in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if full then "full" else "quick"));
  Buffer.add_string buf
    (Printf.sprintf "  \"total_wall_s\": %.3f,\n" total_wall);
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      let rate =
        if r.r_wall_s > 0. then float_of_int r.r_events /. r.r_wall_s else 0.
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"wall_s\": %.3f, \"events\": %d, \
            \"events_per_sec\": %.1f, \"verdicts\": %d, \"batches\": %d, \
            \"overloads\": %d}%s\n"
           (json_escape r.r_name) r.r_wall_s r.r_events rate r.r_verdicts
           r.r_batches r.r_overloads
           (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"domains_spawned\": %d,\n"
       (Jury_par.Pool.domains_spawned ()));
  Buffer.add_string buf "  \"firehose\": [\n";
  List.iteri
    (fun i (r : Firehose_bench.row) ->
      (* Verdict counts must be independent of (jobs, shards): compare
         each row against its profile's serial row so CI can grep for
         "verdicts_match": false. *)
      let matches =
        match
          List.find_opt
            (fun (b : Firehose_bench.row) ->
              b.fh_profile = r.fh_profile && b.fh_jobs = 1)
            !firehose_rows
        with
        | None -> true
        | Some b ->
            b.fh_triggers = r.fh_triggers
            && b.fh_decided = r.fh_decided
            && b.fh_faults = r.fh_faults
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"profile\": \"%s\", \"jobs\": %d, \"shards\": %d, \
            \"triggers\": %d, \"responses\": %d, \"decided\": %d, \
            \"faults\": %d, \"wall_s\": %.3f, \"events_per_sec\": %.1f, \
            \"verdicts_per_sec\": %.1f, \"domains_spawned\": %d, \
            \"verdicts_match\": %b}%s\n"
           (json_escape r.fh_profile) r.fh_jobs r.fh_shards r.fh_triggers
           r.fh_responses r.fh_decided r.fh_faults r.fh_wall_s
           r.fh_events_per_s r.fh_verdicts_per_s r.fh_domains_spawned matches
           (if i = List.length !firehose_rows - 1 then "" else ",")))
    !firehose_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"micro_ns_per_op\": {";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\n    \"%s\": %.1f"
           (if i = 0 then "" else ",")
           (json_escape name) ns))
    !micro_rows;
  Buffer.add_string buf (if !micro_rows = [] then "}\n" else "\n  }\n");
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" path

let run_selected names full jobs json =
  (match jobs with
  | Some n -> Jury_par.Pool.set_default_jobs n
  | None -> ());
  let to_run =
    match names with
    | [] -> all_experiments
    | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt name all_experiments with
            | Some f -> Some (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S (known: %s)\n" name
                  (String.concat ", " (List.map fst all_experiments));
                exit 2)
          names
  in
  Printf.printf
    "JURY reproduction benchmarks (%s mode, %d worker domain(s))\n\
     Shapes should match the paper; absolute numbers come from the \
     calibrated simulator (see DESIGN.md / EXPERIMENTS.md).\n"
    (if full then "full" else "quick")
    (Jury_par.Pool.jobs (Jury_par.Pool.default ()));
  let records =
    List.map
      (fun (name, f) ->
        (* Process-wide counters never reset; per-experiment figures
           are deltas around the run, so back-to-back experiments (and
           repeated bench invocations in one process) report their own
           work, not the cumulative total. *)
        let events0 = Jury_sim.Engine.total_executed () in
        let verdicts0 = Jury.Validator.total_decided () in
        let batches0 = Jury.Validator.total_batches () in
        let overloads0 = Jury.Validator.total_overloads () in
        let t0 = Unix.gettimeofday () in
        f ~full ();
        { r_name = name;
          r_wall_s = Unix.gettimeofday () -. t0;
          r_events = Jury_sim.Engine.total_executed () - events0;
          r_verdicts = Jury.Validator.total_decided () - verdicts0;
          r_batches = Jury.Validator.total_batches () - batches0;
          r_overloads = Jury.Validator.total_overloads () - overloads0 })
      to_run
  in
  print_newline ();
  Option.iter
    (fun path ->
      write_json path
        ~jobs:(Jury_par.Pool.jobs (Jury_par.Pool.default ()))
        ~full records)
    json

open Cmdliner

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiments to run (default: all). Known: fig4a fig4b fig4c \
               fig4d detection fig4e fig4f fig4g fig4h fig4i overhead \
               profiles profile-onos profile-odl profile-ryu \
               policy-scaling policy-scale ablations lossy validator-scale \
               firehose pool micro.")

let full_arg =
  Arg.(value & flag & info [ "full" ]
         ~doc:"Paper-length runs (60s detection windows, 10 repeats).")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for experiment fan-out (default: \\$JURY_JOBS \
               if set, else cores - 1; 1 = serial). Results are \
               byte-identical whatever the value.")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
         ~doc:"Write machine-readable results (per-experiment wall-clock, \
               events/sec, verdict counts, micro-bench ns/op) to PATH.")

let cmd =
  let term = Term.(const (fun names full jobs json ->
                       run_selected names full jobs json)
                   $ names_arg $ full_arg $ jobs_arg $ json_arg) in
  Cmd.v (Cmd.info "jury-bench" ~doc:"Regenerate the JURY paper's tables and figures")
    term

let () = exit (Cmd.eval cmd)
