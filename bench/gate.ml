(* Bench regression gate: compare a fresh `bench --json` result against
   the committed BENCH_baseline.json and fail (exit 1) on a >FACTOR
   slowdown in the gated rows.

   Gated rows — chosen because they measure pure compute with no
   simulated-time component, so they are stable enough to threshold:
     - every micro_ns_per_op row named "policy-scale-*" (ns/op; fails
       when current > factor * baseline);
     - the "validator-scale" experiment's events_per_sec (fails when
       current < baseline / factor);
     - every experiment named "profile-*" (the per-controller-profile
       runs: onos, odl, ryu), same events_per_sec threshold.
   Rows present in the baseline but absent from the current run fail
   the gate too: a silently skipped measurement must not pass.

   The 2x default factor absorbs machine-to-machine noise (the baseline
   was recorded in this repo's CI container class); it is a
   catastrophic-regression tripwire, not a microbenchmark court.

   Usage: gate.exe BASELINE CURRENT [FACTOR] *)

(* --- a minimal JSON reader for the bench's own output ------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'u' ->
              (* The bench only escapes control characters; fold the
                 code point to '?' rather than decoding UTF-16. *)
              advance ();
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char buf '?';
              go ()
          | _ -> fail "unsupported escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('0' .. '9' | '-') -> number ()
    | _ -> fail "unexpected character"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* --- gated rows --------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let num = function Some (Num f) -> Some f | _ -> None

(* micro_ns_per_op rows named policy-scale-* *)
let policy_micro json =
  match member "micro_ns_per_op" json with
  | Some (Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          let prefix = "policy-scale-" in
          if
            String.length k >= String.length prefix
            && String.sub k 0 (String.length prefix) = prefix
          then match v with Num f -> Some (k, f) | _ -> None
          else None)
        kvs
  | _ -> []

let experiment_rate name json =
  match member "experiments" json with
  | Some (List rows) ->
      List.find_map
        (fun row ->
          if member "name" row = Some (Str name) then
            num (member "events_per_sec" row)
          else None)
        rows
  | _ -> None

(* experiments rows named profile-* (per-controller-profile runs) *)
let profile_experiments json =
  match member "experiments" json with
  | Some (List rows) ->
      List.filter_map
        (fun row ->
          match (member "name" row, num (member "events_per_sec" row)) with
          | Some (Str name), Some rate
            when String.length name >= 8 && String.sub name 0 8 = "profile-"
            ->
              Some (name, rate)
          | _ -> None)
        rows
  | _ -> []

let () =
  let baseline_path, current_path, factor =
    match Array.to_list Sys.argv with
    | [ _; b; c ] -> (b, c, 2.0)
    | [ _; b; c; f ] -> (
        match float_of_string_opt f with
        | Some f when f > 1.0 -> (b, c, f)
        | _ ->
            prerr_endline "gate: FACTOR must be a float > 1";
            exit 2)
    | _ ->
        prerr_endline "usage: gate.exe BASELINE.json CURRENT.json [FACTOR]";
        exit 2
  in
  let load path =
    try parse (read_file path) with
    | Sys_error msg ->
        Printf.eprintf "gate: %s\n" msg;
        exit 2
    | Parse msg ->
        Printf.eprintf "gate: %s: %s\n" path msg;
        exit 2
  in
  let baseline = load baseline_path in
  let current = load current_path in
  let failures = ref 0 in
  let check_row ~name ~baseline_v ~current_v ~regressed ~unit_label =
    match current_v with
    | None ->
        incr failures;
        Printf.printf "FAIL %-36s missing from %s\n" name current_path
    | Some cur ->
        let bad = regressed cur in
        if bad then incr failures;
        Printf.printf "%s %-36s baseline %.1f%s, current %.1f%s\n"
          (if bad then "FAIL" else "ok  ")
          name baseline_v unit_label cur unit_label
  in
  List.iter
    (fun (name, base) ->
      let cur = List.assoc_opt name (policy_micro current) in
      check_row ~name ~baseline_v:base ~current_v:cur
        ~regressed:(fun cur -> cur > factor *. base)
        ~unit_label:"ns")
    (policy_micro baseline);
  (match experiment_rate "validator-scale" baseline with
  | None -> print_endline "note: baseline has no validator-scale row"
  | Some base ->
      check_row ~name:"validator-scale events/s"
        ~baseline_v:base
        ~current_v:(experiment_rate "validator-scale" current)
        ~regressed:(fun cur -> cur < base /. factor)
        ~unit_label:"");
  List.iter
    (fun (name, base) ->
      check_row
        ~name:(name ^ " events/s")
        ~baseline_v:base
        ~current_v:(List.assoc_opt name (profile_experiments current))
        ~regressed:(fun cur -> cur < base /. factor)
        ~unit_label:"")
    (profile_experiments baseline);
  if profile_experiments baseline = [] then
    print_endline "note: baseline has no profile-* rows";
  if policy_micro baseline = [] then
    print_endline "note: baseline has no policy-scale micro rows";
  if !failures > 0 then begin
    Printf.printf "bench gate: %d row(s) regressed beyond %.1fx\n" !failures
      factor;
    exit 1
  end
  else print_endline "bench gate: within budget"
