type t = { source : string }

let compile source = { source }
let source t = t.source
let is_star t = t.source = "*"

let matches t s =
  let p = t.source in
  let plen = String.length p and slen = String.length s in
  (* Iterative glob with backtracking on the last '*'. *)
  let rec go pi si star_pi star_si =
    if si = slen then
      (* Consume trailing stars. *)
      let rec stars pi = pi = plen || (p.[pi] = '*' && stars (pi + 1)) in
      if stars pi then true
      else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
      else false
    else if pi < plen && p.[pi] = '*' then go (pi + 1) si pi si
    else if pi < plen && (p.[pi] = '?' || p.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)
