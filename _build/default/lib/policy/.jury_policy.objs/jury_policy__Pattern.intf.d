lib/policy/pattern.mli:
