lib/policy/ast.mli: Format Jury_store Pattern
