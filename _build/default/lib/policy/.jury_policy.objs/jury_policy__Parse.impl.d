lib/policy/parse.ml: Ast Jury_store List Option Pattern Printf Result String
