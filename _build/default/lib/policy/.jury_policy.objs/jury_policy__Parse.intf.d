lib/policy/parse.mli: Ast
