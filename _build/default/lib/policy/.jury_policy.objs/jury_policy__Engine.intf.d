lib/policy/engine.mli: Ast
