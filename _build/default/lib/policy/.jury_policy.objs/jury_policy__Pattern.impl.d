lib/policy/pattern.ml: String
