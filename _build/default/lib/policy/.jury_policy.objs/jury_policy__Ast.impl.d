lib/policy/ast.ml: Format Jury_controller Jury_openflow Jury_store Option Pattern Printf
