lib/policy/engine.ml: Ast Hashtbl List Parse Result
