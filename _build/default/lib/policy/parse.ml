module Event = Jury_store.Event

let ( let* ) = Result.bind

(* --- Minimal XML subset: elements, attributes, no text content. --- *)

type xml_element = {
  tag : string;
  attrs : (string * string) list;
  children : xml_element list;
}

module Lexer = struct
  type t = { src : string; mutable pos : int }

  let make src = { src; pos = 0 }
  let eof t = t.pos >= String.length t.src
  let peek t = if eof t then '\000' else t.src.[t.pos]
  let advance t = t.pos <- t.pos + 1

  let skip_ws t =
    while (not (eof t)) && (match peek t with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance t
    done

  let ident t =
    let start = t.pos in
    while
      (not (eof t))
      &&
      match peek t with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' -> true
      | _ -> false
    do
      advance t
    done;
    String.sub t.src start (t.pos - start)

  let expect t c =
    if eof t || peek t <> c then
      Error (Printf.sprintf "expected '%c' at offset %d" c t.pos)
    else begin
      advance t;
      Ok ()
    end

  let quoted t =
    let* () = expect t '"' in
    let start = t.pos in
    while (not (eof t)) && peek t <> '"' do advance t done;
    if eof t then Error "unterminated attribute value"
    else begin
      let v = String.sub t.src start (t.pos - start) in
      advance t;
      Ok v
    end
end

let rec parse_element lx =
  let open Lexer in
  skip_ws lx;
  let* () = expect lx '<' in
  let tag = ident lx in
  if tag = "" then Error "missing tag name"
  else begin
    let* attrs = parse_attrs lx [] in
    skip_ws lx;
    if peek lx = '/' then begin
      advance lx;
      let* () = expect lx '>' in
      Ok { tag; attrs; children = [] }
    end
    else
      let* () = expect lx '>' in
      let* children = parse_children lx [] in
      (* parse_children consumed "</": read the closing tag. *)
      let closing = ident lx in
      if closing <> tag then
        Error (Printf.sprintf "mismatched closing tag %s for %s" closing tag)
      else
        let* () = expect lx '>' in
        Ok { tag; attrs; children }
  end

and parse_attrs lx acc =
  let open Lexer in
  skip_ws lx;
  match peek lx with
  | '>' | '/' -> Ok (List.rev acc)
  | '=' ->
      (* The paper's "<Cache ="EdgesDB" .../>" form: a bare '=' means a
         "name" attribute. *)
      advance lx;
      let* v = quoted lx in
      parse_attrs lx (("name", v) :: acc)
  | _ ->
      let name = ident lx in
      if name = "" then Error (Printf.sprintf "bad attribute at %d" lx.pos)
      else begin
        skip_ws lx;
        let* () = expect lx '=' in
        skip_ws lx;
        let* v = quoted lx in
        parse_attrs lx ((String.lowercase_ascii name, v) :: acc)
      end

and parse_children lx acc =
  let open Lexer in
  skip_ws lx;
  let* () = expect lx '<' in
  if peek lx = '/' then begin
    advance lx;
    Ok (List.rev acc)
  end
  else begin
    (* Re-wind: parse_element expects the '<'. *)
    lx.pos <- lx.pos - 1;
    let* child = parse_element lx in
    parse_children lx (child :: acc)
  end

let parse_document src =
  let lx = Lexer.make src in
  let rec go acc =
    Lexer.skip_ws lx;
    if Lexer.eof lx then Ok (List.rev acc)
    else
      let* el = parse_element lx in
      go (el :: acc)
  in
  go []

(* --- Field interpretation shared by both syntaxes --- *)

let parse_controller = function
  | "*" -> Ok Ast.Any_controller
  | s -> (
      match int_of_string_opt s with
      | Some id -> Ok (Ast.Controller_id id)
      | None -> Error (Printf.sprintf "bad controller id %S" s))

let parse_trigger s =
  match String.lowercase_ascii s with
  | "*" | "all" -> Ok Ast.Any_trigger
  | "internal" -> Ok Ast.Internal_only
  | "external" -> Ok Ast.External_only
  | _ -> Error (Printf.sprintf "bad trigger selector %S" s)

let parse_operation s =
  match String.lowercase_ascii s with
  | "*" -> Ok Ast.Any_op
  | s -> (
      match Event.op_of_string s with
      | Some op -> Ok (Ast.Op_is op)
      | None -> Error (Printf.sprintf "bad operation %S" s))

let parse_destination s =
  match String.lowercase_ascii s with
  | "*" -> Ok Ast.Any_dest
  | "local" -> Ok Ast.Local_only
  | "remote" -> Ok Ast.Remote_only
  | _ -> Error (Printf.sprintf "bad destination %S" s)

let parse_entry s =
  match String.split_on_char ',' s with
  | [ "*"; "*" ] | [ "*" ] -> Ok Ast.Entry_any
  | [ key; value ] ->
      Ok (Ast.Entry_glob
            { key = Pattern.compile key; value = Pattern.compile value })
  | _ -> Error (Printf.sprintf "bad entry pattern %S (want key,value)" s)

let parse_check s =
  match String.lowercase_ascii s with
  | "flow-hierarchy" | "flow-hierarchy-violation" ->
      Ok Ast.Flow_hierarchy_violation
  | "flow-drop" | "flow-drops-packets" -> Ok Ast.Flow_drops_packets
  | _ -> Error (Printf.sprintf "unknown check %S" s)

let parse_allow s =
  match String.lowercase_ascii s with
  | "no" | "false" | "deny" -> Ok false
  | "yes" | "true" | "allow" -> Ok true
  | _ -> Error (Printf.sprintf "bad allow value %S" s)

(* --- XML → rule --- *)

let rule_of_policy_element el =
  if String.lowercase_ascii el.tag <> "policy" then
    Error (Printf.sprintf "expected <Policy>, got <%s>" el.tag)
  else begin
    let attr element name =
      List.assoc_opt name element.attrs
    in
    let* allow =
      match attr el "allow" with Some v -> parse_allow v | None -> Ok false
    in
    let name = Option.value (attr el "name") ~default:"policy" in
    let find tag =
      List.find_opt
        (fun c -> String.lowercase_ascii c.tag = tag)
        el.children
    in
    let* controller =
      match find "controller" with
      | Some c -> parse_controller (Option.value (attr c "id") ~default:"*")
      | None -> Ok Ast.Any_controller
    in
    let* trigger =
      match find "action" with
      | Some c -> parse_trigger (Option.value (attr c "type") ~default:"*")
      | None -> Ok Ast.Any_trigger
    in
    let* cache, operation, entry =
      match find "cache" with
      | None -> Ok (None, Ast.Any_op, Ast.Entry_any)
      | Some c ->
          let cache =
            match attr c "name" with
            | Some "*" | None -> None
            | Some name -> Some name
          in
          let* operation =
            parse_operation (Option.value (attr c "operation") ~default:"*")
          in
          let* entry =
            match attr c "check" with
            | Some check -> parse_check check
            | None -> parse_entry (Option.value (attr c "entry") ~default:"*,*")
          in
          Ok (cache, operation, entry)
    in
    let* destination =
      match find "destination" with
      | Some c -> parse_destination (Option.value (attr c "value") ~default:"*")
      | None -> Ok Ast.Any_dest
    in
    Ok (Ast.rule ~name ~allow ~controller ~trigger ?cache ~operation ~entry
          ~destination ())
  end

let xml src =
  let* elements = parse_document src in
  List.fold_left
    (fun acc el ->
      let* acc = acc in
      let* rule = rule_of_policy_element el in
      Ok (rule :: acc))
    (Ok []) elements
  |> Result.map List.rev

(* --- DSL --- *)

let dsl_line line =
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Error "empty rule"
  | verb :: fields ->
      let* allow = parse_allow verb in
      List.fold_left
        (fun acc field ->
          let* rule = acc in
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "bad field %S (want k=v)" field)
          | Some i -> (
              let k = String.lowercase_ascii (String.sub field 0 i) in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              match k with
              | "name" -> Ok { rule with Ast.name = v }
              | "ctrl" | "controller" ->
                  let* c = parse_controller v in
                  Ok { rule with Ast.controller = c }
              | "trigger" ->
                  let* tr = parse_trigger v in
                  Ok { rule with Ast.trigger = tr }
              | "cache" ->
                  Ok
                    { rule with
                      Ast.cache =
                        (if v = "*" then None
                         else Some (Jury_store.Cache_names.normalize v)) }
              | "op" | "operation" ->
                  let* op = parse_operation v in
                  Ok { rule with Ast.operation = op }
              | "entry" ->
                  let* e = parse_entry v in
                  Ok { rule with Ast.entry = e }
              | "check" ->
                  let* e = parse_check v in
                  Ok { rule with Ast.entry = e }
              | "dest" | "destination" ->
                  let* d = parse_destination v in
                  Ok { rule with Ast.destination = d }
              | _ -> Error (Printf.sprintf "unknown field %S" k)))
        (Ok (Ast.rule ~allow ()))
        fields

let dsl src =
  String.split_on_char '\n' src
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> List.fold_left
       (fun acc line ->
         let* acc = acc in
         let* rule = dsl_line line in
         Ok (rule :: acc))
       (Ok [])
  |> Result.map List.rev
