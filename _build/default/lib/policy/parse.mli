(** Parsers for administrator-authored policies.

    Two concrete syntaxes are supported:

    - the paper's XML-ish form (Fig. 3):
      {v
      <Policy allow="No" name="no-proactive-topology">
        <Controller id="*"/>
        <Action type="Internal"/>
        <Cache name="EdgesDB" entry="*,*" operation="*"/>
        <Destination value="*"/>
      </Policy>
      v}
      (the paper writes [<Cache ="EdgesDB" ...>]; both [name=] and the
      bare [=] form are accepted, as is [<Action type=.../>] for the
      trigger selector);

    - a compact one-rule-per-line DSL:
      {v deny ctrl=* trigger=internal cache=EDGEDB op=* entry=*,* dest=* v}
      with optional [name=...], [check=flow-hierarchy] /
      [check=flow-drop] instead of [entry=...]. Lines starting with '#'
      are comments. *)

val xml : string -> (Ast.rule list, string) result
(** Parse a document containing zero or more [<Policy>] elements. *)

val dsl : string -> (Ast.rule list, string) result
val dsl_line : string -> (Ast.rule, string) result
