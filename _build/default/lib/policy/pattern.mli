(** Glob patterns for policy entry matching: [*] matches any run of
    characters, [?] any single character; everything else is literal. *)

type t

val compile : string -> t
val matches : t -> string -> bool
val source : t -> string
val is_star : t -> bool
(** [true] for the pattern ["*"], letting the engine skip the match. *)
