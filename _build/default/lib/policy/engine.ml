type t = {
  mutable ordered : Ast.rule list;  (* insertion order, for [rules] *)
  by_cache : (string, Ast.rule list ref) Hashtbl.t;
  any_cache : Ast.rule list ref;
}

let add_rule t rule =
  t.ordered <- t.ordered @ [ rule ];
  match rule.Ast.cache with
  | None -> t.any_cache := !(t.any_cache) @ [ rule ]
  | Some cache -> (
      match Hashtbl.find_opt t.by_cache cache with
      | Some bucket -> bucket := !bucket @ [ rule ]
      | None -> Hashtbl.add t.by_cache cache (ref [ rule ]))

let create rules =
  let t =
    { ordered = []; by_cache = Hashtbl.create 8; any_cache = ref [] }
  in
  List.iter (add_rule t) rules;
  t

let rules t = t.ordered
let rule_count t = List.length t.ordered

type verdict = Allowed | Denied of Ast.rule

let check t (q : Ast.query) =
  let bucket =
    match Hashtbl.find_opt t.by_cache q.Ast.q_cache with
    | Some b -> !b
    | None -> []
  in
  (* Cache-specific rules first, then cache-wildcards; within each,
     insertion order. The first matching rule decides. *)
  let rec scan = function
    | [] -> None
    | rule :: rest ->
        if Ast.rule_matches rule q then
          Some (if rule.Ast.allow then Allowed else Denied rule)
        else scan rest
  in
  match scan bucket with
  | Some verdict -> verdict
  | None -> (
      match scan !(t.any_cache) with
      | Some verdict -> verdict
      | None -> Allowed)

let check_all t queries =
  List.filter_map
    (fun q -> match check t q with Allowed -> None | Denied r -> Some r)
    queries

let of_dsl src = Result.map create (Parse.dsl src)
let of_xml src = Result.map create (Parse.xml src)
