(** Policy evaluation.

    The validator calls {!check} once per validated response (one of
    the matching replica responses — §V notes one check per policy
    suffices once consensus holds). Rules are bucketed by cache name so
    a response only scans the rules that could apply; within a bucket
    evaluation is first-match-wins, and an unmatched query is allowed. *)

type t

val create : Ast.rule list -> t
val rules : t -> Ast.rule list
val rule_count : t -> int
val add_rule : t -> Ast.rule -> unit

type verdict = Allowed | Denied of Ast.rule

val check : t -> Ast.query -> verdict

val check_all : t -> Ast.query list -> Ast.rule list
(** Every deny verdict across a whole response's queries. *)

val of_dsl : string -> (t, string) result
val of_xml : string -> (t, string) result
