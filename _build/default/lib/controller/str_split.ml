let split_on_substring ~sep s =
  if sep = "" then invalid_arg "Str_split.split_on_substring: empty separator";
  let seplen = String.length sep in
  let slen = String.length s in
  let rec find_from i =
    if i + seplen > slen then None
    else if String.sub s i seplen = sep then Some i
    else find_from (i + 1)
  in
  let rec go start acc =
    match find_from start with
    | None -> List.rev (String.sub s start (slen - start) :: acc)
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
  in
  go 0 []
