open Jury_openflow

module Taint = struct
  type t = string

  let external_trigger ~primary ~serial =
    Printf.sprintf "ext:%d:%d" primary serial

  let internal_trigger ~origin ~seq = Printf.sprintf "int:%d:%d" origin seq

  let parse t =
    match String.split_on_char ':' t with
    | [ "ext"; p; s ] -> (
        match (int_of_string_opt p, int_of_string_opt s) with
        | Some p, Some s -> Some (`Ext (p, s))
        | _ -> None)
    | [ "int"; o; s ] -> (
        match (int_of_string_opt o, int_of_string_opt s) with
        | Some o, Some s -> Some (`Int (o, s))
        | _ -> None)
    | _ -> None

  let primary_of t =
    match parse t with Some (`Ext (p, _)) -> Some p | _ -> None

  let is_external t =
    match parse t with Some (`Ext _) -> true | _ -> false

  let to_string t = t
  let of_string s = match parse s with Some _ -> Some s | None -> None
  let equal = String.equal
  let compare = String.compare
  let pp = Format.pp_print_string
end

type rest_request =
  | Install_flow of { dpid : Of_types.Dpid.t; flow : Of_message.flow_mod }
  | Delete_flow of { dpid : Of_types.Dpid.t; fm_match : Of_match.t }
  | Query_flows of Of_types.Dpid.t

type trigger =
  | Packet_in of Of_types.Dpid.t * Of_message.packet_in
  | Port_status of Of_types.Dpid.t * Of_message.port_status
  | Switch_join of Of_types.Dpid.t * Of_message.features_reply
  | Flow_removed of Of_types.Dpid.t * Of_message.flow_removed
  | Rest of rest_request
  | Internal of { app : string; work : internal_work }

and internal_work = Emit_lldp | Proactive of action list

and action =
  | Cache_write of {
      cache : string;
      op : Jury_store.Event.op;
      key : string;
      value : string;
    }
  | Network_send of { dpid : Of_types.Dpid.t; payload : Of_message.payload }

let trigger_is_external = function
  | Packet_in _ | Port_status _ | Switch_join _ | Flow_removed _ | Rest _ ->
      true
  | Internal _ -> false

let trigger_name = function
  | Packet_in (_, pi) -> (
      match pi.frame.payload with
      | Jury_packet.Frame.Lldp _ -> "PACKET_IN/LLDP"
      | Jury_packet.Frame.Arp _ -> "PACKET_IN/ARP"
      | Jury_packet.Frame.Ipv4 _ -> "PACKET_IN/IP"
      | Jury_packet.Frame.Raw _ -> "PACKET_IN/RAW")
  | Port_status _ -> "PORT_STATUS"
  | Switch_join _ -> "SWITCH_JOIN"
  | Flow_removed _ -> "FLOW_REMOVED"
  | Rest (Install_flow _) -> "REST/INSTALL_FLOW"
  | Rest (Delete_flow _) -> "REST/DELETE_FLOW"
  | Rest (Query_flows _) -> "REST/QUERY_FLOWS"
  | Internal { app; _ } -> "INTERNAL/" ^ app

let pp_trigger fmt t =
  Format.pp_print_string fmt (trigger_name t);
  match t with
  | Packet_in (dpid, pi) ->
      Format.fprintf fmt "@%a:%a" Of_types.Dpid.pp dpid Of_types.Port.pp
        pi.in_port
  | Port_status (dpid, ps) ->
      Format.fprintf fmt "@%a:%a up=%b" Of_types.Dpid.pp dpid Of_types.Port.pp
        ps.ps_port ps.ps_link_up
  | Switch_join (dpid, _) | Flow_removed (dpid, _) ->
      Format.fprintf fmt "@%a" Of_types.Dpid.pp dpid
  | Rest _ | Internal _ -> ()

let pp_action fmt = function
  | Cache_write { cache; op; key; value } ->
      Format.fprintf fmt "C:%s/%s %s=%S" cache
        (Jury_store.Event.op_to_string op)
        key value
  | Network_send { dpid; payload } ->
      Format.fprintf fmt "N:%a %s" Of_types.Dpid.pp dpid
        (Of_message.type_name payload)

let action_fingerprint = function
  | Cache_write { cache; op; key; value } ->
      Printf.sprintf "C|%s|%s|%s|%s" cache
        (Jury_store.Event.op_to_string op)
        key value
  | Network_send { dpid; payload } ->
      let wire = Of_wire.encode (Of_message.make ~xid:0 payload) in
      Printf.sprintf "N|%s|%s"
        (Of_types.Dpid.to_string dpid)
        (Digest.to_hex (Digest.string wire))

let fingerprint_response actions =
  actions
  |> List.map action_fingerprint
  |> List.sort String.compare
  |> String.concat "\n"
  |> fun s -> Digest.to_hex (Digest.string s)
