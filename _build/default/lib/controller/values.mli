(** Canonical cache keys and values.

    Every controller in the cluster serialises state identically so
    that replicated executions fingerprint equal and JURY's validator
    (and the policy engine) can decode entries back into structure. *)

open Jury_openflow
module Addr = Jury_packet.Addr

(** HOSTDB: key = MAC, value = attachment point + IP. *)
module Host : sig
  val key : Addr.Mac.t -> string
  val value : dpid:Of_types.Dpid.t -> port:int -> ip:Addr.Ipv4.t -> string
  val parse : string -> (Of_types.Dpid.t * int * Addr.Ipv4.t) option
end

(** ARPDB: key = IP, value = MAC. *)
module Arp : sig
  val key : Addr.Ipv4.t -> string
  val value : Addr.Mac.t -> string
  val parse : string -> Addr.Mac.t option
end

(** LINKSDB / EDGEDB: key = canonical endpoint pair, value = state. *)
module Link : sig
  val key :
    Of_types.Dpid.t * int -> Of_types.Dpid.t * int -> string
  (** Order-insensitive: both endpoint orders give the same key. *)

  val value_up : string
  val value_down : string

  val parse_key :
    string -> ((Of_types.Dpid.t * int) * (Of_types.Dpid.t * int)) option

  val involves : string -> Of_types.Dpid.t -> int -> bool
  (** Does this link key touch the given switch port? *)
end

(** FLOWSDB: key = dpid + match digest, value = hex-encoded FLOW_MOD. *)
module Flow : sig
  val key : Of_types.Dpid.t -> Of_match.t -> priority:int -> string
  val value : Of_message.flow_mod -> string
  val parse : string -> Of_message.flow_mod option
  val dpid_of_key : string -> Of_types.Dpid.t option
end

(** SWITCHDB: key = dpid, value = connection state + master + ports. *)
module Switch : sig
  val key : Of_types.Dpid.t -> string
  val value_connected : master:int -> ports:int list -> string
  val parse : string -> (int * int list) option
  (** (master, ports) *)
end

(** MASTERDB: key = dpid, value = controller id. *)
module Master : sig
  val key : Of_types.Dpid.t -> string
  val value : int -> string
  val parse : string -> int option
end

val hex_encode : string -> string
val hex_decode : string -> string option

val parse_dpid_key : string -> Of_types.Dpid.t option
(** Parse a bare dpid key (as used by SWITCHDB / MASTERDB). *)
