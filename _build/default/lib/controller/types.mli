(** Triggers and actions — the vocabulary shared by the controllers and
    JURY.

    A {e trigger} is anything that makes a controller act (§II-A.2 of
    the paper): southbound OpenFlow messages and northbound REST calls
    are {e external}; administrator logins, periodic application work
    and other in-controller events are {e internal}. A controller's
    response to a trigger is a list of {!action}s: cache writes and/or
    network sends — the C/N/CN side-effect classes of §II-A.3. *)

open Jury_openflow

(** Identifies a trigger end-to-end. External triggers are tainted by
    JURY's replicator before they reach any controller; internal
    triggers are identified after the fact from their first cache
    event. *)
module Taint : sig
  type t = private string

  val external_trigger : primary:int -> serial:int -> t
  (** Minted by the replicator: identifies the trigger and the primary
      controller that received it (§IV-A). *)

  val internal_trigger : origin:int -> seq:int -> t
  (** Synthesised by the validator for proactive actions, keyed by the
      first cache event's (origin, sequence). *)

  val primary_of : t -> int option
  (** The primary controller id for an external taint, [None] for
      internal. *)

  val is_external : t -> bool
  val to_string : t -> string
  val of_string : string -> t option
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

type rest_request =
  | Install_flow of { dpid : Of_types.Dpid.t; flow : Of_message.flow_mod }
  | Delete_flow of { dpid : Of_types.Dpid.t; fm_match : Of_match.t }
  | Query_flows of Of_types.Dpid.t

type trigger =
  | Packet_in of Of_types.Dpid.t * Of_message.packet_in
  | Port_status of Of_types.Dpid.t * Of_message.port_status
  | Switch_join of Of_types.Dpid.t * Of_message.features_reply
  | Flow_removed of Of_types.Dpid.t * Of_message.flow_removed
  | Rest of rest_request
  | Internal of { app : string; work : internal_work }

and internal_work =
  | Emit_lldp
      (** periodic topology probe on every mastered switch port *)
  | Proactive of action list
      (** an application's own pre-planned actions *)

and action =
  | Cache_write of {
      cache : string;
      op : Jury_store.Event.op;
      key : string;
      value : string;
    }
  | Network_send of { dpid : Of_types.Dpid.t; payload : Of_message.payload }

val trigger_is_external : trigger -> bool
val trigger_name : trigger -> string
val pp_trigger : Format.formatter -> trigger -> unit
val pp_action : Format.formatter -> action -> unit

val action_fingerprint : action -> string
(** Canonical string for consensus comparison: two replicas took "the
    same action" iff the fingerprints are equal. Network payload
    fingerprints go through the wire codec with the xid zeroed, so
    per-controller xid counters don't break consensus. *)

val fingerprint_response : action list -> string
(** Order-insensitive fingerprint of a whole response. *)
