(** Tiny string utility: substring-delimited splitting (the stdlib only
    splits on single characters). *)

val split_on_substring : sep:string -> string -> string list
(** [split_on_substring ~sep s] — like [String.split_on_char] but with a
    multi-character separator. [sep] must be non-empty. *)
