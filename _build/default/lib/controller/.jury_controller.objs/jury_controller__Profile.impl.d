lib/controller/profile.ml: Jury_sim Jury_store Time
