lib/controller/str_split.ml: List String
