lib/controller/types.mli: Format Jury_openflow Jury_store Of_match Of_message Of_types
