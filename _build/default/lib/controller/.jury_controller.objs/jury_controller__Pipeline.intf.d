lib/controller/pipeline.mli: Jury_sim
