lib/controller/controller.mli: Jury_openflow Jury_sim Jury_store Of_message Of_types Pipeline Profile Types
