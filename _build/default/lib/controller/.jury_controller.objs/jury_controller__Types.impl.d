lib/controller/types.ml: Digest Format Jury_openflow Jury_packet Jury_store List Of_match Of_message Of_types Of_wire Printf String
