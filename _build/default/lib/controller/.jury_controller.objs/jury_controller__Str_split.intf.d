lib/controller/str_split.mli:
