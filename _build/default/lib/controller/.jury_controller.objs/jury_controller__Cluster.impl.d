lib/controller/cluster.ml: Array Controller Engine Fun Jury_net Jury_openflow Jury_sim Jury_store List Logs Of_message Of_types Of_wire Option Profile Time Types Values
