lib/controller/profile.mli: Jury_sim Jury_store
