lib/controller/pipeline.ml: Engine Float Jury_sim Queue Rng Time
