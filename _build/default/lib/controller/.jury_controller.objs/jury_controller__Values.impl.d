lib/controller/values.ml: Buffer Char Digest Int64 Jury_openflow Jury_packet List Of_match Of_message Of_types Of_wire Option Printf Str_split String
