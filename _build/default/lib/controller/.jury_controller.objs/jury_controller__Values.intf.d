lib/controller/values.mli: Jury_openflow Jury_packet Of_match Of_message Of_types
