lib/controller/cluster.mli: Controller Jury_net Jury_openflow Jury_sim Jury_store Of_message Of_types Profile Types
