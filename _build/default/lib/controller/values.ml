open Jury_openflow
module Addr = Jury_packet.Addr

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    try
      Some
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with Failure _ -> None

let dpid_to_key d = Printf.sprintf "%Lx" (Of_types.Dpid.to_int64 d)

let dpid_of_key s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some v -> Some (Of_types.Dpid.of_int64 v)
  | None -> None

module Host = struct
  let key mac = Addr.Mac.to_string mac

  let value ~dpid ~port ~ip =
    Printf.sprintf "%s:%d:%s" (dpid_to_key dpid) port (Addr.Ipv4.to_string ip)

  let parse v =
    match String.split_on_char ':' v with
    | [ d; p; ip ] -> (
        match (dpid_of_key d, int_of_string_opt p) with
        | Some dpid, Some port -> (
            try Some (dpid, port, Addr.Ipv4.of_string ip)
            with Invalid_argument _ -> None)
        | _ -> None)
    | _ -> None
end

module Arp = struct
  let key ip = Addr.Ipv4.to_string ip
  let value mac = Addr.Mac.to_string mac

  let parse v =
    try Some (Addr.Mac.of_string v) with Invalid_argument _ -> None
end

module Link = struct
  let endpoint_str (d, p) = Printf.sprintf "%s:%d" (dpid_to_key d) p

  let key e1 e2 =
    let s1 = endpoint_str e1 and s2 = endpoint_str e2 in
    if String.compare s1 s2 <= 0 then s1 ^ "--" ^ s2 else s2 ^ "--" ^ s1

  let value_up = "up"
  let value_down = "down"

  let parse_endpoint s =
    match String.split_on_char ':' s with
    | [ d; p ] -> (
        match (dpid_of_key d, int_of_string_opt p) with
        | Some dpid, Some port -> Some (dpid, port)
        | _ -> None)
    | _ -> None

  let parse_key k =
    match Str_split.split_on_substring ~sep:"--" k with
    | [ a; b ] -> (
        match (parse_endpoint a, parse_endpoint b) with
        | Some e1, Some e2 -> Some (e1, e2)
        | _ -> None)
    | _ -> None

  let involves k dpid port =
    match parse_key k with
    | None -> false
    | Some ((d1, p1), (d2, p2)) ->
        (Of_types.Dpid.equal d1 dpid && p1 = port)
        || (Of_types.Dpid.equal d2 dpid && p2 = port)
end

module Flow = struct
  let key dpid m ~priority =
    Printf.sprintf "%s/%s" (dpid_to_key dpid)
      (Digest.to_hex
         (Digest.string (Of_match.to_string m ^ string_of_int priority)))

  let value (fm : Of_message.flow_mod) =
    hex_encode (Of_wire.encode (Of_message.make ~xid:0 (Of_message.Flow_mod fm)))

  let parse v =
    match hex_decode v with
    | None -> None
    | Some wire -> (
        match Of_wire.decode wire with
        | { Of_message.payload = Of_message.Flow_mod fm; _ } -> Some fm
        | _ -> None
        | exception _ -> None)

  let dpid_of_key k =
    match String.index_opt k '/' with
    | None -> None
    | Some i -> dpid_of_key (String.sub k 0 i)
end

module Switch = struct
  let key = dpid_to_key

  let value_connected ~master ~ports =
    Printf.sprintf "connected:%d:%s" master
      (String.concat "," (List.map string_of_int (List.sort compare ports)))

  let parse v =
    match String.split_on_char ':' v with
    | [ "connected"; m; ports ] -> (
        match int_of_string_opt m with
        | None -> None
        | Some master ->
            let port_list =
              if ports = "" then Some []
              else
                String.split_on_char ',' ports
                |> List.map int_of_string_opt
                |> List.fold_left
                     (fun acc p ->
                       match (acc, p) with
                       | Some acc, Some p -> Some (p :: acc)
                       | _ -> None)
                     (Some [])
                |> Option.map List.rev
            in
            Option.map (fun ps -> (master, ps)) port_list)
    | _ -> None
end

module Master = struct
  let key = dpid_to_key
  let value id = string_of_int id
  let parse = int_of_string_opt
end

let parse_dpid_key = dpid_of_key
