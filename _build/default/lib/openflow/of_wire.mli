(** Binary wire codec for OpenFlow 1.0 messages.

    The simulator's control channels carry these bytes, so replication,
    encapsulation (ODL's PACKET_IN-in-PACKET_IN) and the validator's
    byte accounting all operate on realistic message sizes. The framing
    follows the OF 1.0 header (version 0x01, type, length, xid); match
    and action encodings follow the spec's fixed layouts. *)

val encode : Of_message.t -> string

val decode : string -> Of_message.t
(** Raises {!Wire_buf.Truncated} (re-exported from [Jury_packet]) or
    [Invalid_argument] on malformed input. *)

val decode_all : string -> Of_message.t list
(** Splits a byte stream into consecutive messages using the length
    field — how a TCP control channel is deframed. *)

val header_size : int
(** 8 bytes. *)

val encoded_size : Of_message.t -> int
