type packet_in_reason = No_match | Action_to_controller

type packet_in = {
  buffer_id : Of_types.buffer_id;
  in_port : Of_types.Port.t;
  reason : packet_in_reason;
  frame : Jury_packet.Frame.t;
}

type packet_out = {
  po_buffer_id : Of_types.buffer_id;
  po_in_port : Of_types.Port.t;
  po_actions : Of_action.t list;
  po_frame : Jury_packet.Frame.t option;
}

type flow_mod_command = Add | Modify | Modify_strict | Delete | Delete_strict

type flow_mod = {
  command : flow_mod_command;
  fm_match : Of_match.t;
  priority : int;
  cookie : Of_types.cookie;
  idle_timeout : int;
  hard_timeout : int;
  actions : Of_action.t list;
  fm_buffer_id : Of_types.buffer_id;
  out_port : Of_types.Port.t option;
}

type flow_removed_reason = Idle_timeout | Hard_timeout | Deleted

type flow_removed = {
  fr_match : Of_match.t;
  fr_cookie : Of_types.cookie;
  fr_priority : int;
  fr_reason : flow_removed_reason;
  duration_sec : int;
  packet_count : int64;
  byte_count : int64;
}

type port_status_reason = Port_add | Port_delete | Port_modify

type port_status = {
  ps_reason : port_status_reason;
  ps_port : Of_types.Port.t;
  ps_link_up : bool;
}

type features_reply = {
  datapath_id : Of_types.Dpid.t;
  n_buffers : int;
  n_tables : int;
  ports : Of_types.Port.t list;
}

type stats_request = Flow_stats_request of Of_match.t | Table_stats_request

type flow_stat = {
  fs_match : Of_match.t;
  fs_priority : int;
  fs_cookie : Of_types.cookie;
  fs_actions : Of_action.t list;
  fs_packet_count : int64;
}

type stats_reply = Flow_stats_reply of flow_stat list | Table_stats_reply of int

type payload =
  | Hello
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of features_reply
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Flow_removed of flow_removed
  | Port_status of port_status
  | Barrier_request
  | Barrier_reply
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Error of int * int

type t = { xid : Of_types.xid; payload : payload }

let make ~xid payload = { xid; payload }

let flow_mod ?(priority = 100) ?(cookie = 0L) ?(idle_timeout = 0)
    ?(hard_timeout = 0) ?(buffer_id = None) ?(command = Add) fm_match actions =
  { command;
    fm_match;
    priority;
    cookie;
    idle_timeout;
    hard_timeout;
    actions;
    fm_buffer_id = buffer_id;
    out_port = None }

let type_name = function
  | Hello -> "HELLO"
  | Echo_request _ -> "ECHO_REQUEST"
  | Echo_reply _ -> "ECHO_REPLY"
  | Features_request -> "FEATURES_REQUEST"
  | Features_reply _ -> "FEATURES_REPLY"
  | Packet_in _ -> "PACKET_IN"
  | Packet_out _ -> "PACKET_OUT"
  | Flow_mod _ -> "FLOW_MOD"
  | Flow_removed _ -> "FLOW_REMOVED"
  | Port_status _ -> "PORT_STATUS"
  | Barrier_request -> "BARRIER_REQUEST"
  | Barrier_reply -> "BARRIER_REPLY"
  | Stats_request _ -> "STATS_REQUEST"
  | Stats_reply _ -> "STATS_REPLY"
  | Error _ -> "ERROR"

let pp fmt t =
  Format.fprintf fmt "%s(xid=%d" (type_name t.payload) t.xid;
  (match t.payload with
  | Packet_in pi ->
      Format.fprintf fmt " in_port=%a %a" Of_types.Port.pp pi.in_port
        Jury_packet.Frame.pp pi.frame
  | Flow_mod fm ->
      Format.fprintf fmt " %s %a prio=%d -> %a"
        (match fm.command with
        | Add -> "add"
        | Modify -> "mod"
        | Modify_strict -> "mod_strict"
        | Delete -> "del"
        | Delete_strict -> "del_strict")
        Of_match.pp fm.fm_match fm.priority Of_action.pp_list fm.actions
  | Packet_out po ->
      Format.fprintf fmt " actions=%a" Of_action.pp_list po.po_actions
  | Port_status ps ->
      Format.fprintf fmt " port=%a up=%b" Of_types.Port.pp ps.ps_port
        ps.ps_link_up
  | Features_reply fr ->
      Format.fprintf fmt " dpid=%a ports=%d" Of_types.Dpid.pp fr.datapath_id
        (List.length fr.ports)
  | Hello | Echo_request _ | Echo_reply _ | Features_request
  | Flow_removed _ | Barrier_request | Barrier_reply | Stats_request _
  | Stats_reply _ | Error _ ->
      ());
  Format.pp_print_string fmt ")"

let equal (a : t) b = a = b
