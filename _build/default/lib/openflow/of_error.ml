type t =
  | Hello_failed of [ `Incompatible | `Eperm ]
  | Bad_request of
      [ `Bad_version | `Bad_type | `Bad_stat | `Bad_vendor | `Eperm
      | `Buffer_empty | `Buffer_unknown ]
  | Bad_action of
      [ `Bad_type | `Bad_len | `Bad_out_port | `Bad_argument | `Eperm
      | `Too_many | `Bad_queue ]
  | Flow_mod_failed of
      [ `All_tables_full | `Overlap | `Eperm | `Bad_emerg_timeout
      | `Bad_command | `Unsupported ]
  | Port_mod_failed of [ `Bad_port | `Bad_hw_addr ]
  | Queue_op_failed of [ `Bad_port | `Bad_queue | `Eperm ]

let to_wire = function
  | Hello_failed `Incompatible -> (0, 0)
  | Hello_failed `Eperm -> (0, 1)
  | Bad_request `Bad_version -> (1, 0)
  | Bad_request `Bad_type -> (1, 1)
  | Bad_request `Bad_stat -> (1, 2)
  | Bad_request `Bad_vendor -> (1, 3)
  | Bad_request `Eperm -> (1, 5)
  | Bad_request `Buffer_empty -> (1, 6)
  | Bad_request `Buffer_unknown -> (1, 7)
  | Bad_action `Bad_type -> (2, 0)
  | Bad_action `Bad_len -> (2, 1)
  | Bad_action `Bad_out_port -> (2, 4)
  | Bad_action `Bad_argument -> (2, 5)
  | Bad_action `Eperm -> (2, 6)
  | Bad_action `Too_many -> (2, 7)
  | Bad_action `Bad_queue -> (2, 8)
  | Flow_mod_failed `All_tables_full -> (3, 0)
  | Flow_mod_failed `Overlap -> (3, 1)
  | Flow_mod_failed `Eperm -> (3, 2)
  | Flow_mod_failed `Bad_emerg_timeout -> (3, 3)
  | Flow_mod_failed `Bad_command -> (3, 4)
  | Flow_mod_failed `Unsupported -> (3, 5)
  | Port_mod_failed `Bad_port -> (4, 0)
  | Port_mod_failed `Bad_hw_addr -> (4, 1)
  | Queue_op_failed `Bad_port -> (5, 0)
  | Queue_op_failed `Bad_queue -> (5, 1)
  | Queue_op_failed `Eperm -> (5, 2)

let all =
  [ Hello_failed `Incompatible; Hello_failed `Eperm;
    Bad_request `Bad_version; Bad_request `Bad_type; Bad_request `Bad_stat;
    Bad_request `Bad_vendor; Bad_request `Eperm; Bad_request `Buffer_empty;
    Bad_request `Buffer_unknown;
    Bad_action `Bad_type; Bad_action `Bad_len; Bad_action `Bad_out_port;
    Bad_action `Bad_argument; Bad_action `Eperm; Bad_action `Too_many;
    Bad_action `Bad_queue;
    Flow_mod_failed `All_tables_full; Flow_mod_failed `Overlap;
    Flow_mod_failed `Eperm; Flow_mod_failed `Bad_emerg_timeout;
    Flow_mod_failed `Bad_command; Flow_mod_failed `Unsupported;
    Port_mod_failed `Bad_port; Port_mod_failed `Bad_hw_addr;
    Queue_op_failed `Bad_port; Queue_op_failed `Bad_queue;
    Queue_op_failed `Eperm ]

let of_wire pair = List.find_opt (fun e -> to_wire e = pair) all

let describe = function
  | Hello_failed `Incompatible -> "hello failed: incompatible version"
  | Hello_failed `Eperm -> "hello failed: permissions"
  | Bad_request `Bad_version -> "bad request: version not supported"
  | Bad_request `Bad_type -> "bad request: unknown message type"
  | Bad_request `Bad_stat -> "bad request: unknown stats type"
  | Bad_request `Bad_vendor -> "bad request: unknown vendor"
  | Bad_request `Eperm -> "bad request: permissions"
  | Bad_request `Buffer_empty -> "bad request: buffer already used"
  | Bad_request `Buffer_unknown -> "bad request: unknown buffer"
  | Bad_action `Bad_type -> "bad action: unknown action type"
  | Bad_action `Bad_len -> "bad action: wrong length"
  | Bad_action `Bad_out_port -> "bad action: bad output port"
  | Bad_action `Bad_argument -> "bad action: bad argument"
  | Bad_action `Eperm -> "bad action: permissions"
  | Bad_action `Too_many -> "bad action: too many actions"
  | Bad_action `Bad_queue -> "bad action: bad queue"
  | Flow_mod_failed `All_tables_full -> "flow mod failed: tables full"
  | Flow_mod_failed `Overlap -> "flow mod failed: overlapping entry"
  | Flow_mod_failed `Eperm -> "flow mod failed: permissions"
  | Flow_mod_failed `Bad_emerg_timeout -> "flow mod failed: bad emergency timeout"
  | Flow_mod_failed `Bad_command -> "flow mod failed: bad command"
  | Flow_mod_failed `Unsupported -> "flow mod failed: unsupported match/action"
  | Port_mod_failed `Bad_port -> "port mod failed: bad port"
  | Port_mod_failed `Bad_hw_addr -> "port mod failed: bad hardware address"
  | Queue_op_failed `Bad_port -> "queue op failed: bad port"
  | Queue_op_failed `Bad_queue -> "queue op failed: bad queue"
  | Queue_op_failed `Eperm -> "queue op failed: permissions"

let pp fmt t = Format.pp_print_string fmt (describe t)
let flow_mod_rejected = Flow_mod_failed `Unsupported
