(** OpenFlow 1.0 control messages exchanged between switch and
    controller. *)

type packet_in_reason = No_match | Action_to_controller

type packet_in = {
  buffer_id : Of_types.buffer_id;
  in_port : Of_types.Port.t;
  reason : packet_in_reason;
  frame : Jury_packet.Frame.t;
}

type packet_out = {
  po_buffer_id : Of_types.buffer_id;
  po_in_port : Of_types.Port.t;
  po_actions : Of_action.t list;
  po_frame : Jury_packet.Frame.t option;
      (** [None] when acting on a buffered packet. *)
}

type flow_mod_command = Add | Modify | Modify_strict | Delete | Delete_strict

type flow_mod = {
  command : flow_mod_command;
  fm_match : Of_match.t;
  priority : int;
  cookie : Of_types.cookie;
  idle_timeout : int;   (** seconds, 0 = permanent *)
  hard_timeout : int;
  actions : Of_action.t list;
  fm_buffer_id : Of_types.buffer_id;
  out_port : Of_types.Port.t option;  (** filter for Delete *)
}

type flow_removed_reason = Idle_timeout | Hard_timeout | Deleted

type flow_removed = {
  fr_match : Of_match.t;
  fr_cookie : Of_types.cookie;
  fr_priority : int;
  fr_reason : flow_removed_reason;
  duration_sec : int;
  packet_count : int64;
  byte_count : int64;
}

type port_status_reason = Port_add | Port_delete | Port_modify

type port_status = {
  ps_reason : port_status_reason;
  ps_port : Of_types.Port.t;
  ps_link_up : bool;
}

type features_reply = {
  datapath_id : Of_types.Dpid.t;
  n_buffers : int;
  n_tables : int;
  ports : Of_types.Port.t list;
}

type stats_request = Flow_stats_request of Of_match.t | Table_stats_request

type flow_stat = {
  fs_match : Of_match.t;
  fs_priority : int;
  fs_cookie : Of_types.cookie;
  fs_actions : Of_action.t list;
  fs_packet_count : int64;
}

type stats_reply = Flow_stats_reply of flow_stat list | Table_stats_reply of int

type payload =
  | Hello
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of features_reply
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Flow_removed of flow_removed
  | Port_status of port_status
  | Barrier_request
  | Barrier_reply
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Error of int * int  (** type, code *)

type t = { xid : Of_types.xid; payload : payload }

val make : xid:Of_types.xid -> payload -> t

val flow_mod :
  ?priority:int -> ?cookie:Of_types.cookie -> ?idle_timeout:int ->
  ?hard_timeout:int -> ?buffer_id:Of_types.buffer_id ->
  ?command:flow_mod_command -> Of_match.t -> Of_action.t list -> flow_mod
(** Convenience builder with the defaults every controller app uses:
    priority 100, no cookie, timeouts 0 (ONOS-style reactive apps set
    their own idle timeout explicitly). *)

val type_name : payload -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
