(** Basic OpenFlow identifiers (OpenFlow 1.0 flavour). *)

module Dpid : sig
  type t = private int64
  (** Datapath identifier of a switch. *)

  val of_int : int -> t
  val of_int64 : int64 -> t
  val to_int64 : t -> int64
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Port : sig
  type t = int
  (** Physical ports are 1-based small integers; the OpenFlow virtual
      ports are the reserved values below. *)

  val controller : t
  (** 0xfffd — send to controller *)

  val flood : t
  (** 0xfffb — all ports except ingress *)

  val all : t
  (** 0xfffc — all ports including ingress *)

  val local : t
  (** 0xfffe *)

  val none : t
  (** 0xffff *)

  val in_port : t
  (** 0xfff8 — send back out the ingress port *)

  val is_physical : t -> bool
  val pp : Format.formatter -> t -> unit
end

type xid = int
(** OpenFlow transaction id. *)

type buffer_id = int option
(** Switch-side buffer holding a packet awaiting a verdict; [None] means
    the full packet rode inside the PACKET_IN. *)

type cookie = int64
(** Opaque controller-chosen flow identifier. *)
