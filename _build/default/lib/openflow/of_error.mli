(** OpenFlow 1.0 error taxonomy.

    The switch answers a rejected request with an ERROR message carrying
    a numeric (type, code) pair; this module gives the pairs names and
    printable descriptions so controllers and tests don't juggle raw
    integers. *)

type t =
  | Hello_failed of [ `Incompatible | `Eperm ]
  | Bad_request of
      [ `Bad_version | `Bad_type | `Bad_stat | `Bad_vendor | `Eperm
      | `Buffer_empty | `Buffer_unknown ]
  | Bad_action of
      [ `Bad_type | `Bad_len | `Bad_out_port | `Bad_argument | `Eperm
      | `Too_many | `Bad_queue ]
  | Flow_mod_failed of
      [ `All_tables_full | `Overlap | `Eperm | `Bad_emerg_timeout
      | `Bad_command | `Unsupported ]
  | Port_mod_failed of [ `Bad_port | `Bad_hw_addr ]
  | Queue_op_failed of [ `Bad_port | `Bad_queue | `Eperm ]

val to_wire : t -> int * int
(** The (type, code) pair as carried by {!Of_message.Error}. *)

val of_wire : int * int -> t option
val describe : t -> string
val pp : Format.formatter -> t -> unit

val flow_mod_rejected : t
(** The error a strict switch raises for a hierarchy-violating match
    ([Flow_mod_failed `Unsupported]) — what {!Jury_net.Switch} sends. *)
