open Jury_packet

type t =
  | Output of Of_types.Port.t
  | Set_dl_src of Addr.Mac.t
  | Set_dl_dst of Addr.Mac.t
  | Set_nw_src of Addr.Ipv4.t
  | Set_nw_dst of Addr.Ipv4.t
  | Set_tp_src of int
  | Set_tp_dst of int
  | Set_vlan of int
  | Strip_vlan
  | Enqueue of Of_types.Port.t * int

let set_nw f (frame : Frame.t) =
  match frame.payload with
  | Frame.Ipv4 ip -> { frame with payload = Frame.Ipv4 (f ip) }
  | Frame.Arp _ | Frame.Lldp _ | Frame.Raw _ -> frame

let set_tp f (frame : Frame.t) =
  set_nw
    (fun ip ->
      match ip.l4 with
      | Frame.Tcp tcp -> { ip with l4 = Frame.Tcp (f (tcp.src_port, tcp.dst_port)
                                                   |> fun (s, d) ->
                                                   { tcp with src_port = s; dst_port = d }) }
      | Frame.Udp udp ->
          let s, d = f (udp.src_port, udp.dst_port) in
          { ip with l4 = Frame.Udp { udp with src_port = s; dst_port = d } }
      | Frame.Icmp _ | Frame.Other_l4 _ -> ip)
    frame

let apply actions frame =
  let ports = ref [] in
  let frame =
    List.fold_left
      (fun (frame : Frame.t) action ->
        match action with
        | Output p ->
            ports := p :: !ports;
            frame
        | Enqueue (p, _) ->
            ports := p :: !ports;
            frame
        | Set_dl_src mac -> { frame with dl_src = mac }
        | Set_dl_dst mac -> { frame with dl_dst = mac }
        | Set_nw_src ip -> set_nw (fun h -> { h with src = ip }) frame
        | Set_nw_dst ip -> set_nw (fun h -> { h with dst = ip }) frame
        | Set_tp_src p -> set_tp (fun (_, d) -> (p, d)) frame
        | Set_tp_dst p -> set_tp (fun (s, _) -> (s, p)) frame
        | Set_vlan v -> { frame with vlan = Some v }
        | Strip_vlan -> { frame with vlan = None })
      frame actions
  in
  (frame, List.rev !ports)

let output_ports actions =
  List.filter_map
    (function Output p | Enqueue (p, _) -> Some p | _ -> None)
    actions

let is_drop actions = output_ports actions = []
let equal (a : t) b = a = b
let equal_list a b = try List.for_all2 equal a b with Invalid_argument _ -> false

let pp fmt = function
  | Output p -> Format.fprintf fmt "output:%a" Of_types.Port.pp p
  | Set_dl_src m -> Format.fprintf fmt "set_dl_src:%a" Addr.Mac.pp m
  | Set_dl_dst m -> Format.fprintf fmt "set_dl_dst:%a" Addr.Mac.pp m
  | Set_nw_src i -> Format.fprintf fmt "set_nw_src:%a" Addr.Ipv4.pp i
  | Set_nw_dst i -> Format.fprintf fmt "set_nw_dst:%a" Addr.Ipv4.pp i
  | Set_tp_src p -> Format.fprintf fmt "set_tp_src:%d" p
  | Set_tp_dst p -> Format.fprintf fmt "set_tp_dst:%d" p
  | Set_vlan v -> Format.fprintf fmt "set_vlan:%d" v
  | Strip_vlan -> Format.pp_print_string fmt "strip_vlan"
  | Enqueue (p, q) -> Format.fprintf fmt "enqueue:%a:%d" Of_types.Port.pp p q

let pp_list fmt = function
  | [] -> Format.pp_print_string fmt "drop"
  | actions ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
        pp fmt actions

let to_string_list actions = Format.asprintf "%a" pp_list actions
