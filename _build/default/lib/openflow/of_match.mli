(** OpenFlow 1.0 twelve-tuple match with wildcards.

    A field set to [None] is wildcarded. The OF 1.0 spec requires a
    {e hierarchy} among fields: network-layer fields are only meaningful
    when [dl_type] pins the network protocol, and transport-layer fields
    only when [nw_proto] pins TCP/UDP. Old switches silently discarded
    fields that violated this hierarchy — the root cause of the paper's
    "ODL incorrect FLOW_MOD" (T3) fault — so this module exposes the
    check explicitly and JURY ships a policy that enforces it. *)

type t = {
  in_port : Of_types.Port.t option;
  dl_src : Jury_packet.Addr.Mac.t option;
  dl_dst : Jury_packet.Addr.Mac.t option;
  dl_vlan : int option option;
      (** [Some None] matches untagged traffic; [Some (Some v)] matches
          VID [v]; [None] wildcards. *)
  dl_type : int option;
  nw_src : (Jury_packet.Addr.Ipv4.t * int) option;  (** prefix, bits *)
  nw_dst : (Jury_packet.Addr.Ipv4.t * int) option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

val wildcard_all : t
(** Matches every packet. *)

val exact_of_frame : in_port:Of_types.Port.t -> Jury_packet.Frame.t -> t
(** The exact (no-wildcard) match a reactive controller builds from a
    PACKET_IN — the usual source-destination micro-flow rule. *)

val l2_pair : src:Jury_packet.Addr.Mac.t -> dst:Jury_packet.Addr.Mac.t -> t
(** Source-destination MAC rule, as installed by ONOS reactive
    forwarding. *)

val l2_dst : dst:Jury_packet.Addr.Mac.t -> t
(** Destination-only MAC rule, as installed by ODL's proactive host
    forwarding. *)

val matches : t -> in_port:Of_types.Port.t -> Jury_packet.Frame.t -> bool

val hierarchy_ok : t -> bool
(** [true] iff every set field is backed by its prerequisite fields
    (nw_* need [dl_type] = IPv4 or ARP; tp_* need [nw_proto] ∈
    {TCP, UDP}). *)

val strip_invalid_fields : t -> t
(** What a lenient OF 1.0 switch actually installs for a match that
    violates the hierarchy: the offending fields are silently
    wildcarded. Identity on matches where {!hierarchy_ok} holds. *)

val more_specific : t -> t -> bool
(** [more_specific a b] — every packet matched by [a] is matched by [b]
    (conservative: field-by-field subsumption). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
