(** OpenFlow 1.0 actions. An empty action list means drop. *)

type t =
  | Output of Of_types.Port.t
  | Set_dl_src of Jury_packet.Addr.Mac.t
  | Set_dl_dst of Jury_packet.Addr.Mac.t
  | Set_nw_src of Jury_packet.Addr.Ipv4.t
  | Set_nw_dst of Jury_packet.Addr.Ipv4.t
  | Set_tp_src of int
  | Set_tp_dst of int
  | Set_vlan of int
  | Strip_vlan
  | Enqueue of Of_types.Port.t * int  (** port, queue id *)

val apply : t list -> Jury_packet.Frame.t -> Jury_packet.Frame.t * Of_types.Port.t list
(** [apply actions frame] rewrites the frame through the set-field
    actions in order and collects every output port. An empty port list
    means the packet is dropped. *)

val output_ports : t list -> Of_types.Port.t list
val is_drop : t list -> bool
val equal : t -> t -> bool
val equal_list : t list -> t list -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
val to_string_list : t list -> string
