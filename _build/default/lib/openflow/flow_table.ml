open Jury_sim

type entry = {
  rule : Of_match.t;
  priority : int;
  cookie : Of_types.cookie;
  actions : Of_action.t list;
  idle_timeout : int;
  hard_timeout : int;
  installed_at : Time.t;
  mutable last_hit : Time.t;
  mutable packet_count : int64;
  mutable byte_count : int64;
}

(* Storage is split by match shape: fully-exact micro-flow rules (the
   thousands a reactive controller installs) live in a hash index keyed
   by the frame-derived tuple, everything with wildcards lives in a
   short sorted list. A packet lookup is then O(bucket + wildcards)
   instead of O(table). *)
type t = {
  mutable wildcards : entry list;  (* sorted: priority desc, oldest first *)
  exact_index : (string, entry list ref) Hashtbl.t;
  mutable exact_count : int;
  lenient : bool;
}

let create ?(lenient = false) () =
  { wildcards = []; exact_index = Hashtbl.create 256; exact_count = 0;
    lenient }

(* A match is indexable when it pins every field of the lookup key and
   wildcards nothing coarser than /32 prefixes. *)
let index_key_of_match (m : Of_match.t) =
  match (m.in_port, m.dl_src, m.dl_dst, m.dl_type) with
  | Some in_port, Some src, Some dst, Some ty -> (
      let nw = function
        | None -> Some (-1)
        | Some (p, 32) -> Some (Jury_packet.Addr.Ipv4.to_int p)
        | Some _ -> None
      in
      match (nw m.nw_src, nw m.nw_dst) with
      | Some ns, Some nd ->
          Some
            (Printf.sprintf "%d|%d|%d|%d|%d|%d|%d|%d|%d" in_port
               (Jury_packet.Addr.Mac.to_int src)
               (Jury_packet.Addr.Mac.to_int dst)
               ty ns nd
               (Option.value m.nw_proto ~default:(-1))
               (Option.value m.tp_src ~default:(-1))
               (Option.value m.tp_dst ~default:(-1)))
      | _ -> None)
  | _ -> None

let index_key_of_frame ~in_port frame =
  index_key_of_match (Of_match.exact_of_frame ~in_port frame)

let iter_exact t f =
  Hashtbl.iter (fun _ bucket -> List.iter f !bucket) t.exact_index

let all_entries t =
  let acc = ref t.wildcards in
  iter_exact t (fun e -> acc := e :: !acc);
  List.stable_sort
    (fun a b ->
      let c = compare b.priority a.priority in
      if c <> 0 then c else Time.compare a.installed_at b.installed_at)
    !acc

let insert_wildcard t e =
  let rec go = function
    | [] -> [ e ]
    | x :: rest ->
        if
          e.priority > x.priority
          || (e.priority = x.priority && Time.(e.installed_at < x.installed_at))
        then e :: x :: rest
        else x :: go rest
  in
  t.wildcards <- go t.wildcards

let insert t e =
  match index_key_of_match e.rule with
  | None -> insert_wildcard t e
  | Some key ->
      t.exact_count <- t.exact_count + 1;
      (match Hashtbl.find_opt t.exact_index key with
      | Some bucket -> bucket := e :: !bucket
      | None -> Hashtbl.add t.exact_index key (ref [ e ]))

let remove_specific t victims =
  (* Physical-identity removal from either store. *)
  let is_victim e = List.memq e victims in
  t.wildcards <- List.filter (fun e -> not (is_victim e)) t.wildcards;
  let dead_keys = ref [] in
  Hashtbl.iter
    (fun key bucket ->
      let before = List.length !bucket in
      bucket := List.filter (fun e -> not (is_victim e)) !bucket;
      t.exact_count <- t.exact_count - (before - List.length !bucket);
      if !bucket = [] then dead_keys := key :: !dead_keys)
    t.exact_index;
  List.iter (Hashtbl.remove t.exact_index) !dead_keys

let remove_in_bucket t key victims =
  match Hashtbl.find_opt t.exact_index key with
  | None -> ()
  | Some bucket ->
      let before = List.length !bucket in
      bucket := List.filter (fun e -> not (List.memq e victims)) !bucket;
      t.exact_count <- t.exact_count - (before - List.length !bucket);
      if !bucket = [] then Hashtbl.remove t.exact_index key

type apply_result =
  | Installed
  | Modified of int
  | Removed of entry list
  | Rejected of string

let matches_filter (fm : Of_message.flow_mod) ~strict e =
  let port_ok =
    match fm.out_port with
    | None -> true
    | Some p -> List.mem p (Of_action.output_ports e.actions)
  in
  port_ok
  &&
  if strict then Of_match.equal e.rule fm.fm_match && e.priority = fm.priority
  else Of_match.more_specific e.rule fm.fm_match

let fresh_entry ~now (fm : Of_message.flow_mod) rule =
  { rule;
    priority = fm.priority;
    cookie = fm.cookie;
    actions = fm.actions;
    idle_timeout = fm.idle_timeout;
    hard_timeout = fm.hard_timeout;
    installed_at = now;
    last_hit = now;
    packet_count = 0L;
    byte_count = 0L }

let same_slot rule priority e =
  Of_match.equal e.rule rule && e.priority = priority

let apply_flow_mod t ~now (fm : Of_message.flow_mod) =
  let rule =
    if Of_match.hierarchy_ok fm.fm_match then Some fm.fm_match
    else if t.lenient then Some (Of_match.strip_invalid_fields fm.fm_match)
    else None
  in
  match (rule, fm.command) with
  | None, _ -> Rejected "match violates field hierarchy"
  | Some rule, Add ->
      (* OF 1.0: ADD replaces an identical (match, priority) entry. *)
      (match index_key_of_match rule with
      | Some key -> (
          match Hashtbl.find_opt t.exact_index key with
          | Some bucket ->
              remove_in_bucket t key
                (List.filter (same_slot rule fm.priority) !bucket)
          | None -> ())
      | None ->
          t.wildcards <-
            List.filter (fun e -> not (same_slot rule fm.priority e))
              t.wildcards);
      insert t (fresh_entry ~now fm rule);
      Installed
  | Some rule, (Modify | Modify_strict) -> (
      let strict = fm.command = Modify_strict in
      let hits =
        List.filter
          (fun e ->
            if strict then same_slot rule fm.priority e
            else Of_match.more_specific e.rule rule)
          (all_entries t)
      in
      match hits with
      | [] ->
          insert t (fresh_entry ~now fm rule);
          Installed
      | hits ->
          remove_specific t hits;
          List.iter
            (fun e -> insert t { e with actions = fm.actions })
            hits;
          Modified (List.length hits))
  | Some _, (Delete | Delete_strict) ->
      let strict = fm.command = Delete_strict in
      let gone =
        List.filter (matches_filter fm ~strict) (all_entries t)
      in
      remove_specific t gone;
      Removed gone

let entry_live ~now e =
  let age_sec = Time.to_float_sec (Time.sub now e.installed_at) in
  let idle_sec = Time.to_float_sec (Time.sub now e.last_hit) in
  (e.hard_timeout = 0 || age_sec < float_of_int e.hard_timeout)
  && (e.idle_timeout = 0 || idle_sec < float_of_int e.idle_timeout)

let lookup t ~now ~in_port frame =
  let best_of candidates =
    List.fold_left
      (fun best e ->
        if entry_live ~now e && Of_match.matches e.rule ~in_port frame then
          match best with
          | Some b
            when b.priority > e.priority
                 || (b.priority = e.priority
                     && Time.(b.installed_at <= e.installed_at)) ->
              best
          | _ -> Some e
        else best)
      None candidates
  in
  let exact =
    match index_key_of_frame ~in_port frame with
    | None -> None
    | Some key -> (
        match Hashtbl.find_opt t.exact_index key with
        | None -> None
        | Some bucket -> best_of !bucket)
  in
  let wild = best_of t.wildcards in
  let winner =
    match (exact, wild) with
    | None, w -> w
    | e, None -> e
    | Some e, Some w -> if w.priority > e.priority then Some w else Some e
  in
  match winner with
  | None -> None
  | Some e ->
      e.last_hit <- now;
      e.packet_count <- Int64.add e.packet_count 1L;
      e.byte_count <-
        Int64.add e.byte_count
          (Int64.of_int (Jury_packet.Frame.size_on_wire frame));
      Some e

let expire t ~now =
  let dead = ref [] in
  List.iter
    (fun e -> if not (entry_live ~now e) then dead := e :: !dead)
    t.wildcards;
  iter_exact t (fun e -> if not (entry_live ~now e) then dead := e :: !dead);
  remove_specific t !dead;
  !dead

let entries t = all_entries t
let size t = List.length t.wildcards + t.exact_count

let has_expirable t =
  let expirable e = e.idle_timeout > 0 || e.hard_timeout > 0 in
  List.exists expirable t.wildcards
  || Hashtbl.fold
       (fun _ bucket acc -> acc || List.exists expirable !bucket)
       t.exact_index false

let clear t =
  t.wildcards <- [];
  Hashtbl.reset t.exact_index;
  t.exact_count <- 0

let find_exact t m ~priority =
  let candidates =
    match index_key_of_match m with
    | Some key -> (
        match Hashtbl.find_opt t.exact_index key with
        | Some bucket -> !bucket
        | None -> [])
    | None -> t.wildcards
  in
  List.find_opt (same_slot m priority) candidates

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "  prio=%-4d %a -> %a (pkts=%Ld)@." e.priority
        Of_match.pp e.rule Of_action.pp_list e.actions e.packet_count)
    (all_entries t)
