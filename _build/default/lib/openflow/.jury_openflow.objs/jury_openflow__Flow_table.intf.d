lib/openflow/flow_table.mli: Format Jury_packet Jury_sim Of_action Of_match Of_message Of_types
