lib/openflow/of_match.ml: Addr Format Frame Hashtbl Jury_packet Of_types Option Stdlib
