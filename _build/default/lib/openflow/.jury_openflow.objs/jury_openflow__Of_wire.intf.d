lib/openflow/of_wire.mli: Of_message
