lib/openflow/of_message.mli: Format Jury_packet Of_action Of_match Of_types
