lib/openflow/flow_table.ml: Format Hashtbl Int64 Jury_packet Jury_sim List Of_action Of_match Of_message Of_types Option Printf Time
