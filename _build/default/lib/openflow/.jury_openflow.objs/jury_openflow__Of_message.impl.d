lib/openflow/of_message.ml: Format Jury_packet List Of_action Of_match Of_types
