lib/openflow/of_action.mli: Format Jury_packet Of_types
