lib/openflow/of_types.ml: Format Hashtbl Int64
