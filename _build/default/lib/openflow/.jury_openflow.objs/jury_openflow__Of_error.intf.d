lib/openflow/of_error.mli: Format
