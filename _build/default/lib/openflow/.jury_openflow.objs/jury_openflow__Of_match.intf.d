lib/openflow/of_match.mli: Format Jury_packet Of_types
