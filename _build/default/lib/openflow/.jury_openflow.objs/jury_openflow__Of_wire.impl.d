lib/openflow/of_wire.ml: Addr Frame Jury_packet List Of_action Of_match Of_message Of_types Option Printf String Wire_buf
