lib/openflow/of_action.ml: Addr Format Frame Jury_packet List Of_types
