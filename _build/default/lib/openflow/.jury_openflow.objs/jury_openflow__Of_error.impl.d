lib/openflow/of_error.ml: Format List
