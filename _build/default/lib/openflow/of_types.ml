module Dpid = struct
  type t = int64

  let of_int = Int64.of_int
  let of_int64 x = x
  let to_int64 t = t
  let compare = Int64.compare
  let equal = Int64.equal
  let hash = Hashtbl.hash
  let pp fmt t = Format.fprintf fmt "of:%016Lx" t
  let to_string t = Format.asprintf "%a" pp t
end

module Port = struct
  type t = int

  let in_port = 0xfff8
  let flood = 0xfffb
  let all = 0xfffc
  let controller = 0xfffd
  let local = 0xfffe
  let none = 0xffff
  let is_physical p = p >= 1 && p < 0xff00

  let pp fmt p =
    if p = controller then Format.pp_print_string fmt "CONTROLLER"
    else if p = flood then Format.pp_print_string fmt "FLOOD"
    else if p = all then Format.pp_print_string fmt "ALL"
    else if p = local then Format.pp_print_string fmt "LOCAL"
    else if p = none then Format.pp_print_string fmt "NONE"
    else if p = in_port then Format.pp_print_string fmt "IN_PORT"
    else Format.pp_print_int fmt p
end

type xid = int
type buffer_id = int option
type cookie = int64
