open Jury_packet

type t = {
  in_port : Of_types.Port.t option;
  dl_src : Addr.Mac.t option;
  dl_dst : Addr.Mac.t option;
  dl_vlan : int option option;
  dl_type : int option;
  nw_src : (Addr.Ipv4.t * int) option;
  nw_dst : (Addr.Ipv4.t * int) option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

let wildcard_all =
  { in_port = None;
    dl_src = None;
    dl_dst = None;
    dl_vlan = None;
    dl_type = None;
    nw_src = None;
    nw_dst = None;
    nw_proto = None;
    nw_tos = None;
    tp_src = None;
    tp_dst = None }

let ethertype_arp = 0x0806
let ethertype_ipv4 = 0x0800

let frame_nw (frame : Frame.t) =
  match frame.payload with
  | Frame.Ipv4 ip -> Some (ip.src, ip.dst, ip.proto, ip.dscp)
  | Frame.Arp a ->
      (* OF 1.0 reuses nw_src/nw_dst for ARP SPA/TPA and nw_proto for
         the ARP opcode. *)
      let op = match a.op with Frame.Request -> 1 | Frame.Reply -> 2 in
      Some (a.spa, a.tpa, op, 0)
  | Frame.Lldp _ | Frame.Raw _ -> None

let frame_tp (frame : Frame.t) =
  match frame.payload with
  | Frame.Ipv4 { l4 = Frame.Tcp t; _ } -> Some (t.src_port, t.dst_port)
  | Frame.Ipv4 { l4 = Frame.Udp u; _ } -> Some (u.src_port, u.dst_port)
  | Frame.Ipv4 { l4 = Frame.Icmp i; _ } -> Some (i.ty, i.code)
  | Frame.Ipv4 { l4 = Frame.Other_l4 _; _ } | Frame.Arp _ | Frame.Lldp _
  | Frame.Raw _ ->
      None

let exact_of_frame ~in_port (frame : Frame.t) =
  let ty = Frame.ethertype frame in
  let nw = frame_nw frame in
  let tp = frame_tp frame in
  { in_port = Some in_port;
    dl_src = Some frame.dl_src;
    dl_dst = Some frame.dl_dst;
    dl_vlan = Some frame.vlan;
    dl_type = Some ty;
    nw_src = Option.map (fun (s, _, _, _) -> (s, 32)) nw;
    nw_dst = Option.map (fun (_, d, _, _) -> (d, 32)) nw;
    nw_proto = Option.map (fun (_, _, p, _) -> p) nw;
    nw_tos = Option.map (fun (_, _, _, t) -> t) nw;
    tp_src = Option.map fst tp;
    tp_dst = Option.map snd tp }

let l2_pair ~src ~dst =
  { wildcard_all with dl_src = Some src; dl_dst = Some dst }

let l2_dst ~dst = { wildcard_all with dl_dst = Some dst }

let field_matches v = function None -> true | Some want -> want = v

let matches t ~in_port (frame : Frame.t) =
  field_matches in_port t.in_port
  && field_matches frame.dl_src t.dl_src
  && field_matches frame.dl_dst t.dl_dst
  && (match t.dl_vlan with None -> true | Some want -> want = frame.vlan)
  && field_matches (Frame.ethertype frame) t.dl_type
  &&
  let nw = frame_nw frame in
  let nw_field get pred =
    match get t with
    | None -> true
    | Some want -> ( match nw with None -> false | Some v -> pred want v)
  in
  nw_field
    (fun t -> t.nw_src)
    (fun (prefix, bits) (s, _, _, _) ->
      Addr.Ipv4.matches_prefix s ~prefix ~bits)
  && nw_field
       (fun t -> t.nw_dst)
       (fun (prefix, bits) (_, d, _, _) ->
         Addr.Ipv4.matches_prefix d ~prefix ~bits)
  && nw_field (fun t -> t.nw_proto) (fun want (_, _, p, _) -> want = p)
  && nw_field (fun t -> t.nw_tos) (fun want (_, _, _, tos) -> want = tos)
  &&
  let tp = frame_tp frame in
  let tp_field get pick =
    match get t with
    | None -> true
    | Some want -> ( match tp with None -> false | Some v -> want = pick v)
  in
  tp_field (fun t -> t.tp_src) fst && tp_field (fun t -> t.tp_dst) snd

let hierarchy_ok t =
  let nw_set =
    t.nw_src <> None || t.nw_dst <> None || t.nw_proto <> None
    || t.nw_tos <> None
  in
  let tp_set = t.tp_src <> None || t.tp_dst <> None in
  let nw_backed =
    match t.dl_type with
    | Some ty -> ty = ethertype_ipv4 || ty = ethertype_arp
    | None -> false
  in
  let tp_backed =
    nw_backed
    && t.dl_type = Some ethertype_ipv4
    && (match t.nw_proto with Some (1 | 6 | 17) -> true | Some _ | None -> false)
  in
  ((not nw_set) || nw_backed) && ((not tp_set) || tp_backed)

let strip_invalid_fields t =
  let nw_backed =
    match t.dl_type with
    | Some ty -> ty = ethertype_ipv4 || ty = ethertype_arp
    | None -> false
  in
  let t =
    if nw_backed then t
    else { t with nw_src = None; nw_dst = None; nw_proto = None;
                  nw_tos = None }
  in
  let tp_backed =
    nw_backed
    && t.dl_type = Some ethertype_ipv4
    && (match t.nw_proto with Some (1 | 6 | 17) -> true | Some _ | None -> false)
  in
  if tp_backed then t else { t with tp_src = None; tp_dst = None }

let more_specific a b =
  let sub eq ga gb =
    match (ga a, gb b) with
    | _, None -> true
    | None, Some _ -> false
    | Some va, Some vb -> eq va vb
  in
  let prefix_sub (pa, ba) (pb, bb) =
    ba >= bb && Addr.Ipv4.matches_prefix pa ~prefix:pb ~bits:bb
  in
  sub ( = ) (fun t -> t.in_port) (fun t -> t.in_port)
  && sub Addr.Mac.equal (fun t -> t.dl_src) (fun t -> t.dl_src)
  && sub Addr.Mac.equal (fun t -> t.dl_dst) (fun t -> t.dl_dst)
  && sub ( = ) (fun t -> t.dl_vlan) (fun t -> t.dl_vlan)
  && sub ( = ) (fun t -> t.dl_type) (fun t -> t.dl_type)
  && sub prefix_sub (fun t -> t.nw_src) (fun t -> t.nw_src)
  && sub prefix_sub (fun t -> t.nw_dst) (fun t -> t.nw_dst)
  && sub ( = ) (fun t -> t.nw_proto) (fun t -> t.nw_proto)
  && sub ( = ) (fun t -> t.nw_tos) (fun t -> t.nw_tos)
  && sub ( = ) (fun t -> t.tp_src) (fun t -> t.tp_src)
  && sub ( = ) (fun t -> t.tp_dst) (fun t -> t.tp_dst)

let compare = Stdlib.compare
let equal a b = compare a b = 0
let hash = Hashtbl.hash

let pp fmt t =
  let first = ref true in
  let field name pp_v = function
    | None -> ()
    | Some v ->
        if not !first then Format.pp_print_string fmt ",";
        first := false;
        Format.fprintf fmt "%s=%a" name pp_v v
  in
  Format.pp_print_string fmt "{";
  field "in_port" Of_types.Port.pp t.in_port;
  field "dl_src" Addr.Mac.pp t.dl_src;
  field "dl_dst" Addr.Mac.pp t.dl_dst;
  field "dl_vlan"
    (fun fmt -> function
      | None -> Format.pp_print_string fmt "untagged"
      | Some v -> Format.pp_print_int fmt v)
    t.dl_vlan;
  field "dl_type" (fun fmt v -> Format.fprintf fmt "0x%04x" v) t.dl_type;
  field "nw_src"
    (fun fmt (p, b) -> Format.fprintf fmt "%a/%d" Addr.Ipv4.pp p b)
    t.nw_src;
  field "nw_dst"
    (fun fmt (p, b) -> Format.fprintf fmt "%a/%d" Addr.Ipv4.pp p b)
    t.nw_dst;
  field "nw_proto" Format.pp_print_int t.nw_proto;
  field "nw_tos" Format.pp_print_int t.nw_tos;
  field "tp_src" Format.pp_print_int t.tp_src;
  field "tp_dst" Format.pp_print_int t.tp_dst;
  if !first then Format.pp_print_string fmt "*";
  Format.pp_print_string fmt "}"

let to_string t = Format.asprintf "%a" pp t
