open Jury_packet
module W = Wire_buf.Writer
module R = Wire_buf.Reader

let header_size = 8
let version = 0x01

let type_code : Of_message.payload -> int = function
  | Hello -> 0
  | Error _ -> 1
  | Echo_request _ -> 2
  | Echo_reply _ -> 3
  | Features_request -> 5
  | Features_reply _ -> 6
  | Packet_in _ -> 10
  | Flow_removed _ -> 11
  | Port_status _ -> 12
  | Packet_out _ -> 13
  | Flow_mod _ -> 14
  | Stats_request _ -> 16
  | Stats_reply _ -> 17
  | Barrier_request -> 18
  | Barrier_reply -> 19

(* --- Match encoding: OF 1.0 wildcards bitmap + fixed fields. ---
   Prefix wildcarding for nw_src/nw_dst uses the 6-bit mask-length
   subfields exactly as the spec lays them out. *)

let wc_in_port = 1 lsl 0
let wc_dl_vlan = 1 lsl 1
let wc_dl_src = 1 lsl 2
let wc_dl_dst = 1 lsl 3
let wc_dl_type = 1 lsl 4
let wc_nw_proto = 1 lsl 5
let wc_tp_src = 1 lsl 6
let wc_tp_dst = 1 lsl 7
(* bits 8-13: nw_src mask length, 14-19: nw_dst mask length *)
let wc_nw_tos = 1 lsl 21

let vlan_none_wire = 0xFFFF

let encode_match w (m : Of_match.t) =
  let wildcards = ref 0 in
  let opt v wc_bit = if v = None then wildcards := !wildcards lor wc_bit in
  opt m.in_port wc_in_port;
  opt m.dl_vlan wc_dl_vlan;
  opt m.dl_src wc_dl_src;
  opt m.dl_dst wc_dl_dst;
  opt m.dl_type wc_dl_type;
  opt m.nw_proto wc_nw_proto;
  opt m.tp_src wc_tp_src;
  opt m.tp_dst wc_tp_dst;
  opt m.nw_tos wc_nw_tos;
  let src_mask = match m.nw_src with None -> 32 | Some (_, b) -> 32 - b in
  let dst_mask = match m.nw_dst with None -> 32 | Some (_, b) -> 32 - b in
  wildcards := !wildcards lor (src_mask lsl 8) lor (dst_mask lsl 14);
  W.u32 w !wildcards;
  W.u16 w (Option.value m.in_port ~default:0);
  W.u48 w (Addr.Mac.to_int (Option.value m.dl_src ~default:Addr.Mac.zero));
  W.u48 w (Addr.Mac.to_int (Option.value m.dl_dst ~default:Addr.Mac.zero));
  W.u16 w
    (match m.dl_vlan with
    | None | Some None -> vlan_none_wire
    | Some (Some v) -> v);
  W.u8 w 0; (* vlan pcp *)
  W.u8 w 0; (* pad *)
  W.u16 w (Option.value m.dl_type ~default:0);
  W.u8 w (Option.value m.nw_tos ~default:0);
  W.u8 w (Option.value m.nw_proto ~default:0);
  W.u16 w 0; (* pad *)
  W.u32 w
    (match m.nw_src with
    | None -> 0
    | Some (p, _) -> Addr.Ipv4.to_int p);
  W.u32 w
    (match m.nw_dst with
    | None -> 0
    | Some (p, _) -> Addr.Ipv4.to_int p);
  W.u16 w (Option.value m.tp_src ~default:0);
  W.u16 w (Option.value m.tp_dst ~default:0)

let decode_match r : Of_match.t =
  let wildcards = R.u32 r "match wildcards" in
  let has bit = wildcards land bit = 0 in
  let in_port = R.u16 r "match in_port" in
  let dl_src = Addr.Mac.of_int (R.u48 r "match dl_src") in
  let dl_dst = Addr.Mac.of_int (R.u48 r "match dl_dst") in
  let dl_vlan = R.u16 r "match dl_vlan" in
  R.skip r 2 "match pcp+pad";
  let dl_type = R.u16 r "match dl_type" in
  let nw_tos = R.u8 r "match nw_tos" in
  let nw_proto = R.u8 r "match nw_proto" in
  R.skip r 2 "match pad";
  let nw_src = Addr.Ipv4.of_int (R.u32 r "match nw_src") in
  let nw_dst = Addr.Ipv4.of_int (R.u32 r "match nw_dst") in
  let tp_src = R.u16 r "match tp_src" in
  let tp_dst = R.u16 r "match tp_dst" in
  let src_mask = (wildcards lsr 8) land 0x3F in
  let dst_mask = (wildcards lsr 14) land 0x3F in
  { in_port = (if has wc_in_port then Some in_port else None);
    dl_src = (if has wc_dl_src then Some dl_src else None);
    dl_dst = (if has wc_dl_dst then Some dl_dst else None);
    dl_vlan =
      (if has wc_dl_vlan then
         Some (if dl_vlan = vlan_none_wire then None else Some dl_vlan)
       else None);
    dl_type = (if has wc_dl_type then Some dl_type else None);
    nw_src = (if src_mask >= 32 then None else Some (nw_src, 32 - src_mask));
    nw_dst = (if dst_mask >= 32 then None else Some (nw_dst, 32 - dst_mask));
    nw_proto = (if has wc_nw_proto then Some nw_proto else None);
    nw_tos = (if has wc_nw_tos then Some nw_tos else None);
    tp_src = (if has wc_tp_src then Some tp_src else None);
    tp_dst = (if has wc_tp_dst then Some tp_dst else None) }

(* --- Action encoding --- *)

let encode_action w : Of_action.t -> unit = function
  | Output p ->
      W.u16 w 0; W.u16 w 8; W.u16 w p; W.u16 w 0xFFFF (* max_len *)
  | Set_vlan v -> W.u16 w 1; W.u16 w 8; W.u16 w v; W.u16 w 0
  | Strip_vlan -> W.u16 w 3; W.u16 w 8; W.u32 w 0
  | Set_dl_src m ->
      W.u16 w 4; W.u16 w 16; W.u48 w (Addr.Mac.to_int m); W.zeros w 6
  | Set_dl_dst m ->
      W.u16 w 5; W.u16 w 16; W.u48 w (Addr.Mac.to_int m); W.zeros w 6
  | Set_nw_src i -> W.u16 w 6; W.u16 w 8; W.u32 w (Addr.Ipv4.to_int i)
  | Set_nw_dst i -> W.u16 w 7; W.u16 w 8; W.u32 w (Addr.Ipv4.to_int i)
  | Set_tp_src p -> W.u16 w 9; W.u16 w 8; W.u16 w p; W.u16 w 0
  | Set_tp_dst p -> W.u16 w 10; W.u16 w 8; W.u16 w p; W.u16 w 0
  | Enqueue (p, q) ->
      W.u16 w 11; W.u16 w 16; W.u16 w p; W.zeros w 6; W.u32 w q; W.zeros w 2

let decode_action r : Of_action.t =
  let ty = R.u16 r "action type" in
  let len = R.u16 r "action len" in
  match ty with
  | 0 ->
      let p = R.u16 r "output port" in
      R.skip r 2 "max_len";
      Output p
  | 1 ->
      let v = R.u16 r "vlan vid" in
      R.skip r 2 "pad";
      Set_vlan v
  | 3 ->
      R.skip r 4 "pad";
      Strip_vlan
  | 4 ->
      let m = Addr.Mac.of_int (R.u48 r "dl addr") in
      R.skip r 6 "pad";
      Set_dl_src m
  | 5 ->
      let m = Addr.Mac.of_int (R.u48 r "dl addr") in
      R.skip r 6 "pad";
      Set_dl_dst m
  | 6 -> Set_nw_src (Addr.Ipv4.of_int (R.u32 r "nw addr"))
  | 7 -> Set_nw_dst (Addr.Ipv4.of_int (R.u32 r "nw addr"))
  | 9 ->
      let p = R.u16 r "tp port" in
      R.skip r 2 "pad";
      Set_tp_src p
  | 10 ->
      let p = R.u16 r "tp port" in
      R.skip r 2 "pad";
      Set_tp_dst p
  | 11 ->
      let p = R.u16 r "enqueue port" in
      R.skip r 6 "pad";
      let q = R.u32 r "queue id" in
      R.skip r 2 "pad";
      Enqueue (p, q)
  | _ ->
      ignore len;
      invalid_arg (Printf.sprintf "Of_wire: unknown action type %d" ty)

let encode_actions w actions =
  let body = W.create () in
  List.iter (encode_action body) actions;
  W.u16 w (W.length body);
  W.bytes w (W.contents body)

let decode_actions r =
  let len = R.u16 r "actions len" in
  let stop = R.pos r + len in
  let rec go acc =
    if R.pos r >= stop then List.rev acc else go (decode_action r :: acc)
  in
  go []

let buffer_wire = function None -> 0xFFFF_FFFF | Some b -> b
let buffer_of_wire = function 0xFFFF_FFFF -> None | b -> Some b

(* --- Message bodies --- *)

let encode_body w : Of_message.payload -> unit = function
  | Hello | Features_request | Barrier_request | Barrier_reply -> ()
  | Error (ty, code) -> W.u16 w ty; W.u16 w code
  | Echo_request s | Echo_reply s -> W.bytes w s
  | Features_reply fr ->
      W.u64 w (Of_types.Dpid.to_int64 fr.datapath_id);
      W.u32 w fr.n_buffers;
      W.u8 w fr.n_tables;
      W.zeros w 3;
      W.u32 w 0; (* capabilities *)
      W.u32 w 0; (* actions *)
      W.u16 w (List.length fr.ports);
      List.iter (fun p -> W.u16 w p) fr.ports
  | Packet_in pi ->
      W.u32 w (buffer_wire pi.buffer_id);
      let data = Frame.encode pi.frame in
      W.u16 w (String.length data);
      W.u16 w pi.in_port;
      W.u8 w (match pi.reason with No_match -> 0 | Action_to_controller -> 1);
      W.u8 w 0;
      W.bytes w data
  | Packet_out po ->
      W.u32 w (buffer_wire po.po_buffer_id);
      W.u16 w po.po_in_port;
      encode_actions w po.po_actions;
      (match po.po_frame with
      | None -> ()
      | Some frame -> W.bytes w (Frame.encode frame))
  | Flow_mod fm ->
      encode_match w fm.fm_match;
      W.u64 w fm.cookie;
      W.u16 w
        (match fm.command with
        | Add -> 0
        | Modify -> 1
        | Modify_strict -> 2
        | Delete -> 3
        | Delete_strict -> 4);
      W.u16 w fm.idle_timeout;
      W.u16 w fm.hard_timeout;
      W.u16 w fm.priority;
      W.u32 w (buffer_wire fm.fm_buffer_id);
      W.u16 w (Option.value fm.out_port ~default:Of_types.Port.none);
      W.u16 w 1; (* flags: SEND_FLOW_REM *)
      List.iter (encode_action w) fm.actions
  | Flow_removed fr ->
      encode_match w fr.fr_match;
      W.u64 w fr.fr_cookie;
      W.u16 w fr.fr_priority;
      W.u8 w
        (match fr.fr_reason with
        | Idle_timeout -> 0
        | Hard_timeout -> 1
        | Deleted -> 2);
      W.u8 w 0;
      W.u32 w fr.duration_sec;
      W.u32 w 0; (* duration nsec *)
      W.u16 w 0; (* idle timeout *)
      W.zeros w 2;
      W.u64 w fr.packet_count;
      W.u64 w fr.byte_count
  | Port_status ps ->
      W.u8 w
        (match ps.ps_reason with
        | Port_add -> 0
        | Port_delete -> 1
        | Port_modify -> 2);
      W.zeros w 7;
      W.u16 w ps.ps_port;
      W.u8 w (if ps.ps_link_up then 1 else 0)
  | Stats_request (Flow_stats_request m) ->
      W.u16 w 1;
      W.u16 w 0;
      encode_match w m
  | Stats_request Table_stats_request ->
      W.u16 w 3;
      W.u16 w 0
  | Stats_reply (Flow_stats_reply stats) ->
      W.u16 w 1;
      W.u16 w 0;
      W.u16 w (List.length stats);
      List.iter
        (fun (fs : Of_message.flow_stat) ->
          encode_match w fs.fs_match;
          W.u16 w fs.fs_priority;
          W.u64 w fs.fs_cookie;
          W.u64 w fs.fs_packet_count;
          encode_actions w fs.fs_actions)
        stats
  | Stats_reply (Table_stats_reply n) ->
      W.u16 w 3;
      W.u16 w 0;
      W.u32 w n

let decode_body r ty : Of_message.payload =
  match ty with
  | 0 -> Hello
  | 1 ->
      let t = R.u16 r "error type" in
      let c = R.u16 r "error code" in
      Error (t, c)
  | 2 -> Echo_request (R.rest r)
  | 3 -> Echo_reply (R.rest r)
  | 5 -> Features_request
  | 6 ->
      let datapath_id = Of_types.Dpid.of_int64 (R.u64 r "dpid") in
      let n_buffers = R.u32 r "n_buffers" in
      let n_tables = R.u8 r "n_tables" in
      R.skip r 3 "pad";
      R.skip r 8 "capabilities+actions";
      let n_ports = R.u16 r "n_ports" in
      let ports = List.init n_ports (fun _ -> R.u16 r "port") in
      Features_reply { datapath_id; n_buffers; n_tables; ports }
  | 10 ->
      let buffer_id = buffer_of_wire (R.u32 r "buffer id") in
      let total_len = R.u16 r "total len" in
      let in_port = R.u16 r "in port" in
      let reason =
        match R.u8 r "reason" with
        | 0 -> Of_message.No_match
        | 1 -> Of_message.Action_to_controller
        | n -> invalid_arg (Printf.sprintf "Of_wire: bad PACKET_IN reason %d" n)
      in
      R.skip r 1 "pad";
      let frame = Frame.decode (R.bytes r total_len "packet data") in
      Packet_in { buffer_id; in_port; reason; frame }
  | 13 ->
      let po_buffer_id = buffer_of_wire (R.u32 r "buffer id") in
      let po_in_port = R.u16 r "in port" in
      let po_actions = decode_actions r in
      let po_frame =
        if R.remaining r > 0 then Some (Frame.decode (R.rest r)) else None
      in
      Packet_out { po_buffer_id; po_in_port; po_actions; po_frame }
  | 14 ->
      let fm_match = decode_match r in
      let cookie = R.u64 r "cookie" in
      let command =
        match R.u16 r "command" with
        | 0 -> Of_message.Add
        | 1 -> Of_message.Modify
        | 2 -> Of_message.Modify_strict
        | 3 -> Of_message.Delete
        | 4 -> Of_message.Delete_strict
        | n -> invalid_arg (Printf.sprintf "Of_wire: bad FLOW_MOD command %d" n)
      in
      let idle_timeout = R.u16 r "idle" in
      let hard_timeout = R.u16 r "hard" in
      let priority = R.u16 r "priority" in
      let fm_buffer_id = buffer_of_wire (R.u32 r "buffer id") in
      let out_port =
        match R.u16 r "out port" with
        | p when p = Of_types.Port.none -> None
        | p -> Some p
      in
      R.skip r 2 "flags";
      let rec actions acc =
        if R.remaining r = 0 then List.rev acc
        else actions (decode_action r :: acc)
      in
      Flow_mod
        { command; fm_match; priority; cookie; idle_timeout; hard_timeout;
          actions = actions []; fm_buffer_id; out_port }
  | 11 ->
      let fr_match = decode_match r in
      let fr_cookie = R.u64 r "cookie" in
      let fr_priority = R.u16 r "priority" in
      let fr_reason =
        match R.u8 r "reason" with
        | 0 -> Of_message.Idle_timeout
        | 1 -> Of_message.Hard_timeout
        | 2 -> Of_message.Deleted
        | n ->
            invalid_arg (Printf.sprintf "Of_wire: bad FLOW_REMOVED reason %d" n)
      in
      R.skip r 1 "pad";
      let duration_sec = R.u32 r "duration" in
      R.skip r 4 "duration nsec";
      R.skip r 4 "idle+pad";
      let packet_count = R.u64 r "packets" in
      let byte_count = R.u64 r "bytes" in
      Flow_removed
        { fr_match; fr_cookie; fr_priority; fr_reason; duration_sec;
          packet_count; byte_count }
  | 12 ->
      let ps_reason =
        match R.u8 r "reason" with
        | 0 -> Of_message.Port_add
        | 1 -> Of_message.Port_delete
        | 2 -> Of_message.Port_modify
        | n ->
            invalid_arg (Printf.sprintf "Of_wire: bad PORT_STATUS reason %d" n)
      in
      R.skip r 7 "pad";
      let ps_port = R.u16 r "port" in
      let ps_link_up = R.u8 r "link state" = 1 in
      Port_status { ps_reason; ps_port; ps_link_up }
  | 16 -> (
      let sty = R.u16 r "stats type" in
      R.skip r 2 "flags";
      match sty with
      | 1 -> Stats_request (Flow_stats_request (decode_match r))
      | 3 -> Stats_request Table_stats_request
      | n -> invalid_arg (Printf.sprintf "Of_wire: bad stats request %d" n))
  | 17 -> (
      let sty = R.u16 r "stats type" in
      R.skip r 2 "flags";
      match sty with
      | 1 ->
          let n = R.u16 r "n stats" in
          let stats =
            List.init n (fun _ : Of_message.flow_stat ->
                let fs_match = decode_match r in
                let fs_priority = R.u16 r "priority" in
                let fs_cookie = R.u64 r "cookie" in
                let fs_packet_count = R.u64 r "packets" in
                let fs_actions = decode_actions r in
                { fs_match; fs_priority; fs_cookie; fs_actions;
                  fs_packet_count })
          in
          Stats_reply (Flow_stats_reply stats)
      | 3 -> Stats_reply (Table_stats_reply (R.u32 r "active"))
      | n -> invalid_arg (Printf.sprintf "Of_wire: bad stats reply %d" n))
  | 18 -> Barrier_request
  | 19 -> Barrier_reply
  | n -> invalid_arg (Printf.sprintf "Of_wire: unknown message type %d" n)

let encode (msg : Of_message.t) =
  let body = W.create () in
  encode_body body msg.payload;
  let w = W.create () in
  W.u8 w version;
  W.u8 w (type_code msg.payload);
  W.u16 w (header_size + W.length body);
  W.u32 w msg.xid;
  W.bytes w (W.contents body);
  W.contents w

let decode_one r : Of_message.t =
  let v = R.u8 r "version" in
  if v <> version then
    invalid_arg (Printf.sprintf "Of_wire: unsupported version %d" v);
  let ty = R.u8 r "type" in
  let len = R.u16 r "length" in
  let xid = R.u32 r "xid" in
  let body = R.bytes r (len - header_size) "body" in
  let br = R.of_string body in
  { xid; payload = decode_body br ty }

let decode s = decode_one (R.of_string s)

let decode_all s =
  let r = R.of_string s in
  let rec go acc =
    if R.remaining r = 0 then List.rev acc else go (decode_one r :: acc)
  in
  go []

let encoded_size msg = String.length (encode msg)
