(** LLDP (802.1AB) frames as used for SDN topology discovery.

    Controllers flood LLDP out of every switch port; receiving a frame
    on another switch reveals a link. Only the three mandatory TLVs plus
    an optional system-name TLV are modelled, which matches what
    ONOS/ODL discovery actually inspects. *)

type t = {
  chassis_id : int64;   (** datapath id of the emitting switch *)
  port_id : int;        (** emitting port number *)
  ttl : int;            (** seconds *)
  system_name : string option;  (** emitting controller's identity *)
}

val make : ?system_name:string -> chassis_id:int64 -> port_id:int -> ttl:int
  -> unit -> t

val encode : t -> string
(** TLV wire encoding (chassis id subtype 7 "locally assigned", port id
    subtype 7, TTL, optional system name, end-of-LLDPDU). *)

val decode : string -> t
(** Raises {!Wire_buf.Truncated} or [Invalid_argument] on malformed
    input. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
