lib/packet/addr.ml: Format Hashtbl Int List Printf String
