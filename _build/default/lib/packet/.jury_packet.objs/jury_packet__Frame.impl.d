lib/packet/frame.ml: Addr Format Lldp Printf String Wire_buf
