lib/packet/frame.mli: Addr Format Lldp
