lib/packet/lldp.ml: Format Int64 Option String Wire_buf
