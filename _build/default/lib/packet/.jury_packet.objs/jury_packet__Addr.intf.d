lib/packet/addr.mli: Format
