lib/packet/wire_buf.mli:
