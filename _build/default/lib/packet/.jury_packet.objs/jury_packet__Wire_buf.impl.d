lib/packet/wire_buf.ml: Buffer Bytes Char Int64 String
