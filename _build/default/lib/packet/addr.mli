(** Link- and network-layer addresses. *)

module Mac : sig
  type t = private int
  (** 48-bit MAC address stored in the low bits of a native int. *)

  val of_int : int -> t
  (** Masks to 48 bits. *)

  val to_int : t -> int
  val broadcast : t
  val zero : t
  val is_broadcast : t -> bool
  val is_multicast : t -> bool

  val of_string : string -> t
  (** Parses ["aa:bb:cc:dd:ee:ff"]; raises [Invalid_argument] on
      malformed input. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int

  val of_host_index : int -> t
  (** Deterministic lab addressing: host [i] gets [02:00:00:00:xx:xx]
      (locally administered). *)

  val lldp_nearest_bridge : t
  (** 01:80:c2:00:00:0e, the destination of LLDP frames. *)
end

module Ipv4 : sig
  type t = private int
  (** 32-bit IPv4 address. *)

  val of_int : int -> t
  val to_int : t -> int
  val of_string : string -> t
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val any : t
  val broadcast : t

  val of_host_index : int -> t
  (** Host [i] gets 10.0.x.y, matching Mininet's default scheme. *)

  val matches_prefix : t -> prefix:t -> bits:int -> bool
  (** [matches_prefix a ~prefix ~bits] — does [a] fall in
      [prefix/bits]? *)
end
