(** Big-endian binary readers and writers shared by the packet and
    OpenFlow codecs. *)

exception Truncated of string
(** Raised by readers when the buffer is too short; carries the name of
    the field being read. *)

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u48 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val bytes : t -> string -> unit
  val zeros : t -> int -> unit
  val contents : t -> string

  val patch_u16 : t -> pos:int -> int -> unit
  (** Overwrite two bytes at [pos] — used for length/checksum fields
      known only after the body is written. *)
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> string -> int
  val u16 : t -> string -> int
  val u32 : t -> string -> int
  val u48 : t -> string -> int
  val u64 : t -> string -> int64
  val bytes : t -> int -> string -> string
  val skip : t -> int -> string -> unit
  val rest : t -> string
end

val internet_checksum : string -> int
(** RFC 1071 ones'-complement checksum of the given bytes (checksum
    field assumed zeroed by the caller). *)
