(** Ethernet frames and their payloads.

    This is the data-plane packet model: everything a simulated host
    emits, a switch matches, and a controller inspects inside a
    PACKET_IN. Frames round-trip through a binary wire codec so that
    the PACKET_IN path carries real bytes, exactly like a live
    deployment (and like the doubly-encapsulated PACKET_INs JURY must
    strip for ODL). *)

type arp_op = Request | Reply

type arp = {
  op : arp_op;
  sha : Addr.Mac.t;   (** sender hardware address *)
  spa : Addr.Ipv4.t;  (** sender protocol address *)
  tha : Addr.Mac.t;
  tpa : Addr.Ipv4.t;
}

type tcp = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : int;  (** low 8 bits: FIN=1 SYN=2 RST=4 PSH=8 ACK=16 *)
  window : int;
  payload_len : int;  (** simulated payload size in bytes (not carried) *)
}

type udp = { src_port : int; dst_port : int; payload_len : int }
type icmp = { ty : int; code : int }

type l4 = Tcp of tcp | Udp of udp | Icmp of icmp | Other_l4 of int * string

type ipv4 = {
  src : Addr.Ipv4.t;
  dst : Addr.Ipv4.t;
  proto : int;
  ttl : int;
  dscp : int;
  l4 : l4;
}

type payload =
  | Arp of arp
  | Ipv4 of ipv4
  | Lldp of Lldp.t
  | Raw of int * string  (** unparsed ethertype + body *)

type t = {
  dl_src : Addr.Mac.t;
  dl_dst : Addr.Mac.t;
  vlan : int option;  (** 802.1Q VID if tagged *)
  payload : payload;
}

val ethertype : t -> int
(** The (inner, post-VLAN) ethertype implied by the payload. *)

val tcp_syn : int
val tcp_ack : int
val tcp_fin : int
val tcp_rst : int

(** {1 Constructors} *)

val arp_request : sender:Addr.Mac.t * Addr.Ipv4.t -> target:Addr.Ipv4.t -> t
val arp_reply :
  sender:Addr.Mac.t * Addr.Ipv4.t -> target:Addr.Mac.t * Addr.Ipv4.t -> t

val tcp_packet :
  ?flags:int -> ?payload_len:int ->
  src:Addr.Mac.t * Addr.Ipv4.t -> dst:Addr.Mac.t * Addr.Ipv4.t ->
  src_port:int -> dst_port:int -> unit -> t

val udp_packet :
  ?payload_len:int ->
  src:Addr.Mac.t * Addr.Ipv4.t -> dst:Addr.Mac.t * Addr.Ipv4.t ->
  src_port:int -> dst_port:int -> unit -> t

val lldp_frame : src:Addr.Mac.t -> Lldp.t -> t

(** {1 Wire codec} *)

val encode : t -> string
val decode : string -> t
(** Raises {!Wire_buf.Truncated} or [Invalid_argument] on garbage. *)

val size_on_wire : t -> int
(** Encoded header size plus simulated payload length — the number used
    for bandwidth accounting. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
