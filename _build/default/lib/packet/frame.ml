type arp_op = Request | Reply

type arp = {
  op : arp_op;
  sha : Addr.Mac.t;
  spa : Addr.Ipv4.t;
  tha : Addr.Mac.t;
  tpa : Addr.Ipv4.t;
}

type tcp = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : int;
  window : int;
  payload_len : int;
}

type udp = { src_port : int; dst_port : int; payload_len : int }
type icmp = { ty : int; code : int }
type l4 = Tcp of tcp | Udp of udp | Icmp of icmp | Other_l4 of int * string

type ipv4 = {
  src : Addr.Ipv4.t;
  dst : Addr.Ipv4.t;
  proto : int;
  ttl : int;
  dscp : int;
  l4 : l4;
}

type payload =
  | Arp of arp
  | Ipv4 of ipv4
  | Lldp of Lldp.t
  | Raw of int * string

type t = {
  dl_src : Addr.Mac.t;
  dl_dst : Addr.Mac.t;
  vlan : int option;
  payload : payload;
}

let ethertype_arp = 0x0806
let ethertype_ipv4 = 0x0800
let ethertype_lldp = 0x88CC
let ethertype_vlan = 0x8100

let ethertype t =
  match t.payload with
  | Arp _ -> ethertype_arp
  | Ipv4 _ -> ethertype_ipv4
  | Lldp _ -> ethertype_lldp
  | Raw (ty, _) -> ty

let tcp_fin = 1
let tcp_syn = 2
let tcp_rst = 4
let tcp_ack = 16

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

let arp_request ~sender:(sha, spa) ~target =
  { dl_src = sha;
    dl_dst = Addr.Mac.broadcast;
    vlan = None;
    payload =
      Arp { op = Request; sha; spa; tha = Addr.Mac.zero; tpa = target } }

let arp_reply ~sender:(sha, spa) ~target:(tha, tpa) =
  { dl_src = sha;
    dl_dst = tha;
    vlan = None;
    payload = Arp { op = Reply; sha; spa; tha; tpa } }

let ip_packet ~src:(smac, sip) ~dst:(dmac, dip) ~proto l4 =
  { dl_src = smac;
    dl_dst = dmac;
    vlan = None;
    payload = Ipv4 { src = sip; dst = dip; proto; ttl = 64; dscp = 0; l4 } }

let tcp_packet ?(flags = tcp_syn) ?(payload_len = 0) ~src ~dst ~src_port
    ~dst_port () =
  ip_packet ~src ~dst ~proto:proto_tcp
    (Tcp { src_port; dst_port; seq = 0; ack = 0; flags; window = 65535;
           payload_len })

let udp_packet ?(payload_len = 0) ~src ~dst ~src_port ~dst_port () =
  ip_packet ~src ~dst ~proto:proto_udp (Udp { src_port; dst_port; payload_len })

let lldp_frame ~src lldp =
  { dl_src = src;
    dl_dst = Addr.Mac.lldp_nearest_bridge;
    vlan = None;
    payload = Lldp lldp }

(* --- Encoding --- *)

let encode_arp w (a : arp) =
  let open Wire_buf.Writer in
  u16 w 1;               (* htype: ethernet *)
  u16 w ethertype_ipv4;  (* ptype *)
  u8 w 6;
  u8 w 4;
  u16 w (match a.op with Request -> 1 | Reply -> 2);
  u48 w (Addr.Mac.to_int a.sha);
  u32 w (Addr.Ipv4.to_int a.spa);
  u48 w (Addr.Mac.to_int a.tha);
  u32 w (Addr.Ipv4.to_int a.tpa)

let encode_l4 w = function
  | Tcp t ->
      let open Wire_buf.Writer in
      u16 w t.src_port;
      u16 w t.dst_port;
      u32 w t.seq;
      u32 w t.ack;
      u8 w 0x50; (* data offset = 5 words *)
      u8 w t.flags;
      u16 w t.window;
      u16 w 0; (* checksum: not modelled at L4 *)
      u16 w 0; (* urgent *)
      u16 w t.payload_len (* carried so decode can restore the model *)
  | Udp u ->
      let open Wire_buf.Writer in
      u16 w u.src_port;
      u16 w u.dst_port;
      u16 w (8 + u.payload_len);
      u16 w 0
  | Icmp i ->
      let open Wire_buf.Writer in
      u8 w i.ty;
      u8 w i.code;
      u16 w 0
  | Other_l4 (_, body) -> Wire_buf.Writer.bytes w body

let encode_ipv4 w (ip : ipv4) =
  let open Wire_buf.Writer in
  let header = Wire_buf.Writer.create () in
  u8 header 0x45; (* v4, IHL 5 *)
  u8 header (ip.dscp lsl 2);
  u16 header 0; (* total length: patched below *)
  u16 header 0; (* identification *)
  u16 header 0x4000; (* DF *)
  u8 header ip.ttl;
  u8 header ip.proto;
  u16 header 0; (* checksum placeholder *)
  u32 header (Addr.Ipv4.to_int ip.src);
  u32 header (Addr.Ipv4.to_int ip.dst);
  let body = Wire_buf.Writer.create () in
  encode_l4 body ip.l4;
  let total = 20 + Wire_buf.Writer.length body in
  patch_u16 header ~pos:2 total;
  let csum = Wire_buf.internet_checksum (contents header) in
  patch_u16 header ~pos:10 csum;
  bytes w (contents header);
  bytes w (contents body)

let encode t =
  let open Wire_buf.Writer in
  let w = create () in
  u48 w (Addr.Mac.to_int t.dl_dst);
  u48 w (Addr.Mac.to_int t.dl_src);
  (match t.vlan with
  | None -> ()
  | Some vid ->
      u16 w ethertype_vlan;
      u16 w (vid land 0xFFF));
  u16 w (ethertype t);
  (match t.payload with
  | Arp a -> encode_arp w a
  | Ipv4 ip -> encode_ipv4 w ip
  | Lldp l -> bytes w (Lldp.encode l)
  | Raw (_, body) -> bytes w body);
  contents w

(* --- Decoding --- *)

let decode_arp r =
  let open Wire_buf.Reader in
  let htype = u16 r "arp htype" in
  let ptype = u16 r "arp ptype" in
  if htype <> 1 || ptype <> ethertype_ipv4 then
    invalid_arg "Frame.decode: unsupported ARP types";
  skip r 2 "arp sizes";
  let op =
    match u16 r "arp op" with
    | 1 -> Request
    | 2 -> Reply
    | n -> invalid_arg (Printf.sprintf "Frame.decode: bad ARP op %d" n)
  in
  let sha = Addr.Mac.of_int (u48 r "arp sha") in
  let spa = Addr.Ipv4.of_int (u32 r "arp spa") in
  let tha = Addr.Mac.of_int (u48 r "arp tha") in
  let tpa = Addr.Ipv4.of_int (u32 r "arp tpa") in
  { op; sha; spa; tha; tpa }

let decode_l4 r proto =
  let open Wire_buf.Reader in
  if proto = proto_tcp then begin
    let src_port = u16 r "tcp sport" in
    let dst_port = u16 r "tcp dport" in
    let seq = u32 r "tcp seq" in
    let ack = u32 r "tcp ack" in
    skip r 1 "tcp offset";
    let flags = u8 r "tcp flags" in
    let window = u16 r "tcp window" in
    skip r 4 "tcp csum+urg";
    let payload_len = u16 r "tcp plen" in
    Tcp { src_port; dst_port; seq; ack; flags; window; payload_len }
  end
  else if proto = proto_udp then begin
    let src_port = u16 r "udp sport" in
    let dst_port = u16 r "udp dport" in
    let len = u16 r "udp len" in
    skip r 2 "udp csum";
    Udp { src_port; dst_port; payload_len = max 0 (len - 8) }
  end
  else if proto = proto_icmp then begin
    let ty = u8 r "icmp type" in
    let code = u8 r "icmp code" in
    skip r 2 "icmp csum";
    Icmp { ty; code }
  end
  else Other_l4 (proto, rest r)

let decode_ipv4 r =
  let open Wire_buf.Reader in
  let vihl = u8 r "ip vihl" in
  if vihl lsr 4 <> 4 then invalid_arg "Frame.decode: not IPv4";
  let dscp = u8 r "ip tos" lsr 2 in
  skip r 6 "ip len+id+frag";
  let ttl = u8 r "ip ttl" in
  let proto = u8 r "ip proto" in
  skip r 2 "ip csum";
  let src = Addr.Ipv4.of_int (u32 r "ip src") in
  let dst = Addr.Ipv4.of_int (u32 r "ip dst") in
  (* Options unsupported: IHL is always 5 in this model. *)
  if vihl land 0xF <> 5 then invalid_arg "Frame.decode: IP options";
  let l4 = decode_l4 r proto in
  { src; dst; proto; ttl; dscp; l4 }

let decode s =
  let open Wire_buf.Reader in
  let r = of_string s in
  let dl_dst = Addr.Mac.of_int (u48 r "eth dst") in
  let dl_src = Addr.Mac.of_int (u48 r "eth src") in
  let ty0 = u16 r "ethertype" in
  let vlan, ty =
    if ty0 = ethertype_vlan then begin
      let tci = u16 r "vlan tci" in
      (Some (tci land 0xFFF), u16 r "inner ethertype")
    end
    else (None, ty0)
  in
  let payload =
    if ty = ethertype_arp then Arp (decode_arp r)
    else if ty = ethertype_ipv4 then Ipv4 (decode_ipv4 r)
    else if ty = ethertype_lldp then Lldp (Lldp.decode (rest r))
    else Raw (ty, rest r)
  in
  { dl_src; dl_dst; vlan; payload }

let size_on_wire t =
  let base = String.length (encode t) in
  match t.payload with
  | Ipv4 { l4 = Tcp { payload_len; _ }; _ } -> base + payload_len
  | Ipv4 { l4 = Udp { payload_len; _ }; _ } -> base + payload_len
  | _ -> base

let pp_l4 fmt = function
  | Tcp t ->
      Format.fprintf fmt "tcp %d->%d flags=%d len=%d" t.src_port t.dst_port
        t.flags t.payload_len
  | Udp u -> Format.fprintf fmt "udp %d->%d len=%d" u.src_port u.dst_port
               u.payload_len
  | Icmp i -> Format.fprintf fmt "icmp %d/%d" i.ty i.code
  | Other_l4 (p, _) -> Format.fprintf fmt "proto=%d" p

let pp fmt t =
  Format.fprintf fmt "[%a -> %a " Addr.Mac.pp t.dl_src Addr.Mac.pp t.dl_dst;
  (match t.payload with
  | Arp a ->
      Format.fprintf fmt "arp %s %a(%a) -> %a"
        (match a.op with Request -> "who-has" | Reply -> "is-at")
        Addr.Ipv4.pp a.spa Addr.Mac.pp a.sha Addr.Ipv4.pp a.tpa
  | Ipv4 ip ->
      Format.fprintf fmt "%a -> %a %a" Addr.Ipv4.pp ip.src Addr.Ipv4.pp ip.dst
        pp_l4 ip.l4
  | Lldp l -> Lldp.pp fmt l
  | Raw (ty, body) ->
      Format.fprintf fmt "raw ty=0x%04x %d bytes" ty (String.length body));
  Format.fprintf fmt "]"

let equal a b = encode a = encode b
