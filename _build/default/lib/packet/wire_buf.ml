exception Truncated of string

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let u48 t v =
    u16 t (v lsr 32);
    u32 t v

  let u64 t v =
    u32 t (Int64.to_int (Int64.shift_right_logical v 32));
    u32 t (Int64.to_int (Int64.logand v 0xFFFF_FFFFL))

  let bytes = Buffer.add_string
  let zeros t n = Buffer.add_string t (String.make n '\000')
  let contents = Buffer.contents

  let patch_u16 t ~pos v =
    (* Buffer has no random-access write; rebuild via to_bytes. To keep
       this O(1) amortised we only use it for small packets, which is
       all this codebase produces. *)
    let b = Buffer.to_bytes t in
    Bytes.set b pos (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set b (pos + 1) (Char.chr (v land 0xFF));
    Buffer.clear t;
    Buffer.add_bytes t b
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let pos t = t.pos
  let remaining t = String.length t.data - t.pos

  let need t n field = if remaining t < n then raise (Truncated field)

  let u8 t field =
    need t 1 field;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t field =
    need t 2 field;
    (* Explicit lets: infix operand evaluation order is unspecified. *)
    let hi = u8 t field in
    let lo = u8 t field in
    (hi lsl 8) lor lo

  let u32 t field =
    let hi = u16 t field in
    let lo = u16 t field in
    (hi lsl 16) lor lo

  let u48 t field =
    let hi = u16 t field in
    let lo = u32 t field in
    (hi lsl 32) lor lo

  let u64 t field =
    let hi = u32 t field in
    let lo = u32 t field in
    Int64.logor
      (Int64.shift_left (Int64.of_int hi) 32)
      (Int64.of_int lo)

  let bytes t n field =
    need t n field;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let skip t n field =
    need t n field;
    t.pos <- t.pos + n

  let rest t =
    let s = String.sub t.data t.pos (remaining t) in
    t.pos <- String.length t.data;
    s
end

let internet_checksum s =
  let n = String.length s in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Char.code s.[!i] lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF
