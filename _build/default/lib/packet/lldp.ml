type t = {
  chassis_id : int64;
  port_id : int;
  ttl : int;
  system_name : string option;
}

let make ?system_name ~chassis_id ~port_id ~ttl () =
  { chassis_id; port_id; ttl; system_name }

let tlv_header w ~ty ~len =
  (* 7-bit type, 9-bit length. *)
  Wire_buf.Writer.u16 w ((ty lsl 9) lor (len land 0x1FF))

let encode t =
  let w = Wire_buf.Writer.create () in
  (* Chassis ID TLV: subtype 7 (locally assigned) + 8-byte dpid. *)
  tlv_header w ~ty:1 ~len:9;
  Wire_buf.Writer.u8 w 7;
  Wire_buf.Writer.u64 w t.chassis_id;
  (* Port ID TLV: subtype 7 + 2-byte port. *)
  tlv_header w ~ty:2 ~len:3;
  Wire_buf.Writer.u8 w 7;
  Wire_buf.Writer.u16 w t.port_id;
  (* TTL TLV. *)
  tlv_header w ~ty:3 ~len:2;
  Wire_buf.Writer.u16 w t.ttl;
  (match t.system_name with
  | None -> ()
  | Some name ->
      tlv_header w ~ty:5 ~len:(String.length name);
      Wire_buf.Writer.bytes w name);
  (* End of LLDPDU. *)
  tlv_header w ~ty:0 ~len:0;
  Wire_buf.Writer.contents w

let decode s =
  let r = Wire_buf.Reader.of_string s in
  let chassis_id = ref None
  and port_id = ref None
  and ttl = ref None
  and system_name = ref None in
  let stop = ref false in
  while not !stop do
    let hdr = Wire_buf.Reader.u16 r "lldp tlv header" in
    let ty = hdr lsr 9 and len = hdr land 0x1FF in
    match ty with
    | 0 -> stop := true
    | 1 ->
        let subtype = Wire_buf.Reader.u8 r "chassis subtype" in
        if subtype <> 7 || len <> 9 then
          invalid_arg "Lldp.decode: unsupported chassis id TLV";
        chassis_id := Some (Wire_buf.Reader.u64 r "chassis id")
    | 2 ->
        let subtype = Wire_buf.Reader.u8 r "port subtype" in
        if subtype <> 7 || len <> 3 then
          invalid_arg "Lldp.decode: unsupported port id TLV";
        port_id := Some (Wire_buf.Reader.u16 r "port id")
    | 3 ->
        if len <> 2 then invalid_arg "Lldp.decode: bad TTL TLV";
        ttl := Some (Wire_buf.Reader.u16 r "ttl")
    | 5 -> system_name := Some (Wire_buf.Reader.bytes r len "system name")
    | _ -> Wire_buf.Reader.skip r len "unknown tlv"
  done;
  match (!chassis_id, !port_id, !ttl) with
  | Some chassis_id, Some port_id, Some ttl ->
      { chassis_id; port_id; ttl; system_name = !system_name }
  | _ -> invalid_arg "Lldp.decode: missing mandatory TLV"

let pp fmt t =
  Format.fprintf fmt "lldp(dpid=%Ld port=%d ttl=%d%a)" t.chassis_id t.port_id
    t.ttl
    (fun fmt -> function
      | None -> ()
      | Some n -> Format.fprintf fmt " sys=%s" n)
    t.system_name

let equal a b =
  Int64.equal a.chassis_id b.chassis_id
  && a.port_id = b.port_id && a.ttl = b.ttl
  && Option.equal String.equal a.system_name b.system_name
