module Mac = struct
  type t = int

  let mask48 = 0xFFFF_FFFF_FFFF
  let of_int x = x land mask48
  let to_int t = t
  let broadcast = mask48
  let zero = 0
  let is_broadcast t = t = broadcast
  let is_multicast t = t land 0x0100_0000_0000 <> 0

  let of_string s =
    let parts = String.split_on_char ':' s in
    if List.length parts <> 6 then invalid_arg "Mac.of_string: need 6 octets";
    List.fold_left
      (fun acc p ->
        let v =
          try int_of_string ("0x" ^ p)
          with Failure _ -> invalid_arg "Mac.of_string: bad octet"
        in
        if v < 0 || v > 0xFF then invalid_arg "Mac.of_string: octet range";
        (acc lsl 8) lor v)
      0 parts

  let to_string t =
    Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
      ((t lsr 40) land 0xFF) ((t lsr 32) land 0xFF) ((t lsr 24) land 0xFF)
      ((t lsr 16) land 0xFF) ((t lsr 8) land 0xFF) (t land 0xFF)

  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let compare = Int.compare
  let equal = Int.equal
  let hash = Hashtbl.hash
  let of_host_index i = of_int (0x0200_0000_0000 lor (i land 0xFFFF_FFFF))
  let lldp_nearest_bridge = of_string "01:80:c2:00:00:0e"
end

module Ipv4 = struct
  type t = int

  let mask32 = 0xFFFF_FFFF
  let of_int x = x land mask32
  let to_int t = t

  let of_string s =
    let parts = String.split_on_char '.' s in
    if List.length parts <> 4 then invalid_arg "Ipv4.of_string: need 4 octets";
    List.fold_left
      (fun acc p ->
        let v =
          try int_of_string p
          with Failure _ -> invalid_arg "Ipv4.of_string: bad octet"
        in
        if v < 0 || v > 255 then invalid_arg "Ipv4.of_string: octet range";
        (acc lsl 8) lor v)
      0 parts

  let to_string t =
    Printf.sprintf "%d.%d.%d.%d"
      ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF) ((t lsr 8) land 0xFF)
      (t land 0xFF)

  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let compare = Int.compare
  let equal = Int.equal
  let any = 0
  let broadcast = mask32

  let of_host_index i =
    of_int (0x0A00_0000 lor ((i land 0xFFFF) + 1))

  let matches_prefix a ~prefix ~bits =
    if bits < 0 || bits > 32 then invalid_arg "Ipv4.matches_prefix: bits";
    if bits = 0 then true
    else begin
      let mask = mask32 lxor ((1 lsl (32 - bits)) - 1) in
      a land mask = to_int prefix land mask
    end
end
