lib/experiments/figures.mli: Jury_sim Jury_stats
