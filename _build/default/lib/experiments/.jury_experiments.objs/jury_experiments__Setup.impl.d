lib/experiments/setup.ml: Array Engine Jury Jury_controller Jury_net Jury_sim Jury_topo List Option Rng Time
