lib/experiments/setup.mli: Jury Jury_controller Jury_net Jury_sim Jury_topo
