lib/experiments/figures.ml: Array Engine Jury Jury_controller Jury_faults Jury_openflow Jury_policy Jury_sim Jury_stats Jury_store Jury_topo Jury_workload List Option Printf Setup String Sys Time
