lib/sim/rng.mli:
