lib/sim/metrics.mli: Time
