(** Simulated time.

    Time is counted in integer nanoseconds since the start of the
    simulation, which keeps event ordering exact and reproducible (no
    floating-point accumulation error across millions of events). The
    63-bit range covers ~292 simulated years, far beyond any experiment
    in this repository. *)

type t = private int
(** Nanoseconds since simulation start. *)

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_float_sec : float -> t
(** [of_float_sec s] rounds [s] seconds to the nearest nanosecond. *)

val of_float_ms : float -> t
val of_float_us : float -> t

val to_ns : t -> int
val to_float_us : t -> float
val to_float_ms : t -> float
val to_float_sec : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]; raises [Invalid_argument] if the result would
    be negative, since simulated time never runs backwards. *)

val diff : t -> t -> t
(** [diff a b] is [abs (a - b)]. *)

val mul : t -> int -> t
val div : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["129.3ms"]. *)

val to_string : t -> string
