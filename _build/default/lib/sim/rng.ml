type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int (bound - 1) in
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (bits64 t) mask)
  else
    let rec go () =
      let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 1) in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then go () else v
    in
    go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mean ~stddev =
  (* Box–Muller; one sample per call keeps the stream position simple. *)
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

let pareto t ~xm ~alpha =
  if xm <= 0. || alpha <= 0. then invalid_arg "Rng.pareto: bad parameters";
  let u = 1.0 -. float t 1.0 in
  xm /. (u ** (1.0 /. alpha))

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if k >= n then xs
  else begin
    shuffle t arr;
    Array.to_list (Array.sub arr 0 k)
  end
