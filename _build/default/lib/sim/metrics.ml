type series = { mutable data : float array; mutable len : int }

type t = {
  series : (string, series) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
}

let create () = { series = Hashtbl.create 16; counters = Hashtbl.create 16 }

let find_series t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
      let s = { data = Array.make 64 0.; len = 0 } in
      Hashtbl.add t.series name s;
      s

let record t name v =
  let s = find_series t name in
  if s.len = Array.length s.data then begin
    let ndata = Array.make (2 * s.len) 0. in
    Array.blit s.data 0 ndata 0 s.len;
    s.data <- ndata
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

let record_time t name d = record t name (Time.to_float_ms d)

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let samples t name =
  match Hashtbl.find_opt t.series name with
  | None -> [||]
  | Some s -> Array.sub s.data 0 s.len

let count t name =
  match Hashtbl.find_opt t.counters name with
  | None -> 0
  | Some r -> !r

let series_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.series [] |> List.sort compare

let counter_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.counters [] |> List.sort compare

let clear t =
  Hashtbl.reset t.series;
  Hashtbl.reset t.counters
