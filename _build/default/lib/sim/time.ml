type t = int

let zero = 0
let ns x = if x < 0 then invalid_arg "Time.ns: negative" else x
let us x = ns (x * 1_000)
let ms x = ns (x * 1_000_000)
let sec x = ns (x * 1_000_000_000)

let of_float_sec s =
  if s < 0. then invalid_arg "Time.of_float_sec: negative"
  else int_of_float (Float.round (s *. 1e9))

let of_float_ms m = of_float_sec (m /. 1e3)
let of_float_us u = of_float_sec (u /. 1e6)
let to_ns t = t
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6
let to_float_sec t = float_of_int t /. 1e9
let add a b = a + b

let sub a b =
  if b > a then invalid_arg "Time.sub: negative result" else a - b

let diff a b = abs (a - b)
let mul t k = if k < 0 then invalid_arg "Time.mul: negative" else t * k
let div t k = if k <= 0 then invalid_arg "Time.div: non-positive" else t / k
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.1fus" (to_float_us t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.1fms" (to_float_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_sec t)

let to_string t = Format.asprintf "%a" pp t
