(** A Cbench stand-in (§VII-B1's preliminary study, Fig. 4e).

    Cbench in throughput mode blasts PACKET_IN-generating packets at a
    controller as fast as it will take them. The blast quickly
    overwhelms the controller — the paper observed TCP zero-window
    stalls and the FLOW_MOD rate collapsing to zero. Here the blast is
    an on/off burst process injected straight into one switch. *)

val blast :
  Jury_net.Network.t -> rng:Jury_sim.Rng.t ->
  dpid:Jury_openflow.Of_types.Dpid.t -> burst:int ->
  burst_gap:Jury_sim.Time.t -> duration:Jury_sim.Time.t -> unit
(** Every [burst_gap], inject [burst] fresh TCP SYNs (unique ports,
    between two hosts on [dpid]) back-to-back into the switch. *)

val default_burst : int
val default_gap : Jury_sim.Time.t
