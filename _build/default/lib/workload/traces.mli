(** Benign background-traffic profiles standing in for the paper's
    packet traces (§VII-A2).

    The original traces — LBNL/ICSI enterprise [12], the IMC-2010
    university data-centre capture [10] and the FOI cyber-defence
    exercise (SMIA) [7] — are not redistributable, so each profile here
    is a synthetic generator reproducing the temporal character that
    matters to JURY's validation path: mean trigger rate, burstiness
    (lognormal inter-arrival shape), and the ARP/TCP/UDP trigger mix.
    See DESIGN.md for the substitution note. *)

type profile = {
  name : string;
  mean_rate : float;         (** triggers per second *)
  burstiness : float;        (** lognormal sigma of inter-arrival gaps *)
  arp_fraction : float;
  udp_fraction : float;      (** remainder is TCP *)
  mean_payload : int;        (** bytes, exponential *)
}

val lbnl : profile
(** Enterprise: steady, chatty, ARP-heavy. *)

val univ : profile
(** University data centre: high rate, heavy-tailed bursts. *)

val smia : profile
(** Cyber-defence exercise: spiky scanning bursts. *)

val all : profile list
val find : string -> profile option

val replay :
  Jury_net.Network.t -> rng:Jury_sim.Rng.t -> profile:profile ->
  duration:Jury_sim.Time.t -> unit
(** Schedule the profile's trigger stream on the network. *)
