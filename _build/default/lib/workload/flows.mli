(** Trigger generators: the workloads of §VII.

    All generators schedule work on the network's engine and return
    immediately; run the engine to make the traffic happen. Rates are
    events per simulated second with Poisson arrivals unless noted. *)

type pair_mode =
  | Same_switch
      (** src and dst share a switch — one-hop paths, so the PACKET_IN
          rate equals the connection rate (the throughput workloads) *)
  | Any_pair  (** arbitrary host pairs (the detection workloads) *)

val new_connections :
  Jury_net.Network.t -> rng:Jury_sim.Rng.t -> rate:float ->
  duration:Jury_sim.Time.t -> ?mode:pair_mode -> ?payload_len:int -> unit ->
  unit
(** Fresh TCP connections (unique source ports, so reactive exact-match
    forwarding sees a TCAM miss per connection). *)

val host_joins :
  Jury_net.Network.t -> rng:Jury_sim.Rng.t -> rate:float ->
  duration:Jury_sim.Time.t -> unit
(** Random hosts re-announce themselves with gratuitous ARPs. *)

val link_flaps :
  Jury_net.Network.t -> rng:Jury_sim.Rng.t -> rate:float ->
  duration:Jury_sim.Time.t -> ?down_time:Jury_sim.Time.t -> unit -> unit
(** Random inter-switch links go down and come back after [down_time]
    (default 300 ms). *)

val controlled_mix :
  Jury_net.Network.t -> rng:Jury_sim.Rng.t -> packet_in_rate:float ->
  duration:Jury_sim.Time.t -> unit
(** The Fig. 4a workload: host joins, link tear-downs and flows between
    hosts at a target aggregate PACKET_IN rate (≈96 % flows, ≈3.5 %
    joins, ≈0.5 % flaps). *)
