open Jury_sim
module Network = Jury_net.Network
module Capture = Jury_net.Capture
module Switch = Jury_net.Switch
module Builder = Jury_topo.Builder

let host_ports network =
  let plan = Network.plan network in
  List.map
    (fun (slot : Builder.host_slot) -> (slot.Builder.dpid, slot.Builder.port))
    plan.Builder.hosts

let edge_entries network capture =
  let edges = host_ports network in
  Capture.matching capture (fun (e : Capture.entry) ->
      e.Capture.direction = Capture.Rx
      && List.exists
           (fun (dpid, port) ->
             Jury_openflow.Of_types.Dpid.equal dpid e.Capture.dpid
             && port = e.Capture.port)
           edges)

let replay network capture ?(speed = 1.0) ?(start_after = Time.ms 1) () =
  if speed <= 0. then invalid_arg "Replay.replay: speed must be positive";
  let engine = Network.engine network in
  let entries = edge_entries network capture in
  match entries with
  | [] -> 0
  | first :: _ ->
      let t0 = first.Capture.at in
      let scheduled = ref 0 in
      List.iter
        (fun (e : Capture.entry) ->
          match Network.switch network e.Capture.dpid with
          | sw ->
              let offset =
                Time.of_float_us
                  (Time.to_float_us (Time.sub e.Capture.at t0) /. speed)
              in
              incr scheduled;
              ignore
                (Engine.schedule engine
                   ~after:(Time.add start_after offset)
                   (fun () ->
                     Switch.receive_frame sw ~in_port:e.Capture.port
                       e.Capture.frame))
          | exception Not_found -> ())
        entries;
      !scheduled
