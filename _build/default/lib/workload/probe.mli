(** Periodic counter sampling: turns the switches' cumulative PACKET_IN
    / FLOW_MOD / PACKET_OUT counters into the rate-over-time and
    rate-vs-rate series the throughput figures plot. *)

type t

val start :
  Jury_net.Network.t -> ?window_sec:float -> duration:Jury_sim.Time.t ->
  unit -> t
(** Sample all switches every [window_sec] (default 0.5 s) for
    [duration]. *)

val packet_in : t -> Jury_stats.Rate.t
val flow_mod : t -> Jury_stats.Rate.t
val packet_out : t -> Jury_stats.Rate.t

val total_packet_in : t -> int
val total_flow_mod : t -> int

val mean_flow_mod_rate : t -> float
(** Events per second over the sampled span. *)

val peak_flow_mod_rate : t -> float
