open Jury_sim
module Network = Jury_net.Network
module Switch = Jury_net.Switch
module Rate = Jury_stats.Rate

type t = {
  packet_in : Rate.t;
  flow_mod : Rate.t;
  packet_out : Rate.t;
  mutable last_pi : int;
  mutable last_fm : int;
  mutable last_po : int;
}

let totals network =
  List.fold_left
    (fun (pi, fm, po) sw ->
      ( pi + Switch.packet_in_count sw,
        fm + Switch.flow_mod_count sw,
        po + Switch.packet_out_count sw ))
    (0, 0, 0) (Network.switches network)

let start network ?(window_sec = 0.5) ~duration () =
  let engine = Network.engine network in
  let pi0, fm0, po0 = totals network in
  let t =
    { packet_in = Rate.create ~window_sec;
      flow_mod = Rate.create ~window_sec;
      packet_out = Rate.create ~window_sec;
      last_pi = pi0;
      last_fm = fm0;
      last_po = po0 }
  in
  let stop_at = Time.add (Engine.now engine) duration in
  let period = Time.of_float_sec window_sec in
  let rec arm () =
    let at = Time.add (Engine.now engine) period in
    if Time.(at <= stop_at) then
      ignore
        (Engine.schedule_at engine ~at (fun () ->
             let pi, fm, po = totals network in
             let now_sec = Time.to_float_sec (Engine.now engine) in
             Rate.tick t.packet_in ~at_sec:now_sec ~count:(pi - t.last_pi) ();
             Rate.tick t.flow_mod ~at_sec:now_sec ~count:(fm - t.last_fm) ();
             Rate.tick t.packet_out ~at_sec:now_sec ~count:(po - t.last_po) ();
             t.last_pi <- pi;
             t.last_fm <- fm;
             t.last_po <- po;
             arm ()))
  in
  arm ();
  t

let packet_in t = t.packet_in
let flow_mod t = t.flow_mod
let packet_out t = t.packet_out
let total_packet_in t = Rate.total t.packet_in
let total_flow_mod t = Rate.total t.flow_mod
let mean_flow_mod_rate t = Rate.mean_rate t.flow_mod
let peak_flow_mod_rate t = Rate.peak_rate t.flow_mod
