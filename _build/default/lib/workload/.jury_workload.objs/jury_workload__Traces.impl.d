lib/workload/traces.ml: Array Engine Jury_net Jury_sim List Rng Time
