lib/workload/flows.mli: Jury_net Jury_sim
