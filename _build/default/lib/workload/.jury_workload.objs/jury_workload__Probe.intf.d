lib/workload/probe.mli: Jury_net Jury_sim Jury_stats
