lib/workload/cbench.mli: Jury_net Jury_openflow Jury_sim
