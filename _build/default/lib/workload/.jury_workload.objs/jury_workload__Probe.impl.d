lib/workload/probe.ml: Engine Jury_net Jury_sim Jury_stats List Time
