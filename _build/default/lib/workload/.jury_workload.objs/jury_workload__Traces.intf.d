lib/workload/traces.mli: Jury_net Jury_sim
