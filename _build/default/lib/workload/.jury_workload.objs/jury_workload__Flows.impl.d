lib/workload/flows.ml: Array Engine Float Hashtbl Jury_net Jury_sim Jury_topo List Option Rng Time
