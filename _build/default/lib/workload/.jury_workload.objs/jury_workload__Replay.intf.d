lib/workload/replay.mli: Jury_net Jury_sim
