lib/workload/cbench.ml: Engine Jury_net Jury_openflow Jury_sim Jury_topo List Time
