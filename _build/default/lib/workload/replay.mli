(** Replay of captured traffic — the other half of the OFRewind-style
    record/replay the related work discusses (§IX).

    A {!Jury_net.Capture.t} recorded on one run is re-injected into a
    (possibly different) network: each frame that originally {e entered}
    a switch on a host-facing port is scheduled at the same relative
    offset. Transit [Rx] entries (frames arriving over inter-switch
    links) are skipped — the network under replay re-creates transit
    itself. *)

val replay :
  Jury_net.Network.t -> Jury_net.Capture.t ->
  ?speed:float -> ?start_after:Jury_sim.Time.t -> unit -> int
(** Schedule the capture against the network. [speed] scales time
    (2.0 = twice as fast; default 1.0), [start_after] delays the first
    frame (default 1 ms). Returns the number of frames scheduled.
    Frames for switches or ports the target network lacks are dropped.
    Run the engine afterwards to perform the replay. *)

val edge_entries :
  Jury_net.Network.t -> Jury_net.Capture.t -> Jury_net.Capture.entry list
(** The capture entries {!replay} would inject: [Rx] entries on ports
    with an attached host in the target network. *)
