lib/core/report.mli: Alarm Format Jury_sim Jury_stats Validator
