lib/core/deployment.mli: Jury_controller Jury_policy Jury_sim Validator
