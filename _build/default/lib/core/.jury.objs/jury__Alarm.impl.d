lib/core/alarm.ml: Format Jury_controller Jury_sim List String
