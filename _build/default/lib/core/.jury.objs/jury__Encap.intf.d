lib/core/encap.mli: Jury_openflow
