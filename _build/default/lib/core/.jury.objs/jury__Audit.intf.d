lib/core/audit.mli: Alarm Format Jury_controller Jury_sim Response Validator
