lib/core/deployment.ml: Array Encap Engine Float Fun Jury_controller Jury_openflow Jury_policy Jury_sim Jury_store List Response Rng Snapshot String Time Validator
