lib/core/alarm.mli: Format Jury_controller Jury_sim
