lib/core/validator.mli: Alarm Jury_controller Jury_openflow Jury_policy Jury_sim Response
