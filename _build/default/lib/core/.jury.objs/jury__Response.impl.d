lib/core/response.ml: Format Jury_controller Jury_openflow Jury_sim Jury_store Snapshot
