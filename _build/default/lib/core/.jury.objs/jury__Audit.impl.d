lib/core/audit.ml: Alarm Digest Format Jury_controller Jury_sim List Printf Queue Response String Validator
