lib/core/encap.ml: Jury_openflow Jury_packet Of_message Of_types Of_wire
