lib/core/snapshot.mli: Format Jury_store
