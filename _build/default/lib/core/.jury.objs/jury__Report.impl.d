lib/core/report.ml: Alarm Format Hashtbl Jury_sim Jury_stats List Printf String Time Validator
