lib/core/snapshot.ml: Format Hashtbl Jury_store Stdlib
