lib/core/validator.ml: Alarm Array Engine Format Hashtbl Jury_controller Jury_openflow Jury_policy Jury_sim Jury_store List Option Printf Response Snapshot String Time
