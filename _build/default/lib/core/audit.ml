module Types = Jury_controller.Types

type kind = Evidence of Response.t | Verdict of Alarm.t

type entry = {
  seq : int;
  at : Jury_sim.Time.t;
  kind : kind;
  chain : string;
}

type t = {
  capacity : int;
  buffer : entry Queue.t;
  mutable next_seq : int;
  mutable evicted : int;
  mutable last_chain : string;
}

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Audit.create: capacity must be positive";
  { capacity;
    buffer = Queue.create ();
    next_seq = 0;
    evicted = 0;
    last_chain = Digest.to_hex (Digest.string "jury-audit-genesis") }

let kind_digest = function
  | Evidence r -> Format.asprintf "%a" Response.pp r
  | Verdict a -> Format.asprintf "%a" Alarm.pp a

let push t at kind =
  if Queue.length t.buffer >= t.capacity then begin
    ignore (Queue.pop t.buffer);
    t.evicted <- t.evicted + 1
  end;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let chain =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "%s|%d|%d|%s" t.last_chain seq
            (Jury_sim.Time.to_ns at) (kind_digest kind)))
  in
  t.last_chain <- chain;
  Queue.push { seq; at; kind; chain } t.buffer

let record_response t at r = push t at (Evidence r)
let record_verdict t (a : Alarm.t) = push t a.Alarm.decided_at (Verdict a)

let attach t validator =
  Validator.on_response validator (fun r ->
      record_response t r.Response.sent_at r);
  Validator.on_verdict validator (fun a -> record_verdict t a)

let entries t = List.of_seq (Queue.to_seq t.buffer)
let length t = Queue.length t.buffer
let evicted t = t.evicted

let verify_chain t =
  match entries t with
  | [] -> true
  | first :: _ as all ->
      (* We can only re-derive links for which we know the predecessor;
         verify the relative chain starting from the first retained
         entry's stored hash. *)
      let rec go prev_chain = function
        | [] -> true
        | e :: rest ->
            let expect =
              Digest.to_hex
                (Digest.string
                   (Printf.sprintf "%s|%d|%d|%s" prev_chain e.seq
                      (Jury_sim.Time.to_ns e.at)
                      (kind_digest e.kind)))
            in
            String.equal expect e.chain && go e.chain rest
      in
      (match all with
      | _ :: rest -> go first.chain rest
      | [] -> true)

let for_taint t taint =
  List.filter
    (fun e ->
      match e.kind with
      | Evidence r -> Types.Taint.equal r.Response.taint taint
      | Verdict a -> Types.Taint.equal a.Alarm.taint taint)
    (entries t)

let by_controller t id =
  List.filter
    (fun e ->
      match e.kind with
      | Evidence r -> r.Response.controller = id
      | Verdict a -> List.mem id a.Alarm.suspects)
    (entries t)

let pp_entry fmt e =
  Format.fprintf fmt "#%d %a %s %s" e.seq Jury_sim.Time.pp e.at
    (String.sub e.chain 0 8)
    (kind_digest e.kind)
