open Jury_openflow
module Frame = Jury_packet.Frame
module Addr = Jury_packet.Addr

let ethertype = 0x9999

let encapsulate (msg : Of_message.t) : Of_message.packet_in =
  let wire = Of_wire.encode msg in
  { buffer_id = None;
    in_port = Of_types.Port.local;
    reason = Of_message.No_match;
    frame =
      { dl_src = Addr.Mac.of_host_index 0xEEEE;
        dl_dst = Addr.Mac.of_host_index 0xEEEF;
        vlan = None;
        payload = Frame.Raw (ethertype, wire) } }

let decapsulate (pi : Of_message.packet_in) =
  match pi.frame.Frame.payload with
  | Frame.Raw (ty, wire) when ty = ethertype -> (
      match Of_wire.decode wire with
      | msg -> Some msg
      | exception _ -> None)
  | _ -> None

let overhead_bytes msg =
  let inner = Of_wire.encoded_size msg in
  let outer =
    Of_wire.encoded_size
      (Of_message.make ~xid:0 (Of_message.Packet_in (encapsulate msg)))
  in
  outer - inner
