(** Succinct per-controller state snapshots.

    Each JURY controller module keeps a running snapshot of the cache
    events its node has observed, and attaches it to every message sent
    to the validator. Equality of snapshots is the validator's test for
    "replicas with equivalent network view" (§IV-C A). The digest is an
    order-insensitive XOR of event fingerprints, because eventually-
    consistent stores apply the same events in different orders at
    different nodes. *)

type t

val pristine : t
(** The snapshot of a node that has observed nothing. *)

val observe : t -> Jury_store.Event.t -> t
val count : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
