type t = { count : int; digest : int }

let pristine = { count = 0; digest = 0 }

let event_fingerprint (ev : Jury_store.Event.t) =
  Hashtbl.hash
    (ev.cache, Jury_store.Event.op_to_string ev.op, ev.key, ev.value,
     ev.origin, ev.seq)

let observe t ev =
  { count = t.count + 1; digest = t.digest lxor event_fingerprint ev }

let count t = t.count
let equal (a : t) b = a.digest = b.digest
let compare (a : t) b = Stdlib.compare (a.digest, a.count) (b.digest, b.count)
let pp fmt t = Format.fprintf fmt "psi(n=%d %08x)" t.count (t.digest land 0xFFFFFFFF)
