module Dpid = Jury_openflow.Of_types.Dpid

type host_slot = { host_index : int; dpid : Dpid.t; port : int }
type plan = { graph : Graph.t; hosts : host_slot list; name : string }

(* Per-switch next-free-port allocator. *)
module Ports = struct
  type t = (Dpid.t, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let next (t : t) dpid =
    match Hashtbl.find_opt t dpid with
    | Some r ->
        incr r;
        !r
    | None ->
        Hashtbl.add t dpid (ref 1);
        1
end

let attach_hosts graph ports dpids ~hosts_per =
  let idx = ref 0 in
  List.concat_map
    (fun dpid ->
      Graph.add_switch graph dpid;
      List.init hosts_per (fun _ ->
          let slot =
            { host_index = !idx; dpid; port = Ports.next ports dpid }
          in
          incr idx;
          slot))
    dpids

let link graph ports d1 d2 =
  let p1 = Ports.next ports d1 and p2 = Ports.next ports d2 in
  Graph.add_link graph { dpid = d1; port = p1 } { dpid = d2; port = p2 }

let linear ~switches ~hosts_per_switch =
  if switches <= 0 then invalid_arg "Builder.linear: need >= 1 switch";
  let graph = Graph.create () in
  let ports = Ports.create () in
  let dpids = List.init switches (fun i -> Dpid.of_int (i + 1)) in
  let hosts = attach_hosts graph ports dpids ~hosts_per:hosts_per_switch in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        link graph ports a b;
        chain rest
    | [ _ ] | [] -> ()
  in
  chain dpids;
  { graph; hosts; name = Printf.sprintf "linear-%d" switches }

let single ~hosts =
  let plan = linear ~switches:1 ~hosts_per_switch:hosts in
  { plan with name = "single" }

let star ~leaves ~hosts_per_leaf =
  if leaves <= 0 then invalid_arg "Builder.star: need >= 1 leaf";
  let graph = Graph.create () in
  let ports = Ports.create () in
  let core = Dpid.of_int 1 in
  Graph.add_switch graph core;
  let leaf_dpids = List.init leaves (fun i -> Dpid.of_int (i + 2)) in
  let hosts = attach_hosts graph ports leaf_dpids ~hosts_per:hosts_per_leaf in
  List.iter (fun leaf -> link graph ports core leaf) leaf_dpids;
  { graph; hosts; name = Printf.sprintf "star-%d" leaves }

let ring ~switches ~hosts_per_switch =
  if switches < 3 then invalid_arg "Builder.ring: need >= 3 switches";
  let plan = linear ~switches ~hosts_per_switch in
  let ports = Ports.create () in
  (* Re-derive port allocation is unsafe; instead use high port numbers
     for the closing link. *)
  ignore ports;
  let first = Dpid.of_int 1 and last = Dpid.of_int switches in
  Graph.add_link plan.graph
    { dpid = first; port = 100 }
    { dpid = last; port = 100 };
  { plan with name = Printf.sprintf "ring-%d" switches }

let three_tier ?(edge = 8) ?(aggregate = 4) ?(core = 2) ~hosts_per_edge () =
  if edge <= 0 || aggregate <= 0 || core <= 0 then
    invalid_arg "Builder.three_tier: all tiers must be non-empty";
  let graph = Graph.create () in
  let ports = Ports.create () in
  let edge_dpids = List.init edge (fun i -> Dpid.of_int (100 + i)) in
  let agg_dpids = List.init aggregate (fun i -> Dpid.of_int (200 + i)) in
  let core_dpids = List.init core (fun i -> Dpid.of_int (300 + i)) in
  List.iter (Graph.add_switch graph) (agg_dpids @ core_dpids);
  let hosts = attach_hosts graph ports edge_dpids ~hosts_per:hosts_per_edge in
  let agg_arr = Array.of_list agg_dpids in
  List.iteri
    (fun i e ->
      (* Dual-home each edge switch to two aggregates. *)
      let a1 = agg_arr.(i mod aggregate) in
      let a2 = agg_arr.((i + 1) mod aggregate) in
      link graph ports e a1;
      if not (Dpid.equal a1 a2) then link graph ports e a2)
    edge_dpids;
  List.iter
    (fun a -> List.iter (fun c -> link graph ports a c) core_dpids)
    agg_dpids;
  { graph; hosts; name = Printf.sprintf "three-tier-%d/%d/%d" edge aggregate core }

let fat_tree ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Builder.fat_tree: k must be even";
  let graph = Graph.create () in
  let ports = Ports.create () in
  let half = k / 2 in
  let core_dpids =
    List.init (half * half) (fun i -> Dpid.of_int (10_000 + i))
  in
  List.iter (Graph.add_switch graph) core_dpids;
  let hosts = ref [] in
  let host_idx = ref 0 in
  let core_arr = Array.of_list core_dpids in
  for pod = 0 to k - 1 do
    let agg = List.init half (fun i -> Dpid.of_int (1_000 + (pod * 100) + i)) in
    let edg = List.init half (fun i -> Dpid.of_int (2_000 + (pod * 100) + i)) in
    List.iter (Graph.add_switch graph) (agg @ edg);
    (* Hosts on edge switches. *)
    List.iter
      (fun e ->
        for _ = 1 to half do
          hosts :=
            { host_index = !host_idx; dpid = e; port = Ports.next ports e }
            :: !hosts;
          incr host_idx
        done)
      edg;
    (* Edge <-> agg full mesh within pod. *)
    List.iter (fun e -> List.iter (fun a -> link graph ports e a) agg) edg;
    (* Agg <-> core. *)
    List.iteri
      (fun ai a ->
        for ci = 0 to half - 1 do
          link graph ports a core_arr.((ai * half) + ci)
        done)
      agg
  done;
  { graph; hosts = List.rev !hosts; name = Printf.sprintf "fat-tree-%d" k }

let host_count plan = List.length plan.hosts

let find_host_slot plan i =
  match List.find_opt (fun h -> h.host_index = i) plan.hosts with
  | Some h -> h
  | None -> raise Not_found
