lib/topo/builder.mli: Graph Jury_openflow
