lib/topo/weighted.mli: Graph Jury_openflow
