lib/topo/graph.mli: Format Jury_openflow
