lib/topo/builder.ml: Array Graph Hashtbl Jury_openflow List Printf
