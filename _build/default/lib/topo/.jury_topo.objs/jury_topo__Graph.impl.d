lib/topo/graph.ml: Format Hashtbl Jury_openflow List Map Option Queue
