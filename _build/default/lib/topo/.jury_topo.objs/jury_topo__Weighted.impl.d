lib/topo/weighted.ml: Graph Hashtbl Jury_openflow List Map Option Printf String
