module Dpid = Jury_openflow.Of_types.Dpid

type endpoint = { dpid : Dpid.t; port : int }
type edge = { a : endpoint; b : endpoint }

module DpidMap = Map.Make (Dpid)

type t = {
  mutable adj : (int * endpoint) list DpidMap.t;
      (* switch -> (local port, remote endpoint) *)
}

let create () = { adj = DpidMap.empty }

let add_switch t dpid =
  if not (DpidMap.mem dpid t.adj) then t.adj <- DpidMap.add dpid [] t.adj

let has_switch t dpid = DpidMap.mem dpid t.adj

let neighbors t dpid =
  match DpidMap.find_opt dpid t.adj with Some l -> l | None -> []

let has_link t e1 e2 =
  List.exists
    (fun (p, remote) -> p = e1.port && remote = e2)
    (neighbors t e1.dpid)

let add_link t e1 e2 =
  if Dpid.equal e1.dpid e2.dpid then invalid_arg "Graph.add_link: self-loop";
  add_switch t e1.dpid;
  add_switch t e2.dpid;
  if not (has_link t e1 e2) then begin
    t.adj <-
      DpidMap.update e1.dpid
        (fun l -> Some ((e1.port, e2) :: Option.value l ~default:[]))
        t.adj;
    t.adj <-
      DpidMap.update e2.dpid
        (fun l -> Some ((e2.port, e1) :: Option.value l ~default:[]))
        t.adj
  end

let remove_link t e1 e2 =
  let prune dpid port remote =
    t.adj <-
      DpidMap.update dpid
        (Option.map
           (List.filter (fun (p, r) -> not (p = port && r = remote))))
        t.adj
  in
  prune e1.dpid e1.port e2;
  prune e2.dpid e2.port e1

let switches t = DpidMap.fold (fun k _ acc -> k :: acc) t.adj [] |> List.rev

let canonical e1 e2 =
  let c = Dpid.compare e1.dpid e2.dpid in
  if c < 0 || (c = 0 && e1.port <= e2.port) then { a = e1; b = e2 }
  else { a = e2; b = e1 }

let edges t =
  DpidMap.fold
    (fun dpid links acc ->
      List.fold_left
        (fun acc (port, remote) ->
          let e = canonical { dpid; port } remote in
          if e.a.dpid = dpid && e.a.port = port then e :: acc else acc)
        acc links)
    t.adj []

let switch_count t = DpidMap.cardinal t.adj
let edge_count t = List.length (edges t)
let copy t = { adj = t.adj }

let bfs_parents t src =
  (* parent map: dpid -> (parent dpid, parent's local port, our in port) *)
  let parents = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  Hashtbl.add visited src ();
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (local_port, remote) ->
        if not (Hashtbl.mem visited remote.dpid) then begin
          Hashtbl.add visited remote.dpid ();
          Hashtbl.add parents remote.dpid (u, local_port, remote.port);
          Queue.push remote.dpid q
        end)
      (neighbors t u)
  done;
  (parents, visited)

let shortest_path t src dst =
  if not (has_switch t src && has_switch t dst) then None
  else if Dpid.equal src dst then Some [ (src, 0, 0) ]
  else begin
    let parents, visited = bfs_parents t src in
    if not (Hashtbl.mem visited dst) then None
    else begin
      (* Walk back from dst, collecting (dpid, in_port) and the parent's
         out_port. *)
      let rec walk dpid acc =
        match Hashtbl.find_opt parents dpid with
        | None -> (dpid, acc) (* reached src *)
        | Some (parent, parent_out, our_in) ->
            walk parent ((dpid, our_in, parent_out) :: acc)
      in
      let _, hops = walk dst [] in
      (* hops are (dpid, in_port, parent_out_port); convert to the
         (dpid, in_port, out_port) convention. *)
      let rec assemble = function
        | [] -> []
        | (dpid, in_port, _) :: rest ->
            let out_port =
              match rest with
              | [] -> 0
              | (_, _, next_parent_out) :: _ -> next_parent_out
            in
            (dpid, in_port, out_port) :: assemble rest
      in
      let tail = assemble hops in
      let first_out =
        match hops with [] -> 0 | (_, _, parent_out) :: _ -> parent_out
      in
      Some ((src, 0, first_out) :: tail)
    end
  end

let distances_to t dst =
  let dist = Hashtbl.create 64 in
  Hashtbl.add dist dst 0;
  let q = Queue.create () in
  Queue.push dst q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let du = Hashtbl.find dist u in
    List.iter
      (fun (_, remote) ->
        if not (Hashtbl.mem dist remote.dpid) then begin
          Hashtbl.add dist remote.dpid (du + 1);
          Queue.push remote.dpid q
        end)
      (neighbors t u)
  done;
  dist

let next_hop_choices t src dst =
  if Dpid.equal src dst then []
  else begin
    let dist = distances_to t dst in
    match Hashtbl.find_opt dist src with
    | None -> []
    | Some dsrc ->
        List.filter_map
          (fun (port, remote) ->
            match Hashtbl.find_opt dist remote.dpid with
            | Some d when d = dsrc - 1 -> Some (port, remote.dpid)
            | _ -> None)
          (neighbors t src)
  end

let connected t =
  match switches t with
  | [] -> true
  | s :: _ ->
      let _, visited = bfs_parents t s in
      Hashtbl.length visited = switch_count t

let spanning_tree_ports t root =
  let parents, _ = bfs_parents t root in
  let ports = Hashtbl.create 64 in
  let add dpid port =
    let cur = Option.value (Hashtbl.find_opt ports dpid) ~default:[] in
    if not (List.mem port cur) then Hashtbl.replace ports dpid (port :: cur)
  in
  Hashtbl.iter
    (fun child (parent, parent_out, child_in) ->
      add parent parent_out;
      add child child_in)
    parents;
  List.map
    (fun dpid ->
      (dpid, Option.value (Hashtbl.find_opt ports dpid) ~default:[]))
    (switches t)

let pp fmt t =
  Format.fprintf fmt "graph(%d switches, %d links)@." (switch_count t)
    (edge_count t);
  List.iter
    (fun e ->
      Format.fprintf fmt "  %a:%d <-> %a:%d@." Dpid.pp e.a.dpid e.a.port
        Dpid.pp e.b.dpid e.b.port)
    (edges t)
