module Dpid = Jury_openflow.Of_types.Dpid

let default_weight = 1.0

type weights = (string, float) Hashtbl.t

let key (e1 : Graph.endpoint) (e2 : Graph.endpoint) =
  let s (e : Graph.endpoint) =
    Printf.sprintf "%Lx:%d" (Dpid.to_int64 e.Graph.dpid) e.Graph.port
  in
  let a = s e1 and b = s e2 in
  if String.compare a b <= 0 then a ^ "--" ^ b else b ^ "--" ^ a

let uniform : weights = Hashtbl.create 0

let of_assignments assignments =
  let t = Hashtbl.create (List.length assignments) in
  List.iter
    (fun (e1, e2, w) ->
      if w <= 0. then invalid_arg "Weighted.of_assignments: weight <= 0";
      Hashtbl.replace t (key e1 e2) w)
    assignments;
  t

let weight t e1 e2 =
  Option.value (Hashtbl.find_opt t (key e1 e2)) ~default:default_weight

(* Dijkstra with a simple leftist-free approach: a sorted module Heap is
   for Time keys only, so use a priority queue on (cost, seq). *)
module Pq = struct
  module M = Map.Make (struct
    type t = float * int

    let compare = compare
  end)

  type 'a t = { mutable m : 'a M.t; mutable seq : int }

  let create () = { m = M.empty; seq = 0 }

  let push t cost v =
    t.seq <- t.seq + 1;
    t.m <- M.add (cost, t.seq) v t.m

  let pop t =
    match M.min_binding_opt t.m with
    | None -> None
    | Some ((cost, seq), v) ->
        t.m <- M.remove (cost, seq) t.m;
        Some (cost, v)
end

let shortest_path g weights src dst =
  if not (Graph.has_switch g src && Graph.has_switch g dst) then None
  else if Dpid.equal src dst then Some ([ (src, 0, 0) ], 0.)
  else begin
    let dist : (Dpid.t, float) Hashtbl.t = Hashtbl.create 64 in
    (* child -> (parent, parent out port, child in port) *)
    let parent = Hashtbl.create 64 in
    let pq = Pq.create () in
    Hashtbl.replace dist src 0.;
    Pq.push pq 0. src;
    let finished = Hashtbl.create 64 in
    let rec loop () =
      match Pq.pop pq with
      | None -> ()
      | Some (cost, u) ->
          if not (Hashtbl.mem finished u) then begin
            Hashtbl.replace finished u ();
            List.iter
              (fun (local_port, (remote : Graph.endpoint)) ->
                let w =
                  weight weights
                    { Graph.dpid = u; port = local_port }
                    remote
                in
                let cand = cost +. w in
                let better =
                  match Hashtbl.find_opt dist remote.Graph.dpid with
                  | None -> true
                  | Some d -> cand < d -. 1e-12
                in
                if better then begin
                  Hashtbl.replace dist remote.Graph.dpid cand;
                  Hashtbl.replace parent remote.Graph.dpid
                    (u, local_port, remote.Graph.port);
                  Pq.push pq cand remote.Graph.dpid
                end)
              (Graph.neighbors g u);
            loop ()
          end
          else loop ()
    in
    loop ();
    match Hashtbl.find_opt dist dst with
    | None -> None
    | Some total ->
        let rec walk dpid acc =
          match Hashtbl.find_opt parent dpid with
          | None -> acc
          | Some (p, p_out, our_in) -> walk p ((dpid, our_in, p_out) :: acc)
        in
        let hops = walk dst [] in
        let rec assemble = function
          | [] -> []
          | (dpid, in_port, _) :: rest ->
              let out_port =
                match rest with
                | [] -> 0
                | (_, _, next_parent_out) :: _ -> next_parent_out
              in
              (dpid, in_port, out_port) :: assemble rest
        in
        let first_out =
          match hops with [] -> 0 | (_, _, p_out) :: _ -> p_out
        in
        Some ((src, 0, first_out) :: assemble hops, total)
  end

let path_weight _g weights hops =
  let rec go acc = function
    | (d1, _, out1) :: (((d2, in2, _) :: _) as rest) ->
        go
          (acc
          +. weight weights
               { Graph.dpid = d1; port = out1 }
               { Graph.dpid = d2; port = in2 })
          rest
    | _ -> acc
  in
  go 0. hops
