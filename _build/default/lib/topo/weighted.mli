(** Latency-weighted routing over a {!Graph.t}.

    BFS treats every hop alike; production controllers weight links by
    measured latency or administrative cost. This module runs Dijkstra
    over a graph plus a per-link weight assignment and yields paths in
    the same per-hop format as {!Graph.shortest_path}, so the forwarding
    app can swap metrics without changing rule generation. *)

module Dpid = Jury_openflow.Of_types.Dpid

type weights
(** Per-link weights; unassigned links get {!default_weight}. *)

val default_weight : float

val uniform : weights
(** Every link weighs {!default_weight} — Dijkstra degenerates to BFS
    (up to tie-breaking). *)

val of_assignments : (Graph.endpoint * Graph.endpoint * float) list -> weights
(** Weight specific links (order of endpoints irrelevant). Raises
    [Invalid_argument] on non-positive weights. *)

val weight : weights -> Graph.endpoint -> Graph.endpoint -> float

val shortest_path :
  Graph.t -> weights -> Dpid.t -> Dpid.t ->
  ((Dpid.t * int * int) list * float) option
(** Cheapest path and its total weight, hops in the
    {!Graph.shortest_path} convention. [None] when disconnected. *)

val path_weight : Graph.t -> weights -> (Dpid.t * int * int) list -> float
(** Total weight of a concrete hop list (0 for single-switch paths). *)
