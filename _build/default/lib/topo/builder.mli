(** Canned topologies.

    Each builder returns the switch graph plus the host attachment plan
    (which switch port each host occupies), leaving instantiation of
    simulated switches/hosts to [jury_net]. Ports are allocated
    deterministically: host-facing ports first (1..h), then inter-switch
    ports. *)

module Dpid = Jury_openflow.Of_types.Dpid

type host_slot = { host_index : int; dpid : Dpid.t; port : int }

type plan = {
  graph : Graph.t;
  hosts : host_slot list;
  name : string;
}

val linear : switches:int -> hosts_per_switch:int -> plan
(** The paper's Mininet workload topology: [switches] in a chain, each
    with [hosts_per_switch] hosts (the paper uses 24 switches x 1
    host). *)

val single : hosts:int -> plan
(** One switch, [hosts] hosts. *)

val star : leaves:int -> hosts_per_leaf:int -> plan
(** One core switch with [leaves] edge switches. *)

val ring : switches:int -> hosts_per_switch:int -> plan

val three_tier : ?edge:int -> ?aggregate:int -> ?core:int ->
  hosts_per_edge:int -> unit -> plan
(** The paper's physical testbed shape: 8 edge, 4 aggregate and 2 core
    switches (defaults), edge switches dual-homed to two aggregates,
    aggregates dual-homed to both cores. Hosts hang off edge switches. *)

val fat_tree : k:int -> plan
(** Standard k-ary fat-tree (k even): (k/2)^2 core, k pods of k/2 agg +
    k/2 edge switches, one host per edge port. *)

val host_count : plan -> int
val find_host_slot : plan -> int -> host_slot
(** Raises [Not_found] for an unknown host index. *)
