(** Undirected multigraph of switches and their inter-switch links.

    Nodes are datapath ids; an edge records the port each endpoint uses,
    so routing can emit concrete output ports. Host attachment points
    live alongside the graph (a host hangs off a switch port but is not
    a graph node). *)

module Dpid = Jury_openflow.Of_types.Dpid

type endpoint = { dpid : Dpid.t; port : int }

type edge = { a : endpoint; b : endpoint }
(** Canonical orientation: [a.dpid <= b.dpid] (tie broken by port). *)

type t

val create : unit -> t
val add_switch : t -> Dpid.t -> unit

val add_link : t -> endpoint -> endpoint -> unit
(** Adds both switches if missing; idempotent per (endpoint, endpoint)
    pair. Self-loops are rejected. *)

val remove_link : t -> endpoint -> endpoint -> unit
val has_switch : t -> Dpid.t -> bool
val has_link : t -> endpoint -> endpoint -> bool
val switches : t -> Dpid.t list
val edges : t -> edge list

val neighbors : t -> Dpid.t -> (int * endpoint) list
(** [(local_port, remote_endpoint)] pairs for the given switch. *)

val switch_count : t -> int
val edge_count : t -> int
val copy : t -> t

val shortest_path : t -> Dpid.t -> Dpid.t -> (Dpid.t * int * int) list option
(** BFS hop-count path. Returns per-hop [(dpid, in_port, out_port)]
    triples: the packet enters switch [dpid] on [in_port] (0 for the
    first hop, meaning "from the host/ingress") and leaves on
    [out_port] (0 on the last hop, meaning "to the host"). [None] if
    disconnected, [Some []] never occurs; a path from a switch to
    itself is [Some [(s, 0, 0)]]. *)

val next_hop_choices : t -> Dpid.t -> Dpid.t -> (int * Dpid.t) list
(** Equal-cost first hops from src toward dst: every (out_port,
    neighbor) whose hop distance to dst is exactly one less than
    src's. Empty if unreachable or src = dst. *)

val connected : t -> bool
val spanning_tree_ports : t -> Dpid.t -> (Dpid.t * int list) list
(** Per-switch list of ports on a BFS spanning tree rooted at the given
    switch — used for loop-free flooding. *)

val pp : Format.formatter -> t -> unit
