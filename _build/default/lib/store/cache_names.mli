(** Well-known controller-wide cache names.

    These mirror the data stores the paper's policy language (Table 2)
    enumerates: ARP bindings, discovered hosts, topology edges/links,
    flow rules, connected switches and switch mastership. *)

val arpdb : string
val hostdb : string
val edgedb : string
val linksdb : string
val flowsdb : string
val switchdb : string
val masterdb : string

val all : string list

val is_known : string -> bool
(** Case-insensitive membership in {!all}. *)

val normalize : string -> string
(** Uppercases, so "FlowsDB" and "FLOWSDB" compare equal; policy parsing
    and the validator both normalise through here. *)
