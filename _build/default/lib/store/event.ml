type op = Create | Update | Delete

type t = {
  cache : string;
  op : op;
  key : string;
  value : string;
  origin : int;
  seq : int;
  taint : string option;
}

let op_to_string = function
  | Create -> "create"
  | Update -> "update"
  | Delete -> "delete"

let op_of_string s =
  match String.lowercase_ascii s with
  | "create" -> Some Create
  | "update" -> Some Update
  | "delete" -> Some Delete
  | _ -> None

let framing_overhead = 1150
(* Event metadata plus the data platform's envelope: Hazelcast and
   Infinispan serialise entries with class descriptors, backup
   bookkeeping and partition metadata — measured entry sizes are
   hundreds of bytes beyond the raw key/value. *)

let wire_size t =
  framing_overhead + String.length t.cache + String.length t.key
  + String.length t.value
  + (match t.taint with None -> 0 | Some s -> String.length s)

let pp fmt t =
  Format.fprintf fmt "%s[%s %s=%S origin=%d seq=%d]" t.cache
    (op_to_string t.op) t.key t.value t.origin t.seq

let equal (a : t) b = a = b
let compare = Stdlib.compare
