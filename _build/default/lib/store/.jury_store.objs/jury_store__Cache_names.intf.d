lib/store/cache_names.mli:
