lib/store/cache_names.ml: List String
