lib/store/event.ml: Format Stdlib String
