lib/store/fabric.ml: Array Cache_names Engine Event Hashtbl Jury_sim List Rng String Time
