lib/store/event.mli: Format
