lib/store/fabric.mli: Event Jury_sim
