(** Cache update events.

    Every topological or forwarding action a controller takes is
    externalised as one of these (the paper's observation that "all
    non-adversarial controller activities update the controller-wide
    caches"). Events carry their origin node — data distribution
    platforms authenticate cluster members, which JURY relies on for
    action attribution of internal triggers. *)

type op = Create | Update | Delete

type t = {
  cache : string;   (** normalised cache name, see {!Cache_names} *)
  op : op;
  key : string;
  value : string;   (** serialised entry; "" for [Delete] *)
  origin : int;     (** node id that issued the write *)
  seq : int;        (** per-origin sequence number (TCP-ordered) *)
  taint : string option;
      (** JURY taint carried through the processing pipeline; [None]
          for untainted (internal-trigger) writes *)
}

val op_to_string : op -> string
val op_of_string : string -> op option
val wire_size : t -> int
(** Approximate bytes on the inter-node channel: serialised fields plus
    framing overhead — feeds the Mbps overhead experiment. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
