open Jury_packet

type t = {
  engine : Jury_sim.Engine.t;
  index : int;
  mac : Addr.Mac.t;
  ip : Addr.Ipv4.t;
  tx : Frame.t -> unit;
  mutable received_count : int;
  mutable rx_hook : Frame.t -> unit;
}

let create engine ~index ~tx =
  { engine;
    index;
    mac = Addr.Mac.of_host_index index;
    ip = Addr.Ipv4.of_host_index index;
    tx;
    received_count = 0;
    rx_hook = (fun _ -> ()) }

let index t = t.index
let mac t = t.mac
let ip t = t.ip

let join t =
  (* Gratuitous ARP: request for our own address announces the
     MAC/IP binding to the network. *)
  t.tx (Frame.arp_request ~sender:(t.mac, t.ip) ~target:t.ip)

let send_arp_request t ~target =
  t.tx (Frame.arp_request ~sender:(t.mac, t.ip) ~target)

let send_tcp t ~dst_mac ~dst_ip ?flags ?payload_len ~src_port ~dst_port () =
  t.tx
    (Frame.tcp_packet ?flags ?payload_len ~src:(t.mac, t.ip)
       ~dst:(dst_mac, dst_ip) ~src_port ~dst_port ())

let send_udp t ~dst_mac ~dst_ip ?payload_len ~src_port ~dst_port () =
  t.tx
    (Frame.udp_packet ?payload_len ~src:(t.mac, t.ip) ~dst:(dst_mac, dst_ip)
       ~src_port ~dst_port ())

let receive t (frame : Frame.t) =
  t.received_count <- t.received_count + 1;
  t.rx_hook frame;
  match frame.payload with
  | Frame.Arp { op = Frame.Request; sha; spa; tpa; _ }
    when Addr.Ipv4.equal tpa t.ip && not (Addr.Mac.equal sha t.mac) ->
      t.tx (Frame.arp_reply ~sender:(t.mac, t.ip) ~target:(sha, spa))
  | Frame.Arp _ | Frame.Ipv4 _ | Frame.Lldp _ | Frame.Raw _ -> ()

let received_count t = t.received_count
let set_rx_hook t f = t.rx_hook <- f
