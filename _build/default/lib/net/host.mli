(** A simulated end host: a MAC/IP pair on a switch port with a small
    network stack (gratuitous ARP on join, ARP replies, frame
    transmission and receive bookkeeping). *)

type t

val create :
  Jury_sim.Engine.t -> index:int ->
  tx:(Jury_packet.Frame.t -> unit) -> t
(** [tx] delivers a frame to the attachment switch port. *)

val index : t -> int
val mac : t -> Jury_packet.Addr.Mac.t
val ip : t -> Jury_packet.Addr.Ipv4.t

val join : t -> unit
(** Announce presence with a gratuitous ARP — the paper's "host join"
    trigger. *)

val send_arp_request : t -> target:Jury_packet.Addr.Ipv4.t -> unit

val send_tcp :
  t -> dst_mac:Jury_packet.Addr.Mac.t -> dst_ip:Jury_packet.Addr.Ipv4.t ->
  ?flags:int -> ?payload_len:int -> src_port:int -> dst_port:int -> unit -> unit

val send_udp :
  t -> dst_mac:Jury_packet.Addr.Mac.t -> dst_ip:Jury_packet.Addr.Ipv4.t ->
  ?payload_len:int -> src_port:int -> dst_port:int -> unit -> unit

val receive : t -> Jury_packet.Frame.t -> unit
(** Frame delivery from the network. Replies to ARP requests for this
    host's IP; counts everything else. *)

val received_count : t -> int
val set_rx_hook : t -> (Jury_packet.Frame.t -> unit) -> unit
(** Extra observer for tests. *)
