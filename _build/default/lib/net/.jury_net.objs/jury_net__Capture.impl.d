lib/net/capture.ml: Format Jury_openflow Jury_packet Jury_sim List Of_types Queue String Switch
