lib/net/network.ml: Array Engine Hashtbl Host Jury_openflow Jury_packet Jury_sim Jury_topo List Map Of_types Switch Time
