lib/net/host.ml: Addr Frame Jury_packet Jury_sim
