lib/net/network.mli: Host Jury_openflow Jury_sim Jury_topo Of_types Switch
