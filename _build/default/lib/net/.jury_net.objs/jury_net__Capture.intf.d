lib/net/capture.mli: Format Jury_openflow Jury_packet Jury_sim Of_types Switch
