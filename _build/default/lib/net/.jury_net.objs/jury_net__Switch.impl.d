lib/net/switch.ml: Engine Flow_table Hashtbl Jury_openflow Jury_packet Jury_sim List Of_action Of_error Of_match Of_message Of_types Time
