lib/net/switch.mli: Flow_table Jury_openflow Jury_packet Jury_sim Of_message Of_types
