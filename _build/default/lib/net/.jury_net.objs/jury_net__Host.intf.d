lib/net/host.mli: Jury_packet Jury_sim
