(** Instantiated data plane: switches and hosts wired per a
    {!Jury_topo.Builder.plan}, with per-link propagation latency.

    Control-plane wiring (switch → controller) is left to the cluster /
    JURY layers: each switch's control transmitter starts as a no-op
    until someone claims it via {!Switch.set_control_tx}. *)

open Jury_openflow

type t

val create :
  Jury_sim.Engine.t -> Jury_topo.Builder.plan ->
  ?link_latency:Jury_sim.Time.t -> ?lenient_tables:bool -> unit -> t

val engine : t -> Jury_sim.Engine.t
val plan : t -> Jury_topo.Builder.plan
val switches : t -> Switch.t list
val hosts : t -> Host.t list
val switch : t -> Of_types.Dpid.t -> Switch.t
(** Raises [Not_found]. *)

val host : t -> int -> Host.t
(** By host index; raises [Not_found]. *)

val host_location : t -> int -> Of_types.Dpid.t * int
(** The (switch, port) a host hangs off. *)

val take_link_down : t -> Jury_topo.Graph.endpoint -> Jury_topo.Graph.endpoint -> unit
(** Tear down an inter-switch link: both endpoints emit PORT_STATUS and
    stop carrying frames — the paper's "link tear down" trigger. *)

val bring_link_up : t -> Jury_topo.Graph.endpoint -> Jury_topo.Graph.endpoint -> unit

val data_plane_bytes : t -> int
(** Cumulative bytes carried on host and switch links. *)
