(** Data-plane packet capture.

    A bounded in-memory recorder tapping one or more switches — the
    record half of an OFRewind-style record-and-replay facility, used
    for debugging workloads and in tests to assert on concrete frame
    movements. Oldest entries are discarded once [capacity] is
    reached. *)

open Jury_openflow

type direction = Rx | Tx

type entry = {
  at : Jury_sim.Time.t;
  dpid : Of_types.Dpid.t;
  port : int;
  direction : direction;
  frame : Jury_packet.Frame.t;
}

type t

val create : ?capacity:int -> Jury_sim.Engine.t -> t
(** An empty recorder ([capacity] defaults to 10_000 entries). *)

val tap_switch : t -> Switch.t -> unit
(** Start recording this switch (replaces any existing tap on it). *)

val untap_switch : Switch.t -> unit

val entries : t -> entry list
(** Oldest first. *)

val count : t -> int

val dropped : t -> int
(** Entries discarded due to the capacity bound. *)

val clear : t -> unit
val matching : t -> (entry -> bool) -> entry list

val between :
  t -> since:Jury_sim.Time.t -> until:Jury_sim.Time.t -> entry list

val pp_entry : Format.formatter -> entry -> unit

val dump : t -> string
(** One line per entry, tcpdump-flavoured. *)
