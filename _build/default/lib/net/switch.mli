(** A simulated OpenFlow switch.

    The switch owns a {!Jury_openflow.Flow_table.t}, a PACKET_IN buffer
    pool and two callbacks injected by the surrounding network: a frame
    forwarder (data-plane egress) and a control transmitter (OpenFlow
    egress towards its controller, possibly through a replicator).

    Received frames are matched against the flow table; a miss raises a
    PACKET_IN with the frame both buffered and carried inline (the
    common OF 1.0 deployment choice). Control messages received from
    the controller are executed with OF 1.0 semantics. *)

open Jury_openflow

type t

val create :
  Jury_sim.Engine.t -> Of_types.Dpid.t -> ?lenient_table:bool ->
  ?buffer_slots:int -> unit -> t

val dpid : t -> Of_types.Dpid.t
val table : t -> Flow_table.t

val register_port : t -> int -> unit
(** Declare a physical port (host- or switch-facing). *)

val ports : t -> int list

val set_forwarder : t -> (port:int -> Jury_packet.Frame.t -> unit) -> unit
(** Data-plane egress: called once per concrete output port. *)

val set_control_tx : t -> (Of_message.t -> unit) -> unit
(** Control-plane egress towards the governing controller. *)

val receive_frame : t -> in_port:int -> Jury_packet.Frame.t -> unit
(** Data-plane ingress. *)

val set_tap :
  t -> ([ `Rx | `Tx ] -> int -> Jury_packet.Frame.t -> unit) option -> unit
(** Observe every frame entering ([`Rx], with its ingress port) or
    leaving ([`Tx], per egress port) the switch — the hook
    {!Capture} uses. [None] removes the tap. *)

val handle_control : t -> Of_message.t -> unit
(** Control-plane ingress (a message from the controller). Replies
    (FEATURES_REPLY, ECHO_REPLY, BARRIER_REPLY, STATS_REPLY,
    FLOW_REMOVED) go out via the control transmitter. *)

val port_down : t -> int -> unit
(** Simulate link loss on a port: emits PORT_STATUS to the controller
    and stops forwarding out of that port. *)

val port_up : t -> int -> unit

val announce : t -> unit
(** Send HELLO + unsolicited FEATURES_REPLY, as on (re)connection. *)

(** {1 Counters} *)

val packet_in_count : t -> int
val flow_mod_count : t -> int
val packet_out_count : t -> int
val dropped_count : t -> int
(** Frames dropped by an explicit drop rule or a down port. *)
