(** Aligned textual tables for the bench harness's paper-style output. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** Rows may be ragged; missing cells render empty. *)

val row_count : t -> int
val pp : Format.formatter -> t -> unit
val print : t -> unit

val cell_f : float -> string
(** Standard float formatting for table cells (3 significant-ish
    decimals). *)

val cell_pct : float -> string
(** Percentage formatting, e.g. [0.113 -> "11.3%"]. *)
