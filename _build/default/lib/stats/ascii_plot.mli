(** Terminal plots for the bench harness: CDF curves and x/y series
    rendered as ASCII, so `bench/main.exe` output can be eyeballed
    against the paper's figures directly. *)

val cdf :
  ?width:int -> ?height:int -> ?x_label:string ->
  (string * Cdf.t) list -> string
(** Overlay several CDFs (distinct glyphs per series, legend below).
    X spans the pooled sample range, Y is 0..1. *)

val xy :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  (string * (float * float) list) list -> string
(** Overlay several line series on shared axes. *)
