let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ~width ~height ~x_min ~x_max ~y_min ~y_max ~x_label ~y_label series
    ~points_of =
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  let grid = Array.make_matrix height width ' ' in
  let x_span = Float.max 1e-9 (x_max -. x_min) in
  let y_span = Float.max 1e-9 (y_max -. y_min) in
  List.iteri
    (fun si (_, s) ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      List.iter
        (fun (x, y) ->
          let cx =
            int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
          in
          let cy =
            int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
          in
          if cx >= 0 && cx < width && cy >= 0 && cy < height then
            grid.(height - 1 - cy).(cx) <- glyph)
        (points_of s))
    series;
  for row = 0 to height - 1 do
    let y_val = y_max -. (float_of_int row /. float_of_int (height - 1) *. y_span) in
    Buffer.add_string buf (Printf.sprintf "  %8.1f |" y_val);
    for col = 0 to width - 1 do
      Buffer.add_char buf grid.(row).(col)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf ("           +" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "            %-12.1f%*s%12.1f  (%s)\n" x_min (width - 24)
       "" x_max x_label);
  (if y_label <> "" then
     Buffer.add_string buf (Printf.sprintf "            y: %s\n" y_label));
  List.iteri
    (fun si (label, _) ->
      Buffer.add_string buf
        (Printf.sprintf "            %c %s\n"
           glyphs.(si mod Array.length glyphs)
           label))
    series;
  Buffer.contents buf

let cdf ?(width = 64) ?(height = 16) ?(x_label = "") series =
  let all_points =
    List.concat_map (fun (_, c) -> Cdf.points c) series
  in
  match all_points with
  | [] -> "  (no samples)\n"
  | first :: _ ->
      let x_min, x_max =
        List.fold_left
          (fun (lo, hi) (p : Cdf.point) -> (Float.min lo p.Cdf.x, Float.max hi p.Cdf.x))
          (first.Cdf.x, first.Cdf.x)
          all_points
      in
      render ~width ~height ~x_min ~x_max ~y_min:0. ~y_max:1. ~x_label
        ~y_label:"CDF" series
        ~points_of:(fun c ->
          List.map (fun (p : Cdf.point) -> (p.Cdf.x, p.Cdf.p)) (Cdf.points c))

let xy ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") series =
  let all_points = List.concat_map snd series in
  match all_points with
  | [] -> "  (no points)\n"
  | (x0, y0) :: _ ->
      let x_min, x_max, y_min, y_max =
        List.fold_left
          (fun (xl, xh, yl, yh) (x, y) ->
            (Float.min xl x, Float.max xh x, Float.min yl y, Float.max yh y))
          (x0, x0, y0, y0) all_points
      in
      let y_min = Float.min 0. y_min in
      render ~width ~height ~x_min ~x_max ~y_min ~y_max ~x_label ~y_label
        series ~points_of:(fun s -> s)
