type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { lo; hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    total = 0 }

let add t v =
  let bins = Array.length t.counts in
  let idx =
    if v < t.lo then 0
    else if v >= t.hi then bins - 1
    else min (bins - 1) (int_of_float ((v -. t.lo) /. t.width))
  in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let add_many t xs = Array.iter (add t) xs
let bin_count t = Array.length t.counts
let counts t = Array.copy t.counts
let total t = t.total

let bin_edges t =
  Array.init (Array.length t.counts) (fun i ->
      let lo = t.lo +. (float_of_int i *. t.width) in
      (lo, lo +. t.width))

let normalized t =
  if t.total = 0 then Array.make (Array.length t.counts) 0.
  else
    Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

let pp fmt t =
  let edges = bin_edges t in
  let maxc = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = edges.(i) in
      let bar = String.make (40 * c / maxc) '#' in
      Format.fprintf fmt "  [%10.2f, %10.2f) %6d %s@." lo hi c bar)
    t.counts
