(** Descriptive statistics over a sample of floats. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val of_array : float array -> t
(** Raises [Invalid_argument] on an empty array. *)

val of_list : float list -> t

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [\[0,1\]], linear interpolation
    between order statistics. The input need not be sorted. *)

val mean : float array -> float
val stddev : float array -> float

val pp : Format.formatter -> t -> unit
(** One-line rendering: [n mean p50 p95 p99 max]. *)
