type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows
let row_count t = List.length t.rows

let pp fmt t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter measure all;
  let render row =
    let cells =
      List.mapi
        (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
        row
    in
    Format.fprintf fmt "  %s@." (String.concat "  " cells)
  in
  render t.header;
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  Format.fprintf fmt "  %s@." rule;
  List.iter render rows

let print t = pp Format.std_formatter t
let cell_f v = Printf.sprintf "%.3f" v
let cell_pct v = Printf.sprintf "%.1f%%" (100. *. v)
