(** Fixed-width histograms, used for throughput-over-time plots. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Values outside [\[lo, hi)] land in the first/last bin. *)

val add : t -> float -> unit
val add_many : t -> float array -> unit
val bin_count : t -> int
val counts : t -> int array
val total : t -> int

val bin_edges : t -> (float * float) array
(** [(lo_i, hi_i)] per bin. *)

val normalized : t -> float array
(** Per-bin fraction of all samples; all zeros if empty. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering, one row per bin with a proportional bar. *)
