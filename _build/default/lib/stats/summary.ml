type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Summary.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if q < 0. || q > 1. then invalid_arg "Summary.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.of_int (int_of_float pos)) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs q =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted q

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  { n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile_sorted sorted 0.5;
    p90 = percentile_sorted sorted 0.9;
    p95 = percentile_sorted sorted 0.95;
    p99 = percentile_sorted sorted 0.99 }

let of_list xs = of_array (Array.of_list xs)

let pp fmt t =
  Format.fprintf fmt
    "n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f"
    t.n t.mean t.p50 t.p95 t.p99 t.max
