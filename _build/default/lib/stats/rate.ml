type t = {
  window : float;
  counts : (int, int ref) Hashtbl.t;
  mutable total : int;
  mutable first : int;
  mutable last : int;
  mutable any : bool;
}

let create ~window_sec =
  if window_sec <= 0. then invalid_arg "Rate.create: window must be positive";
  { window = window_sec;
    counts = Hashtbl.create 64;
    total = 0;
    first = 0;
    last = 0;
    any = false }

let tick t ~at_sec ?(count = 1) () =
  let w = int_of_float (at_sec /. t.window) in
  (match Hashtbl.find_opt t.counts w with
  | Some r -> r := !r + count
  | None -> Hashtbl.add t.counts w (ref count));
  t.total <- t.total + count;
  if not t.any then begin
    t.first <- w;
    t.last <- w;
    t.any <- true
  end
  else begin
    if w < t.first then t.first <- w;
    if w > t.last then t.last <- w
  end

let series t =
  if not t.any then [||]
  else
    Array.init
      (t.last - t.first + 1)
      (fun i ->
        let w = t.first + i in
        let c =
          match Hashtbl.find_opt t.counts w with Some r -> !r | None -> 0
        in
        (float_of_int w *. t.window, float_of_int c /. t.window))

let total t = t.total

let peak_rate t =
  Array.fold_left (fun acc (_, r) -> max acc r) 0. (series t)

let mean_rate t =
  if not t.any then 0.
  else
    let span = float_of_int (t.last - t.first + 1) *. t.window in
    float_of_int t.total /. span
