lib/stats/rate.mli:
