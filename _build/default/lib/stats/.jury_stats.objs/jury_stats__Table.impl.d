lib/stats/table.ml: Array Format List Printf String
