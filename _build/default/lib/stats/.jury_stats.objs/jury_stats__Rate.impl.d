lib/stats/rate.ml: Array Hashtbl
