(** Empirical cumulative distribution functions.

    The paper reports most results as CDFs (Fig. 4a–4d, 4i); this module
    turns raw samples into the plotted curves and into the textual
    series the bench harness prints. *)

type point = { x : float; p : float }

type t = private point list
(** Monotone in both coordinates; [p] ranges over (0, 1]. *)

val of_samples : float array -> t
(** Full empirical CDF: one point per distinct sample value. *)

val downsample : t -> int -> t
(** [downsample cdf k] keeps at most [k] evenly spaced points (always
    including the first and last) for compact printing. *)

val value_at : t -> float -> float
(** [value_at cdf p] is the smallest x with CDF(x) >= [p] — i.e. the
    p-quantile. *)

val fraction_below : t -> float -> float
(** [fraction_below cdf x] is CDF(x). *)

val points : t -> point list

val pp_series : ?unit_label:string -> Format.formatter -> t -> unit
(** Prints "x p" rows, one per point. *)
