lib/faults/injector.mli: Jury_controller Jury_sim
