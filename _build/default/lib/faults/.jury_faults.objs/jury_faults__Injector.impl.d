lib/faults/injector.ml: Jury_controller Jury_openflow Jury_sim Jury_store List
