lib/faults/scenarios.mli: Jury Jury_controller Jury_net Jury_sim
