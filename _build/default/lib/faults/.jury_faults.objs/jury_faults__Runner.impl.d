lib/faults/runner.ml: Engine Format Injector Jury Jury_controller Jury_net Jury_policy Jury_sim Jury_topo List Printf Rng Scenarios Time
