lib/faults/scenarios.ml: Engine Injector Jury Jury_controller Jury_net Jury_openflow Jury_packet Jury_sim Jury_store Jury_topo List Rng Time
