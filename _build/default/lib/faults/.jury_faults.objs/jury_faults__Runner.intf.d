lib/faults/runner.mli: Format Jury Jury_controller Jury_net Scenarios
