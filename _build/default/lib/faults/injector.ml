module Types = Jury_controller.Types
module Cluster = Jury_controller.Cluster
module Controller = Jury_controller.Controller
module Names = Jury_store.Cache_names
module Of_message = Jury_openflow.Of_message

let drop_cache_writes_to ~cache _trigger actions =
  let cache = Names.normalize cache in
  List.filter
    (fun (a : Types.action) ->
      match a with
      | Types.Cache_write { cache = c; _ } -> c <> cache
      | Types.Network_send _ -> true)
    actions

let corrupt_cache_values_to ~cache ~value _trigger actions =
  let cache = Names.normalize cache in
  List.map
    (fun (a : Types.action) ->
      match a with
      | Types.Cache_write cw when cw.cache = cache ->
          Types.Cache_write { cw with value }
      | _ -> a)
    actions

let drop_network_sends _trigger actions =
  List.filter
    (fun (a : Types.action) ->
      match a with Types.Network_send _ -> false | Types.Cache_write _ -> true)
    actions

let blackhole_flow_mods _trigger actions =
  List.map
    (fun (a : Types.action) ->
      match a with
      | Types.Network_send { dpid; payload = Of_message.Flow_mod fm } ->
          Types.Network_send
            { dpid; payload = Of_message.Flow_mod { fm with actions = [] } }
      | _ -> a)
    actions

let probabilistic rng p inner trigger actions =
  if Jury_sim.Rng.bernoulli rng p then inner trigger actions else actions

let compose mutators trigger actions =
  List.fold_left (fun actions m -> m trigger actions) actions mutators

let make_slow cluster ~node ~delay =
  Controller.set_response_delay (Cluster.controller cluster node) delay

let make_lossy cluster ~node ~omit_probability =
  Controller.set_omit_probability (Cluster.controller cluster node)
    omit_probability

let crash cluster ~node =
  let ctrl = Cluster.controller cluster node in
  Controller.set_omit_probability ctrl 1.0;
  Controller.set_mutator ctrl (Some (fun _ _ -> []))

let lock_cache cluster ~node ~cache =
  Jury_store.Fabric.set_cache_locked (Cluster.fabric cluster) ~node ~cache true

let unlock_cache cluster ~node ~cache =
  Jury_store.Fabric.set_cache_locked (Cluster.fabric cluster) ~node ~cache
    false

let heal cluster ~node =
  let ctrl = Cluster.controller cluster node in
  Controller.set_mutator ctrl None;
  Controller.set_response_delay ctrl Jury_sim.Time.zero;
  Controller.set_omit_probability ctrl 0.;
  List.iter
    (fun cache ->
      Jury_store.Fabric.set_cache_locked (Cluster.fabric cluster) ~node ~cache
        false)
    Names.all
