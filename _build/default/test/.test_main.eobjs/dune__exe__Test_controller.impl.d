test/test_controller.ml: Alcotest Cluster Controller Engine Jury_controller Jury_faults Jury_net Jury_openflow Jury_packet Jury_sim Jury_store Jury_topo List Pipeline Profile Time Types Values
