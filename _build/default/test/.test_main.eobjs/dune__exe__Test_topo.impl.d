test/test_topo.ml: Alcotest Jury_openflow Jury_topo List QCheck QCheck_alcotest
