test/test_experiments.ml: Alcotest Array Float Jury Jury_controller Jury_experiments Jury_sim Jury_stats Jury_workload Option
