test/test_faults.ml: Alcotest Jury Jury_controller Jury_faults Jury_openflow Jury_store List Printf
