test/test_packet.ml: Addr Alcotest Frame Jury_packet List Lldp QCheck QCheck_alcotest String Wire_buf
