test/test_sim.ml: Alcotest Array Engine Fun Heap Jury_sim List Metrics QCheck QCheck_alcotest Rng Time
