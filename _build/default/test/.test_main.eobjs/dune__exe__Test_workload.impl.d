test/test_workload.ml: Alcotest Array Engine Jury_net Jury_openflow Jury_sim Jury_stats Jury_topo Jury_workload List Rng Time
