test/test_stats.ml: Alcotest Array Format Gen Jury_stats List QCheck QCheck_alcotest String
