test/test_policy.ml: Alcotest Jury_controller Jury_openflow Jury_packet Jury_policy Jury_store List QCheck QCheck_alcotest Result String
