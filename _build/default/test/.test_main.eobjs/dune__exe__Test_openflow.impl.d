test/test_openflow.ml: Alcotest Flow_table Jury_openflow Jury_packet Jury_sim List Of_action Of_error Of_match Of_message Of_types Of_wire Option QCheck QCheck_alcotest String
