test/test_net.ml: Alcotest Engine Jury_net Jury_openflow Jury_packet Jury_sim Jury_topo List Of_action Of_match Of_message Of_types String
