test/test_store.ml: Alcotest Engine Gen Jury_sim Jury_store List QCheck QCheck_alcotest Time
