(* Tests for the distributed data store fabric. *)

open Jury_sim
module Fabric = Jury_store.Fabric
module Event = Jury_store.Event
module Names = Jury_store.Cache_names

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str_opt = Alcotest.(check (option string))

let mk ?(consistency = Fabric.Eventual) ?(nodes = 3) () =
  let engine = Engine.create () in
  (engine, Fabric.create engine ~consistency ~nodes ())

let write_ok fabric ~node ?taint ~cache op ~key ~value =
  match Fabric.write fabric ~node ?taint ~cache op ~key ~value with
  | Ok ev -> ev
  | Error e -> Alcotest.failf "write failed: %s" e

let test_local_write_read () =
  let _, f = mk () in
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"a" ~value:"1");
  check_str_opt "local read" (Some "1")
    (Fabric.read f ~node:0 ~cache:"HOSTDB" ~key:"a");
  check_str_opt "peer not yet" None
    (Fabric.read f ~node:1 ~cache:"HOSTDB" ~key:"a")

let test_eventual_replication () =
  let engine, f = mk () in
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"a" ~value:"1");
  Engine.run engine;
  check_str_opt "replicated to 1" (Some "1")
    (Fabric.read f ~node:1 ~cache:"HOSTDB" ~key:"a");
  check_str_opt "replicated to 2" (Some "1")
    (Fabric.read f ~node:2 ~cache:"HOSTDB" ~key:"a")

let test_strong_replication () =
  let engine, f = mk ~consistency:Fabric.Strong () in
  ignore (write_ok f ~node:1 ~cache:"FLOWSDB" Event.Create ~key:"k" ~value:"v");
  Engine.run engine;
  check_str_opt "strong replicated" (Some "v")
    (Fabric.read f ~node:0 ~cache:"FLOWSDB" ~key:"k");
  check_bool "strong sync cost positive" true
    Time.(Fabric.sync_cost f > Time.zero)

let test_update_delete () =
  let engine, f = mk () in
  ignore (write_ok f ~node:0 ~cache:"ARPDB" Event.Create ~key:"ip" ~value:"m1");
  ignore (write_ok f ~node:0 ~cache:"ARPDB" Event.Update ~key:"ip" ~value:"m2");
  Engine.run engine;
  check_str_opt "updated everywhere" (Some "m2")
    (Fabric.read f ~node:2 ~cache:"ARPDB" ~key:"ip");
  ignore (write_ok f ~node:0 ~cache:"ARPDB" Event.Delete ~key:"ip" ~value:"");
  Engine.run engine;
  check_str_opt "deleted everywhere" None
    (Fabric.read f ~node:2 ~cache:"ARPDB" ~key:"ip")

let test_entries_sorted () =
  let _, f = mk () in
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"b" ~value:"2");
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"a" ~value:"1");
  Alcotest.(check (list (pair string string)))
    "sorted" [ ("a", "1"); ("b", "2") ]
    (Fabric.entries f ~node:0 ~cache:"HOSTDB");
  check_int "count" 2 (Fabric.entry_count f ~node:0 ~cache:"HOSTDB")

let test_listeners () =
  let engine, f = mk () in
  let local_events = ref [] and remote_events = ref [] in
  Fabric.subscribe f ~node:1 (fun ~local ev ->
      if local then local_events := ev :: !local_events
      else remote_events := ev :: !remote_events);
  ignore (write_ok f ~node:1 ~cache:"HOSTDB" Event.Create ~key:"x" ~value:"1");
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"y" ~value:"2");
  Engine.run engine;
  check_int "one local" 1 (List.length !local_events);
  check_int "one remote" 1 (List.length !remote_events);
  let remote = List.hd !remote_events in
  check_int "remote origin" 0 remote.Event.origin

let test_sequence_numbers () =
  let _, f = mk () in
  let e1 = write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"a" ~value:"" in
  let e2 = write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"b" ~value:"" in
  let e3 = write_ok f ~node:1 ~cache:"HOSTDB" Event.Create ~key:"c" ~value:"" in
  check_bool "per-origin monotonic" true (e2.Event.seq > e1.Event.seq);
  check_int "fresh origin starts over" 1 e3.Event.seq

let test_taint_carried () =
  let engine, f = mk () in
  let seen = ref None in
  Fabric.subscribe f ~node:1 (fun ~local:_ ev -> seen := ev.Event.taint);
  ignore
    (write_ok f ~node:0 ~taint:"ext:0:7" ~cache:"FLOWSDB" Event.Create ~key:"k"
       ~value:"v");
  Engine.run engine;
  check_str_opt "taint replicated" (Some "ext:0:7") !seen

let test_locking () =
  let _, f = mk () in
  Fabric.set_cache_locked f ~node:0 ~cache:"SWITCHDB" true;
  (match Fabric.write f ~node:0 ~cache:"SWITCHDB" Event.Create ~key:"s" ~value:"v" with
  | Error msg -> Alcotest.(check string) "lock error" "failed to obtain lock" msg
  | Ok _ -> Alcotest.fail "locked write should fail");
  (* Other caches and other nodes are unaffected. *)
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"h" ~value:"v");
  ignore (write_ok f ~node:1 ~cache:"SWITCHDB" Event.Create ~key:"s" ~value:"v");
  Fabric.set_cache_locked f ~node:0 ~cache:"SWITCHDB" false;
  ignore (write_ok f ~node:0 ~cache:"SWITCHDB" Event.Create ~key:"s2" ~value:"v")

let test_partition () =
  let engine, f = mk () in
  Fabric.set_partitioned f ~node:2 true;
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"a" ~value:"1");
  Engine.run engine;
  check_str_opt "node 1 got it" (Some "1")
    (Fabric.read f ~node:1 ~cache:"HOSTDB" ~key:"a");
  check_str_opt "partitioned node 2 did not" None
    (Fabric.read f ~node:2 ~cache:"HOSTDB" ~key:"a");
  (* Writes from a partitioned node stay local. *)
  ignore (write_ok f ~node:2 ~cache:"HOSTDB" Event.Create ~key:"z" ~value:"9");
  Engine.run engine;
  check_str_opt "stays local" None
    (Fabric.read f ~node:0 ~cache:"HOSTDB" ~key:"z")

let test_divergent_write () =
  let engine, f = mk () in
  ignore
    (Fabric.inject_divergent_write f ~node:1 ~cache:"FLOWSDB" Event.Create
       ~key:"ghost" ~value:"rule");
  Engine.run engine;
  check_str_opt "present at faulty node" (Some "rule")
    (Fabric.read f ~node:1 ~cache:"FLOWSDB" ~key:"ghost");
  check_str_opt "absent elsewhere" None
    (Fabric.read f ~node:0 ~cache:"FLOWSDB" ~key:"ghost")

let test_accounting () =
  let engine, f = mk () in
  Fabric.reset_accounting f;
  ignore (write_ok f ~node:0 ~cache:"HOSTDB" Event.Create ~key:"abc" ~value:"def");
  Engine.run engine;
  check_bool "bytes counted" true (Fabric.bytes_replicated f > 0);
  (* 1 local apply + 2 peer applies *)
  check_int "events applied" 3 (Fabric.events_applied f)

let test_cache_name_normalization () =
  let _, f = mk () in
  ignore (write_ok f ~node:0 ~cache:"FlowsDB" Event.Create ~key:"k" ~value:"v");
  check_str_opt "normalized read" (Some "v")
    (Fabric.read f ~node:0 ~cache:"FLOWSDB" ~key:"k");
  check_bool "known cache" true (Names.is_known "flowsdb");
  check_bool "unknown cache" false (Names.is_known "NOPE")

let test_fifo_per_channel () =
  (* Many rapid writes to one key from one origin must arrive in order
     at every peer (state sync rides TCP, §IV-C): the last write wins
     everywhere. *)
  let engine, f = mk () in
  for i = 1 to 50 do
    ignore
      (write_ok f ~node:0 ~cache:"ARPDB" Event.Update ~key:"k"
         ~value:(string_of_int i))
  done;
  Engine.run engine;
  check_str_opt "node1 sees last write" (Some "50")
    (Fabric.read f ~node:1 ~cache:"ARPDB" ~key:"k");
  check_str_opt "node2 sees last write" (Some "50")
    (Fabric.read f ~node:2 ~cache:"ARPDB" ~key:"k")

let prop_eventual_convergence =
  QCheck.Test.make ~name:"eventual store converges" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 30)
              (pair (int_bound 2) (pair small_printable_string small_printable_string)))
    (fun writes ->
      let engine, f = mk () in
      List.iter
        (fun (node, (key, value)) ->
          match
            Fabric.write f ~node ~cache:"HOSTDB" Event.Update ~key:("k" ^ key)
              ~value
          with
          | Ok _ -> ()
          | Error _ -> ())
        writes;
      Engine.run engine;
      (* All nodes end with identical HOSTDB contents... up to
         last-writer ordering; with distinct keys per writer this is
         exact, so restrict the check to key sets. *)
      let keys n =
        List.map fst (Fabric.entries f ~node:n ~cache:"HOSTDB")
      in
      keys 0 = keys 1 && keys 1 = keys 2)

let suite =
  [ ("local write/read", `Quick, test_local_write_read);
    ("eventual replication", `Quick, test_eventual_replication);
    ("strong replication", `Quick, test_strong_replication);
    ("update and delete", `Quick, test_update_delete);
    ("entries sorted", `Quick, test_entries_sorted);
    ("listeners", `Quick, test_listeners);
    ("sequence numbers", `Quick, test_sequence_numbers);
    ("taint carried", `Quick, test_taint_carried);
    ("cache locking", `Quick, test_locking);
    ("partition", `Quick, test_partition);
    ("divergent write", `Quick, test_divergent_write);
    ("byte accounting", `Quick, test_accounting);
    ("cache name normalization", `Quick, test_cache_name_normalization);
    ("fifo per channel", `Quick, test_fifo_per_channel);
    QCheck_alcotest.to_alcotest prop_eventual_convergence ]
