(* Tests for the data plane: switches, hosts, links. *)

open Jury_sim
open Jury_openflow
module Network = Jury_net.Network
module Switch = Jury_net.Switch
module Host = Jury_net.Host
module Builder = Jury_topo.Builder
module Frame = Jury_packet.Frame
module Mac = Jury_packet.Addr.Mac

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_switch () =
  let engine = Engine.create () in
  let sw = Switch.create engine (Of_types.Dpid.of_int 1) () in
  Switch.register_port sw 1;
  Switch.register_port sw 2;
  Switch.register_port sw 3;
  (engine, sw)

let tcp src dst =
  Frame.tcp_packet
    ~src:(Mac.of_host_index src, Jury_packet.Addr.Ipv4.of_host_index src)
    ~dst:(Mac.of_host_index dst, Jury_packet.Addr.Ipv4.of_host_index dst)
    ~src_port:1000 ~dst_port:80 ()

let test_miss_raises_packet_in () =
  let _, sw = mk_switch () in
  let inbox = ref [] in
  Switch.set_control_tx sw (fun msg -> inbox := msg :: !inbox);
  Switch.receive_frame sw ~in_port:1 (tcp 0 1);
  (match !inbox with
  | [ { Of_message.payload = Of_message.Packet_in pi; _ } ] ->
      check_int "in_port" 1 pi.Of_message.in_port;
      check_bool "buffered" true (pi.Of_message.buffer_id <> None);
      check_bool "frame carried" true
        (Frame.equal pi.Of_message.frame (tcp 0 1))
  | _ -> Alcotest.fail "expected one PACKET_IN");
  check_int "counter" 1 (Switch.packet_in_count sw)

let test_flow_mod_then_forward () =
  let _, sw = mk_switch () in
  let out = ref [] in
  Switch.set_forwarder sw (fun ~port frame -> out := (port, frame) :: !out);
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 1) in
  Switch.handle_control sw
    (Of_message.make ~xid:1
       (Of_message.Flow_mod (Of_message.flow_mod m [ Of_action.Output 2 ])));
  check_int "flow mod counted" 1 (Switch.flow_mod_count sw);
  Switch.receive_frame sw ~in_port:1 (tcp 0 1);
  (match !out with
  | [ (2, _) ] -> ()
  | _ -> Alcotest.fail "expected forward out port 2");
  check_int "no packet_in" 0 (Switch.packet_in_count sw)

let test_buffered_flow_mod_releases_packet () =
  let _, sw = mk_switch () in
  let out = ref [] in
  let inbox = ref [] in
  Switch.set_forwarder sw (fun ~port frame -> out := (port, frame) :: !out);
  Switch.set_control_tx sw (fun msg -> inbox := msg :: !inbox);
  Switch.receive_frame sw ~in_port:1 (tcp 0 1);
  let buffer_id =
    match !inbox with
    | [ { Of_message.payload = Of_message.Packet_in pi; _ } ] ->
        pi.Of_message.buffer_id
    | _ -> Alcotest.fail "expected packet_in"
  in
  let m = Of_match.exact_of_frame ~in_port:1 (tcp 0 1) in
  Switch.handle_control sw
    (Of_message.make ~xid:2
       (Of_message.Flow_mod
          (Of_message.flow_mod ~buffer_id m [ Of_action.Output 3 ])));
  (match !out with
  | [ (3, f) ] -> check_bool "buffered frame released" true (Frame.equal f (tcp 0 1))
  | _ -> Alcotest.fail "expected buffered packet out port 3")

let test_flood_excludes_ingress () =
  let _, sw = mk_switch () in
  let out = ref [] in
  Switch.set_forwarder sw (fun ~port _ -> out := port :: !out);
  Switch.handle_control sw
    (Of_message.make ~xid:1
       (Of_message.Packet_out
          { po_buffer_id = None;
            po_in_port = 2;
            po_actions = [ Of_action.Output Of_types.Port.flood ];
            po_frame = Some (tcp 0 1) }));
  Alcotest.(check (list int)) "all but ingress" [ 1; 3 ] (List.sort compare !out)

let test_drop_rule () =
  let _, sw = mk_switch () in
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 1) in
  Switch.handle_control sw
    (Of_message.make ~xid:1 (Of_message.Flow_mod (Of_message.flow_mod m [])));
  Switch.receive_frame sw ~in_port:1 (tcp 0 1);
  check_int "dropped" 1 (Switch.dropped_count sw);
  check_int "no packet_in" 0 (Switch.packet_in_count sw)

let test_echo_and_features () =
  let _, sw = mk_switch () in
  let inbox = ref [] in
  Switch.set_control_tx sw (fun msg -> inbox := msg :: !inbox);
  Switch.handle_control sw (Of_message.make ~xid:5 (Of_message.Echo_request "x"));
  Switch.handle_control sw (Of_message.make ~xid:6 Of_message.Features_request);
  let payloads = List.rev_map (fun (m : Of_message.t) -> m.payload) !inbox in
  (match payloads with
  | [ Of_message.Echo_reply "x"; Of_message.Features_reply fr ] ->
      check_int "ports" 3 (List.length fr.Of_message.ports)
  | _ -> Alcotest.fail "expected echo reply + features reply")

let test_port_down_blocks () =
  let _, sw = mk_switch () in
  let inbox = ref [] in
  let out = ref [] in
  Switch.set_control_tx sw (fun msg -> inbox := msg :: !inbox);
  Switch.set_forwarder sw (fun ~port _ -> out := port :: !out);
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 1) in
  Switch.handle_control sw
    (Of_message.make ~xid:1 (Of_message.Flow_mod (Of_message.flow_mod m [ Of_action.Output 2 ])));
  Switch.port_down sw 2;
  check_bool "port_status raised" true
    (List.exists
       (fun (msg : Of_message.t) ->
         match msg.payload with
         | Of_message.Port_status ps -> not ps.Of_message.ps_link_up
         | _ -> false)
       !inbox);
  Switch.receive_frame sw ~in_port:1 (tcp 0 1);
  check_int "nothing forwarded" 0 (List.length !out);
  Switch.port_up sw 2;
  Switch.receive_frame sw ~in_port:1 (tcp 0 1);
  check_int "forwarded after up" 1 (List.length !out)

let test_stats_request () =
  let _, sw = mk_switch () in
  let inbox = ref [] in
  Switch.set_control_tx sw (fun msg -> inbox := msg :: !inbox);
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 1) in
  Switch.handle_control sw
    (Of_message.make ~xid:1 (Of_message.Flow_mod (Of_message.flow_mod m [ Of_action.Output 2 ])));
  Switch.handle_control sw
    (Of_message.make ~xid:2
       (Of_message.Stats_request (Of_message.Flow_stats_request Of_match.wildcard_all)));
  (match !inbox with
  | { Of_message.payload = Of_message.Stats_reply (Of_message.Flow_stats_reply stats); _ } :: _ ->
      check_int "one flow" 1 (List.length stats)
  | _ -> Alcotest.fail "expected stats reply")

(* --- Network-level --- *)

let test_host_arp_reply () =
  let engine = Engine.create () in
  let plan = Builder.single ~hosts:2 in
  let network = Network.create engine plan () in
  let h0 = Network.host network 0 and h1 = Network.host network 1 in
  (* With no controller, PACKET_INs go nowhere; wire a tiny hub: flood
     everything. *)
  List.iter
    (fun sw ->
      Switch.set_control_tx sw (fun msg ->
          match msg.Of_message.payload with
          | Of_message.Packet_in pi ->
              Switch.handle_control sw
                (Of_message.make ~xid:1
                   (Of_message.Packet_out
                      { po_buffer_id = pi.Of_message.buffer_id;
                        po_in_port = pi.Of_message.in_port;
                        po_actions = [ Of_action.Output Of_types.Port.flood ];
                        po_frame = None }))
          | _ -> ()))
    (Network.switches network);
  Host.send_arp_request h0 ~target:(Host.ip h1);
  Engine.run engine;
  (* h1 received the request and replied; h0 received the reply. *)
  check_bool "h1 got request" true (Host.received_count h1 >= 1);
  check_bool "h0 got reply" true (Host.received_count h0 >= 1)

let test_link_teardown () =
  let engine = Engine.create () in
  let plan = Builder.linear ~switches:2 ~hosts_per_switch:1 in
  let network = Network.create engine plan () in
  let graph = plan.Builder.graph in
  let edge = List.hd (Jury_topo.Graph.edges graph) in
  (* hub behaviour again *)
  List.iter
    (fun sw ->
      Switch.set_control_tx sw (fun msg ->
          match msg.Of_message.payload with
          | Of_message.Packet_in pi ->
              Switch.handle_control sw
                (Of_message.make ~xid:1
                   (Of_message.Packet_out
                      { po_buffer_id = pi.Of_message.buffer_id;
                        po_in_port = pi.Of_message.in_port;
                        po_actions = [ Of_action.Output Of_types.Port.flood ];
                        po_frame = None }))
          | _ -> ()))
    (Network.switches network);
  let h0 = Network.host network 0 and h1 = Network.host network 1 in
  Host.send_tcp h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~src_port:1
    ~dst_port:2 ();
  Engine.run engine;
  let before = Host.received_count h1 in
  check_bool "reachable before" true (before >= 1);
  Network.take_link_down network edge.Jury_topo.Graph.a edge.Jury_topo.Graph.b;
  Host.send_tcp h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~src_port:3
    ~dst_port:4 ();
  Engine.run engine;
  check_int "unreachable after teardown" before (Host.received_count h1);
  Network.bring_link_up network edge.Jury_topo.Graph.a edge.Jury_topo.Graph.b;
  Host.send_tcp h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~src_port:5
    ~dst_port:6 ();
  Engine.run engine;
  check_bool "reachable again" true (Host.received_count h1 > before)

let test_data_plane_bytes () =
  let engine = Engine.create () in
  let plan = Builder.single ~hosts:2 in
  let network = Network.create engine plan () in
  let h0 = Network.host network 0 and h1 = Network.host network 1 in
  Host.send_tcp h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1)
    ~payload_len:100 ~src_port:1 ~dst_port:2 ();
  Engine.run engine;
  (* Host->switch hop is accounted at the switch egress only if
     forwarded; at least the injection reached the switch. *)
  check_bool "packet_in happened" true
    (List.exists (fun sw -> Switch.packet_in_count sw = 1) (Network.switches network))

let test_capture () =
  let engine = Engine.create () in
  let plan = Builder.single ~hosts:2 in
  let network = Network.create engine plan () in
  let cap = Jury_net.Capture.create ~capacity:100 engine in
  List.iter (Jury_net.Capture.tap_switch cap) (Network.switches network);
  let h0 = Network.host network 0 and h1 = Network.host network 1 in
  Host.send_tcp h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1) ~src_port:1
    ~dst_port:2 ();
  Engine.run engine;
  check_bool "frames recorded" true (Jury_net.Capture.count cap >= 1);
  let rx =
    Jury_net.Capture.matching cap (fun e ->
        e.Jury_net.Capture.direction = Jury_net.Capture.Rx)
  in
  check_bool "rx entry present" true (List.length rx >= 1);
  check_bool "dump renders" true
    (String.length (Jury_net.Capture.dump cap) > 0);
  (* capacity bound *)
  let tiny = Jury_net.Capture.create ~capacity:2 engine in
  List.iter (Jury_net.Capture.tap_switch tiny) (Network.switches network);
  for i = 1 to 5 do
    Host.send_tcp h0 ~dst_mac:(Host.mac h1) ~dst_ip:(Host.ip h1)
      ~src_port:(100 + i) ~dst_port:2 ()
  done;
  Engine.run engine;
  check_int "bounded" 2 (Jury_net.Capture.count tiny);
  check_bool "dropped counted" true (Jury_net.Capture.dropped tiny > 0);
  List.iter Jury_net.Capture.untap_switch (Network.switches network);
  Jury_net.Capture.clear tiny;
  check_int "cleared" 0 (Jury_net.Capture.count tiny)

let suite =
  [ ("miss raises packet_in", `Quick, test_miss_raises_packet_in);
    ("flow_mod then forward", `Quick, test_flow_mod_then_forward);
    ("buffered packet release", `Quick, test_buffered_flow_mod_releases_packet);
    ("flood excludes ingress", `Quick, test_flood_excludes_ingress);
    ("drop rule", `Quick, test_drop_rule);
    ("echo and features", `Quick, test_echo_and_features);
    ("port down blocks egress", `Quick, test_port_down_blocks);
    ("flow stats", `Quick, test_stats_request);
    ("host arp reply", `Quick, test_host_arp_reply);
    ("link teardown", `Quick, test_link_teardown);
    ("frame delivery", `Quick, test_data_plane_bytes);
    ("packet capture", `Quick, test_capture) ]
