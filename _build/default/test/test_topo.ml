(* Tests for the topology graph, builders and routing. *)

module Graph = Jury_topo.Graph
module Builder = Jury_topo.Builder
module Dpid = Jury_openflow.Of_types.Dpid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let d = Dpid.of_int
let ep dpid port = { Graph.dpid = d dpid; port }

let test_add_remove () =
  let g = Graph.create () in
  Graph.add_link g (ep 1 1) (ep 2 1);
  check_int "switches" 2 (Graph.switch_count g);
  check_int "edges" 1 (Graph.edge_count g);
  check_bool "has link" true (Graph.has_link g (ep 1 1) (ep 2 1));
  check_bool "symmetric" true (Graph.has_link g (ep 2 1) (ep 1 1));
  (* idempotent *)
  Graph.add_link g (ep 1 1) (ep 2 1);
  check_int "still one edge" 1 (Graph.edge_count g);
  Graph.remove_link g (ep 1 1) (ep 2 1);
  check_int "removed" 0 (Graph.edge_count g);
  check_int "switches stay" 2 (Graph.switch_count g)

let test_self_loop_rejected () =
  let g = Graph.create () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_link: self-loop")
    (fun () -> Graph.add_link g (ep 1 1) (ep 1 2))

let test_multilink () =
  let g = Graph.create () in
  Graph.add_link g (ep 1 1) (ep 2 1);
  Graph.add_link g (ep 1 2) (ep 2 2);
  check_int "parallel links" 2 (Graph.edge_count g);
  check_int "neighbors listed" 2 (List.length (Graph.neighbors g (d 1)))

let test_shortest_path_linear () =
  let plan = Builder.linear ~switches:5 ~hosts_per_switch:1 in
  match Graph.shortest_path plan.Builder.graph (d 1) (d 5) with
  | None -> Alcotest.fail "disconnected"
  | Some hops ->
      check_int "hop count" 5 (List.length hops);
      let dpids = List.map (fun (dp, _, _) -> dp) hops in
      check_bool "starts at src" true (Dpid.equal (List.hd dpids) (d 1));
      check_bool "ends at dst" true
        (Dpid.equal (List.nth dpids 4) (d 5));
      (* port continuity: out port of hop i connects to in port of i+1 *)
      let rec continuity = function
        | (d1, _, out1) :: ((d2, in2, _) :: _ as rest) ->
            check_bool "ports wired" true
              (Graph.has_link plan.Builder.graph
                 { Graph.dpid = d1; port = out1 }
                 { Graph.dpid = d2; port = in2 });
            continuity rest
        | _ -> ()
      in
      continuity hops

let test_shortest_path_same_switch () =
  let plan = Builder.linear ~switches:3 ~hosts_per_switch:1 in
  match Graph.shortest_path plan.Builder.graph (d 2) (d 2) with
  | Some [ (dp, 0, 0) ] -> check_bool "self" true (Dpid.equal dp (d 2))
  | _ -> Alcotest.fail "expected singleton path"

let test_shortest_path_disconnected () =
  let g = Graph.create () in
  Graph.add_switch g (d 1);
  Graph.add_switch g (d 2);
  check_bool "no path" true (Graph.shortest_path g (d 1) (d 2) = None);
  check_bool "not connected" false (Graph.connected g)

let test_path_shrinks_after_shortcut () =
  let plan = Builder.linear ~switches:6 ~hosts_per_switch:1 in
  let g = plan.Builder.graph in
  let before =
    match Graph.shortest_path g (d 1) (d 6) with
    | Some hops -> List.length hops
    | None -> -1
  in
  Graph.add_link g (ep 1 90) (ep 6 90);
  let after =
    match Graph.shortest_path g (d 1) (d 6) with
    | Some hops -> List.length hops
    | None -> -1
  in
  check_int "before" 6 before;
  check_int "after shortcut" 2 after

let test_spanning_tree () =
  let plan = Builder.three_tier ~hosts_per_edge:1 () in
  let g = plan.Builder.graph in
  check_bool "three-tier has cycles" true
    (Graph.edge_count g >= Graph.switch_count g);
  let tree = Graph.spanning_tree_ports g (d 100) in
  let tree_edge_count =
    List.fold_left (fun acc (_, ports) -> acc + List.length ports) 0 tree / 2
  in
  check_int "tree edges = nodes - 1" (Graph.switch_count g - 1) tree_edge_count

let test_builder_linear () =
  let plan = Builder.linear ~switches:24 ~hosts_per_switch:1 in
  check_int "switches" 24 (Graph.switch_count plan.Builder.graph);
  check_int "links" 23 (Graph.edge_count plan.Builder.graph);
  check_int "hosts" 24 (Builder.host_count plan);
  check_bool "connected" true (Graph.connected plan.Builder.graph)

let test_builder_star () =
  let plan = Builder.star ~leaves:5 ~hosts_per_leaf:2 in
  check_int "switches" 6 (Graph.switch_count plan.Builder.graph);
  check_int "links" 5 (Graph.edge_count plan.Builder.graph);
  check_int "hosts" 10 (Builder.host_count plan)

let test_builder_ring () =
  let plan = Builder.ring ~switches:5 ~hosts_per_switch:1 in
  check_int "links = switches" 5 (Graph.edge_count plan.Builder.graph);
  check_bool "connected" true (Graph.connected plan.Builder.graph)

let test_builder_three_tier () =
  let plan = Builder.three_tier ~hosts_per_edge:2 () in
  check_int "switches 8+4+2" 14 (Graph.switch_count plan.Builder.graph);
  check_int "hosts" 16 (Builder.host_count plan);
  check_bool "connected" true (Graph.connected plan.Builder.graph);
  (* each edge switch dual-homed: 2 uplinks; each aggregate reaches both cores *)
  let edge_uplinks = Graph.neighbors plan.Builder.graph (d 100) in
  check_int "edge dual-homed" 2 (List.length edge_uplinks)

let test_builder_fat_tree () =
  let plan = Builder.fat_tree ~k:4 in
  (* k=4: 4 core + 4 pods x (2 agg + 2 edge) = 20 switches, 16 hosts *)
  check_int "switches" 20 (Graph.switch_count plan.Builder.graph);
  check_int "hosts" 16 (Builder.host_count plan);
  check_bool "connected" true (Graph.connected plan.Builder.graph)

let test_host_slots () =
  let plan = Builder.linear ~switches:3 ~hosts_per_switch:2 in
  let slot = Builder.find_host_slot plan 3 in
  check_bool "host 3 on switch 2" true (Dpid.equal slot.Builder.dpid (d 2));
  Alcotest.check_raises "unknown host" Not_found (fun () ->
      ignore (Builder.find_host_slot plan 99))

let test_next_hop_choices () =
  let plan = Builder.linear ~switches:5 ~hosts_per_switch:1 in
  (match Graph.next_hop_choices plan.Builder.graph (d 1) (d 5) with
  | [ (_, next) ] -> check_bool "single choice on a line" true (Dpid.equal next (d 2))
  | l -> Alcotest.failf "expected one choice, got %d" (List.length l));
  check_int "no choice to self" 0
    (List.length (Graph.next_hop_choices plan.Builder.graph (d 3) (d 3)));
  (* three-tier: an edge switch reaches a far edge through either of its
     two aggregates. *)
  let tt = Builder.three_tier ~hosts_per_edge:1 () in
  let choices = Graph.next_hop_choices tt.Builder.graph (d 100) (d 104) in
  check_bool "multipath in three-tier" true (List.length choices >= 2)

module Weighted = Jury_topo.Weighted

let test_weighted_uniform_matches_bfs () =
  let plan = Builder.linear ~switches:6 ~hosts_per_switch:1 in
  match Weighted.shortest_path plan.Builder.graph Weighted.uniform (d 1) (d 6) with
  | Some (hops, total) ->
      check_int "same hop count as BFS" 6 (List.length hops);
      check_bool "total = hops - 1" true (abs_float (total -. 5.) < 1e-9)
  | None -> Alcotest.fail "connected"

let test_weighted_avoids_heavy_link () =
  (* A ring lets Dijkstra route the long way around when the short side
     is expensive. *)
  let plan = Builder.ring ~switches:4 ~hosts_per_switch:1 in
  let g = plan.Builder.graph in
  (* Make every link that touches switch 2 very heavy. *)
  let heavy =
    Graph.edges g
    |> List.filter_map (fun (e : Graph.edge) ->
           if Dpid.equal e.Graph.a.Graph.dpid (d 2)
              || Dpid.equal e.Graph.b.Graph.dpid (d 2)
           then Some (e.Graph.a, e.Graph.b, 100.)
           else None)
  in
  let w = Weighted.of_assignments heavy in
  match Weighted.shortest_path g w (d 1) (d 3) with
  | Some (hops, total) ->
      let via = List.map (fun (dp, _, _) -> dp) hops in
      check_bool "avoids switch 2" false (List.mem (d 2) via);
      check_bool "cheap total" true (total < 10.)
  | None -> Alcotest.fail "connected"

let test_weighted_path_weight () =
  let plan = Builder.linear ~switches:3 ~hosts_per_switch:1 in
  let g = plan.Builder.graph in
  match Weighted.shortest_path g Weighted.uniform (d 1) (d 3) with
  | Some (hops, total) ->
      check_bool "path_weight agrees" true
        (abs_float (Weighted.path_weight g Weighted.uniform hops -. total)
        < 1e-9)
  | None -> Alcotest.fail "connected"

let test_weighted_rejects_bad_weight () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Weighted.of_assignments: weight <= 0") (fun () ->
      ignore (Weighted.of_assignments [ (ep 1 1, ep 2 1, 0.) ]))

let prop_linear_paths =
  QCheck.Test.make ~name:"linear path length = |a-b|+1" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 1 20))
    (fun (a, b) ->
      let plan = Builder.linear ~switches:20 ~hosts_per_switch:1 in
      match Graph.shortest_path plan.Builder.graph (d a) (d b) with
      | Some hops -> List.length hops = abs (a - b) + 1
      | None -> false)

let suite =
  [ ("add/remove links", `Quick, test_add_remove);
    ("self-loop rejected", `Quick, test_self_loop_rejected);
    ("parallel links", `Quick, test_multilink);
    ("shortest path linear", `Quick, test_shortest_path_linear);
    ("shortest path to self", `Quick, test_shortest_path_same_switch);
    ("shortest path disconnected", `Quick, test_shortest_path_disconnected);
    ("path uses shortcut", `Quick, test_path_shrinks_after_shortcut);
    ("spanning tree", `Quick, test_spanning_tree);
    ("builder linear", `Quick, test_builder_linear);
    ("builder star", `Quick, test_builder_star);
    ("builder ring", `Quick, test_builder_ring);
    ("builder three-tier", `Quick, test_builder_three_tier);
    ("builder fat-tree", `Quick, test_builder_fat_tree);
    ("host slots", `Quick, test_host_slots);
    ("next hop choices", `Quick, test_next_hop_choices);
    ("weighted uniform = bfs", `Quick, test_weighted_uniform_matches_bfs);
    ("weighted avoids heavy link", `Quick, test_weighted_avoids_heavy_link);
    ("weighted path weight", `Quick, test_weighted_path_weight);
    ("weighted rejects bad weight", `Quick, test_weighted_rejects_bad_weight);
    QCheck_alcotest.to_alcotest prop_linear_paths ]
