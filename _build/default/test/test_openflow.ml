(* Tests for the OpenFlow substrate: matches, actions, wire codec and
   flow-table semantics. *)

open Jury_openflow
module Frame = Jury_packet.Frame
module Mac = Jury_packet.Addr.Mac
module Ipv4 = Jury_packet.Addr.Ipv4
module Time = Jury_sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let host i = (Mac.of_host_index i, Ipv4.of_host_index i)

let tcp_frame ?(src = 0) ?(dst = 1) ?(sport = 1234) ?(dport = 80) () =
  Frame.tcp_packet ~src:(host src) ~dst:(host dst) ~src_port:sport
    ~dst_port:dport ()

(* --- Matches --- *)

let test_wildcard_matches_everything () =
  check_bool "tcp" true
    (Of_match.matches Of_match.wildcard_all ~in_port:1 (tcp_frame ()));
  let arp =
    Frame.arp_request ~sender:(host 0) ~target:(Ipv4.of_host_index 1)
  in
  check_bool "arp" true (Of_match.matches Of_match.wildcard_all ~in_port:9 arp)

let test_exact_match () =
  let f = tcp_frame () in
  let m = Of_match.exact_of_frame ~in_port:3 f in
  check_bool "matches itself" true (Of_match.matches m ~in_port:3 f);
  check_bool "wrong port" false (Of_match.matches m ~in_port:4 f);
  check_bool "wrong sport" false
    (Of_match.matches m ~in_port:3 (tcp_frame ~sport:9999 ()));
  check_bool "hierarchy ok" true (Of_match.hierarchy_ok m)

let test_l2_pair () =
  let m = Of_match.l2_pair ~src:(fst (host 0)) ~dst:(fst (host 1)) in
  check_bool "matches any port" true
    (Of_match.matches m ~in_port:1 (tcp_frame ()))
  ;
  check_bool "matches other l4" true
    (Of_match.matches m ~in_port:7 (tcp_frame ~sport:1 ~dport:2 ()));
  check_bool "wrong dst" false
    (Of_match.matches m ~in_port:1 (tcp_frame ~dst:5 ()))

let test_prefix_match () =
  let m =
    { Of_match.wildcard_all with
      Of_match.dl_type = Some 0x0800;
      nw_dst = Some (Ipv4.of_string "10.0.0.0", 8) }
  in
  check_bool "in prefix" true (Of_match.matches m ~in_port:1 (tcp_frame ()));
  check_bool "arp spa reuse" true (Of_match.hierarchy_ok m)

let test_hierarchy () =
  let bad = { Of_match.wildcard_all with Of_match.tp_dst = Some 80 } in
  check_bool "tp without nw_proto" false (Of_match.hierarchy_ok bad);
  let stripped = Of_match.strip_invalid_fields bad in
  check_bool "stripped becomes valid" true (Of_match.hierarchy_ok stripped);
  check_bool "tp gone" true (stripped.Of_match.tp_dst = None);
  let nw_only =
    { Of_match.wildcard_all with
      Of_match.nw_proto = Some 6 }
  in
  check_bool "nw without dl_type" false (Of_match.hierarchy_ok nw_only);
  let ok =
    { Of_match.wildcard_all with
      Of_match.dl_type = Some 0x0800;
      nw_proto = Some 6;
      tp_dst = Some 80 }
  in
  check_bool "full chain ok" true (Of_match.hierarchy_ok ok);
  check_bool "strip is identity when valid" true
    (Of_match.equal ok (Of_match.strip_invalid_fields ok))

let test_more_specific () =
  let f = tcp_frame () in
  let exact = Of_match.exact_of_frame ~in_port:1 f in
  let pair = Of_match.l2_pair ~src:f.Frame.dl_src ~dst:f.Frame.dl_dst in
  check_bool "exact < pair" true (Of_match.more_specific exact pair);
  check_bool "pair not < exact" false (Of_match.more_specific pair exact);
  check_bool "anything < wildcard" true
    (Of_match.more_specific pair Of_match.wildcard_all);
  check_bool "reflexive" true (Of_match.more_specific exact exact)

(* --- Actions --- *)

let test_actions_apply () =
  let f = tcp_frame () in
  let f', ports =
    Of_action.apply
      [ Of_action.Set_dl_dst (fst (host 9));
        Of_action.Set_nw_dst (Ipv4.of_host_index 9);
        Of_action.Output 3;
        Of_action.Output 5 ]
      f
  in
  Alcotest.(check (list int)) "output ports" [ 3; 5 ] ports;
  check_bool "dl rewritten" true (Mac.equal f'.Frame.dl_dst (fst (host 9)));
  (match f'.Frame.payload with
  | Frame.Ipv4 ip ->
      check_bool "nw rewritten" true (Ipv4.equal ip.Frame.dst (Ipv4.of_host_index 9))
  | _ -> Alcotest.fail "payload");
  check_bool "drop detection" true (Of_action.is_drop []);
  check_bool "not drop" false (Of_action.is_drop [ Of_action.Output 1 ])

let test_action_vlan () =
  let f = tcp_frame () in
  let f', _ = Of_action.apply [ Of_action.Set_vlan 7 ] f in
  Alcotest.(check (option int)) "vlan set" (Some 7) f'.Frame.vlan;
  let f'', _ = Of_action.apply [ Of_action.Strip_vlan ] f' in
  Alcotest.(check (option int)) "vlan stripped" None f''.Frame.vlan

(* --- Wire codec --- *)

let roundtrip payload =
  let msg = Of_message.make ~xid:99 payload in
  let msg' = Of_wire.decode (Of_wire.encode msg) in
  Of_message.equal msg msg'

let test_wire_simple_messages () =
  check_bool "hello" true (roundtrip Of_message.Hello);
  check_bool "echo req" true (roundtrip (Of_message.Echo_request "ping"));
  check_bool "echo rep" true (roundtrip (Of_message.Echo_reply "pong"));
  check_bool "features req" true (roundtrip Of_message.Features_request);
  check_bool "barrier req" true (roundtrip Of_message.Barrier_request);
  check_bool "barrier rep" true (roundtrip Of_message.Barrier_reply);
  check_bool "error" true (roundtrip (Of_message.Error (3, 1)))

let test_wire_features_reply () =
  check_bool "features reply" true
    (roundtrip
       (Of_message.Features_reply
          { datapath_id = Of_types.Dpid.of_int 42;
            n_buffers = 256;
            n_tables = 1;
            ports = [ 1; 2; 3 ] }))

let test_wire_packet_in_out () =
  let f = tcp_frame () in
  check_bool "packet_in" true
    (roundtrip
       (Of_message.Packet_in
          { buffer_id = Some 7; in_port = 3; reason = Of_message.No_match;
            frame = f }));
  check_bool "packet_out buffered" true
    (roundtrip
       (Of_message.Packet_out
          { po_buffer_id = Some 7; po_in_port = 3;
            po_actions = [ Of_action.Output 1 ]; po_frame = None }));
  check_bool "packet_out inline" true
    (roundtrip
       (Of_message.Packet_out
          { po_buffer_id = None; po_in_port = 3;
            po_actions = [ Of_action.Output Of_types.Port.flood ];
            po_frame = Some f }))

let test_wire_flow_mod () =
  let m = Of_match.exact_of_frame ~in_port:2 (tcp_frame ()) in
  check_bool "flow_mod add" true
    (roundtrip
       (Of_message.Flow_mod
          (Of_message.flow_mod ~priority:42 ~idle_timeout:10
             ~buffer_id:(Some 3) m
             [ Of_action.Output 7; Of_action.Set_vlan 3 ])));
  check_bool "flow_mod delete" true
    (roundtrip
       (Of_message.Flow_mod
          (Of_message.flow_mod ~command:Of_message.Delete
             (Of_match.l2_dst ~dst:(fst (host 3)))
             [])))

let test_wire_stream () =
  let msgs =
    [ Of_message.make ~xid:1 Of_message.Hello;
      Of_message.make ~xid:2 (Of_message.Echo_request "x");
      Of_message.make ~xid:3 Of_message.Barrier_request ]
  in
  let stream = String.concat "" (List.map Of_wire.encode msgs) in
  let decoded = Of_wire.decode_all stream in
  check_int "count" 3 (List.length decoded);
  check_bool "all equal" true (List.for_all2 Of_message.equal msgs decoded)

(* --- Error codes --- *)

let test_error_codes () =
  List.iter
    (fun err ->
      match Of_error.of_wire (Of_error.to_wire err) with
      | Some err' -> check_bool (Of_error.describe err) true (err = err')
      | None -> Alcotest.failf "wire roundtrip lost %s" (Of_error.describe err))
    [ Of_error.Hello_failed `Incompatible;
      Of_error.Bad_request `Buffer_unknown;
      Of_error.Bad_action `Too_many;
      Of_error.Flow_mod_failed `Unsupported;
      Of_error.Port_mod_failed `Bad_hw_addr;
      Of_error.Queue_op_failed `Eperm ];
  check_bool "unknown pair" true (Of_error.of_wire (9, 9) = None);
  check_int "rejected flow mod is type 3" 3
    (fst (Of_error.to_wire Of_error.flow_mod_rejected))

(* --- Flow table --- *)

let fm ?(priority = 100) ?(idle = 0) ?(hard = 0) ?buffer m actions =
  Of_message.flow_mod ~priority ~idle_timeout:idle ~hard_timeout:hard
    ?buffer_id:(Option.map Option.some buffer) m actions

let test_table_priority () =
  let t = Flow_table.create () in
  let f = tcp_frame () in
  let low = Of_match.l2_pair ~src:f.Frame.dl_src ~dst:f.Frame.dl_dst in
  let high = Of_match.exact_of_frame ~in_port:1 f in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero
            (fm ~priority:10 low [ Of_action.Output 1 ]));
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero
            (fm ~priority:200 high [ Of_action.Output 2 ]));
  match Flow_table.lookup t ~now:(Time.ms 1) ~in_port:1 f with
  | Some e -> check_int "high priority wins" 200 e.Flow_table.priority
  | None -> Alcotest.fail "no match"

let test_table_add_replaces () =
  let t = Flow_table.create () in
  let m = Of_match.l2_dst ~dst:(fst (host 1)) in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero (fm m [ Of_action.Output 1 ]));
  ignore (Flow_table.apply_flow_mod t ~now:(Time.ms 1) (fm m [ Of_action.Output 2 ]));
  check_int "single entry" 1 (Flow_table.size t);
  match Flow_table.entries t with
  | [ e ] ->
      check_bool "newer actions" true
        (Of_action.equal_list e.Flow_table.actions [ Of_action.Output 2 ])
  | _ -> Alcotest.fail "expected one entry"

let test_table_modify () =
  let t = Flow_table.create () in
  let m = Of_match.l2_dst ~dst:(fst (host 1)) in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero (fm m [ Of_action.Output 1 ]));
  (match
     Flow_table.apply_flow_mod t ~now:(Time.ms 1)
       { (fm m [ Of_action.Output 9 ]) with Of_message.command = Of_message.Modify }
   with
  | Flow_table.Modified n -> check_int "modified count" 1 n
  | _ -> Alcotest.fail "expected Modified");
  match Flow_table.entries t with
  | [ e ] ->
      check_bool "actions updated" true
        (Of_action.equal_list e.Flow_table.actions [ Of_action.Output 9 ])
  | _ -> Alcotest.fail "one entry"

let test_table_delete () =
  let t = Flow_table.create () in
  let f = tcp_frame () in
  let exact = Of_match.exact_of_frame ~in_port:1 f in
  let pair = Of_match.l2_pair ~src:f.Frame.dl_src ~dst:f.Frame.dl_dst in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero (fm exact [ Of_action.Output 1 ]));
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero (fm ~priority:50 pair [ Of_action.Output 2 ]));
  (* Non-strict delete with the broader match removes both. *)
  (match
     Flow_table.apply_flow_mod t ~now:(Time.ms 1)
       { (fm pair []) with Of_message.command = Of_message.Delete }
   with
  | Flow_table.Removed gone -> check_int "both removed" 2 (List.length gone)
  | _ -> Alcotest.fail "expected Removed");
  check_int "empty" 0 (Flow_table.size t)

let test_table_delete_strict () =
  let t = Flow_table.create () in
  let f = tcp_frame () in
  let exact = Of_match.exact_of_frame ~in_port:1 f in
  let pair = Of_match.l2_pair ~src:f.Frame.dl_src ~dst:f.Frame.dl_dst in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero (fm exact [ Of_action.Output 1 ]));
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero (fm ~priority:50 pair [ Of_action.Output 2 ]));
  (match
     Flow_table.apply_flow_mod t ~now:(Time.ms 1)
       { (fm ~priority:50 pair []) with Of_message.command = Of_message.Delete_strict }
   with
  | Flow_table.Removed gone -> check_int "only exact (match,prio)" 1 (List.length gone)
  | _ -> Alcotest.fail "expected Removed");
  check_int "one left" 1 (Flow_table.size t)

let test_table_timeouts () =
  let t = Flow_table.create () in
  let m = Of_match.l2_dst ~dst:(fst (host 1)) in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero
            (fm ~idle:1 m [ Of_action.Output 1 ]));
  let f = tcp_frame () in
  check_bool "live before timeout" true
    (Flow_table.lookup t ~now:(Time.of_float_sec 0.5) ~in_port:1 f <> None);
  (* last hit now at 0.5s; idle expires at 1.5s *)
  check_bool "dead after idle" true
    (Flow_table.lookup t ~now:(Time.of_float_sec 1.6) ~in_port:1 f = None);
  let dead = Flow_table.expire t ~now:(Time.of_float_sec 1.6) in
  check_int "expired" 1 (List.length dead);
  check_int "empty" 0 (Flow_table.size t)

let test_table_hard_timeout () =
  let t = Flow_table.create () in
  let m = Of_match.l2_dst ~dst:(fst (host 1)) in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero
            (fm ~hard:2 m [ Of_action.Output 1 ]));
  let f = tcp_frame () in
  (* Keep hitting it; hard timeout kills it anyway. *)
  check_bool "alive at 1s" true
    (Flow_table.lookup t ~now:(Time.sec 1) ~in_port:1 f <> None);
  check_bool "dead at 3s despite hits" true
    (Flow_table.lookup t ~now:(Time.sec 3) ~in_port:1 f = None)

let test_table_hierarchy_reject_and_lenient () =
  let bad = { Of_match.wildcard_all with Of_match.tp_dst = Some 80 } in
  let strict = Flow_table.create () in
  (match Flow_table.apply_flow_mod strict ~now:Time.zero (fm bad [ Of_action.Output 1 ]) with
  | Flow_table.Rejected _ -> ()
  | _ -> Alcotest.fail "strict table must reject");
  let lenient = Flow_table.create ~lenient:true () in
  (match Flow_table.apply_flow_mod lenient ~now:Time.zero (fm bad [ Of_action.Output 1 ]) with
  | Flow_table.Installed -> ()
  | _ -> Alcotest.fail "lenient table must install");
  (* The installed rule silently lost the tp_dst field: it now matches
     port 9999 traffic too — the paper's T3 inconsistency. *)
  match Flow_table.lookup lenient ~now:(Time.ms 1) ~in_port:1 (tcp_frame ~dport:9999 ()) with
  | Some _ -> ()
  | None -> Alcotest.fail "stripped rule should match any port"

let test_table_exact_index_with_wildcard_override () =
  (* Thousands of exact rules must not shadow a higher-priority
     wildcard rule, and lookups must stay correct either way. *)
  let t = Flow_table.create () in
  for i = 0 to 499 do
    let f = tcp_frame ~sport:(1000 + i) () in
    ignore
      (Flow_table.apply_flow_mod t ~now:Time.zero
         (fm ~priority:100 (Of_match.exact_of_frame ~in_port:1 f)
            [ Of_action.Output 2 ]))
  done;
  check_int "500 rules" 500 (Flow_table.size t);
  (* an exact hit *)
  (match Flow_table.lookup t ~now:(Time.ms 1) ~in_port:1 (tcp_frame ~sport:1044 ()) with
  | Some e -> check_int "exact hit" 100 e.Flow_table.priority
  | None -> Alcotest.fail "exact rule must hit");
  (* a miss for an uninstalled connection *)
  check_bool "miss for fresh port" true
    (Flow_table.lookup t ~now:(Time.ms 1) ~in_port:1 (tcp_frame ~sport:9999 ()) = None);
  (* higher-priority wildcard beats the exact rule *)
  let f = tcp_frame ~sport:1044 () in
  ignore
    (Flow_table.apply_flow_mod t ~now:(Time.ms 2)
       (fm ~priority:900 (Of_match.l2_pair ~src:f.Frame.dl_src ~dst:f.Frame.dl_dst)
          [ Of_action.Output 7 ]));
  (match Flow_table.lookup t ~now:(Time.ms 3) ~in_port:1 f with
  | Some e -> check_int "wildcard override wins" 900 e.Flow_table.priority
  | None -> Alcotest.fail "must match");
  check_bool "has expirable" false (Flow_table.has_expirable t);
  ignore
    (Flow_table.apply_flow_mod t ~now:(Time.ms 4)
       (fm ~idle:5 (Of_match.l2_dst ~dst:(fst (host 9))) [ Of_action.Output 1 ]));
  check_bool "expirable after idle rule" true (Flow_table.has_expirable t)

let test_table_counters () =
  let t = Flow_table.create () in
  let m = Of_match.l2_dst ~dst:(fst (host 1)) in
  ignore (Flow_table.apply_flow_mod t ~now:Time.zero (fm m [ Of_action.Output 1 ]));
  for _ = 1 to 5 do
    ignore (Flow_table.lookup t ~now:(Time.ms 1) ~in_port:1 (tcp_frame ()))
  done;
  match Flow_table.entries t with
  | [ e ] -> check_bool "packet count" true (e.Flow_table.packet_count = 5L)
  | _ -> Alcotest.fail "one entry"

(* --- QCheck: wire roundtrip over random flow mods --- *)

let gen_match =
  let open QCheck.Gen in
  let mac = map Mac.of_host_index (int_bound 0xFFFF) in
  let m_exact =
    map
      (fun (s, d) -> Of_match.l2_pair ~src:s ~dst:d)
      (pair mac mac)
  in
  let m_dst = map (fun d -> Of_match.l2_dst ~dst:d) mac in
  let m_tcp =
    map
      (fun p ->
        { Of_match.wildcard_all with
          Of_match.dl_type = Some 0x0800;
          nw_proto = Some 6;
          tp_dst = Some p })
      (int_range 1 65_535)
  in
  oneof [ m_exact; m_dst; m_tcp; return Of_match.wildcard_all ]

let gen_flow_mod =
  let open QCheck.Gen in
  map2
    (fun m (prio, port) ->
      Of_message.flow_mod ~priority:prio m [ Of_action.Output port ])
    gen_match
    (pair (int_range 0 65_535) (int_range 1 100))

let prop_flow_mod_roundtrip =
  QCheck.Test.make ~name:"flow_mod wire roundtrip" ~count:300
    (QCheck.make gen_flow_mod)
    (fun fmv -> roundtrip (Of_message.Flow_mod fmv))

let prop_match_strip_idempotent =
  QCheck.Test.make ~name:"strip_invalid_fields idempotent & valid" ~count:300
    (QCheck.make gen_match)
    (fun m ->
      let s = Of_match.strip_invalid_fields m in
      Of_match.hierarchy_ok s
      && Of_match.equal s (Of_match.strip_invalid_fields s))

let suite =
  [ ("wildcard matches everything", `Quick, test_wildcard_matches_everything);
    ("exact match", `Quick, test_exact_match);
    ("l2 pair match", `Quick, test_l2_pair);
    ("prefix match", `Quick, test_prefix_match);
    ("field hierarchy", `Quick, test_hierarchy);
    ("more_specific", `Quick, test_more_specific);
    ("actions apply", `Quick, test_actions_apply);
    ("vlan actions", `Quick, test_action_vlan);
    ("wire simple", `Quick, test_wire_simple_messages);
    ("wire features reply", `Quick, test_wire_features_reply);
    ("wire packet in/out", `Quick, test_wire_packet_in_out);
    ("wire flow mod", `Quick, test_wire_flow_mod);
    ("wire stream deframing", `Quick, test_wire_stream);
    ("table priority", `Quick, test_table_priority);
    ("table add replaces", `Quick, test_table_add_replaces);
    ("table modify", `Quick, test_table_modify);
    ("table delete", `Quick, test_table_delete);
    ("table delete strict", `Quick, test_table_delete_strict);
    ("table idle timeout", `Quick, test_table_timeouts);
    ("table hard timeout", `Quick, test_table_hard_timeout);
    ("table hierarchy handling", `Quick, test_table_hierarchy_reject_and_lenient);
    ("table counters", `Quick, test_table_counters);
    ("table exact index + wildcard override", `Quick,
     test_table_exact_index_with_wildcard_override);
    ("error codes", `Quick, test_error_codes);
    QCheck_alcotest.to_alcotest prop_flow_mod_roundtrip;
    QCheck_alcotest.to_alcotest prop_match_strip_idempotent ]
