(* Tests for addresses, the binary buffers and the frame codec. *)

open Jury_packet
module Mac = Addr.Mac
module Ipv4 = Addr.Ipv4

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Addresses --- *)

let test_mac_roundtrip () =
  let m = Mac.of_string "aa:bb:cc:dd:ee:ff" in
  check_str "format" "aa:bb:cc:dd:ee:ff" (Mac.to_string m);
  check_int "int" 0xAABBCCDDEEFF (Mac.to_int m);
  check_bool "broadcast" true (Mac.is_broadcast Mac.broadcast);
  check_bool "not broadcast" false (Mac.is_broadcast m);
  check_bool "multicast lldp" true (Mac.is_multicast Mac.lldp_nearest_bridge)

let test_mac_invalid () =
  Alcotest.check_raises "short" (Invalid_argument "Mac.of_string: need 6 octets")
    (fun () -> ignore (Mac.of_string "aa:bb"));
  Alcotest.check_raises "bad octet" (Invalid_argument "Mac.of_string: bad octet")
    (fun () -> ignore (Mac.of_string "zz:bb:cc:dd:ee:ff"))

let test_mac_host_index () =
  let m0 = Mac.of_host_index 0 and m1 = Mac.of_host_index 1 in
  check_bool "distinct" false (Mac.equal m0 m1);
  check_bool "locally administered" true (Mac.to_int m0 lsr 40 = 0x02)

let test_ipv4_roundtrip () =
  let ip = Ipv4.of_string "10.1.2.3" in
  check_str "format" "10.1.2.3" (Ipv4.to_string ip);
  check_int "int" 0x0A010203 (Ipv4.to_int ip);
  check_str "host index scheme" "10.0.0.1" (Ipv4.to_string (Ipv4.of_host_index 0))

let test_ipv4_prefix () =
  let ip = Ipv4.of_string "10.1.2.3" in
  let prefix = Ipv4.of_string "10.1.0.0" in
  check_bool "in /16" true (Ipv4.matches_prefix ip ~prefix ~bits:16);
  check_bool "not in /24" false (Ipv4.matches_prefix ip ~prefix ~bits:24);
  check_bool "/0 matches all" true
    (Ipv4.matches_prefix ip ~prefix:(Ipv4.of_string "192.168.0.0") ~bits:0);
  check_bool "/32 exact" true (Ipv4.matches_prefix ip ~prefix:ip ~bits:32)

(* --- Wire buffers --- *)

let test_writer_reader () =
  let w = Wire_buf.Writer.create () in
  Wire_buf.Writer.u8 w 0xAB;
  Wire_buf.Writer.u16 w 0x1234;
  Wire_buf.Writer.u32 w 0xDEADBEEF;
  Wire_buf.Writer.u48 w 0xAABBCCDDEEFF;
  Wire_buf.Writer.u64 w 0x1122334455667788L;
  Wire_buf.Writer.bytes w "hi";
  let r = Wire_buf.Reader.of_string (Wire_buf.Writer.contents w) in
  check_int "u8" 0xAB (Wire_buf.Reader.u8 r "t");
  check_int "u16" 0x1234 (Wire_buf.Reader.u16 r "t");
  check_int "u32" 0xDEADBEEF (Wire_buf.Reader.u32 r "t");
  check_int "u48" 0xAABBCCDDEEFF (Wire_buf.Reader.u48 r "t");
  check_bool "u64" true (Wire_buf.Reader.u64 r "t" = 0x1122334455667788L);
  check_str "bytes" "hi" (Wire_buf.Reader.bytes r 2 "t");
  check_int "exhausted" 0 (Wire_buf.Reader.remaining r)

let test_reader_truncated () =
  let r = Wire_buf.Reader.of_string "\x01" in
  Alcotest.check_raises "truncated" (Wire_buf.Truncated "field") (fun () ->
      ignore (Wire_buf.Reader.u16 r "field"))

let test_patch_u16 () =
  let w = Wire_buf.Writer.create () in
  Wire_buf.Writer.u16 w 0;
  Wire_buf.Writer.u16 w 0x5678;
  Wire_buf.Writer.patch_u16 w ~pos:0 0x1234;
  let r = Wire_buf.Reader.of_string (Wire_buf.Writer.contents w) in
  check_int "patched" 0x1234 (Wire_buf.Reader.u16 r "t");
  check_int "untouched" 0x5678 (Wire_buf.Reader.u16 r "t")

let test_checksum () =
  (* RFC 1071 example: checksum of 0x0001 0xf203 0xf4f5 0xf6f7. *)
  let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check_int "rfc1071" (lnot 0xddf2 land 0xFFFF)
    (Wire_buf.internet_checksum data)

(* --- LLDP --- *)

let test_lldp_roundtrip () =
  let l = Lldp.make ~system_name:"ctrl-3" ~chassis_id:42L ~port_id:7 ~ttl:120 () in
  let l' = Lldp.decode (Lldp.encode l) in
  check_bool "roundtrip" true (Lldp.equal l l');
  let bare = Lldp.make ~chassis_id:1L ~port_id:1 ~ttl:1 () in
  check_bool "no sysname roundtrip" true
    (Lldp.equal bare (Lldp.decode (Lldp.encode bare)))

(* --- Frames --- *)

let host i = (Mac.of_host_index i, Ipv4.of_host_index i)

let test_arp_frames () =
  let m0, i0 = host 0 and m1, i1 = host 1 in
  let req = Frame.arp_request ~sender:(m0, i0) ~target:i1 in
  check_bool "broadcast dst" true (Mac.is_broadcast req.Frame.dl_dst);
  check_int "ethertype" 0x0806 (Frame.ethertype req);
  let rep = Frame.arp_reply ~sender:(m1, i1) ~target:(m0, i0) in
  check_bool "reply unicast" true (Mac.equal rep.Frame.dl_dst m0);
  check_bool "arp roundtrip" true (Frame.equal req (Frame.decode (Frame.encode req)));
  check_bool "reply roundtrip" true (Frame.equal rep (Frame.decode (Frame.encode rep)))

let test_tcp_frame () =
  let s = host 0 and d = host 1 in
  let f =
    Frame.tcp_packet ~flags:Frame.tcp_syn ~payload_len:512 ~src:s ~dst:d
      ~src_port:1234 ~dst_port:80 ()
  in
  check_int "ethertype" 0x0800 (Frame.ethertype f);
  let f' = Frame.decode (Frame.encode f) in
  check_bool "tcp roundtrip" true (Frame.equal f f');
  (match f'.Frame.payload with
  | Frame.Ipv4 { l4 = Frame.Tcp t; _ } ->
      check_int "sport" 1234 t.Frame.src_port;
      check_int "payload preserved" 512 t.Frame.payload_len
  | _ -> Alcotest.fail "wrong payload");
  check_bool "size includes payload" true (Frame.size_on_wire f > 512)

let test_udp_frame () =
  let f =
    Frame.udp_packet ~payload_len:99 ~src:(host 2) ~dst:(host 3) ~src_port:53
      ~dst_port:5353 ()
  in
  let f' = Frame.decode (Frame.encode f) in
  check_bool "udp roundtrip" true (Frame.equal f f')

let test_lldp_frame () =
  let lldp = Lldp.make ~chassis_id:9L ~port_id:2 ~ttl:120 () in
  let f = Frame.lldp_frame ~src:(Mac.of_host_index 77) lldp in
  check_int "ethertype" 0x88CC (Frame.ethertype f);
  let f' = Frame.decode (Frame.encode f) in
  (match f'.Frame.payload with
  | Frame.Lldp l -> check_bool "lldp payload" true (Lldp.equal l lldp)
  | _ -> Alcotest.fail "wrong payload")

let test_vlan_frame () =
  let f =
    { (Frame.tcp_packet ~src:(host 0) ~dst:(host 1) ~src_port:1 ~dst_port:2 ())
      with Frame.vlan = Some 42 }
  in
  let f' = Frame.decode (Frame.encode f) in
  Alcotest.(check (option int)) "vlan preserved" (Some 42) f'.Frame.vlan

let test_garbage_rejected () =
  check_bool "truncated raises" true
    (match Frame.decode "\x01\x02" with
    | _ -> false
    | exception Wire_buf.Truncated _ -> true)

let test_icmp_frame () =
  let f =
    { Frame.dl_src = Mac.of_host_index 1;
      dl_dst = Mac.of_host_index 2;
      vlan = None;
      payload =
        Frame.Ipv4
          { src = Ipv4.of_host_index 1;
            dst = Ipv4.of_host_index 2;
            proto = 1;
            ttl = 64;
            dscp = 0;
            l4 = Frame.Icmp { ty = 8; code = 0 } } }
  in
  let f' = Frame.decode (Frame.encode f) in
  check_bool "icmp roundtrip" true (Frame.equal f f')

let test_raw_payload () =
  let f =
    { Frame.dl_src = Mac.of_host_index 1;
      dl_dst = Mac.of_host_index 2;
      vlan = None;
      payload = Frame.Raw (0x9999, "opaque-bytes") }
  in
  let f' = Frame.decode (Frame.encode f) in
  (match f'.Frame.payload with
  | Frame.Raw (ty, body) ->
      check_int "ethertype kept" 0x9999 ty;
      check_str "body kept" "opaque-bytes" body
  | _ -> Alcotest.fail "raw payload lost");
  check_int "raw size" (String.length (Frame.encode f)) (Frame.size_on_wire f)

let test_mac_distinctness () =
  (* Deterministic host addressing must be injective over the range the
     simulator uses. *)
  let macs = List.init 2000 (fun i -> Mac.to_int (Mac.of_host_index i)) in
  check_int "all distinct" 2000 (List.length (List.sort_uniq compare macs))

let test_ipv4_host_index_wraps_safely () =
  let a = Ipv4.of_host_index 0 and b = Ipv4.of_host_index 65535 in
  check_bool "distinct" false (Ipv4.equal a b);
  check_bool "in 10/8" true
    (Ipv4.matches_prefix a ~prefix:(Ipv4.of_string "10.0.0.0") ~bits:8)

(* --- QCheck: frame codec roundtrip over generated frames --- *)

let gen_frame =
  let open QCheck.Gen in
  let mac = map Mac.of_host_index (int_bound 0xFFFF) in
  let ip = map Ipv4.of_host_index (int_bound 0xFFFF) in
  let port = int_range 1 65_535 in
  let arp =
    map2
      (fun (sha, spa) (tha, tpa) ->
        Frame.Arp { op = Frame.Request; sha; spa; tha; tpa })
      (pair mac ip) (pair mac ip)
  in
  let tcp =
    map2
      (fun (src, dst) ((sp, dp), len) ->
        Frame.Ipv4
          { src;
            dst;
            proto = 6;
            ttl = 64;
            dscp = 0;
            l4 =
              Frame.Tcp
                { src_port = sp; dst_port = dp; seq = 0; ack = 0; flags = 2;
                  window = 65_535; payload_len = len } })
      (pair ip ip)
      (pair (pair port port) (int_bound 1400))
  in
  let udp =
    map2
      (fun (src, dst) (sp, dp) ->
        Frame.Ipv4
          { src; dst; proto = 17; ttl = 64; dscp = 0;
            l4 = Frame.Udp { src_port = sp; dst_port = dp; payload_len = 10 } })
      (pair ip ip) (pair port port)
  in
  let payload = oneof [ arp; tcp; udp ] in
  map2
    (fun (dl_src, dl_dst) payload ->
      { Frame.dl_src; dl_dst; vlan = None; payload })
    (pair mac mac) payload

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame encode/decode roundtrip" ~count:300
    (QCheck.make gen_frame)
    (fun f -> Frame.equal f (Frame.decode (Frame.encode f)))

let suite =
  [ ("mac roundtrip", `Quick, test_mac_roundtrip);
    ("mac invalid", `Quick, test_mac_invalid);
    ("mac host index", `Quick, test_mac_host_index);
    ("ipv4 roundtrip", `Quick, test_ipv4_roundtrip);
    ("ipv4 prefix match", `Quick, test_ipv4_prefix);
    ("wire writer/reader", `Quick, test_writer_reader);
    ("reader truncation", `Quick, test_reader_truncated);
    ("patch u16", `Quick, test_patch_u16);
    ("internet checksum", `Quick, test_checksum);
    ("lldp roundtrip", `Quick, test_lldp_roundtrip);
    ("arp frames", `Quick, test_arp_frames);
    ("tcp frame", `Quick, test_tcp_frame);
    ("udp frame", `Quick, test_udp_frame);
    ("lldp frame", `Quick, test_lldp_frame);
    ("vlan tag", `Quick, test_vlan_frame);
    ("garbage rejected", `Quick, test_garbage_rejected);
    ("icmp frame", `Quick, test_icmp_frame);
    ("raw payload", `Quick, test_raw_payload);
    ("mac distinctness", `Quick, test_mac_distinctness);
    ("ipv4 host index", `Quick, test_ipv4_host_index_wraps_safely);
    QCheck_alcotest.to_alcotest prop_frame_roundtrip ]
