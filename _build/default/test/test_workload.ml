(* Tests for workload generators and the probe. *)

open Jury_sim
module Flows = Jury_workload.Flows
module Traces = Jury_workload.Traces
module Cbench = Jury_workload.Cbench
module Probe = Jury_workload.Probe
module Network = Jury_net.Network
module Switch = Jury_net.Switch
module Builder = Jury_topo.Builder

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk ?(switches = 4) ?(hosts_per_switch = 2) () =
  let engine = Engine.create ~seed:31 () in
  let plan = Builder.linear ~switches ~hosts_per_switch in
  let network = Network.create engine plan () in
  (engine, network)

let total_packet_ins network =
  List.fold_left
    (fun acc sw -> acc + Switch.packet_in_count sw)
    0 (Network.switches network)

let test_new_connections_rate () =
  let engine, network = mk () in
  let rng = Rng.split (Engine.rng engine) in
  Flows.new_connections network ~rng ~rate:1000. ~duration:(Time.sec 2)
    ~mode:Flows.Same_switch ();
  Engine.run engine;
  let pis = total_packet_ins network in
  (* Poisson with mean 2000; each same-switch connection misses once. *)
  check_bool "rate approx" true (pis > 1700 && pis < 2300)

let test_same_switch_stays_local () =
  let engine, network = mk () in
  let rng = Rng.split (Engine.rng engine) in
  Flows.new_connections network ~rng ~rate:200. ~duration:(Time.sec 1)
    ~mode:Flows.Same_switch ();
  Engine.run engine;
  (* No controller: frames die at their first switch as PACKET_INs,
     never crossing links. *)
  List.iter
    (fun sw ->
      check_int
        ("no transit at " ^ Jury_openflow.Of_types.Dpid.to_string (Switch.dpid sw))
        (Switch.packet_in_count sw)
        (Switch.packet_in_count sw))
    (Network.switches network);
  check_bool "some packet_ins" true (total_packet_ins network > 100)

let test_host_joins () =
  let engine, network = mk () in
  let rng = Rng.split (Engine.rng engine) in
  Flows.host_joins network ~rng ~rate:50. ~duration:(Time.sec 1);
  Engine.run engine;
  check_bool "gratuitous arps hit switches" true (total_packet_ins network > 20)

let test_link_flaps_recover () =
  let engine, network = mk () in
  let rng = Rng.split (Engine.rng engine) in
  Flows.link_flaps network ~rng ~rate:5. ~duration:(Time.sec 2)
    ~down_time:(Time.ms 100) ();
  Engine.run engine;
  (* After the run every link must be back up: sending across the chain
     floods PACKET_INs at the far switch. *)
  let h0 = Network.host network 0 in
  let far = Network.host network (2 * 4 - 1) in
  Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac far)
    ~dst_ip:(Jury_net.Host.ip far) ~src_port:1 ~dst_port:2 ();
  Engine.run engine;
  check_bool "links restored" true (total_packet_ins network > 0)

let test_traces_profiles () =
  check_int "three traces" 3 (List.length Traces.all);
  check_bool "find by name" true (Traces.find "LBNL" <> None);
  check_bool "unknown" true (Traces.find "NOPE" = None);
  List.iter
    (fun (p : Traces.profile) ->
      check_bool (p.Traces.name ^ " sane rate") true (p.Traces.mean_rate > 0.);
      check_bool (p.Traces.name ^ " sane mix") true
        (p.Traces.arp_fraction +. p.Traces.udp_fraction < 1.))
    Traces.all

let test_trace_replay_rate () =
  let engine, network = mk ~switches:6 ~hosts_per_switch:2 () in
  let rng = Rng.split (Engine.rng engine) in
  Traces.replay network ~rng ~profile:Traces.lbnl ~duration:(Time.sec 2);
  Engine.run engine;
  let pis = total_packet_ins network in
  (* LBNL ~700/s for 2s; lognormal gaps make this noisy. *)
  check_bool "roughly profile rate" true (pis > 600 && pis < 2800)

let test_cbench_blast () =
  let engine, network = mk () in
  let rng = Rng.split (Engine.rng engine) in
  Cbench.blast network ~rng ~dpid:(Jury_openflow.Of_types.Dpid.of_int 1)
    ~burst:100 ~burst_gap:(Time.ms 100) ~duration:(Time.sec 1);
  Engine.run engine;
  let sw1 = Network.switch network (Jury_openflow.Of_types.Dpid.of_int 1) in
  (* 1 initial + 10 periodic bursts of 100 *)
  check_bool "bursts injected" true (Switch.packet_in_count sw1 >= 1000)

let test_probe () =
  let engine, network = mk () in
  let rng = Rng.split (Engine.rng engine) in
  let probe = Probe.start network ~window_sec:0.5 ~duration:(Time.sec 2) () in
  Flows.new_connections network ~rng ~rate:400. ~duration:(Time.sec 2)
    ~mode:Flows.Same_switch ();
  Engine.run engine;
  check_bool "packet_in total counted" true (Probe.total_packet_in probe > 600);
  check_bool "series non-empty" true
    (Array.length (Jury_stats.Rate.series (Probe.packet_in probe)) >= 3);
  (* no controller => no flow mods *)
  check_int "no flow mods" 0 (Probe.total_flow_mod probe)

let test_record_and_replay () =
  (* Record a small run, replay it into a fresh network, and check the
     same host-edge frames arrive again. *)
  let engine, network = mk ~switches:2 ~hosts_per_switch:1 () in
  let capture = Jury_net.Capture.create engine in
  List.iter (Jury_net.Capture.tap_switch capture) (Network.switches network);
  let h0 = Network.host network 0 and h1 = Network.host network 1 in
  for i = 1 to 5 do
    Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac h1)
      ~dst_ip:(Jury_net.Host.ip h1) ~src_port:(6000 + i) ~dst_port:80 ()
  done;
  Engine.run engine;
  let recorded =
    List.length (Jury_workload.Replay.edge_entries network capture)
  in
  check_int "five edge frames recorded" 5 recorded;
  (* Fresh network with the same shape. *)
  let engine2 = Engine.create ~seed:77 () in
  let plan2 = Builder.linear ~switches:2 ~hosts_per_switch:1 in
  let network2 = Network.create engine2 plan2 () in
  (* The capture came from another engine; re-injection only needs the
     relative timestamps, so replay accepts it. *)
  let n = Jury_workload.Replay.replay network2 capture () in
  check_int "all frames scheduled" 5 n;
  Engine.run engine2;
  check_int "replayed frames hit the edge switch" 5
    (Switch.packet_in_count
       (Network.switch network2 (Jury_openflow.Of_types.Dpid.of_int 1)))

let test_replay_speed () =
  let engine, network = mk ~switches:2 ~hosts_per_switch:1 () in
  let capture = Jury_net.Capture.create engine in
  List.iter (Jury_net.Capture.tap_switch capture) (Network.switches network);
  let h0 = Network.host network 0 and h1 = Network.host network 1 in
  Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac h1)
    ~dst_ip:(Jury_net.Host.ip h1) ~src_port:1 ~dst_port:2 ();
  ignore
    (Engine.schedule engine ~after:(Time.ms 100) (fun () ->
         Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac h1)
           ~dst_ip:(Jury_net.Host.ip h1) ~src_port:3 ~dst_port:4 ()));
  Engine.run engine;
  let engine2 = Engine.create () in
  let network2 =
    Network.create engine2 (Builder.linear ~switches:2 ~hosts_per_switch:1) ()
  in
  ignore (Jury_workload.Replay.replay network2 capture ~speed:2.0 ());
  Engine.run engine2;
  (* 100 ms gap compressed to ~50 ms. *)
  check_bool "time compressed" true
    Time.(Engine.now engine2 < Time.ms 80)

let suite =
  [ ("new connections rate", `Quick, test_new_connections_rate);
    ("same-switch locality", `Quick, test_same_switch_stays_local);
    ("host joins", `Quick, test_host_joins);
    ("link flaps recover", `Quick, test_link_flaps_recover);
    ("trace profiles", `Quick, test_traces_profiles);
    ("trace replay rate", `Quick, test_trace_replay_rate);
    ("cbench blast", `Quick, test_cbench_blast);
    ("probe", `Quick, test_probe);
    ("record and replay", `Quick, test_record_and_replay);
    ("replay speed", `Quick, test_replay_speed) ]
