examples/policy_audit.mli:
