examples/quickstart.mli:
