examples/fault_forensics.mli:
