examples/network_debugging.mli:
