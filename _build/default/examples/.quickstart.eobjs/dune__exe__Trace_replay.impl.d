examples/trace_replay.ml: Engine Jury Jury_controller Jury_net Jury_sim Jury_stats Jury_topo Jury_workload List Printf Rng Time
