examples/network_debugging.ml: Engine Format Jury Jury_controller Jury_net Jury_openflow Jury_packet Jury_sim Jury_topo Jury_workload List Printf Rng Time
