examples/policy_audit.ml: Engine Format Jury Jury_controller Jury_net Jury_openflow Jury_policy Jury_sim Jury_store Jury_topo List Printf Time
