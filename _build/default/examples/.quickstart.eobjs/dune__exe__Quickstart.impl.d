examples/quickstart.ml: Engine Format Jury Jury_controller Jury_faults Jury_net Jury_openflow Jury_sim Jury_store Jury_topo List Printf Time
