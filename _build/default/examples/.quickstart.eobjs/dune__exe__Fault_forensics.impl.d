examples/fault_forensics.ml: Format Jury Jury_faults List Printf
