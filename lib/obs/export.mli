(** JSONL export and in-process queries over trace events.

    One JSON object per line, e.g.:
    {v
    {"t":1200,"span":3,"parent":1,"node":4,"kind":"open",
     "phase":"replicate","attrs":{"taint":"ext:0:17"}}
    v}
    The codec is self-contained (no external JSON dependency) and
    round-trips exactly: [of_jsonl (to_jsonl evs) = Ok evs]. *)

val event_to_json : Trace.event -> string
(** Single-line JSON object (no trailing newline). *)

val event_of_json : string -> (Trace.event, string) result

val to_jsonl : Trace.event list -> string
(** One event per line, newline-terminated. *)

val of_jsonl : string -> (Trace.event list, string) result
(** Blank lines are skipped; the first malformed line aborts with its
    line number. *)

val write_file : string -> Trace.event list -> unit

val read_file : string -> (Trace.event list, string) result

val query :
  ?taint:string ->
  ?node:int ->
  ?phase:Trace.phase ->
  ?kind:[ `Open | `Close | `Point ] ->
  ?since_ns:int ->
  ?until_ns:int ->
  Trace.event list ->
  Trace.event list
(** Conjunction of the given filters, preserving order. [phase]
    matches [Open]/[Point] events of that phase; [taint] matches the
    stamped ["taint"] attribute; the time window is inclusive. *)
