type t = {
  id : Trace.span_id;
  parent_id : Trace.span_id option;
  phase : Trace.phase;
  node : int option;
  taint : string option;
  opened_ns : int;
  mutable closed_ns : int option;
  open_attrs : (string * string) list;
  mutable close_attrs : (string * string) list;
  mutable children : t list;
  mutable points : Trace.event list;
}

let assemble events =
  let by_id : (Trace.span_id, t) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.kind with
      | Trace.Open phase ->
          let span =
            { id = ev.span;
              parent_id = ev.parent;
              phase;
              node = ev.node;
              taint = Trace.taint_of ev;
              opened_ns = ev.t_ns;
              closed_ns = None;
              open_attrs = ev.attrs;
              close_attrs = [];
              children = [];
              points = [] }
          in
          Hashtbl.replace by_id ev.span span;
          (match ev.parent with
          | None -> roots := span :: !roots
          | Some parent -> (
              match Hashtbl.find_opt by_id parent with
              | Some p -> p.children <- span :: p.children
              | None -> roots := span :: !roots))
      | Trace.Close -> (
          match Hashtbl.find_opt by_id ev.span with
          | Some span ->
              span.closed_ns <- Some ev.t_ns;
              span.close_attrs <- ev.attrs
          | None -> ())
      | Trace.Point _ -> (
          match Hashtbl.find_opt by_id ev.span with
          | Some span -> span.points <- ev :: span.points
          | None -> ()))
    events;
  let rec order span =
    span.children <- List.rev span.children;
    span.points <- List.rev span.points;
    List.iter order span.children
  in
  let roots = List.rev !roots in
  List.iter order roots;
  roots

let find roots ~taint =
  List.find_opt (fun s -> s.taint = Some taint) roots

let duration_ns span =
  Option.map (fun c -> c - span.opened_ns) span.closed_ns

let ns_to_ms ns = float_of_int ns /. 1e6

let span_validate_window root =
  match root.closed_ns with
  | None -> None
  | Some closed ->
      root.points
      |> List.find_opt (fun (ev : Trace.event) ->
             ev.Trace.kind = Trace.Point Trace.Validate)
      |> Option.map (fun (ev : Trace.event) -> closed - ev.Trace.t_ns)

let phase_breakdown_ms root =
  let totals = Hashtbl.create 8 in
  let add phase ns =
    let cur = Option.value (Hashtbl.find_opt totals phase) ~default:0 in
    Hashtbl.replace totals phase (cur + ns)
  in
  let rec walk span =
    (match (span.parent_id, duration_ns span) with
    | Some _, Some d -> add span.phase d
    | _ -> ());
    List.iter walk span.children
  in
  walk root;
  (* The validator's own phase: first response delivery to verdict. *)
  (match span_validate_window root with
  | Some ns -> add Trace.Validate ns
  | None -> ());
  List.filter_map
    (fun phase ->
      Option.map
        (fun ns -> (phase, ns_to_ms ns))
        (Hashtbl.find_opt totals phase))
    Trace.all_phases

let critical_path root =
  let close_of s = Option.value s.closed_ns ~default:s.opened_ns in
  let rec go span acc =
    match span.children with
    | [] -> List.rev acc
    | children ->
        let gating =
          List.fold_left
            (fun best c ->
              match best with
              | Some b when close_of b >= close_of c -> best
              | _ -> Some c)
            None children
        in
        (match gating with
        | None -> List.rev acc
        | Some c -> go c (c :: acc))
  in
  if root.closed_ns = None then [] else go root []

(* --- Rendering --- *)

let bar_width = 32

let bar ~t0 ~t1 ~from_ns ~to_ns =
  (* Proportional [from, to] interval on a fixed-width gutter. *)
  let span_ns = max 1 (t1 - t0) in
  let pos ns = bar_width * (ns - t0) / span_ns in
  let a = max 0 (min (bar_width - 1) (pos from_ns)) in
  let b = max a (min (bar_width - 1) (pos to_ns)) in
  String.init bar_width (fun i ->
      if i < a || i > b then ' '
      else if a = b then '|'
      else if i = a || i = b then '+'
      else '=')

let attr name attrs = List.assoc_opt name attrs

let node_cell = function None -> "-" | Some n -> string_of_int n

let render_timeline root =
  let buf = Buffer.create 1024 in
  let t0 = root.opened_ns in
  let rec max_close span =
    List.fold_left
      (fun acc c -> max acc (max_close c))
      (Option.value span.closed_ns ~default:span.opened_ns)
      span.children
  in
  let t1 = max (t0 + 1) (max_close root) in
  let verdict =
    root.points
    |> List.find_opt (fun (ev : Trace.event) ->
           ev.Trace.kind = Trace.Point Trace.Verdict)
    |> Option.map (fun (ev : Trace.event) ->
           Option.value (attr "verdict" ev.Trace.attrs) ~default:"?")
  in
  Buffer.add_string buf
    (Printf.sprintf "trigger %s (%s)%s%s\n"
       (Option.value root.taint ~default:"?")
       (Option.value (attr "trigger" root.open_attrs) ~default:"?")
       (match verdict with
       | Some v -> Printf.sprintf " -> %s" v
       | None -> " -> (undecided)")
       (match duration_ns root with
       | Some d -> Printf.sprintf " in %.3fms" (ns_to_ms d)
       | None -> ""));
  let table =
    Jury_stats.Table.create
      ~header:[ "span"; "node"; "start ms"; "dur ms"; "timeline" ]
  in
  let row ?(depth = 0) label node ~from_ns ~to_ns ~closed =
    Jury_stats.Table.add_row table
      [ String.make (2 * depth) ' ' ^ label;
        node_cell node;
        Printf.sprintf "%.3f" (ns_to_ms (from_ns - t0));
        (if closed then Printf.sprintf "%.3f" (ns_to_ms (to_ns - from_ns))
         else "open");
        bar ~t0 ~t1 ~from_ns ~to_ns ]
  in
  let rec render_span depth span =
    row ~depth
      (Trace.phase_name span.phase)
      span.node ~from_ns:span.opened_ns
      ~to_ns:(Option.value span.closed_ns ~default:t1)
      ~closed:(span.closed_ns <> None);
    List.iter
      (fun (ev : Trace.event) ->
        match ev.Trace.kind with
        | Trace.Point phase ->
            row ~depth:(depth + 1)
              ("* " ^ Trace.phase_name phase)
              ev.Trace.node ~from_ns:ev.Trace.t_ns ~to_ns:ev.Trace.t_ns
              ~closed:true
        | _ -> ())
      span.points;
    List.iter (render_span (depth + 1)) span.children
  in
  render_span 0 root;
  Buffer.add_string buf (Format.asprintf "%a" Jury_stats.Table.pp table);
  (match phase_breakdown_ms root with
  | [] -> ()
  | breakdown ->
      Buffer.add_string buf "phase breakdown: ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (phase, ms) ->
                Printf.sprintf "%s %.3fms" (Trace.phase_name phase) ms)
              breakdown));
      Buffer.add_char buf '\n');
  (match critical_path root with
  | [] -> ()
  | path ->
      Buffer.add_string buf "critical path: ";
      Buffer.add_string buf
        (String.concat " -> "
           (List.map
              (fun s ->
                Printf.sprintf "%s@%s%s" (Trace.phase_name s.phase)
                  (node_cell s.node)
                  (match duration_ns s with
                  | Some d -> Printf.sprintf " %.3fms" (ns_to_ms d)
                  | None -> ""))
              path));
      Buffer.add_char buf '\n');
  Buffer.contents buf
