(* --- JSON encoding (self-contained: no JSON library in the image) --- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let event_to_json (ev : Trace.event) =
  let buf = Buffer.create 128 in
  let str s =
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf (Printf.sprintf "{\"t\":%d,\"span\":%d," ev.t_ns ev.span);
  Buffer.add_string buf "\"parent\":";
  (match ev.parent with
  | None -> Buffer.add_string buf "null"
  | Some p -> Buffer.add_string buf (string_of_int p));
  Buffer.add_string buf ",\"node\":";
  (match ev.node with
  | None -> Buffer.add_string buf "null"
  | Some n -> Buffer.add_string buf (string_of_int n));
  Buffer.add_string buf ",\"kind\":";
  str (Trace.kind_name ev.kind);
  Buffer.add_string buf ",\"phase\":";
  (match ev.kind with
  | Trace.Open p | Trace.Point p -> str (Trace.phase_name p)
  | Trace.Close -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      str k;
      Buffer.add_char buf ':';
      str v)
    ev.attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_to_json ev);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* --- Minimal JSON parser for the flat event schema --- *)

exception Parse_error of string

type json =
  | J_null
  | J_int of int
  | J_string of string
  | J_obj of (string * json) list

let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error msg) in
  let peek () = if !pos >= n then fail "unexpected end" else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 ->
                  Buffer.add_char buf (Char.chr code)
              | Some _ -> fail "non-ascii \\u escape"
              | None -> fail "bad \\u escape")
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_string (parse_string ())
    | '{' -> parse_obj ()
    | 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4;
          J_null
        end
        else fail "bad literal"
    | '-' | '0' .. '9' ->
        let start = !pos in
        if peek () = '-' then advance ();
        while
          !pos < n && match line.[!pos] with '0' .. '9' -> true | _ -> false
        do advance () done;
        (match int_of_string_opt (String.sub line start (!pos - start)) with
        | Some i -> J_int i
        | None -> fail "bad number")
    | c -> fail (Printf.sprintf "unexpected %c" c)
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      J_obj []
    end
    else begin
      let fields = ref [] in
      let rec member () =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' -> advance (); member ()
        | '}' -> advance ()
        | c -> fail (Printf.sprintf "expected , or } got %c" c)
      in
      member ();
      J_obj (List.rev !fields)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let event_of_json line =
  try
    match parse_json line with
    | J_obj fields ->
        let get name =
          match List.assoc_opt name fields with
          | Some v -> v
          | None -> raise (Parse_error ("missing field " ^ name))
        in
        let as_int name =
          match get name with
          | J_int i -> i
          | _ -> raise (Parse_error (name ^ ": expected int"))
        in
        let as_int_opt name =
          match get name with
          | J_int i -> Some i
          | J_null -> None
          | _ -> raise (Parse_error (name ^ ": expected int or null"))
        in
        let as_string name =
          match get name with
          | J_string s -> s
          | _ -> raise (Parse_error (name ^ ": expected string"))
        in
        let phase () =
          match get "phase" with
          | J_string s -> (
              match Trace.phase_of_name s with
              | Some p -> p
              | None -> raise (Parse_error ("unknown phase " ^ s)))
          | _ -> raise (Parse_error "phase: expected string")
        in
        let kind =
          match as_string "kind" with
          | "open" -> Trace.Open (phase ())
          | "close" -> Trace.Close
          | "point" -> Trace.Point (phase ())
          | k -> raise (Parse_error ("unknown kind " ^ k))
        in
        let attrs =
          match get "attrs" with
          | J_obj kvs ->
              List.map
                (fun (k, v) ->
                  match v with
                  | J_string s -> (k, s)
                  | _ -> raise (Parse_error "attrs: expected string values"))
                kvs
          | _ -> raise (Parse_error "attrs: expected object")
        in
        Ok
          { Trace.t_ns = as_int "t";
            span = as_int "span";
            parent = as_int_opt "parent";
            node = as_int_opt "node";
            kind;
            attrs }
    | _ -> Error "expected a JSON object"
  with Parse_error msg -> Error msg

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (i + 1) acc rest
        else (
          match event_of_json line with
          | Ok ev -> go (i + 1) (ev :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

let write_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl events))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_jsonl (really_input_string ic len))

(* --- Query --- *)

let query ?taint ?node ?phase ?kind ?since_ns ?until_ns events =
  List.filter
    (fun (ev : Trace.event) ->
      (match taint with None -> true | Some t -> Trace.taint_of ev = Some t)
      && (match node with None -> true | Some n -> ev.node = Some n)
      && (match phase with
         | None -> true
         | Some p -> (
             match ev.kind with
             | Trace.Open q | Trace.Point q -> q = p
             | Trace.Close -> false))
      && (match kind with
         | None -> true
         | Some `Open -> ( match ev.kind with Trace.Open _ -> true | _ -> false)
         | Some `Close -> ev.kind = Trace.Close
         | Some `Point -> (
             match ev.kind with Trace.Point _ -> true | _ -> false))
      && (match since_ns with None -> true | Some s -> ev.t_ns >= s)
      && match until_ns with None -> true | Some u -> ev.t_ns <= u)
    events
