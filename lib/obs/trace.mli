(** Causal trace sink: the life of a trigger as structured events.

    JURY's argument is per-trigger: one tainted trigger τ fans out to a
    primary, k secondaries, the store fabric and the out-of-band
    validator. This module records that fan-out as spans (intervals
    with a parent) and points (instants within a span), so a verdict
    can be explained by its trace instead of by printf.

    A trace is a bounded ring buffer; once full, the oldest events are
    overwritten and counted in {!dropped}. Emission is append-only and
    consumes no randomness, so attaching a trace never perturbs a
    deterministic simulation. When the trace is disabled every
    emission returns after a single branch. *)

type span_id = int
(** Unique within one trace; 0 is the ambient scenario scope used by
    {!global_point}. *)

type phase =
  | Trigger  (** root span: the whole life of one tainted trigger *)
  | Intercept  (** trigger delivered to a controller by the replicator *)
  | Replicate  (** replica copy in flight towards a secondary *)
  | Pipeline_service  (** queued + serviced by a controller pipeline *)
  | Cache_write  (** store write / replicated apply *)
  | Net_write  (** message on the wire (FLOW_MOD egress, capture tap) *)
  | Validate  (** response delivered to the out-of-band validator *)
  | Batch
      (** a per-shard response batch handed to the validator in one
          call (only emitted when batched ingestion is enabled) *)
  | Verdict  (** the validator's decision *)

val phase_name : phase -> string
val phase_of_name : string -> phase option
val all_phases : phase list

type kind =
  | Open of phase  (** a span begins *)
  | Close  (** the span identified by [span] ends *)
  | Point of phase  (** instantaneous event inside a span *)

val kind_name : kind -> string

type event = {
  t_ns : int;  (** simulated nanoseconds since scenario start *)
  span : span_id;
  parent : span_id option;
  node : int option;  (** controller/store node id, when applicable *)
  kind : kind;
  attrs : (string * string) list;
}

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [create ()] makes an enabled trace holding up to [capacity]
    (default 65536) events. *)

val null : unit -> t
(** A tiny disabled trace; the default sink so emission sites never
    need an option. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int
val length : t -> int
val dropped : t -> int
(** Events overwritten because the ring was full. *)

val clear : t -> unit
(** Drops all events and forgets open spans. *)

val events : t -> event list
(** Oldest first; emission order, so [t_ns] is non-decreasing. *)

val open_root : t -> t_ns:int -> taint:string -> ?node:int ->
  (string * string) list -> span_id
(** Opens the root span for taint τ (kind [Open Trigger]); subsequent
    taint-keyed emissions attach to it. Returns 0 when disabled. *)

val root_of : t -> taint:string -> span_id option
(** The still-open root span for τ, if any. *)

val open_child : t -> t_ns:int -> taint:string -> phase:phase ->
  ?node:int -> (string * string) list -> span_id option
(** Opens a child span under τ's root; [None] when disabled or when no
    root is open for τ (e.g. internal taints that were never
    intercepted). *)

val close_span : t -> t_ns:int -> span_id -> (string * string) list -> unit
(** Emits [Close] for the span; a no-op for unknown or stale ids. *)

val close_root : t -> t_ns:int -> taint:string -> (string * string) list -> unit
(** Closes τ's root span and forgets the taint. *)

val point : t -> t_ns:int -> taint:string -> phase:phase -> ?node:int ->
  (string * string) list -> unit
(** Instantaneous event attached to τ's root span; dropped when no
    root is open. *)

val global_point : t -> t_ns:int -> phase:phase -> ?node:int ->
  (string * string) list -> unit
(** Instantaneous event in the ambient scope (span 0): data-plane taps
    and other emissions that cannot name a taint. *)

val taint_of : event -> string option
(** The ["taint"] attribute, stamped on every taint-keyed event. *)
