(** Span trees assembled from raw trace events.

    {!Trace} records a flat event stream; this module rebuilds the
    per-trigger tree — one root span per taint with child spans per
    replica/phase — and derives the per-phase latency breakdown and an
    ASCII timeline from it. *)

type t = {
  id : Trace.span_id;
  parent_id : Trace.span_id option;
  phase : Trace.phase;
  node : int option;
  taint : string option;
  opened_ns : int;
  mutable closed_ns : int option;  (** [None] while the span is open *)
  open_attrs : (string * string) list;
  mutable close_attrs : (string * string) list;
  mutable children : t list;  (** ordered by opening time *)
  mutable points : Trace.event list;  (** ordered by time *)
}

val assemble : Trace.event list -> t list
(** Root spans in opening order. Events for spans whose [Open] was
    overwritten in the ring are dropped. *)

val find : t list -> taint:string -> t option
(** First root span carrying the taint. *)

val duration_ns : t -> int option
(** [closed - opened], when closed. *)

val phase_breakdown_ms : t -> (Trace.phase * float) list
(** Summed child-span durations per phase, in milliseconds. The
    [Validate] entry is the stretch from the first response reaching
    the validator to the verdict (the out-of-band decision phase). *)

val critical_path : t -> t list
(** Children gating the root's close: at each level the child with the
    latest close time, descending. Empty for an open root. *)

val render_timeline : t -> string
(** ASCII timeline of one trigger: header with taint/trigger/verdict,
    one row per span and point with a proportional bar, and the
    per-phase breakdown. Rendered with {!Jury_stats.Table}. *)
