type span_id = int

type phase =
  | Trigger
  | Intercept
  | Replicate
  | Pipeline_service
  | Cache_write
  | Net_write
  | Validate
  | Batch
  | Verdict

let all_phases =
  [ Trigger; Intercept; Replicate; Pipeline_service; Cache_write; Net_write;
    Validate; Batch; Verdict ]

let phase_name = function
  | Trigger -> "trigger"
  | Intercept -> "intercept"
  | Replicate -> "replicate"
  | Pipeline_service -> "pipeline-service"
  | Cache_write -> "cache-write"
  | Net_write -> "net-write"
  | Validate -> "validate"
  | Batch -> "batch"
  | Verdict -> "verdict"

let phase_of_name = function
  | "trigger" -> Some Trigger
  | "intercept" -> Some Intercept
  | "replicate" -> Some Replicate
  | "pipeline-service" -> Some Pipeline_service
  | "cache-write" -> Some Cache_write
  | "net-write" -> Some Net_write
  | "validate" -> Some Validate
  | "batch" -> Some Batch
  | "verdict" -> Some Verdict
  | _ -> None

type kind = Open of phase | Close | Point of phase

let kind_name = function
  | Open _ -> "open"
  | Close -> "close"
  | Point _ -> "point"

type event = {
  t_ns : int;
  span : span_id;
  parent : span_id option;
  node : int option;
  kind : kind;
  attrs : (string * string) list;
}

let dummy_event =
  { t_ns = 0; span = 0; parent = None; node = None; kind = Close; attrs = [] }

type t = {
  mutable enabled : bool;
  buf : event array;  (* ring; [head] is the next write slot *)
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
  mutable next_span : int;
  roots : (string, span_id) Hashtbl.t;  (* taint -> open root span *)
  meta : (span_id, string * span_id option) Hashtbl.t;
      (* open span -> (taint, parent); lets Close events carry the
         taint and parent without the caller knowing either *)
}

let create ?(capacity = 65536) ?(enabled = true) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { enabled;
    buf = Array.make capacity dummy_event;
    head = 0;
    len = 0;
    dropped = 0;
    next_span = 1;
    roots = Hashtbl.create 64;
    meta = Hashtbl.create 64 }

let null () = create ~capacity:1 ~enabled:false ()

let enabled t = t.enabled
let set_enabled t e = t.enabled <- e
let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.roots;
  Hashtbl.reset t.meta

let push t ev =
  let cap = Array.length t.buf in
  t.buf.(t.head) <- ev;
  t.head <- (t.head + 1) mod cap;
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1

let events t =
  let cap = Array.length t.buf in
  let first = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i -> t.buf.((first + i) mod cap))

let taint_attr taint attrs = ("taint", taint) :: attrs

let open_root t ~t_ns ~taint ?node attrs =
  if not t.enabled then 0
  else begin
    let span = t.next_span in
    t.next_span <- span + 1;
    Hashtbl.replace t.roots taint span;
    Hashtbl.replace t.meta span (taint, None);
    push t
      { t_ns; span; parent = None; node; kind = Open Trigger;
        attrs = taint_attr taint attrs };
    span
  end

let root_of t ~taint = Hashtbl.find_opt t.roots taint

let open_child t ~t_ns ~taint ~phase ?node attrs =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.roots taint with
    | None -> None
    | Some root ->
        let span = t.next_span in
        t.next_span <- span + 1;
        Hashtbl.replace t.meta span (taint, Some root);
        push t
          { t_ns; span; parent = Some root; node; kind = Open phase;
            attrs = taint_attr taint attrs };
        Some span

let close_span t ~t_ns span attrs =
  if t.enabled then
    match Hashtbl.find_opt t.meta span with
    | None -> ()
    | Some (taint, parent) ->
        Hashtbl.remove t.meta span;
        push t
          { t_ns; span; parent; node = None; kind = Close;
            attrs = taint_attr taint attrs }

let close_root t ~t_ns ~taint attrs =
  if t.enabled then
    match Hashtbl.find_opt t.roots taint with
    | None -> ()
    | Some span ->
        Hashtbl.remove t.roots taint;
        close_span t ~t_ns span attrs

let point t ~t_ns ~taint ~phase ?node attrs =
  if t.enabled then
    match Hashtbl.find_opt t.roots taint with
    | None -> ()
    | Some root ->
        push t
          { t_ns; span = root; parent = None; node; kind = Point phase;
            attrs = taint_attr taint attrs }

let global_point t ~t_ns ~phase ?node attrs =
  if t.enabled then
    push t { t_ns; span = 0; parent = None; node; kind = Point phase; attrs }

let taint_of ev = List.assoc_opt "taint" ev.attrs
