(** Shared experiment environments: a JURY-enhanced (or vanilla)
    cluster on a canned topology, converged and with all hosts
    announced — the state every §VII experiment starts from. *)

type env = {
  engine : Jury_sim.Engine.t;
  network : Jury_net.Network.t;
  cluster : Jury_controller.Cluster.t;
  deployment : Jury.Deployment.t option;  (** [None] = vanilla cluster *)
  rng : Jury_sim.Rng.t;
}

val make :
  ?seed:int -> ?switches:int -> ?hosts_per_switch:int ->
  ?plan:Jury_topo.Builder.plan -> ?jury:Jury.Jury_config.t ->
  ?trace:Jury_obs.Trace.t ->
  profile:Jury_controller.Profile.t -> nodes:int -> unit -> env
(** Build, converge (LLDP discovery), join all hosts, and settle.
    Defaults: the paper's Mininet workload topology (linear, 24
    switches, 1 host each); pass [plan] for another topology. [jury]
    comes from {!Jury.Jury_config.make}; omit it for a vanilla cluster.
    [trace] is attached to the engine before anything runs. *)

val run_for : env -> Jury_sim.Time.t -> unit
(** Advance the simulation by the given span. *)

val validator : env -> Jury.Validator.t
(** Raises [Invalid_argument] on a vanilla environment. *)

val detection_times_since :
  env -> since:Jury_sim.Time.t -> float array
(** Detection times (ms) of verdicts decided after [since]. *)

val verdict_stats_since :
  env -> since:Jury_sim.Time.t -> int * int * int
(** (decided, faulty, unverifiable) counts after [since]. *)
