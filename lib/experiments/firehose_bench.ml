(* Firehose throughput bench: drive a bare validator (optionally
   staged over the domain pool) with a {!Jury_workload.Firehose}
   stream and measure sustained ingest and verdict throughput in
   wall-clock terms.

   The sweep runs its (jobs, shards) points sequentially — each point
   owns the machine, and a pipelined point spins consumer domains, so
   fanning points out would corrupt every wall-clock figure. Within a
   point the flow is the deployment's: registrations at arrival,
   responses accumulated into a 200 µs batch window, one
   [deliver_batch] per window tick, a final [flush] after the stream
   ends. Verdict counts must agree across every point of a profile —
   the job and shard counts are not allowed to be observable — and
   [sweep] records the serial point's count so the caller can check. *)

open Jury_sim
module Firehose = Jury_workload.Firehose
module Validator = Jury.Validator
module Response = Jury.Response
module Snapshot = Jury.Snapshot
module Types = Jury_controller.Types
module Event = Jury_store.Event
module Names = Jury_store.Cache_names

type row = {
  fh_profile : string;
  fh_jobs : int;
  fh_shards : int;
  fh_triggers : int;        (* arrivals registered *)
  fh_responses : int;       (* responses ingested *)
  fh_decided : int;
  fh_faults : int;
  fh_wall_s : float;
  fh_events_per_s : float;  (* (triggers + responses) / wall *)
  fh_verdicts_per_s : float;
  fh_domains_spawned : int; (* Pool.domains_spawned delta around the point *)
}

let run_point ?(seed = 11) ?(nodes = 5) ?(k = 2) ~profile ~duration ~jobs
    ~shards () =
  let engine = Engine.create ~seed () in
  let vcfg =
    Jury.Jury_config.validator
      ~ack_peers_of:(fun _ -> [])
      (Jury.Jury_config.make ~k ~shards ~timeout:(Time.ms 50)
         ~batch:(Time.us 200) ())
  in
  let v = Validator.create engine vcfg in
  if jobs > 1 then
    Jury.Stage.attach ~pool:(Jury_par.Pool.default ()) ~jobs vcfg v;
  let rng = Rng.create (seed lxor 0xf14e_05e) in
  let stream = Firehose.stream ~rng ~start:(Engine.now engine) profile in
  let stop = Time.add (Engine.now engine) duration in
  let window = Time.us 200 in
  let serial = ref 0 and responses = ref 0 in
  let batch_buf = ref [] in
  let others = List.init nodes Fun.id in
  let action key =
    Types.Cache_write
      { cache = Names.flowsdb; op = Event.Create; key; value = "v" }
  in
  (* Every responder shares the pristine snapshot, so state-aware
     consensus agrees; the primary additionally externalises its write
     as a FLOWSDB cache event (which a pipelined run mirrors across
     shards), completing the trigger before the timer unless the 2%
     omission probability starves the quorum into a timeout. *)
  let snapshot = Snapshot.pristine in
  let rec arm_arrival () =
    let ev = Firehose.next stream in
    if Time.(ev.Firehose.at <= stop) then
      ignore
        (Engine.schedule_at engine ~at:ev.Firehose.at (fun () ->
             let s = !serial in
             incr serial;
             let primary = s mod nodes in
             let taint = Types.Taint.external_trigger ~primary ~serial:s in
             let secondaries =
               Rng.sample_without_replacement rng
                 (min k (nodes - 1))
                 (List.filter (fun n -> n <> primary) others)
               |> List.sort compare
             in
             Validator.register_external v ~taint ~at:(Engine.now engine)
               ~primary ~secondaries;
             let key = ev.Firehose.flow_key in
             let push body =
               incr responses;
               batch_buf :=
                 { Response.controller = primary; taint; snapshot;
                   sent_at = Engine.now engine; term = 0; body }
                 :: !batch_buf
             in
             let respond controller role =
               if Rng.bernoulli rng 0.98 then begin
                 incr responses;
                 batch_buf :=
                   { Response.controller; taint; snapshot;
                     sent_at = Engine.now engine; term = 0;
                     body = Response.Execution { role; actions = [ action key ] } }
                   :: !batch_buf
               end;
               if role = `Primary then
                 push
                   (Response.Cache_update
                      { Event.cache = Names.flowsdb; op = Event.Create; key;
                        value = "v"; origin = primary; seq = s; taint = None })
             in
             respond primary `Primary;
             List.iter (fun sc -> respond sc `Secondary) secondaries;
             arm_arrival ()))
  in
  let rec batch_tick () =
    (match !batch_buf with
    | [] -> ()
    | rs ->
        Validator.deliver_batch v (List.rev rs);
        batch_buf := []);
    if Time.(Engine.now engine < stop) then
      ignore (Engine.schedule engine ~after:window (fun () -> batch_tick ()))
  in
  arm_arrival ();
  ignore (Engine.schedule engine ~after:window (fun () -> batch_tick ()));
  let domains0 = Jury_par.Pool.domains_spawned () in
  let t0 = Unix.gettimeofday () in
  (* Settle one timeout past the stream so stragglers decide. *)
  Engine.run engine ~until:(Time.add stop (Time.ms 60));
  Validator.flush v;
  let wall = Unix.gettimeofday () -. t0 in
  let decided = Validator.decided_count v in
  { fh_profile = profile.Firehose.name;
    fh_jobs = jobs;
    fh_shards = shards;
    fh_triggers = !serial;
    fh_responses = !responses;
    fh_decided = decided;
    fh_faults = Validator.fault_count v;
    fh_wall_s = wall;
    fh_events_per_s =
      (if wall > 0. then float_of_int (!serial + !responses) /. wall else 0.);
    fh_verdicts_per_s =
      (if wall > 0. then float_of_int decided /. wall else 0.);
    fh_domains_spawned = Jury_par.Pool.domains_spawned () - domains0 }

let default_points = [ (1, 1); (1, 4); (2, 2); (2, 4); (4, 4) ]

let sweep ?(seed = 11) ?(duration = Time.ms 400) ?(profile = Firehose.enterprise)
    ?(points = default_points) () =
  List.map
    (fun (jobs, shards) ->
      run_point ~seed ~profile ~duration ~jobs ~shards ())
    points
