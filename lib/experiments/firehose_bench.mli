(** Firehose throughput sweep: sustained events/sec and verdicts/sec of
    the validation path — serial and staged over the domain pool —
    under a {!Jury_workload.Firehose} stream.

    Each point builds a bare validator from the same configuration the
    deployment would use (200 µs batch window, 50 ms timeout), attaches
    the {!Jury.Stage} pipeline when [jobs > 1], replays the same
    deterministic arrival stream, and measures wall-clock around the
    simulation run plus final flush. Points run {e sequentially}: a
    pipelined point owns the machine's cores, so fanning points out
    would corrupt the wall-clock figures.

    The job and shard counts must not be observable in the verdicts:
    [fh_triggers], [fh_responses], [fh_decided] and [fh_faults] are
    equal across every point of a profile (the CLI's bench prints a
    MISMATCH marker if not). *)

type row = {
  fh_profile : string;
  fh_jobs : int;             (** intra-run pipeline jobs; 1 = serial *)
  fh_shards : int;
  fh_triggers : int;         (** arrivals registered *)
  fh_responses : int;        (** responses ingested (98% response rate) *)
  fh_decided : int;
  fh_faults : int;
  fh_wall_s : float;
  fh_events_per_s : float;   (** (triggers + responses) / wall *)
  fh_verdicts_per_s : float; (** decided / wall *)
  fh_domains_spawned : int;
      (** new domains spawned during the point — 0 once the pool's
          persistent workers exist (see {!Jury_par.Pool}) *)
}

val run_point :
  ?seed:int -> ?nodes:int -> ?k:int ->
  profile:Jury_workload.Firehose.profile ->
  duration:Jury_sim.Time.t -> jobs:int -> shards:int -> unit -> row
(** One (jobs, shards) measurement. [duration] is simulated stream
    time (default sweep uses 400 ms); [nodes] (default 5) and [k]
    (default 2) shape the responder set. *)

val default_points : (int * int) list
(** [(jobs, shards)]: [(1,1); (1,4); (2,2); (2,4); (4,4)]. *)

val sweep :
  ?seed:int -> ?duration:Jury_sim.Time.t ->
  ?profile:Jury_workload.Firehose.profile ->
  ?points:(int * int) list -> unit -> row list
(** The rows of {!default_points} (or [points]), in order. *)
