open Jury_sim
module Cdf = Jury_stats.Cdf
module Summary = Jury_stats.Summary
module Profile = Jury_controller.Profile
module Cluster = Jury_controller.Cluster
module Injector = Jury_faults.Injector
module Flows = Jury_workload.Flows
module Traces = Jury_workload.Traces
module Probe = Jury_workload.Probe

type cdf_series = {
  label : string;
  cdf : Cdf.t;
  samples : int;
  p50_ms : float;
  p95_ms : float;
}

type xy_series = { series_label : string; points : (float * float) list }

type detection_row = {
  scenario_name : string;
  klass : string;
  detected : int;
  repeats : int;
  mean_ms : float;
  expected : string;
}

(* Every sweep below fans its points out on a Jury_par pool: one task
   per sweep point, each task building its own engine/RNG/network, so
   the sweep result is byte-identical whatever the worker count (pass
   ~pool or set the ambient pool via --jobs / JURY_JOBS; jobs = 1 is
   plain serial execution). *)
let get_pool = function
  | Some pool -> pool
  | None -> Jury_par.Pool.default ()

let par ?pool xs f = Jury_par.Pool.map_ordered (get_pool pool) xs f

(* Regroup a flattened inner×outer sweep back into per-outer chunks of
   [n] results, in order. *)
let rec chunks n = function
  | [] -> []
  | xs ->
      let rec split i ys =
        if i = 0 then ([], ys)
        else
          match ys with
          | [] -> invalid_arg "Figures.chunks: result underflow"
          | y :: rest ->
              let a, b = split (i - 1) rest in
              (y :: a, b)
      in
      let mine, others = split n xs in
      mine :: chunks n others

let cdf_series_of ~label samples =
  if Array.length samples = 0 then
    { label; cdf = Cdf.of_samples [||]; samples = 0; p50_ms = 0.; p95_ms = 0. }
  else
    { label;
      cdf = Cdf.of_samples samples;
      samples = Array.length samples;
      p50_ms = Summary.percentile samples 0.5;
      p95_ms = Summary.percentile samples 0.95 }

let mark_faulty env nodes =
  (* Timing-faulty replicas: consistently slow, occasionally silent. *)
  List.iter
    (fun node ->
      Injector.make_slow env.Setup.cluster ~node ~delay:(Time.ms 25);
      Injector.make_lossy env.Setup.cluster ~node ~omit_probability:0.05)
    nodes

(* --- Fig. 4a --- *)

let detection_run ~seed ~profile ~k ~m ~rate ~duration ~encapsulation =
  let env =
    Setup.make ~seed
      ~jury:(Jury.Jury_config.make ~k ~encapsulation ())
      ~profile ~nodes:7 ()
  in
  let faulty = List.init m (fun i -> 2 + i) in
  mark_faulty env faulty;
  let t0 = Engine.now env.Setup.engine in
  Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
    ~packet_in_rate:rate ~duration;
  Setup.run_for env (Time.add duration (Time.sec 2));
  Setup.detection_times_since env ~since:t0

let detection_run_exposed ~seed ~k ~m ~rate ~duration =
  detection_run ~seed ~profile:Profile.onos ~k ~m ~rate ~duration
    ~encapsulation:false

let detection_phase_cdfs ?(seed = 42) ?(duration = Time.sec 5)
    ?(rate = 3000.) () =
  (* Same setting as Fig. 4a's k=6 series, but with the causal trace
     attached: each verdict's end-to-end time decomposes into per-phase
     child-span durations, so we can see where detection time goes. *)
  let trace = Jury_obs.Trace.create ~capacity:1_000_000 () in
  let env =
    Setup.make ~seed ~trace
      ~jury:(Jury.Jury_config.make ~k:6 ())
      ~profile:Profile.onos ~nodes:7 ()
  in
  mark_faulty env [ 2 ];
  Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
    ~packet_in_rate:rate ~duration;
  Setup.run_for env (Time.add duration (Time.sec 2));
  let metrics = Jury_sim.Metrics.create () in
  Jury.Obs_bridge.record_phase_series trace metrics;
  Jury_sim.Metrics.series_names metrics
  |> List.sort String.compare
  |> List.filter_map (fun name ->
         let samples = Jury_sim.Metrics.samples metrics name in
         if Array.length samples = 0 then None
         else Some (cdf_series_of ~label:name samples))

let fig4a ?pool ?(seed = 42) ?(duration = Time.sec 10) ?(rate = 5500.) () =
  (* One seed across configurations: every series sees the same
     workload realisation, so the curves differ only by (k, m). *)
  par ?pool
    [ (2, 0); (4, 0); (6, 0); (6, 2) ]
    (fun (k, m) ->
      let samples =
        detection_run ~seed ~profile:Profile.onos ~k ~m ~rate ~duration
          ~encapsulation:false
      in
      cdf_series_of ~label:(Printf.sprintf "k=%d, m=%d" k m) samples)

let fig4b ?pool ?(seed = 43) ?(duration = Time.sec 10)
    ?(rates = [ 500.; 3000.; 5500. ]) () =
  par ?pool rates (fun rate ->
      let samples =
        detection_run ~seed:(seed + int_of_float rate) ~profile:Profile.onos
          ~k:6 ~m:0 ~rate ~duration ~encapsulation:false
      in
      cdf_series_of
        ~label:(Printf.sprintf "%.0f PacketIns/sec" rate)
        samples)

let fig4c ?pool ?(seed = 44) ?(duration = Time.sec 10) ?(rate = 500.) () =
  par ?pool
    [ (2, 0); (4, 0); (6, 0); (6, 2) ]
    (fun (k, m) ->
      let samples =
        detection_run ~seed ~profile:Profile.odl ~k ~m ~rate ~duration
          ~encapsulation:true
      in
      cdf_series_of ~label:(Printf.sprintf "k=%d, m=%d" k m) samples)

let fig4d ?pool ?(seed = 45) ?(duration = Time.sec 10) () =
  let faulty_nodes = [ 2; 3 ] in
  par ?pool Traces.all
    (fun (profile : Traces.profile) ->
      let env =
        Setup.make ~seed:(seed + String.length profile.Traces.name)
          ~jury:(Jury.Jury_config.make ~k:6 ())
          ~profile:Profile.onos ~nodes:7 ()
      in
      mark_faulty env faulty_nodes;
      let t0 = Engine.now env.Setup.engine in
      Traces.replay env.Setup.network ~rng:env.Setup.rng ~profile ~duration;
      Setup.run_for env (Time.add duration (Time.sec 2));
      let samples = Setup.detection_times_since env ~since:t0 in
      let decided, _, _ = Setup.verdict_stats_since env ~since:t0 in
      (* False positives are alarms blaming a *healthy* controller:
         alarms that (correctly) implicate the two timing-faulty
         replicas are true positives. *)
      let false_alarms =
        Jury.Validator.alarms (Setup.validator env)
        |> List.filter (fun (a : Jury.Alarm.t) ->
               Time.(a.Jury.Alarm.decided_at >= t0)
               && not
                    (List.exists
                       (fun s -> List.mem s faulty_nodes)
                       a.Jury.Alarm.suspects))
        |> List.length
      in
      let fp_rate =
        if decided = 0 then 0.
        else float_of_int false_alarms /. float_of_int decided
      in
      (cdf_series_of ~label:profile.Traces.name samples, fp_rate))

let detection_matrix ?pool ?(seed = 46) ?(repeats = 10) () =
  Jury_faults.Runner.run_matrix ?pool ~seed ~repeats ~seed_stride:13
    ~switches:12 ~extra_slow:[ 5 ] Jury_faults.Scenarios.all
  |> List.map (fun ((scenario : Jury_faults.Scenarios.t), outcomes) ->
      let detected = List.filter (fun r -> r.Jury_faults.Runner.detected) outcomes in
      let times =
        List.filter_map (fun r -> r.Jury_faults.Runner.detection_time_ms)
          detected
      in
      { scenario_name = scenario.Jury_faults.Scenarios.name;
        klass =
          (match scenario.Jury_faults.Scenarios.klass with
          | `T1 -> "T1"
          | `T2 -> "T2"
          | `T3 -> "T3");
        detected = List.length detected;
        repeats;
        mean_ms =
          (if times = [] then 0.
           else List.fold_left ( +. ) 0. times /. float_of_int (List.length times));
        expected = scenario.Jury_faults.Scenarios.expected_name })

(* --- Fig. 4e: Cbench blast --- *)

let fig4e ?(seed = 47) ?(duration = Time.sec 50) () =
  let env =
    Setup.make ~seed ~switches:14 ~hosts_per_switch:2 ~profile:Profile.onos
      ~nodes:7 ()
  in
  let dpid = Jury_openflow.Of_types.Dpid.of_int 1 in
  let probe =
    Probe.start env.Setup.network ~window_sec:1.0
      ~duration:(Time.add duration (Time.sec 1)) ()
  in
  Jury_workload.Cbench.blast env.Setup.network ~rng:env.Setup.rng ~dpid
    ~burst:Jury_workload.Cbench.default_burst
    ~burst_gap:Jury_workload.Cbench.default_gap ~duration;
  Setup.run_for env (Time.add duration (Time.sec 2));
  let pi = Jury_stats.Rate.series (Probe.packet_in probe) in
  let fm = Jury_stats.Rate.series (Probe.flow_mod probe) in
  let fm_at t =
    match Array.find_opt (fun (t', _) -> t' = t) fm with
    | Some (_, r) -> r
    | None -> 0.
  in
  Array.to_list (Array.map (fun (t, r) -> (t, r, fm_at t)) pi)

(* --- Throughput sweeps (Fig. 4f/4g/4h) --- *)

let throughput_point ~seed ~profile ~nodes ~jury ~rate ~duration =
  let env =
    Setup.make ~seed ~switches:14 ~hosts_per_switch:2 ?jury ~profile ~nodes ()
  in
  let warmup = Time.ms 500 in
  Setup.run_for env warmup;
  let probe =
    Probe.start env.Setup.network ~window_sec:0.5 ~duration ()
  in
  Flows.new_connections env.Setup.network ~rng:env.Setup.rng ~rate ~duration
    ~mode:Flows.Same_switch ();
  Setup.run_for env (Time.add duration (Time.sec 1));
  Probe.mean_flow_mod_rate probe

(* The nested nodes×rates (or configs×rates) sweeps flatten to one task
   list so every cell — not just every series — is its own pool task,
   then chunk back into per-series point lists. *)
let fig4f ?pool ?(seed = 48) ?(duration = Time.sec 3)
    ?(rates = [ 1000.; 2500.; 4000.; 5500.; 7000.; 8500.; 10000. ])
    ?(nodes_list = [ 1; 3; 5; 7 ]) () =
  let cells =
    List.concat_map
      (fun nodes -> List.map (fun rate -> (nodes, rate)) rates)
      nodes_list
  in
  let values =
    par ?pool cells (fun (nodes, rate) ->
        throughput_point ~seed:(seed + nodes) ~profile:Profile.onos ~nodes
          ~jury:None ~rate ~duration)
  in
  List.map2
    (fun nodes vals ->
      { series_label = Printf.sprintf "n = %d" nodes;
        points = List.combine rates vals })
    nodes_list
    (chunks (List.length rates) values)

let fig4g ?pool ?(seed = 49) ?(duration = Time.sec 3)
    ?(rates = [ 200.; 400.; 600.; 800.; 1000. ]) ?(nodes_list = [ 1; 3; 5; 7 ])
    () =
  let cells =
    List.concat_map
      (fun nodes -> List.map (fun rate -> (nodes, rate)) rates)
      nodes_list
  in
  let values =
    par ?pool cells (fun (nodes, rate) ->
        throughput_point ~seed:(seed + nodes) ~profile:Profile.odl ~nodes
          ~jury:None ~rate ~duration)
  in
  List.map2
    (fun nodes vals ->
      { series_label = Printf.sprintf "n = %d" nodes;
        points = List.combine rates vals })
    nodes_list
    (chunks (List.length rates) values)

let fig4h ?pool ?(seed = 50) ?(duration = Time.sec 3)
    ?(rates = [ 1000.; 2500.; 4000.; 5500.; 7000.; 8500.; 10000. ]) () =
  let configs =
    (None, "Without Jury, n = 7")
    :: List.map
         (fun k ->
           ( Some (Jury.Jury_config.make ~k ()),
             Printf.sprintf "Jury, n = 7, k = %d" k ))
         [ 2; 4; 6 ]
  in
  let cells =
    List.concat_map
      (fun (jury, label) -> List.map (fun rate -> (jury, label, rate)) rates)
      configs
  in
  let values =
    par ?pool cells (fun (jury, _, rate) ->
        throughput_point ~seed ~profile:Profile.onos ~nodes:7 ~jury ~rate
          ~duration)
  in
  List.map2
    (fun (_, series_label) vals ->
      { series_label; points = List.combine rates vals })
    configs
    (chunks (List.length rates) values)

let fig4i ?pool ?(seed = 51) ?(duration = Time.sec 5)
    ?(rates = [ 100.; 200.; 300.; 400.; 500. ]) () =
  par ?pool rates (fun rate ->
      let env =
        Setup.make ~seed:(seed + int_of_float rate)
          ~jury:(Jury.Jury_config.make ~k:6 ~encapsulation:true ())
          ~profile:Profile.odl ~nodes:7 ()
      in
      let deployment = Option.get env.Setup.deployment in
      Jury.Deployment.reset_accounting deployment;
      Flows.new_connections env.Setup.network ~rng:env.Setup.rng ~rate
        ~duration ~mode:Flows.Any_pair ();
      Setup.run_for env (Time.add duration (Time.sec 1));
      cdf_series_of
        ~label:(Printf.sprintf "%.0f messages/sec" rate)
        (Jury.Deployment.decap_samples_us deployment))

(* --- Three-profile comparison: Fig. 4 detection/throughput across
   controller flavours, including the standalone Ryu-style profile --- *)

type profile_row = {
  pr_name : string;
  pr_clustered : bool;
  pr_rate : float;          (* PacketIns/sec the profile is driven at *)
  pr_detection : cdf_series;
  pr_base_fm_rate : float;  (* FLOW_MODs/sec without JURY *)
  pr_jury_fm_rate : float;  (* FLOW_MODs/sec with JURY, k = 6 *)
  pr_overhead_pct : float;
}

(* Each profile is driven at a rate matched to its service model: the
   clustered ONOS pipeline sustains Fig. 4's 5.5K pps, ODL is measured
   at its paper rate of 500 pps, and the single-threaded standalone
   Ryu instance (every switch is mastered by the one leader) at
   800 pps. *)
let profile_specs =
  [ (Profile.onos, 5500.); (Profile.odl, 500.); (Profile.ryu, 800.) ]

let profile_comparison ?pool ?(seed = 60) ?(duration = Time.sec 5) ?names ()
    =
  let specs =
    match names with
    | None -> profile_specs
    | Some names ->
        List.filter
          (fun ((p : Profile.t), _) -> List.mem p.Profile.name names)
          profile_specs
  in
  par ?pool specs (fun (profile, rate) ->
      let encapsulation =
        profile.Profile.decapsulation_cost_median_us > 0.
      in
      let detection =
        detection_run ~seed ~profile ~k:6 ~m:1 ~rate ~duration ~encapsulation
      in
      let base =
        throughput_point ~seed ~profile ~nodes:7 ~jury:None ~rate ~duration
      in
      let jury =
        throughput_point ~seed ~profile ~nodes:7
          ~jury:(Some (Jury.Jury_config.make ~k:6 ~encapsulation ()))
          ~rate ~duration
      in
      { pr_name = profile.Profile.name;
        pr_clustered = profile.Profile.clustered;
        pr_rate = rate;
        pr_detection = cdf_series_of ~label:profile.Profile.name detection;
        pr_base_fm_rate = base;
        pr_jury_fm_rate = jury;
        pr_overhead_pct =
          (if base > 0. then (base -. jury) /. base *. 100. else 0.) })

(* --- §VII-B2(1): network overheads --- *)

type overhead_row = {
  config : string;
  store_mbps : float;
  jury_mbps : float;
  chatter_mbps : float;
  jury_fraction : float;
}

let mbps bytes seconds = 8. *. float_of_int bytes /. 1e6 /. seconds

let overhead_run ~seed ~profile ~k ~rate ~duration ~encapsulation ~config =
  let env =
    Setup.make ~seed
      ~jury:(Jury.Jury_config.make ~k ~encapsulation ())
      ~profile ~nodes:7 ()
  in
  let deployment = Option.get env.Setup.deployment in
  let fabric = Cluster.fabric env.Setup.cluster in
  Jury_store.Fabric.reset_accounting fabric;
  Jury.Deployment.reset_accounting deployment;
  Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
    ~packet_in_rate:rate ~duration;
  Setup.run_for env duration;
  let secs = Time.to_float_sec duration in
  let store = mbps (Jury_store.Fabric.bytes_replicated fabric) secs in
  let jury =
    mbps
      (Jury.Deployment.replication_bytes deployment
      + Jury.Deployment.validator_bytes deployment)
      secs
  in
  let chatter = mbps (Jury.Deployment.chatter_bytes deployment) secs in
  { config;
    store_mbps = store;
    jury_mbps = jury;
    chatter_mbps = chatter;
    jury_fraction = (if store +. jury > 0. then jury /. (store +. jury) else 0.) }

let overhead ?pool ?(seed = 52) ?(duration = Time.sec 5) () =
  par ?pool
    [ `Onos 2; `Onos 4; `Onos 6; `Odl ]
    (function
      | `Onos k ->
          overhead_run ~seed:(seed + k) ~profile:Profile.onos ~k ~rate:5500.
            ~duration ~encapsulation:false
            ~config:(Printf.sprintf "ONOS 5.5K pps, k=%d" k)
      | `Odl ->
          overhead_run ~seed:(seed + 60) ~profile:Profile.odl ~k:6 ~rate:500.
            ~duration ~encapsulation:true ~config:"ODL 500 pps, k=6")

(* --- §VII-B2(3): policy validation scaling --- *)

let policy_scaling ?(iterations = 2000) ?(sizes = [ 100; 500; 1000; 5000; 10000 ])
    () =
  let make_engine n =
    (* Rules that all must be scanned: non-matching key globs on the
       queried cache, so the check walks the whole set (worst case). *)
    let rules =
      List.init n (fun i ->
          Jury_policy.Ast.rule
            ~name:(Printf.sprintf "p%d" i)
            ~cache:Jury_store.Cache_names.flowsdb
            ~entry:
              (Jury_policy.Ast.Entry_glob
                 { key = Jury_policy.Pattern.compile
                     (Printf.sprintf "never-%d-*" i);
                   value = Jury_policy.Pattern.compile "*" })
            ())
    in
    Jury_policy.Engine.create rules
  in
  let query =
    { Jury_policy.Ast.q_controller = 3;
      q_trigger = `External;
      q_cache = Jury_store.Cache_names.flowsdb;
      q_op = Jury_store.Event.Create;
      q_key = "a1b2c3d4/deadbeefdeadbeefdeadbeefdeadbeef";
      q_value = String.make 160 'f';
      q_destination = `Local }
  in
  List.map
    (fun n ->
      let engine = make_engine n in
      (* Warm up, then measure. *)
      for _ = 1 to 50 do
        ignore (Jury_policy.Engine.check engine query)
      done;
      let t0 = Sys.time () in
      for _ = 1 to iterations do
        ignore (Jury_policy.Engine.check engine query)
      done;
      let dt = Sys.time () -. t0 in
      (n, dt /. float_of_int iterations *. 1e6))
    sizes

let packet_out_peak () =
  1e6 /. Time.to_float_us Profile.onos.Profile.packet_out_service

(* --- Ablations --- *)

let ablation_state_aware ?pool ?(seed = 53) ?(duration = Time.sec 8)
    ?(rate = 3000.) () =
  par ?pool
    [ (true, "state-aware"); (false, "naive-majority") ]
    (fun (state_aware, mode) ->
      let env =
        Setup.make ~seed
          ~jury:(Jury.Jury_config.make ~k:4 ~state_aware ())
          ~profile:Profile.onos ~nodes:7 ()
      in
      let t0 = Engine.now env.Setup.engine in
      Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
        ~packet_in_rate:rate ~duration;
      Setup.run_for env (Time.add duration (Time.sec 2));
      let decided, faults, unverifiable =
        Setup.verdict_stats_since env ~since:t0
      in
      (mode, decided, faults, unverifiable))

let ablation_timeout ?pool ?(seed = 54) ?(duration = Time.sec 8)
    ?(timeouts_ms = [ 25; 50; 100; 150; 300; 600 ]) () =
  par ?pool timeouts_ms (fun timeout_ms ->
      let env =
        Setup.make ~seed
          ~jury:(Jury.Jury_config.make ~k:6 ~timeout:(Time.ms timeout_ms) ())
          ~profile:Profile.onos ~nodes:7 ()
      in
      let t0 = Engine.now env.Setup.engine in
      Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
        ~packet_in_rate:3000. ~duration;
      Setup.run_for env (Time.add duration (Time.sec 2));
      let decided, faults, _ = Setup.verdict_stats_since env ~since:t0 in
      let samples = Setup.detection_times_since env ~since:t0 in
      let fp =
        if decided = 0 then 0. else float_of_int faults /. float_of_int decided
      in
      let p95 =
        if Array.length samples = 0 then 0. else Summary.percentile samples 0.95
      in
      (timeout_ms, fp, p95))

let ablation_adaptive_timeout ?pool ?(seed = 56) ?(duration = Time.sec 8) () =
  (* Bursty benign traffic (the SMIA profile has the heaviest tail)
     under three theta-tau regimes: a conservative fixed 500 ms (no
     false alarms, slow omission detection), an aggressive fixed 60 ms
     (fast but noisy), and the RTO-style adaptive estimator, which
     should track close to the aggressive setting's speed at close to
     the conservative setting's false-alarm rate — the SVIII-1
     trade-off. *)
  par ?pool
    [ (false, Time.ms 500, "fixed-500ms");
      (false, Time.ms 60, "fixed-60ms");
      (true, Time.ms 500, "adaptive") ]
    (fun (adaptive, timeout, label) ->
      let env =
        Setup.make ~seed
          ~jury:
            (Jury.Jury_config.make ~k:4 ~timeout
               ~adaptive_timeout:adaptive ())
          ~profile:Profile.onos ~nodes:7 ()
      in
      let t0 = Engine.now env.Setup.engine in
      Jury_workload.Traces.replay env.Setup.network ~rng:env.Setup.rng
        ~profile:Jury_workload.Traces.smia ~duration;
      Setup.run_for env (Time.add duration (Time.sec 2));
      let decided, faults, _ = Setup.verdict_stats_since env ~since:t0 in
      let samples = Setup.detection_times_since env ~since:t0 in
      let p95 =
        if Array.length samples = 0 then 0. else Summary.percentile samples 0.95
      in
      let theta =
        Time.to_float_ms
          (Jury.Validator.current_timeout_value (Setup.validator env))
      in
      (label, decided, faults, p95, theta))

let ablation_nondeterminism ?pool ?(seed = 57) ?(duration = Time.sec 5) () =
  (* An ECMP forwarding app picks random equal-cost next hops, so
     replicated executions legitimately diverge on the dual-homed
     three-tier testbed topology. The all-distinct rule (SIV-C B) only
     excuses triggers where every response differs — with 2-way ECMP
     and k+1 > 2 responses, duplicates are inevitable and the majority
     vote misfires, exactly the false-positive exposure the paper
     admits it cannot fully solve (SVIII-2). The deterministic baseline
     shows the same workload is clean without ECMP. *)
  par ?pool
    [ (Profile.onos, true, "deterministic baseline");
      (Profile.onos_ecmp, true, "ecmp, nondet-rule-on");
      (Profile.onos_ecmp, false, "ecmp, nondet-rule-off") ]
    (fun (profile, nondet_rule, label) ->
      let plan = Jury_topo.Builder.three_tier ~hosts_per_edge:2 () in
      let env =
        Setup.make ~seed ~plan
          ~jury:(Jury.Jury_config.make ~k:4 ~nondet_rule ())
          ~profile ~nodes:7 ()
      in
      let t0 = Engine.now env.Setup.engine in
      Flows.new_connections env.Setup.network ~rng:env.Setup.rng ~rate:300.
        ~duration ~mode:Flows.Any_pair ();
      Setup.run_for env (Time.add duration (Time.sec 2));
      let decided, faults, _ = Setup.verdict_stats_since env ~since:t0 in
      let nondet_ok =
        Jury.Validator.verdicts (Setup.validator env)
        |> List.filter (fun (a : Jury.Alarm.t) ->
               a.Jury.Alarm.verdict = Jury.Alarm.Ok_non_deterministic)
        |> List.length
      in
      (label, decided, faults, nondet_ok))

(* --- Lossy-channel study: detection quality when the replication and
   response-collection links drop, duplicate and reorder messages. --- *)

type channel_row = {
  mode : string;
  c_decided : int;
  c_timeout_alarms : int;  (* verdicts carrying a response-timeout fault *)
  c_unverifiable : int;
  c_degraded : int;
  c_retransmits : int;
  c_channel : Jury.Channel.stats;  (* summed over every link *)
  c_detection : cdf_series;
}

let lossy_channel ?pool ?(seed = 58) ?(duration = Time.sec 5) ?(rate = 3000.)
    ?(drop = 0.1) () =
  (* Benign ONOS k=2 workload, one seed for all three modes. "clean"
     is the seed baseline; "lossy" shows how many spurious
     response-timeout / unverifiable verdicts a lossy channel induces;
     "lossy+retx" adds bounded retransmission and degraded-quorum
     decisions, which should claw most of them back. *)
  let run ~mode ~channel ~retransmit ~degraded_quorum =
    let env =
      Setup.make ~seed
        ~jury:
          (Jury.Jury_config.make ~k:2 ~channel ?retransmit ?degraded_quorum
             ())
        ~profile:Profile.onos ~nodes:7 ()
    in
    let t0 = Engine.now env.Setup.engine in
    Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
      ~packet_in_rate:rate ~duration;
    Setup.run_for env (Time.add duration (Time.sec 2));
    let validator = Setup.validator env in
    let verdicts =
      Jury.Validator.verdicts validator
      |> List.filter (fun (a : Jury.Alarm.t) ->
             Time.(a.Jury.Alarm.decided_at >= t0))
    in
    let count pred = List.length (List.filter pred verdicts) in
    let deployment = Option.get env.Setup.deployment in
    { mode;
      c_decided = List.length verdicts;
      c_timeout_alarms =
        count (fun (a : Jury.Alarm.t) ->
            match a.Jury.Alarm.verdict with
            | Jury.Alarm.Faulty fs ->
                List.mem Jury.Alarm.Response_timeout fs
            | _ -> false);
      c_unverifiable =
        count (fun a ->
            a.Jury.Alarm.verdict = Jury.Alarm.Ok_unverifiable);
      c_degraded =
        count (fun a -> a.Jury.Alarm.verdict = Jury.Alarm.Ok_degraded);
      c_retransmits = Jury.Validator.retransmit_count validator;
      c_channel = Jury.Deployment.channel_totals deployment;
      c_detection =
        cdf_series_of ~label:mode (Setup.detection_times_since env ~since:t0) }
  in
  let lossy =
    Jury.Channel.lossy ~drop ~duplicate:0.02 ~jitter_us:150. ()
  in
  par ?pool
    [ ("clean", Jury.Channel.reliable, None, None);
      ("lossy", lossy, None, None);
      ( "lossy+retx",
        lossy,
        Some (Jury.Jury_config.retransmit ()),
        Some 2 ) ]
    (fun (mode, channel, retransmit, degraded_quorum) ->
      run ~mode ~channel ~retransmit ~degraded_quorum)

let ablation_secondary_selection ?pool ?(seed = 55) ?(repeats = 10) () =
  (* With random per-trigger secondaries every replica eventually
     cross-checks the faulty one; with a static peer set a fault at a
     node outside anyone's peer set can only be caught when it acts as
     primary. We measure detections of a consensus fault either way.
     Both modes × all repeats flatten to one task list. *)
  let modes = [ (true, "random-per-trigger"); (false, "static-peers") ] in
  let cells =
    List.concat_map
      (fun (random, label) ->
        List.init repeats (fun i -> (random, label, i)))
      modes
  in
  let reports =
    par ?pool cells (fun (random, _, i) ->
        Jury_faults.Runner.run
          ~seed:(seed + (17 * i))
          ~switches:12 ~k:2 ~random_secondaries:random
          Jury_faults.Scenarios.link_failure)
  in
  List.map2
    (fun (_, label) outcomes ->
      let detected =
        List.length
          (List.filter (fun r -> r.Jury_faults.Runner.detected) outcomes)
      in
      (label, detected, repeats))
    modes
    (chunks repeats reports)

(* --- Validator scaling: trigger rate x shard count --- *)

type scale_row = {
  vs_rate : float;
  vs_shards : int;
  vs_decided : int;
  vs_overloads : int;
  vs_batches : int;
  vs_batched_responses : int;
  vs_shard_batches : int list;
  vs_wall_s : float;
  vs_verdicts_per_s : float;
}

let validator_scale ?pool ?(seed = 59) ?(duration = Time.sec 3)
    ?(rates = [ 1000.; 3000. ]) ?(shard_counts = [ 1; 2; 4 ]) ?max_inflight
    ?(batch = Time.us 200) () =
  let cells =
    List.concat_map
      (fun rate -> List.map (fun shards -> (rate, shards)) shard_counts)
      rates
  in
  par ?pool cells (fun (rate, shards) ->
      let t_start = Sys.time () in
      let env =
        Setup.make
          ~seed:(seed + int_of_float rate)
          ~jury:(Jury.Jury_config.make ~k:2 ~shards ?max_inflight ~batch ())
          ~profile:Profile.onos ~nodes:7 ()
      in
      let t0 = Engine.now env.Setup.engine in
      Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
        ~packet_in_rate:rate ~duration;
      Setup.run_for env (Time.add duration (Time.sec 2));
      let wall = Sys.time () -. t_start in
      let v = Setup.validator env in
      let decided, _, _ = Setup.verdict_stats_since env ~since:t0 in
      { vs_rate = rate;
        vs_shards = Jury.Validator.shard_count v;
        vs_decided = decided;
        vs_overloads = Jury.Validator.overload_count v;
        vs_batches = Jury.Validator.batch_count v;
        vs_batched_responses = Jury.Validator.batched_response_count v;
        vs_shard_batches =
          List.map
            (fun (s : Jury.Validator.shard_stats) ->
              s.Jury.Validator.shard_batches)
            (Jury.Validator.shard_stats v);
        vs_wall_s = wall;
        vs_verdicts_per_s =
          (if wall > 0. then float_of_int decided /. wall else 0.) })
