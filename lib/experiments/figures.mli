(** One function per table/figure of the paper's evaluation (§VII).

    Every function builds its own environment(s), drives the workload,
    and returns the series the paper plots. Durations default to a few
    simulated seconds so the whole suite runs in minutes; pass
    [~duration] to reproduce the paper's full 60 s runs.

    Every multi-point sweep fans its points out on a {!Jury_par.Pool}
    (the ambient {!Jury_par.Pool.default} unless [?pool] is given): one
    task per sweep point, each task building its own engine, RNG and
    network, so a sweep's result is byte-identical whatever the worker
    count. [fig4e] (single run) and [policy_scaling] (wall-clock
    micro-measurement) stay serial by design. *)

module Cdf = Jury_stats.Cdf

type cdf_series = {
  label : string;
  cdf : Cdf.t;
  samples : int;
  p50_ms : float;
  p95_ms : float;
}

type xy_series = { series_label : string; points : (float * float) list }

type detection_row = {
  scenario_name : string;
  klass : string;
  detected : int;
  repeats : int;
  mean_ms : float;  (** mean detection time over detected runs *)
  expected : string;
}

(** {1 Accuracy (§VII-A)} *)

val detection_run_exposed :
  seed:int -> k:int -> m:int -> rate:float -> duration:Jury_sim.Time.t ->
  float array
(** One ONOS detection-time run (used by tests and profiling). *)

val fig4a :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rate:float -> unit ->
  cdf_series list
(** ONOS detection-time CDFs for (k=2,m=0), (4,0), (6,0), (6,2). *)

val detection_phase_cdfs :
  ?seed:int -> ?duration:Jury_sim.Time.t -> ?rate:float -> unit ->
  cdf_series list
(** Per-phase latency CDFs (ms) for the Fig. 4a k=6 setting, derived
    from the causal trace via {!Jury.Obs_bridge}: one series per span
    phase (["span/replicate"], ["span/pipeline-service"], ...) plus
    ["span/total"] end-to-end. *)

val fig4b :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rates:float list -> unit ->
  cdf_series list
(** ONOS detection CDFs at 500 / 3000 / 5500 PACKET_IN/s, k=6, m=0. *)

val fig4c :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rate:float -> unit ->
  cdf_series list
(** ODL detection CDFs, same (k, m) grid as Fig. 4a, 500 pps. *)

val fig4d :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> unit ->
  (cdf_series * float) list
(** Benign-trace detection CDFs (LBNL/UNIV/SMIA) with k=6, m=2, and the
    per-trace false-positive rate. *)

val detection_matrix :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?repeats:int -> unit -> detection_row list
(** §VII-A1: every fault scenario injected [repeats] times (paper: 10),
    n=7, k=6, m=2. *)

(** {1 Performance (§VII-B)} *)

val fig4e :
  ?seed:int -> ?duration:Jury_sim.Time.t -> unit ->
  (float * float * float) list
(** Cbench blast vs one ONOS node: (time s, PACKET_IN/s, FLOW_MOD/s)
    per window. *)

val fig4f :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rates:float list ->
  ?nodes_list:int list -> unit -> xy_series list
(** Vanilla ONOS FLOW_MOD vs PACKET_IN rate for n = 1/3/5/7. *)

val fig4g :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rates:float list ->
  ?nodes_list:int list -> unit -> xy_series list
(** Vanilla ODL, same sweep at ODL-scale rates. *)

val fig4h :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rates:float list -> unit ->
  xy_series list
(** ONOS n=7: vanilla vs JURY k=2/4/6. *)

val fig4i :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rates:float list -> unit ->
  cdf_series list
(** ODL decapsulation-cost CDFs (µs) at 100–500 pps, n=7, k=6. *)

type profile_row = {
  pr_name : string;          (** profile name: onos / odl / ryu *)
  pr_clustered : bool;       (** false = standalone validation mode *)
  pr_rate : float;           (** PacketIns/sec the profile is driven at *)
  pr_detection : cdf_series; (** detection-time CDF, k = 6, m = 1 *)
  pr_base_fm_rate : float;   (** FLOW_MODs/sec without JURY *)
  pr_jury_fm_rate : float;   (** FLOW_MODs/sec with JURY, k = 6 *)
  pr_overhead_pct : float;   (** throughput cost of JURY, percent *)
}

val profile_comparison :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t ->
  ?names:string list -> unit -> profile_row list
(** Fig. 4-style detection and throughput for all three controller
    profiles side by side — clustered ONOS at 5.5 K pps, clustered ODL
    (encapsulated replication) at 500 pps, and the standalone Ryu-style
    profile at 800 pps, where JURY runs in standalone validation mode:
    the action stream is replicated across independent instances and
    consensus is state-blind response voting. One row per profile;
    [names] restricts the run to the named profiles (the bench uses
    this to time each profile as its own experiment). *)

type overhead_row = {
  config : string;
  store_mbps : float;      (** inter-controller store replication *)
  jury_mbps : float;       (** replicated triggers + validator traffic *)
  chatter_mbps : float;    (** secondary→primary mastership chatter *)
  jury_fraction : float;   (** jury bytes / total bytes *)
}

val overhead :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> unit -> overhead_row list
(** §VII-B2(1): byte accounting for ONOS at 5.5 K pps (k = 2/4/6) and
    ODL at 500 pps (k = 6). *)

val policy_scaling : ?iterations:int -> ?sizes:int list -> unit ->
  (int * float) list
(** §VII-B2(3): mean policy-validation time (µs) vs policy-set size. *)

val packet_out_peak : unit -> float
(** Modelled PACKET_OUT saturation rate for one ONOS node (§VII-B1
    reports ≈220 K/s vs ≈5 K/s FLOW_MODs). *)

(** {1 Lossy-channel study (DESIGN.md)} *)

type channel_row = {
  mode : string;
  c_decided : int;
  c_timeout_alarms : int;
      (** verdicts carrying a response-timeout fault *)
  c_unverifiable : int;
  c_degraded : int;
  c_retransmits : int;
  c_channel : Jury.Channel.stats;  (** summed over every link *)
  c_detection : cdf_series;
}

val lossy_channel :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rate:float -> ?drop:float ->
  unit -> channel_row list
(** Benign ONOS k=2 workload, one seed, three modes: reliable links
    ("clean"), a [drop]-probability channel without mitigation
    ("lossy"), and the same channel with bounded retransmission plus
    degraded-quorum verdicts ("lossy+retx"). The "clean" row reproduces
    the seed's verdict counts exactly; the third row should show far
    fewer spurious timeout/unverifiable verdicts than the second. *)

(** {1 Ablations (DESIGN.md)} *)

val ablation_state_aware :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?rate:float -> unit ->
  (string * int * int * int) list
(** (mode, decided, false alarms, unverifiable) under benign churn with
    state-aware consensus on vs off. *)

val ablation_timeout :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> ?timeouts_ms:int list -> unit ->
  (int * float * float) list
(** (timeout ms, false-positive rate, p95 detection ms) under benign
    traffic — the §VIII-1 trade-off. *)

val ablation_secondary_selection :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?repeats:int -> unit -> (string * int * int) list
(** Random per-trigger secondaries vs a static peer set: detected count
    over repeated injections of a consensus-visible fault. *)

val ablation_adaptive_timeout :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> unit ->
  (string * int * int * float * float) list
(** Fixed vs adaptive θτ under bursty benign traffic: (mode, decided,
    false alarms, p95 detection ms, final θτ ms) — the §VIII-1
    extension. *)

val ablation_nondeterminism :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t -> unit ->
  (string * int * int * int) list
(** ECMP (non-deterministic) forwarding with the §IV-C B rule on vs
    off: (mode, decided, false alarms, verdicts labelled
    non-deterministic). *)

(** {1 Validator scaling (sharded verdict state)} *)

type scale_row = {
  vs_rate : float;           (** offered PACKET_IN rate *)
  vs_shards : int;           (** normalised shard count *)
  vs_decided : int;          (** verdicts decided during the window *)
  vs_overloads : int;        (** triggers force-expired at [max_inflight] *)
  vs_batches : int;          (** per-shard batches delivered *)
  vs_batched_responses : int;
  vs_shard_batches : int list;
      (** batch count per shard, in shard order — the fan-out evidence *)
  vs_wall_s : float;         (** host CPU seconds for the whole run *)
  vs_verdicts_per_s : float; (** decided / wall — the throughput figure *)
}

val validator_scale :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?duration:Jury_sim.Time.t ->
  ?rates:float list -> ?shard_counts:int list -> ?max_inflight:int ->
  ?batch:Jury_sim.Time.t -> unit -> scale_row list
(** Trigger rate x shard count sweep over a benign ONOS k=2 workload
    with batched response ingestion ([batch], default 200 us). Verdict
    counts are identical across shard counts at a given rate (sharding
    only partitions state); wall-clock and per-shard batch counters show
    how the work fans out. One row per (rate, shard) cell, rates outer,
    shard counts inner. *)
