open Jury_sim
module Builder = Jury_topo.Builder
module Network = Jury_net.Network
module Host = Jury_net.Host
module Cluster = Jury_controller.Cluster

type env = {
  engine : Engine.t;
  network : Network.t;
  cluster : Cluster.t;
  deployment : Jury.Deployment.t option;
  rng : Rng.t;
}

let make ?(seed = 42) ?(switches = 24) ?(hosts_per_switch = 1) ?plan ?jury
    ?trace ~profile ~nodes () =
  let engine = Engine.create ~seed () in
  Option.iter (Engine.set_trace engine) trace;
  let plan =
    match plan with
    | Some p -> p
    | None -> Builder.linear ~switches ~hosts_per_switch
  in
  let network = Network.create engine plan () in
  let cluster = Cluster.create engine ~profile ~nodes ~network () in
  let deployment = Option.map (Jury.Jury_config.install cluster) jury in
  Cluster.converge cluster;
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  { engine; network; cluster; deployment; rng = Rng.split (Engine.rng engine) }

let run_for env span =
  Engine.run env.engine ~until:(Time.add (Engine.now env.engine) span)

let validator env =
  match env.deployment with
  | Some d -> Jury.Deployment.validator d
  | None -> invalid_arg "Setup.validator: vanilla environment"

let verdicts_since env ~since =
  Jury.Validator.verdicts (validator env)
  |> List.filter (fun (a : Jury.Alarm.t) ->
         Time.(a.Jury.Alarm.decided_at >= since))

let detection_times_since env ~since =
  verdicts_since env ~since
  |> List.map (fun a -> Time.to_float_ms (Jury.Alarm.detection_time a))
  |> Array.of_list

let verdict_stats_since env ~since =
  let vs = verdicts_since env ~since in
  let faulty = List.filter Jury.Alarm.is_fault vs in
  let unverifiable =
    List.filter
      (fun (a : Jury.Alarm.t) ->
        a.Jury.Alarm.verdict = Jury.Alarm.Ok_unverifiable)
      vs
  in
  (List.length vs, List.length faulty, List.length unverifiable)
