open Jury_openflow

type direction = Rx | Tx

type entry = {
  at : Jury_sim.Time.t;
  dpid : Of_types.Dpid.t;
  port : int;
  direction : direction;
  frame : Jury_packet.Frame.t;
}

type t = {
  engine : Jury_sim.Engine.t;
  capacity : int;
  buffer : entry Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 10_000) engine =
  if capacity <= 0 then invalid_arg "Capture.create: capacity must be positive";
  { engine; capacity; buffer = Queue.create (); dropped = 0 }

let record t ~dpid direction port frame =
  if Queue.length t.buffer >= t.capacity then begin
    ignore (Queue.pop t.buffer);
    t.dropped <- t.dropped + 1
  end;
  (* Data-plane frames carry no taint, so they land in the trace's
     ambient scope — still queryable by node/kind/time to line packet
     activity up against a trigger's span. *)
  let tr = Jury_sim.Engine.trace t.engine in
  if Jury_obs.Trace.enabled tr then
    Jury_obs.Trace.global_point tr ~t_ns:(Jury_sim.Engine.now_ns t.engine)
      ~phase:Jury_obs.Trace.Net_write
      [ ("dpid", Of_types.Dpid.to_string dpid);
        ("port", string_of_int port);
        ("dir", match direction with Rx -> "rx" | Tx -> "tx") ];
  Queue.push
    { at = Jury_sim.Engine.now t.engine; dpid; port; direction; frame }
    t.buffer

let tap_switch t sw =
  let dpid = Switch.dpid sw in
  Switch.set_tap sw
    (Some
       (fun dir port frame ->
         let direction = match dir with `Rx -> Rx | `Tx -> Tx in
         record t ~dpid direction port frame))

let untap_switch sw = Switch.set_tap sw None
let entries t = List.of_seq (Queue.to_seq t.buffer)
let count t = Queue.length t.buffer
let dropped t = t.dropped

let clear t =
  Queue.clear t.buffer;
  t.dropped <- 0

let matching t pred = List.filter pred (entries t)

let between t ~since ~until =
  matching t (fun e ->
      Jury_sim.Time.(e.at >= since) && Jury_sim.Time.(e.at <= until))

let pp_entry fmt e =
  Format.fprintf fmt "%a %a %s port %a %a" Jury_sim.Time.pp e.at
    Of_types.Dpid.pp e.dpid
    (match e.direction with Rx -> "rx" | Tx -> "tx")
    Of_types.Port.pp e.port Jury_packet.Frame.pp e.frame

let dump t =
  entries t
  |> List.map (fun e -> Format.asprintf "%a" pp_entry e)
  |> String.concat "\n"
