open Jury_sim
open Jury_openflow
module Builder = Jury_topo.Builder
module Graph = Jury_topo.Graph
module Frame = Jury_packet.Frame

type attachment =
  | To_switch of Of_types.Dpid.t * int  (* peer dpid, peer port *)
  | To_host of int                      (* host index *)

module DpidMap = Map.Make (Of_types.Dpid)

type t = {
  engine : Engine.t;
  plan : Builder.plan;
  link_latency : Time.t;
  switches : Switch.t DpidMap.t;
  mutable hosts : Host.t array;
  attachments : (Of_types.Dpid.t * int, attachment) Hashtbl.t;
  down_links : (Of_types.Dpid.t * int, unit) Hashtbl.t;
  mutable data_plane_bytes : int;
}

let engine t = t.engine
let plan t = t.plan

let switch t dpid =
  match DpidMap.find_opt dpid t.switches with
  | Some sw -> sw
  | None -> raise Not_found

let switches t = DpidMap.fold (fun _ sw acc -> sw :: acc) t.switches []
let hosts t = Array.to_list t.hosts

let host t i =
  if i < 0 || i >= Array.length t.hosts then raise Not_found else t.hosts.(i)

let host_location t i =
  let slot = Builder.find_host_slot t.plan i in
  (slot.dpid, slot.port)

let deliver t ~from_dpid ~from_port frame =
  if not (Hashtbl.mem t.down_links (from_dpid, from_port)) then begin
    t.data_plane_bytes <- t.data_plane_bytes + Frame.size_on_wire frame;
    match Hashtbl.find_opt t.attachments (from_dpid, from_port) with
    | None -> ()
    | Some (To_host hi) ->
        let h = t.hosts.(hi) in
        ignore
          (Engine.schedule t.engine
             ~footprint:(Footprint.touches [ Footprint.host hi ])
             ~after:t.link_latency
             (fun () -> Host.receive h frame))
    | Some (To_switch (peer, peer_port)) ->
        let sw = switch t peer in
        ignore
          (Engine.schedule t.engine
             ~footprint:
               (Footprint.touches [ Footprint.switch (Of_types.Dpid.hash peer) ])
             ~after:t.link_latency
             (fun () -> Switch.receive_frame sw ~in_port:peer_port frame))
  end

let create engine (plan : Builder.plan) ?(link_latency = Time.us 50)
    ?(lenient_tables = false) () =
  let switches =
    List.fold_left
      (fun acc dpid ->
        DpidMap.add dpid
          (Switch.create engine dpid ~lenient_table:lenient_tables ())
          acc)
      DpidMap.empty
      (Graph.switches plan.graph)
  in
  let t =
    { engine;
      plan;
      link_latency;
      switches;
      hosts = [||];
      attachments = Hashtbl.create 64;
      down_links = Hashtbl.create 8;
      data_plane_bytes = 0 }
  in
  (* Inter-switch links. *)
  List.iter
    (fun (e : Graph.edge) ->
      Hashtbl.replace t.attachments
        (e.a.dpid, e.a.port)
        (To_switch (e.b.dpid, e.b.port));
      Hashtbl.replace t.attachments
        (e.b.dpid, e.b.port)
        (To_switch (e.a.dpid, e.a.port));
      Switch.register_port (switch t e.a.dpid) e.a.port;
      Switch.register_port (switch t e.b.dpid) e.b.port)
    (Graph.edges plan.graph);
  (* Hosts. *)
  let nhosts = Builder.host_count plan in
  t.hosts <-
    Array.init nhosts (fun i ->
        let slot = Builder.find_host_slot plan i in
        let tx frame =
          let sw = switch t slot.dpid in
          ignore
            (Engine.schedule engine
               ~footprint:
                 (Footprint.touches
                    [ Footprint.switch (Of_types.Dpid.hash slot.dpid) ])
               ~after:link_latency
               (fun () -> Switch.receive_frame sw ~in_port:slot.port frame))
        in
        Hashtbl.replace t.attachments (slot.dpid, slot.port) (To_host i);
        Switch.register_port (switch t slot.dpid) slot.port;
        Host.create engine ~index:i ~tx);
  (* Egress wiring. *)
  DpidMap.iter
    (fun dpid sw ->
      Switch.set_forwarder sw (fun ~port frame ->
          deliver t ~from_dpid:dpid ~from_port:port frame))
    t.switches;
  t

let take_link_down t (e1 : Graph.endpoint) (e2 : Graph.endpoint) =
  Hashtbl.replace t.down_links (e1.dpid, e1.port) ();
  Hashtbl.replace t.down_links (e2.dpid, e2.port) ();
  Switch.port_down (switch t e1.dpid) e1.port;
  Switch.port_down (switch t e2.dpid) e2.port

let bring_link_up t (e1 : Graph.endpoint) (e2 : Graph.endpoint) =
  Hashtbl.remove t.down_links (e1.dpid, e1.port);
  Hashtbl.remove t.down_links (e2.dpid, e2.port);
  Switch.port_up (switch t e1.dpid) e1.port;
  Switch.port_up (switch t e2.dpid) e2.port

let data_plane_bytes t = t.data_plane_bytes
