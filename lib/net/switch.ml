open Jury_sim
open Jury_openflow
module Frame = Jury_packet.Frame

type t = {
  engine : Engine.t;
  dpid : Of_types.Dpid.t;
  table : Flow_table.t;
  buffers : (int, int * Frame.t) Hashtbl.t;  (* buffer id -> in_port, frame *)
  buffer_slots : int;
  mutable next_buffer : int;
  mutable next_xid : int;
  mutable ports : int list;
  down_ports : (int, unit) Hashtbl.t;
  mutable forwarder : port:int -> Frame.t -> unit;
  mutable control_tx : Of_message.t -> unit;
  mutable sweep_armed : bool;
  mutable tap : ([ `Rx | `Tx ] -> int -> Frame.t -> unit) option;
  mutable packet_in_count : int;
  mutable flow_mod_count : int;
  mutable packet_out_count : int;
  mutable dropped_count : int;
}

let expiry_period = Time.sec 2

let make engine dpid ~lenient_table ~buffer_slots =
  { engine;
    dpid;
    table = Flow_table.create ~lenient:lenient_table ();
    buffers = Hashtbl.create 64;
    buffer_slots;
    next_buffer = 0;
    next_xid = 0;
    ports = [];
    down_ports = Hashtbl.create 4;
    forwarder = (fun ~port:_ _ -> ());
    control_tx = (fun _ -> ());
    sweep_armed = false;
    tap = None;
    packet_in_count = 0;
    flow_mod_count = 0;
    packet_out_count = 0;
    dropped_count = 0 }

let dpid t = t.dpid
let table t = t.table

let register_port t port =
  if not (List.mem port t.ports) then t.ports <- port :: t.ports

let ports t = List.sort compare t.ports
let set_forwarder t f = t.forwarder <- f
let set_tap t f = t.tap <- f
let set_control_tx t f = t.control_tx <- f

let fresh_xid t =
  t.next_xid <- t.next_xid + 1;
  t.next_xid

let send t payload = t.control_tx (Of_message.make ~xid:(fresh_xid t) payload)

let flow_removed_payload ~now ~reason (e : Flow_table.entry) =
  Of_message.Flow_removed
    { fr_match = e.rule;
      fr_cookie = e.cookie;
      fr_priority = e.priority;
      fr_reason = reason;
      duration_sec =
        int_of_float (Time.to_float_sec (Time.sub now e.installed_at));
      packet_count = e.packet_count;
      byte_count = e.byte_count }

(* Periodic table sweep: expired entries leave the table and are
   reported to the controller as FLOW_REMOVED, as a real switch does.
   The sweep arms itself when rules exist and stops when the table
   drains, so an idle switch schedules no events (and simulations
   terminate). *)
let rec ensure_expiry_sweep t =
  if (not t.sweep_armed) && Flow_table.has_expirable t.table then begin
    t.sweep_armed <- true;
    ignore
      (Engine.schedule t.engine
         ~footprint:
           (Footprint.touches [ Footprint.switch (Of_types.Dpid.hash t.dpid) ])
         ~after:expiry_period
         (fun () ->
           t.sweep_armed <- false;
           let now = Engine.now t.engine in
           List.iter
             (fun (e : Flow_table.entry) ->
               let reason =
                 if
                   e.hard_timeout > 0
                   && Time.to_float_sec (Time.sub now e.installed_at)
                      >= float_of_int e.hard_timeout
                 then Of_message.Hard_timeout
                 else Of_message.Idle_timeout
               in
               send t (flow_removed_payload ~now ~reason e))
             (Flow_table.expire t.table ~now);
           ensure_expiry_sweep t))
  end

let create engine dpid ?(lenient_table = false) ?(buffer_slots = 256) () =
  make engine dpid ~lenient_table ~buffer_slots

let port_usable t port = not (Hashtbl.mem t.down_ports port)

let emit t ~in_port ~port frame =
  (* Expand virtual ports into concrete physical egress. *)
  let physical =
    if port = Of_types.Port.flood || port = Of_types.Port.all then
      List.filter
        (fun p -> (port = Of_types.Port.all || p <> in_port) && port_usable t p)
        t.ports
    else if port = Of_types.Port.in_port then [ in_port ]
    else if Of_types.Port.is_physical port then
      if port_usable t port then [ port ]
      else begin
        t.dropped_count <- t.dropped_count + 1;
        []
      end
    else []
  in
  List.iter
    (fun p ->
      (match t.tap with Some tap -> tap `Tx p frame | None -> ());
      t.forwarder ~port:p frame)
    physical

let buffer_frame t ~in_port frame =
  if Hashtbl.length t.buffers >= t.buffer_slots then None
  else begin
    t.next_buffer <- t.next_buffer + 1;
    Hashtbl.replace t.buffers t.next_buffer (in_port, frame);
    Some t.next_buffer
  end

let raise_packet_in t ~in_port ~reason frame =
  t.packet_in_count <- t.packet_in_count + 1;
  let buffer_id = buffer_frame t ~in_port frame in
  send t (Of_message.Packet_in { buffer_id; in_port; reason; frame })

let receive_frame t ~in_port frame =
  (match t.tap with Some tap -> tap `Rx in_port frame | None -> ());
  match Flow_table.lookup t.table ~now:(Engine.now t.engine) ~in_port frame with
  | None -> raise_packet_in t ~in_port ~reason:Of_message.No_match frame
  | Some entry ->
      if Of_action.is_drop entry.actions then
        t.dropped_count <- t.dropped_count + 1
      else begin
        let frame', out_ports = Of_action.apply entry.actions frame in
        List.iter
          (fun port ->
            if port = Of_types.Port.controller then
              raise_packet_in t ~in_port
                ~reason:Of_message.Action_to_controller frame'
            else emit t ~in_port ~port frame')
          out_ports
      end

let apply_buffered t buffer_id actions =
  match Hashtbl.find_opt t.buffers buffer_id with
  | None -> ()
  | Some (in_port, frame) ->
      Hashtbl.remove t.buffers buffer_id;
      let frame', out_ports = Of_action.apply actions frame in
      List.iter (fun port -> emit t ~in_port ~port frame') out_ports

let features_reply t =
  Of_message.Features_reply
    { datapath_id = t.dpid;
      n_buffers = t.buffer_slots;
      n_tables = 1;
      ports = ports t }

let handle_control t (msg : Of_message.t) =
  match msg.payload with
  | Of_message.Hello -> ()
  | Of_message.Echo_request body ->
      send t (Of_message.Echo_reply body)
  | Of_message.Features_request -> send t (features_reply t)
  | Of_message.Flow_mod fm -> (
      t.flow_mod_count <- t.flow_mod_count + 1;
      let now = Engine.now t.engine in
      match Flow_table.apply_flow_mod t.table ~now fm with
      | Flow_table.Installed | Flow_table.Modified _ ->
          ensure_expiry_sweep t;
          (match fm.fm_buffer_id with
          | None -> ()
          | Some b -> apply_buffered t b fm.actions)
      | Flow_table.Removed gone ->
          List.iter
            (fun (e : Flow_table.entry) ->
              send t
                (Of_message.Flow_removed
                   { fr_match = e.rule;
                     fr_cookie = e.cookie;
                     fr_priority = e.priority;
                     fr_reason = Of_message.Deleted;
                     duration_sec =
                       int_of_float
                         (Time.to_float_sec (Time.sub now e.installed_at));
                     packet_count = e.packet_count;
                     byte_count = e.byte_count }))
            gone
      | Flow_table.Rejected _ ->
          let ty, code = Of_error.to_wire Of_error.flow_mod_rejected in
          send t (Of_message.Error (ty, code)))
  | Of_message.Packet_out po -> (
      t.packet_out_count <- t.packet_out_count + 1;
      match (po.po_buffer_id, po.po_frame) with
      | Some b, _ -> apply_buffered t b po.po_actions
      | None, Some frame ->
          let frame', out_ports = Of_action.apply po.po_actions frame in
          List.iter
            (fun port -> emit t ~in_port:po.po_in_port ~port frame')
            out_ports
      | None, None -> ())
  | Of_message.Barrier_request -> send t Of_message.Barrier_reply
  | Of_message.Stats_request (Of_message.Flow_stats_request m) ->
      let stats =
        Flow_table.entries t.table
        |> List.filter (fun (e : Flow_table.entry) ->
               Of_match.more_specific e.rule m)
        |> List.map (fun (e : Flow_table.entry) : Of_message.flow_stat ->
               { fs_match = e.rule;
                 fs_priority = e.priority;
                 fs_cookie = e.cookie;
                 fs_actions = e.actions;
                 fs_packet_count = e.packet_count })
      in
      send t (Of_message.Stats_reply (Of_message.Flow_stats_reply stats))
  | Of_message.Stats_request Of_message.Table_stats_request ->
      send t
        (Of_message.Stats_reply
           (Of_message.Table_stats_reply (Flow_table.size t.table)))
  | Of_message.Features_reply _ | Of_message.Packet_in _
  | Of_message.Flow_removed _ | Of_message.Port_status _
  | Of_message.Barrier_reply | Of_message.Stats_reply _
  | Of_message.Echo_reply _ | Of_message.Error _ ->
      (* Controller-to-switch direction never carries these. *)
      ()

let port_down t port =
  Hashtbl.replace t.down_ports port ();
  send t
    (Of_message.Port_status
       { ps_reason = Of_message.Port_modify; ps_port = port; ps_link_up = false })

let port_up t port =
  Hashtbl.remove t.down_ports port;
  send t
    (Of_message.Port_status
       { ps_reason = Of_message.Port_modify; ps_port = port; ps_link_up = true })

let announce t =
  send t Of_message.Hello;
  send t (features_reply t)

let packet_in_count t = t.packet_in_count
let flow_mod_count t = t.flow_mod_count
let packet_out_count t = t.packet_out_count
let dropped_count t = t.dropped_count
