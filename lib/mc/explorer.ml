open Jury_check
module Engine = Jury_sim.Engine
module Footprint = Jury_sim.Footprint

type stats = {
  explored : int;
  choice_points : int;
  deepest : int;
  branched : int;
  pruned : int;
  truncated : bool;
}

type divergence = {
  div_trace : Trace.t;
  div_diff : string option;
  div_failures : (Oracle.t * string) list;
}

type report = {
  rep_case : Case.t;
  rep_reference : Run.outcome;
  rep_stats : stats;
  rep_divergences : divergence list;
}

(* A chooser following [trace]: choice point [d] takes [trace.(d)],
   points beyond the trace (or choices out of range for the candidate
   set actually present) take the FIFO default 0. Each call to
   [trace_chooser] makes a fresh position counter, so a chooser is
   single-run state and the surrounding executor stays re-entrant. *)
let trace_chooser ?record trace =
  let trace = Array.of_list (Trace.to_list trace) in
  let pos = ref 0 in
  fun (cands : Engine.candidate array) ->
    let d = !pos in
    incr pos;
    (match record with None -> () | Some f -> f d cands);
    let choice = if d < Array.length trace then trace.(d) else 0 in
    if choice < Array.length cands then choice else 0

let chooser = trace_chooser

let run ?record case trace =
  Run.execute ~chooser:(trace_chooser ?record trace) ~deterministic:true case

let executor trace : Oracle.executor =
 fun ?shards ?batch_us ?pipeline_jobs ?force_reliable case ->
  Run.execute
    ~chooser:(trace_chooser trace)
    ~deterministic:true ?shards ?batch_us ?pipeline_jobs ?force_reliable case

(* The per-schedule battery, with the schedule's own outcome as the
   memoised base run so oracles that only inspect one run cost
   nothing extra. *)
let check_schedule ~oracles case trace outcome =
  match oracles with
  | [] -> []
  | oracles ->
      Oracle.check_run ~oracles
        { Oracle.case; execute = executor trace; base = lazy outcome }

let divergence_of ~oracles case reference trace outcome =
  let diff = Run.diff_schedule_blind reference.Run.fp outcome.Run.fp in
  let failures = check_schedule ~oracles case trace outcome in
  if diff = None && failures = [] then None
  else Some { div_trace = trace; div_diff = diff; div_failures = failures }

let explore_with ?(prune = true) ?(max_schedules = 1000) ?(max_depth = max_int)
    ~run:run_trace ~check () =
  if max_schedules < 1 then
    invalid_arg "Explorer.explore: max_schedules must be >= 1";
  if max_depth < 0 then
    invalid_arg "Explorer.explore: max_depth must be >= 0";
  let explored = ref 0
  and choice_points = ref 0
  and deepest = ref 0
  and branched = ref 0
  and pruned = ref 0
  and truncated = ref false in
  let divergences = ref [] in
  let reference = ref None in
  (* Depth-first over trace prefixes. Each stack entry is a complete
     schedule (its implicit suffix is all-FIFO); running it records the
     candidate sets at the choice points past the prefix, which seed
     the sibling prefixes still to visit. Ancestor points were branched
     when their own prefix ran, so each schedule is visited exactly
     once. *)
  let stack = ref [ Trace.empty ] in
  while !stack <> [] && !explored < max_schedules do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        let prefix_arr = Array.of_list (Trace.to_list prefix) in
        let plen = Array.length prefix_arr in
        let free = ref [] in
        let record d cands =
          incr choice_points;
          if d + 1 > !deepest then deepest := d + 1;
          if d >= plen then
            if d < max_depth then free := (d, cands) :: !free
            else truncated := true
        in
        let outcome = run_trace record prefix in
        incr explored;
        let ref_outcome =
          match !reference with
          | Some r -> r
          | None ->
              reference := Some outcome;
              outcome
        in
        (match check ref_outcome prefix outcome with
        | None -> ()
        | Some d -> divergences := d :: !divergences);
        (* Branch: candidate 0 is the schedule just run; candidate j > 0
           starts a new schedule unless it commutes with every earlier
           candidate at its point (in which case running it first is
           equivalent to a schedule already covered). *)
        let siblings = ref [] in
        List.iter
          (fun (d, (cands : Engine.candidate array)) ->
            for j = Array.length cands - 1 downto 1 do
              let dependent_with_earlier =
                (not prune)
                ||
                let dep = ref false in
                for i = 0 to j - 1 do
                  if
                    not
                      (Footprint.independent cands.(i).Engine.cand_footprint
                         cands.(j).Engine.cand_footprint)
                  then dep := true
                done;
                !dep
              in
              if dependent_with_earlier then begin
                incr branched;
                let sib =
                  List.init (d + 1) (fun k ->
                      if k < plen then prefix_arr.(k)
                      else if k = d then j
                      else 0)
                in
                siblings := Trace.of_list sib :: !siblings
              end
              else incr pruned
            done)
          !free;
        stack := !siblings @ !stack
  done;
  if !stack <> [] then truncated := true;
  let reference =
    match !reference with
    | Some r -> r
    | None -> assert false (* max_schedules >= 1 forces one run *)
  in
  ( reference,
    { explored = !explored;
      choice_points = !choice_points;
      deepest = !deepest;
      branched = !branched;
      pruned = !pruned;
      truncated = !truncated },
    List.rev !divergences )

let explore ?prune ?max_schedules ?max_depth ?oracles case =
  let oracles =
    match oracles with Some os -> os | None -> Registry.all ()
  in
  let rep_reference, rep_stats, rep_divergences =
    explore_with ?prune ?max_schedules ?max_depth
      ~run:(fun record trace -> run ~record case trace)
      ~check:(fun reference trace outcome ->
        divergence_of ~oracles case reference trace outcome)
      ()
  in
  { rep_case = case; rep_reference; rep_stats; rep_divergences }

let replay ?(oracles = []) case trace =
  let reference = run case Trace.empty in
  let outcome = run case trace in
  (outcome, divergence_of ~oracles case reference trace outcome)

let describe_divergence d =
  Printf.sprintf "schedule %s: %s"
    (Trace.to_string d.div_trace)
    (match d.div_diff with
    | Some diff -> diff
    | None ->
        String.concat "; "
          (List.map
             (fun ((o : Oracle.t), m) -> o.Oracle.name ^ ": " ^ m)
             d.div_failures))

let mc_oracle ?(prune = true) ?(max_schedules = 64) ?(max_depth = max_int)
    ?(oracles = []) () =
  { Oracle.name = "schedule-independence";
    family = "mc";
    doc = "small-scope schedule exploration finds no divergent schedule";
    check =
      (fun ctx ->
        let r =
          explore ~prune ~max_schedules ~max_depth ~oracles ctx.Oracle.case
        in
        match r.rep_divergences with
        | [] -> Oracle.Pass
        | d :: _ -> Oracle.Fail (describe_divergence d)) }

(* Greedy trace reduction: a shorter or lower-indexed trace that still
   diverges is a better repro. Dropping trailing choices and lowering a
   choice toward 0 both strictly decrease (length, sum), so this
   terminates; each probe is one full re-execution. *)
let minimise_trace ~oracles case reference trace =
  let diverges t =
    let t = Trace.of_list t in
    divergence_of ~oracles case reference t (run case t) <> None
  in
  let rec drop_last t =
    match List.rev t with
    | [] -> t
    | _ :: rev_rest ->
        let t' = List.rev rev_rest in
        if diverges t' then drop_last t' else t
  in
  let t = drop_last (Trace.to_list trace) in
  let arr = Array.of_list t in
  for i = 0 to Array.length arr - 1 do
    let orig = arr.(i) in
    let rec try_from v =
      if v < orig then begin
        arr.(i) <- v;
        if not (diverges (Array.to_list arr)) then begin
          arr.(i) <- orig;
          try_from (v + 1)
        end
      end
    in
    try_from 0
  done;
  (* A trailing 0 is the beyond-trace default: stripping it never
     changes the schedule. *)
  let stripped =
    let rec strip = function 0 :: tl -> strip tl | l -> l in
    List.rev (strip (List.rev (Array.to_list arr)))
  in
  Trace.of_list stripped

type minimised = {
  min_case : Case.t;
  min_trace : Trace.t;
  min_diff : string option;
  min_failures : (Oracle.t * string) list;
  min_steps : int;
  min_shrunk : int;
}

let minimise ?(max_steps = 60) ?(max_schedules = 64) ?(max_depth = max_int)
    ?(oracles = []) case =
  let oracle = mc_oracle ~max_schedules ~max_depth ~oracles () in
  match Oracle.check_case ~oracles:[ oracle ] case with
  | [] -> Error "case exhibits no schedule divergence"
  | failures ->
      let s = Shrink.minimise ~max_steps ~oracles:[ oracle ] case failures in
      let minimal = s.Shrink.minimal in
      let r = explore ~max_schedules ~max_depth ~oracles minimal in
      (match r.rep_divergences with
      | [] ->
          (* The shrinker's last accepted candidate diverged when it was
             checked, so a clean re-exploration means a bounded search
             stopped short of the divergence; report the bound. *)
          Error
            "shrunk case no longer diverges within the exploration bounds; \
             raise max_schedules"
      | d :: _ ->
          let trace =
            minimise_trace ~oracles minimal r.rep_reference d.div_trace
          in
          let outcome = run minimal trace in
          let diff =
            Run.diff_schedule_blind r.rep_reference.Run.fp outcome.Run.fp
          in
          let failures = check_schedule ~oracles minimal trace outcome in
          Ok
            { min_case = minimal;
              min_trace = trace;
              min_diff = diff;
              min_failures = failures;
              min_steps = s.Shrink.steps;
              min_shrunk = s.Shrink.shrunk })

let demo_case ?(seed = 7) ?(switches = 2) ?(triggers = 3) ?(nodes = 3) () =
  if switches < 1 || switches > 3 then
    invalid_arg "Explorer.demo_case: switches must be in [1, 3]";
  if triggers < 1 || triggers > 5 then
    invalid_arg "Explorer.demo_case: triggers must be in [1, 5]";
  if nodes < 2 || nodes > 5 then
    invalid_arg "Explorer.demo_case: nodes must be in [2, 5]";
  let duration_ms = 40 in
  { Case.case_seed = seed;
    topo = Case.Linear;
    switches;
    hosts_per_switch = 1;
    nodes;
    k = min 2 (nodes - 1);
    odl = false;
    workload = Case.Joins;
    rate = float_of_int triggers *. 1000. /. float_of_int duration_ms;
    duration_ms;
    faults = [];
    drop = 0.;
    duplicate = 0.;
    jitter_us = 0.;
    retries = 0;
    degraded_quorum = None;
    shards = 1;
    max_inflight = None;
    batch_us = None;
    triggers }
