(** Compact printable choice traces.

    A deterministic simulation's only scheduling freedom is which of
    several equal-timestamp events runs first (see
    {!Jury_sim.Engine.set_chooser}). A trace pins one schedule: entry
    [i] is the candidate index chosen at the [i]-th {e choice point} of
    the run, in the order the engine encounters them. Beyond the end of
    the trace every choice defaults to [0] — the FIFO order — so the
    empty trace denotes the seed schedule, and any prefix of a valid
    trace is itself a valid (shorter) trace.

    Traces print as dot-separated indices (["0.2.1"]; ["-"] for the
    empty trace), small enough to paste into a failure report, a CLI
    invocation or the repro corpus. *)

type t

val empty : t
(** The seed (FIFO) schedule. *)

val is_empty : t -> bool
val length : t -> int
val equal : t -> t -> bool

val of_list : int list -> t
(** Raises [Invalid_argument] on a negative choice. *)

val to_list : t -> int list

val to_string : t -> string
(** ["-"] for {!empty}, else dot-separated (e.g. ["0.2.1"]). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; also accepts [""] for the empty trace.
    [Error] carries a usage message naming the offending input. *)

val pp : Format.formatter -> t -> unit
