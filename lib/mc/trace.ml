type t = int list

let empty = []
let is_empty t = t = []
let length = List.length
let equal (a : t) (b : t) = a = b

let of_list l =
  List.iter
    (fun c -> if c < 0 then invalid_arg "Trace.of_list: negative choice")
    l;
  l

let to_list t = t

let to_string = function
  | [] -> "-"
  | t -> String.concat "." (List.map string_of_int t)

let of_string s =
  let s = String.trim s in
  if s = "" || s = "-" then Ok []
  else
    let parts = String.split_on_char '.' s in
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt (String.trim p) with
          | Some n when n >= 0 -> parse (n :: acc) rest
          | _ ->
              Error
                (Printf.sprintf
                   "invalid trace %S: expected dot-separated non-negative \
                    choice indices like \"0.2.1\", or \"-\" for the default \
                    schedule"
                   s))
    in
    parse [] parts

let pp fmt t = Format.pp_print_string fmt (to_string t)
