(** Exhaustive small-scope schedule exploration with DPOR-style pruning.

    For deployments small enough to enumerate (the sweet spot is two or
    three switches and a handful of triggers), the explorer runs the
    {e same} case under every tie-break order the event queue admits and
    checks that no schedule changes what JURY concludes. Each schedule
    is a complete, stateless re-execution through
    {!Jury_check.Run.execute} with a {!Jury_sim.Engine.chooser} that
    follows a {!Trace.t}; nothing about the engine is rolled back or
    snapshotted, so exploration composes with every existing oracle.

    {2 What is checked on every schedule}

    + {b Schedule-blindness}: the outcome's
      {!Jury_check.Run.schedule_blind} projection (verdict counts plus
      each trigger's verdict class, primary and suspect set, with
      serials wildcarded and timestamps dropped) must equal the FIFO
      reference's. Tie order may shift taint serials and per-trigger
      timings; it must never gain, lose or change a verdict.
    + {b The oracle battery}: the requested {!Jury_check.Oracle.t}s run
      against a context pinned to the explored schedule — every
      re-execution an oracle performs (replay, shard override, the
      parallel mini-sweep) replays the same trace via {!executor}.

    {2 Pruning}

    At a choice point with candidates [c0 .. cn-1] the explorer always
    continues with [c0] and branches to [cj] ([j > 0]) only if [cj]'s
    declared {!Jury_sim.Footprint.t} is {e dependent} with some earlier
    candidate's ([not (Footprint.independent ci cj)] for some [i < j]).
    If [cj] commutes with every earlier candidate, running it first is
    observably equivalent to some schedule that runs [c0] first and
    [cj] at a later choice point, so the branch is redundant. Soundness
    rests on footprints being conservative (undeclared events are
    {!Jury_sim.Footprint.opaque}, which conflicts with everything) and
    honest — see [DESIGN.md] for the full argument and the modes
    (adaptive timeouts, inflight caps, mastership churn) under which
    components deliberately degrade their declarations to opaque.

    Exploration only ever runs deterministic-latency deployments
    ([Run.execute ~deterministic:true]): stochastic jitter would let
    tied events race through shared RNG streams, breaking commutation
    behind the footprints' back. *)

type stats = {
  explored : int;  (** schedules fully executed (the reference included) *)
  choice_points : int;
      (** chooser consultations summed over explored schedules *)
  deepest : int;   (** most choice points seen in any single schedule *)
  branched : int;  (** alternative branches enqueued at choice points *)
  pruned : int;
      (** alternative branches skipped because the candidate commutes
          with every earlier candidate at its choice point *)
  truncated : bool;
      (** true if [max_schedules] or [max_depth] cut enumeration short:
          counts are lower bounds and absence of divergence is no
          longer a proof *)
}

(** One schedule that broke an invariant. *)
type divergence = {
  div_trace : Trace.t;  (** replay with {!replay} or [jury_cli mc --trace] *)
  div_diff : string option;
      (** first schedule-blind difference vs the FIFO reference *)
  div_failures : (Jury_check.Oracle.t * string) list;
      (** oracle-battery failures on this schedule *)
}

type report = {
  rep_case : Jury_check.Case.t;
  rep_reference : Jury_check.Run.outcome;  (** the FIFO (empty-trace) run *)
  rep_stats : stats;
  rep_divergences : divergence list;  (** in discovery order *)
}

val explore :
  ?prune:bool -> ?max_schedules:int -> ?max_depth:int ->
  ?oracles:Jury_check.Oracle.t list ->
  Jury_check.Case.t -> report
(** Enumerate the case's schedules depth-first. [prune] (default
    [true]) applies the independence rule above; [~prune:false] is the
    naive enumeration, useful only to measure the pruning ratio.
    [max_schedules] (default 1000) bounds executions; [max_depth]
    (default unbounded) stops {e branching} past that many choice
    points (deeper ties take the default order). [oracles] (default
    {!Jury_check.Registry.all}) is the per-schedule battery; [[]]
    checks schedule-blindness only. *)

val chooser :
  ?record:(int -> Jury_sim.Engine.candidate array -> unit) ->
  Trace.t -> Jury_sim.Engine.chooser
(** The chooser a trace denotes: choice point [d] takes the trace's
    [d]-th entry (beyond-trace and out-of-range choices fall back to
    [0], the FIFO default). [record] observes every choice point's
    candidate set — the hook exploration's branching is built on. The
    returned chooser carries its own position counter: make a fresh one
    per run. *)

val explore_with :
  ?prune:bool -> ?max_schedules:int -> ?max_depth:int ->
  run:((int -> Jury_sim.Engine.candidate array -> unit) -> Trace.t -> 'a) ->
  check:('a -> Trace.t -> 'a -> divergence option) ->
  unit -> 'a * stats * divergence list
(** The exploration core behind {!explore}, generic over how a trace is
    executed: [run record trace] must re-execute the system under the
    trace's schedule (deterministically — equal traces must give equal
    outcomes) and report every choice point to [record];
    [check reference trace outcome] judges one schedule against the
    first one run (the FIFO reference, which is also the ['a] returned).
    Exposed so the pruning arithmetic can be exercised on synthetic
    engines; {!explore} is this applied to {!Jury_check.Run.execute}. *)

val executor : Trace.t -> Jury_check.Oracle.executor
(** An executor replaying the trace: every call runs
    [Run.execute ~deterministic:true] with a fresh chooser following
    the trace (choices beyond the trace, or out of range for the
    candidate set actually encountered — possible when an oracle
    overrides an axis and the event structure shifts — fall back
    to [0]). Safe to call from worker domains. *)

val replay :
  ?oracles:Jury_check.Oracle.t list ->
  Jury_check.Case.t -> Trace.t -> Jury_check.Run.outcome * divergence option
(** Re-run one schedule and re-check it: the outcome, plus [Some
    divergence] if it disagrees with the FIFO reference
    (schedule-blind) or fails the battery ([oracles] as in
    {!explore}; default [[]]). *)

val describe_divergence : divergence -> string
(** One-line human-readable summary (trace plus first difference or
    failing oracles), for reports and the CLI. *)

val mc_oracle :
  ?prune:bool -> ?max_schedules:int -> ?max_depth:int ->
  ?oracles:Jury_check.Oracle.t list ->
  unit -> Jury_check.Oracle.t
(** The whole exploration packaged as a single oracle
    ([mc/schedule-independence]) so it can ride the existing harness —
    in particular {!Jury_check.Shrink.minimise}. Defaults are sized for
    shrinking loops: [max_schedules = 64], inner [oracles = \[\]]
    (schedule-blindness only). *)

type minimised = {
  min_case : Jury_check.Case.t;   (** smallest case still diverging *)
  min_trace : Trace.t;            (** smallest diverging trace on it *)
  min_diff : string option;
  min_failures : (Jury_check.Oracle.t * string) list;
  min_steps : int;                (** case candidates executed *)
  min_shrunk : int;               (** accepted case reductions *)
}

val minimise :
  ?max_steps:int -> ?max_schedules:int -> ?max_depth:int ->
  ?oracles:Jury_check.Oracle.t list ->
  Jury_check.Case.t -> (minimised, string) result
(** Shrink a diverging case to a minimal counterexample:
    {!Jury_check.Shrink.minimise} over the case axes with {!mc_oracle}
    as the watched oracle, then greedy reduction of the diverging trace
    (drop trailing choice points, lower each choice toward [0]) while
    the divergence persists. [Error] if the case exhibits no divergence
    in the first place. [max_steps] (default 60) bounds case
    candidates; each candidate costs a bounded exploration
    ([max_schedules], default 64). *)

val demo_case :
  ?seed:int -> ?switches:int -> ?triggers:int -> ?nodes:int -> unit ->
  Jury_check.Case.t
(** The small benign deployment the CLI and CI explore: [switches]
    (1–3, default 2) switches in a line with one host each, [nodes]
    (2–5, default 3) controllers with [k = min 2 (nodes-1)]
    replication, an ONOS profile, zero-loss channels, no faults, and a
    host-join workload sized to about [triggers] (1–5, default 3)
    triggers. Raises [Invalid_argument] outside the small-scope
    bounds — exhaustive enumeration is only meaningful (and
    affordable) there. *)
