(** Conservative static footprints for scheduled events.

    A footprint names the mutable resources an event's callback may
    touch. The schedule explorer uses footprints as a {e static
    dependence relation}: two equal-timestamp events whose footprints
    are {!independent} commute — executing them in either order leads
    to the same observable outcome — so only one of the two orders
    needs exploring. The relation must be conservative: when in doubt
    an event is {!opaque}, which conflicts with everything (including
    other opaque events), and exploration stays exhaustive, just
    slower.

    Resources are small integers namespaced by kind. The named
    constructors below cover the simulation's components; they are
    nothing but disjoint integer ranges, so the module stays free of
    any dependency on the component libraries. An event that touches a
    component's private RNG must include that component in its
    footprint (drawing reorders the stream — a write like any
    other). *)

type t

val opaque : t
(** Unknown effects: dependent on every event, itself included. The
    default for every scheduled event that does not declare better. *)

val touches : int list -> t
(** An event confined to the given resources. [touches []] commutes
    with every non-opaque event. *)

val is_opaque : t -> bool

val independent : t -> t -> bool
(** Both footprints are declared and share no resource. This is the
    commutation test: [independent a b] implies executing the two
    events in either order yields the same observable behaviour
    (assuming footprints were declared honestly). *)

val union : t -> t -> t
(** Combined footprint (opaque absorbs). *)

(** {1 Resource namespaces}

    Each constructor maps a small id into its own integer range;
    distinct namespaces never collide. *)

val switch : int -> int
(** The flow table, ports and timers of switch [dpid]. *)

val host : int -> int
(** A host endpoint's protocol state. *)

val controller : int -> int
(** One controller replica: its caches' local views, pipeline and
    private RNG. *)

val store : int -> int
(** The replicated-store shard/fabric state owned by node [i]. *)

val validator_shard : int -> int
(** One verdict-state shard of the validator. *)

val trigger : int -> int
(** The per-trigger validation entry for external-trigger serial [i]
    (response set, timer, verdict slot). *)

val named : string -> int
(** A resource identified by name (e.g. a cache), hashed into its own
    namespace. Collisions only ever merge resources, which is
    conservative. *)

val taint : string -> int
(** The per-trigger resource for the trigger identified by a rendered
    taint ([Types.Taint.to_string]) — the hashed-string convention every
    layer (replicator, validator, channels) must share so responses and
    timers of the same trigger conflict. Lands in the {!trigger}
    namespace. *)

val pp : Format.formatter -> t -> unit
