(** Measurement collection for experiments.

    A registry of named series (float samples) and counters. Experiment
    harnesses record into a [t] while the simulation runs and read the
    series out afterwards; keeping collection separate from the
    components under test avoids polluting their interfaces. *)

type t

val create : unit -> t
(** An empty registry. *)

val record : t -> string -> float -> unit
(** Append a sample to the named series (created on first use). *)

val record_time : t -> string -> Time.t -> unit
(** Record a duration, stored in milliseconds. *)

val incr : t -> ?by:int -> string -> unit
(** Bump the named counter. *)

val samples : t -> string -> float array
(** All samples recorded under the name, in recording order; [| |] if
    the series does not exist. *)

val count : t -> string -> int
(** Counter value, 0 if absent. *)

val series_names : t -> string list
(** Names of every series recorded so far, sorted. *)

val counter_names : t -> string list
(** Names of every counter bumped so far, sorted. *)

val clear : t -> unit
(** Forget all series and counters. *)
