(** Discrete-event simulation engine.

    A single-threaded event loop over simulated {!Time.t}. Components
    schedule closures to run at future instants; the engine executes
    them in (time, insertion) order. The engine makes no attempt to be
    re-entrant: callbacks may schedule or cancel events but must not
    call {!run} themselves. *)

type t

type handle
(** Cancellation handle for a scheduled event. *)

val create : ?seed:int -> ?tie:Heap.tie -> unit -> t
(** [create ?seed ()] makes an engine whose root RNG is seeded with
    [seed] (default 42). [tie] (default {!Heap.fifo}) breaks the event
    queue's equal-timestamp ties; the default reproduces the seed's
    (time, insertion) order byte-for-byte. *)

val now : t -> Time.t
(** Current simulated time. *)

val now_ns : t -> int
(** Current simulated time in nanoseconds — the timestamp base for the
    {!Jury_obs} trace layer. *)

val trace : t -> Jury_obs.Trace.t
(** The causal-trace sink components emit into. Defaults to a disabled
    {!Jury_obs.Trace.null} trace, so emission is a no-op until a caller
    attaches a real sink with {!set_trace}. *)

val set_trace : t -> Jury_obs.Trace.t -> unit
(** Attach a trace sink; may be called at any point before or during a
    run. Tracing consumes no randomness and schedules no events, so it
    never perturbs a seeded simulation. *)

val rng : t -> Rng.t
(** The engine's root RNG; components usually [Rng.split] it once at
    construction. *)

val schedule :
  t -> ?footprint:Footprint.t -> after:Time.t -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] at [now t + after]. [footprint]
    (default {!Footprint.opaque}) declares the resources [f] touches;
    it never affects execution, only how the schedule explorer prunes
    equal-timestamp orderings (see {!set_chooser}). *)

val schedule_at :
  t -> ?footprint:Footprint.t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~at f] runs [f] at absolute time [at]; raises
    [Invalid_argument] if [at] is in the past. *)

val cancel : handle -> unit
(** Cancels a pending event; a no-op if it already ran or was cancelled. *)

val is_pending : handle -> bool
(** Whether the event is still queued (neither fired nor cancelled). *)

val every :
  t -> period:Time.t -> ?jitter:Time.t -> ?footprint:Footprint.t ->
  (unit -> unit) -> handle
(** [every t ~period f] runs [f] every [period], starting one period
    from now, with optional uniform [jitter] added to each firing.
    Returns the handle of the {e next} occurrence chain; cancelling it
    stops the recurrence.

    RNG ownership: a jittered recurrence draws one [Rng.int] from the
    engine's {e root} RNG at every re-arm — i.e. at creation and again
    each time [f] fires — not from a private split. The draw order of
    the root RNG is therefore part of a seeded simulation's observable
    behaviour: any refactor that adds, removes or reorders root-RNG
    consumers (an [every ~jitter], a component calling {!rng} +
    [Rng.split], ...) changes every subsequent split and so the whole
    run. Components must split once at construction in a fixed order
    and draw only from their own split thereafter; a regression test
    pins the jitter draw order. Run-level parallelism (Jury_par) is
    unaffected: each run owns a whole engine, so no RNG is ever shared
    across runs. *)

(** {1 Schedule exploration}

    A {e schedule} of a deterministic simulation is a tie-break order
    on the event heap: events at distinct timestamps execute in time
    order whatever happens, so the only scheduling freedom is which of
    several equal-timestamp events runs first. The chooser hook hands
    that freedom to an external scheduler (the [Jury_mc] explorer);
    with no chooser installed the engine is byte-for-byte the seed. *)

type candidate = {
  cand_seq : int;           (** insertion sequence, the stable event id *)
  cand_at : Time.t;         (** the tied timestamp (equal across the array) *)
  cand_footprint : Footprint.t;
      (** as declared at [schedule] time; {!Footprint.opaque} if not *)
}

type chooser = candidate array -> int
(** Called at every {e choice point} — two or more live events tied at
    the minimal timestamp — with the candidates in ascending insertion
    order; returns the index of the event to run next. Index 0
    reproduces the default FIFO order. Raising aborts the run. *)

val set_chooser : t -> chooser option -> unit
(** Install (or remove) the tie chooser. Cancelled events never reach
    the chooser: they drain silently first, so a chooser always sees
    [>= 2] live candidates. *)

val run : ?until:Time.t -> t -> unit
(** Drains the event queue, advancing simulated time, until the queue
    is empty or [until] is reached (events scheduled after [until]
    remain pending). *)

val step : t -> bool
(** Executes the single next event; [false] if the queue was empty. *)

val pending_events : t -> int
(** Number of queue slots still occupied (an upper bound on live
    events; cancelled events are counted until they drain). *)

val executed_events : t -> int
(** Events this engine has executed so far (cancelled events drain
    without being counted). *)

val total_executed : unit -> int
(** Process-wide executed-event count, summed over every engine on
    every domain; flushed to the shared counter once per {!run} call.
    The bench derives its events/sec figures from deltas of this. *)
