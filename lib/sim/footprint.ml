type t =
  | Opaque
  | Touches of int list  (* sorted, distinct *)

let opaque = Opaque
let touches ids = Touches (List.sort_uniq compare ids)
let is_opaque = function Opaque -> true | Touches _ -> false

(* Both lists sorted ascending. *)
let rec disjoint xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> true
  | x :: xs', y :: ys' ->
      if x < y then disjoint xs' ys
      else if x > y then disjoint xs ys'
      else false

let independent a b =
  match (a, b) with
  | Opaque, _ | _, Opaque -> false
  | Touches xs, Touches ys -> disjoint xs ys

let union a b =
  match (a, b) with
  | Opaque, _ | _, Opaque -> Opaque
  | Touches xs, Touches ys -> Touches (List.sort_uniq compare (xs @ ys))

(* Namespaces: id lands in [space * stride, (space + 1) * stride). Ids
   beyond a stride wrap within their namespace — merging resources,
   never crossing into another namespace, so the error direction is
   conservative. *)
let stride = 1 lsl 20
let in_space space i = (space * stride) + (i land (stride - 1))

let switch i = in_space 1 i
let host i = in_space 2 i
let controller i = in_space 3 i
let store i = in_space 4 i
let validator_shard i = in_space 5 i
let trigger i = in_space 6 i
let named s = in_space 7 (Hashtbl.hash s)
let taint s = trigger (Hashtbl.hash s)

let pp fmt = function
  | Opaque -> Format.pp_print_string fmt "opaque"
  | Touches ids ->
      Format.fprintf fmt "{%s}"
        (String.concat ","
           (List.map
              (fun id ->
                let space = id / stride and i = id mod stride in
                let name =
                  match space with
                  | 1 -> "sw"
                  | 2 -> "host"
                  | 3 -> "ctl"
                  | 4 -> "store"
                  | 5 -> "shard"
                  | 6 -> "trig"
                  | 7 -> "res"
                  | _ -> "?"
                in
                Printf.sprintf "%s:%d" name i)
              ids))
