type event = { mutable live : bool; action : unit -> unit }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable trace : Jury_obs.Trace.t;
  mutable executed : int;
}

type handle = { event : event; engine : t }

(* Process-wide executed-event tally across every engine (and every
   domain — experiment sweeps run one engine per pool task). Updated in
   one batch per [run] call, not per event, so the shared cache line is
   touched a handful of times per simulation instead of millions. *)
let global_executed = Atomic.make 0
let total_executed () = Atomic.get global_executed

let create ?(seed = 42) () =
  { clock = Time.zero;
    seq = 0;
    queue = Heap.create ();
    root_rng = Rng.create seed;
    trace = Jury_obs.Trace.null ();
    executed = 0 }

let now t = t.clock
let now_ns t = Time.to_ns t.clock
let rng t = t.root_rng
let trace t = t.trace
let set_trace t trace = t.trace <- trace

let schedule_at t ~at f =
  if Time.(at < t.clock) then
    invalid_arg "Engine.schedule_at: time is in the past";
  let event = { live = true; action = f } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:at ~seq:t.seq event;
  { event; engine = t }

let schedule t ~after f = schedule_at t ~at:(Time.add t.clock after) f

let cancel h =
  ignore h.engine;
  h.event.live <- false

let is_pending h = h.event.live

let every t ~period ?jitter f =
  (* A recurrence is a chain of one-shot events; the caller's handle is
     kept pointing at the chain head so cancelling it stops the chain. *)
  let chain = { live = true; action = (fun () -> ()) } in
  let handle = { event = chain; engine = t } in
  let rec arm () =
    let delay =
      match jitter with
      | None -> period
      | Some j ->
          if Time.to_ns j = 0 then period
          else Time.add period (Time.ns (Rng.int t.root_rng (Time.to_ns j)))
    in
    ignore
      (schedule t ~after:delay (fun () ->
           if chain.live then begin
             f ();
             if chain.live then arm ()
           end))
  in
  arm ();
  handle

let execute _t event =
  if event.live then begin
    event.live <- false;
    event.action ()
  end

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, _, event) ->
      t.clock <- at;
      t.executed <- t.executed + 1;
      execute t event;
      true

let run ?until t =
  let before = t.executed in
  (match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | None -> continue := false
        | Some (at, _, _) ->
            if Time.(at > horizon) then begin
              t.clock <- horizon;
              continue := false
            end
            else ignore (step t)
      done);
  ignore (Atomic.fetch_and_add global_executed (t.executed - before))

let executed_events t = t.executed

let pending_events t = Heap.length t.queue
