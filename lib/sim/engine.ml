type event = { mutable live : bool; action : unit -> unit; fp : Footprint.t }

type candidate = {
  cand_seq : int;
  cand_at : Time.t;
  cand_footprint : Footprint.t;
}

type chooser = candidate array -> int

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable trace : Jury_obs.Trace.t;
  mutable executed : int;
  mutable chooser : chooser option;
}

type handle = { event : event; engine : t }

(* Process-wide executed-event tally across every engine (and every
   domain — experiment sweeps run one engine per pool task). Updated in
   one batch per [run] call, not per event, so the shared cache line is
   touched a handful of times per simulation instead of millions. *)
let global_executed = Atomic.make 0
let total_executed () = Atomic.get global_executed

let create ?(seed = 42) ?tie () =
  { clock = Time.zero;
    seq = 0;
    queue = Heap.create ?tie ();
    root_rng = Rng.create seed;
    trace = Jury_obs.Trace.null ();
    executed = 0;
    chooser = None }

let now t = t.clock
let now_ns t = Time.to_ns t.clock
let rng t = t.root_rng
let trace t = t.trace
let set_trace t trace = t.trace <- trace
let set_chooser t chooser = t.chooser <- chooser

let schedule_at t ?(footprint = Footprint.opaque) ~at f =
  if Time.(at < t.clock) then
    invalid_arg "Engine.schedule_at: time is in the past";
  let event = { live = true; action = f; fp = footprint } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:at ~seq:t.seq event;
  { event; engine = t }

let schedule t ?footprint ~after f =
  schedule_at t ?footprint ~at:(Time.add t.clock after) f

let cancel h =
  ignore h.engine;
  h.event.live <- false

let is_pending h = h.event.live

let every t ~period ?jitter ?footprint f =
  (* A recurrence is a chain of one-shot events; the caller's handle is
     kept pointing at the chain head so cancelling it stops the chain. *)
  let chain = { live = true; action = (fun () -> ()); fp = Footprint.opaque } in
  let handle = { event = chain; engine = t } in
  let rec arm () =
    let delay =
      match jitter with
      | None -> period
      | Some j ->
          if Time.to_ns j = 0 then period
          else Time.add period (Time.ns (Rng.int t.root_rng (Time.to_ns j)))
    in
    ignore
      (schedule t ?footprint ~after:delay (fun () ->
           if chain.live then begin
             f ();
             if chain.live then arm ()
           end))
  in
  arm ();
  handle

let execute _t event =
  if event.live then begin
    event.live <- false;
    event.action ()
  end

(* One heap removal per call, mirroring the plain path's accounting
   (clock advance, executed tick) exactly. Cancelled events drain
   before the chooser is consulted — they are no-ops, so their order
   within a tie is unobservable — and the chooser only ever sees a tie
   of two or more live events. *)
let step_choose t choose =
  match Heap.peek t.queue with
  | None -> false
  | Some _ ->
      let tied = Heap.tied_front t.queue in
      let dead =
        List.find_opt (fun (_, _, (e : event)) -> not e.live) tied
      in
      let at, seq =
        match dead with
        | Some (at, seq, _) -> (at, seq)
        | None -> (
            match tied with
            | [ (at, seq, _) ] -> (at, seq)
            | _ ->
                let cands =
                  Array.of_list
                    (List.map
                       (fun (at, seq, (e : event)) ->
                         { cand_seq = seq; cand_at = at; cand_footprint = e.fp })
                       tied)
                in
                let i = choose cands in
                if i < 0 || i >= Array.length cands then
                  invalid_arg "Engine: chooser index out of range";
                (cands.(i).cand_at, cands.(i).cand_seq))
      in
      (match Heap.remove_seq t.queue ~seq with
      | None -> assert false
      | Some (_, _, event) ->
          t.clock <- at;
          t.executed <- t.executed + 1;
          execute t event);
      true

let step t =
  match t.chooser with
  | Some choose -> step_choose t choose
  | None -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (at, _, event) ->
          t.clock <- at;
          t.executed <- t.executed + 1;
          execute t event;
          true)

let run ?until t =
  let before = t.executed in
  (match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | None -> continue := false
        | Some (at, _, _) ->
            if Time.(at > horizon) then begin
              t.clock <- horizon;
              continue := false
            end
            else ignore (step t)
      done);
  ignore (Atomic.fetch_and_add global_executed (t.executed - before))

let executed_events t = t.executed

let pending_events t = Heap.length t.queue
