(** Deterministic pseudo-random number generation.

    A splitmix64 generator: tiny state, excellent statistical quality
    for simulation purposes, and — crucially — fully deterministic from
    the seed, so every experiment in this repository is reproducible
    bit-for-bit. Each simulated component takes its own [t] (usually
    [split] from a parent) so that adding a component does not perturb
    the random stream of the others. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** An independent generator with the same state — the copy and the
    original produce the same stream from here on. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean;
    used for Poisson inter-arrival times. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal sample — models heavy-ish tails of controller service
    times. *)

val pareto : t -> xm:float -> alpha:float -> float
(** Bounded-below Pareto sample — models flow-size distributions. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal sample (Box–Muller) — models symmetric jitter. *)

val choice : t -> 'a array -> 'a
(** Uniform pick from a non-empty array. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t k xs] picks [k] distinct elements of
    [xs] uniformly (all of [xs] if [k >= length xs]). Order of the
    result is unspecified. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
