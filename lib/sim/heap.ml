type 'a cell = { key : Time.t; seq : int; value : 'a }

(* Slots at indices >= [size] hold [None]. Keeping raw cells there (the
   previous representation) pinned every popped payload until a later
   push happened to overwrite its slot — a space leak proportional to
   the heap's high-water mark. *)
type 'a t = { mutable data : 'a cell option array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let less a b =
  let c = Time.compare a.key b.key in
  if c <> 0 then c < 0 else a.seq < b.seq

let get h i =
  match h.data.(i) with Some c -> c | None -> assert false

let grow h =
  let cap = Array.length h.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let ndata = Array.make ncap None in
  Array.blit h.data 0 ndata 0 h.size;
  h.data <- ndata

let push h ~key ~seq value =
  let cell = { key; seq; value } in
  if h.size = Array.length h.data then grow h;
  (* Sift up. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  h.data.(!i) <- Some cell;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less cell (get h parent) then begin
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- Some cell;
      i := parent
    end
    else continue := false
  done

let sift_down h i0 =
  let n = h.size in
  let cell = get h i0 in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && less (get h l) (get h !smallest) then smallest := l;
    if r < n && less (get h r) (get h !smallest) then smallest := r;
    if !smallest <> !i then begin
      h.data.(!i) <- h.data.(!smallest);
      h.data.(!smallest) <- Some cell;
      i := !smallest
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- None;
      sift_down h 0
    end
    else h.data.(0) <- None;
    Some (top.key, top.seq, top.value)
  end

let peek h =
  if h.size = 0 then None
  else
    let top = get h 0 in
    Some (top.key, top.seq, top.value)

let clear h =
  h.data <- [||];
  h.size <- 0
