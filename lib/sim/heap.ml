type 'a cell = { key : Time.t; seq : int; value : 'a }

type tie = int -> int -> bool

let fifo : tie = ( < )
let lifo : tie = ( > )

(* Slots at indices >= [size] hold [None]. Keeping raw cells there (the
   previous representation) pinned every popped payload until a later
   push happened to overwrite its slot — a space leak proportional to
   the heap's high-water mark. *)
type 'a t = {
  mutable data : 'a cell option array;
  mutable size : int;
  tie : tie;
}

let create ?(tie = fifo) () = { data = [||]; size = 0; tie }
let length h = h.size
let is_empty h = h.size = 0

let less h a b =
  let c = Time.compare a.key b.key in
  if c <> 0 then c < 0 else h.tie a.seq b.seq

let get h i =
  match h.data.(i) with Some c -> c | None -> assert false

let grow h =
  let cap = Array.length h.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let ndata = Array.make ncap None in
  Array.blit h.data 0 ndata 0 h.size;
  h.data <- ndata

let sift_up h i0 =
  let cell = get h i0 in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less h cell (get h parent) then begin
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- Some cell;
      i := parent
    end
    else continue := false
  done

let push h ~key ~seq value =
  let cell = { key; seq; value } in
  if h.size = Array.length h.data then grow h;
  let i = h.size in
  h.size <- h.size + 1;
  h.data.(i) <- Some cell;
  sift_up h i

let sift_down h i0 =
  let n = h.size in
  let cell = get h i0 in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && less h (get h l) (get h !smallest) then smallest := l;
    if r < n && less h (get h r) (get h !smallest) then smallest := r;
    if !smallest <> !i then begin
      h.data.(!i) <- h.data.(!smallest);
      h.data.(!smallest) <- Some cell;
      i := !smallest
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- None;
      sift_down h 0
    end
    else h.data.(0) <- None;
    Some (top.key, top.seq, top.value)
  end

let peek h =
  if h.size = 0 then None
  else
    let top = get h 0 in
    Some (top.key, top.seq, top.value)

let tied_front h =
  if h.size = 0 then []
  else begin
    let min_key = (get h 0).key in
    let tied = ref [] in
    for i = h.size - 1 downto 0 do
      let c = get h i in
      if Time.compare c.key min_key = 0 then tied := c :: !tied
    done;
    List.map
      (fun c -> (c.key, c.seq, c.value))
      (List.sort (fun a b -> compare a.seq b.seq) !tied)
  end

let remove_seq h ~seq =
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < h.size do
    if (get h !i).seq = seq then found := !i;
    incr i
  done;
  if !found < 0 then None
  else begin
    let c = get h !found in
    h.size <- h.size - 1;
    if !found < h.size then begin
      h.data.(!found) <- h.data.(h.size);
      h.data.(h.size) <- None;
      (* The hole is refilled with the last element, which may need to
         move either way relative to its new parent and children. *)
      let moved = get h !found in
      if !found > 0 && less h moved (get h ((!found - 1) / 2)) then
        sift_up h !found
      else sift_down h !found
    end
    else h.data.(!found) <- None;
    Some (c.key, c.seq, c.value)
  end

let clear h =
  h.data <- [||];
  h.size <- 0
