(** Simulated time.

    Time is counted in integer nanoseconds since the start of the
    simulation, which keeps event ordering exact and reproducible (no
    floating-point accumulation error across millions of events). The
    63-bit range covers ~292 simulated years, far beyond any experiment
    in this repository. *)

type t = private int
(** Nanoseconds since simulation start. *)

val zero : t
(** The simulation epoch. *)

val ns : int -> t
(** [ns], [us], [ms] and [sec] build a time from a count of the unit
    they are named after. *)

val us : int -> t
val ms : int -> t
val sec : int -> t

val of_float_sec : float -> t
(** [of_float_sec s] rounds [s] seconds to the nearest nanosecond. *)

val of_float_ms : float -> t
val of_float_us : float -> t

val to_ns : t -> int
(** The [to_*] family converts back to a scalar in the named unit;
    only [to_ns] is exact. *)

val to_float_us : t -> float
val to_float_ms : t -> float
val to_float_sec : t -> float

val add : t -> t -> t
(** [add a b] is [a + b]. *)

val sub : t -> t -> t
(** [sub a b] is [a - b]; raises [Invalid_argument] if the result would
    be negative, since simulated time never runs backwards. *)

val diff : t -> t -> t
(** [diff a b] is [abs (a - b)]. *)

val mul : t -> int -> t
(** [mul t n] scales by a non-negative integer. *)

val div : t -> int -> t
(** [div t n] is integer division (rounds toward zero). *)

val compare : t -> t -> int
(** Standard total order, compatible with the comparison operators
    below and with [min]/[max]. *)

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["129.3ms"]. *)

val to_string : t -> string
(** [to_string t] renders like {!pp}. *)
