(** Imperative binary min-heap, the core of the event queue.

    Ties are broken by an insertion sequence number supplied by the
    caller, which gives the FIFO ordering of simultaneous events that a
    deterministic discrete-event simulation requires. *)

type 'a t

val create : unit -> 'a t
(** An empty heap. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool
(** [length h = 0]. *)

val push : 'a t -> key:Time.t -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop : 'a t -> (Time.t * int * 'a) option
(** Removes and returns the minimum, or [None] if empty. *)

val peek : 'a t -> (Time.t * int * 'a) option
(** The minimum without removing it, or [None] if empty. *)

val clear : 'a t -> unit
(** Discard every element. *)
