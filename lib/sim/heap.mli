(** Imperative binary min-heap, the core of the event queue.

    Ties are broken by an insertion sequence number supplied by the
    caller. The default tie-breaker is FIFO on that number, which gives
    the arrival ordering of simultaneous events that a deterministic
    discrete-event simulation requires; a heap can instead be created
    with any strict total order on sequence numbers (the hook the
    schedule explorer builds on), and {!tied_front}/{!remove_seq} let a
    scheduler inspect and resolve a timestamp tie one event at a
    time. *)

type 'a t

type tie = int -> int -> bool
(** [tie a b] orders the insertion sequence numbers of two equal-key
    elements: [true] means the element inserted as [a] pops before the
    one inserted as [b]. A tie-breaker must be a strict total order on
    the sequence numbers the caller supplies (irreflexive, transitive,
    total) or the pop order is unspecified. *)

val fifo : tie
(** [( < )] — first inserted pops first. The default, and the seed's
    documented behaviour. *)

val lifo : tie
(** [( > )] — last inserted pops first; the exact reverse of {!fifo}
    on any set of equal-key elements. *)

val create : ?tie:tie -> unit -> 'a t
(** An empty heap breaking key ties with [tie] (default {!fifo}). *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool
(** [length h = 0]. *)

val push : 'a t -> key:Time.t -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop : 'a t -> (Time.t * int * 'a) option
(** Removes and returns the minimum, or [None] if empty. *)

val peek : 'a t -> (Time.t * int * 'a) option
(** The minimum without removing it, or [None] if empty. *)

val tied_front : 'a t -> (Time.t * int * 'a) list
(** Every element whose key equals the minimum key, in ascending
    insertion-sequence order (regardless of the heap's tie-breaker);
    [[]] if empty. O(n) — meant for schedule exploration over small
    queues, not for the hot pop path. *)

val remove_seq : 'a t -> seq:int -> (Time.t * int * 'a) option
(** Removes the element inserted with sequence number [seq], wherever
    it sits in the heap; [None] if no such element. O(n) search plus a
    sift. *)

val clear : 'a t -> unit
(** Discard every element. *)
