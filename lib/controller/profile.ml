open Jury_sim

type forwarding_style = Reactive_exact | Reactive_src_dst | Proactive_dst

type t = {
  name : string;
  consistency : Jury_store.Fabric.consistency;
  store_profile : Jury_store.Fabric.latency_profile;
  base_service : Time.t;
  service_sigma : float;
  flow_writes_per_packet_in : int;
  flow_backup_sync_per_node : Time.t;
  remote_flow_apply : Time.t;
  remote_other_apply : Time.t;
  packet_out_service : Time.t;
  response_latency_base : Time.t;
  response_jitter_median_us : float;
  response_jitter_sigma : float;
  lldp_period : Time.t;
  lldp_jitter : Time.t;
  flow_idle_timeout : int;
  forwarding : forwarding_style;
  ecmp : bool;
  decapsulation_cost_median_us : float;
  clustered : bool;
}

let onos =
  { name = "onos";
    consistency = Jury_store.Fabric.Eventual;
    store_profile = Jury_store.Fabric.default_eventual_profile;
    base_service = Time.us 200;
    service_sigma = 0.3;
    flow_writes_per_packet_in = 1;
    flow_backup_sync_per_node = Time.us 215;
    remote_flow_apply = Time.us 10;
    remote_other_apply = Time.us 3;
    packet_out_service = Time.of_float_us 4.5;
    response_latency_base = Time.us 250;
    response_jitter_median_us = 6_000.;
    response_jitter_sigma = 1.0;
    lldp_period = Time.sec 3;
    lldp_jitter = Time.ms 200;
    flow_idle_timeout = 10;
    forwarding = Reactive_exact;
    ecmp = false;
    decapsulation_cost_median_us = 0.;
    clustered = true }

(* ONOS with an ECMP-style load-balancing forwarding app: equal-cost
   next hops are picked at random, so replicated executions legitimately
   diverge — the non-determinism the paper's consensus rule (SIV-C B)
   must tolerate. *)
let onos_ecmp = { onos with name = "onos-ecmp"; ecmp = true }

let odl_strong_profile =
  { Jury_store.Fabric.local_apply = Time.us 50;
    replication_base = Time.us 400;
    replication_jitter_us = 200.;
    strong_round_base = Time.zero;
    strong_round_per_node = Time.us 900 }

let odl =
  { name = "odl";
    consistency = Jury_store.Fabric.Strong;
    store_profile = odl_strong_profile;
    base_service = Time.us 350;
    service_sigma = 0.35;
    flow_writes_per_packet_in = 1;
    flow_backup_sync_per_node = Time.zero;
    remote_flow_apply = Time.zero;
    remote_other_apply = Time.zero;
    packet_out_service = Time.us 9;
    response_latency_base = Time.us 400;
    response_jitter_median_us = 35_000.;
    response_jitter_sigma = 0.9;
    lldp_period = Time.sec 3;
    lldp_jitter = Time.ms 200;
    flow_idle_timeout = 10;
    forwarding = Reactive_exact;
    ecmp = false;
    decapsulation_cost_median_us = 95.;
    clustered = true }

let odl_vanilla = { odl with name = "odl-vanilla"; forwarding = Proactive_dst }

(* Ryu: a single-threaded Python event loop with no clustered store at
   all. Each instance keeps a purely local view; nothing is replicated
   between instances by the controller itself, so JURY must validate it
   by replicating the *action stream* across standalone instances
   (Deployment runs the fabric in standalone mode and mirrors each
   secondary's planned cache writes into its own local store). The
   service time is higher than ONOS — one Python thread serialises the
   whole pipeline — but there is no flow-backup stall and no
   coordination round, so a single instance is simple and predictable. *)
let ryu =
  { name = "ryu";
    consistency = Jury_store.Fabric.Eventual;
    store_profile = Jury_store.Fabric.default_eventual_profile;
    base_service = Time.us 520;
    service_sigma = 0.45;
    flow_writes_per_packet_in = 1;
    flow_backup_sync_per_node = Time.zero;
    remote_flow_apply = Time.zero;
    remote_other_apply = Time.zero;
    packet_out_service = Time.us 12;
    response_latency_base = Time.us 180;
    response_jitter_median_us = 9_000.;
    response_jitter_sigma = 1.1;
    lldp_period = Time.sec 3;
    lldp_jitter = Time.ms 200;
    flow_idle_timeout = 10;
    forwarding = Reactive_exact;
    ecmp = false;
    decapsulation_cost_median_us = 0.;
    clustered = false }

(* Every stochastic latency collapsed to its location parameter. The
   run is still a faithful deployment — it just sits at the median of
   every distribution — and, crucially, none of the jitter RNGs are
   drawn at all, so equal-timestamp events no longer interfere through
   shared random streams. The schedule explorer (Jury_mc) requires
   this: with jitter on, two tied events that each draw from a shared
   stream never commute, and genuine same-instant races (replica
   fan-out, k-way response collection) almost never tie in the first
   place. *)
let deterministic t =
  { t with
    name = t.name ^ "-det";
    service_sigma = 0.;
    response_jitter_sigma = 0.;
    lldp_jitter = Time.zero;
    store_profile = { t.store_profile with replication_jitter_us = 0. } }

let strong_sync_cost t ~nodes =
  match t.consistency with
  | Jury_store.Fabric.Eventual -> Time.zero
  | Jury_store.Fabric.Strong ->
      Time.add t.store_profile.strong_round_base
        (Time.mul t.store_profile.strong_round_per_node nodes)

let write_sync_cost t ~nodes ~cache ~op =
  match t.consistency with
  | Jury_store.Fabric.Strong -> strong_sync_cost t ~nodes
  | Jury_store.Fabric.Eventual ->
      if
        Jury_store.Cache_names.normalize cache
        = Jury_store.Cache_names.flowsdb
        && op <> Jury_store.Event.Delete
      then Time.mul t.flow_backup_sync_per_node (max 0 (nodes - 1))
      else Time.zero
