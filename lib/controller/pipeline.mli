(** The controller's PACKET_IN → FLOW_MOD processing pipeline, modelled
    as a single FIFO server with stochastic service times.

    This is the component that produces every throughput shape in the
    paper's §VII-B: saturation when the offered PACKET_IN rate exceeds
    1/service-time (Fig. 4f/4g), queueing delay feeding detection-time
    tails (Fig. 4a–4c), and the Cbench collapse (Fig. 4e) via the
    overload model below.

    Overload model: a real ONOS under a Cbench blast accumulates
    backlog until TCP zero-window stalls and memory pressure make it
    stop emitting FLOW_MODs entirely. Here, when the backlog exceeds
    [overload_backlog] the server enters a degraded mode multiplying
    service times by [degraded_factor] and dropping new arrivals; it
    recovers when the backlog drains below half the threshold. *)

type t

type config = {
  base_service : Jury_sim.Time.t;   (** median service time *)
  service_sigma : float;           (** lognormal shape of service time *)
  extra_per_job : Jury_sim.Time.t; (** deterministic per-job add-on (e.g.
                                       the store's strong-sync cost) *)
  overload_backlog : Jury_sim.Time.t; (** backlog that trips overload *)
  degraded_factor : int;
}

val config :
  ?service_sigma:float -> ?extra_per_job:Jury_sim.Time.t ->
  ?overload_backlog:Jury_sim.Time.t -> ?degraded_factor:int ->
  base_service:Jury_sim.Time.t -> unit -> config

val create :
  ?footprint:Jury_sim.Footprint.t -> Jury_sim.Engine.t -> config -> t
(** [footprint] (default opaque) is attached to every job-completion
    event this server schedules: it should cover the server's own state
    plus whatever the jobs it runs may touch (for a controller pipeline,
    the controller and its store shard). *)

val submit : ?span:Jury_obs.Trace.span_id -> t -> (unit -> unit) -> unit
(** Enqueue a job; the thunk runs when the server completes it. Dropped
    silently (counted) while overloaded. When [span] names an open
    pipeline-service trace span, it is closed when the job completes
    (attrs record the queueing delay) or immediately on an overload
    drop (attr [dropped=overload]). *)

val add_load : t -> Jury_sim.Time.t -> unit
(** Consume server capacity without a completion callback — remote
    cache-event application, mastership chatter, etc. *)

val backlog : t -> Jury_sim.Time.t
(** Work currently queued ahead of a new arrival. *)

val utilization_hint : t -> float
(** Backlog expressed in multiples of the base service time, clamped to
    [0, 1000]; feeds load-dependent response-latency models. *)

val overloaded : t -> bool
val completed : t -> int
val dropped : t -> int
val set_extra_per_job : t -> Jury_sim.Time.t -> unit
