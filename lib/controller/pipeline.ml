open Jury_sim

type config = {
  base_service : Time.t;
  service_sigma : float;
  extra_per_job : Time.t;
  overload_backlog : Time.t;
  degraded_factor : int;
}

let config ?(service_sigma = 0.25) ?(extra_per_job = Time.zero)
    ?(overload_backlog = Time.ms 1500) ?(degraded_factor = 200) ~base_service
    () =
  { base_service; service_sigma; extra_per_job; overload_backlog;
    degraded_factor }

type t = {
  engine : Engine.t;
  mutable cfg : config;
  footprint : Footprint.t;
  rng : Rng.t;
  queue : (unit -> unit) Queue.t;
  mutable serving : bool;
  mutable busy_until : Time.t;
  mutable overloaded : bool;
  mutable collapsed : bool;
  mutable window_start : Time.t;
  mutable window_drops : int;
  mutable completed : int;
  mutable dropped : int;
}

let create ?(footprint = Footprint.opaque) engine cfg =
  { engine;
    cfg;
    footprint;
    rng = Rng.split (Engine.rng engine);
    queue = Queue.create ();
    serving = false;
    busy_until = Time.zero;
    overloaded = false;
    collapsed = false;
    window_start = Time.zero;
    window_drops = 0;
    completed = 0;
    dropped = 0 }

let backlog t =
  (* Work ahead of a new arrival: the in-flight remainder plus a
     base-service estimate per queued job (their true service times are
     revealed at execution). *)
  let now = Engine.now t.engine in
  let in_flight =
    if Time.(t.busy_until <= now) then Time.zero else Time.sub t.busy_until now
  in
  Time.add in_flight (Time.mul t.cfg.base_service (Queue.length t.queue))

let update_overload t =
  let b = backlog t in
  if t.overloaded then begin
    if Time.(b < Time.div t.cfg.overload_backlog 2) then t.overloaded <- false
  end
  else if Time.(b > t.cfg.overload_backlog) then t.overloaded <- true

(* Steady moderate overload just sheds arrivals (TCP backpressure: the
   switch stalls, the server plateaus at capacity). A Cbench-scale blast
   — drop rate several times the service capacity, sustained for a full
   window — pushes the controller into the collapsed regime the paper
   observed (memory bloat, zero-window stalls), where service slows by
   [degraded_factor] and throughput goes to ~0. *)
let collapse_window = Time.sec 1

let note_drop t =
  let now = Engine.now t.engine in
  if Time.(Time.diff now t.window_start > collapse_window) then begin
    let per_window_capacity =
      Float.max 1.
        (Time.to_float_sec collapse_window
        /. Float.max 1e-6 (Time.to_float_sec t.cfg.base_service))
    in
    if float_of_int t.window_drops > 5. *. per_window_capacity then
      t.collapsed <- true
    else if
      t.collapsed
      && float_of_int t.window_drops < 0.5 *. per_window_capacity
      && not t.overloaded
    then t.collapsed <- false;
    t.window_start <- now;
    t.window_drops <- 0
  end;
  t.window_drops <- t.window_drops + 1

let sample_service t =
  let median_us = Time.to_float_us t.cfg.base_service in
  let mu = log (Float.max 0.001 median_us) in
  let s =
    Time.of_float_us (Rng.lognormal t.rng ~mu ~sigma:t.cfg.service_sigma)
  in
  let s = Time.add s t.cfg.extra_per_job in
  if t.collapsed then Time.mul s t.cfg.degraded_factor else s

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.serving <- false
  | Some job ->
      t.serving <- true;
      let now = Engine.now t.engine in
      let start = Time.max now t.busy_until in
      let finish = Time.add start (sample_service t) in
      t.busy_until <- finish;
      ignore
        (Engine.schedule_at t.engine ~footprint:t.footprint ~at:finish
           (fun () ->
             t.completed <- t.completed + 1;
             (* The job may add_load (store-sync stalls); the next job
                starts only after those are absorbed. *)
             job ();
             start_next t))

let submit ?span t job =
  update_overload t;
  if t.overloaded then begin
    t.dropped <- t.dropped + 1;
    note_drop t;
    match span with
    | None -> ()
    | Some span ->
        Jury_obs.Trace.close_span (Engine.trace t.engine)
          ~t_ns:(Engine.now_ns t.engine) span
          [ ("dropped", "overload") ]
  end
  else begin
    let job =
      match span with
      | None -> job
      | Some span ->
          let enqueued_ns = Engine.now_ns t.engine in
          fun () ->
            job ();
            let now_ns = Engine.now_ns t.engine in
            Jury_obs.Trace.close_span (Engine.trace t.engine) ~t_ns:now_ns
              span
              [ ("queued_us",
                 Printf.sprintf "%.1f"
                   (float_of_int (now_ns - enqueued_ns) /. 1e3)) ]
    in
    Queue.push job t.queue;
    if not t.serving then start_next t
  end

let add_load t cost =
  let now = Engine.now t.engine in
  let start = Time.max now t.busy_until in
  t.busy_until <- Time.add start cost;
  update_overload t

let utilization_hint t =
  let b = Time.to_float_us (backlog t) in
  let base = Float.max 1. (Time.to_float_us t.cfg.base_service) in
  Float.min 1000. (b /. base)

let overloaded t = t.overloaded || t.collapsed
let completed t = t.completed
let dropped t = t.dropped
let set_extra_per_job t extra = t.cfg <- { t.cfg with extra_per_job = extra }
