(** A single controller replica.

    The replica embodies the control logic both ONOS and ODL share in
    the paper's model: topology discovery via LLDP, host tracking via
    ARP, reactive (or proactive, per {!Profile.forwarding_style})
    forwarding, northbound flow installation — with every response
    expressed as a list of {!Types.action}s (cache writes and network
    sends), so that:

    - the {e plan} step ({!plan}) is read-only and replayable: JURY's
      replicated execution at secondary controllers is exactly a call
      to [plan] whose results are captured instead of applied;
    - the {e apply} step threads the trigger's taint into every cache
      event and network message, giving action attribution;
    - fault injectors mutate the planned actions (or the apply step)
      without touching the planning logic, mirroring "bugs in the
      controller" rather than bugs in the model.

    Processing runs through the {!Pipeline} so that latency and
    throughput behave like the measured controllers. *)

open Jury_openflow

type t

type observer = {
  on_response : Types.Taint.t option -> Types.trigger -> Types.action list -> unit;
      (** fired once per processed trigger with the final (possibly
          fault-mutated) action list, before application *)
  on_applied : Types.Taint.t option -> Types.action -> unit;
      (** fired for every externalised side effect (after cache write
          success / network transmission) *)
  on_write_failed : Types.Taint.t option -> Types.action -> string -> unit;
      (** a cache write failed (e.g. "failed to obtain lock") *)
}

val null_observer : observer

val create :
  Jury_sim.Engine.t -> id:int -> profile:Profile.t ->
  fabric:Jury_store.Fabric.t -> t

val id : t -> int
val profile : t -> Profile.t
val engine : t -> Jury_sim.Engine.t
val fabric : t -> Jury_store.Fabric.t
val pipeline : t -> Pipeline.t

val set_switch_tx : t -> (Of_types.Dpid.t -> Of_message.t -> unit) -> unit
(** How this replica reaches switches it masters (set by the cluster;
    includes control-channel latency). *)

val set_observer : t -> observer -> unit
val master_of : t -> Of_types.Dpid.t -> int option
(** Mastership lookup through MASTERDB. *)

val masters : t -> Of_types.Dpid.t -> bool

(** {1 Trigger entry points} *)

val submit : t -> ?taint:Types.Taint.t -> Types.trigger -> unit
(** Queue an external trigger through the processing pipeline. *)

val run_internal : t -> app:string -> Types.internal_work -> unit
(** Run an internal trigger (administrator action, proactive app). *)

val plan : t -> Types.trigger -> Types.action list
(** Read-only planning: what would this replica do right now? *)

val plan_as : t -> as_id:int -> Types.trigger -> Types.action list
(** Plan from the perspective of controller [as_id]: replicated
    execution must replay the {e primary's} control sequence, so
    id-dependent logic (e.g. the link-liveness election) evaluates as
    the primary would, on this replica's state. *)

val shadow_execute : t -> ?as_id:int -> Types.trigger -> Types.action list
(** {!plan_as} with this replica's fault mutator applied — JURY's
    replicated execution: a faulty replica is faulty in replicated
    execution too, but nothing is written or sent. *)

val sample_response_fate : t -> [ `Respond of Jury_sim.Time.t | `Omit ]
(** Draw the fate of one response from this replica: delivered after
    the sampled latency (response-delay faults included), or omitted
    (response-omission faults). *)

val start_discovery : t -> unit
(** Begin periodic LLDP emission on mastered switches. *)

(** {1 Fault hooks} *)

val set_mutator :
  t -> (Types.trigger -> Types.action list -> Types.action list) option -> unit
(** Transforms planned actions before application — the generic T1/T2
    fault lever. [None] restores correct behaviour. *)

val set_response_delay : t -> Jury_sim.Time.t -> unit
(** Extra latency added to every response (slow / timing-faulty
    replica). *)

val set_omit_probability : t -> float -> unit
(** Probability of silently dropping a whole response (response
    omission). *)

val omit_probability : t -> float
(** Current response-omission probability. A replica at [>= 1.0] is
    deterministically silent — the liveness signal the election
    protocol's failure detector reads ({!Cluster.enable_election})
    without touching any RNG stream. *)

val invalidate_view : t -> unit
(** Mark the cached topology view dirty so the next read rebuilds it
    from the replica's cache tables — required after an out-of-band
    state transfer ({!Jury_store.Fabric.resync}) that bypasses the
    listener path ordinarily keeping the view fresh. *)

val raw_network_send : t -> Of_types.Dpid.t -> Of_message.payload -> unit
(** Send to the network {e bypassing} the cache — only a misbehaving
    controller does this (§II-A.3); exposed for fault scenarios. Still
    visible to JURY's egress interception. *)

val response_latency_sample : t -> Jury_sim.Time.t
(** One sample of this replica's response latency towards the
    validator: channel base + load-scaled processing jitter. *)

val liveness_master_for_link :
  t -> Of_types.Dpid.t -> Of_types.Dpid.t -> int option
(** The replica that tracks liveness of a link: the higher-id master of
    the two endpoint switches (the ONOS election rule from §III-B). *)
