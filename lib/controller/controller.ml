open Jury_sim
open Jury_openflow
module Frame = Jury_packet.Frame
module Fabric = Jury_store.Fabric
module Event = Jury_store.Event
module Graph = Jury_topo.Graph
module Names = Jury_store.Cache_names

type observer = {
  on_response : Types.Taint.t option -> Types.trigger -> Types.action list -> unit;
  on_applied : Types.Taint.t option -> Types.action -> unit;
  on_write_failed : Types.Taint.t option -> Types.action -> string -> unit;
}

let null_observer =
  { on_response = (fun _ _ _ -> ());
    on_applied = (fun _ _ -> ());
    on_write_failed = (fun _ _ _ -> ()) }

type t = {
  engine : Engine.t;
  id : int;
  profile : Profile.t;
  fabric : Fabric.t;
  pipeline : Pipeline.t;
  rng : Rng.t;
  mutable switch_tx : Of_types.Dpid.t -> Of_message.t -> unit;
  mutable observer : observer;
  mutable next_xid : int;
  mutable next_internal : int;
  mutable mutator :
    (Types.trigger -> Types.action list -> Types.action list) option;
  mutable response_delay : Time.t;
  mutable omit_probability : float;
  (* Cached topology view, rebuilt lazily when LINKSDB/SWITCHDB move. *)
  mutable view : Graph.t;
  mutable view_dirty : bool;
}

(* Forward reference: the proactive host-rule app needs planning and
   submission machinery defined further down the module. *)
let proactive_host_rules_hook : (t -> Event.t -> unit) ref =
  ref (fun _ _ -> ())

let rec create engine ~id ~profile ~fabric =
  let pipeline =
    (* Completion events run controller application code: they touch
       this replica's state (caches' local views, private RNGs) and its
       store shard; everything further out is reached via separately
       scheduled (and separately tagged) events. *)
    Pipeline.create engine
      ~footprint:
        (Footprint.touches [ Footprint.controller id; Footprint.store id ])
      (Pipeline.config ~service_sigma:profile.Profile.service_sigma
         ~base_service:profile.Profile.base_service ())
  in
  let t =
    { engine;
      id;
      profile;
      fabric;
      pipeline;
      rng = Rng.split (Engine.rng engine);
      switch_tx = (fun _ _ -> ());
      observer = null_observer;
      next_xid = 0;
      next_internal = 0;
      mutator = None;
      response_delay = Time.zero;
      omit_probability = 0.;
      view = Graph.create ();
      view_dirty = true }
  in
  Fabric.subscribe fabric ~node:id (fun ~local ev ->
      if not local then begin
        (* Applying a peer's replicated event consumes pipeline time:
           flow-rule backups are expensive (ONOS/Hazelcast), the rest is
           cheap. *)
        let cost =
          if ev.Event.cache = Names.flowsdb then
            profile.Profile.remote_flow_apply
          else profile.Profile.remote_other_apply
        in
        if Time.(cost > Time.zero) then Pipeline.add_load t.pipeline cost;
        (* Transparent remote directives (§II-A.1): a FLOWSDB write by a
           peer targeting a switch we master becomes a real FLOW_MOD
           issued by us. *)
        if ev.Event.cache = Names.flowsdb then delegate_flow_event t ev
      end;
      (match ev.Event.cache with
      | c when c = Names.linksdb || c = Names.switchdb ->
          t.view_dirty <- true
      | _ -> ());
      (* Vanilla ODL pushes destination rules the moment a host is
         known (proactive forwarding). *)
      if
        profile.Profile.forwarding = Profile.Proactive_dst
        && ev.Event.cache = Names.hostdb
        && ev.Event.op <> Event.Delete
      then !proactive_host_rules_hook t ev)
  |> ignore;
  t

and delegate_flow_event t (ev : Event.t) =
  match (ev.Event.op, Values.Flow.dpid_of_key ev.Event.key) with
  | (Event.Create | Event.Update), Some dpid when masters t dpid -> (
      match Values.Flow.parse ev.Event.value with
      | Some fm ->
          let taint = Option.bind ev.Event.taint Types.Taint.of_string in
          send_network t taint dpid (Of_message.Flow_mod fm)
      | None -> ())
  | Event.Delete, Some _ | _, _ -> ()

and masters t dpid = master_of t dpid = Some t.id

and master_of t dpid =
  match
    Fabric.read t.fabric ~node:t.id ~cache:Names.masterdb
      ~key:(Values.Master.key dpid)
  with
  | Some v -> Values.Master.parse v
  | None -> None

and send_network t taint dpid payload =
  t.next_xid <- t.next_xid + 1;
  let msg = Of_message.make ~xid:t.next_xid payload in
  t.switch_tx dpid msg;
  t.observer.on_applied taint (Types.Network_send { dpid; payload })

let id t = t.id
let profile t = t.profile
let engine t = t.engine
let fabric t = t.fabric
let pipeline t = t.pipeline
let set_switch_tx t f = t.switch_tx <- f
let set_observer t o = t.observer <- o
let set_mutator t m = t.mutator <- m
let set_response_delay t d = t.response_delay <- d
let set_omit_probability t p = t.omit_probability <- p
let omit_probability t = t.omit_probability

(* After an out-of-band state transfer (crash-rejoin resync) the cached
   topology view no longer matches the replica's tables; mark it dirty
   so the next read rebuilds from the resynced caches. *)
let invalidate_view t = t.view_dirty <- true

let raw_network_send t dpid payload =
  send_network t None dpid payload

(* --- Shared-state reads --- *)

let read t cache key = Fabric.read t.fabric ~node:t.id ~cache ~key
let entries t cache = Fabric.entries t.fabric ~node:t.id ~cache

let switch_ports t dpid =
  match read t Names.switchdb (Values.Switch.key dpid) with
  | None -> []
  | Some v -> (
      match Values.Switch.parse v with
      | Some (_, ports) -> ports
      | None -> [])

let mastered_switches t =
  entries t Names.masterdb
  |> List.filter_map (fun (k, v) ->
         match (Values.parse_dpid_key k, Values.Master.parse v) with
         | Some dpid, Some m when m = t.id -> Some dpid
         | _ -> None)

let rebuild_view t =
  let g = Graph.create () in
  List.iter
    (fun (k, _) ->
      match Values.parse_dpid_key k with
      | Some dpid -> Graph.add_switch g dpid
      | None -> ())
    (entries t Names.switchdb);
  List.iter
    (fun (k, v) ->
      if v = Values.Link.value_up then
        match Values.Link.parse_key k with
        | Some ((d1, p1), (d2, p2)) ->
            Graph.add_link g { dpid = d1; port = p1 } { dpid = d2; port = p2 }
        | None -> ())
    (entries t Names.linksdb);
  t.view <- g;
  t.view_dirty <- false

let view t =
  if t.view_dirty then rebuild_view t;
  t.view

let link_ports t dpid =
  Graph.neighbors (view t) dpid |> List.map fst

let host_ports t dpid =
  let links = link_ports t dpid in
  List.filter (fun p -> not (List.mem p links)) (switch_ports t dpid)

let liveness_master_for_link t d1 d2 =
  match (master_of t d1, master_of t d2) with
  | Some m1, Some m2 -> Some (max m1 m2)
  | Some m, None | None, Some m -> Some m
  | None, None -> None

(* --- Planning --- *)

let flood_ports t dpid ~in_port =
  (* Loop-free flood: ports on the cluster-wide spanning tree plus all
     host ports, minus the ingress. The tree must be rooted identically
     at every switch (the STP root bridge — lowest dpid), otherwise
     differently-rooted trees disagree on which cycle edge to cut and
     broadcasts loop. *)
  let g = view t in
  let tree =
    match Graph.switches g with
    | [] -> []
    | root :: _ when Graph.has_switch g dpid -> (
        (* Graph.switches is sorted, so the head is the lowest dpid. *)
        match
          List.find_opt
            (fun (d, _) -> Of_types.Dpid.equal d dpid)
            (Graph.spanning_tree_ports g root)
        with
        | Some (_, ps) -> ps
        | None -> [])
    | _ -> []
  in
  List.sort_uniq compare (tree @ host_ports t dpid)
  |> List.filter (fun p -> p <> in_port)

let plan_flood t dpid ~in_port ~buffer_id frame =
  match flood_ports t dpid ~in_port with
  | [] -> []
  | ports ->
      [ Types.Network_send
          { dpid;
            payload =
              Of_message.Packet_out
                { po_buffer_id = buffer_id;
                  po_in_port = in_port;
                  po_actions = List.map (fun p -> Of_action.Output p) ports;
                  po_frame =
                    (match buffer_id with None -> Some frame | Some _ -> None) } } ]

let learn_host_actions t dpid ~port ~mac ~ip =
  let host_key = Values.Host.key mac in
  let host_value = Values.Host.value ~dpid ~port ~ip in
  let arp_key = Values.Arp.key ip in
  let arp_value = Values.Arp.value mac in
  let edge_key = Values.Host.key mac in
  let edge_value = Printf.sprintf "%s:%d" (Of_types.Dpid.to_string dpid) port in
  let upsert cache key value =
    match read t cache key with
    | Some v when v = value -> []
    | Some _ -> [ Types.Cache_write { cache; op = Event.Update; key; value } ]
    | None -> [ Types.Cache_write { cache; op = Event.Create; key; value } ]
  in
  upsert Names.hostdb host_key host_value
  @ upsert Names.arpdb arp_key arp_value
  @ upsert Names.edgedb edge_key edge_value

let flow_rule_actions t ~dpid ~rule ~priority ~idle ~out_port ~buffer_id =
  let fm =
    Of_message.flow_mod ~priority ~idle_timeout:idle ~buffer_id rule
      [ Of_action.Output out_port ]
  in
  let key = Values.Flow.key dpid rule ~priority in
  let value = Values.Flow.value fm in
  let cache_actions =
    match read t Names.flowsdb key with
    | Some v when v = value -> []
    | Some _ ->
        [ Types.Cache_write
            { cache = Names.flowsdb; op = Event.Update; key; value } ]
    | None ->
        [ Types.Cache_write
            { cache = Names.flowsdb; op = Event.Create; key; value } ]
  in
  cache_actions
  @ [ Types.Network_send { dpid; payload = Of_message.Flow_mod fm } ]

let plan_path_install t ~src_dpid ~in_port ~buffer_id frame
    (dst_dpid, dst_port) =
  match Graph.shortest_path (view t) src_dpid dst_dpid with
  | None -> plan_flood t src_dpid ~in_port ~buffer_id frame
  | Some hops ->
      (* Hop-by-hop reactive forwarding, as ONOS's reactive app does:
         install a rule only at the switch that raised the PACKET_IN;
         the packet then misses at the next switch, whose own master
         installs the next hop, and so on. *)
      let rule =
        match t.profile.Profile.forwarding with
        | Profile.Reactive_exact -> Of_match.exact_of_frame ~in_port frame
        | Profile.Reactive_src_dst ->
            Of_match.l2_pair ~src:frame.Frame.dl_src ~dst:frame.Frame.dl_dst
        | Profile.Proactive_dst -> Of_match.l2_dst ~dst:frame.Frame.dl_dst
      in
      let idle = t.profile.Profile.flow_idle_timeout in
      let out_port =
        match hops with
        | [ _ ] | [] -> dst_port (* destination host on this switch *)
        | (_, _, out) :: _ ->
            if t.profile.Profile.ecmp then
              (* Load-balance across equal-cost next hops: an
                 intentionally non-deterministic application. *)
              match Graph.next_hop_choices (view t) src_dpid dst_dpid with
              | [] -> out
              | choices -> fst (Rng.choice t.rng (Array.of_list choices))
            else out
      in
      flow_rule_actions t ~dpid:src_dpid ~rule ~priority:100 ~idle ~out_port
        ~buffer_id

let plan_packet_in t ~as_id dpid (pi : Of_message.packet_in) =
  let frame = pi.frame in
  match frame.Frame.payload with
  | Frame.Lldp lldp ->
      (* Link discovery: the probe was emitted at (chassis, port) and
         heard at (dpid, in_port). Only the link's liveness master
         writes the link entry (the ONOS election rule). *)
      let remote = Of_types.Dpid.of_int64 lldp.Jury_packet.Lldp.chassis_id in
      let remote_port = lldp.Jury_packet.Lldp.port_id in
      if liveness_master_for_link t remote dpid = Some as_id then begin
        let key = Values.Link.key (remote, remote_port) (dpid, pi.in_port) in
        let value = Values.Link.value_up in
        match read t Names.linksdb key with
        | Some v when v = value -> []
        | Some _ ->
            [ Types.Cache_write
                { cache = Names.linksdb; op = Event.Update; key; value } ]
        | None ->
            [ Types.Cache_write
                { cache = Names.linksdb; op = Event.Create; key; value } ]
      end
      else []
  | Frame.Arp arp ->
      (* Hosts are only learned on edge ports: a flooded ARP copy
         arriving over an inter-switch link must not move the host's
         attachment point. *)
      let learn =
        if List.mem pi.in_port (link_ports t dpid) then []
        else
          learn_host_actions t dpid ~port:pi.in_port ~mac:arp.Frame.sha
            ~ip:arp.Frame.spa
      in
      let forward =
        match arp.Frame.op with
        | Frame.Request ->
            plan_flood t dpid ~in_port:pi.in_port ~buffer_id:pi.buffer_id frame
        | Frame.Reply -> (
            (* Unicast reply: forward toward the target if known. *)
            match read t Names.hostdb (Values.Host.key frame.Frame.dl_dst) with
            | Some v -> (
                match Values.Host.parse v with
                | Some (ddpid, dport, _)
                  when Of_types.Dpid.equal ddpid dpid ->
                    [ Types.Network_send
                        { dpid;
                          payload =
                            Of_message.Packet_out
                              { po_buffer_id = pi.buffer_id;
                                po_in_port = pi.in_port;
                                po_actions = [ Of_action.Output dport ];
                                po_frame =
                                  (match pi.buffer_id with
                                  | None -> Some frame
                                  | Some _ -> None) } } ]
                | Some _ | None ->
                    plan_flood t dpid ~in_port:pi.in_port
                      ~buffer_id:pi.buffer_id frame)
            | None ->
                plan_flood t dpid ~in_port:pi.in_port ~buffer_id:pi.buffer_id
                  frame)
      in
      learn @ forward
  | Frame.Ipv4 _ -> (
      if Jury_packet.Addr.Mac.is_broadcast frame.Frame.dl_dst then
        plan_flood t dpid ~in_port:pi.in_port ~buffer_id:pi.buffer_id frame
      else
        match read t Names.hostdb (Values.Host.key frame.Frame.dl_dst) with
        | None ->
            plan_flood t dpid ~in_port:pi.in_port ~buffer_id:pi.buffer_id frame
        | Some v -> (
            match Values.Host.parse v with
            | None ->
                plan_flood t dpid ~in_port:pi.in_port ~buffer_id:pi.buffer_id
                  frame
            | Some (dst_dpid, dst_port, _) ->
                plan_path_install t ~src_dpid:dpid ~in_port:pi.in_port
                  ~buffer_id:pi.buffer_id frame (dst_dpid, dst_port)))
  | Frame.Raw _ -> []

let plan_port_status t dpid (ps : Of_message.port_status) =
  if ps.ps_link_up then []
  else begin
    let dead_links =
      entries t Names.linksdb
      |> List.filter (fun (k, _) -> Values.Link.involves k dpid ps.ps_port)
      |> List.map (fun (k, _) ->
             Types.Cache_write
               { cache = Names.linksdb;
                 op = Event.Delete;
                 key = k;
                 value = "" })
    in
    let dead_hosts =
      entries t Names.hostdb
      |> List.filter_map (fun (k, v) ->
             match Values.Host.parse v with
             | Some (d, p, _)
               when Of_types.Dpid.equal d dpid && p = ps.ps_port ->
                 Some
                   [ Types.Cache_write
                       { cache = Names.hostdb;
                         op = Event.Delete;
                         key = k;
                         value = "" };
                     Types.Cache_write
                       { cache = Names.edgedb;
                         op = Event.Delete;
                         key = k;
                         value = "" } ]
             | _ -> None)
      |> List.concat
    in
    dead_links @ dead_hosts
  end

let plan_switch_join t ~as_id dpid (fr : Of_message.features_reply) =
  let master = Option.value (master_of t dpid) ~default:as_id in
  let key = Values.Switch.key dpid in
  let value = Values.Switch.value_connected ~master ~ports:fr.ports in
  match read t Names.switchdb key with
  | Some v when v = value -> []
  | Some _ ->
      [ Types.Cache_write
          { cache = Names.switchdb; op = Event.Update; key; value } ]
  | None ->
      [ Types.Cache_write
          { cache = Names.switchdb; op = Event.Create; key; value } ]

let plan_rest t = function
  | Types.Install_flow { dpid; flow } ->
      let key = Values.Flow.key dpid flow.Of_message.fm_match
          ~priority:flow.Of_message.priority in
      let value = Values.Flow.value flow in
      let op =
        match read t Names.flowsdb key with
        | Some _ -> Event.Update
        | None -> Event.Create
      in
      [ Types.Cache_write { cache = Names.flowsdb; op; key; value };
        Types.Network_send { dpid; payload = Of_message.Flow_mod flow } ]
  | Types.Delete_flow { dpid; fm_match } ->
      let deletes =
        entries t Names.flowsdb
        |> List.filter_map (fun (k, v) ->
               match (Values.Flow.dpid_of_key k, Values.Flow.parse v) with
               | Some d, Some fm
                 when Of_types.Dpid.equal d dpid
                      && Of_match.equal fm.Of_message.fm_match fm_match ->
                   Some
                     (Types.Cache_write
                        { cache = Names.flowsdb;
                          op = Event.Delete;
                          key = k;
                          value = "" })
               | _ -> None)
      in
      let del_fm =
        Of_message.flow_mod ~command:Of_message.Delete fm_match []
      in
      deletes
      @ [ Types.Network_send { dpid; payload = Of_message.Flow_mod del_fm } ]
  | Types.Query_flows _ -> []

let plan_internal t = function
  | Types.Emit_lldp ->
      mastered_switches t
      |> List.concat_map (fun dpid ->
             switch_ports t dpid
             |> List.map (fun port ->
                    let lldp =
                      Jury_packet.Lldp.make
                        ~system_name:(Printf.sprintf "ctrl-%d" t.id)
                        ~chassis_id:(Of_types.Dpid.to_int64 dpid)
                        ~port_id:port ~ttl:120 ()
                    in
                    let frame =
                      Frame.lldp_frame
                        ~src:(Jury_packet.Addr.Mac.of_host_index 0xFFFF)
                        lldp
                    in
                    Types.Network_send
                      { dpid;
                        payload =
                          Of_message.Packet_out
                            { po_buffer_id = None;
                              po_in_port = Of_types.Port.none;
                              po_actions = [ Of_action.Output port ];
                              po_frame = Some frame } }))
  | Types.Proactive actions -> actions

(* Vanilla ODL's proactive forwarding (§VI-C): as soon as a host is
   discovered, install destination-based rules toward it at every
   mastered switch — before any traffic flows. *)
let plan_proactive_host_rules t ~mac ~host_dpid ~host_port =
  let rule = Of_match.l2_dst ~dst:mac in
  mastered_switches t
  |> List.filter_map (fun dpid ->
         let out_port =
           if Of_types.Dpid.equal dpid host_dpid then Some host_port
           else
             match Graph.next_hop_choices (view t) dpid host_dpid with
             | (port, _) :: _ -> Some port
             | [] -> None
         in
         match out_port with
         | None -> None
         | Some out_port ->
             let fm =
               Of_message.flow_mod ~priority:50
                 ~idle_timeout:t.profile.Profile.flow_idle_timeout rule
                 [ Of_action.Output out_port ]
             in
             let key = Values.Flow.key dpid rule ~priority:50 in
             let value = Values.Flow.value fm in
             if read t Names.flowsdb key = Some value then None
             else
               Some
                 [ Types.Cache_write
                     { cache = Names.flowsdb; op = Event.Create; key; value };
                   Types.Network_send
                     { dpid; payload = Of_message.Flow_mod fm } ])
  |> List.concat

let plan_flow_removed t dpid (fr : Of_message.flow_removed) =
  let key = Values.Flow.key dpid fr.Of_message.fr_match
      ~priority:fr.Of_message.fr_priority in
  match read t Names.flowsdb key with
  | None -> []
  | Some _ ->
      [ Types.Cache_write
          { cache = Names.flowsdb; op = Event.Delete; key; value = "" } ]

let plan_as t ~as_id (trigger : Types.trigger) =
  match trigger with
  | Types.Packet_in (dpid, pi) -> plan_packet_in t ~as_id dpid pi
  | Types.Port_status (dpid, ps) -> plan_port_status t dpid ps
  | Types.Switch_join (dpid, fr) -> plan_switch_join t ~as_id dpid fr
  | Types.Flow_removed (dpid, fr) -> plan_flow_removed t dpid fr
  | Types.Rest req -> plan_rest t req
  | Types.Internal { work; _ } -> plan_internal t work

let plan t trigger = plan_as t ~as_id:t.id trigger

let shadow_execute t ?as_id trigger =
  let as_id = Option.value as_id ~default:t.id in
  let actions = plan_as t ~as_id trigger in
  match t.mutator with None -> actions | Some m -> m trigger actions

(* --- Application --- *)

(* Applies one action; [delay] is the store-synchronisation stall the
   response has accumulated so far (a strong write must commit before
   the controller sends the ensuing network messages), and the updated
   accumulation is returned. *)
let apply_action t taint ~delay (action : Types.action) =
  match action with
  | Types.Cache_write { cache; op; key; value } -> (
      (* Acquire the coordination channel *before* the write so that
         event delivery at the peers lines up with the channel
         clearing; the stall is the round (ODL/Infinispan) or the
         synchronous flow-rule backup (ONOS/Hazelcast). *)
      let stall =
        match t.profile.Profile.consistency with
        | Fabric.Strong -> Fabric.strong_acquire t.fabric
        | Fabric.Eventual ->
            Profile.write_sync_cost t.profile ~nodes:(Fabric.nodes t.fabric)
              ~cache ~op
      in
      match
        Fabric.write t.fabric ~node:t.id
          ?taint:(Option.map Types.Taint.to_string taint)
          ~cache op ~key ~value
      with
      | Ok _ ->
          if Time.(stall > Time.zero) then Pipeline.add_load t.pipeline stall;
          t.observer.on_applied taint action;
          Time.add delay stall
      | Error e ->
          t.observer.on_write_failed taint action e;
          delay)
  | Types.Network_send { dpid; payload } ->
      (if masters t dpid then
         (if Time.(delay > Time.zero) then
            ignore
              (Engine.schedule t.engine
                 ~footprint:(Footprint.touches [ Footprint.controller t.id ])
                 ~after:delay
                 (fun () -> send_network t taint dpid payload))
          else send_network t taint dpid payload)
       else
         (* Remote switch: the directive travels through the shared
            store (the FLOWSDB write delegates to the remote master);
            non-flow messages to remote switches are not supported and
            are dropped, as in the real controllers. *)
         match payload with
         | Of_message.Flow_mod _ -> () (* cache write already delegated *)
         | _ -> ());
      delay

let process t taint trigger =
  (* JURY's controller module stamps internal triggers with a taint of
     their own so every ensuing cache event is attributable. *)
  let taint =
    match taint with
    | Some _ -> taint
    | None ->
        t.next_internal <- t.next_internal + 1;
        Some (Types.Taint.internal_trigger ~origin:t.id ~seq:t.next_internal)
  in
  let actions = shadow_execute t trigger in
  t.observer.on_response taint trigger actions;
  ignore
    (List.fold_left
       (fun delay action -> apply_action t taint ~delay action)
       Time.zero actions)

let submit t ?taint trigger =
  (* Tainted submissions get a pipeline-service span (queue wait +
     service time per trigger); the span is closed by the pipeline. *)
  let span =
    match taint with
    | None -> None
    | Some taint ->
        let tr = Engine.trace t.engine in
        if Jury_obs.Trace.enabled tr then
          Jury_obs.Trace.open_child tr ~t_ns:(Engine.now_ns t.engine)
            ~taint:(Types.Taint.to_string taint)
            ~phase:Jury_obs.Trace.Pipeline_service ~node:t.id
            [ ("trigger", Types.trigger_name trigger); ("role", "primary") ]
        else None
  in
  Pipeline.submit ?span t.pipeline (fun () -> process t taint trigger)

let run_internal t ~app work =
  submit t (Types.Internal { app; work })

let () =
  proactive_host_rules_hook :=
    fun t (ev : Event.t) ->
      match
        ( Jury_packet.Addr.Mac.of_string ev.Event.key,
          Values.Host.parse ev.Event.value )
      with
      | mac, Some (host_dpid, host_port, _) ->
          ignore
            (Engine.schedule t.engine
               ~footprint:(Footprint.touches [ Footprint.controller t.id ])
               ~after:(Time.us 50)
               (fun () ->
                 match
                   plan_proactive_host_rules t ~mac ~host_dpid ~host_port
                 with
                 | [] -> ()
                 | actions ->
                     run_internal t ~app:"odl-proactive-fwd"
                       (Types.Proactive actions)))
      | _, None -> ()
      | exception Invalid_argument _ -> ()

let start_discovery t =
  ignore
    (Engine.every t.engine ~period:t.profile.Profile.lldp_period
       ~jitter:t.profile.Profile.lldp_jitter
       ~footprint:(Footprint.touches [ Footprint.controller t.id ])
       (fun () -> run_internal t ~app:"lldp-discovery" Types.Emit_lldp))

let response_latency_sample t =
  let util = Pipeline.utilization_hint t.pipeline in
  (* Response latency inflates with pipeline load (GC pressure, thread
     contention), clamped: queueing delay is modelled separately by the
     pipeline itself. *)
  let median =
    t.profile.Profile.response_jitter_median_us
    *. (1. +. (Float.min 24. util /. 8.))
  in
  let jitter =
    Rng.lognormal t.rng ~mu:(log median)
      ~sigma:t.profile.Profile.response_jitter_sigma
  in
  Time.add t.profile.Profile.response_latency_base (Time.of_float_us jitter)

let sample_response_fate t =
  if t.omit_probability > 0. && Rng.bernoulli t.rng t.omit_probability then
    `Omit
  else `Respond (Time.add (response_latency_sample t) t.response_delay)
