open Jury_sim
open Jury_openflow
module Fabric = Jury_store.Fabric
module Event = Jury_store.Event
module Names = Jury_store.Cache_names
module Network = Jury_net.Network
module Switch = Jury_net.Switch

type southbound_hook =
  dpid:Of_types.Dpid.t ->
  master:int ->
  msg:Of_message.t ->
  forward:(?taint:Types.Taint.t -> ?to_:int -> unit -> unit) ->
  unit

type northbound_hook =
  node:int ->
  request:Types.rest_request ->
  forward:(?taint:Types.Taint.t -> ?to_:int -> unit -> unit) ->
  unit

type election_config = { period : Time.t; timeout_beats : int }

let default_election = { period = Time.ms 100; timeout_beats = 3 }

(* Election state exists only once [enable_election] runs: with no
   election the cluster schedules zero extra events and draws no RNG,
   so churn-free deployments stay byte-identical to the seed. *)
type election = {
  e_cfg : election_config;
  mutable term : int;
  mutable leader : int;
  mutable suspected : int list;
      (* nodes a past term already declared dead; cleared by [rejoin] *)
  missed : int array;  (* consecutive failed liveness probes per node *)
  mutable listeners : (term:int -> failed:int -> leader:int -> unit) list;
}

type t = {
  engine : Engine.t;
  profile : Profile.t;
  fabric : Fabric.t;
  network : Network.t;
  controllers : Controller.t array;
  channel_latency : Time.t;
  mutable masters : (Of_types.Dpid.t * int) list;
  mutable failed : int list;
  mutable election : election option;
  mutable southbound_hook : southbound_hook;
  mutable northbound_hook : northbound_hook;
  mutable southbound_bytes : int;
}

let engine t = t.engine
let fabric t = t.fabric
let network t = t.network
let profile t = t.profile
let nodes t = Array.length t.controllers
let controllers t = t.controllers

let controller t i =
  if i < 0 || i >= nodes t then invalid_arg "Cluster.controller: bad id";
  t.controllers.(i)

let master_of t dpid =
  match List.assoc_opt dpid t.masters with
  | Some m -> m
  | None -> 0

let current_term t = match t.election with None -> 0 | Some e -> e.term
let leader t = match t.election with None -> 0 | Some e -> e.leader
let election_enabled t = t.election <> None

let trigger_of_message dpid (msg : Of_message.t) =
  match msg.payload with
  | Of_message.Packet_in pi -> Some (Types.Packet_in (dpid, pi))
  | Of_message.Port_status ps -> Some (Types.Port_status (dpid, ps))
  | Of_message.Features_reply fr -> Some (Types.Switch_join (dpid, fr))
  | Of_message.Flow_removed fr -> Some (Types.Flow_removed (dpid, fr))
  | Of_message.Hello | Of_message.Echo_request _ | Of_message.Echo_reply _
  | Of_message.Features_request | Of_message.Packet_out _
  | Of_message.Flow_mod _ | Of_message.Barrier_request
  | Of_message.Barrier_reply | Of_message.Stats_request _
  | Of_message.Stats_reply _ | Of_message.Error _ ->
      None

(* The interception point: where a (possibly tainted) trigger is handed
   to a concrete controller. Emitting here rather than in the hook lets
   the trace show exactly when and where the replicator's forward
   landed, including re-targeted deliveries ([?to_]). *)
let trace_intercept engine ~taint ~node attrs =
  match taint with
  | None -> ()
  | Some taint ->
      let tr = Engine.trace engine in
      if Jury_obs.Trace.enabled tr then
        Jury_obs.Trace.point tr ~t_ns:(Engine.now_ns engine)
          ~taint:(Types.Taint.to_string taint)
          ~phase:Jury_obs.Trace.Intercept ~node attrs

let default_southbound ~dpid ~master ~msg
    ~(forward : ?taint:Types.Taint.t -> ?to_:int -> unit -> unit) =
  ignore dpid;
  ignore master;
  ignore msg;
  forward ()

let default_northbound ~node ~request
    ~(forward : ?taint:Types.Taint.t -> ?to_:int -> unit -> unit) =
  ignore node;
  ignore request;
  forward ()

let create engine ~profile ~nodes:n ~network
    ?(channel_latency = Time.us 150) () =
  if n <= 0 then invalid_arg "Cluster.create: need >= 1 node";
  let fabric =
    Fabric.create engine ~consistency:profile.Profile.consistency ~nodes:n
      ~standalone:(not profile.Profile.clustered)
      ~profile:profile.Profile.store_profile ()
  in
  let controllers =
    Array.init n (fun id -> Controller.create engine ~id ~profile ~fabric)
  in
  let t =
    { engine;
      profile;
      fabric;
      network;
      controllers;
      channel_latency;
      masters = [];
      failed = [];
      election = None;
      southbound_hook = default_southbound;
      northbound_hook = default_northbound;
      southbound_bytes = 0 }
  in
  (* Controller → switch channels. *)
  Array.iter
    (fun ctrl ->
      Controller.set_switch_tx ctrl (fun dpid msg ->
          t.southbound_bytes <- t.southbound_bytes + Of_wire.encoded_size msg;
          match Network.switch network dpid with
          | sw ->
              ignore
                (Engine.schedule engine
                   ~footprint:
                     (Footprint.touches
                        [ Footprint.switch (Of_types.Dpid.hash dpid) ])
                   ~after:channel_latency
                   (fun () -> Switch.handle_control sw msg))
          | exception Not_found -> ()))
    controllers;
  (* Switch → controller channels, through the southbound hook. *)
  List.iter
    (fun sw ->
      let dpid = Switch.dpid sw in
      Switch.set_control_tx sw (fun msg ->
          t.southbound_bytes <- t.southbound_bytes + Of_wire.encoded_size msg;
          (* The footprint names the master as of send time; the
             callback re-resolves it at delivery, so under mastership
             churn the declaration can go stale. Scenarios with
             failover must not rely on it — the explorer targets
             fixed-mastership deployments (see DESIGN.md). *)
          let declared_master = master_of t dpid in
          ignore
            (Engine.schedule engine
               ~footprint:
                 (Footprint.touches [ Footprint.controller declared_master ])
               ~after:channel_latency
               (fun () ->
                 let master = master_of t dpid in
                 let forward ?taint ?to_ () =
                   let target = Option.value to_ ~default:master in
                   match trigger_of_message dpid msg with
                   | Some trigger ->
                       trace_intercept engine ~taint ~node:target
                         [ ("channel", "southbound");
                           ("dpid", Of_types.Dpid.to_string dpid);
                           ("msg", Of_message.type_name msg.payload) ];
                       Controller.submit t.controllers.(target) ?taint trigger
                   | None -> ()
                 in
                 t.southbound_hook ~dpid ~master ~msg ~forward))))
    (Network.switches network);
  t

(* Write one mastership entry. Clustered fabrics replicate a single
   node-0 write; a standalone fabric never replicates, so the entry is
   provisioned into every instance's local table — plan_as consults the
   local MASTERDB and divergent copies would wreck the response vote. *)
let publish_master t op dpid m =
  let targets =
    if Fabric.standalone t.fabric then List.init (nodes t) Fun.id else [ 0 ]
  in
  List.iter
    (fun node ->
      match
        Fabric.write t.fabric ~node ~cache:Names.masterdb op
          ~key:(Values.Master.key dpid)
          ~value:(Values.Master.value m)
      with
      | Ok _ -> ()
      | Error e -> Logs.warn (fun f -> f "mastership write failed: %s" e))
    targets

let assign_mastership t =
  let switches = Network.switches t.network in
  let n = nodes t in
  t.masters <-
    (if Fabric.standalone t.fabric then
       (* Standalone mode: the leader instance owns every switch; the
          other instances validate its action stream. *)
       let l = leader t in
       List.map (fun sw -> (Switch.dpid sw, l)) switches
     else List.mapi (fun i sw -> (Switch.dpid sw, i mod n)) switches);
  (* Publish mastership in the store (administrative provisioning). *)
  List.iter (fun (dpid, m) -> publish_master t Event.Create dpid m) t.masters

let start t =
  assign_mastership t;
  List.iter Switch.announce (Network.switches t.network);
  Array.iter Controller.start_discovery t.controllers

let converge t =
  start t;
  let warmup = Time.mul t.profile.Profile.lldp_period 3 in
  Engine.run t.engine ~until:(Time.add (Engine.now t.engine) warmup)

let rest t ~node request =
  if node < 0 || node >= nodes t then invalid_arg "Cluster.rest: bad node";
  let forward ?taint ?to_ () =
    let target = Option.value to_ ~default:node in
    trace_intercept t.engine ~taint ~node:target
      [ ("channel", "northbound");
        ("msg", Types.trigger_name (Types.Rest request)) ];
    Controller.submit t.controllers.(target) ?taint (Types.Rest request)
  in
  t.northbound_hook ~node ~request ~forward

let alive_nodes t =
  List.filter (fun i -> not (List.mem i t.failed)) (List.init (nodes t) Fun.id)

let fail_over t ~node =
  if node < 0 || node >= nodes t then invalid_arg "Cluster.fail_over: bad id";
  if not (List.mem node t.failed) then t.failed <- node :: t.failed;
  let survivors = alive_nodes t in
  if survivors = [] then invalid_arg "Cluster.fail_over: no survivors";
  let surv = Array.of_list survivors in
  let standalone = Fabric.standalone t.fabric in
  let idx = ref 0 in
  let orphaned =
    List.filter (fun (_, m) -> m = node) t.masters |> List.map fst
  in
  t.masters <-
    List.map
      (fun (dpid, m) ->
        if m = node then begin
          (* Standalone: everything moves to the lowest survivor (the
             incoming leader). Clustered: round-robin over survivors. *)
          let m' =
            if standalone then surv.(0)
            else begin
              let m' = surv.(!idx mod Array.length surv) in
              incr idx;
              m'
            end
          in
          (dpid, m')
        end
        else (dpid, m))
      t.masters;
  (* Publish the new mastership and have orphaned switches re-announce
     to their new masters (reconnection handshake). *)
  List.iter
    (fun dpid ->
      let m = master_of t dpid in
      (if standalone then publish_master t Event.Update dpid m
       else
         match
           Fabric.write t.fabric ~node:m ~cache:Names.masterdb Event.Update
             ~key:(Values.Master.key dpid)
             ~value:(Values.Master.value m)
         with
        | Ok _ -> ()
        | Error e -> Logs.warn (fun f -> f "failover mastership write: %s" e));
      match Network.switch t.network dpid with
      | sw ->
          ignore
            (Engine.schedule t.engine
               ~footprint:
                 (Footprint.touches
                    [ Footprint.switch (Of_types.Dpid.hash dpid) ])
               ~after:t.channel_latency
               (fun () -> Switch.announce sw))
      | exception Not_found -> ())
    orphaned

(* The inverse of the bookkeeping half of [fail_over]: the node counts
   as alive again and may be picked by future failovers. Mastership is
   NOT handed back — reclaiming switches is a separate administrative
   act real clusters also treat as such. *)
let rejoin t ~node =
  if node < 0 || node >= nodes t then invalid_arg "Cluster.rejoin: bad id";
  t.failed <- List.filter (fun i -> i <> node) t.failed;
  match t.election with
  | None -> ()
  | Some e ->
      (* The rejoined node is monitorable again — a fresh crash starts
         a fresh suspicion window and a fresh term. *)
      e.suspected <- List.filter (fun i -> i <> node) e.suspected;
      e.missed.(node) <- 0

(* Liveness as the failure detector sees it: an administratively failed
   node, or a replica whose response channel is deterministically
   silent (omit probability saturated — Injector.crash sets exactly
   that). Reading the lever instead of probing keeps the detector off
   every RNG stream. *)
let dead_now t node =
  List.mem node t.failed
  || Controller.omit_probability t.controllers.(node) >= 1.0

let on_leadership_change t f =
  match t.election with
  | None -> invalid_arg "Cluster.on_leadership_change: election not enabled"
  | Some e -> e.listeners <- e.listeners @ [ f ]

let enable_election t cfg =
  if cfg.timeout_beats < 1 then
    invalid_arg "Cluster.enable_election: timeout_beats must be >= 1";
  if Time.compare cfg.period Time.zero <= 0 then
    invalid_arg "Cluster.enable_election: period must be positive";
  match t.election with
  | Some _ -> ()
  | None ->
      let e =
        { e_cfg = cfg;
          term = 1;
          leader = 0;
          suspected = [];
          missed = Array.make (nodes t) 0;
          listeners = [] }
      in
      t.election <- Some e;
      (* One beat per period; a node missing [timeout_beats] consecutive
         beats is declared dead: term++, mastership handed off, leader
         re-elected as the lowest healthy id. Everything is a pure
         function of the schedule — no RNG — so the same seed yields
         the same term sequence. *)
      let rec tick () =
        (match t.election with
        | None -> ()
        | Some e ->
            let n = nodes t in
            for node = 0 to n - 1 do
              if List.mem node e.suspected then ()
              else if dead_now t node then e.missed.(node) <- e.missed.(node) + 1
              else e.missed.(node) <- 0
            done;
            for node = 0 to n - 1 do
              if
                (not (List.mem node e.suspected))
                && e.missed.(node) >= e.e_cfg.timeout_beats
              then begin
                e.suspected <- node :: e.suspected;
                e.term <- e.term + 1;
                if List.exists (fun i -> i <> node) (alive_nodes t) then
                  fail_over t ~node;
                let healthy =
                  List.filter
                    (fun i ->
                      (not (List.mem i e.suspected))
                      && not (List.mem i t.failed))
                    (List.init n Fun.id)
                in
                (match healthy with h :: _ -> e.leader <- h | [] -> ());
                let term = e.term and leader = e.leader in
                List.iter (fun f -> f ~term ~failed:node ~leader) e.listeners
              end
            done);
        ignore (Engine.schedule t.engine ~after:cfg.period tick)
      in
      ignore (Engine.schedule t.engine ~after:cfg.period tick)

let query_flows t ~node dpid =
  if node < 0 || node >= nodes t then invalid_arg "Cluster.query_flows: bad id";
  Fabric.entries t.fabric ~node ~cache:Names.flowsdb
  |> List.filter_map (fun (key, value) ->
         match Values.Flow.dpid_of_key key with
         | Some d when Of_types.Dpid.equal d dpid -> Values.Flow.parse value
         | _ -> None)

let set_southbound_hook t h = t.southbound_hook <- h
let set_northbound_hook t h = t.northbound_hook <- h
let southbound_bytes t = t.southbound_bytes
let run_until t at = Engine.run t.engine ~until:at
