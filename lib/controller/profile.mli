(** Controller behaviour profiles.

    The controllers modelled here differ along exactly the axes
    captured in {!t}; everything else about the control logic is
    shared. Parameter values are calibrated so the bench harness lands
    near the paper's absolute numbers (see DESIGN.md for the
    calibration rationale):

    - ONOS v1.0.0: eventually-consistent Hazelcast store; ~200 µs
      PACKET_IN service (saturating ≈5 K FLOW_MOD/s per the whole
      pipeline, Fig. 4f); remote flow-backup application costs ≈220 µs
      of pipeline time per event, which is what makes a 7-node cluster
      only ≈8 % slower in aggregate than one node; reactive
      source–destination flow rules.
    - ODL Hydrogen: strongly-consistent Infinispan store; each flow
      write blocks for a coordination round that grows with cluster
      size (≈0.9 ms/node), collapsing clustered throughput exactly as
      Fig. 4g shows; destination-based proactive rules by default (the
      evaluation swaps in a reactive source–destination module, §VI-C,
      which is what [Reactive_src_dst] selects).
    - Ryu: single-threaded standalone event loop with {e no} clustered
      store (the deployed class the paper never evaluated, per the Ryu
      evaluation study in PAPERS.md). JURY validates it by replicating
      the action stream across independent instances — see
      [clustered] below and the "Controller profiles & leadership"
      section of DESIGN.md. *)

type forwarding_style =
  | Reactive_exact
      (** install an exact micro-flow rule per PACKET_IN — every new
          TCP connection misses the TCAM, which is what lets tcpreplay
          drive the PACKET_IN rates of §VII-B (ONOS v1.0.0 reactive
          forwarding, and the paper's custom ODL module) *)
  | Reactive_src_dst
      (** install a source-destination MAC pair rule per PACKET_IN *)
  | Proactive_dst
      (** install destination-only rules on host discovery (vanilla
          ODL) *)

type t = {
  name : string;  (** short stable identifier (["onos"], ["odl"], ["ryu"], …) *)
  consistency : Jury_store.Fabric.consistency;
      (** store fabric consistency model the profile deploys on *)
  store_profile : Jury_store.Fabric.latency_profile;
      (** latency parameters handed to {!Jury_store.Fabric.create} *)
  base_service : Jury_sim.Time.t;
      (** median pipeline service time per trigger (lognormal location) *)
  service_sigma : float;
      (** lognormal shape of the service time; [0.] collapses the
          distribution to its median and skips the RNG draw *)
  flow_writes_per_packet_in : int;
      (** strong-store writes the pipeline blocks on per reactive flow
          setup *)
  flow_backup_sync_per_node : Jury_sim.Time.t;
      (** eventually-consistent stores with synchronous flow-rule
          backup (ONOS/Hazelcast): each FLOWSDB write stalls the
          writer's pipeline by this much per {e other} replica — the
          cluster-wide ≈5 K FLOW_MOD/s ceiling of Fig. 4f *)
  remote_flow_apply : Jury_sim.Time.t;
      (** pipeline cost of applying a peer's replicated FLOWSDB event *)
  remote_other_apply : Jury_sim.Time.t;
      (** pipeline cost of applying a peer's replicated non-FLOWSDB
          event *)
  packet_out_service : Jury_sim.Time.t;
      (** marginal pipeline time to emit one PACKET_OUT *)
  response_latency_base : Jury_sim.Time.t;
      (** controller → validator / replicator channel latency *)
  response_jitter_median_us : float;
      (** median of the lognormal processing-jitter a response picks up
          inside the controller (GC, thread scheduling); scales with
          pipeline load *)
  response_jitter_sigma : float;
      (** lognormal shape of the response jitter; [0.] skips the draw *)
  lldp_period : Jury_sim.Time.t;
      (** link-discovery probe period per mastered switch *)
  lldp_jitter : Jury_sim.Time.t;
      (** uniform jitter on each LLDP re-arm; zero skips the (root-RNG)
          draw entirely *)
  flow_idle_timeout : int;  (** seconds, for reactive rules *)
  forwarding : forwarding_style;  (** rule-installation strategy *)
  ecmp : bool;
      (** pick uniformly among equal-cost next hops — a legitimately
          non-deterministic application (§IV-C B) *)
  decapsulation_cost_median_us : float;
      (** ODL-only: stripping the doubly-encapsulated PACKET_IN
          (Fig. 4i) *)
  clustered : bool;
      (** whether instances share a replicated store. [false] selects
          JURY's standalone validation mode: the fabric never
          replicates, every instance holds the same administratively
          provisioned MASTERDB, and the deployment mirrors each
          secondary's planned cache writes into that secondary's own
          local store (action-stream replication). Consensus then runs
          state-blind — standalone snapshots can never be equal across
          instances — and the cross-instance response vote carries the
          verdict. *)
}

val onos : t
val odl : t
(** ODL with the paper's custom reactive forwarding module (§VI-C). *)

val odl_vanilla : t
(** ODL with its native proactive destination-based forwarding. *)

val onos_ecmp : t
(** ONOS with randomised equal-cost multipath forwarding — used to
    exercise the validator's non-determinism rule. *)

val ryu : t
(** Ryu-style standalone controller: single-threaded event loop
    (high median service time, no backup-sync or coordination stalls),
    purely local store ([clustered = false]). Deploying this profile
    switches the whole JURY stack into standalone validation mode. *)

val deterministic : t -> t
(** The same deployment with every stochastic latency collapsed to its
    location parameter: zero service/response sigma, zero store
    replication jitter, zero LLDP jitter. None of the jitter RNGs are
    drawn at all, which the schedule explorer requires — with jitter
    on, tied events interfere through shared random streams and
    same-instant races almost never tie. Appends ["-det"] to the
    profile name. *)

val strong_sync_cost : t -> nodes:int -> Jury_sim.Time.t
(** Per-write pipeline stall under this profile for an [nodes]-replica
    cluster ([Time.zero] for eventually-consistent profiles). *)

val write_sync_cost :
  t -> nodes:int -> cache:string -> op:Jury_store.Event.op -> Jury_sim.Time.t
(** Pipeline stall a successful cache write costs the writer: the
    strong coordination round for strongly-consistent profiles (any
    cache), or the synchronous flow backup for eventually-consistent
    ones (FLOWSDB creates/updates only — deletes are fire-and-forget). *)
