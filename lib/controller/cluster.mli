(** An HA controller cluster wired to a data plane.

    Owns the shared store fabric, the [n] controller replicas, switch
    mastership, and the control channels. The southbound and northbound
    paths are interposable: JURY's replicator installs hooks here to
    intercept, taint and replicate triggers without the cluster (or the
    controllers) knowing — mirroring the paper's OVS-based replicator
    that "executes outside the controller binary". *)

open Jury_openflow

type t

(** A southbound hook sees every switch→controller message before
    delivery. [forward ?taint ?to_ ()] delivers the trigger to a
    replica ([to_] defaults to the master) through its pipeline;
    calling it several times replicates the trigger. Not calling it
    drops the message. *)
type southbound_hook =
  dpid:Of_types.Dpid.t ->
  master:int ->
  msg:Of_message.t ->
  forward:(?taint:Types.Taint.t -> ?to_:int -> unit -> unit) ->
  unit

type northbound_hook =
  node:int ->
  request:Types.rest_request ->
  forward:(?taint:Types.Taint.t -> ?to_:int -> unit -> unit) ->
  unit

val create :
  Jury_sim.Engine.t -> profile:Profile.t -> nodes:int ->
  network:Jury_net.Network.t -> ?channel_latency:Jury_sim.Time.t -> unit -> t

val engine : t -> Jury_sim.Engine.t
val fabric : t -> Jury_store.Fabric.t
val network : t -> Jury_net.Network.t
val profile : t -> Profile.t
val nodes : t -> int
val controllers : t -> Controller.t array
val controller : t -> int -> Controller.t
val master_of : t -> Of_types.Dpid.t -> int

val start : t -> unit
(** Assign mastership (round-robin over switches), connect every switch
    (HELLO + FEATURES_REPLY to its master), begin LLDP discovery on all
    replicas. Call once; run the engine afterwards to let discovery
    converge (a few LLDP periods). *)

val converge : t -> unit
(** {!start} plus running the engine long enough for SWITCHDB, LINKSDB
    and mastership to stabilise (three discovery periods). *)

val rest : t -> node:int -> Types.rest_request -> unit
(** Northbound request to a specific replica (external trigger). *)

val query_flows :
  t -> node:int -> Of_types.Dpid.t -> Jury_openflow.Of_message.flow_mod list
(** Northbound read: the flow rules the given replica's store view holds
    for a switch. Reads have no side effects and are answered locally
    (the REST GET path), so they bypass the trigger pipeline. *)

val fail_over : t -> node:int -> unit
(** HA failover: reassign every switch mastered by [node] to the
    surviving replicas (round-robin), publish the new mastership in
    MASTERDB, and have the switches re-announce to their new masters.
    The failed replica itself is not otherwise altered — combine with
    {!Jury_faults.Injector.crash} to silence it. *)

val alive_nodes : t -> int list
(** Replicas that still master at least one switch or have never been
    failed over. *)

val rejoin : t -> node:int -> unit
(** The failed node counts as alive again (future failovers may assign
    it mastership). Does {e not} restore its store state or response
    levers — {!Jury_faults.Injector.rejoin} composes this with the heal
    and the {!Jury_store.Fabric.resync} state transfer. *)

val set_southbound_hook : t -> southbound_hook -> unit
val set_northbound_hook : t -> northbound_hook -> unit

val trigger_of_message :
  Of_types.Dpid.t -> Of_message.t -> Types.trigger option
(** Southbound message → trigger conversion (PACKET_IN, PORT_STATUS,
    FEATURES_REPLY, FLOW_REMOVED; [None] for echo traffic etc.). *)

val southbound_bytes : t -> int
(** Cumulative OpenFlow bytes on switch↔controller channels. *)

val run_until : t -> Jury_sim.Time.t -> unit
(** Convenience: run the engine to an absolute simulated time. *)
