(** An HA controller cluster wired to a data plane.

    Owns the shared store fabric, the [n] controller replicas, switch
    mastership, and the control channels. The southbound and northbound
    paths are interposable: JURY's replicator installs hooks here to
    intercept, taint and replicate triggers without the cluster (or the
    controllers) knowing — mirroring the paper's OVS-based replicator
    that "executes outside the controller binary". *)

open Jury_openflow

type t

(** A southbound hook sees every switch→controller message before
    delivery. [forward ?taint ?to_ ()] delivers the trigger to a
    replica ([to_] defaults to the master) through its pipeline;
    calling it several times replicates the trigger. Not calling it
    drops the message. *)
type southbound_hook =
  dpid:Of_types.Dpid.t ->
  master:int ->
  msg:Of_message.t ->
  forward:(?taint:Types.Taint.t -> ?to_:int -> unit -> unit) ->
  unit

type northbound_hook =
  node:int ->
  request:Types.rest_request ->
  forward:(?taint:Types.Taint.t -> ?to_:int -> unit -> unit) ->
  unit

type election_config = {
  period : Jury_sim.Time.t;  (** liveness-probe beat period *)
  timeout_beats : int;
      (** consecutive missed beats before a node is declared dead *)
}
(** Tuning for the deterministic master-election protocol
    ({!enable_election}). *)

val default_election : election_config
(** 100 ms beats, 3 missed beats to declare death. *)

val create :
  Jury_sim.Engine.t -> profile:Profile.t -> nodes:int ->
  network:Jury_net.Network.t -> ?channel_latency:Jury_sim.Time.t -> unit -> t
(** Builds the fabric (standalone when the profile is not
    [clustered]), the [nodes] controller replicas and the control
    channels. Election is off until {!enable_election}. *)

val engine : t -> Jury_sim.Engine.t
val fabric : t -> Jury_store.Fabric.t
val network : t -> Jury_net.Network.t
val profile : t -> Profile.t
val nodes : t -> int
val controllers : t -> Controller.t array
val controller : t -> int -> Controller.t
val master_of : t -> Of_types.Dpid.t -> int

val start : t -> unit
(** Assign mastership (round-robin over switches for clustered
    profiles; everything to the leader for standalone ones), connect
    every switch (HELLO + FEATURES_REPLY to its master), begin LLDP
    discovery on all replicas. Call once; run the engine afterwards to
    let discovery converge (a few LLDP periods). *)

(** {1 Leadership} *)

val enable_election : t -> election_config -> unit
(** Start the deterministic term-numbered election protocol: an engine
    timer beats every [period]; a node that is administratively failed
    or deterministically silent ({!Controller.omit_probability} ≥ 1)
    for [timeout_beats] consecutive beats is declared dead — the term
    increments, its switches fail over ({!fail_over}), the leader is
    re-elected as the lowest healthy id, and every
    {!on_leadership_change} listener fires. The detector reads fault
    levers instead of probing, so it draws no RNG: the same seed
    always yields the same term sequence, and with election disabled
    the cluster schedules zero extra events (churn-free runs stay
    byte-identical to the seed). Idempotent; raises
    [Invalid_argument] on a non-positive period or [timeout_beats < 1]. *)

val election_enabled : t -> bool

val current_term : t -> int
(** Current leadership term: [0] when election is disabled, [1] once
    enabled, incremented on every declared death. *)

val leader : t -> int
(** Current leader id ([0] when election is disabled). In standalone
    mode the leader masters every switch. *)

val on_leadership_change :
  t -> (term:int -> failed:int -> leader:int -> unit) -> unit
(** Subscribe to elections: fires once per declared death, after
    mastership has failed over, with the new [term], the [failed] node
    and the new [leader]. Raises [Invalid_argument] when election is
    not enabled. *)

val converge : t -> unit
(** {!start} plus running the engine long enough for SWITCHDB, LINKSDB
    and mastership to stabilise (three discovery periods). *)

val rest : t -> node:int -> Types.rest_request -> unit
(** Northbound request to a specific replica (external trigger). *)

val query_flows :
  t -> node:int -> Of_types.Dpid.t -> Jury_openflow.Of_message.flow_mod list
(** Northbound read: the flow rules the given replica's store view holds
    for a switch. Reads have no side effects and are answered locally
    (the REST GET path), so they bypass the trigger pipeline. *)

val fail_over : t -> node:int -> unit
(** HA failover: reassign every switch mastered by [node] to the
    surviving replicas (round-robin for clustered profiles; all to the
    lowest survivor for standalone ones), publish the new mastership
    in MASTERDB (into every instance's local table when standalone),
    and have the switches re-announce to their new masters. The failed
    replica itself is not otherwise altered — combine with
    {!Jury_faults.Injector.crash} to silence it. *)

val alive_nodes : t -> int list
(** Replicas that still master at least one switch or have never been
    failed over. *)

val rejoin : t -> node:int -> unit
(** The failed node counts as alive again (future failovers may assign
    it mastership), and the election failure detector — if enabled —
    forgets its suspicion so a later crash starts a fresh term. Does
    {e not} restore its store state or response levers —
    [Jury_faults.Injector.rejoin] (which depends on this library)
    composes this with the heal and the {!Jury_store.Fabric.resync}
    state transfer. *)

val set_southbound_hook : t -> southbound_hook -> unit
val set_northbound_hook : t -> northbound_hook -> unit

val trigger_of_message :
  Of_types.Dpid.t -> Of_message.t -> Types.trigger option
(** Southbound message → trigger conversion (PACKET_IN, PORT_STATUS,
    FEATURES_REPLY, FLOW_REMOVED; [None] for echo traffic etc.). *)

val southbound_bytes : t -> int
(** Cumulative OpenFlow bytes on switch↔controller channels. *)

val run_until : t -> Jury_sim.Time.t -> unit
(** Convenience: run the engine to an absolute simulated time. *)
