type error = { task_index : int; message : string; backtrace : string }

exception Tasks_failed of error list

let () =
  Printexc.register_printer (function
    | Tasks_failed errors ->
        Some
          (Printf.sprintf "Jury_par.Pool.Tasks_failed: %d task(s) died: %s"
             (List.length errors)
             (String.concat "; "
                (List.map
                   (fun e ->
                     Printf.sprintf "task %d: %s" e.task_index e.message)
                   errors)))
    | _ -> None)

(* Process-wide count of domains ever spawned on behalf of a pool
   (persistent workers and dedicated async fallbacks alike). The bench
   reports deltas of this to show that a sweep of N map_ordered calls
   now costs at most [jobs - 1] spawns instead of N * (jobs - 1). *)
let spawn_counter = Atomic.make 0
let domains_spawned () = Atomic.get spawn_counter

let counted_spawn f =
  Atomic.incr spawn_counter;
  Domain.spawn f

type t = {
  jobs : int;
  lock : Mutex.t;
  wakeup : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list; (* persistent, spawned lazily *)
  mutable idle : int; (* workers blocked waiting for a task *)
  mutable shutdown : bool;
}

(* Every pool that ever spawned a worker, so process exit can join
   them all (an OCaml program must not exit with live domains). *)
let registry_lock = Mutex.create ()
let registry : t list ref = ref []
let at_exit_installed = ref false

let shutdown_pool t =
  Mutex.lock t.lock;
  t.shutdown <- true;
  Condition.broadcast t.wakeup;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let register_for_exit t =
  Mutex.lock registry_lock;
  if not (List.memq t !registry) then registry := t :: !registry;
  if not !at_exit_installed then begin
    at_exit_installed := true;
    Stdlib.at_exit (fun () ->
        let pools =
          Mutex.lock registry_lock;
          let ps = !registry in
          registry := [];
          Mutex.unlock registry_lock;
          ps
        in
        List.iter shutdown_pool pools)
  end;
  Mutex.unlock registry_lock

let rec worker_loop t =
  Mutex.lock t.lock;
  t.idle <- t.idle + 1;
  while Queue.is_empty t.pending && not t.shutdown do
    Condition.wait t.wakeup t.lock
  done;
  t.idle <- t.idle - 1;
  if Queue.is_empty t.pending then Mutex.unlock t.lock (* shutdown *)
  else begin
    let task = Queue.pop t.pending in
    Mutex.unlock t.lock;
    (* Tasks are wrapped by their submitters; a raise here would mean a
       bug in the wrapping, not in user code — don't kill the worker. *)
    (try task () with _ -> ());
    worker_loop t
  end

let env_jobs () =
  match Sys.getenv_opt "JURY_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  { jobs;
    lock = Mutex.create ();
    wakeup = Condition.create ();
    pending = Queue.create ();
    workers = [];
    idle = 0;
    shutdown = false }

let jobs t = t.jobs

(* The ambient pool experiment entry points fall back on when the
   caller does not pass one. Set once from the main domain (CLI flag
   parsing) before any parallel work starts; worker domains never touch
   it. *)
let default_pool = ref None

let set_default t = default_pool := Some t
let set_default_jobs jobs = default_pool := Some (create ~jobs ())

let default () =
  match !default_pool with
  | Some t -> t
  | None ->
      let t = create () in
      default_pool := Some t;
      t

(* Must be called with [t.lock] held. Tops the persistent worker set
   up to [want] (capped at [jobs - 1]: the submitting domain is always
   worker zero, so [jobs] bounds busy domains, not spawned ones). *)
let ensure_workers_locked t want =
  let cap = if t.shutdown then 0 else t.jobs - 1 in
  let have = List.length t.workers in
  let missing = min want cap - have in
  if missing > 0 then begin
    for _ = 1 to missing do
      t.workers <- counted_spawn (fun () -> worker_loop t) :: t.workers
    done;
    register_for_exit t
  end

let submit_n_locked t thunks =
  List.iter (fun f -> Queue.push f t.pending) thunks;
  Condition.broadcast t.wakeup

let persistent_workers t =
  Mutex.lock t.lock;
  let n = List.length t.workers in
  Mutex.unlock t.lock;
  n

let try_map_ordered t xs f =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let completed = Atomic.make 0 in
    let exec i =
      let r =
        match f items.(i) with
        | y -> Ok y
        | exception exn ->
            Error
              { task_index = i;
                message = Printexc.to_string exn;
                backtrace = Printexc.get_backtrace () }
      in
      results.(i) <- Some r;
      (* The atomic increment publishes the plain [results] write: the
         submitter reads [completed = n] before touching [results]. *)
      Atomic.incr completed
    in
    let workers = min t.jobs n in
    if workers <= 1 then
      for i = 0 to n - 1 do
        exec i
      done
    else begin
      (* Work stealing off a shared index: tasks are coarse (whole
         simulation runs), so one atomic per task is noise. Each slot
         of [results] is written by exactly one domain. Helpers run on
         the pool's persistent workers; a helper that only gets
         scheduled after the sweep is drained exits immediately, so
         the submitting domain never depends on helpers for progress
         (it loops until the index runs out, then waits on
         [completed]). *)
      let next = Atomic.make 0 in
      let steal () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            exec i;
            loop ()
          end
        in
        loop ()
      in
      Mutex.lock t.lock;
      ensure_workers_locked t (workers - 1);
      submit_n_locked t (List.init (workers - 1) (fun _ -> steal));
      Mutex.unlock t.lock;
      steal ();
      while Atomic.get completed < n do
        Domain.cpu_relax ()
      done
    end;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map_ordered t xs f =
  let results = try_map_ordered t xs f in
  let errors =
    List.filter_map (function Error e -> Some e | Ok _ -> None) results
  in
  if errors <> [] then raise (Tasks_failed errors);
  List.map (function Ok y -> y | Error _ -> assert false) results

(* --- long-running async tasks (pipeline stage consumers) --- *)

type ticket = {
  tk_lock : Mutex.t;
  tk_done : Condition.t;
  mutable tk_finished : bool;
  mutable tk_error : (exn * Printexc.raw_backtrace) option;
  mutable tk_domain : unit Domain.t option; (* dedicated-spawn fallback *)
}

let async t f =
  let ticket =
    { tk_lock = Mutex.create ();
      tk_done = Condition.create ();
      tk_finished = false;
      tk_error = None;
      tk_domain = None }
  in
  let body () =
    let err =
      match f () with
      | () -> None
      | exception exn -> Some (exn, Printexc.get_raw_backtrace ())
    in
    Mutex.lock ticket.tk_lock;
    ticket.tk_error <- err;
    ticket.tk_finished <- true;
    Condition.signal ticket.tk_done;
    Mutex.unlock ticket.tk_lock
  in
  Mutex.lock t.lock;
  (* A long-running task must start promptly even when every persistent
     worker is occupied (or the pool is serial): an SPSC producer will
     block on a consumer that never runs. Reuse an idle worker when one
     is free, grow the persistent set if under budget, and otherwise
     fall back to a dedicated domain so liveness never depends on pool
     capacity. *)
  let backlog = Queue.length t.pending in
  if (not t.shutdown) && t.idle > backlog then submit_n_locked t [ body ]
  else if (not t.shutdown) && List.length t.workers < t.jobs - 1 then begin
    ensure_workers_locked t (List.length t.workers + 1);
    submit_n_locked t [ body ]
  end
  else ticket.tk_domain <- Some (counted_spawn body);
  Mutex.unlock t.lock;
  ticket

let shutdown = shutdown_pool

let await ticket =
  (match ticket.tk_domain with
  | Some d -> Domain.join d
  | None ->
      Mutex.lock ticket.tk_lock;
      while not ticket.tk_finished do
        Condition.wait ticket.tk_done ticket.tk_lock
      done;
      Mutex.unlock ticket.tk_lock);
  match ticket.tk_error with
  | None -> ()
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
