type t = { jobs : int }

type error = { task_index : int; message : string; backtrace : string }

exception Tasks_failed of error list

let () =
  Printexc.register_printer (function
    | Tasks_failed errors ->
        Some
          (Printf.sprintf "Jury_par.Pool.Tasks_failed: %d task(s) died: %s"
             (List.length errors)
             (String.concat "; "
                (List.map
                   (fun e ->
                     Printf.sprintf "task %d: %s" e.task_index e.message)
                   errors)))
    | _ -> None)

let env_jobs () =
  match Sys.getenv_opt "JURY_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  { jobs }

let jobs t = t.jobs

(* The ambient pool experiment entry points fall back on when the
   caller does not pass one. Set once from the main domain (CLI flag
   parsing) before any parallel work starts; worker domains never touch
   it. *)
let default_pool = ref None

let set_default t = default_pool := Some t
let set_default_jobs jobs = default_pool := Some (create ~jobs ())

let default () =
  match !default_pool with
  | Some t -> t
  | None ->
      let t = create () in
      default_pool := Some t;
      t

let try_map_ordered t xs f =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let exec i =
      let r =
        match f items.(i) with
        | y -> Ok y
        | exception exn ->
            Error
              { task_index = i;
                message = Printexc.to_string exn;
                backtrace = Printexc.get_backtrace () }
      in
      results.(i) <- Some r
    in
    let workers = min t.jobs n in
    if workers <= 1 then
      for i = 0 to n - 1 do
        exec i
      done
    else begin
      (* Work stealing off a shared index: tasks are coarse (whole
         simulation runs), so one atomic per task is noise. Each slot
         of [results] is written by exactly one domain and read only
         after the joins, which establish the happens-before edge. *)
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            exec i;
            loop ()
          end
        in
        loop ()
      in
      let spawned =
        Array.init (workers - 1) (fun _ -> Domain.spawn worker)
      in
      (* The submitting domain is worker zero, so [jobs] bounds the
         total number of busy domains, not the number spawned. *)
      worker ();
      Array.iter Domain.join spawned
    end;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map_ordered t xs f =
  let results = try_map_ordered t xs f in
  let errors =
    List.filter_map (function Error e -> Some e | Ok _ -> None) results
  in
  if errors <> [] then raise (Tasks_failed errors);
  List.map (function Ok y -> y | Error _ -> assert false) results
