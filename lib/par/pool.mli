(** A fixed-size domain pool for embarrassingly parallel experiment
    fan-out.

    Every paper figure sweeps dozens of independent deterministic
    simulation runs; each run owns its engine, RNG and network, so runs
    can execute on separate domains with no shared state. The pool fans
    a list of tasks out to at most [jobs] concurrently running domains
    (the submitting domain works too) and returns results in submission
    order, so serial ([jobs = 1]) and parallel runs of a deterministic
    task list produce identical result lists.

    Determinism contract for callers: a task must build its own
    {!Jury_sim.Engine.t} (and thus its own RNG tree) inside the task
    body and must not touch mutable state shared with other tasks.
    Under that contract result lists are byte-for-byte independent of
    [jobs] and of scheduling order.

    Worker domains are {e persistent}: the first parallel
    {!map_ordered} call spawns up to [jobs - 1] workers and later
    calls reuse them, so a bench sweep of hundreds of small fan-outs
    pays the domain-spawn cost once instead of per call
    ({!domains_spawned} exposes the process-wide spawn count the bench
    reports). Workers idle on a condition variable between calls and
    are joined automatically at process exit. *)

type t

type error = {
  task_index : int;  (** position of the failed task in the input list *)
  message : string;  (** [Printexc.to_string] of the escaping exception *)
  backtrace : string;
}

exception Tasks_failed of error list
(** Raised by {!map_ordered} after the whole sweep has run, carrying
    one {!error} per failed task — a failed run reports which config
    died instead of killing the sweep. *)

val create : ?jobs:int -> unit -> t
(** [create ?jobs ()] makes a pool of [jobs] workers (clamped to at
    least 1). Default: the [JURY_JOBS] environment variable if set to a
    positive integer, otherwise [Domain.recommended_domain_count () - 1]
    (leaving one core for the submitting context), floored at 1. *)

val jobs : t -> int

val default_jobs : unit -> int
(** The default worker count described at {!create}. *)

val map_ordered : t -> 'a list -> ('a -> 'b) -> 'b list
(** [map_ordered t xs f] runs [f] on every element of [xs], at most
    [jobs t] at a time, and returns the results in the order of [xs].
    Every task runs to completion even if some fail; if any did,
    {!Tasks_failed} is raised with all failures. [jobs t = 1] (or a
    single-element [xs]) degenerates to an in-place [List.map] with no
    domain spawns. *)

val try_map_ordered : t -> 'a list -> ('a -> 'b) -> ('b, error) result list
(** Like {!map_ordered} but returns per-task results instead of
    raising, for callers that want to salvage the survivors. *)

val default : unit -> t
(** The ambient pool used by experiment entry points when no explicit
    pool is passed; created on first use with default [jobs]. *)

val set_default : t -> unit
val set_default_jobs : int -> unit
(** Install the ambient pool — how [--jobs]/[JURY_JOBS] from
    [bench/main.exe] and [bin/jury_cli.exe] reach the experiment layer.
    Call from the main domain before any parallel work. *)

(** {1 Long-running async tasks}

    The staged validation pipeline parks its per-shard consumers on
    the pool for the whole duration of a run. Unlike {!map_ordered}
    items, such a task must {e start promptly} — an SPSC producer
    blocks on a consumer that never gets scheduled — so {!async}
    reuses an idle persistent worker when one is free and otherwise
    spawns (a persistent worker while under the [jobs - 1] budget, a
    dedicated domain beyond it). Liveness therefore never depends on
    pool capacity, and an [async] task can never deadlock a
    concurrent {!map_ordered} sweep: the sweep's submitting domain
    drains every item itself if no worker frees up. *)

type ticket

val async : t -> (unit -> unit) -> ticket
(** [async t f] starts [f] on a domain of its own (pool worker or
    dedicated fallback) and returns a ticket to {!await}. *)

val await : ticket -> unit
(** Blocks until the task finishes; re-raises (with its backtrace) any
    exception the task died with. *)

val persistent_workers : t -> int
(** Number of persistent worker domains currently attached to [t]. *)

val shutdown : t -> unit
(** Joins [t]'s persistent workers and marks the pool terminated; [t]
    must not be used afterwards (subsequent sweeps run serially on the
    submitting domain). Pools are otherwise shut down at process exit,
    which is fine for the handful of long-lived pools a process
    creates — but a {e throwaway} pool must be shut down explicitly,
    or each one parks its workers until exit and a loop of them runs
    into the runtime's domain cap. Idempotent. *)

val domains_spawned : unit -> int
(** Process-wide count of domains ever spawned on behalf of any pool
    (persistent workers and dedicated {!async} fallbacks). Bench
    reports deltas of this: a sweep of N [map_ordered] calls costs at
    most [jobs - 1] spawns total, where it used to cost
    [N * (jobs - 1)]. *)
