(** A fixed-size domain pool for embarrassingly parallel experiment
    fan-out.

    Every paper figure sweeps dozens of independent deterministic
    simulation runs; each run owns its engine, RNG and network, so runs
    can execute on separate domains with no shared state. The pool fans
    a list of tasks out to at most [jobs] concurrently running domains
    (the submitting domain works too) and returns results in submission
    order, so serial ([jobs = 1]) and parallel runs of a deterministic
    task list produce identical result lists.

    Determinism contract for callers: a task must build its own
    {!Jury_sim.Engine.t} (and thus its own RNG tree) inside the task
    body and must not touch mutable state shared with other tasks.
    Under that contract result lists are byte-for-byte independent of
    [jobs] and of scheduling order. *)

type t

type error = {
  task_index : int;  (** position of the failed task in the input list *)
  message : string;  (** [Printexc.to_string] of the escaping exception *)
  backtrace : string;
}

exception Tasks_failed of error list
(** Raised by {!map_ordered} after the whole sweep has run, carrying
    one {!error} per failed task — a failed run reports which config
    died instead of killing the sweep. *)

val create : ?jobs:int -> unit -> t
(** [create ?jobs ()] makes a pool of [jobs] workers (clamped to at
    least 1). Default: the [JURY_JOBS] environment variable if set to a
    positive integer, otherwise [Domain.recommended_domain_count () - 1]
    (leaving one core for the submitting context), floored at 1. *)

val jobs : t -> int

val default_jobs : unit -> int
(** The default worker count described at {!create}. *)

val map_ordered : t -> 'a list -> ('a -> 'b) -> 'b list
(** [map_ordered t xs f] runs [f] on every element of [xs], at most
    [jobs t] at a time, and returns the results in the order of [xs].
    Every task runs to completion even if some fail; if any did,
    {!Tasks_failed} is raised with all failures. [jobs t = 1] (or a
    single-element [xs]) degenerates to an in-place [List.map] with no
    domain spawns. *)

val try_map_ordered : t -> 'a list -> ('a -> 'b) -> ('b, error) result list
(** Like {!map_ordered} but returns per-task results instead of
    raising, for callers that want to salvage the survivors. *)

val default : unit -> t
(** The ambient pool used by experiment entry points when no explicit
    pool is passed; created on first use with default [jobs]. *)

val set_default : t -> unit
val set_default_jobs : int -> unit
(** Install the ambient pool — how [--jobs]/[JURY_JOBS] from
    [bench/main.exe] and [bin/jury_cli.exe] reach the experiment layer.
    Call from the main domain before any parallel work. *)
