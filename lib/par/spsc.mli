(** Bounded single-producer / single-consumer ring queue.

    The hand-off lane of the staged validation pipeline: one domain
    pushes, one other domain pops, and the fixed capacity provides
    back-pressure (a producer that outruns its consumer blocks in
    {!push} instead of growing an unbounded backlog). The module is
    self-contained — no dependency on the pipeline or the pool — so it
    is usable wherever two domains need an ordered bounded channel.

    Thread-safety contract: at most one domain may call the producer
    operations ({!push}, {!try_push}, {!close}) and at most one domain
    the consumer operations ({!pop}, {!try_pop}). The two may differ
    and run concurrently; FIFO order is preserved end to end. The
    implementation is a power-of-two ring indexed by two monotonic
    [Atomic] cursors: the producer publishes a slot write with its
    tail store, the consumer acknowledges with its head store, and the
    OCaml memory model's happens-before on atomics makes the plain
    slot accesses race-free. *)

type 'a t

exception Closed
(** Raised by {!push}/{!try_push} after {!close}. *)

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty queue holding at least
    [capacity] elements (rounded up to the next power of two; raises
    [Invalid_argument] if [capacity < 1]). *)

val capacity : 'a t -> int
(** The rounded capacity actually allocated. *)

val length : 'a t -> int
(** Elements currently queued. Exact from the producer or consumer
    domain; a racy-but-bounded snapshot from anywhere else. *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** [try_push t v] appends [v] and returns [true], or returns [false]
    without blocking if the queue is full. Raises {!Closed} if the
    queue was closed. Producer domain only. *)

val push : 'a t -> 'a -> unit
(** Blocking {!try_push}: spins (with [Domain.cpu_relax]) until the
    consumer frees a slot. This is the pipeline's back-pressure point.
    Raises {!Closed} if the queue was closed. Producer domain only. *)

val try_pop : 'a t -> 'a option
(** [try_pop t] removes and returns the oldest element, or [None]
    without blocking if the queue is currently empty. Consumer domain
    only. *)

val pop : 'a t -> 'a option
(** Blocking {!try_pop}: spins until an element arrives, returning
    [None] only when the queue is closed {e and} fully drained — the
    consumer's end-of-stream signal. Consumer domain only. *)

val close : 'a t -> unit
(** Marks the queue closed. Subsequent pushes raise {!Closed}; pops
    drain the remaining elements and then return [None]. Idempotent.
    Producer domain only. *)

val is_closed : 'a t -> bool
