(* Bounded SPSC ring queue.

   Layout: a power-of-two [slots] array and two monotonically
   increasing cursors. [tail] is written only by the producer, [head]
   only by the consumer; both are read by the other side. Cursor value
   [c] occupies slot [c land mask], and the queue holds the interval
   [head, tail).

   Memory model: the producer's plain write to [slots.(tail land
   mask)] is sequenced before its [Atomic.set tail]; the consumer
   reads [tail] (an atomic load, so the store happens-before it) and
   only then the slot — no data race, and the element is fully
   visible. Symmetrically the consumer clears the slot (releasing the
   element to the GC) before publishing [head + 1], and the producer
   re-checks [head] before overwriting a slot, so the clear and the
   overwrite never race either. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  head : int Atomic.t; (* consumer cursor: next slot to pop *)
  tail : int Atomic.t; (* producer cursor: next slot to fill *)
  closed : bool Atomic.t;
}

exception Closed

let () =
  Printexc.register_printer (function
    | Closed -> Some "Jury_par.Spsc.Closed"
    | _ -> None)

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap =
    let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
    pow2 1
  in
  { slots = Array.make cap None;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false }

let capacity t = t.mask + 1
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let is_empty t = length t = 0
let is_closed t = Atomic.get t.closed
let close t = Atomic.set t.closed true

let try_push t v =
  if Atomic.get t.closed then raise Closed;
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let push t v =
  while not (try_push t v) do
    Domain.cpu_relax ()
  done

let try_pop t =
  let head = Atomic.get t.head in
  if head >= Atomic.get t.tail then None
  else begin
    let slot = head land t.mask in
    let v =
      match t.slots.(slot) with
      | Some v -> v
      | None -> assert false (* published tail implies a filled slot *)
    in
    t.slots.(slot) <- None;
    Atomic.set t.head (head + 1);
    Some v
  end

let rec pop t =
  match try_pop t with
  | Some _ as r -> r
  | None ->
      (* Re-check emptiness after observing [closed] so a close racing
         with a final push is never mistaken for end-of-stream. *)
      if Atomic.get t.closed && is_empty t then None
      else begin
        Domain.cpu_relax ();
        pop t
      end
