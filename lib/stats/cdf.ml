type point = { x : float; p : float }
type t = point list

let of_samples xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    (* Collapse runs of equal values into a single point carrying the
       cumulative probability at the run's end. *)
    let rec build i acc =
      if i >= n then List.rev acc
      else begin
        let v = sorted.(i) in
        let j = ref i in
        while !j < n && sorted.(!j) = v do incr j done;
        let p = float_of_int !j /. float_of_int n in
        build !j ({ x = v; p } :: acc)
      end
    in
    build 0 []
  end

let points t = t

let downsample t k =
  let arr = Array.of_list t in
  let n = Array.length arr in
  if k <= 0 then invalid_arg "Cdf.downsample: k must be positive";
  if n <= k then t
  else if k = 1 then [ arr.(n - 1) ] (* the p = 1 point *)
  else begin
    let out = ref [] in
    for i = k - 1 downto 0 do
      let idx = i * (n - 1) / (k - 1) in
      out := arr.(idx) :: !out
    done;
    !out
  end

let value_at t p =
  let rec go = function
    | [] -> invalid_arg "Cdf.value_at: empty CDF"
    | [ last ] -> last.x
    | pt :: rest -> if pt.p >= p then pt.x else go rest
  in
  go t

let fraction_below t x =
  let rec go acc = function
    | [] -> acc
    | pt :: rest -> if pt.x <= x then go pt.p rest else acc
  in
  go 0. t

let pp_series ?(unit_label = "") fmt t =
  List.iter
    (fun { x; p } -> Format.fprintf fmt "  %10.3f%s  %.4f@." x unit_label p)
    t
