(** Windowed event-rate measurement.

    Records timestamped event counts and reports rates per fixed window,
    which is how the throughput figures (Fig. 4e–4h) are computed: the
    data plane records one tick per FLOW_MOD / PACKET_IN, the harness
    reads back events-per-second series. *)

type t

val create : window_sec:float -> t
val tick : t -> at_sec:float -> ?count:int -> unit -> unit
(** Buckets by [floor (at_sec / window)], so negative timestamps land in
    the window they belong to. Raises [Invalid_argument] if [at_sec] is
    NaN or infinite. *)

val series : t -> (float * float) array
(** [(window_start_sec, events_per_sec)] rows covering every window from
    the first to the last tick (empty windows report 0). When the span
    exceeds about a million windows, the dense form is not materialised
    and only the populated windows are returned, still in time order. *)

val total : t -> int

val peak_rate : t -> float
(** Highest per-window rate, 0 if no ticks. *)

val mean_rate : t -> float
(** Total events divided by the covered timespan, 0 if fewer than one
    window elapsed. *)
