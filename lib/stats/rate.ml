type t = {
  window : float;
  counts : (int, int ref) Hashtbl.t;
  mutable total : int;
  mutable first : int;
  mutable last : int;
  mutable any : bool;
}

let create ~window_sec =
  if window_sec <= 0. then invalid_arg "Rate.create: window must be positive";
  { window = window_sec;
    counts = Hashtbl.create 64;
    total = 0;
    first = 0;
    last = 0;
    any = false }

let tick t ~at_sec ?(count = 1) () =
  if not (Float.is_finite at_sec) then
    invalid_arg "Rate.tick: timestamp must be finite";
  (* [floor], not truncation: [int_of_float] rounds toward zero, which
     would merge the windows either side of t = 0 and mis-bucket every
     negative timestamp. *)
  let w = int_of_float (Float.floor (at_sec /. t.window)) in
  (match Hashtbl.find_opt t.counts w with
  | Some r -> r := !r + count
  | None -> Hashtbl.add t.counts w (ref count));
  t.total <- t.total + count;
  if not t.any then begin
    t.first <- w;
    t.last <- w;
    t.any <- true
  end
  else begin
    if w < t.first then t.first <- w;
    if w > t.last then t.last <- w
  end

(* Above this many windows a dense series is not materialised: two
   ticks a million windows apart must not allocate a million rows. *)
let max_dense_windows = 1 lsl 20

let row t w c = (float_of_int w *. t.window, float_of_int c /. t.window)

let series t =
  if not t.any then [||]
  else
    let span = t.last - t.first + 1 in
    if span >= 1 && span <= max_dense_windows then
      Array.init span (fun i ->
          let w = t.first + i in
          let c =
            match Hashtbl.find_opt t.counts w with Some r -> !r | None -> 0
          in
          row t w c)
    else begin
      (* Sparse fallback: only the populated windows, in time order. *)
      let rows = Hashtbl.fold (fun w r acc -> (w, !r) :: acc) t.counts [] in
      let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
      Array.of_list (List.map (fun (w, c) -> row t w c) rows)
    end

let total t = t.total

let peak_rate t =
  Array.fold_left (fun acc (_, r) -> max acc r) 0. (series t)

let mean_rate t =
  if not t.any then 0.
  else
    let span = float_of_int (t.last - t.first + 1) *. t.window in
    float_of_int t.total /. span
