(** Firehose trigger streams: capture-level flow arrivals at data-centre
    rates over a virtual host space in the millions, with heavy-tailed
    interarrival gaps layered on the {!Traces} profiles' burstiness.

    This workload deliberately bypasses the simulated network — it
    denotes what capture would emit, not how packets got there — so it
    can push the staged validation pipeline orders of magnitude harder
    than host-by-host injection. Draw events with {!next} and feed them
    to a validator yourself (the firehose bench in [Jury_experiments]
    does exactly that); arrival times are strictly increasing. *)

type profile = {
  name : string;            (** selector, e.g. ["enterprise"] *)
  base : Traces.profile;    (** trace whose burstiness shapes the body *)
  hosts : int;              (** virtual host space (ids [0 .. hosts-1]) *)
  rate : float;             (** aggregate trigger arrivals per simulated second *)
  tail_alpha : float;       (** Pareto shape of the heavy tail, > 1 *)
  tail_weight : float;      (** fraction of gaps drawn from the tail *)
  tail_mean_ratio : float;  (** tail mean gap / body mean gap *)
  locality : float;         (** host-popularity skew; higher = fewer hot hosts *)
}

val enterprise : profile
(** Layered on {!Traces.lbnl}: 2M hosts, 50K triggers/s. *)

val university : profile
(** Layered on {!Traces.univ}: 4M hosts, 80K triggers/s, the longest
    bursts-and-lulls tail. *)

val cyber : profile
(** Layered on {!Traces.smia}: 1M hosts, 30K triggers/s, the most
    skewed host popularity. *)

val all : profile list
val find : string -> profile option

type event = {
  at : Jury_sim.Time.t;  (** absolute simulated arrival instant *)
  src : int;             (** virtual source host *)
  dst : int;             (** virtual destination host, [<> src] *)
  flow_key : string;     (** canonical flow identifier ["fw/src>dst"] *)
}

type stream
(** A stateful arrival generator; deterministic given its [rng]. *)

val stream : rng:Jury_sim.Rng.t -> ?start:Jury_sim.Time.t -> profile -> stream
(** A stream whose first arrival falls after [start] (default
    {!Jury_sim.Time.zero}). Raises [Invalid_argument] on a
    non-positive rate or a host space below 2. *)

val next : stream -> event
(** The next arrival; advances the stream. Total — streams are
    unbounded, the caller decides when to stop pulling. *)
