(* Firehose: a synthetic capture-level trigger stream for throughput
   benchmarking. Unlike the other workloads in this library it does not
   drive a simulated network — at the rates of interest (tens of
   thousands of triggers per simulated second over a host space in the
   millions) materialising hosts and switches would swamp the very
   pipeline being measured. Instead the stream denotes the {e output}
   of capture: flow arrivals with heavy-tailed interarrival gaps and a
   skewed virtual host popularity, layered on the trace profiles'
   burstiness ({!Traces.lbnl} / {!Traces.univ} / {!Traces.smia}). The
   consumer (the firehose bench in [Jury_experiments]) turns each
   arrival into a validator registration plus responses. *)

open Jury_sim

type profile = {
  name : string;
  base : Traces.profile;
  hosts : int;
  rate : float;
  tail_alpha : float;
  tail_weight : float;
  tail_mean_ratio : float;
  locality : float;
}

(* The three firehose profiles scale the corresponding trace profile's
   burstiness up to data-centre trigger rates. Host-space sizes follow
   the traces' published address diversity ordering (campus > site >
   exercise); the tail parameters give the university profile the
   longest bursts-and-lulls tail and the cyber-exercise profile the
   most skewed host popularity. *)
let enterprise =
  { name = "enterprise";
    base = Traces.lbnl;
    hosts = 2_000_000;
    rate = 50_000.;
    tail_alpha = 1.4;
    tail_weight = 0.10;
    tail_mean_ratio = 8.;
    locality = 2.0 }

let university =
  { name = "university";
    base = Traces.univ;
    hosts = 4_000_000;
    rate = 80_000.;
    tail_alpha = 1.2;
    tail_weight = 0.15;
    tail_mean_ratio = 12.;
    locality = 1.6 }

let cyber =
  { name = "cyber";
    base = Traces.smia;
    hosts = 1_000_000;
    rate = 30_000.;
    tail_alpha = 1.1;
    tail_weight = 0.20;
    tail_mean_ratio = 10.;
    locality = 3.0 }

let all = [ enterprise; university; cyber ]
let find name = List.find_opt (fun p -> p.name = name) all

type event = { at : Time.t; src : int; dst : int; flow_key : string }

type stream = {
  rng : Rng.t;
  profile : profile;
  mutable clock : Time.t;
  body_mu : float;
  body_sigma : float;
  tail_xm : float;
}

let stream ~rng ?(start = Time.zero) profile =
  if profile.rate <= 0. then invalid_arg "Firehose.stream: rate must be positive";
  if profile.hosts < 2 then invalid_arg "Firehose.stream: need >= 2 hosts";
  let target_gap_us = 1e6 /. profile.rate in
  (* Mixture of a lognormal body (the trace profile's burstiness) and a
     Pareto tail [tail_mean_ratio] times longer on average; solve the
     body mean so the mixture keeps the requested aggregate rate. *)
  let w = profile.tail_weight in
  let body_mean =
    target_gap_us /. ((1. -. w) +. (w *. profile.tail_mean_ratio))
  in
  let body_sigma = profile.base.Traces.burstiness in
  let body_mu = log body_mean -. (body_sigma *. body_sigma /. 2.) in
  (* Pareto mean is xm * alpha / (alpha - 1); invert for xm. *)
  let tail_mean = body_mean *. profile.tail_mean_ratio in
  let tail_xm = tail_mean *. (profile.tail_alpha -. 1.) /. profile.tail_alpha in
  { rng; profile; clock = start; body_mu; body_sigma; tail_xm }

(* Popularity-skewed host pick: u^locality concentrates mass on the
   low ids (a few talkative servers, a long tail of quiet clients)
   while still covering the whole space. *)
let pick_host t =
  let u = Rng.float t.rng 1.0 in
  let h =
    int_of_float (float_of_int t.profile.hosts *. (u ** t.profile.locality))
  in
  min h (t.profile.hosts - 1)

let next t =
  let gap_us =
    if Rng.bernoulli t.rng t.profile.tail_weight then
      Rng.pareto t.rng ~xm:t.tail_xm ~alpha:t.profile.tail_alpha
    else Rng.lognormal t.rng ~mu:t.body_mu ~sigma:t.body_sigma
  in
  t.clock <- Time.add t.clock (Time.of_float_us gap_us);
  let src = pick_host t in
  let dst =
    let d = pick_host t in
    if d <> src then d else (d + 1) mod t.profile.hosts
  in
  { at = t.clock; src; dst; flow_key = Printf.sprintf "fw/%x>%x" src dst }
