open Jury_sim
module Network = Jury_net.Network
module Host = Jury_net.Host
module Builder = Jury_topo.Builder

let default_burst = 5_000
let default_gap = Time.ms 50

let blast network ~rng ~dpid ~burst ~burst_gap ~duration =
  ignore rng;
  (* Per-invocation port counter: keeps concurrent runs on a Jury_par
     pool deterministic and race-free. *)
  let next_port = ref 1_024 in
  let fresh_port () =
    incr next_port;
    if !next_port > 65_000 then next_port := 1_024;
    !next_port
  in
  let engine = Network.engine network in
  let plan = Network.plan network in
  let local_hosts =
    List.filter
      (fun (slot : Builder.host_slot) ->
        Jury_openflow.Of_types.Dpid.equal slot.dpid dpid)
      plan.Builder.hosts
  in
  let src, dst =
    match local_hosts with
    | a :: b :: _ ->
        (Network.host network a.host_index, Network.host network b.host_index)
    | _ -> invalid_arg "Cbench.blast: target switch needs >= 2 hosts"
  in
  let stop_at = Time.add (Engine.now engine) duration in
  let fire_burst () =
    for _ = 1 to burst do
      Host.send_tcp src ~dst_mac:(Host.mac dst) ~dst_ip:(Host.ip dst)
        ~src_port:(fresh_port ()) ~dst_port:80 ()
    done
  in
  let rec arm () =
    let at = Time.add (Engine.now engine) burst_gap in
    if Time.(at <= stop_at) then
      ignore
        (Engine.schedule_at engine ~at (fun () ->
             fire_burst ();
             arm ()))
  in
  fire_burst ();
  arm ()
