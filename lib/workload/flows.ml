open Jury_sim
module Network = Jury_net.Network
module Host = Jury_net.Host
module Builder = Jury_topo.Builder
module Graph = Jury_topo.Graph

type pair_mode = Same_switch | Any_pair

(* Poisson process: schedule [event] at exponential gaps until
   [duration] elapses. *)
let poisson network ~rng ~rate ~duration event =
  if rate <= 0. then invalid_arg "Flows: rate must be positive";
  let engine = Network.engine network in
  let stop_at = Time.add (Engine.now engine) duration in
  let mean_gap_us = 1e6 /. rate in
  let rec arm () =
    let gap = Time.of_float_us (Rng.exponential rng mean_gap_us) in
    let at = Time.add (Engine.now engine) gap in
    if Time.(at <= stop_at) then
      ignore
        (Engine.schedule_at engine ~at (fun () ->
             event ();
             arm ()))
  in
  arm ()

let hosts_by_switch network =
  let plan = Network.plan network in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (slot : Builder.host_slot) ->
      let cur =
        Option.value (Hashtbl.find_opt tbl slot.dpid) ~default:[]
      in
      Hashtbl.replace tbl slot.dpid (slot.host_index :: cur))
    plan.Builder.hosts;
  Hashtbl.fold (fun _ hs acc -> Array.of_list hs :: acc) tbl []
  |> List.filter (fun a -> Array.length a >= 2)
  |> Array.of_list

(* Source-port allocation is per generator invocation, not a module
   global: a run's port sequence must depend only on that run's inputs
   so that runs executing concurrently on a Jury_par pool stay
   deterministic and race-free. *)
let port_allocator ~base ~limit =
  let next = ref base in
  fun () ->
    incr next;
    if !next > limit then next := base;
    !next

let connect network ~rng ~payload_len ~fresh_port (src_i, dst_i) =
  let src = Network.host network src_i and dst = Network.host network dst_i in
  ignore rng;
  Host.send_tcp src ~dst_mac:(Host.mac dst) ~dst_ip:(Host.ip dst)
    ~payload_len ~src_port:(fresh_port ()) ~dst_port:80 ()

let new_connections network ~rng ~rate ~duration ?(mode = Any_pair)
    ?(payload_len = 512) () =
  let n_hosts = List.length (Network.hosts network) in
  if n_hosts < 2 then invalid_arg "Flows.new_connections: need >= 2 hosts";
  let fresh_port = port_allocator ~base:10_000 ~limit:60_000 in
  let colocated = hosts_by_switch network in
  let pick () =
    match mode with
    | Any_pair ->
        let a = Rng.int rng n_hosts in
        let b = (a + 1 + Rng.int rng (n_hosts - 1)) mod n_hosts in
        (a, b)
    | Same_switch ->
        if Array.length colocated = 0 then
          invalid_arg
            "Flows.new_connections: Same_switch needs >= 2 hosts on one switch";
        let group = Rng.choice rng colocated in
        let a = Rng.int rng (Array.length group) in
        let b = (a + 1 + Rng.int rng (Array.length group - 1))
                mod Array.length group in
        (group.(a), group.(b))
  in
  poisson network ~rng ~rate ~duration (fun () ->
      connect network ~rng ~payload_len ~fresh_port (pick ()))

let host_joins network ~rng ~rate ~duration =
  let n_hosts = List.length (Network.hosts network) in
  poisson network ~rng ~rate ~duration (fun () ->
      Host.join (Network.host network (Rng.int rng n_hosts)))

let link_flaps network ~rng ~rate ~duration ?(down_time = Time.ms 300) () =
  let plan = Network.plan network in
  let edges = Array.of_list (Graph.edges plan.Builder.graph) in
  if Array.length edges = 0 then ()
  else
    poisson network ~rng ~rate ~duration (fun () ->
        let e = Rng.choice rng edges in
        Network.take_link_down network e.Graph.a e.Graph.b;
        ignore
          (Engine.schedule (Network.engine network) ~after:down_time
             (fun () -> Network.bring_link_up network e.Graph.a e.Graph.b)))

(* One flow between an arbitrary pair misses the TCAM at every hop of
   its path (reactive per-switch installation), and one gratuitous ARP
   floods to every switch — so the event rates are scaled down by those
   fan-outs to hit the requested aggregate PACKET_IN rate. *)
let average_hops network ~rng =
  let plan = Network.plan network in
  let graph = plan.Builder.graph in
  let switches = Array.of_list (Graph.switches graph) in
  let n = Array.length switches in
  if n < 2 then 1.
  else begin
    let total = ref 0 and count = ref 0 in
    for _ = 1 to 64 do
      let a = switches.(Rng.int rng n) in
      let b = switches.(Rng.int rng n) in
      match Graph.shortest_path graph a b with
      | Some hops ->
          total := !total + List.length hops;
          incr count
      | None -> ()
    done;
    if !count = 0 then 1. else float_of_int !total /. float_of_int !count
  end

let controlled_mix network ~rng ~packet_in_rate ~duration =
  let hops = Float.max 1. (average_hops network ~rng) in
  let switches =
    float_of_int (Graph.switch_count (Network.plan network).Builder.graph)
  in
  (* ~30% of PACKET_INs are flow-setup misses, ~70% host churn (ARP
     floods re-announcing hosts), with occasional link flaps — the
     "random host joins, link tear downs and flows between hosts" mix
     of Sec VII-A, weighted so the flow-install load stays within even
     ODL's strong-store write capacity at the paper's rates. *)
  new_connections network ~rng
    ~rate:(packet_in_rate *. 0.30 /. hops)
    ~duration ~mode:Any_pair ();
  host_joins network ~rng
    ~rate:(Float.max 0.5 (packet_in_rate *. 0.69 /. switches))
    ~duration;
  (* Link tear-downs are rare events; while a link is down, reactive
     forwarding degrades to flooding, which amplifies the PACKET_IN
     rate — a little goes a long way. *)
  link_flaps network ~rng ~rate:0.1 ~duration ~down_time:(Time.ms 200) ()
