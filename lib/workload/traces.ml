open Jury_sim
module Network = Jury_net.Network
module Host = Jury_net.Host

type profile = {
  name : string;
  mean_rate : float;
  burstiness : float;
  arp_fraction : float;
  udp_fraction : float;
  mean_payload : int;
}

(* Rates are injection rates at the hosts; every TCP/UDP packet misses
   hop-by-hop and every ARP floods, so the PACKET_IN rate the cluster
   sees is several times higher (the regime the paper replays at). *)
let lbnl =
  { name = "LBNL";
    mean_rate = 320.;
    burstiness = 0.6;
    arp_fraction = 0.12;
    udp_fraction = 0.25;
    mean_payload = 420 }

let univ =
  { name = "UNIV";
    mean_rate = 450.;
    burstiness = 1.1;
    arp_fraction = 0.05;
    udp_fraction = 0.35;
    mean_payload = 730 }

let smia =
  { name = "SMIA";
    mean_rate = 280.;
    burstiness = 1.6;
    arp_fraction = 0.2;
    udp_fraction = 0.15;
    mean_payload = 240 }

let all = [ lbnl; univ; smia ]
let find name = List.find_opt (fun p -> p.name = name) all

let replay network ~rng ~profile ~duration =
  (* Per-invocation port counter: the replay's port sequence depends
     only on this run, keeping concurrent runs on a Jury_par pool
     deterministic. *)
  let next_port = ref 20_000 in
  let fresh_port () =
    incr next_port;
    if !next_port > 60_000 then next_port := 20_000;
    !next_port
  in
  let engine = Network.engine network in
  let hosts = Array.of_list (Network.hosts network) in
  if Array.length hosts < 2 then invalid_arg "Traces.replay: need >= 2 hosts";
  let stop_at = Time.add (Engine.now engine) duration in
  (* Lognormal gaps with the profile's mean rate: mean of lognormal is
     exp(mu + sigma^2/2), so mu = ln(mean_gap) - sigma^2/2. *)
  let sigma = profile.burstiness in
  let mu = log (1e6 /. profile.mean_rate) -. (sigma *. sigma /. 2.) in
  let pick_pair () =
    let a = Rng.int rng (Array.length hosts) in
    let b = (a + 1 + Rng.int rng (Array.length hosts - 1))
            mod Array.length hosts in
    (hosts.(a), hosts.(b))
  in
  let fire () =
    let src, dst = pick_pair () in
    let r = Rng.float rng 1.0 in
    if r < profile.arp_fraction then
      Host.send_arp_request src ~target:(Host.ip dst)
    else begin
      let payload_len =
        int_of_float (Rng.exponential rng (float_of_int profile.mean_payload))
      in
      if r < profile.arp_fraction +. profile.udp_fraction then
        Host.send_udp src ~dst_mac:(Host.mac dst) ~dst_ip:(Host.ip dst)
          ~payload_len ~src_port:(fresh_port ()) ~dst_port:53 ()
      else
        Host.send_tcp src ~dst_mac:(Host.mac dst) ~dst_ip:(Host.ip dst)
          ~payload_len ~src_port:(fresh_port ()) ~dst_port:443 ()
    end
  in
  let rec arm () =
    let gap = Time.of_float_us (Rng.lognormal rng ~mu ~sigma) in
    let at = Time.add (Engine.now engine) gap in
    if Time.(at <= stop_at) then
      ignore
        (Engine.schedule_at engine ~at (fun () ->
             fire ();
             arm ()))
  in
  arm ()
