open Jury_sim

type entry = {
  rule : Of_match.t;
  priority : int;
  cookie : Of_types.cookie;
  actions : Of_action.t list;
  idle_timeout : int;
  hard_timeout : int;
  installed_at : Time.t;
  mutable last_hit : Time.t;
  mutable packet_count : int64;
  mutable byte_count : int64;
  mutable marked : bool;
}

(* --- Exact-match index key ---

   The index key is a fingerprint of the nine lookup-relevant fields
   (in_port, dl_src, dl_dst, dl_type, nw_src, nw_dst, nw_proto, tp_src,
   tp_dst; -1 encodes "wildcarded nw/tp field"), mixed into two words
   instead of the previous [Printf.sprintf]-built string — the string
   cost one allocation per lookup *and* per insert on the per-packet
   hot path. The packing is lossy (238 bits of fields into 126), which
   is sound here: a key only selects a bucket, and every bucket
   operation re-verifies candidates against the actual [Of_match.t]
   ([matches] / [same_slot]), so a collision can never return a wrong
   entry — equal matches always produce equal keys, and unequal matches
   sharing a key merely share a bucket. *)

type key = { ka : int; kb : int }

(* Two rounds of xor-multiply-shift per field, with distinct odd
   constants per lane (both fit in 63-bit ints). *)
let[@inline] mix_a h v =
  let h = (h lxor v) * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 29)

let[@inline] mix_b h v =
  let h = (h lxor v) * 0xBF58476D1CE4E5B in
  h lxor (h lsr 31)

let[@inline] key_of_fields ~in_port ~src ~dst ~ty ~ns ~nd ~proto ~tps ~tpd =
  let a = mix_a (mix_a (mix_a 0x51ED270B in_port) src) dst in
  let a = mix_a (mix_a (mix_a a ty) ns) nd in
  let a = mix_a (mix_a (mix_a a proto) tps) tpd in
  let b = mix_b (mix_b (mix_b 0x2A5F0B4D in_port) src) dst in
  let b = mix_b (mix_b (mix_b b ty) ns) nd in
  let b = mix_b (mix_b (mix_b b proto) tps) tpd in
  { ka = a; kb = b }

module Index = Hashtbl.Make (struct
  type t = key

  let equal k1 k2 = k1.ka = k2.ka && k1.kb = k2.kb
  let hash k = k.ka lxor k.kb
end)

(* Storage is split by match shape: fully-exact micro-flow rules (the
   thousands a reactive controller installs) live in a hash index keyed
   by the frame-derived tuple, everything with wildcards lives in a
   short sorted list. A packet lookup is then O(bucket + wildcards)
   instead of O(table). *)
type t = {
  mutable wildcards : entry list;  (* sorted: priority desc, oldest first *)
  exact_index : entry list ref Index.t;
  mutable exact_count : int;
  lenient : bool;
}

let create ?(lenient = false) () =
  { wildcards = []; exact_index = Index.create 256; exact_count = 0;
    lenient }

(* A match is indexable when it pins every field of the lookup key and
   wildcards nothing coarser than /32 prefixes. *)
let index_key_of_match (m : Of_match.t) =
  match (m.in_port, m.dl_src, m.dl_dst, m.dl_type) with
  | Some in_port, Some src, Some dst, Some ty -> (
      let nw = function
        | None -> Some (-1)
        | Some (p, 32) -> Some (Jury_packet.Addr.Ipv4.to_int p)
        | Some _ -> None
      in
      match (nw m.nw_src, nw m.nw_dst) with
      | Some ns, Some nd ->
          Some
            (key_of_fields ~in_port
               ~src:(Jury_packet.Addr.Mac.to_int src)
               ~dst:(Jury_packet.Addr.Mac.to_int dst)
               ~ty ~ns ~nd
               ~proto:(Option.value m.nw_proto ~default:(-1))
               ~tps:(Option.value m.tp_src ~default:(-1))
               ~tpd:(Option.value m.tp_dst ~default:(-1)))
      | _ -> None)
  | _ -> None

(* The frame's exact key, computed straight from the frame — the
   allocating detour through [Of_match.exact_of_frame] (a record, ten
   options and two tuples per packet) is gone. Mirrors the field
   mapping of {!Of_match.exact_of_frame}: ARP reuses nw_src/nw_dst for
   SPA/TPA and nw_proto for the opcode; non-IP frames wildcard nw/tp,
   which the key encodes as -1. Always indexable, by construction. *)
let index_key_of_frame ~in_port (frame : Jury_packet.Frame.t) =
  let open Jury_packet in
  let ns, nd, proto =
    match frame.Frame.payload with
    | Frame.Ipv4 ip ->
        (Addr.Ipv4.to_int ip.Frame.src, Addr.Ipv4.to_int ip.Frame.dst,
         ip.Frame.proto)
    | Frame.Arp a ->
        (Addr.Ipv4.to_int a.Frame.spa, Addr.Ipv4.to_int a.Frame.tpa,
         match a.Frame.op with Frame.Request -> 1 | Frame.Reply -> 2)
    | Frame.Lldp _ | Frame.Raw _ -> (-1, -1, -1)
  in
  let tps, tpd =
    match frame.Frame.payload with
    | Frame.Ipv4 { l4 = Frame.Tcp t; _ } -> (t.Frame.src_port, t.Frame.dst_port)
    | Frame.Ipv4 { l4 = Frame.Udp u; _ } -> (u.Frame.src_port, u.Frame.dst_port)
    | Frame.Ipv4 { l4 = Frame.Icmp i; _ } -> (i.Frame.ty, i.Frame.code)
    | Frame.Ipv4 { l4 = Frame.Other_l4 _; _ } | Frame.Arp _ | Frame.Lldp _
    | Frame.Raw _ ->
        (-1, -1)
  in
  key_of_fields ~in_port
    ~src:(Addr.Mac.to_int frame.Frame.dl_src)
    ~dst:(Addr.Mac.to_int frame.Frame.dl_dst)
    ~ty:(Frame.ethertype frame) ~ns ~nd ~proto ~tps ~tpd

let iter_exact t f =
  Index.iter (fun _ bucket -> List.iter f !bucket) t.exact_index

let entry_order a b =
  let c = compare b.priority a.priority in
  if c <> 0 then c else Time.compare a.installed_at b.installed_at

let all_entries t =
  let acc = ref t.wildcards in
  iter_exact t (fun e -> acc := e :: !acc);
  List.stable_sort entry_order !acc

let insert_wildcard t e =
  let rec go = function
    | [] -> [ e ]
    | x :: rest ->
        if
          e.priority > x.priority
          || (e.priority = x.priority && Time.(e.installed_at < x.installed_at))
        then e :: x :: rest
        else x :: go rest
  in
  t.wildcards <- go t.wildcards

let insert t e =
  match index_key_of_match e.rule with
  | None -> insert_wildcard t e
  | Some key ->
      t.exact_count <- t.exact_count + 1;
      (match Index.find_opt t.exact_index key with
      | Some bucket -> bucket := e :: !bucket
      | None -> Index.add t.exact_index key (ref [ e ]))

(* Removal is one pass over the victims: each victim is flagged with
   its [marked] bit and pruned from the one store its own match shape
   places it in (its bucket, or the wildcard list). The previous
   implementation ran [List.memq victims] inside a filter over every
   bucket — O(table x victims) per FLOW_MOD delete and per expiry
   sweep. *)
let prune_bucket t key =
  match Index.find_opt t.exact_index key with
  | None -> ()
  | Some bucket ->
      let rec go = function
        | [] -> []
        | e :: rest ->
            if e.marked then begin
              t.exact_count <- t.exact_count - 1;
              go rest
            end
            else e :: go rest
      in
      bucket := go !bucket;
      if !bucket = [] then Index.remove t.exact_index key

let remove_specific t victims =
  match victims with
  | [] -> ()
  | victims ->
      List.iter (fun e -> e.marked <- true) victims;
      if
        List.exists (fun e -> index_key_of_match e.rule = None) victims
      then t.wildcards <- List.filter (fun e -> not e.marked) t.wildcards;
      List.iter
        (fun e ->
          match index_key_of_match e.rule with
          | None -> ()
          | Some key -> prune_bucket t key)
        victims;
      List.iter (fun e -> e.marked <- false) victims

type apply_result =
  | Installed
  | Modified of int
  | Removed of entry list
  | Rejected of string

let matches_filter (fm : Of_message.flow_mod) ~strict e =
  let port_ok =
    match fm.out_port with
    | None -> true
    | Some p -> List.mem p (Of_action.output_ports e.actions)
  in
  port_ok
  &&
  if strict then Of_match.equal e.rule fm.fm_match && e.priority = fm.priority
  else Of_match.more_specific e.rule fm.fm_match

let fresh_entry ~now (fm : Of_message.flow_mod) rule =
  { rule;
    priority = fm.priority;
    cookie = fm.cookie;
    actions = fm.actions;
    idle_timeout = fm.idle_timeout;
    hard_timeout = fm.hard_timeout;
    installed_at = now;
    last_hit = now;
    packet_count = 0L;
    byte_count = 0L;
    marked = false }

let same_slot rule priority e =
  Of_match.equal e.rule rule && e.priority = priority

(* Entries satisfying [pred], sorted like {!all_entries} but without
   materialising (and sorting) the whole table first. A strict
   modify/delete compares matches for equality, and equal matches have
   equal index keys, so the scan narrows to the rule's own bucket (or
   the wildcard list); non-strict commands must still visit everything,
   but only the hits are accumulated and sorted. *)
let collect_matching t ~rule ~strict pred =
  let acc = ref [] in
  let consider e = if pred e then acc := e :: !acc in
  (if strict then
     match index_key_of_match rule with
     | Some key -> (
         match Index.find_opt t.exact_index key with
         | Some bucket -> List.iter consider !bucket
         | None -> ())
     | None -> List.iter consider t.wildcards
   else begin
     List.iter consider t.wildcards;
     iter_exact t consider
   end);
  List.stable_sort entry_order !acc

let apply_flow_mod t ~now (fm : Of_message.flow_mod) =
  let rule =
    if Of_match.hierarchy_ok fm.fm_match then Some fm.fm_match
    else if t.lenient then Some (Of_match.strip_invalid_fields fm.fm_match)
    else None
  in
  match (rule, fm.command) with
  | None, _ -> Rejected "match violates field hierarchy"
  | Some rule, Add ->
      (* OF 1.0: ADD replaces an identical (match, priority) entry. *)
      (match index_key_of_match rule with
      | Some key -> (
          match Index.find_opt t.exact_index key with
          | Some bucket ->
              remove_specific t
                (List.filter (same_slot rule fm.priority) !bucket)
          | None -> ())
      | None ->
          t.wildcards <-
            List.filter (fun e -> not (same_slot rule fm.priority e))
              t.wildcards);
      insert t (fresh_entry ~now fm rule);
      Installed
  | Some rule, (Modify | Modify_strict) -> (
      let strict = fm.command = Modify_strict in
      let hits =
        collect_matching t ~rule ~strict (fun e ->
            if strict then same_slot rule fm.priority e
            else Of_match.more_specific e.rule rule)
      in
      match hits with
      | [] ->
          insert t (fresh_entry ~now fm rule);
          Installed
      | hits ->
          remove_specific t hits;
          List.iter
            (fun e -> insert t { e with actions = fm.actions })
            hits;
          Modified (List.length hits))
  | Some rule, (Delete | Delete_strict) ->
      let strict = fm.command = Delete_strict in
      let gone =
        collect_matching t ~rule ~strict (matches_filter fm ~strict)
      in
      remove_specific t gone;
      Removed gone

let entry_live ~now e =
  let age_sec = Time.to_float_sec (Time.sub now e.installed_at) in
  let idle_sec = Time.to_float_sec (Time.sub now e.last_hit) in
  (e.hard_timeout = 0 || age_sec < float_of_int e.hard_timeout)
  && (e.idle_timeout = 0 || idle_sec < float_of_int e.idle_timeout)

let lookup t ~now ~in_port frame =
  let best_of candidates =
    List.fold_left
      (fun best e ->
        if entry_live ~now e && Of_match.matches e.rule ~in_port frame then
          match best with
          | Some b
            when b.priority > e.priority
                 || (b.priority = e.priority
                     && Time.(b.installed_at <= e.installed_at)) ->
              best
          | _ -> Some e
        else best)
      None candidates
  in
  let exact =
    match Index.find_opt t.exact_index (index_key_of_frame ~in_port frame) with
    | None -> None
    | Some bucket -> best_of !bucket
  in
  let wild = best_of t.wildcards in
  let winner =
    match (exact, wild) with
    | None, w -> w
    | e, None -> e
    | Some e, Some w -> if w.priority > e.priority then Some w else Some e
  in
  match winner with
  | None -> None
  | Some e ->
      e.last_hit <- now;
      e.packet_count <- Int64.add e.packet_count 1L;
      e.byte_count <-
        Int64.add e.byte_count
          (Int64.of_int (Jury_packet.Frame.size_on_wire frame));
      Some e

let expire t ~now =
  let dead = ref [] in
  List.iter
    (fun e -> if not (entry_live ~now e) then dead := e :: !dead)
    t.wildcards;
  iter_exact t (fun e -> if not (entry_live ~now e) then dead := e :: !dead);
  remove_specific t !dead;
  !dead

let entries t = all_entries t
let size t = List.length t.wildcards + t.exact_count

let has_expirable t =
  let expirable e = e.idle_timeout > 0 || e.hard_timeout > 0 in
  List.exists expirable t.wildcards
  || Index.fold
       (fun _ bucket acc -> acc || List.exists expirable !bucket)
       t.exact_index false

let clear t =
  t.wildcards <- [];
  Index.reset t.exact_index;
  t.exact_count <- 0

let find_exact t m ~priority =
  let candidates =
    match index_key_of_match m with
    | Some key -> (
        match Index.find_opt t.exact_index key with
        | Some bucket -> !bucket
        | None -> [])
    | None -> t.wildcards
  in
  List.find_opt (same_slot m priority) candidates

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "  prio=%-4d %a -> %a (pkts=%Ld)@." e.priority
        Of_match.pp e.rule Of_action.pp_list e.actions e.packet_count)
    (all_entries t)

module Private = struct
  let packed_key_of_match m =
    Option.map (fun k -> (k.ka, k.kb)) (index_key_of_match m)

  let packed_key_of_frame ~in_port frame =
    let k = index_key_of_frame ~in_port frame in
    (k.ka, k.kb)

  (* The pre-packing key, kept verbatim as the reference the packed
     key is tested against: both must classify the same matches as
     indexable and agree on key equality. *)
  let legacy_key_of_match (m : Of_match.t) =
    match (m.in_port, m.dl_src, m.dl_dst, m.dl_type) with
    | Some in_port, Some src, Some dst, Some ty -> (
        let nw = function
          | None -> Some (-1)
          | Some (p, 32) -> Some (Jury_packet.Addr.Ipv4.to_int p)
          | Some _ -> None
        in
        match (nw m.nw_src, nw m.nw_dst) with
        | Some ns, Some nd ->
            Some
              (Printf.sprintf "%d|%d|%d|%d|%d|%d|%d|%d|%d" in_port
                 (Jury_packet.Addr.Mac.to_int src)
                 (Jury_packet.Addr.Mac.to_int dst)
                 ty ns nd
                 (Option.value m.nw_proto ~default:(-1))
                 (Option.value m.tp_src ~default:(-1))
                 (Option.value m.tp_dst ~default:(-1)))
        | _ -> None)
    | _ -> None

  let legacy_key_of_frame ~in_port frame =
    legacy_key_of_match (Of_match.exact_of_frame ~in_port frame)
end
