(** A switch's flow table: priority-ordered rules with OF 1.0
    add/modify/delete semantics, idle/hard timeouts and per-flow
    counters. *)

type entry = {
  rule : Of_match.t;
  priority : int;
  cookie : Of_types.cookie;
  actions : Of_action.t list;
  idle_timeout : int;
  hard_timeout : int;
  installed_at : Jury_sim.Time.t;
  mutable last_hit : Jury_sim.Time.t;
  mutable packet_count : int64;
  mutable byte_count : int64;
  mutable marked : bool;
      (** Internal removal scratch bit (lets bulk removal run in one
          pass without identity sets); always [false] outside
          {!apply_flow_mod}/{!expire}. Do not touch. *)
}

type t

val create : ?lenient:bool -> unit -> t
(** [lenient] switches on the OF 1.0-switch behaviour of silently
    installing hierarchy-violating matches with the offending fields
    wildcarded (see {!Of_match.strip_invalid_fields}) — the substrate
    for the paper's "ODL incorrect FLOW_MOD" T3 fault. Default
    [false]: such FLOW_MODs are rejected. *)

type apply_result =
  | Installed
  | Modified of int  (** number of entries whose actions changed *)
  | Removed of entry list
  | Rejected of string

val apply_flow_mod : t -> now:Jury_sim.Time.t -> Of_message.flow_mod -> apply_result

val lookup : t -> now:Jury_sim.Time.t -> in_port:Of_types.Port.t
  -> Jury_packet.Frame.t -> entry option
(** Highest-priority matching live entry; bumps its counters. Ties on
    priority resolve to the earliest-installed entry. *)

val expire : t -> now:Jury_sim.Time.t -> entry list
(** Removes and returns entries whose idle/hard timeout has passed. *)

val entries : t -> entry list
(** Live entries, highest priority first. *)

val size : t -> int

val has_expirable : t -> bool
(** Does any entry carry a non-zero idle/hard timeout? Drives the
    switch's lazy expiry sweep. *)

val clear : t -> unit

val find_exact : t -> Of_match.t -> priority:int -> entry option

val pp : Format.formatter -> t -> unit

(** Exposed for tests only: the packed two-word exact-index key and the
    legacy string key it replaced. The packed key is a lossy
    fingerprint, so the invariants under test are (1) both classify
    exactly the same matches as indexable and (2) legacy-key equality
    implies packed-key equality — bucket *verification* (not the key)
    guarantees the reverse direction can only cost performance, never
    correctness. *)
module Private : sig
  val packed_key_of_match : Of_match.t -> (int * int) option
  val packed_key_of_frame :
    in_port:Of_types.Port.t -> Jury_packet.Frame.t -> int * int
  val legacy_key_of_match : Of_match.t -> string option
  val legacy_key_of_frame :
    in_port:Of_types.Port.t -> Jury_packet.Frame.t -> string option
end
