module Types = Jury_controller.Types
module Cluster = Jury_controller.Cluster
module Controller = Jury_controller.Controller
module Names = Jury_store.Cache_names
module Of_message = Jury_openflow.Of_message

let drop_cache_writes_to ~cache _trigger actions =
  let cache = Names.normalize cache in
  List.filter
    (fun (a : Types.action) ->
      match a with
      | Types.Cache_write { cache = c; _ } -> c <> cache
      | Types.Network_send _ -> true)
    actions

let corrupt_cache_values_to ~cache ~value _trigger actions =
  let cache = Names.normalize cache in
  List.map
    (fun (a : Types.action) ->
      match a with
      | Types.Cache_write cw when cw.cache = cache ->
          Types.Cache_write { cw with value }
      | _ -> a)
    actions

let drop_network_sends _trigger actions =
  List.filter
    (fun (a : Types.action) ->
      match a with Types.Network_send _ -> false | Types.Cache_write _ -> true)
    actions

let blackhole_flow_mods _trigger actions =
  List.map
    (fun (a : Types.action) ->
      match a with
      | Types.Network_send { dpid; payload = Of_message.Flow_mod fm } ->
          Types.Network_send
            { dpid; payload = Of_message.Flow_mod { fm with actions = [] } }
      | _ -> a)
    actions

(* Byzantine response fault: plausible-but-wrong, not absent. Cache
   writes keep their shape but carry corrupted values (so the peer acks
   arrive with the wrong content digest), and FLOW_MODs are re-pointed
   at a perturbed output port (a rule that installs, but forwards
   wrongly). Deterministic — no RNG — so replicated execution at the
   faulty node reproduces the same wrong answer every time. *)
let byzantine_actions _trigger actions =
  List.map
    (fun (a : Types.action) ->
      match a with
      | Types.Cache_write cw ->
          Types.Cache_write { cw with value = cw.value ^ "#byz" }
      | Types.Network_send { dpid; payload = Of_message.Flow_mod fm } ->
          let actions =
            List.map
              (fun (act : Jury_openflow.Of_action.t) ->
                match act with
                | Jury_openflow.Of_action.Output port
                  when Jury_openflow.Of_types.Port.is_physical port ->
                    Jury_openflow.Of_action.Output (port + 1)
                | other -> other)
              fm.actions
          in
          Types.Network_send
            { dpid; payload = Of_message.Flow_mod { fm with actions } }
      | _ -> a)
    actions

let probabilistic rng p inner trigger actions =
  if Jury_sim.Rng.bernoulli rng p then inner trigger actions else actions

let compose mutators trigger actions =
  List.fold_left (fun actions m -> m trigger actions) actions mutators

let make_slow cluster ~node ~delay =
  Controller.set_response_delay (Cluster.controller cluster node) delay

let make_lossy cluster ~node ~omit_probability =
  Controller.set_omit_probability (Cluster.controller cluster node)
    omit_probability

let crash cluster ~node =
  let ctrl = Cluster.controller cluster node in
  Controller.set_omit_probability ctrl 1.0;
  Controller.set_mutator ctrl (Some (fun _ _ -> []))

let make_byzantine cluster ~node =
  Controller.set_mutator (Cluster.controller cluster node)
    (Some byzantine_actions)

let partition cluster ~node =
  Jury_store.Fabric.set_partitioned (Cluster.fabric cluster) ~node true

let lock_cache cluster ~node ~cache =
  Jury_store.Fabric.set_cache_locked (Cluster.fabric cluster) ~node ~cache true

let unlock_cache cluster ~node ~cache =
  Jury_store.Fabric.set_cache_locked (Cluster.fabric cluster) ~node ~cache
    false

let heal cluster ~node =
  let ctrl = Cluster.controller cluster node in
  Controller.set_mutator ctrl None;
  Controller.set_response_delay ctrl Jury_sim.Time.zero;
  Controller.set_omit_probability ctrl 0.;
  Jury_store.Fabric.set_partitioned (Cluster.fabric cluster) ~node false;
  List.iter
    (fun cache ->
      Jury_store.Fabric.set_cache_locked (Cluster.fabric cluster) ~node ~cache
        false)
    Names.all

(* Full crash-and-rejoin: remove every lever, then hand the node back to
   the deployment for the state transfer + aliveness bookkeeping. The
   heal must come first so the node can actually serve once resynced. *)
let rejoin deployment ~node =
  heal (Jury.Deployment.cluster deployment) ~node;
  Jury.Deployment.rejoin_node deployment ~node
