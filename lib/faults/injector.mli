(** Generic fault levers applied to a controller replica.

    These compose the paper's five failure classes (§III-B): response
    faults via action mutators, omission and timing faults via the
    response-fate knobs, crash as total omission, and arbitrary faults
    as random combinations. Every lever is reversible with {!heal}. *)

module Types = Jury_controller.Types
module Cluster = Jury_controller.Cluster

val drop_cache_writes_to : cache:string -> Types.trigger -> Types.action list -> Types.action list
(** Mutator: silently lose cache writes to the given cache. *)

val corrupt_cache_values_to :
  cache:string -> value:string -> Types.trigger -> Types.action list ->
  Types.action list
(** Mutator: rewrite values written to the given cache. *)

val drop_network_sends : Types.trigger -> Types.action list -> Types.action list
(** Mutator: keep cache writes, lose every network send (the classic
    T2 "lost FLOW_MOD"). *)

val blackhole_flow_mods : Types.trigger -> Types.action list -> Types.action list
(** Mutator: rewrite every outgoing FLOW_MOD's actions into a drop rule
    while leaving the cache writes intact (the "undesirable FLOW_MOD"
    T2 fault). *)

val byzantine_actions : Types.trigger -> Types.action list -> Types.action list
(** Mutator: plausible-but-wrong responses (the Byzantine / arbitrary
    fault class): cache writes keep their shape but carry corrupted
    values, and FLOW_MODs are re-pointed at a perturbed physical output
    port. Deterministic, so the node is consistently wrong in
    replicated execution too. *)

val probabilistic :
  Jury_sim.Rng.t -> float ->
  (Types.trigger -> Types.action list -> Types.action list) ->
  Types.trigger -> Types.action list -> Types.action list
(** Apply the inner mutator with the given probability (threading-race
    style intermittent faults). *)

val compose :
  (Types.trigger -> Types.action list -> Types.action list) list ->
  Types.trigger -> Types.action list -> Types.action list

(** {1 Whole-replica levers} *)

val make_slow : Cluster.t -> node:int -> delay:Jury_sim.Time.t -> unit
(** Timing fault: every response from the node is delayed. *)

val make_lossy : Cluster.t -> node:int -> omit_probability:float -> unit
(** Response-omission fault. *)

val crash : Cluster.t -> node:int -> unit
(** Crash ≈ omit everything and answer nothing (reported by JURY as
    response omissions, exactly as §III-B notes). *)

val make_byzantine : Cluster.t -> node:int -> unit
(** Install {!byzantine_actions} as the node's mutator. *)

val partition : Cluster.t -> node:int -> unit
(** Partition the node from the store fabric: it neither receives nor
    emits replication, so its view silently diverges while it keeps
    answering from stale state. Cleared by {!heal} or {!rejoin}. *)

val lock_cache : Cluster.t -> node:int -> cache:string -> unit
(** The ONOS "failed to obtain lock" fault. *)

val unlock_cache : Cluster.t -> node:int -> cache:string -> unit

val heal : Cluster.t -> node:int -> unit
(** Remove every lever from the node (mutator, delays, omissions, store
    partition, cache locks). *)

val rejoin : Jury.Deployment.t -> node:int -> unit
(** Crash-and-rejoin recovery: {!heal} the node, then
    {!Jury.Deployment.rejoin_node} — state transfer from a healthy
    peer, snapshot re-seed, view invalidation, cluster aliveness. The
    node resumes answering (as a secondary; mastership is not handed
    back). *)
