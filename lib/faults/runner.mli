(** Drives a fault scenario end-to-end: builds a JURY-enhanced cluster,
    arms the fault, provokes it, and reports whether JURY raised the
    expected alarm against the faulty replica. This is the machinery
    behind the §VII-A1 detection experiments, the `detection` bench and
    the fault test-suite. *)

type report = {
  scenario : Scenarios.t;
  detected : bool;
      (** an expected alarm fired with the faulty replica among the
          suspects *)
  detection_time_ms : float option;  (** of the first matching alarm *)
  matching_alarms : Jury.Alarm.t list;
  other_alarms : Jury.Alarm.t list;
  verdict_count : int;
}

type env = {
  cluster : Jury_controller.Cluster.t;
  network : Jury_net.Network.t;
  deployment : Jury.Deployment.t;
  faulty : int;
}

val run :
  ?seed:int -> ?nodes:int -> ?k:int -> ?faulty:int ->
  ?extra_slow:int list ->
  ?switches:int -> ?random_secondaries:bool ->
  ?trace:Jury_obs.Trace.t ->
  ?channel:Jury.Channel.profile ->
  ?retransmit:Jury.Validator.retransmit ->
  ?degraded_quorum:int ->
  ?shards:int -> ?max_inflight:int -> ?batch:Jury_sim.Time.t ->
  ?pipeline_jobs:int ->
  Scenarios.t -> report
(** Defaults match the paper's worst case: 7 nodes, full replication
    (k = 6), faulty replica 2, a linear 24-switch topology. [extra_slow]
    marks additional replicas as timing-faulty (the m = 2 setting).
    [trace], when given, is attached to the engine before anything is
    scheduled, so it observes the full run. [channel] overrides the
    scenario's loss model; [retransmit], [degraded_quorum], [shards],
    [max_inflight], [batch] and [pipeline_jobs] pass through to
    {!Jury.Jury_config.make} via {!Scenarios.jury_config}. *)

val run_matrix :
  ?pool:Jury_par.Pool.t -> ?seed:int -> ?repeats:int -> ?seed_stride:int ->
  ?nodes:int -> ?k:int -> ?faulty:int -> ?extra_slow:int list ->
  ?switches:int -> ?random_secondaries:bool ->
  Scenarios.t list -> (Scenarios.t * report list) list
(** [run_matrix scenarios] runs every scenario [repeats] times (default
    1), repeat [i] seeded [seed + i * seed_stride] (stride default 13,
    matching the detection-matrix convention), fanning the
    (scenario, repeat) cells out on [pool] (default
    {!Jury_par.Pool.default}). Each cell builds its own engine inside
    its task, so results are byte-identical whatever the worker count.
    Reports come back grouped per scenario, repeats in order. *)

val run_env :
  ?seed:int -> ?nodes:int -> ?k:int -> ?faulty:int ->
  ?extra_slow:int list -> ?switches:int -> ?random_secondaries:bool ->
  ?trace:Jury_obs.Trace.t ->
  ?channel:Jury.Channel.profile ->
  ?retransmit:Jury.Validator.retransmit ->
  ?degraded_quorum:int ->
  ?shards:int -> ?max_inflight:int -> ?batch:Jury_sim.Time.t ->
  ?pipeline_jobs:int ->
  Scenarios.t -> report * env
(** Like {!run} but also returns the live environment for inspection. *)

val pp_report : Format.formatter -> report -> unit
