open Jury_sim
module Types = Jury_controller.Types
module Cluster = Jury_controller.Cluster
module Controller = Jury_controller.Controller
module Profile = Jury_controller.Profile
module Values = Jury_controller.Values
module Network = Jury_net.Network
module Switch = Jury_net.Switch
module Host = Jury_net.Host
module Graph = Jury_topo.Graph
module Names = Jury_store.Cache_names
module Of_match = Jury_openflow.Of_match
module Of_message = Jury_openflow.Of_message
module Of_action = Jury_openflow.Of_action
module Addr = Jury_packet.Addr

type context = {
  cluster : Cluster.t;
  network : Network.t;
  deployment : Jury.Deployment.t;
  faulty : int;
  rng : Rng.t;
}

type t = {
  name : string;
  klass : [ `T1 | `T2 | `T3 ];
  description : string;
  profile : Profile.t;
  policy : string option;
  state_aware : bool;
      (* almost always true; state-blind consensus exists for faults
         (store partition) that state-aware consensus excuses by design *)
  needs_lenient_switches : bool;
  arm_before_start : bool;
  arm : context -> unit;
  provoke : context -> unit;
  settle : Time.t;
  channel : Jury.Channel.profile;
      (* loss model for the replication/response links; every catalog
         scenario is reliable — runners override it for lossy studies *)
  election : Cluster.election_config option;
      (* when set, the run enables dynamic master election with this
         tuning; [None] keeps the seed's static leadership *)
  expected : Jury.Alarm.fault -> bool;
  expected_name : string;
}

(* --- helpers --- *)

let switches_mastered_by ctx node =
  Network.switches ctx.network
  |> List.map Switch.dpid
  |> List.filter (fun dpid -> Cluster.master_of ctx.cluster dpid = node)

let a_switch_mastered_by ctx node =
  match switches_mastered_by ctx node with
  | dpid :: _ -> dpid
  | [] -> failwith "scenario: faulty replica masters no switch"

(* An inter-switch link one of whose endpoint switches is mastered by
   [node], with [node] also being the link's liveness master (the
   higher-id master of the two endpoints). *)
let liveness_link_of ctx node =
  let graph = (Network.plan ctx.network).Jury_topo.Builder.graph in
  let edges = Graph.edges graph in
  List.find_opt
    (fun (e : Graph.edge) ->
      let ma = Cluster.master_of ctx.cluster e.a.dpid in
      let mb = Cluster.master_of ctx.cluster e.b.dpid in
      max ma mb = node && (ma = node || mb = node))
    edges

let flap_liveness_link ctx node =
  match liveness_link_of ctx node with
  | None -> failwith "scenario: no suitable link for liveness fault"
  | Some e ->
      Network.take_link_down ctx.network e.a e.b;
      let engine = Cluster.engine ctx.cluster in
      ignore
        (Engine.schedule engine ~after:(Time.ms 500) (fun () ->
             Network.bring_link_up ctx.network e.a e.b))

let sample_flow ?(priority = 300) ~out_port () =
  let m =
    Of_match.l2_pair
      ~src:(Addr.Mac.of_host_index 0)
      ~dst:(Addr.Mac.of_host_index 1)
  in
  Of_message.flow_mod ~priority m [ Of_action.Output out_port ]

let rest_install ctx ~node ~dpid flow =
  Cluster.rest ctx.cluster ~node (Types.Install_flow { dpid; flow })

let is_fault name f = Jury.Alarm.fault_name f = name

let is_policy_violation rule (f : Jury.Alarm.fault) =
  match f with
  | Jury.Alarm.Policy_violation r -> r = rule
  | _ -> false

(* --- the catalog --- *)

let onos_database_locking =
  { name = "onos-database-locking";
    klass = `T1;
    description =
      "Clustered ONOS rejects a switch connect: the replica hits 'failed \
       to obtain lock' on its distributed graph database, so the switch \
       entry is never written (Scott et al. [55]).";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = true;
    arm =
      (fun ctx ->
        Injector.lock_cache ctx.cluster ~node:ctx.faulty ~cache:Names.switchdb);
    provoke =
      (fun ctx ->
        (* The bootstrap FEATURES_REPLY of a switch mastered by the
           faulty replica is the trigger; re-announce to be sure one
           lands after arming. *)
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        Switch.announce (Network.switch ctx.network dpid));
    settle = Time.sec 2;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "response-timeout";
    expected_name = "response-timeout" }

let onos_master_election =
  { name = "onos-master-election";
    klass = `T1;
    description =
      "After the link-liveness master reboots with a lower id, both \
       replicas believe they are not responsible for the link and the \
       LINKSDB entry is never refreshed (Scott et al. [55]).";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        (* The faulty replica's election logic is stale: it drops the
           LINKSDB writes it should make as liveness master. *)
        Controller.set_mutator
          (Cluster.controller ctx.cluster ctx.faulty)
          (Some (Injector.drop_cache_writes_to ~cache:Names.linksdb)));
    provoke = (fun ctx -> flap_liveness_link ctx ctx.faulty);
    settle = Time.sec 8;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "consensus-mismatch";
    expected_name = "consensus-mismatch" }

let odl_flowmod_drop =
  { name = "odl-flowmod-drop";
    klass = `T2;
    description =
      "FLOW_MODs read from MD-SAL are sporadically lost before reaching \
       the OpenFlow plugin: the cache holds the rule, the wire never \
       sees it [13].";
    profile = Profile.odl;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        Controller.set_mutator
          (Cluster.controller ctx.cluster ctx.faulty)
          (Some Injector.drop_network_sends));
    provoke =
      (fun ctx ->
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        rest_install ctx ~node:ctx.faulty ~dpid (sample_flow ~out_port:1 ()));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "cache-without-network";
    expected_name = "cache-without-network" }

let hierarchy_policy =
  "deny name=flow-field-hierarchy cache=FLOWSDB check=flow-hierarchy"

let odl_incorrect_flowmod =
  { name = "odl-incorrect-flowmod";
    klass = `T3;
    description =
      "A FLOW_MOD whose match violates the OF 1.0 field hierarchy is \
       silently accepted by the switch with the offending fields \
       stripped, so switch and data store disagree [23]. Cache and \
       network are consistent, so only a policy can catch it.";
    profile = Profile.odl;
    policy = Some hierarchy_policy;
    state_aware = true;
    needs_lenient_switches = true;
    arm_before_start = false;
    arm = (fun _ -> ());
    provoke =
      (fun ctx ->
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        let bad_match = { Of_match.wildcard_all with tp_dst = Some 80 } in
        let flow =
          Of_message.flow_mod ~priority:400 bad_match [ Of_action.Output 1 ]
        in
        rest_install ctx ~node:ctx.faulty ~dpid flow);
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_policy_violation "flow-field-hierarchy";
    expected_name = "policy-violation:flow-field-hierarchy" }

let link_failure =
  { name = "link-failure";
    klass = `T1;
    description =
      "Synthetic: on an LLDP trigger the faulty controller updates \
       LINKSDB to mark a healthy critical link as down.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        Controller.set_mutator
          (Cluster.controller ctx.cluster ctx.faulty)
          (Some
             (Injector.corrupt_cache_values_to ~cache:Names.linksdb
                ~value:Values.Link.value_down)));
    provoke = (fun ctx -> flap_liveness_link ctx ctx.faulty);
    settle = Time.sec 8;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "consensus-mismatch";
    expected_name = "consensus-mismatch" }

let undesirable_flowmod =
  { name = "undesirable-flowmod";
    klass = `T2;
    description =
      "Synthetic: an administrator installs a flow; the faulty \
       controller writes the correct rule to the cache but sends a \
       FLOW_MOD that drops all packets instead.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        Controller.set_mutator
          (Cluster.controller ctx.cluster ctx.faulty)
          (Some Injector.blackhole_flow_mods));
    provoke =
      (fun ctx ->
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        rest_install ctx ~node:ctx.faulty ~dpid (sample_flow ~out_port:2 ()));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "cache-network-mismatch";
    expected_name = "cache-network-mismatch" }

let topology_guard_policy =
  "deny name=no-proactive-topology trigger=internal cache=LINKSDB\n\
   deny name=no-proactive-topology-edges trigger=internal cache=EDGEDB"

let faulty_proactive =
  { name = "faulty-proactive";
    klass = `T3;
    description =
      "Synthetic: a proactive application (or administrator) updates \
       LINKSDB to bring a critical link down. Cache and network stay \
       consistent; the Fig. 3 policy forbidding proactive topology \
       writes raises the alarm.";
    profile = Profile.onos;
    policy = Some topology_guard_policy;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm = (fun _ -> ());
    provoke =
      (fun ctx ->
        let graph = (Network.plan ctx.network).Jury_topo.Builder.graph in
        match Graph.edges graph with
        | [] -> failwith "scenario: no link to attack"
        | e :: _ ->
            let key =
              Values.Link.key (e.a.dpid, e.a.port) (e.b.dpid, e.b.port)
            in
            Controller.run_internal
              (Cluster.controller ctx.cluster ctx.faulty)
              ~app:"rogue-app"
              (Types.Proactive
                 [ Types.Cache_write
                     { cache = Names.linksdb;
                       op = Jury_store.Event.Update;
                       key;
                       value = Values.Link.value_down } ]));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_policy_violation "no-proactive-topology";
    expected_name = "policy-violation:no-proactive-topology" }

let flow_deletion_failure =
  { name = "flow-deletion-failure";
    klass = `T1;
    description =
      "ODL byzantine bug [16]: flow deletion via REST locks the \
       controller up; nothing is deleted and nothing answers.";
    profile = Profile.odl;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        let ctrl = Cluster.controller ctx.cluster ctx.faulty in
        Controller.set_mutator ctrl (Some (fun _ _ -> []));
        Controller.set_omit_probability ctrl 1.0);
    provoke =
      (fun ctx ->
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        (* Install first through a healthy replica, then ask the faulty
           one to delete. *)
        let healthy = (ctx.faulty + 1) mod Cluster.nodes ctx.cluster in
        let flow = sample_flow ~out_port:1 () in
        rest_install ctx ~node:healthy ~dpid flow;
        ignore
          (Engine.schedule (Cluster.engine ctx.cluster) ~after:(Time.sec 1)
             (fun () ->
               Cluster.rest ctx.cluster ~node:ctx.faulty
                 (Types.Delete_flow { dpid; fm_match = flow.Of_message.fm_match }))));
    settle = Time.sec 4;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "response-timeout";
    expected_name = "response-timeout" }

let link_detection_inconsistent =
  { name = "link-detection-inconsistent";
    klass = `T1;
    description =
      "ONOS threading races make link detection flaky: re-runs find \
       different link sets [19]. Modelled as the replica losing half of \
       its LINKSDB writes.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        Controller.set_mutator
          (Cluster.controller ctx.cluster ctx.faulty)
          (Some
             (Injector.probabilistic ctx.rng 0.5
                (Injector.drop_cache_writes_to ~cache:Names.linksdb))));
    provoke =
      (fun ctx ->
        (* Flap several liveness links to generate many LINKSDB writes;
           roughly half will be lost. *)
        flap_liveness_link ctx ctx.faulty);
    settle = Time.sec 8;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "consensus-mismatch";
    expected_name = "consensus-mismatch" }

let flow_instantiation_failure =
  { name = "flow-instantiation-failure";
    klass = `T2;
    description =
      "ODL Helium: restconf flow deployment returns success and updates \
       the store, but no FLOW_MOD ever leaves the controller [3].";
    profile = Profile.odl;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        Controller.set_mutator
          (Cluster.controller ctx.cluster ctx.faulty)
          (Some Injector.drop_network_sends));
    provoke =
      (fun ctx ->
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        rest_install ctx ~node:ctx.faulty ~dpid
          (sample_flow ~priority:350 ~out_port:1 ()));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "cache-without-network";
    expected_name = "cache-without-network" }

let pending_add_stuck =
  { name = "pending-add-stuck";
    klass = `T2;
    description =
      "ONOS flow rules stuck in PENDING_ADD: the store holds a rule the \
       switch never confirms [6]. Modelled as a proactive store write \
       whose FLOW_MOD is lost.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        Controller.set_mutator
          (Cluster.controller ctx.cluster ctx.faulty)
          (Some Injector.drop_network_sends));
    provoke =
      (fun ctx ->
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        let flow = sample_flow ~priority:360 ~out_port:1 () in
        let key =
          Values.Flow.key dpid flow.Of_message.fm_match
            ~priority:flow.Of_message.priority
        in
        Controller.run_internal
          (Cluster.controller ctx.cluster ctx.faulty)
          ~app:"flow-pusher"
          (Types.Proactive
             [ Types.Cache_write
                 { cache = Names.flowsdb;
                   op = Jury_store.Event.Create;
                   key;
                   value = Values.Flow.value flow };
               Types.Network_send
                 { dpid; payload = Of_message.Flow_mod flow } ]));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "cache-without-network";
    expected_name = "cache-without-network" }

let controller_crash =
  { name = "controller-crash";
    klass = `T1;
    description =
      "Fail-stop crash of a replica. JURY cannot distinguish a crash \
       from response omission (SIII-B): every trigger mastered by the \
       dead replica times out with it as the suspect, until HA \
       failover reassigns its switches.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm = (fun ctx -> Injector.crash ctx.cluster ~node:ctx.faulty);
    provoke =
      (fun ctx ->
        (* Traffic through a switch the dead replica masters. *)
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        let plan = Network.plan ctx.network in
        let local =
          List.find
            (fun (slot : Jury_topo.Builder.host_slot) ->
              Jury_openflow.Of_types.Dpid.equal slot.Jury_topo.Builder.dpid
                dpid)
            plan.Jury_topo.Builder.hosts
        in
        let src = Network.host ctx.network local.Jury_topo.Builder.host_index in
        let dst = Network.host ctx.network 0 in
        Host.send_tcp src ~dst_mac:(Host.mac dst) ~dst_ip:(Host.ip dst)
          ~src_port:4000 ~dst_port:80 ());
    settle = Time.sec 2;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "response-timeout";
    expected_name = "response-timeout" }

(* Traffic originating behind a given switch — a reactive trigger whose
   primary is whoever masters that switch when the PACKET_IN fires. *)
let send_via_dpid ctx dpid =
  let plan = Network.plan ctx.network in
  let local =
    List.find
      (fun (slot : Jury_topo.Builder.host_slot) ->
        Jury_openflow.Of_types.Dpid.equal slot.Jury_topo.Builder.dpid dpid)
      plan.Jury_topo.Builder.hosts
  in
  let src = Network.host ctx.network local.Jury_topo.Builder.host_index in
  let dst = Network.host ctx.network 0 in
  Host.send_tcp src ~dst_mac:(Host.mac dst) ~dst_ip:(Host.ip dst)
    ~src_port:4000 ~dst_port:80 ()

(* Traffic through a switch the given replica masters — the standard
   provocation for omission-class faults. *)
let send_via_mastered_switch ctx node =
  send_via_dpid ctx (a_switch_mastered_by ctx node)

let controller_crash_rejoin =
  { name = "controller-crash-rejoin";
    klass = `T1;
    description =
      "Crash-and-rejoin: a replica fail-stops (detected as response \
       timeouts, as in controller-crash), then recovers via a state \
       transfer from a healthy peer and resumes answering. The alarms \
       all date from the crash window; the rejoined replica's responses \
       validate cleanly against its resynced store view.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm = (fun ctx -> Injector.crash ctx.cluster ~node:ctx.faulty);
    provoke =
      (fun ctx ->
        (* Crash window: a trigger mastered by the dead replica times
           out. Two seconds in, the replica rejoins; a second trigger
           must then be answered from the resynced state. *)
        send_via_mastered_switch ctx ctx.faulty;
        let engine = Cluster.engine ctx.cluster in
        ignore
          (Engine.schedule engine ~after:(Time.sec 2) (fun () ->
               Injector.rejoin ctx.deployment ~node:ctx.faulty));
        ignore
          (Engine.schedule engine ~after:(Time.ms 2500) (fun () ->
               send_via_mastered_switch ctx ctx.faulty)));
    settle = Time.sec 5;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "response-timeout";
    expected_name = "response-timeout" }

let byzantine_secondary =
  { name = "byzantine-secondary";
    klass = `T1;
    description =
      "A replica turns Byzantine: it answers every replicated trigger \
       promptly but with plausible-but-wrong content (corrupted cache \
       values, FLOW_MODs re-pointed at the wrong port). State-aware \
       consensus outvotes it: the k honest responses agree, the \
       Byzantine one diverges.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm = (fun ctx -> Injector.make_byzantine ctx.cluster ~node:ctx.faulty);
    provoke =
      (fun ctx ->
        (* Install through the Byzantine primary: its cache write and
           FLOW_MOD carry the corruption while every honest secondary's
           replicated execution plans the correct actions. *)
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        rest_install ctx ~node:ctx.faulty ~dpid (sample_flow ~out_port:1 ()));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "consensus-mismatch";
    expected_name = "consensus-mismatch" }

let store_partition =
  { name = "store-partition";
    klass = `T1;
    description =
      "The store fabric partitions one replica from its peers: \
       replication stops crossing the cut, so its view silently \
       diverges while it keeps answering replicated executions from \
       stale state. A topology change it never sees makes its shadow \
       execution dissent from every honest replica. State-aware \
       consensus would excuse the dissent (the snapshots differ — \
       exactly the false-positive SIV-C guards against), so this \
       scenario runs consensus state-blind to surface it.";
    profile = Profile.onos;
    policy = None;
    state_aware = false;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm = (fun ctx -> Injector.partition ctx.cluster ~node:ctx.faulty);
    provoke =
      (fun ctx ->
        (* Cut a link: the LINKSDB updates replicate to everyone but
           the partitioned replica. A reactive trigger towards a host
           behind the cut floods on every honest replica (no path),
           while the stale one still plans the old route — dissent. *)
        let plan = Network.plan ctx.network in
        let graph = plan.Jury_topo.Builder.graph in
        (* Pick a link whose removal strands one endpoint (a degree-1
           stub): traffic for the stranded switch has no route left, so
           every honest replica floods while the stale one still plans
           through the cut. *)
        let edge, stranded =
          let stub (e : Graph.edge) =
            if List.length (Graph.neighbors graph e.a.dpid) = 1 then
              Some (e, e.a.dpid)
            else if List.length (Graph.neighbors graph e.b.dpid) = 1 then
              Some (e, e.b.dpid)
            else None
          in
          match List.find_map stub (Graph.edges graph) with
          | Some p -> p
          | None -> failwith "scenario: no stub link to cut"
        in
        Network.take_link_down ctx.network edge.a edge.b;
        ignore
          (Engine.schedule (Cluster.engine ctx.cluster) ~after:(Time.sec 1)
             (fun () ->
               let host_on dpid =
                 match
                   List.find_opt
                     (fun (s : Jury_topo.Builder.host_slot) ->
                       Jury_openflow.Of_types.Dpid.equal
                         s.Jury_topo.Builder.dpid dpid)
                     plan.Jury_topo.Builder.hosts
                 with
                 | Some s ->
                     Network.host ctx.network s.Jury_topo.Builder.host_index
                 | None -> failwith "scenario: no host behind the cut"
               in
               (* The trigger's primary must be healthy — the stale
                  replica has to dissent as a {e secondary} so the
                  honest majority outvotes it. *)
               let healthy = (ctx.faulty + 1) mod Cluster.nodes ctx.cluster in
               let src = host_on (a_switch_mastered_by ctx healthy) in
               let dst = host_on stranded in
               Host.send_tcp src ~dst_mac:(Host.mac dst) ~dst_ip:(Host.ip dst)
                 ~src_port:4000 ~dst_port:80 ())));
    settle = Time.sec 4;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "consensus-mismatch";
    expected_name = "consensus-mismatch" }

let churn_policy =
  "deny name=no-proactive-topology trigger=internal cache=LINKSDB"

let policy_churn =
  { name = "policy-churn";
    klass = `T3;
    description =
      "Policy churn: JURY starts with no policy rules, an operator \
       installs the Fig. 3 topology guard mid-flight (add_rule, \
       recompile on next read), and a rogue proactive write arriving \
       after the churn is caught by the freshly-compiled rule.";
    profile = Profile.onos;
    (* [Some ""] compiles to an empty engine but routes through the
       policy-carrying path: the staged pipeline is dropped (the churned
       engine would otherwise be shared with detached shard replicas)
       and the validator re-reads the rule count per verdict. *)
    policy = Some "";
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        let policies = (Jury.Deployment.cfg ctx.deployment).Jury.Deployment.policies in
        match Jury_policy.Parse.dsl_line churn_policy with
        | Ok rule -> Jury_policy.Engine.add_rule policies rule
        | Error msg -> failwith ("policy-churn: " ^ msg));
    provoke =
      (fun ctx ->
        let graph = (Network.plan ctx.network).Jury_topo.Builder.graph in
        match Graph.edges graph with
        | [] -> failwith "scenario: no link to attack"
        | e :: _ ->
            let key =
              Values.Link.key (e.a.dpid, e.a.port) (e.b.dpid, e.b.port)
            in
            Controller.run_internal
              (Cluster.controller ctx.cluster ctx.faulty)
              ~app:"rogue-app"
              (Types.Proactive
                 [ Types.Cache_write
                     { cache = Names.linksdb;
                       op = Jury_store.Event.Update;
                       key;
                       value = Values.Link.value_down } ]));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_policy_violation "no-proactive-topology";
    expected_name = "policy-violation:no-proactive-topology" }

let master_failover =
  { name = "master-failover";
    klass = `T1;
    description =
      "Mid-run master crash under dynamic leadership: the slow election \
       (2 × 400 ms beats) is an order of magnitude above θτ, so the \
       crash-window trigger times out against the dead master first — \
       that alarm is the detection. Term 2 then fails its switches \
       over, and a later trigger through the same switch validates \
       cleanly under the new master.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm = (fun ctx -> Injector.crash ctx.cluster ~node:ctx.faulty);
    provoke =
      (fun ctx ->
        let dpid = a_switch_mastered_by ctx ctx.faulty in
        send_via_dpid ctx dpid;
        (* Well after the election: the same switch now answers through
           its new master, stamped with term 2. *)
        ignore
          (Engine.schedule (Cluster.engine ctx.cluster) ~after:(Time.sec 2)
             (fun () -> send_via_dpid ctx dpid)));
    settle = Time.sec 4;
    channel = Jury.Channel.reliable;
    election = Some { Cluster.period = Time.ms 400; timeout_beats = 2 };
    expected = is_fault "response-timeout";
    expected_name = "response-timeout" }

let election_storm =
  { name = "election-storm";
    klass = `T1;
    description =
      "Leadership churn must not mask a real fault: a healthy replica \
       crashes (the fast election beats θτ, so its in-flight trigger is \
       re-attributed to the new master and validates there at term 2), \
       rejoins as a secondary, and crashes again (term 3) — while a \
       Byzantine replica keeps answering promptly with corrupted \
       content. State-aware consensus still convicts the Byzantine one \
       mid-storm.";
    profile = Profile.onos;
    policy = None;
    state_aware = true;
    needs_lenient_switches = false;
    arm_before_start = false;
    arm = (fun ctx -> Injector.make_byzantine ctx.cluster ~node:ctx.faulty);
    provoke =
      (fun ctx ->
        let engine = Cluster.engine ctx.cluster in
        let storm = (ctx.faulty + 1) mod Cluster.nodes ctx.cluster in
        (* Crash the storm node with a trigger of its own in flight: the
           2 × 30 ms election declares it dead before the 150 ms θτ
           expires, so the trigger is re-driven at the new master
           instead of timing out. *)
        Injector.crash ctx.cluster ~node:storm;
        send_via_mastered_switch ctx storm;
        ignore
          (Engine.schedule engine ~after:(Time.sec 1) (fun () ->
               Injector.rejoin ctx.deployment ~node:storm));
        ignore
          (Engine.schedule engine ~after:(Time.sec 2) (fun () ->
               Injector.crash ctx.cluster ~node:storm));
        ignore
          (Engine.schedule engine ~after:(Time.sec 3) (fun () ->
               let dpid = a_switch_mastered_by ctx ctx.faulty in
               rest_install ctx ~node:ctx.faulty ~dpid
                 (sample_flow ~out_port:1 ()))));
    settle = Time.sec 5;
    channel = Jury.Channel.reliable;
    election = Some { Cluster.period = Time.ms 30; timeout_beats = 2 };
    expected = is_fault "consensus-mismatch";
    expected_name = "consensus-mismatch" }

let ryu_standalone_hang =
  { name = "ryu-standalone-hang";
    klass = `T1;
    description =
      "Standalone (Ryu-style) instances share no store, so JURY \
       validates by replicating the trigger stream across independent \
       instances and voting on the response stream alone (state-blind \
       consensus is forced by the profile). A hung instance — REST \
       accepted, nothing executed, nothing answered — is caught as a \
       response timeout attributed to it.";
    profile = Profile.ryu;
    policy = None;
    state_aware = true; (* install forces state-blind: no shared store *)
    needs_lenient_switches = false;
    arm_before_start = false;
    arm =
      (fun ctx ->
        let ctrl = Cluster.controller ctx.cluster ctx.faulty in
        Controller.set_mutator ctrl (Some (fun _ _ -> []));
        Controller.set_omit_probability ctrl 1.0);
    provoke =
      (fun ctx ->
        (* Every switch is mastered by the standalone leader; the REST
           call targets the hung instance directly, making it the
           primary the omission is attributed to. *)
        let dpid =
          match Network.switches ctx.network with
          | s :: _ -> Switch.dpid s
          | [] -> failwith "scenario: no switch"
        in
        rest_install ctx ~node:ctx.faulty ~dpid (sample_flow ~out_port:1 ()));
    settle = Time.sec 3;
    channel = Jury.Channel.reliable;
    election = None;
    expected = is_fault "response-timeout";
    expected_name = "response-timeout" }

let all =
  [ onos_database_locking;
    onos_master_election;
    odl_flowmod_drop;
    odl_incorrect_flowmod;
    link_failure;
    undesirable_flowmod;
    faulty_proactive;
    flow_deletion_failure;
    link_detection_inconsistent;
    flow_instantiation_failure;
    pending_add_stuck;
    controller_crash;
    controller_crash_rejoin;
    byzantine_secondary;
    store_partition;
    policy_churn;
    master_failover;
    election_storm;
    ryu_standalone_hang ]

let find name = List.find_opt (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all

(* --- JURY configuration for a scenario --- *)

let jury_config (t : t) ?(k = 6) ?(random_secondaries = true) ?channel
    ?retransmit ?degraded_quorum ?shards ?max_inflight ?batch ?pipeline_jobs
    () =
  let policies =
    match t.policy with
    | None -> Jury_policy.Engine.create []
    | Some src -> (
        match Jury_policy.Engine.of_dsl src with
        | Ok e -> e
        | Error msg -> failwith ("scenario policy: " ^ msg))
  in
  (* ONOS replicates raw stores and standalone Ryu has nothing to wrap;
     the ODL-style profiles wrap updates in an encapsulation layer JURY
     must strip (§IV-B) — keyed on the profile's decapsulation cost. *)
  let encapsulation = t.profile.Profile.decapsulation_cost_median_us > 0. in
  let channel = match channel with Some c -> c | None -> t.channel in
  (* A scenario that ships policy rules or runs an election cannot
     pipeline (T3 checks and live term lookups are excluded from the
     staged path); keep such runs serial instead of rejecting a whole
     matrix sweep over the flag. *)
  let pipeline_jobs =
    if t.policy = None && t.election = None then pipeline_jobs else None
  in
  Jury.Jury_config.make ~k ~random_secondaries ~policies ~encapsulation
    ~state_aware:t.state_aware ~channel ?retransmit ?degraded_quorum ?shards
    ?max_inflight ?batch ?pipeline_jobs ?election:t.election ()
