(** The paper's fault catalog (§III-B, §VII-A1 and the appendix), as
    runnable scenarios.

    Each scenario arms a fault on one replica, provokes the triggering
    event, and declares which JURY alarm should fire. {!Runner} drives
    a scenario end-to-end. *)

module Types = Jury_controller.Types
module Cluster = Jury_controller.Cluster

type context = {
  cluster : Cluster.t;
  network : Jury_net.Network.t;
  deployment : Jury.Deployment.t;
      (** the installed JURY deployment — recovery scenarios (rejoin's
          state transfer) and policy churn (the live rule engine) act
          through it *)
  faulty : int;          (** the replica carrying the fault *)
  rng : Jury_sim.Rng.t;
}

type t = {
  name : string;
  klass : [ `T1 | `T2 | `T3 ];
  description : string;
  profile : Jury_controller.Profile.t;  (** controller flavour it targets *)
  policy : string option;
      (** policy-DSL source JURY needs loaded to catch it (T3 faults) *)
  state_aware : bool;
      (** consensus mode for the deployment — [true] for every scenario
          except {!store_partition}, whose divergent-view dissent
          state-aware consensus excuses by design (§IV-C) *)
  needs_lenient_switches : bool;
  arm_before_start : bool;
      (** arm during bootstrap (e.g. the switch-connect lock fault) *)
  arm : context -> unit;
  provoke : context -> unit;
  settle : Jury_sim.Time.t;  (** how long after provoking to run *)
  channel : Jury.Channel.profile;
      (** loss model for the replication and response-collection links;
          [Jury.Channel.reliable] for every catalog scenario *)
  election : Cluster.election_config option;
      (** when set, the deployment enables dynamic master election and
          failover re-attribution with this tuning (the [election]
          field of {!Jury.Deployment.config}); [None] — every
          pre-leadership catalog scenario — keeps static mastership *)
  expected : Jury.Alarm.fault -> bool;
  expected_name : string;
}

val all : t list
val find : string -> t option
val names : string list

(** {1 Individual scenarios} *)

val onos_database_locking : t
val onos_master_election : t
val odl_flowmod_drop : t
val odl_incorrect_flowmod : t
val link_failure : t
val undesirable_flowmod : t
val faulty_proactive : t
val flow_deletion_failure : t
val link_detection_inconsistent : t
val flow_instantiation_failure : t
val pending_add_stuck : t

val controller_crash : t
(** Fail-stop crash, reported by JURY as response omissions (§III-B's
    explicit caveat). *)

val controller_crash_rejoin : t
(** Crash, then recovery: {!Injector.rejoin} state-transfers the store
    view from a healthy peer and the replica resumes answering. *)

val byzantine_secondary : t
(** Plausible-but-wrong responses, outvoted by state-aware consensus. *)

val store_partition : t
(** The store fabric stops replicating one replica's writes; the
    missing peer cache acks surface as response timeouts. *)

val policy_churn : t
(** A policy rule is installed mid-flight ({!Jury_policy.Engine.add_rule});
    a violation arriving after the churn is caught by the recompiled
    rule set. *)

val master_failover : t
(** Master crash under dynamic leadership: the crash-window trigger
    times out (the detection) before the deliberately slow election
    declares the master dead; the cluster then fails over to term 2
    and later triggers validate under the new master. *)

val election_storm : t
(** Two leadership changes in one run (crash → re-attributed in-flight
    trigger → rejoin → crash) with a Byzantine replica active
    throughout — churn must not mask the consensus-mismatch
    conviction. *)

val ryu_standalone_hang : t
(** Standalone-mode validation: independent Ryu-style instances, no
    shared store, state-blind response voting; a hung instance is
    caught as a response timeout. *)

val jury_config :
  t ->
  ?k:int -> ?random_secondaries:bool ->
  ?channel:Jury.Channel.profile ->
  ?retransmit:Jury.Validator.retransmit ->
  ?degraded_quorum:int ->
  ?shards:int -> ?max_inflight:int -> ?batch:Jury_sim.Time.t ->
  ?pipeline_jobs:int ->
  unit -> Jury.Jury_config.t
(** The {!Jury.Jury_config.t} a scenario calls for: its policy DSL
    compiled, encapsulation chosen from the controller profile, and the
    scenario's channel loss model (overridable with [?channel]).
    Defaults to the paper's worst case, k = 6. The remaining knobs pass
    straight through to {!Jury.Jury_config.make} (along with the
    scenario's [election] tuning), except that [pipeline_jobs] is
    dropped (serial path) for scenarios carrying a policy rule set or
    an election, both of which the staged pipeline excludes. *)
