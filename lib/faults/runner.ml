open Jury_sim
module Cluster = Jury_controller.Cluster
module Network = Jury_net.Network
module Host = Jury_net.Host
module Builder = Jury_topo.Builder

type report = {
  scenario : Scenarios.t;
  detected : bool;
  detection_time_ms : float option;
  matching_alarms : Jury.Alarm.t list;
  other_alarms : Jury.Alarm.t list;
  verdict_count : int;
}

type env = {
  cluster : Cluster.t;
  network : Network.t;
  deployment : Jury.Deployment.t;
  faulty : int;
}

let run_env ?(seed = 11) ?(nodes = 7) ?(k = 6) ?(faulty = 2)
    ?(extra_slow = []) ?(switches = 24) ?(random_secondaries = true) ?trace
    ?channel ?retransmit ?degraded_quorum ?shards ?max_inflight ?batch
    ?pipeline_jobs (scenario : Scenarios.t) =
  let engine = Engine.create ~seed () in
  Option.iter (Engine.set_trace engine) trace;
  let plan = Builder.linear ~switches ~hosts_per_switch:1 in
  let network =
    Network.create engine plan
      ~lenient_tables:scenario.Scenarios.needs_lenient_switches ()
  in
  let cluster =
    Cluster.create engine ~profile:scenario.Scenarios.profile ~nodes ~network
      ()
  in
  let deployment =
    Jury.Jury_config.install cluster
      (Scenarios.jury_config scenario ~k ~random_secondaries ?channel
         ?retransmit ?degraded_quorum ?shards ?max_inflight ?batch
         ?pipeline_jobs ())
  in
  let ctx =
    { Scenarios.cluster;
      network;
      deployment;
      faulty;
      rng = Rng.split (Engine.rng engine) }
  in
  List.iter
    (fun node -> Injector.make_slow cluster ~node ~delay:(Time.ms 40))
    extra_slow;
  if scenario.Scenarios.arm_before_start then scenario.Scenarios.arm ctx;
  Cluster.converge cluster;
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  if not scenario.Scenarios.arm_before_start then scenario.Scenarios.arm ctx;
  let t0 = Engine.now engine in
  scenario.Scenarios.provoke ctx;
  Engine.run engine
    ~until:(Time.add (Engine.now engine) scenario.Scenarios.settle);
  let validator = Jury.Deployment.validator deployment in
  (* No-op on the serial path; a pipelined run merges its shard
     replicas here (undecided triggers stay undecided). *)
  Jury.Validator.drain_pipeline validator;
  let alarms = Jury.Validator.alarms validator in
  let matches (a : Jury.Alarm.t) =
    Time.(a.Jury.Alarm.decided_at >= t0)
    && List.mem faulty a.Jury.Alarm.suspects
    && (match a.Jury.Alarm.verdict with
       | Jury.Alarm.Faulty faults ->
           List.exists scenario.Scenarios.expected faults
       | _ -> false)
  in
  let matching_alarms, other_alarms = List.partition matches alarms in
  let report =
    { scenario;
      detected = matching_alarms <> [];
      detection_time_ms =
        (match matching_alarms with
        | a :: _ -> Some (Time.to_float_ms (Jury.Alarm.detection_time a))
        | [] -> None);
      matching_alarms;
      other_alarms;
      verdict_count = Jury.Validator.decided_count validator }
  in
  (report, { cluster; network; deployment; faulty })

let run ?seed ?nodes ?k ?faulty ?extra_slow ?switches ?random_secondaries
    ?trace ?channel ?retransmit ?degraded_quorum ?shards ?max_inflight ?batch
    ?pipeline_jobs scenario =
  fst
    (run_env ?seed ?nodes ?k ?faulty ?extra_slow ?switches
       ?random_secondaries ?trace ?channel ?retransmit ?degraded_quorum
       ?shards ?max_inflight ?batch ?pipeline_jobs scenario)

let run_matrix ?pool ?(seed = 11) ?(repeats = 1) ?(seed_stride = 13) ?nodes
    ?k ?faulty ?extra_slow ?switches ?random_secondaries scenarios =
  let pool =
    match pool with Some p -> p | None -> Jury_par.Pool.default ()
  in
  (* One pool task per (scenario, repeat) cell — every cell builds its
     own engine inside the task, so the matrix is embarrassingly
     parallel and its result is independent of the worker count. *)
  let cells =
    List.concat_map
      (fun scenario -> List.init repeats (fun i -> (scenario, i)))
      scenarios
  in
  let reports =
    Jury_par.Pool.map_ordered pool cells (fun (scenario, i) ->
        run ~seed:(seed + (i * seed_stride)) ?nodes ?k ?faulty ?extra_slow
          ?switches ?random_secondaries scenario)
  in
  let rec regroup scenarios reports =
    match scenarios with
    | [] -> []
    | scenario :: rest ->
        let rec split n rs =
          if n = 0 then ([], rs)
          else
            match rs with
            | [] -> invalid_arg "Runner.run_matrix: report underflow"
            | r :: rs ->
                let taken, rest = split (n - 1) rs in
                (r :: taken, rest)
        in
        let mine, others = split repeats reports in
        (scenario, mine) :: regroup rest others
  in
  regroup scenarios reports

let pp_report fmt r =
  Format.fprintf fmt "%-28s %-2s %-10s %s" r.scenario.Scenarios.name
    (match r.scenario.Scenarios.klass with
    | `T1 -> "T1"
    | `T2 -> "T2"
    | `T3 -> "T3")
    (if r.detected then "DETECTED" else "MISSED")
    (match r.detection_time_ms with
    | Some ms -> Printf.sprintf "in %.1fms (%s)" ms r.scenario.Scenarios.expected_name
    | None -> "(" ^ r.scenario.Scenarios.expected_name ^ " not raised)")
