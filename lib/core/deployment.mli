(** JURY deployment: attach the replicator, per-node controller
    modules, and the out-of-band validator to a running cluster.

    Installing a deployment interposes on the cluster's southbound and
    northbound paths (the replicator, §IV-A), hooks every node's cache
    manager and network egress (the controller module, §VI-C), gives
    each node a shadow-execution pipeline for replicated triggers (the
    paper runs these on the controllers' spare cores, off the FLOW_MOD
    pipeline), and stands up the validator on an out-of-band link. *)

module Types = Jury_controller.Types
module Cluster = Jury_controller.Cluster

type config = {
  k : int;                            (** replication factor *)
  timeout : Jury_sim.Time.t;          (** validation timeout θτ *)
  adaptive_timeout : bool;            (** §VIII-1: RTO-style adaptive θτ *)
  state_aware : bool;
  nondet_rule : bool;
  random_secondaries : bool;
      (** sample k fresh secondaries per trigger (paper default) vs the
          primary's static peer set (ablation) *)
  policies : Jury_policy.Engine.t;
  validator_latency : Jury_sim.Time.t;      (** out-of-band link, one way *)
  validator_jitter_us : float;
      (** exponential mean (µs) added to [validator_latency]; non-positive
          = fixed latency, no RNG draw *)
  replication_latency : Jury_sim.Time.t;    (** OVS → secondary *)
  replication_jitter_us : float;
      (** exponential mean (µs) added to [replication_latency];
          non-positive = fixed latency, no RNG draw *)
  chatter_cost : Jury_sim.Time.t;
      (** pipeline time the primary pays per replicated trigger for the
          secondaries' mastership-status chatter (Hazelcast, §VII-B2) *)
  chatter_bytes : int;
  encapsulation : bool;               (** ODL-style OVS replication *)
  channel : Channel.profile;
      (** loss model applied to every replication and
          response-collection link; {!Channel.reliable} reproduces the
          seed bit-for-bit *)
  retransmit : Validator.retransmit option;
      (** re-replicate to straggling secondaries (bounded, with
          exponential backoff); [None] = no retransmission *)
  degraded_quorum : int option;
      (** allow reduced-quorum [Ok_degraded] verdicts on timeout;
          [None] = seed behaviour *)
  shards : int;
      (** validator verdict-state shards (power of two; 1 = seed) *)
  max_inflight : int option;
      (** validator in-flight high-water mark; [None] = unbounded *)
  batch_window : Jury_sim.Time.t option;
      (** when set, responses coming off the out-of-band links are
          accumulated for this long and handed to the validator as one
          per-shard batch; [None] = one {!Validator.deliver} per
          response (seed behaviour) *)
  pipeline_jobs : int;
      (** intra-run parallelism: when > 1, validation runs as a staged
          pipeline over the {!Jury_par.Pool} domain pool ({!Stage}),
          with up to [pipeline_jobs - 1] consumer domains draining
          per-shard SPSC rings into shard-replica validators; 1 = the
          serial (oracle) path, byte-identical to the seed. Pipelined
          runs must call {!Validator.drain_pipeline} (or
          {!Validator.flush}) before reading results *)
  election : Cluster.election_config option;
      (** when set, {!install} starts the cluster's deterministic
          master election ({!Cluster.enable_election}) and subscribes
          the replicator: a mid-run master crash re-attributes every
          undecided in-flight trigger of the failed node to its new
          master ({!Validator.reattribute}) and re-drives it there with
          the same taint, so validation continues across the leadership
          change instead of timing out. [None] = no election timer, no
          listener — churn-free runs stay byte-identical to the seed.
          Incompatible with [pipeline_jobs > 1] (the term lookup reads
          live cluster state) *)
}

type t

val install : Cluster.t -> config -> t
(** Interpose on the cluster. Install before {!Cluster.start} so that
    bootstrap triggers are validated too, or after for workload-only
    validation. *)

val validator : t -> Validator.t
(** The deployment's validator — verdicts and counters are read here. *)

val cluster : t -> Cluster.t
(** The cluster being interposed on. *)

val cfg : t -> config
(** The configuration {!install} was given. *)

val ack_peers : t -> int -> int list
(** Static peer set whose cache acks the validator expects for a given
    origin. *)

val rejoin_node : t -> node:int -> unit
(** Crash-and-rejoin recovery for a replica: clear its store partition,
    state-transfer its cache tables from the lowest-id healthy
    (alive, unpartitioned) peer via {!Jury_store.Fabric.resync},
    re-seed its node snapshot from that peer, invalidate its cached
    topology view, and mark it alive again in the cluster. Mastership
    is {e not} handed back — the node resumes as a secondary. Raises
    [Invalid_argument] when no healthy source exists. *)

(** {1 Overhead accounting} *)

val replication_bytes : t -> int
(** Bytes of replicated triggers sent to secondaries. *)

val validator_bytes : t -> int
(** Bytes of responses relayed to the validator. *)

val chatter_bytes : t -> int
(** Mastership-status chatter from secondaries to primaries. *)

val decap_samples_us : t -> float array
(** Per-replica decapsulation costs measured so far (Fig. 4i). *)

val replicated_trigger_count : t -> int
(** External triggers intercepted and replicated so far. *)

val reset_accounting : t -> unit
(** Zero the byte and trigger counters above (e.g. after warm-up). *)

(** {1 Channel health} *)

val channel_stats : t -> (string * Channel.stats) list
(** Per-link counters, replica links (["replica/i"]) first, then
    validator links (["validator/i"]). *)

val channel_totals : t -> Channel.stats
(** Sum over all links. *)
