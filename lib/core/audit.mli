(** Tamper-evident audit trail of validation evidence.

    JURY's lineage includes PeerReview and accountable virtual machines
    (§IX): systems that keep enough evidence to show {e why} a node was
    flagged. The validator decides and forgets; this log retains every
    response and verdict, hash-chained in arrival order, and answers the
    administrator's follow-up questions — what did controller 3 report
    for trigger τ, and what did everyone else say?

    Attach with {!attach} before running a workload; entries are
    bounded by [capacity] (oldest evicted, eviction breaks the chain's
    verifiability only for evicted prefixes). *)

type kind =
  | Evidence of Response.t
  | Verdict of Alarm.t

type entry = {
  seq : int;
  at : Jury_sim.Time.t;
  kind : kind;
  chain : string;
      (** hex digest over (previous chain, this entry) — any retroactive
          edit breaks every later link *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 100_000 entries. *)

val attach : t -> Validator.t -> unit
(** Record every delivered response and every verdict of the validator.
    (Installs itself alongside existing handlers — the validator's
    verdict handler is chained, not replaced.) *)

val record_response : t -> Jury_sim.Time.t -> Response.t -> unit
(** Append one piece of evidence manually (what {!attach} does for
    every delivery). *)

val record_verdict : t -> Alarm.t -> unit
(** Append one verdict manually. *)

val entries : t -> entry list
(** Oldest retained first. *)

val length : t -> int
(** Retained entries. *)

val evicted : t -> int
(** Entries discarded because the log hit its capacity. *)

val verify_chain : t -> bool
(** Recompute the hash chain over retained entries. *)

val for_taint : t -> Jury_controller.Types.Taint.t -> entry list
(** All evidence and the verdict for one trigger. *)

val by_controller : t -> int -> entry list
(** Evidence reported by (or verdicts suspecting) one controller. *)

val pp_entry : Format.formatter -> entry -> unit
(** One-line rendering of a single piece of evidence or verdict. *)
