open Jury_sim
module Types = Jury_controller.Types
module Cluster = Jury_controller.Cluster
module Controller = Jury_controller.Controller
module Pipeline = Jury_controller.Pipeline
module Fabric = Jury_store.Fabric
module Event = Jury_store.Event
module Of_message = Jury_openflow.Of_message
module Of_wire = Jury_openflow.Of_wire

type config = {
  k : int;
  timeout : Time.t;
  adaptive_timeout : bool;
  state_aware : bool;
  nondet_rule : bool;
  random_secondaries : bool;
  policies : Jury_policy.Engine.t;
  validator_latency : Time.t;
  validator_jitter_us : float;
  replication_latency : Time.t;
  replication_jitter_us : float;
  chatter_cost : Time.t;
  chatter_bytes : int;
  encapsulation : bool;
  channel : Channel.profile;
  retransmit : Validator.retransmit option;
  degraded_quorum : int option;
  shards : int;
  max_inflight : int option;
  batch_window : Time.t option;
  pipeline_jobs : int;
  election : Cluster.election_config option;
}

type node_module = {
  mutable snapshot : Snapshot.t;
  shadow : Pipeline.t;
}

(* What the replicator must remember to honour a retransmission request:
   enough to rebuild the replica copy it originally put on the wire. *)
type inflight = {
  inf_primary : int;
  inf_trigger : Types.trigger;
  inf_wire_size : int;
  inf_decap : bool;
}

type t = {
  cluster : Cluster.t;
  cfg : config;
  engine : Engine.t;
  validator : Validator.t;
  rng : Rng.t;
  nodes : node_module array;
  replica_links : Channel.t array;
      (* interception point → secondary i, one per node *)
  validator_links : Channel.t array;
      (* replica i → out-of-band validator *)
  inflight : (string, inflight) Hashtbl.t;
  reattributed : (string, int) Hashtbl.t;
      (* taint → current primary, for triggers whose attribution moved
         to a new master after a mid-run failover; empty (and never
         consulted to any effect) when election is off *)
  mutable batch_buf : Response.t list;  (* newest first *)
  mutable batch_flush : Engine.handle option;
      (* armed lazily on the first buffered response so an idle engine
         still drains; [None] whenever the buffer is empty *)
  mutable serial : int;
  mutable raw_serial : int;
  mutable replication_bytes : int;
  mutable validator_bytes : int;
  mutable chatter_bytes_total : int;
  mutable replicated_triggers : int;
  mutable decap_samples : float list;
}

let validator t = t.validator
let cluster t = t.cluster
let cfg t = t.cfg

let ack_peers t origin =
  let n = Cluster.nodes t.cluster in
  let k = min t.cfg.k (n - 1) in
  List.init k (fun i -> (origin + i + 1) mod n)

(* Bytes a response adds to JURY's own out-of-band traffic. Cache
   updates cost nothing here: the validator hosts a cache instance and
   sees them through the data platform's own replication ("the k+1
   cache updates ... require no explicit propagation", SIV-C) — those
   bytes are part of the store's accounting. Responses carry compact
   digests, not full payloads. *)
let response_wire_size (r : Response.t) =
  32
  +
  match r.body with
  | Response.Execution { actions; _ } -> 16 + (20 * List.length actions)
  | Response.Cache_update _ -> 0
  | Response.Network_write _ -> 56
  | Response.Write_failure { reason; _ } -> String.length reason

let trace_enabled t = Jury_obs.Trace.enabled (Engine.trace t.engine)

let trace_channel_event t ~taint ~phase ~node ~link event =
  if trace_enabled t then
    Jury_obs.Trace.point (Engine.trace t.engine)
      ~t_ns:(Engine.now_ns t.engine)
      ~taint:(Types.Taint.to_string taint) ~phase ~node
      [ ("channel", Channel.name link); ("event", event) ]

(* A response has come off its out-of-band link. Per-event mode hands
   it straight to the validator (the seed's path, byte-identical);
   batched mode buffers it and flushes the accumulated tick as one
   per-shard batch per [batch_window]. *)
let ingest t (r : Response.t) =
  match t.cfg.batch_window with
  | None -> Validator.deliver t.validator r
  | Some window ->
      t.batch_buf <- r :: t.batch_buf;
      if t.batch_flush = None then
        t.batch_flush <-
          Some
            (Engine.schedule t.engine ~after:window (fun () ->
                 t.batch_flush <- None;
                 let batch = List.rev t.batch_buf in
                 t.batch_buf <- [];
                 Validator.deliver_batch t.validator batch))

(* A response delivery is confined to its trigger's validation entry —
   except when validator-wide state couples triggers: the
   adaptive-timeout estimator (every delivery feeds it) or admission
   epochs ([max_inflight]); those force opaque. *)
let response_footprint t (r : Response.t) =
  if t.cfg.adaptive_timeout || t.cfg.max_inflight <> None then
    Footprint.opaque
  else
    Footprint.touches
      [ Footprint.taint (Types.Taint.to_string r.Response.taint) ]

let send_to_validator t ~delay (r : Response.t) =
  t.validator_bytes <- t.validator_bytes + response_wire_size r;
  let link = t.validator_links.(r.Response.controller) in
  match
    Channel.send link
      ~footprint:(response_footprint t r)
      ~delay
      (fun () -> ingest t r)
  with
  | `Delivered -> ()
  | `Dropped ->
      trace_channel_event t ~taint:r.Response.taint
        ~phase:Jury_obs.Trace.Validate ~node:r.Response.controller ~link "drop"
  | `Duplicated ->
      trace_channel_event t ~taint:r.Response.taint
        ~phase:Jury_obs.Trace.Validate ~node:r.Response.controller ~link
        "duplicate"

(* Zero jitter must draw nothing: a deterministic-latency deployment
   (Jury_config ~deterministic_latencies) leaves the replicator's RNG
   stream untouched so equal-timestamp events cannot interfere through
   it — the schedule explorer's dependence relation assumes as much. *)
let jittered t base jitter_us =
  if jitter_us <= 0. then base
  else Time.add base (Time.of_float_us (Rng.exponential t.rng jitter_us))

let validator_link_delay t =
  jittered t t.cfg.validator_latency t.cfg.validator_jitter_us

let make_response t ~node ~taint body =
  { Response.controller = node;
    taint;
    snapshot = t.nodes.(node).snapshot;
    sent_at = Engine.now t.engine;
    term = Cluster.current_term t.cluster;
    body }

(* --- Trace emission: the replicator is where a trigger's causal tree
   is rooted and fanned out, so it owns the root/replicate spans. --- *)

let trace_root t ~taint ~node ~channel trigger_name =
  if trace_enabled t then
    ignore
      (Jury_obs.Trace.open_root (Engine.trace t.engine)
         ~t_ns:(Engine.now_ns t.engine)
         ~taint:(Types.Taint.to_string taint) ~node
         [ ("trigger", trigger_name);
           ("channel", channel);
           ("primary", string_of_int node) ])

let trace_replica_span t ~taint ~secondary ~wire_size =
  if trace_enabled t then
    Jury_obs.Trace.open_child (Engine.trace t.engine)
      ~t_ns:(Engine.now_ns t.engine)
      ~taint:(Types.Taint.to_string taint)
      ~phase:Jury_obs.Trace.Replicate ~node:secondary
      [ ("wire_bytes", string_of_int wire_size) ]
  else None

let trace_close_span t span attrs =
  match span with
  | None -> ()
  | Some span ->
      Jury_obs.Trace.close_span (Engine.trace t.engine)
        ~t_ns:(Engine.now_ns t.engine) span attrs

let trace_net_write t ~taint ~node ~dpid =
  if trace_enabled t then
    Jury_obs.Trace.point (Engine.trace t.engine)
      ~t_ns:(Engine.now_ns t.engine)
      ~taint:(Types.Taint.to_string taint)
      ~phase:Jury_obs.Trace.Net_write ~node
      [ ("dpid", Jury_openflow.Of_types.Dpid.to_string dpid);
        ("msg", "FLOW_MOD") ]

(* --- Per-node controller module: cache hooks + egress interception --- *)

let install_node_module t node =
  let ctrl = Cluster.controller t.cluster node in
  (* Cache manager hook: maintain the node snapshot, relay local writes
     and ack the peers we are responsible for. *)
  Fabric.subscribe (Cluster.fabric t.cluster) ~node (fun ~local ev ->
      t.nodes.(node).snapshot <- Snapshot.observe t.nodes.(node).snapshot ev;
      let relay =
        if local then ev.Event.origin = node
        else List.mem node (ack_peers t ev.Event.origin)
      in
      match (relay, ev.Event.taint) with
      | true, Some taint_str -> (
          match Types.Taint.of_string taint_str with
          | Some taint ->
              send_to_validator t ~delay:(validator_link_delay t)
                (make_response t ~node ~taint (Response.Cache_update ev))
          | None -> ())
      | _ -> ());
  (* Controller module: executions, egress interception, write
     failures. *)
  Controller.set_observer ctrl
    { Controller.on_response =
        (fun taint trigger actions ->
          ignore trigger;
          match taint with
          | None -> ()
          | Some taint ->
              let is_mine =
                (* A failover may have moved the trigger's attribution
                   to a new master; the re-attribution table wins over
                   the primary minted into the taint. *)
                match
                  Hashtbl.find_opt t.reattributed
                    (Types.Taint.to_string taint)
                with
                | Some p -> p = node
                | None -> (
                    match Types.Taint.primary_of taint with
                    | Some p -> p = node
                    | None -> true (* internal: the origin reports *))
              in
              if is_mine then
                match Controller.sample_response_fate ctrl with
                | `Omit -> ()
                | `Respond latency ->
                    send_to_validator t ~delay:latency
                      (make_response t ~node ~taint
                         (Response.Execution { role = `Primary; actions })));
      on_applied =
        (fun taint action ->
          match action with
          | Types.Network_send { dpid; payload = Of_message.Flow_mod flow } ->
              (* OVS-level egress interception: reliable, fixed-latency
                 relay regardless of controller health. A FLOW_MOD with
                 no taint means the controller bypassed its processing
                 pipeline entirely (§II-A.3: network side effect without
                 a cache write is itself suspect) — the interceptor
                 mints a taint so the validator gets its own record. *)
              let taint =
                match taint with
                | Some taint -> taint
                | None ->
                    t.raw_serial <- t.raw_serial + 1;
                    Types.Taint.internal_trigger ~origin:node
                      ~seq:(1_000_000 + t.raw_serial)
              in
              trace_net_write t ~taint ~node ~dpid;
              send_to_validator t ~delay:(validator_link_delay t)
                (make_response t ~node ~taint
                   (Response.Network_write { dpid; flow }))
          | _ -> ());
      on_write_failed =
        (fun taint action reason ->
          match taint with
          | None -> ()
          | Some taint ->
              send_to_validator t ~delay:(validator_link_delay t)
                (make_response t ~node ~taint
                   (Response.Write_failure { action; reason }))) }

(* --- Replicated execution at a secondary --- *)

let run_shadow t ~secondary ~primary ~taint trigger =
  let ctrl = Cluster.controller t.cluster secondary in
  let span =
    if trace_enabled t then
      Jury_obs.Trace.open_child (Engine.trace t.engine)
        ~t_ns:(Engine.now_ns t.engine)
        ~taint:(Types.Taint.to_string taint)
        ~phase:Jury_obs.Trace.Pipeline_service ~node:secondary
        [ ("role", "secondary"); ("as", string_of_int primary) ]
    else None
  in
  Pipeline.submit ?span t.nodes.(secondary).shadow (fun () ->
      (* Mastership-status chatter from the secondary loads the
         primary's pipeline (the <11% of Fig. 4h). *)
      Pipeline.add_load
        (Controller.pipeline (Cluster.controller t.cluster primary))
        t.cfg.chatter_cost;
      t.chatter_bytes_total <- t.chatter_bytes_total + t.cfg.chatter_bytes;
      let actions = Controller.shadow_execute ctrl ~as_id:primary trigger in
      (* Standalone (Ryu-style) instances share no store: validation
         replicates the *action stream* instead. Each secondary applies
         its own planned cache writes, untainted, to its own local
         tables — so its view keeps tracking the stream it validates —
         while network sends stay simulated (only the primary touches
         the data plane). *)
      if not (Cluster.profile t.cluster).Jury_controller.Profile.clustered
      then
        List.iter
          (fun a ->
            match a with
            | Types.Cache_write { cache; op; key; value } ->
                ignore
                  (Fabric.write
                     (Cluster.fabric t.cluster)
                     ~node:secondary ~cache op ~key ~value)
            | Types.Network_send _ -> ())
          actions;
      match Controller.sample_response_fate ctrl with
      | `Omit -> ()
      | `Respond latency ->
          send_to_validator t ~delay:latency
            (make_response t ~node:secondary ~taint
               (Response.Execution { role = `Secondary; actions })))

let pick_secondaries t ~primary =
  let n = Cluster.nodes t.cluster in
  let k = min t.cfg.k (n - 1) in
  if t.cfg.random_secondaries then
    let others = List.filter (fun i -> i <> primary) (List.init n Fun.id) in
    Rng.sample_without_replacement t.rng k others
  else ack_peers t primary

(* One replica copy on the wire towards [secondary]. The span close is
   idempotent: a duplicated delivery runs the callback twice (and the
   shadow executes twice — the validator deduplicates), but the causal
   span closes once, at the first arrival. *)
let send_replica t ~secondary ~primary ~taint ~(decap : bool) ~rspan trigger =
  let delay =
    jittered t t.cfg.replication_latency t.cfg.replication_jitter_us
  in
  (* Arrival submits to the secondary's shadow pipeline and (chatter)
     loads the primary's; with decapsulation it also draws the
     replicator's shared RNG, which only opaque declares honestly. *)
  let footprint =
    if decap then Footprint.opaque
    else
      Footprint.touches
        [ Footprint.controller secondary; Footprint.controller primary ]
  in
  let closed = ref false in
  let close_span attrs =
    if not !closed then begin
      closed := true;
      trace_close_span t rspan attrs
    end
  in
  let link = t.replica_links.(secondary) in
  let status =
    Channel.send link ~footprint ~delay (fun () ->
        if decap then begin
          (* Strip the doubly-encapsulated PACKET_IN (Fig. 4i). *)
          let ctrl = Cluster.controller t.cluster secondary in
          let profile = Controller.profile ctrl in
          let cost_us =
            Rng.lognormal t.rng
              ~mu:
                (log
                   (Float.max 1.
                      profile
                        .Jury_controller.Profile.decapsulation_cost_median_us))
              ~sigma:0.45
          in
          t.decap_samples <- cost_us :: t.decap_samples;
          ignore
            (Engine.schedule t.engine ~after:(Time.of_float_us cost_us)
               (fun () ->
                 close_span [ ("decap_us", Printf.sprintf "%.1f" cost_us) ];
                 run_shadow t ~secondary ~primary ~taint trigger))
        end
        else begin
          close_span [];
          run_shadow t ~secondary ~primary ~taint trigger
        end)
  in
  match status with
  | `Delivered -> ()
  | `Dropped ->
      close_span [ ("dropped", "true") ];
      trace_channel_event t ~taint ~phase:Jury_obs.Trace.Replicate
        ~node:secondary ~link "drop"
  | `Duplicated ->
      trace_channel_event t ~taint ~phase:Jury_obs.Trace.Replicate
        ~node:secondary ~link "duplicate"

let replicate_trigger t ~primary ~taint ~wire_size
    ~(decap : bool) trigger =
  let secondaries = pick_secondaries t ~primary in
  Validator.register_external t.validator ~taint ~at:(Engine.now t.engine)
    ~primary ~secondaries;
  t.replicated_triggers <- t.replicated_triggers + 1;
  (* The in-flight store also backs failover re-attribution, so it is
     kept whenever either consumer exists. *)
  if t.cfg.retransmit <> None || t.cfg.election <> None then
    Hashtbl.replace t.inflight
      (Types.Taint.to_string taint)
      { inf_primary = primary;
        inf_trigger = trigger;
        inf_wire_size = wire_size;
        inf_decap = decap };
  List.iter
    (fun secondary ->
      t.replication_bytes <- t.replication_bytes + wire_size;
      let rspan = trace_replica_span t ~taint ~secondary ~wire_size in
      send_replica t ~secondary ~primary ~taint ~decap ~rspan trigger)
    secondaries

(* The validator noticed a straggling secondary: put a fresh replica
   copy of the stored trigger on the (still lossy) wire. *)
let handle_retransmit t taint ~secondary =
  match Hashtbl.find_opt t.inflight (Types.Taint.to_string taint) with
  | None -> ()
  | Some inf ->
      t.replication_bytes <- t.replication_bytes + inf.inf_wire_size;
      Channel.note_retransmit t.replica_links.(secondary);
      trace_channel_event t ~taint ~phase:Jury_obs.Trace.Replicate
        ~node:secondary ~link:t.replica_links.(secondary) "retransmit";
      send_replica t ~secondary ~primary:inf.inf_primary ~taint
        ~decap:inf.inf_decap ~rspan:None inf.inf_trigger

(* A leadership change: every undecided in-flight trigger whose primary
   was the failed node is re-attributed to its new master (the switch's
   post-failover master for southbound triggers, the new leader for
   northbound ones) and re-driven there with the SAME taint after one
   replication-channel hop — so the validator judges the new master's
   responses under the new term instead of timing the trigger out
   against the dead node. *)
let handle_failover t ~term ~failed ~leader =
  let stale =
    Hashtbl.fold
      (fun key inf acc ->
        if inf.inf_primary = failed then (key, inf) :: acc else acc)
      t.inflight []
    (* deterministic re-drive order, independent of hash layout *)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (key, inf) ->
      let new_primary =
        match inf.inf_trigger with
        | Types.Packet_in (dpid, _)
        | Types.Port_status (dpid, _)
        | Types.Switch_join (dpid, _)
        | Types.Flow_removed (dpid, _) ->
            Cluster.master_of t.cluster dpid
        | Types.Rest _ | Types.Internal _ -> leader
      in
      if new_primary <> failed then
        match Types.Taint.of_string key with
        | None -> ()
        | Some taint ->
            if
              Validator.reattribute t.validator ~taint ~primary:new_primary
                ~term
            then begin
              Hashtbl.replace t.reattributed key new_primary;
              Hashtbl.replace t.inflight key
                { inf with inf_primary = new_primary };
              if trace_enabled t then
                Jury_obs.Trace.point (Engine.trace t.engine)
                  ~t_ns:(Engine.now_ns t.engine) ~taint:key
                  ~phase:Jury_obs.Trace.Replicate ~node:new_primary
                  [ ("event", "re-drive");
                    ("term", string_of_int term);
                    ("failed", string_of_int failed) ];
              ignore
                (Engine.schedule t.engine
                   ~footprint:
                     (Footprint.touches [ Footprint.controller new_primary ])
                   ~after:t.cfg.replication_latency
                   (fun () ->
                     Controller.submit
                       (Cluster.controller t.cluster new_primary)
                       ~taint inf.inf_trigger))
            end)
    stale

let mint_taint t ~primary =
  t.serial <- t.serial + 1;
  Types.Taint.external_trigger ~primary ~serial:t.serial

(* --- Install --- *)

let install cluster cfg =
  let engine = Cluster.engine cluster in
  let n = Cluster.nodes cluster in
  let profile = Cluster.profile cluster in
  let clustered = profile.Jury_controller.Profile.clustered in
  (* Built as a record literal: the smart constructor is the deprecated
     public entry point, and [cfg.shards] is already normalised. *)
  let validator_cfg =
    { Validator.k = cfg.k;
      timeout = cfg.timeout;
      adaptive_timeout = cfg.adaptive_timeout;
      min_timeout = Time.ms 10;
      (* Standalone instances never share state, so their snapshots can
         never be equal across nodes (each digests its own origin/seq
         history): state-aware consensus would excuse everything. The
         standalone mode is therefore always state-blind — the
         cross-instance response vote carries the verdict. *)
      state_aware = cfg.state_aware && clustered;
      nondet_rule = cfg.nondet_rule;
      policies = cfg.policies;
      master_lookup = (fun dpid -> Some (Cluster.master_of cluster dpid));
      term_lookup = (fun () -> Cluster.current_term cluster);
      ack_peers_of = (fun _ -> []);
      retransmit = cfg.retransmit;
      degraded_quorum = cfg.degraded_quorum;
      shards = cfg.shards;
      max_inflight = cfg.max_inflight }
  in
  (* RNG-draw order is load-bearing: the shadow pipelines split the
     engine RNG per node, and the deployment's own split must come
     after all of them (and before the validator) or every seeded
     run's event schedule shifts. Channels draw nothing at creation,
     so they may be built once [rng] exists. *)
  let nodes =
    Array.init n (fun node ->
        { snapshot = Snapshot.pristine;
          shadow =
            (* Replicated execution runs on the controller's spare
               cores (the paper's servers have 12); modelled as a
               4-way-parallel validation pool, i.e. a single server
               at a quarter of the pipeline's service time. Shadow
               completions execute against this replica's state (the
               chatter load on the trigger's primary shifts timings
               only). *)
            Pipeline.create engine
              ~footprint:(Footprint.touches [ Footprint.controller node ])
              (Pipeline.config
                 ~service_sigma:profile.Jury_controller.Profile.service_sigma
                 ~base_service:
                   (Time.div profile.Jury_controller.Profile.base_service 4)
                 ~overload_backlog:(Time.sec 10) ()) })
  in
  let rng = Rng.split (Engine.rng engine) in
  let t =
    { cluster;
      cfg;
      engine;
      validator = Validator.create engine validator_cfg;
      rng;
      replica_links =
        Array.init n (fun i ->
            Channel.create engine ~rng
              ~name:(Printf.sprintf "replica/%d" i)
              cfg.channel);
      validator_links =
        Array.init n (fun i ->
            Channel.create engine ~rng
              ~name:(Printf.sprintf "validator/%d" i)
              cfg.channel);
      inflight = Hashtbl.create 256;
      reattributed = Hashtbl.create 16;
      batch_buf = [];
      batch_flush = None;
      nodes;
      serial = 0;
      raw_serial = 0;
      replication_bytes = 0;
      validator_bytes = 0;
      chatter_bytes_total = 0;
      replicated_triggers = 0;
      decap_samples = [] }
  in
  (* ack_peers_of closes over t, so rebuild the validator config now
     that t exists. Standalone fabrics never replicate, so no peer ack
     can ever arrive — completeness would deadlock waiting for them;
     the trivial ack set stays. *)
  let validator_cfg =
    if clustered then
      { validator_cfg with Validator.ack_peers_of = (fun o -> ack_peers t o) }
    else validator_cfg
  in
  let validator = Validator.create engine validator_cfg in
  let t = { t with validator } in
  (* Staged pipeline: only when the run can be replayed exactly on
     detached shard replicas. [config] already rejects the feature
     conflicts, but literal-record constructors bypass it, and the
     trace sink is only known now — so gate again here; an ineligible
     config silently stays on the inline (oracle) path. [ack_peers]
     reads nothing but the static cluster size, so sharing the closure
     with replicas is domain-safe. *)
  if
    cfg.pipeline_jobs > 1
    && cfg.batch_window <> None
    && cfg.retransmit = None
    && (not cfg.adaptive_timeout)
    && cfg.max_inflight = None
    && cfg.election = None
    && Jury_policy.Engine.rule_count cfg.policies = 0
    && not (trace_enabled t)
  then
    Stage.attach ~pool:(Jury_par.Pool.default ())
      ~jobs:cfg.pipeline_jobs validator_cfg t.validator;
  (* The retransmission loop only exists when asked for: registering the
     handler and verdict observer is gated so a default configuration
     keeps the validator byte-for-byte on the seed's event schedule. *)
  if cfg.retransmit <> None then
    Validator.set_retransmit_handler t.validator (fun taint ~secondary ->
        handle_retransmit t taint ~secondary);
  if cfg.retransmit <> None || cfg.election <> None then
    Validator.on_verdict t.validator (fun alarm ->
        let key = Types.Taint.to_string alarm.Alarm.taint in
        Hashtbl.remove t.inflight key;
        Hashtbl.remove t.reattributed key);
  for node = 0 to n - 1 do
    install_node_module t node
  done;
  (* The replicator: southbound interception. *)
  Cluster.set_southbound_hook cluster (fun ~dpid ~master ~msg ~forward ->
      match Cluster.trigger_of_message dpid msg with
      | None -> forward ()
      | Some trigger ->
          let taint = mint_taint t ~primary:master in
          trace_root t ~taint ~node:master ~channel:"southbound"
            (Types.trigger_name trigger);
          forward ~taint ();
          let wire_size =
            Of_wire.encoded_size msg
            + (if cfg.encapsulation then Encap.overhead_bytes msg else 0)
          in
          replicate_trigger t ~primary:master ~taint ~wire_size
            ~decap:cfg.encapsulation trigger);
  (* Northbound interception. *)
  Cluster.set_northbound_hook cluster (fun ~node ~request ~forward ->
      let taint = mint_taint t ~primary:node in
      let trigger = Types.Rest request in
      trace_root t ~taint ~node ~channel:"northbound"
        (Types.trigger_name trigger);
      forward ~taint ();
      (* REST requests are small; 256 bytes covers headers + body. *)
      replicate_trigger t ~primary:node ~taint ~wire_size:256 ~decap:false
        trigger);
  (* Dynamic leadership: start the election timer and subscribe the
     replicator so mid-run master crashes re-attribute in-flight
     triggers instead of timing them out. Strictly opt-in — with
     [election = None] nothing here runs and churn-free deployments
     stay byte-identical to the seed. *)
  (match cfg.election with
  | None -> ()
  | Some ec ->
      Cluster.enable_election cluster ec;
      Cluster.on_leadership_change cluster (fun ~term ~failed ~leader ->
          handle_failover t ~term ~failed ~leader));
  t

(* Crash-and-rejoin recovery: the node's store view is replaced by a
   state transfer from a healthy peer (no events, so the validator sees
   no traffic it would have to account for), its cached topology view is
   invalidated so reads rebuild from the fresh tables, and its node
   snapshot is re-seeded from the source's — the snapshot digests the
   store history the node now holds, not the events it missed. *)
let rejoin_node t ~node =
  let n = Cluster.nodes t.cluster in
  if node < 0 || node >= n then invalid_arg "Deployment.rejoin_node: bad node";
  let fabric = Cluster.fabric t.cluster in
  let alive = Cluster.alive_nodes t.cluster in
  let src =
    List.find_opt
      (fun i ->
        i <> node && List.mem i alive
        && not (Fabric.is_partitioned fabric ~node:i))
      (List.init n Fun.id)
  in
  match src with
  | None -> invalid_arg "Deployment.rejoin_node: no healthy source"
  | Some src ->
      Fabric.set_partitioned fabric ~node false;
      Fabric.resync fabric ~from:src ~node;
      t.nodes.(node).snapshot <- t.nodes.(src).snapshot;
      Controller.invalidate_view (Cluster.controller t.cluster node);
      Cluster.rejoin t.cluster ~node

let replication_bytes t = t.replication_bytes
let validator_bytes t = t.validator_bytes
let chatter_bytes t = t.chatter_bytes_total
let decap_samples_us t = Array.of_list (List.rev t.decap_samples)
let replicated_trigger_count t = t.replicated_triggers

let channel_stats t =
  let of_links links =
    Array.to_list
      (Array.map (fun c -> (Channel.name c, Channel.stats c)) links)
  in
  of_links t.replica_links @ of_links t.validator_links

let channel_totals t =
  Channel.total (List.map snd (channel_stats t))

let reset_accounting t =
  t.replication_bytes <- 0;
  t.validator_bytes <- 0;
  t.chatter_bytes_total <- 0;
  t.replicated_triggers <- 0;
  t.decap_samples <- []
