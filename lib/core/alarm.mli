(** Validation verdicts and alarms.

    Every validated trigger yields a {!verdict}; a non-[Ok] verdict
    raises an alarm carrying the action attribution (§V): offending
    controller(s), the trigger, and what went wrong. *)

module Types = Jury_controller.Types

type fault =
  | Consensus_mismatch
      (** the primary's response disagrees with the majority of
          replicas holding an equivalent network view (T1) *)
  | Response_timeout
      (** the primary's response (or its cache event) never arrived
          within the validation timeout — crash, omission, timing
          fault, or a locked cache *)
  | Cache_without_network
      (** a FLOWSDB update has no matching FLOW_MOD on the wire — the
          "ODL FLOW_MOD drops" class of T2 faults *)
  | Network_without_cache
      (** a FLOW_MOD was sent with no backing cache entry — a
          misbehaving controller writing straight to the network *)
  | Cache_network_mismatch
      (** cache entry and wire FLOW_MOD both exist but differ — the
          "undesirable FLOW_MOD" T2 fault *)
  | Policy_violation of string  (** violated rule name (T3) *)

type verdict =
  | Ok_valid
  | Ok_non_deterministic
      (** all replica responses distinct — §IV-C B labels this
          non-faulty *)
  | Ok_unverifiable
      (** no replica shared the primary's state snapshot; under
          state-aware consensus this is excused rather than flagged *)
  | Ok_degraded
      (** decided with a reduced quorum: stragglers (or their cache
          events) missed the deadline on a lossy channel, but enough
          equivalent-view responses agreed to validate the trigger
          anyway — flagged so operators can audit channel health *)
  | Overload
      (** force-expired before a verdict could be reached: the
          validator hit its [max_inflight] high-water mark and retired
          the trigger's whole epoch to bound memory — neither exonerated
          nor blamed, but counted so operators see the saturation *)
  | Faulty of fault list

type t = {
  taint : Types.Taint.t;
  trigger_at : Jury_sim.Time.t;
  decided_at : Jury_sim.Time.t;
  primary : int option;
  suspects : int list;
  term : int;
      (** leadership term the trigger was decided under ([0] when
          election is disabled; bumped when a failover re-attributed
          the trigger mid-flight) *)
  verdict : verdict;
  detail : string;
}

val detection_time : t -> Jury_sim.Time.t
(** [decided_at - trigger_at]. *)

val is_fault : t -> bool
(** Whether the verdict is [Faulty _]. *)

val fault_name : fault -> string
(** Short stable label for one fault kind, e.g. ["missing-write"]. *)

val verdict_name : verdict -> string
(** Short stable label: ["ok"], ["ok-nondet"], ["ok-unverifiable"],
    ["ok-degraded"], ["overload"], or the ["+"]-joined fault names of a
    [Faulty] verdict. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: verdict, taint, times, suspects. *)
