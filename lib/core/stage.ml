(* Staged validation pipeline: capture/channel stays on the main
   domain (it owns the simulation engine), validation runs on shard
   replicas owned by consumer domains, connected by one bounded SPSC
   ring per shard.

   The facade validator the deployment created keeps receiving
   registrations and deliveries, but with hooks installed they are
   turned into queue items instead of touching its state. Each shard's
   items drain, in push order, into a single-shard replica validator
   driven by a private engine whose clock replays the facade engine's
   timestamps — so timers fire at the same simulated instants they
   would inline, and the replica walks the exact state machine the
   serial validator would have walked for that shard's taints. At
   flush the producer sends end-of-stream, joins the consumers and
   merges every replica back into the facade, which from then on
   answers result queries as if it had done the work itself.

   Correctness leans on the eligibility gate in {!Deployment.install}:
   no retransmissions, no adaptive timeout, no inflight cap, no policy
   rules and no trace. Under those gates a replica never calls back
   into main-domain state (the policy engine's [master_lookup] is the
   one cross-domain read, and {!Validator.run_policy} short-circuits
   it when no rules are installed), never feeds anything back into the
   channel, and never needs another shard's pending table. The only
   cross-shard coupling left is the FLOWSDB flow mirror, which
   [Mirror] items replicate into every shard in the serial shard-index
   order (see [push_batch]). *)

open Jury_sim
module Pool = Jury_par.Pool
module Spsc = Jury_par.Spsc
module Types = Jury_controller.Types
module Event = Jury_store.Event
module Names = Jury_store.Cache_names

type item =
  | Register of {
      taint : Types.Taint.t;
      at : Time.t;
      primary : int;
      secondaries : int list;
    }
  | Batch of { at : Time.t; responses : Response.t list }
      (* one shard's slice of a tick, arrival order preserved *)
  | Mirror of { at : Time.t; responses : Response.t list }
      (* other shards' FLOWSDB writes from the same tick *)
  | Eos of Time.t
      (* advance to drain time and stop — no forced decisions; the
         facade's own [flush] force-decides after the merge if asked *)

(* Advance a replica engine to simulated time [at], firing every timer
   due on the way. [Engine.run ~until] does not move the clock past
   the last event when the queue drains, so pin the target time with a
   no-op event: it carries the highest sequence number at [at], hence
   runs after every timer due at exactly [at] — the same order the
   facade engine gives timers relative to the batch-flush callback
   (armed a full θτ earlier, the timers always hold lower sequence
   numbers). *)
let advance engine ~at =
  if Time.compare at (Engine.now engine) > 0 then begin
    ignore (Engine.schedule_at engine ~at (fun () -> ()));
    Engine.run engine ~until:at
  end

let apply engine replica = function
  | Register { taint; at; primary; secondaries } ->
      advance engine ~at;
      Validator.register_external replica ~taint ~at ~primary ~secondaries
  | Batch { at; responses } ->
      advance engine ~at;
      Validator.deliver_batch replica responses
  | Mirror { at; responses } ->
      advance engine ~at;
      List.iter (Validator.observe_mirror replica) responses
  | Eos at ->
      (* Timers due by the drain instant fire (deciding their triggers
         exactly as the facade engine would have); everything still
         pending stays pending and migrates back in the merge. *)
      advance engine ~at

(* One consumer drains the queues of the shards it owns round-robin,
   so [jobs - 1] consumers cover any shard count. Each queue is SPSC:
   the main domain is the only producer and exactly one consumer owns
   each shard. *)
let consume ~engines ~replicas ~queues ~owned () =
  let live = Array.of_list owned in
  let finished = Array.map (fun _ -> false) live in
  let remaining = ref (Array.length live) in
  while !remaining > 0 do
    let progressed = ref false in
    Array.iteri
      (fun j i ->
        if not finished.(j) then
          match Spsc.try_pop queues.(i) with
          | None -> ()
          | Some item ->
              progressed := true;
              apply engines.(i) replicas.(i) item;
              (match item with
              | Eos _ ->
                  finished.(j) <- true;
                  decr remaining
              | Register _ | Batch _ | Mirror _ -> ()))
      live;
    if not !progressed then Domain.cpu_relax ()
  done

let is_flowsdb_write (r : Response.t) =
  match r.Response.body with
  | Response.Cache_update ev -> ev.Event.cache = Names.flowsdb
  | _ -> false

let attach ?(queue_capacity = 1024) ~pool ~jobs cfg facade =
  let shards = Validator.shard_count facade in
  let queues =
    Array.init shards (fun _ -> Spsc.create ~capacity:queue_capacity)
  in
  (* Replica engines replay facade timestamps; they draw no randomness
     (the validator is RNG-free), so the seed is irrelevant. *)
  let engines = Array.init shards (fun _ -> Engine.create ()) in
  let replicas =
    Array.init shards (fun i ->
        Validator.create engines.(i) { cfg with Validator.shards = 1 })
  in
  let consumers = max 1 (min (jobs - 1) shards) in
  let owned c =
    List.filter (fun i -> i mod consumers = c) (List.init shards Fun.id)
  in
  let tickets =
    Array.init consumers (fun c ->
        Pool.async pool (consume ~engines ~replicas ~queues ~owned:(owned c)))
  in
  let shard_of_taint taint =
    Validator.shard_of_key facade (Types.Taint.to_string taint)
  in
  let pl_register ~taint ~at ~primary ~secondaries =
    Spsc.push queues.(shard_of_taint taint)
      (Register { taint; at; primary; secondaries })
  in
  let pl_batch ~at rs =
    (* Split the tick like the inline [deliver_batch] would: per-shard
       buckets in arrival order. Every shard additionally receives the
       other shards' FLOWSDB writes as mirror traffic, ordered so its
       replica sees writes from lower-indexed shards before its own
       bucket and higher-indexed ones after — exactly the global write
       order of the serial validator, which processes buckets in shard
       index order at a single instant. *)
    let buckets = Array.make shards [] (* reversed *) in
    let mirrors = Array.make shards [] (* reversed *) in
    List.iter
      (fun (r : Response.t) ->
        let i = Validator.shard_of_key facade (Response.taint_key r) in
        buckets.(i) <- r :: buckets.(i);
        if is_flowsdb_write r then mirrors.(i) <- r :: mirrors.(i))
      rs;
    let mirror_slice lo hi =
      let acc = ref [] in
      for j = hi downto lo do
        if j >= 0 && j < shards then acc := List.rev_append mirrors.(j) !acc
      done;
      List.rev !acc
    in
    for i = 0 to shards - 1 do
      let pre = mirror_slice 0 (i - 1) in
      let own = List.rev buckets.(i) in
      let post = mirror_slice (i + 1) (shards - 1) in
      if pre <> [] then Spsc.push queues.(i) (Mirror { at; responses = pre });
      if own <> [] then Spsc.push queues.(i) (Batch { at; responses = own });
      if post <> [] then Spsc.push queues.(i) (Mirror { at; responses = post })
    done
  in
  let pl_drain ~at =
    Array.iter
      (fun q ->
        Spsc.push q (Eos at);
        Spsc.close q)
      queues;
    Array.iter Pool.await tickets;
    Array.iteri
      (fun i replica -> Validator.absorb_pipeline_shard facade ~shard:i replica)
      replicas;
    Validator.finalize_pipeline_merge facade
  in
  Validator.set_pipeline_hooks facade { pl_register; pl_batch; pl_drain }
