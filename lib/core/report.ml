open Jury_sim

type suspect_row = {
  controller : int;
  alarm_count : int;
  fault_kinds : (string * int) list;
  first_at : Time.t;
  last_at : Time.t;
}

type t = {
  decided : int;
  ok : int;
  non_deterministic : int;
  unverifiable : int;
  degraded : int;
  overload : int;
  faulty : int;
  suspects : suspect_row list;
  detection : Jury_stats.Summary.t option;
}

let bump tbl key f init =
  match Hashtbl.find_opt tbl key with
  | Some v -> Hashtbl.replace tbl key (f v)
  | None -> Hashtbl.replace tbl key (f init)

let of_verdicts ~decided ~ok ~non_deterministic ~unverifiable ~degraded
    ~overload verdicts =
  let faulty_alarms = List.filter Alarm.is_fault verdicts in
  let per_suspect = Hashtbl.create 8 in
  List.iter
    (fun (a : Alarm.t) ->
      let kinds =
        match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.map Alarm.fault_name fs
        | _ -> []
      in
      List.iter
        (fun suspect ->
          bump per_suspect suspect
            (fun (count, kind_tbl, first, last) ->
              List.iter
                (fun k -> bump kind_tbl k (fun n -> n + 1) 0)
                kinds;
              ( count + 1,
                kind_tbl,
                Time.min first a.Alarm.decided_at,
                Time.max last a.Alarm.decided_at ))
            (0, Hashtbl.create 4, a.Alarm.decided_at, a.Alarm.decided_at))
        a.Alarm.suspects)
    faulty_alarms;
  let suspects =
    Hashtbl.fold
      (fun controller (alarm_count, kind_tbl, first_at, last_at) acc ->
        let fault_kinds =
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) kind_tbl []
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        in
        { controller; alarm_count; fault_kinds; first_at; last_at } :: acc)
      per_suspect []
    |> List.sort (fun a b -> compare b.alarm_count a.alarm_count)
  in
  let detection =
    match verdicts with
    | [] -> None
    | vs ->
        Some
          (Jury_stats.Summary.of_list
             (List.map
                (fun a -> Time.to_float_ms (Alarm.detection_time a))
                vs))
  in
  { decided;
    ok;
    non_deterministic;
    unverifiable;
    degraded;
    overload;
    faulty = List.length faulty_alarms;
    suspects;
    detection }

let of_validator v =
  let verdicts = Validator.verdicts v in
  let count pred = List.length (List.filter pred verdicts) in
  of_verdicts
    ~decided:(Validator.decided_count v)
    ~ok:(count (fun a -> a.Alarm.verdict = Alarm.Ok_valid))
    ~non_deterministic:
      (count (fun a -> a.Alarm.verdict = Alarm.Ok_non_deterministic))
    ~unverifiable:(Validator.unverifiable_count v)
    ~degraded:(Validator.degraded_count v)
    ~overload:(Validator.overload_count v)
    verdicts

let of_alarms ~decided ~unverifiable alarms =
  let faulty = List.length (List.filter Alarm.is_fault alarms) in
  let degraded =
    List.length
      (List.filter
         (fun (a : Alarm.t) -> a.Alarm.verdict = Alarm.Ok_degraded)
         alarms)
  in
  let overload =
    List.length
      (List.filter
         (fun (a : Alarm.t) -> a.Alarm.verdict = Alarm.Overload)
         alarms)
  in
  of_verdicts ~decided
    ~ok:(decided - faulty - unverifiable - degraded - overload)
    ~non_deterministic:0 ~unverifiable ~degraded ~overload alarms

let healthy t = t.faulty = 0

let most_suspect t =
  match t.suspects with [] -> None | s :: _ -> Some s.controller

let pp fmt t =
  (* The degraded and overload columns only appear when such verdicts
     exist, so reports from runs without a lossy channel or an
     in-flight cap stay byte-identical to the historical format. *)
  let extra =
    (if t.degraded > 0 then Printf.sprintf ", %d degraded" t.degraded else "")
    ^
    if t.overload > 0 then Printf.sprintf ", %d overload" t.overload else ""
  in
  Format.fprintf fmt
    "validated %d responses: %d ok, %d non-deterministic, %d unverifiable%s, \
     %d faulty@."
    t.decided t.ok t.non_deterministic t.unverifiable extra t.faulty;
  (match t.detection with
  | Some s ->
      Format.fprintf fmt "detection time (ms): %a@." Jury_stats.Summary.pp s
  | None -> ());
  List.iter
    (fun row ->
      Format.fprintf fmt "  controller %d: %d alarm(s) [%s] between %a and %a@."
        row.controller row.alarm_count
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s x%d" k n)
              row.fault_kinds))
        Time.pp row.first_at Time.pp row.last_at)
    t.suspects

let to_string t = Format.asprintf "%a" pp t
