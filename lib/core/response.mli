(** Messages arriving at the out-of-band validator.

    Each is one ρ = (id, τ, entry) of Algorithm 1: the reporting
    controller, the trigger it concerns, and a body. Four body kinds
    cover everything §IV-C enumerates:

    - [Execution]: a replica's (primary's or tainted secondary's)
      complete planned response to the trigger;
    - [Cache_update]: one cache event as observed at the reporting node
      (the origin's own write, or a replication ack from a peer);
    - [Network_write]: an intercepted outgoing FLOW_MOD;
    - [Write_failure]: a cache write the controller attempted but the
      store refused (e.g. "failed to obtain lock"). *)

module Types = Jury_controller.Types

type body =
  | Execution of { role : [ `Primary | `Secondary ]; actions : Types.action list }
  | Cache_update of Jury_store.Event.t
  | Network_write of {
      dpid : Jury_openflow.Of_types.Dpid.t;
      flow : Jury_openflow.Of_message.flow_mod;
    }
  | Write_failure of { action : Types.action; reason : string }

type t = {
  controller : int;           (** reporting node *)
  taint : Types.Taint.t;      (** τ *)
  snapshot : Snapshot.t;      (** reporter's state when it responded *)
  sent_at : Jury_sim.Time.t;
  term : int;
      (** leadership term at send time ([0] when election is disabled
          — see {!Jury_controller.Cluster.current_term}) *)
  body : body;
}

val taint_key : t -> string
(** The stable string form of [taint] — the key the validator's pending
    tables and shard router hash on. *)

val body_name : body -> string
(** Short stable label: ["execution"], ["status"], ["decap"] or
    ["write-failure"]. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: reporter, taint, body kind. *)
