open Jury_sim
module Types = Jury_controller.Types
module Values = Jury_controller.Values
module Event = Jury_store.Event
module Names = Jury_store.Cache_names
module Of_message = Jury_openflow.Of_message
module Of_match = Jury_openflow.Of_match
module Of_action = Jury_openflow.Of_action
module Dpid = Jury_openflow.Of_types.Dpid

type retransmit = {
  fraction : float;
  backoff : float;
  max_retries : int;
}

(* Process-wide verdict tally across every validator on every domain —
   the bench's per-experiment verdict counts come from deltas of this.
   Verdicts are orders of magnitude rarer than simulation events, so a
   shared atomic per decision is noise. *)
let global_decided = Atomic.make 0
let total_decided () = Atomic.get global_decided

(* Same contract for the sharded-ingestion counters: per-shard batches
   handed to [deliver_batch] and triggers force-expired at the
   [max_inflight] high-water mark. *)
let global_batches = Atomic.make 0
let total_batches () = Atomic.get global_batches
let global_overloads = Atomic.make 0
let total_overloads () = Atomic.get global_overloads

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let shards_of_hint hint = max 1 (next_pow2 hint)

type config = {
  k : int;
  timeout : Time.t;
  adaptive_timeout : bool;
  min_timeout : Time.t;
  state_aware : bool;
  nondet_rule : bool;
  policies : Jury_policy.Engine.t;
  master_lookup : Dpid.t -> int option;
  term_lookup : unit -> int;
  ack_peers_of : int -> int list;
  retransmit : retransmit option;
  degraded_quorum : int option;
  shards : int;
  max_inflight : int option;
}

type pending = {
  taint : Types.Taint.t;
  shard : int;  (* owning shard, fixed by hash(taint) at creation *)
  epoch : int;  (* registration epoch, for bulk retirement *)
  mutable trigger_at : Time.t;
  mutable primary : int option;
  mutable term : int;  (* leadership term; bumped when re-attributed *)
  mutable secondaries : int list;
  mutable responses : Response.t list;  (* newest first *)
  mutable timer : Engine.handle option;
  mutable decided : bool;
  mutable retry_round : int;
  mutable retry_timer : Engine.handle option;
}

(* One shard of verdict state: its own pending table, retransmission
   timer wheel (the retry timers of its pendings, tracked by
   [s_retry_armed]), epoch buckets and verdict counters. Taints hash to
   a shard; with [shards = 1] everything lands in shard 0 and the data
   structures behave byte-for-byte like the historical flat table. *)
type shard = {
  index : int;
  pending : (string, pending) Hashtbl.t;
  epochs : (int, string list ref) Hashtbl.t;
      (* epoch -> keys registered in it, newest first. Decided keys stay
         as tombstones until the whole bucket retires — removal is a
         bulk drop of the bucket, not a per-key scan. *)
  mutable s_decided : int;
  mutable s_faults : int;
  mutable s_unverifiable : int;
  mutable s_degraded : int;
  mutable s_overloads : int;
  mutable s_duplicates : int;
  mutable s_late : int;
  mutable s_retransmits : int;
  mutable s_retry_armed : int;
  mutable s_reattributed : int;
  mutable s_stragglers : int;
  mutable s_batches : int;
  mutable s_batch_responses : int;
}

(* Hooks a staged-pipeline front end (Stage) installs on a validator:
   when set, registrations/deliveries/flushes are diverted to per-shard
   queues instead of touching this validator's own state, and the
   pipeline merges its shard replicas back at [pl_flush]. *)
type pipeline_hooks = {
  pl_register :
    taint:Types.Taint.t -> at:Time.t -> primary:int ->
    secondaries:int list -> unit;
  pl_batch : at:Time.t -> Response.t list -> unit;
  pl_drain : at:Time.t -> unit;
}

type t = {
  engine : Engine.t;
  cfg : config;
  shards : shard array;  (* length = cfg.shards, a power of two *)
  flow_mirror : (string, Of_message.flow_mod) Hashtbl.t;
      (* validator-side FLOWSDB state, built from every cache update it
         has seen; lets the sanity check accept a re-sent FLOW_MOD whose
         cache entry predates this trigger. Shared across shards: the
         mirror is FLOWSDB replica state, not per-trigger state. *)
  epoch_length : int;  (* registrations per epoch *)
  mutable reg_count : int;
  mutable epoch_now : int;
  mutable verdicts : Alarm.t list;  (* newest first *)
  mutable alarm_handler : Alarm.t -> unit;
  mutable verdict_handler : Alarm.t -> unit;
  mutable response_observers : (Response.t -> unit) list;
      (* newest first; reversed at dispatch so observers run in
         registration order without quadratic appends *)
  mutable verdict_observers : (Alarm.t -> unit) list;
  mutable retransmit_handler : Types.Taint.t -> secondary:int -> unit;
  (* Adaptive validation timeout (the paper's SVIII-1 extension): track
     recent completion latencies RTO-style and size theta-tau as
     srtt + 4*rttvar, clamped to [min_timeout, timeout]. *)
  mutable srtt_ms : float;
  mutable rttvar_ms : float;
  mutable rtt_samples : int;
  mutable pipeline : pipeline_hooks option;
}

let make_shard index =
  { index;
    pending = Hashtbl.create 256;
    epochs = Hashtbl.create 16;
    s_decided = 0;
    s_faults = 0;
    s_unverifiable = 0;
    s_degraded = 0;
    s_overloads = 0;
    s_duplicates = 0;
    s_late = 0;
    s_retransmits = 0;
    s_retry_armed = 0;
    s_reattributed = 0;
    s_stragglers = 0;
    s_batches = 0;
    s_batch_responses = 0 }

let create engine cfg =
  { engine;
    cfg;
    shards = Array.init cfg.shards make_shard;
    flow_mirror = Hashtbl.create 256;
    epoch_length =
      (* Small enough epochs that the high-water mark always has a few
         retired-candidate buckets behind the current one. *)
      (match cfg.max_inflight with
      | Some m -> max 1 (m / 4)
      | None -> 1024);
    reg_count = 0;
    epoch_now = 0;
    verdicts = [];
    alarm_handler = (fun _ -> ());
    verdict_handler = (fun _ -> ());
    response_observers = [];
    verdict_observers = [];
    retransmit_handler = (fun _ ~secondary:_ -> ());
    srtt_ms = Time.to_float_ms cfg.timeout /. 4.;
    rttvar_ms = Time.to_float_ms cfg.timeout /. 8.;
    rtt_samples = 0;
    pipeline = None }

let shard_count t = Array.length t.shards

let shard_of t key =
  let n = Array.length t.shards in
  if n = 1 then 0 else Hashtbl.hash key land (n - 1)

let current_timeout t =
  if t.cfg.adaptive_timeout && t.rtt_samples >= 20 then begin
    (* Wider than TCP's classic 4x: completion latencies are heavy-
       tailed (lognormal), so the estimator keeps extra headroom. *)
    let rto = t.srtt_ms +. (8. *. t.rttvar_ms) in
    Time.max t.cfg.min_timeout
      (Time.min t.cfg.timeout (Time.of_float_ms rto))
  end
  else t.cfg.timeout

let observe_completion_latency t latency =
  let ms = Time.to_float_ms latency in
  if t.rtt_samples = 0 then begin
    t.srtt_ms <- ms;
    t.rttvar_ms <- ms /. 2.
  end
  else begin
    t.rttvar_ms <- (0.75 *. t.rttvar_ms) +. (0.25 *. abs_float (t.srtt_ms -. ms));
    t.srtt_ms <- (0.875 *. t.srtt_ms) +. (0.125 *. ms)
  end;
  t.rtt_samples <- t.rtt_samples + 1

let set_alarm_handler t f = t.alarm_handler <- f
let set_verdict_handler t f = t.verdict_handler <- f
let set_retransmit_handler t f = t.retransmit_handler <- f
let on_response t f = t.response_observers <- f :: t.response_observers
let on_verdict t f = t.verdict_observers <- f :: t.verdict_observers

(* --- Response-set inspection helpers --- *)

let primary_execution p =
  match p.primary with
  | None -> None
  | Some primary ->
      List.find_map
        (fun (r : Response.t) ->
          match r.body with
          | Response.Execution { role = `Primary; actions }
            when r.controller = primary ->
              Some (r, actions)
          | _ -> None)
        (List.rev p.responses)

let secondary_executions p =
  List.filter_map
    (fun (r : Response.t) ->
      match r.body with
      | Response.Execution { role = `Secondary; actions } -> Some (r, actions)
      | _ -> None)
    (List.rev p.responses)

(* Cache events deduplicated by (origin, seq); keeps the first report. *)
let distinct_cache_events p =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (r : Response.t) ->
      match r.body with
      | Response.Cache_update ev ->
          let key = (ev.Event.origin, ev.Event.seq) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some ev
          end
      | _ -> None)
    (List.rev p.responses)

(* Acks are counted per distinct controller: a duplicated delivery of
   the same peer's ack must not satisfy the quorum twice. *)
let ack_count p (ev : Event.t) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r : Response.t) ->
      match r.body with
      | Response.Cache_update e ->
          if
            e.Event.origin = ev.Event.origin
            && e.Event.seq = ev.Event.seq
            && r.controller <> ev.Event.origin
          then Hashtbl.replace seen r.controller ()
      | _ -> ())
    p.responses;
  Hashtbl.length seen

(* Secondaries that never produced an Execution response. *)
let stragglers p =
  let execs =
    List.filter_map
      (fun (r : Response.t) ->
        match r.body with
        | Response.Execution { role = `Secondary; _ } -> Some r.controller
        | _ -> None)
      p.responses
  in
  List.filter (fun s -> not (List.mem s execs)) p.secondaries

let network_writes p =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (r : Response.t) ->
      match r.body with
      | Response.Network_write { dpid; flow } ->
          let key = (dpid, Values.Flow.value flow) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (r.controller, dpid, flow)
          end
      | _ -> None)
    (List.rev p.responses)

let write_failures p =
  List.filter_map
    (fun (r : Response.t) ->
      match r.body with
      | Response.Write_failure { action; reason } ->
          Some (r.controller, action, reason)
      | _ -> None)
    (List.rev p.responses)

(* --- Completeness: can we decide before the timer? --- *)

let flow_mod_sends actions =
  List.filter_map
    (fun (a : Types.action) ->
      match a with
      | Types.Network_send { dpid; payload = Of_message.Flow_mod fm } ->
          Some (dpid, fm)
      | _ -> None)
    actions

let cache_writes actions =
  List.filter_map
    (fun (a : Types.action) ->
      match a with
      | Types.Cache_write { cache; op; key; value } ->
          Some (cache, op, key, value)
      | Types.Network_send _ -> None)
    actions

let complete t p =
  match primary_execution p with
  | None -> false
  | Some (prim_r, actions) ->
      let primary = prim_r.Response.controller in
      List.length (secondary_executions p) >= List.length p.secondaries
      && (let writes = cache_writes actions in
          let events = distinct_cache_events p in
          let peers = List.length (t.cfg.ack_peers_of primary) in
          List.for_all
            (fun (cache, _, key, _) ->
              match
                List.find_opt
                  (fun (ev : Event.t) ->
                    ev.Event.cache = Names.normalize cache
                    && ev.Event.key = key && ev.Event.origin = primary)
                  events
              with
              | None -> false
              | Some ev -> ack_count p ev >= peers)
            writes)
      &&
      let sends = flow_mod_sends actions in
      let nets = network_writes p in
      List.for_all
        (fun (dpid, (fm : Of_message.flow_mod)) ->
          List.exists
            (fun (_, d, (f : Of_message.flow_mod)) ->
              Dpid.equal d dpid
              && Of_match.equal f.fm_match fm.fm_match
              && f.priority = fm.priority && f.command = fm.command)
            nets)
        sends

(* --- Consensus --- *)

let normalize_flow (fm : Of_message.flow_mod) =
  { fm with Of_message.fm_buffer_id = None }

let action_consensus_fingerprint (a : Types.action) =
  (* Buffer ids differ between primary and shadow executions (only the
     primary's switch allocated one), so they are erased before
     comparison; likewise FLOWSDB values re-encode with the buffer
     cleared. *)
  match a with
  | Types.Network_send { dpid; payload = Of_message.Flow_mod fm } ->
      Types.action_fingerprint
        (Types.Network_send
           { dpid; payload = Of_message.Flow_mod (normalize_flow fm) })
  | Types.Network_send { dpid; payload = Of_message.Packet_out po } ->
      Types.action_fingerprint
        (Types.Network_send
           { dpid;
             payload = Of_message.Packet_out { po with po_buffer_id = None } })
  | Types.Cache_write { cache; op; key; value } when cache = Names.flowsdb -> (
      match Values.Flow.parse value with
      | Some fm ->
          Types.action_fingerprint
            (Types.Cache_write
               { cache; op; key;
                 value = Values.Flow.value (normalize_flow fm) })
      | None -> Types.action_fingerprint a)
  | _ -> Types.action_fingerprint a

let response_fingerprint actions =
  actions
  |> List.map action_consensus_fingerprint
  |> List.sort String.compare
  |> String.concat "\n"

let majority_fingerprint fps =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun fp ->
      match Hashtbl.find_opt tbl fp with
      | Some r -> incr r
      | None -> Hashtbl.add tbl fp (ref 1))
    fps;
  Hashtbl.fold
    (fun fp r best ->
      match best with
      | Some (_, n) when n >= !r -> best
      | _ -> Some (fp, !r))
    tbl None

type consensus_result =
  | Agrees of int  (* agreeing responses, primary included *)
  | Disagrees of int list  (* dissenting controllers *)
  | Non_deterministic
  | Unverifiable

let run_consensus t p (prim_r : Response.t) prim_actions =
  let secondaries = secondary_executions p in
  if secondaries = [] then
    if p.secondaries = [] then Agrees 1 (* nothing was replicated *)
    else Unverifiable
  else begin
    let prim_fp = response_fingerprint prim_actions in
    let comparable =
      if t.cfg.state_aware then
        List.filter
          (fun ((r : Response.t), _) ->
            Snapshot.equal r.snapshot prim_r.Response.snapshot)
          secondaries
      else secondaries
    in
    match comparable with
    | [] -> Unverifiable
    | _ -> (
        let fps =
          List.map (fun (_, actions) -> response_fingerprint actions) comparable
        in
        let all = prim_fp :: fps in
        let distinct = List.sort_uniq String.compare all in
        if
          t.cfg.nondet_rule
          && List.length all >= 3
          && List.length distinct = List.length all
        then Non_deterministic
        else
          match majority_fingerprint all with
          | None -> Unverifiable
          | Some (winner, n) ->
              if 2 * n <= List.length all then Unverifiable
              else if String.equal winner prim_fp then begin
                (* Primary agrees; flag dissenting secondaries. *)
                let dissenters =
                  List.filter_map
                    (fun ((r : Response.t), actions) ->
                      if String.equal (response_fingerprint actions) winner
                      then None
                      else Some r.controller)
                    comparable
                in
                if dissenters = [] then Agrees (1 + List.length comparable)
                else Disagrees dissenters
              end
              else
                Disagrees
                  (match p.primary with Some id -> [ id ] | None -> []))
  end

(* Best agreeing fingerprint among the secondary executions alone, for
   deciding a trigger whose primary response was lost in transit. Under
   state-aware consensus only replicas sharing a network view may form
   the quorum (§IV-C A still applies, just without the primary). *)
let secondary_quorum t p =
  match secondary_executions p with
  | [] -> None
  | secs ->
      let groups =
        if t.cfg.state_aware then
          List.fold_left
            (fun acc ((r : Response.t), actions) ->
              let rec place = function
                | [] -> [ (r.Response.snapshot, [ (r, actions) ]) ]
                | (snap, members) :: rest ->
                    if Snapshot.equal snap r.Response.snapshot then
                      (snap, (r, actions) :: members) :: rest
                    else (snap, members) :: place rest
              in
              place acc)
            [] secs
          |> List.map snd
        else [ secs ]
      in
      List.fold_left
        (fun best members ->
          let fps =
            List.map (fun (_, actions) -> response_fingerprint actions) members
          in
          match majority_fingerprint fps with
          | None -> best
          | Some (fp, n) -> (
              match best with
              | Some (_, bn) when bn >= n -> best
              | _ ->
                  let _, actions =
                    List.find
                      (fun (_, a) ->
                        String.equal (response_fingerprint a) fp)
                      members
                  in
                  Some (actions, n)))
        None groups

(* --- Sanity check: cache vs network consistency for flow rules --- *)

let flows_equal (a : Of_message.flow_mod) (b : Of_message.flow_mod) =
  let a = normalize_flow a and b = normalize_flow b in
  Of_match.equal a.fm_match b.fm_match
  && a.priority = b.priority
  && Of_action.equal_list a.actions b.actions
  && a.command = b.command

(* When [plan] is given (degraded-quorum mode, after a timeout on a
   lossy channel) an inconsistency that the primary's own execution plan
   accounts for is excused: the observation was lost in transit, the
   action was not invented. Excused entries are returned separately so
   the caller can either degrade the verdict or, if no quorum backs the
   plan, reinstate them as faults. *)
let run_sanity ~mirror ?plan p ~origin =
  let events = distinct_cache_events p in
  let cache_flows =
    List.filter_map
      (fun (ev : Event.t) ->
        if
          ev.Event.cache = Names.flowsdb
          && ev.Event.origin = origin
          && (ev.Event.op = Event.Create || ev.Event.op = Event.Update)
        then
          match
            (Values.Flow.dpid_of_key ev.Event.key,
             Values.Flow.parse ev.Event.value)
          with
          | Some dpid, Some fm -> Some (dpid, fm)
          | _ -> None
        else None)
      events
  in
  let nets =
    List.filter
      (fun (_, _, (fm : Of_message.flow_mod)) ->
        fm.command = Of_message.Add || fm.command = Of_message.Modify
        || fm.command = Of_message.Modify_strict)
      (network_writes p)
  in
  let planned_sends =
    match plan with Some actions -> flow_mod_sends actions | None -> []
  in
  let planned_cache_flows =
    match plan with
    | None -> []
    | Some actions ->
        List.filter_map
          (fun (cache, _, key, value) ->
            if Names.normalize cache = Names.flowsdb then
              match
                (Values.Flow.dpid_of_key key, Values.Flow.parse value)
              with
              | Some dpid, Some fm -> Some (dpid, fm)
              | _ -> None
            else None)
          (cache_writes actions)
  in
  let faults = ref [] in
  let excused = ref [] in
  let add f detail = faults := (f, detail) :: !faults in
  let excuse f detail = excused := (f, detail) :: !excused in
  List.iter
    (fun (dpid, cfm) ->
      let same_switch =
        List.filter (fun (_, d, _) -> Dpid.equal d dpid) nets
      in
      let same_match =
        List.filter
          (fun (_, _, (nfm : Of_message.flow_mod)) ->
            Of_match.equal nfm.fm_match cfm.Of_message.fm_match
            && nfm.priority = cfm.Of_message.priority)
          same_switch
      in
      match same_match with
      | [] ->
          let planned =
            List.exists
              (fun (d, (pfm : Of_message.flow_mod)) ->
                Dpid.equal d dpid && flows_equal pfm cfm)
              planned_sends
          in
          let report = if planned then excuse else add in
          report Alarm.Cache_without_network
            (Format.asprintf "no FLOW_MOD on wire for cache entry %a@%a"
               Of_match.pp cfm.Of_message.fm_match Dpid.pp dpid)
      | writes ->
          if
            not
              (List.exists (fun (_, _, nfm) -> flows_equal nfm cfm) writes)
          then
            add Alarm.Cache_network_mismatch
              (Format.asprintf "cache and wire disagree for %a@%a"
                 Of_match.pp cfm.Of_message.fm_match Dpid.pp dpid))
    cache_flows;
  List.iter
    (fun (sender, dpid, (nfm : Of_message.flow_mod)) ->
      ignore sender;
      let in_trigger =
        List.exists
          (fun (d, cfm) ->
            Dpid.equal d dpid
            && Of_match.equal cfm.Of_message.fm_match nfm.fm_match
            && cfm.Of_message.priority = nfm.priority)
          cache_flows
      in
      let in_mirror () =
        (* A FLOW_MOD re-sent for a rule the store already holds (e.g. a
           reinstall after a switch-side timeout race) is consistent if
           it matches the mirrored entry. *)
        let key = Values.Flow.key dpid nfm.fm_match ~priority:nfm.priority in
        match Hashtbl.find_opt mirror key with
        | Some cfm -> flows_equal cfm nfm
        | None -> false
      in
      let in_plan () =
        (* The primary's plan includes the backing cache write; only its
           externalised event was lost. *)
        List.exists
          (fun (d, (pfm : Of_message.flow_mod)) ->
            Dpid.equal d dpid && flows_equal pfm nfm)
          planned_cache_flows
      in
      if not (in_trigger || in_mirror ()) then
        let report = if in_plan () then excuse else add in
        report Alarm.Network_without_cache
          (Format.asprintf "FLOW_MOD %a@%a has no cache backing" Of_match.pp
             nfm.fm_match Dpid.pp dpid))
    nets;
  (!faults, List.rev !excused)

(* --- Policy check --- *)

let run_policy t p ~origin ~external_ actions =
  (* With no rules installed no query can match; skip building the
     query records entirely. Besides being a hot-path win, this keeps
     the policy-free validator from consulting [master_lookup] — which
     reads live cluster mastership — so pipelined shard replicas never
     touch main-domain state. *)
  if Jury_policy.Engine.rule_count t.cfg.policies = 0 then (ignore p; [])
  else
  let queries =
    List.filter_map
      (fun (a : Types.action) ->
        match a with
        | Types.Cache_write { cache; op; key; value } ->
            let destination =
              if cache = Names.normalize Names.flowsdb then
                match Values.Flow.dpid_of_key key with
                | Some dpid ->
                    if t.cfg.master_lookup dpid = Some origin then `Local
                    else `Remote
                | None -> `Local
              else `Local
            in
            Some
              { Jury_policy.Ast.q_controller = origin;
                q_trigger = (if external_ then `External else `Internal);
                q_cache = Names.normalize cache;
                q_op = op;
                q_key = key;
                q_value = value;
                q_destination = destination }
        | Types.Network_send _ -> None)
      actions
  in
  ignore p;
  (* Per-response hot path: consult the compiled decision structure
     (memoised per engine generation — compiled once at Jury_config
     time), not the interpreter's rule-list scan. *)
  Jury_policy.Compiled.check_all
    (Jury_policy.Engine.compiled t.cfg.policies)
    queries
  |> List.map (fun (r : Jury_policy.Ast.rule) ->
         (Alarm.Policy_violation r.Jury_policy.Ast.name,
          Format.asprintf "%a" Jury_policy.Ast.pp_rule r))

(* --- Decision --- *)

let finish t p (verdict : Alarm.verdict) ~suspects ~detail =
  let sh = t.shards.(p.shard) in
  p.decided <- true;
  (match p.timer with Some h -> Engine.cancel h | None -> ());
  (match p.retry_timer with
  | Some h ->
      Engine.cancel h;
      sh.s_retry_armed <- sh.s_retry_armed - 1
  | None -> ());
  p.retry_timer <- None;
  let stragglers = stragglers p in
  sh.s_stragglers <- sh.s_stragglers + List.length stragglers;
  Hashtbl.remove sh.pending (Types.Taint.to_string p.taint);
  let alarm =
    { Alarm.taint = p.taint;
      trigger_at = p.trigger_at;
      decided_at = Engine.now t.engine;
      primary = p.primary;
      suspects = List.sort_uniq compare suspects;
      term = p.term;
      verdict;
      detail }
  in
  (let tr = Engine.trace t.engine in
   if Jury_obs.Trace.enabled tr then begin
     let taint = Types.Taint.to_string p.taint in
     let t_ns = Engine.now_ns t.engine in
     let attrs =
       [ ("verdict", Alarm.verdict_name verdict);
         ("detection_ms",
          Printf.sprintf "%.3f" (Time.to_float_ms (Alarm.detection_time alarm)));
         ("suspects",
          String.concat "," (List.map string_of_int alarm.Alarm.suspects)) ]
     in
     let attrs =
       if stragglers = [] then attrs
       else
         ("stragglers",
          String.concat "," (List.map string_of_int stragglers))
         :: attrs
     in
     let attrs =
       if p.term > 0 then ("term", string_of_int p.term) :: attrs else attrs
     in
     Jury_obs.Trace.point tr ~t_ns ~taint ~phase:Jury_obs.Trace.Verdict
       ?node:p.primary
       (if detail = "" then attrs else ("detail", detail) :: attrs);
     Jury_obs.Trace.close_root tr ~t_ns ~taint
       [ ("verdict", Alarm.verdict_name verdict) ]
   end);
  t.verdicts <- alarm :: t.verdicts;
  sh.s_decided <- sh.s_decided + 1;
  ignore (Atomic.fetch_and_add global_decided 1);
  (match verdict with
  | Alarm.Faulty _ ->
      sh.s_faults <- sh.s_faults + 1;
      t.alarm_handler alarm
  | Alarm.Ok_unverifiable -> sh.s_unverifiable <- sh.s_unverifiable + 1
  | Alarm.Ok_degraded -> sh.s_degraded <- sh.s_degraded + 1
  | Alarm.Overload ->
      sh.s_overloads <- sh.s_overloads + 1;
      ignore (Atomic.fetch_and_add global_overloads 1)
  | Alarm.Ok_valid | Alarm.Ok_non_deterministic -> ());
  t.verdict_handler alarm;
  List.iter (fun f -> f alarm) (List.rev t.verdict_observers)

let evaluate t p ~timed_out =
  if not p.decided then begin
    let external_ = Types.Taint.is_external p.taint in
    let failures = write_failures p in
    match primary_execution p with
    | None ->
        if timed_out then begin
          (* No execution record at all. If the trigger consists of
             intercepted FLOW_MODs with no cache backing, the sender
             bypassed its cache — a misbehaving controller (§II-A.3).
             Otherwise it is a plain response omission — unless enough
             equivalent-view replicated executions agree, in which case
             the lossy channel ate the primary's report and the trigger
             is decided with a reduced quorum. *)
          let stray =
            List.filter
              (fun (_, dpid, (nfm : Of_message.flow_mod)) ->
                let key =
                  Values.Flow.key dpid nfm.fm_match ~priority:nfm.priority
                in
                match Hashtbl.find_opt t.flow_mirror key with
                | Some cfm -> not (flows_equal cfm nfm)
                | None -> true)
              (network_writes p)
          in
          if stray <> [] then
            finish t p
              (Alarm.Faulty [ Alarm.Network_without_cache ])
              ~suspects:(List.map (fun (sender, _, _) -> sender) stray)
              ~detail:"FLOW_MOD on the wire with no cache backing and no                        response"
          else begin
            let quorum =
              match t.cfg.degraded_quorum with
              | Some q when external_ && failures = [] -> (
                  match secondary_quorum t p with
                  | Some (actions, n) when n >= q ->
                      let origin =
                        match p.primary with Some id -> id | None -> -1
                      in
                      if run_policy t p ~origin ~external_ actions = [] then
                        Some n
                      else None
                  | _ -> None)
              | _ -> None
            in
            match quorum with
            | Some n ->
                finish t p Alarm.Ok_degraded ~suspects:[]
                  ~detail:
                    (Printf.sprintf
                       "primary response lost; %d equivalent-view replica \
                        response(s) agree"
                       n)
            | None ->
                finish t p
                  (Alarm.Faulty [ Alarm.Response_timeout ])
                  ~suspects:(Option.to_list p.primary)
                  ~detail:"no primary response before validation timeout"
          end
        end
        else () (* keep waiting *)
    | Some (prim_r, prim_actions) ->
        let origin = prim_r.Response.controller in
        let faults = ref [] in
        let suspects = ref [] in
        let details = ref [] in
        (* Omissions: observations the plan promises but the validator
           never saw. They stay separate from hard faults until we know
           whether a reduced quorum can vouch for the plan. *)
        let omissions = ref [] in
        (* Write failures are response omissions in the making: the
           controller planned a cache write the store refused. *)
        List.iter
          (fun (ctrl, _, reason) ->
            faults := Alarm.Response_timeout :: !faults;
            suspects := ctrl :: !suspects;
            details := ("cache write failed: " ^ reason) :: !details)
          failures;
        let degraded_mode =
          timed_out && external_ && t.cfg.degraded_quorum <> None
        in
        (* Timed-out evaluation with missing externalisation: the plan
           says a write should exist; did its cache event arrive? *)
        if timed_out && failures = [] then begin
          let events = distinct_cache_events p in
          List.iter
            (fun (cache, _, key, _) ->
              if
                not
                  (List.exists
                     (fun (ev : Event.t) ->
                       ev.Event.cache = Names.normalize cache
                       && ev.Event.key = key && ev.Event.origin = origin)
                     events)
              then begin
                omissions :=
                  (Alarm.Response_timeout, origin) :: !omissions;
                details :=
                  Printf.sprintf "cache update %s/%s never observed"
                    cache key
                  :: !details
              end)
            (cache_writes prim_actions)
        end;
        (* CONSENSUS *)
        let nondet = ref false in
        let unverifiable = ref false in
        let agree_n = ref 0 in
        (if external_ then
           match run_consensus t p prim_r prim_actions with
           | Agrees n -> agree_n := n
           | Non_deterministic -> nondet := true
           | Unverifiable -> unverifiable := true
           | Disagrees dissenters ->
               faults := Alarm.Consensus_mismatch :: !faults;
               suspects := dissenters @ !suspects;
               details :=
                 Printf.sprintf "consensus dissent by [%s]"
                   (String.concat ","
                      (List.map string_of_int dissenters))
                 :: !details);
        (* SANITY — with the plan fallback only in degraded mode, so a
           zero-loss run takes exactly the seed's decision path. *)
        let sanity_faults, excused =
          if degraded_mode then
            run_sanity ~mirror:t.flow_mirror ~plan:prim_actions p ~origin
          else run_sanity ~mirror:t.flow_mirror p ~origin
        in
        List.iter
          (fun (f, d) ->
            faults := f :: !faults;
            suspects := origin :: !suspects;
            details := d :: !details)
          sanity_faults;
        List.iter
          (fun (_, d) ->
            omissions := (Alarm.Response_timeout, origin) :: !omissions;
            details := d :: !details)
          excused;
        (* POLICY *)
        List.iter
          (fun (f, d) ->
            faults := f :: !faults;
            suspects := origin :: !suspects;
            details := d :: !details)
          (run_policy t p ~origin ~external_ prim_actions);
        (* Can a reduced quorum stand behind the plan? Only when no hard
           fault fired and the responses that did arrive all agree. *)
        let degraded_ok =
          degraded_mode && !faults = []
          && (not !nondet) && not !unverifiable
          &&
          match t.cfg.degraded_quorum with
          | Some q -> !agree_n >= q
          | None -> false
        in
        if not degraded_ok then
          List.iter
            (fun (f, ctrl) ->
              faults := f :: !faults;
              suspects := ctrl :: !suspects)
            (List.rev !omissions);
        let missing = stragglers p in
        let detail = String.concat "; " (List.rev !details) in
        if !faults <> [] then
          finish t p
            (Alarm.Faulty (List.sort_uniq compare !faults))
            ~suspects:!suspects ~detail
        else if !nondet then
          finish t p Alarm.Ok_non_deterministic ~suspects:[] ~detail
        else if !unverifiable then
          finish t p Alarm.Ok_unverifiable ~suspects:[] ~detail
        else if degraded_ok && (!omissions <> [] || missing <> []) then
          finish t p Alarm.Ok_degraded ~suspects:[]
            ~detail:
              (let quorum_note =
                 Printf.sprintf
                   "decided with reduced quorum (%d agreeing, %d straggler(s))"
                   !agree_n (List.length missing)
               in
               if detail = "" then quorum_note
               else detail ^ "; " ^ quorum_note)
        else finish t p Alarm.Ok_valid ~suspects:[] ~detail
  end

(* A trigger-scoped event: decides/updates only this trigger's entry
   (shard counters it bumps are commutative). The two per-validator
   couplings that break that — the adaptive-timeout estimator, which
   every decision feeds and every later timer reads, and the admission
   epochs of [max_inflight], where one verdict releases the next queued
   trigger — force the conservative opaque footprint instead. *)
let entry_footprint t (p : pending) =
  if t.cfg.adaptive_timeout || t.cfg.max_inflight <> None then
    Footprint.opaque
  else Footprint.touches [ Footprint.taint (Types.Taint.to_string p.taint) ]

let arm_timer t p =
  if p.timer = None then
    p.timer <-
      Some
        (Engine.schedule t.engine
           ~footprint:(entry_footprint t p)
           ~after:(current_timeout t)
           (fun () -> evaluate t p ~timed_out:true))

(* --- Bounded retransmission with exponential backoff --- *)

let retry_delay t (rt : retransmit) round =
  let theta = Time.to_float_ms (current_timeout t) in
  Time.of_float_ms (theta *. rt.fraction *. (rt.backoff ** float_of_int round))

let rec arm_retry t p rt =
  t.shards.(p.shard).s_retry_armed <- t.shards.(p.shard).s_retry_armed + 1;
  p.retry_timer <-
    Some
      (Engine.schedule t.engine
         ~after:(retry_delay t rt p.retry_round)
         (fun () -> fire_retry t p rt))

and fire_retry t p (rt : retransmit) =
  let sh = t.shards.(p.shard) in
  p.retry_timer <- None;
  sh.s_retry_armed <- sh.s_retry_armed - 1;
  if not p.decided then begin
    match stragglers p with
    | [] -> () (* everyone answered; no more retries needed *)
    | missing ->
        List.iter
          (fun secondary ->
            sh.s_retransmits <- sh.s_retransmits + 1;
            t.retransmit_handler p.taint ~secondary)
          missing;
        p.retry_round <- p.retry_round + 1;
        if p.retry_round < rt.max_retries then arm_retry t p rt
  end

(* --- Epoch bookkeeping and the in-flight high-water mark --- *)

let inflight t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.pending) 0 t.shards

(* Bulk-free retired epochs: a bucket at least two epochs old whose keys
   are all decided (tombstones) is dropped wholesale; one with live
   stragglers is compacted down to them. *)
let retire_decided_epochs t =
  Array.iter
    (fun sh ->
      let stale =
        Hashtbl.fold
          (fun e keys acc ->
            if e <= t.epoch_now - 2 then (e, keys) :: acc else acc)
          sh.epochs []
      in
      List.iter
        (fun (e, keys) ->
          let live = List.filter (Hashtbl.mem sh.pending) !keys in
          if live = [] then Hashtbl.remove sh.epochs e else keys := live)
        stale)
    t.shards

let oldest_epoch t =
  Array.fold_left
    (fun acc sh ->
      Hashtbl.fold
        (fun e _ acc ->
          match acc with Some b when b <= e -> acc | _ -> Some e)
        sh.epochs acc)
    None t.shards

(* Force-decide every still-undecided trigger registered in epoch [e],
   oldest registration first, then drop the epoch's buckets. *)
let force_expire_epoch t e =
  Array.iter
    (fun sh ->
      match Hashtbl.find_opt sh.epochs e with
      | None -> ()
      | Some keys ->
          let ks = List.rev !keys in
          Hashtbl.remove sh.epochs e;
          List.iter
            (fun key ->
              match Hashtbl.find_opt sh.pending key with
              | Some p when not p.decided ->
                  finish t p Alarm.Overload ~suspects:[]
                    ~detail:
                      (Printf.sprintf
                         "epoch %d force-expired at max_inflight high-water \
                          mark"
                         e)
              | _ -> ())
            ks)
    t.shards

(* Called before each registration. Expiring the oldest epoch first
   mirrors the paper's argument that a verdict delayed past several
   epochs of newer traffic has lost its diagnostic value anyway. *)
let enforce_inflight t =
  match t.cfg.max_inflight with
  | None -> ()
  | Some m ->
      let looping = ref true in
      while !looping && inflight t >= m do
        match oldest_epoch t with
        | Some e when e < t.epoch_now -> force_expire_epoch t e
        | _ -> looping := false (* never eat the epoch being filled *)
      done

let note_registration t shard key =
  enforce_inflight t;
  t.reg_count <- t.reg_count + 1;
  let epoch = t.reg_count / t.epoch_length in
  if epoch > t.epoch_now then begin
    t.epoch_now <- epoch;
    retire_decided_epochs t
  end;
  let sh = t.shards.(shard) in
  (match Hashtbl.find_opt sh.epochs epoch with
  | Some keys -> keys := key :: !keys
  | None -> Hashtbl.add sh.epochs epoch (ref [ key ]));
  epoch

let get_pending t taint =
  let key = Types.Taint.to_string taint in
  let shard = shard_of t key in
  match Hashtbl.find_opt t.shards.(shard).pending key with
  | Some p -> Some p
  | None ->
      if Types.Taint.is_external taint then None
        (* external triggers must be registered by the replicator; a
           stray tainted response after decision is dropped *)
      else begin
        let epoch = note_registration t shard key in
        let p =
          { taint;
            shard;
            epoch;
            trigger_at = Engine.now t.engine;
            primary = None;
            term = t.cfg.term_lookup ();
            secondaries = [];
            responses = [];
            timer = None;
            decided = false;
            retry_round = 0;
            retry_timer = None }
        in
        Hashtbl.add t.shards.(shard).pending key p;
        Some p
      end

let register_external t ~taint ~at ~primary ~secondaries =
  match t.pipeline with
  | Some h -> h.pl_register ~taint ~at ~primary ~secondaries
  | None ->
  let key = Types.Taint.to_string taint in
  let shard = shard_of t key in
  if not (Hashtbl.mem t.shards.(shard).pending key) then begin
    let epoch = note_registration t shard key in
    let p =
      { taint;
        shard;
        epoch;
        trigger_at = at;
        primary = Some primary;
        term = t.cfg.term_lookup ();
        secondaries;
        responses = [];
        timer = None;
        decided = false;
        retry_round = 0;
        retry_timer = None }
    in
    Hashtbl.add t.shards.(shard).pending key p;
    arm_timer t p;
    match t.cfg.retransmit with
    | Some rt when rt.max_retries > 0 && secondaries <> [] ->
        arm_retry t p rt
    | _ -> ()
  end

(* Mid-flight leadership change: the trigger's primary crashed and a
   new master will re-execute it under a later term. Instead of letting
   the pending record time out and blame the old primary, move the
   attribution to the new primary, stamp the new term, and restart the
   validation clock — the replicator re-drives the trigger, so fresh
   responses are on their way. *)
let reattribute t ~taint ~primary ~term =
  let key = Types.Taint.to_string taint in
  let shard = shard_of t key in
  match Hashtbl.find_opt t.shards.(shard).pending key with
  | Some p when not p.decided ->
      p.primary <- Some primary;
      p.term <- term;
      (match p.timer with Some h -> Engine.cancel h | None -> ());
      p.timer <- None;
      arm_timer t p;
      t.shards.(shard).s_reattributed <-
        t.shards.(shard).s_reattributed + 1;
      (let tr = Engine.trace t.engine in
       if Jury_obs.Trace.enabled tr then
         Jury_obs.Trace.point tr ~t_ns:(Engine.now_ns t.engine) ~taint:key
           ~phase:Jury_obs.Trace.Validate ~node:primary
           [ ("event", "reattributed"); ("term", string_of_int term) ]);
      true
  | _ -> false

let update_flow_mirror t (r : Response.t) =
  match r.body with
  | Response.Cache_update ev when ev.Event.cache = Names.flowsdb -> (
      match ev.Event.op with
      | Event.Delete -> Hashtbl.remove t.flow_mirror ev.Event.key
      | Event.Create | Event.Update -> (
          match Values.Flow.parse ev.Event.value with
          | Some fm -> Hashtbl.replace t.flow_mirror ev.Event.key fm
          | None -> ()))
  | _ -> ()

(* A second Execution record from the same (controller, role) — or an
   exact duplicate of any other body — is a stale channel duplicate: the
   first delivery wins so a duplicated response can never satisfy
   consensus twice or double-count toward a quorum. *)
let duplicate_response p (r : Response.t) =
  List.exists
    (fun (q : Response.t) ->
      q.Response.controller = r.Response.controller
      &&
      match (q.Response.body, r.Response.body) with
      | ( Response.Execution { role = qr; _ },
          Response.Execution { role = rr; _ } ) ->
          qr = rr
      | qb, rb -> qb = rb)
    p.responses

let deliver_inline t (r : Response.t) =
  (let tr = Engine.trace t.engine in
   if Jury_obs.Trace.enabled tr then
     Jury_obs.Trace.point tr ~t_ns:(Engine.now_ns t.engine)
       ~taint:(Types.Taint.to_string r.taint)
       ~phase:Jury_obs.Trace.Validate ~node:r.controller
       [ ("body", Response.body_name r.body) ]);
  List.iter (fun f -> f r) (List.rev t.response_observers);
  update_flow_mirror t r;
  match get_pending t r.taint with
  | None ->
      let sh = t.shards.(shard_of t (Response.taint_key r)) in
      sh.s_late <- sh.s_late + 1
  | Some p ->
      if duplicate_response p r then begin
        let sh = t.shards.(p.shard) in
        sh.s_duplicates <- sh.s_duplicates + 1
      end
      else if not p.decided then begin
        (if p.primary = None then
           match Types.Taint.primary_of r.taint with
           | Some id -> p.primary <- Some id
           | None -> (
               (* Internal trigger: the origin is the primary actor. *)
               match r.body with
               | Response.Cache_update ev -> p.primary <- Some ev.Event.origin
               | Response.Execution { role = `Primary; _ }
               | Response.Write_failure _ ->
                   p.primary <- Some r.controller
               | _ -> ()));
        p.responses <- r :: p.responses;
        arm_timer t p;
        if complete t p then begin
          observe_completion_latency t
            (Time.sub (Engine.now t.engine) p.trigger_at);
          evaluate t p ~timed_out:false
        end
      end

(* Batched ingestion: one call delivers a whole simulated tick's worth
   of responses, partitioned per shard so each shard's table is touched
   once per batch. Responses keep their arrival order within a shard,
   so a per-event caller and a batching caller drive each shard's state
   machine through the same transitions. *)
let deliver t (r : Response.t) =
  match t.pipeline with
  | Some h -> h.pl_batch ~at:(Engine.now t.engine) [ r ]
  | None -> deliver_inline t r

let deliver_batch t rs =
  match (t.pipeline, rs) with
  | _, [] -> ()
  | Some h, rs -> h.pl_batch ~at:(Engine.now t.engine) rs
  | None, rs ->
      let n = Array.length t.shards in
      let per_shard = Array.make n [] in
      List.iter
        (fun (r : Response.t) ->
          let i = shard_of t (Response.taint_key r) in
          per_shard.(i) <- r :: per_shard.(i))
        rs;
      Array.iteri
        (fun i bucket ->
          match bucket with
          | [] -> ()
          | bucket ->
              let sh = t.shards.(i) in
              let size = List.length bucket in
              sh.s_batches <- sh.s_batches + 1;
              sh.s_batch_responses <- sh.s_batch_responses + size;
              ignore (Atomic.fetch_and_add global_batches 1);
              (let tr = Engine.trace t.engine in
               if Jury_obs.Trace.enabled tr then
                 Jury_obs.Trace.global_point tr
                   ~t_ns:(Engine.now_ns t.engine)
                   ~phase:Jury_obs.Trace.Batch
                   [ ("shard", string_of_int i);
                     ("responses", string_of_int size) ]);
              List.iter (deliver_inline t) (List.rev bucket))
        per_shard

let verdicts t = List.rev t.verdicts
let alarms t = List.filter Alarm.is_fault (verdicts t)

let detection_times_ms t =
  verdicts t
  |> List.map (fun a -> Time.to_float_ms (Alarm.detection_time a))
  |> Array.of_list

let sum t f = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards
let decided_count t = sum t (fun sh -> sh.s_decided)
let fault_count t = sum t (fun sh -> sh.s_faults)
let pending_count t = inflight t
let unverifiable_count t = sum t (fun sh -> sh.s_unverifiable)
let degraded_count t = sum t (fun sh -> sh.s_degraded)
let overload_count t = sum t (fun sh -> sh.s_overloads)
let duplicate_count t = sum t (fun sh -> sh.s_duplicates)
let late_count t = sum t (fun sh -> sh.s_late)
let retransmit_count t = sum t (fun sh -> sh.s_retransmits)
let reattributed_count t = sum t (fun sh -> sh.s_reattributed)
let straggler_count t = sum t (fun sh -> sh.s_stragglers)
let batch_count t = sum t (fun sh -> sh.s_batches)
let batched_response_count t = sum t (fun sh -> sh.s_batch_responses)
let current_epoch t = t.epoch_now

type shard_stats = {
  shard_index : int;
  shard_pending : int;
  shard_decided : int;
  shard_faults : int;
  shard_batches : int;
  shard_batch_responses : int;
  shard_overloads : int;
  shard_retransmits : int;
  shard_retry_armed : int;
  shard_live_epochs : int;
}

let shard_stats t =
  Array.to_list
    (Array.map
       (fun sh ->
         { shard_index = sh.index;
           shard_pending = Hashtbl.length sh.pending;
           shard_decided = sh.s_decided;
           shard_faults = sh.s_faults;
           shard_batches = sh.s_batches;
           shard_batch_responses = sh.s_batch_responses;
           shard_overloads = sh.s_overloads;
           shard_retransmits = sh.s_retransmits;
           shard_retry_armed = sh.s_retry_armed;
           shard_live_epochs = Hashtbl.length sh.epochs })
       t.shards)

(* --- staged-pipeline plumbing (see Stage) --- *)

let set_pipeline_hooks t h = t.pipeline <- Some h
let observe_mirror = update_flow_mirror
let shard_of_key t key = shard_of t key

let drain_pipeline t =
  match t.pipeline with
  | Some h ->
      (* Detach first: the stage merges its replicas back into [t] via
         {!absorb_pipeline_shard}, after which [t] answers result
         queries — and any further ingestion runs inline. *)
      t.pipeline <- None;
      h.pl_drain ~at:(Engine.now t.engine)
  | None -> ()

let flush t =
  drain_pipeline t;
  (* Shard 0 first, each shard folded like the seed's single table,
     so [shards = 1] flushes in the historical order. *)
  Array.iter
    (fun sh ->
      let ps = Hashtbl.fold (fun _ p acc -> p :: acc) sh.pending [] in
      List.iter (fun p -> evaluate t p ~timed_out:true) ps)
    t.shards

let current_timeout_value = current_timeout

let absorb_pipeline_shard t ~shard src =
  let dst = t.shards.(shard) in
  let s = src.shards.(0) in
  (* Undecided triggers migrate so a later facade [flush] (or plain
     [pending_count]) sees exactly what the serial validator would:
     the replica's timers are dead with its engine, but flush-forced
     evaluation only reads the pending record. *)
  Hashtbl.iter
    (fun key p -> Hashtbl.replace dst.pending key { p with shard })
    s.pending;
  dst.s_decided <- dst.s_decided + s.s_decided;
  dst.s_faults <- dst.s_faults + s.s_faults;
  dst.s_unverifiable <- dst.s_unverifiable + s.s_unverifiable;
  dst.s_degraded <- dst.s_degraded + s.s_degraded;
  dst.s_overloads <- dst.s_overloads + s.s_overloads;
  dst.s_duplicates <- dst.s_duplicates + s.s_duplicates;
  dst.s_late <- dst.s_late + s.s_late;
  dst.s_retransmits <- dst.s_retransmits + s.s_retransmits;
  dst.s_retry_armed <- dst.s_retry_armed + s.s_retry_armed;
  dst.s_reattributed <- dst.s_reattributed + s.s_reattributed;
  dst.s_stragglers <- dst.s_stragglers + s.s_stragglers;
  dst.s_batches <- dst.s_batches + s.s_batches;
  dst.s_batch_responses <- dst.s_batch_responses + s.s_batch_responses;
  t.reg_count <- t.reg_count + src.reg_count;
  t.verdicts <- src.verdicts @ t.verdicts

let finalize_pipeline_merge t =
  (* [epoch_now] tracks [reg_count / epoch_length] exactly on the
     inline path, so rebuilding it from the summed registration count
     reproduces the serial value. *)
  t.epoch_now <- t.reg_count / t.epoch_length;
  (* [t.verdicts] is newest-first; merge the per-replica streams into
     one deterministic newest-first order. Ties on [decided_at] (e.g.
     several decisions inside one batch tick) break by trigger time
     then taint, independent of shard interleaving. *)
  t.verdicts <-
    List.sort
      (fun (a : Alarm.t) (b : Alarm.t) ->
        match Time.compare b.Alarm.decided_at a.Alarm.decided_at with
        | 0 -> (
            match Time.compare b.Alarm.trigger_at a.Alarm.trigger_at with
            | 0 ->
                compare
                  (Types.Taint.to_string b.Alarm.taint)
                  (Types.Taint.to_string a.Alarm.taint)
            | c -> c)
        | c -> c)
      t.verdicts
