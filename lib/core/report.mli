(** Administrator-facing alarm reports.

    The paper (§V): "In event of an alarm, JURY extracts information
    about the offending controller, trigger and the associated response,
    and presents it to the administrator for further action." This
    module is that presentation layer: it aggregates a validator's
    verdicts into per-controller and per-fault-kind summaries and
    renders them. Used by `jury_cli` and the examples. *)

type suspect_row = {
  controller : int;
  alarm_count : int;
  fault_kinds : (string * int) list;  (** kind → occurrences, desc. *)
  first_at : Jury_sim.Time.t;
  last_at : Jury_sim.Time.t;
}

type t = {
  decided : int;
  ok : int;
  non_deterministic : int;
  unverifiable : int;
  degraded : int;  (** reduced-quorum decisions on a lossy channel *)
  overload : int;  (** triggers force-expired at the in-flight cap *)
  faulty : int;
  suspects : suspect_row list;  (** most-implicated first *)
  detection : Jury_stats.Summary.t option;
      (** over all verdicts; [None] if nothing was decided *)
}

val of_validator : Validator.t -> t
(** Roll up everything the validator has decided so far. *)

val of_alarms : decided:int -> unverifiable:int -> Alarm.t list -> t
(** Build from a pre-filtered alarm list (e.g. one experiment window).
    [decided] is the total verdict count the alarms were drawn from. *)

val healthy : t -> bool
(** No faulty verdicts at all. *)

val most_suspect : t -> int option
(** The controller implicated most often, if any. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary: headline counters, then a suspect table. *)

val to_string : t -> string
(** [pp] rendered to a string. *)
