module Types = Jury_controller.Types

type body =
  | Execution of { role : [ `Primary | `Secondary ]; actions : Types.action list }
  | Cache_update of Jury_store.Event.t
  | Network_write of {
      dpid : Jury_openflow.Of_types.Dpid.t;
      flow : Jury_openflow.Of_message.flow_mod;
    }
  | Write_failure of { action : Types.action; reason : string }

type t = {
  controller : int;
  taint : Types.Taint.t;
  snapshot : Snapshot.t;
  sent_at : Jury_sim.Time.t;
  term : int;
  body : body;
}

let taint_key t = Types.Taint.to_string t.taint

let body_name = function
  | Execution { role = `Primary; _ } -> "execution/primary"
  | Execution { role = `Secondary; _ } -> "execution/secondary"
  | Cache_update _ -> "cache-update"
  | Network_write _ -> "network-write"
  | Write_failure _ -> "write-failure"

let pp fmt t =
  Format.fprintf fmt "rho(id=%d tau=%a %s %a%s)" t.controller Types.Taint.pp
    t.taint (body_name t.body) Snapshot.pp t.snapshot
    (if t.term > 0 then Printf.sprintf " term=%d" t.term else "")
