(** Bridge from the causal trace to experiment metrics.

    Turns closed root spans in a {!Jury_obs.Trace.t} into per-phase
    latency series in a {!Jury_sim.Metrics.t}, so detection-time CDFs
    can be decomposed by phase (replication vs pipeline service vs
    validation, etc.). *)

val record_phase_series :
  ?prefix:string -> Jury_obs.Trace.t -> Jury_sim.Metrics.t -> unit
(** [record_phase_series trace metrics] records, for every closed root
    span, the end-to-end duration under [prefix ^ "total"] and each
    phase's summed child-span duration under
    [prefix ^ Jury_obs.Trace.phase_name phase], all in milliseconds.
    Open (never-closed) roots are skipped. [prefix] defaults to
    ["span/"]. *)

val record_validator_shards :
  ?prefix:string -> Validator.t -> Jury_sim.Metrics.t -> unit
(** Bump one metrics counter per shard per field
    ([prefix ^ "shard<i>/pending"], ["/decided"], ["/faults"],
    ["/batches"], ["/batch-responses"], ["/overloads"],
    ["/retransmits"], ["/live-epochs"]) plus the current registration
    epoch under [prefix ^ "epoch"], from {!Validator.shard_stats}.
    [prefix] defaults to ["validator/"]. *)

val record_channel_counters :
  ?prefix:string -> (string * Channel.stats) list -> Jury_sim.Metrics.t -> unit
(** Bump one metrics counter per link per field
    ([prefix ^ link ^ "/sent"], ["/delivered"], ["/dropped"],
    ["/duplicated"], ["/retransmitted"]) from a
    {!Deployment.channel_stats} listing. [prefix] defaults to
    ["channel/"]. *)
