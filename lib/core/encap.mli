(** OVS-mode trigger encapsulation (§VI-A).

    For ODL, the replicator OVS connects to the secondary controllers
    in OpenFlow mode, so every replicated packet arrives as a PACKET_IN.
    When the original trigger was itself a PACKET_IN, the secondary
    receives a {e doubly encapsulated} PACKET_IN and JURY must strip the
    outer layer before processing (Fig. 4i measures that cost). The
    inner message rides as an opaque ethertype-0x9999 frame body. *)

val ethertype : int
(** The synthetic ethertype (0x9999) carrying encapsulated triggers. *)

val encapsulate :
  Jury_openflow.Of_message.t -> Jury_openflow.Of_message.packet_in
(** Wrap a full control message as the payload of a synthetic
    PACKET_IN. *)

val decapsulate :
  Jury_openflow.Of_message.packet_in -> Jury_openflow.Of_message.t option
(** Recover the inner message; [None] if the PACKET_IN is not an
    encapsulation. *)

val overhead_bytes : Jury_openflow.Of_message.t -> int
(** Extra bytes the encapsulated copy occupies on the wire compared to
    the original message. *)
