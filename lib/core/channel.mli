(** Unreliable message channels between JURY's components.

    The paper assumes the replication and response-collection links are
    reliable; real deployments are not (message loss, duplication and
    reordering are first-class transitions in the SDN model-checking
    literature). A {!t} sits between a sender and [Engine.schedule]:
    each {!send} may drop the message, delay it by reorder jitter, or
    deliver a stale duplicate, while keeping per-link health counters
    the validator and figures read back.

    A channel with the {!reliable} profile is {e guaranteed} to behave
    bit-for-bit like a bare [Engine.schedule]: exactly one event at
    exactly the requested delay and no RNG draws, so zero-loss runs
    reproduce the seed's verdicts and detection times exactly. *)

type profile = {
  drop : float;        (** per-message loss probability, [0,1] *)
  duplicate : float;   (** probability a delivered message is duplicated *)
  jitter_us : float;   (** mean exponential reorder jitter added to the
                           base delay; 0 = none *)
}

val reliable : profile
(** No loss, no duplication, no jitter. *)

val lossy :
  ?drop:float -> ?duplicate:float -> ?jitter_us:float -> unit -> profile
(** Validated constructor; raises [Invalid_argument] on probabilities
    outside [0,1] or negative/NaN jitter. *)

val is_reliable : profile -> bool
(** Whether the profile is loss-free, duplicate-free and jitter-free —
    such a channel is structurally identical to {!reliable} and never
    draws from its RNG. *)

type stats = {
  mutable sent : int;          (** messages offered to the channel *)
  mutable delivered : int;     (** messages that got through (once each) *)
  mutable dropped : int;       (** messages lost; sent = delivered + dropped *)
  mutable duplicated : int;    (** extra stale copies delivered *)
  mutable retransmitted : int; (** sender-side retries routed through this
                                   link (counted by the caller via
                                   {!note_retransmit}; retries also count
                                   in [sent]) *)
}

val fresh_stats : unit -> stats
(** All-zero counters. *)

val add_stats : stats -> stats -> stats
(** Field-wise sum (a fresh record; neither argument is mutated). *)

val total : stats list -> stats
(** Field-wise sum of many links' counters. *)

type t

val create :
  Jury_sim.Engine.t -> rng:Jury_sim.Rng.t -> ?name:string -> profile -> t
(** The channel shares the caller's RNG: with a reliable profile it
    never draws from it, so attaching channels does not perturb seeded
    runs. *)

val name : t -> string
(** The label given at {!create} (defaults to ["chan"]). *)

val stats : t -> stats
(** Live counters — the record mutates as the channel runs. *)

val profile : t -> profile
(** The profile the channel was created with. *)

val send :
  t -> ?footprint:Jury_sim.Footprint.t -> delay:Jury_sim.Time.t ->
  (unit -> unit) ->
  [ `Delivered | `Dropped | `Duplicated ]
(** Offer a message. [`Dropped] means the callback will never run;
    [`Duplicated] means it will run twice (once at [delay] + jitter,
    once later). The delivered-copy count equals
    [delivered + duplicated]. [footprint] is attached to every
    delivered copy's event (see {!Jury_sim.Engine.schedule}); it never
    affects delivery. *)

val note_retransmit : t -> unit
(** Count a sender-side retry against this link (see [stats]). *)

val pp_stats : Format.formatter -> stats -> unit
(** Compact [sent/delivered/dropped/...] rendering. *)
