(** Staged validation pipeline over the {!Jury_par.Pool} domain pool.

    [attach] turns a freshly created validator into a pipeline facade:
    capture/channel keeps running on the main simulation domain, but
    every registration and response delivery becomes an item on a
    bounded per-shard SPSC ring ({!Jury_par.Spsc}), drained by up to
    [jobs - 1] consumer domains into single-shard replica validators.
    Each replica replays the facade's simulated timestamps on a
    private engine, so validation timers fire at the same instants
    they would inline. {!Validator.drain_pipeline} on the facade (or
    {!Validator.flush}, which drains first) sends end-of-stream, joins
    the consumers and merges the replicas back — verdicts, counters
    and still-pending triggers, with no forced decisions — after which
    the facade answers every result accessor with the serial
    validator's answers.

    Rings apply back-pressure: a full ring makes the producer (the
    simulation) spin until the consumer catches up, bounding memory by
    [shards * queue_capacity] items.

    Only {!Deployment.install} should call this, and only behind its
    eligibility gate (no retransmit, adaptive timeout, inflight cap,
    policy rules or trace) — see the implementation notes in
    [stage.ml] for why each gate is load-bearing. *)

val attach :
  ?queue_capacity:int ->
  pool:Jury_par.Pool.t ->
  jobs:int ->
  Validator.config ->
  Validator.t ->
  unit
(** [attach ~pool ~jobs cfg facade] installs pipeline hooks on
    [facade], whose replicas are built from [cfg] (the same validated
    config the facade was created with). [queue_capacity] (default
    1024) is per-shard and rounded up to a power of two. [jobs] is the
    intra-run parallelism budget: [jobs - 1] consumer domains, floored
    at one so [jobs > 1] always pipelines. *)
