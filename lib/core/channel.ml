open Jury_sim

type profile = {
  drop : float;
  duplicate : float;
  jitter_us : float;
}

let reliable = { drop = 0.; duplicate = 0.; jitter_us = 0. }

let lossy ?(drop = 0.) ?(duplicate = 0.) ?(jitter_us = 0.) () =
  let check name p =
    if p < 0. || p > 1. || Float.is_nan p then
      invalid_arg (Printf.sprintf "Channel.lossy: %s must be in [0,1]" name)
  in
  check "drop" drop;
  check "duplicate" duplicate;
  if jitter_us < 0. || Float.is_nan jitter_us then
    invalid_arg "Channel.lossy: jitter_us must be non-negative";
  { drop; duplicate; jitter_us }

let is_reliable p = p.drop = 0. && p.duplicate = 0. && p.jitter_us = 0.

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable retransmitted : int;
}

let fresh_stats () =
  { sent = 0; delivered = 0; dropped = 0; duplicated = 0; retransmitted = 0 }

let add_stats a b =
  { sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped;
    duplicated = a.duplicated + b.duplicated;
    retransmitted = a.retransmitted + b.retransmitted }

let total = List.fold_left add_stats (fresh_stats ())

type t = {
  engine : Engine.t;
  rng : Rng.t;
  profile : profile;
  name : string;
  stats : stats;
}

let create engine ~rng ?(name = "channel") profile =
  { engine; rng; profile; name; stats = fresh_stats () }

let name t = t.name
let stats t = t.stats
let profile t = t.profile

(* The reliable path must stay bit-for-bit identical to a plain
   [Engine.schedule]: one event at exactly [delay], zero RNG draws.
   Every seeded experiment in the repo depends on this. *)
let send t ?footprint ~delay f =
  t.stats.sent <- t.stats.sent + 1;
  if is_reliable t.profile then begin
    t.stats.delivered <- t.stats.delivered + 1;
    ignore (Engine.schedule t.engine ?footprint ~after:delay f);
    `Delivered
  end
  else if t.profile.drop > 0. && Rng.bernoulli t.rng t.profile.drop then begin
    t.stats.dropped <- t.stats.dropped + 1;
    `Dropped
  end
  else begin
    let jitter () =
      if t.profile.jitter_us > 0. then
        Time.of_float_us (Rng.exponential t.rng t.profile.jitter_us)
      else Time.zero
    in
    let delay = Time.add delay (jitter ()) in
    t.stats.delivered <- t.stats.delivered + 1;
    ignore (Engine.schedule t.engine ?footprint ~after:delay f);
    if t.profile.duplicate > 0. && Rng.bernoulli t.rng t.profile.duplicate
    then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      (* The stale copy trails the first by reorder jitter (a fixed
         baseline when the profile has none). *)
      let trail =
        if t.profile.jitter_us > 0. then jitter ()
        else Time.of_float_us (Rng.exponential t.rng 25.)
      in
      ignore (Engine.schedule t.engine ?footprint ~after:(Time.add delay trail) f);
      `Duplicated
    end
    else `Delivered
  end

let note_retransmit t = t.stats.retransmitted <- t.stats.retransmitted + 1

let pp_stats fmt s =
  Format.fprintf fmt
    "sent=%d delivered=%d dropped=%d duplicated=%d retransmitted=%d" s.sent
    s.delivered s.dropped s.duplicated s.retransmitted
