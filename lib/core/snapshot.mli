(** Succinct per-controller state snapshots.

    Each JURY controller module keeps a running snapshot of the cache
    events its node has observed, and attaches it to every message sent
    to the validator. Equality of snapshots is the validator's test for
    "replicas with equivalent network view" (§IV-C A). The digest is an
    order-insensitive XOR of event fingerprints, because eventually-
    consistent stores apply the same events in different orders at
    different nodes. *)

type t

val pristine : t
(** The snapshot of a node that has observed nothing. *)

val observe : t -> Jury_store.Event.t -> t
(** The snapshot after additionally seeing one replicated store event
    (persistent — the input snapshot is unchanged). *)

val count : t -> int
(** Events folded into this snapshot. *)

val equal : t -> t -> bool
(** Whether two reporters had observed the same event history — the
    comparison at the heart of state-aware consensus. *)

val compare : t -> t -> int
(** A total order consistent with {!equal}, for sorting and keying. *)

val pp : Format.formatter -> t -> unit
(** Digest-style rendering, e.g. ["<7 events:a1b2c3>"]. *)
