module Trace = Jury_obs.Trace
module Span = Jury_obs.Span
module Metrics = Jury_sim.Metrics

let record_phase_series ?(prefix = "span/") trace metrics =
  let roots = Span.assemble (Trace.events trace) in
  List.iter
    (fun root ->
      match Span.duration_ns root with
      | None -> () (* still open: trigger never reached a verdict *)
      | Some total_ns ->
          Metrics.record metrics (prefix ^ "total")
            (float_of_int total_ns /. 1e6);
          List.iter
            (fun (phase, ms) ->
              Metrics.record metrics (prefix ^ Trace.phase_name phase) ms)
            (Span.phase_breakdown_ms root))
    roots

let record_validator_shards ?(prefix = "validator/") v metrics =
  List.iter
    (fun (s : Validator.shard_stats) ->
      let bump field v =
        Metrics.incr metrics ~by:v
          (Printf.sprintf "%sshard%d/%s" prefix s.Validator.shard_index field)
      in
      bump "pending" s.Validator.shard_pending;
      bump "decided" s.Validator.shard_decided;
      bump "faults" s.Validator.shard_faults;
      bump "batches" s.Validator.shard_batches;
      bump "batch-responses" s.Validator.shard_batch_responses;
      bump "overloads" s.Validator.shard_overloads;
      bump "retransmits" s.Validator.shard_retransmits;
      bump "live-epochs" s.Validator.shard_live_epochs)
    (Validator.shard_stats v);
  Metrics.incr metrics ~by:(Validator.current_epoch v) (prefix ^ "epoch")

let record_channel_counters ?(prefix = "channel/") stats metrics =
  List.iter
    (fun (name, (s : Channel.stats)) ->
      let bump field v = Metrics.incr metrics ~by:v (prefix ^ name ^ field) in
      bump "/sent" s.Channel.sent;
      bump "/delivered" s.Channel.delivered;
      bump "/dropped" s.Channel.dropped;
      bump "/duplicated" s.Channel.duplicated;
      bump "/retransmitted" s.Channel.retransmitted)
    stats
