module Types = Jury_controller.Types

type fault =
  | Consensus_mismatch
  | Response_timeout
  | Cache_without_network
  | Network_without_cache
  | Cache_network_mismatch
  | Policy_violation of string

type verdict =
  | Ok_valid
  | Ok_non_deterministic
  | Ok_unverifiable
  | Ok_degraded
  | Overload
  | Faulty of fault list

type t = {
  taint : Types.Taint.t;
  trigger_at : Jury_sim.Time.t;
  decided_at : Jury_sim.Time.t;
  primary : int option;
  suspects : int list;
  term : int;
  verdict : verdict;
  detail : string;
}

let detection_time t = Jury_sim.Time.sub t.decided_at t.trigger_at
let is_fault t = match t.verdict with Faulty _ -> true | _ -> false

let fault_name = function
  | Consensus_mismatch -> "consensus-mismatch"
  | Response_timeout -> "response-timeout"
  | Cache_without_network -> "cache-without-network"
  | Network_without_cache -> "network-without-cache"
  | Cache_network_mismatch -> "cache-network-mismatch"
  | Policy_violation rule -> "policy-violation:" ^ rule

let verdict_name = function
  | Ok_valid -> "ok"
  | Ok_non_deterministic -> "ok-nondet"
  | Ok_unverifiable -> "ok-unverifiable"
  | Ok_degraded -> "ok-degraded"
  | Overload -> "overload"
  | Faulty faults -> String.concat "+" (List.map fault_name faults)

let pp fmt t =
  Format.fprintf fmt "%s tau=%a det=%a suspects=[%s]%s%s"
    (verdict_name t.verdict) Types.Taint.pp t.taint Jury_sim.Time.pp
    (detection_time t)
    (String.concat "," (List.map string_of_int t.suspects))
    (if t.term > 0 then Printf.sprintf " term=%d" t.term else "")
    (if t.detail = "" then "" else " " ^ t.detail)
