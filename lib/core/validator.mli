(** The out-of-band validator — Algorithm 1 of the paper.

    Receives the response stream from every JURY controller module and
    replicator, groups responses by trigger taint τ, and decides each
    trigger's verdict when its response set is complete or its
    validation timer θτ expires:

    + {b CONSENSUS}: the primary's planned response must match the
      majority of replicated executions among secondaries whose state
      snapshot equals the primary's (state-aware consensus, §IV-C A).
      All-distinct responses are labelled non-deterministic and pass
      (§IV-C B).
    + {b SANITY_CHECK}: FLOWSDB cache updates and intercepted FLOW_MOD
      network writes must correspond one-to-one (T2 detection).
    + {b POLICY_CHECK}: the primary's response is evaluated against the
      administrator's policy rules (T3 detection).

    A missing primary response at timer expiry is a response-omission /
    timing fault attributed to the primary (§IV-C C). *)

module Types = Jury_controller.Types

type retransmit = {
  fraction : float;
      (** first retry fires after [fraction]·θτ; in (0, 1] *)
  backoff : float;  (** multiplier between retries; >= 1 *)
  max_retries : int;  (** retry cap per straggling secondary *)
}

type config = {
  k : int;                     (** replication factor *)
  timeout : Jury_sim.Time.t;   (** validation timeout θτ (the maximum,
                                   when adaptive) *)
  adaptive_timeout : bool;
      (** size θτ from recent completion latencies, RTO-style
          (srtt + 4·rttvar) — the §VIII-1 extension the paper leaves to
          future work *)
  min_timeout : Jury_sim.Time.t;
  state_aware : bool;
      (** restrict consensus to equal-snapshot replicas; [false] gives
          the naive-majority ablation *)
  nondet_rule : bool;
      (** all-distinct ⇒ non-faulty; [false] for ablation *)
  policies : Jury_policy.Engine.t;
  master_lookup : Jury_openflow.Of_types.Dpid.t -> int option;
      (** for the policy engine's local/remote destination attribute *)
  term_lookup : unit -> int;
      (** current leadership term, stamped into each pending trigger at
          registration (and onto its alarm); [fun () -> 0] when
          election is disabled *)
  ack_peers_of : int -> int list;
      (** the static peers whose cache-event acks the validator expects
          for writes originating at a given node *)
  retransmit : retransmit option;
      (** when set, a secondary that has not responded by
          [fraction]·θτ gets the trigger re-replicated (via
          {!set_retransmit_handler}), with exponential backoff up to
          [max_retries] rounds; [None] = seed behaviour *)
  degraded_quorum : int option;
      (** when set, a timed-out external trigger whose arrived
          equivalent-view responses all agree — and number at least
          this quorum — is decided [Ok_degraded] instead of raising a
          response-timeout alarm; [None] = seed behaviour *)
  shards : int;
      (** verdict-state shards; taints hash to a shard, each shard owns
          its pending table, retransmission timer wheel, epoch buckets
          and verdict counters. Always a power of two; 1 = the seed's
          flat table *)
  max_inflight : int option;
      (** high-water mark on in-flight (undecided) triggers; when
          registration would exceed it the oldest epoch is force-expired
          with {!Alarm.Overload} verdicts instead of growing without
          bound. [None] = unbounded (seed behaviour) *)
}

val shards_of_hint : int -> int
(** [max 1 (next_pow2 hint)] — the normalisation {!config} applies to
    its [shards] hint, exported so literal record constructors agree. *)

type t

val create : Jury_sim.Engine.t -> config -> t
(** A fresh validator with all counters at zero; timers are scheduled
    on the given engine. *)

val register_external :
  t -> taint:Types.Taint.t -> at:Jury_sim.Time.t -> primary:int ->
  secondaries:int list -> unit
(** The replicator announces an intercepted external trigger: which
    replica is primary and which secondaries received the replica. The
    validation timer starts here. *)

val reattribute :
  t -> taint:Types.Taint.t -> primary:int -> term:int -> bool
(** Mid-flight leadership change: the in-flight trigger's primary died
    and the replicator is re-driving the trigger at the new master.
    Moves the attribution to [primary], stamps [term] (carried onto
    the eventual alarm), and restarts the validation timer so the
    trigger is judged on the new master's responses instead of timing
    out against the dead one. Returns [false] (and does nothing) when
    the trigger is unknown or already decided. *)

val deliver : t -> Response.t -> unit
(** A response arrives on the out-of-band channel. *)

val deliver_batch : t -> Response.t list -> unit
(** Deliver a whole simulated tick's worth of responses in one call:
    the batch is partitioned by shard (arrival order preserved within
    each shard) and each non-empty shard ingests its sub-batch in one
    go, bumping that shard's batch counters. [deliver_batch t [r]] and
    [deliver t r] drive identical state transitions. *)

val set_alarm_handler : t -> (Alarm.t -> unit) -> unit
(** Called for every {e faulty} verdict, at decision time. *)

val set_verdict_handler : t -> (Alarm.t -> unit) -> unit
(** Called for every verdict, faulty or not. *)

val set_retransmit_handler : t -> (Types.Taint.t -> secondary:int -> unit) -> unit
(** Called once per straggling secondary per retry round when
    [config.retransmit] is set; the deployment re-replicates the stored
    trigger over its (lossy) channel. Default: no-op. *)

val on_response : t -> (Response.t -> unit) -> unit
(** Append an observer invoked for every delivered response (audit
    trail, metrics); observers never affect validation. *)

val on_verdict : t -> (Alarm.t -> unit) -> unit
(** Append a verdict observer (in addition to the handlers above). *)

(** {1 Results} *)

val verdicts : t -> Alarm.t list
(** All decided verdicts, oldest first. *)

val alarms : t -> Alarm.t list
(** Only the faulty ones. *)

val detection_times_ms : t -> float array
(** Detection time (trigger → decision) of every decided trigger, ms. *)

val decided_count : t -> int
(** Verdicts reached so far ([= List.length (verdicts t)]). *)

val total_decided : unit -> int
(** Process-wide decided-verdict count, summed over every validator on
    every domain (parallel experiment sweeps run one validator per pool
    task). The bench records per-experiment deltas of this in its
    [--json] output. *)

val fault_count : t -> int
(** Faulty verdicts ([= List.length (alarms t)]). *)

val pending_count : t -> int
(** Registered triggers not yet decided. *)

val unverifiable_count : t -> int
(** Verdicts decided [Ok_unverifiable] (identical-but-wrong k copies
    cannot be distinguished from correct ones). *)

val degraded_count : t -> int
(** Triggers decided [Ok_degraded] (reduced quorum). *)

val duplicate_count : t -> int
(** Responses discarded as stale channel duplicates. *)

val late_count : t -> int
(** Responses that arrived after their trigger was already decided. *)

val retransmit_count : t -> int
(** Retransmission requests issued (per secondary, per round). *)

val reattributed_count : t -> int
(** In-flight triggers whose attribution moved to a new master after a
    leadership change ({!reattribute}). *)

val straggler_count : t -> int
(** Secondary slots that never produced an execution response by
    decision time, summed over all decided triggers. *)

val overload_count : t -> int
(** Triggers force-expired with an {!Alarm.Overload} verdict at the
    [max_inflight] high-water mark, summed over shards. *)

val batch_count : t -> int
(** Per-shard batches ingested via {!deliver_batch}. *)

val batched_response_count : t -> int
(** Responses that arrived inside a {!deliver_batch} call. *)

val total_batches : unit -> int
(** Process-wide {!batch_count}, same contract as {!total_decided}. *)

val total_overloads : unit -> int
(** Process-wide {!overload_count}, same contract as
    {!total_decided}. *)

val current_epoch : t -> int
(** The registration epoch currently being filled. *)

(** {1 Shard introspection} *)

val shard_count : t -> int
(** Number of verdict-state shards ([config.shards]). *)

type shard_stats = {
  shard_index : int;
  shard_pending : int;  (** in-flight triggers owned by this shard *)
  shard_decided : int;
  shard_faults : int;
  shard_batches : int;
  shard_batch_responses : int;
  shard_overloads : int;
  shard_retransmits : int;
  shard_retry_armed : int;  (** retry timers live in this shard's wheel *)
  shard_live_epochs : int;  (** epoch buckets not yet bulk-freed *)
}

val shard_stats : t -> shard_stats list
(** One entry per shard, in shard order — the fan-out evidence the
    bench's [--json] report and {!Obs_bridge.record_validator_shards}
    surface. *)

val flush : t -> unit
(** Force-decide everything still pending (end of an experiment).
    Shards flush in index order; each shard's table is folded exactly
    like the seed's single flat table. *)

val current_timeout_value : t -> Jury_sim.Time.t
(** The θτ a trigger registered now would get (adaptive or fixed). *)

(** {1 Staged-pipeline plumbing}

    Used by {!Stage} to run validation on shard-replica validators
    owned by consumer domains while this validator stays the facade
    the deployment and the experiment layer talk to. Not a general
    extension point: the hooks divert {!register_external},
    {!deliver}/{!deliver_batch} and {!flush} wholesale, and the stage
    merges replica state back with {!absorb_pipeline_shard} +
    {!finalize_pipeline_merge} before any result accessor is read. *)

type pipeline_hooks = {
  pl_register :
    taint:Types.Taint.t -> at:Jury_sim.Time.t -> primary:int ->
    secondaries:int list -> unit;
  pl_batch : at:Jury_sim.Time.t -> Response.t list -> unit;
  pl_drain : at:Jury_sim.Time.t -> unit;
}

val set_pipeline_hooks : t -> pipeline_hooks -> unit
(** Divert ingestion into the hooks. While they are installed the
    alarm/verdict handlers and response observers of this validator do
    {e not} fire (replica verdicts surface only through the merged
    result accessors) — deployments gate the pipeline on
    configurations that install none.

    {!drain_pipeline} (or {!flush}, which starts with it) clears the
    hooks so the facade's own state, once merged, is read out through
    the normal accessors. *)

val drain_pipeline : t -> unit
(** End-of-run barrier for a pipelined validator: stop the consumers
    via [pl_drain], which merges every shard replica back into this
    facade — decided verdicts, counters, and still-pending triggers
    alike, with {e no} forced decisions (the serial validator's state
    at the same instant). No-op when no hooks are installed, so
    callers may invoke it unconditionally before reading results. *)

val observe_mirror : t -> Response.t -> unit
(** Apply a response's FLOWSDB cache update (if any) to this
    validator's flow mirror without validating it — how a shard
    replica tracks writes owned by {e other} shards so its sanity
    check sees the same mirror as the serial validator. *)

val shard_of_key : t -> string -> int
(** The shard a taint key hashes to (see {!Response.taint_key}). *)

val absorb_pipeline_shard : t -> shard:int -> t -> unit
(** [absorb_pipeline_shard t ~shard rep] folds single-shard replica
    [rep]'s counters, registration count, verdicts and pending (still
    undecided) triggers into [t]'s shard [shard]. Call once per
    replica after its consumer has finished. *)

val finalize_pipeline_merge : t -> unit
(** After all replicas are absorbed: rebuild the epoch cursor and sort
    the merged verdict stream into a deterministic decision order. *)
