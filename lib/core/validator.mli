(** The out-of-band validator — Algorithm 1 of the paper.

    Receives the response stream from every JURY controller module and
    replicator, groups responses by trigger taint τ, and decides each
    trigger's verdict when its response set is complete or its
    validation timer θτ expires:

    + {b CONSENSUS}: the primary's planned response must match the
      majority of replicated executions among secondaries whose state
      snapshot equals the primary's (state-aware consensus, §IV-C A).
      All-distinct responses are labelled non-deterministic and pass
      (§IV-C B).
    + {b SANITY_CHECK}: FLOWSDB cache updates and intercepted FLOW_MOD
      network writes must correspond one-to-one (T2 detection).
    + {b POLICY_CHECK}: the primary's response is evaluated against the
      administrator's policy rules (T3 detection).

    A missing primary response at timer expiry is a response-omission /
    timing fault attributed to the primary (§IV-C C). *)

module Types = Jury_controller.Types

type retransmit = {
  fraction : float;
      (** first retry fires after [fraction]·θτ; in (0, 1] *)
  backoff : float;  (** multiplier between retries; >= 1 *)
  max_retries : int;  (** retry cap per straggling secondary *)
}

val retransmit :
  ?fraction:float -> ?backoff:float -> ?max_retries:int -> unit -> retransmit
(** Defaults: fraction 0.4, backoff 2.0, max_retries 2 — i.e. retries
    at 0.4·θτ and 1.2·θτ after registration. Raises [Invalid_argument]
    on out-of-range values. *)

type config = {
  k : int;                     (** replication factor *)
  timeout : Jury_sim.Time.t;   (** validation timeout θτ (the maximum,
                                   when adaptive) *)
  adaptive_timeout : bool;
      (** size θτ from recent completion latencies, RTO-style
          (srtt + 4·rttvar) — the §VIII-1 extension the paper leaves to
          future work *)
  min_timeout : Jury_sim.Time.t;
  state_aware : bool;
      (** restrict consensus to equal-snapshot replicas; [false] gives
          the naive-majority ablation *)
  nondet_rule : bool;
      (** all-distinct ⇒ non-faulty; [false] for ablation *)
  policies : Jury_policy.Engine.t;
  master_lookup : Jury_openflow.Of_types.Dpid.t -> int option;
      (** for the policy engine's local/remote destination attribute *)
  ack_peers_of : int -> int list;
      (** the static peers whose cache-event acks the validator expects
          for writes originating at a given node *)
  retransmit : retransmit option;
      (** when set, a secondary that has not responded by
          [fraction]·θτ gets the trigger re-replicated (via
          {!set_retransmit_handler}), with exponential backoff up to
          [max_retries] rounds; [None] = seed behaviour *)
  degraded_quorum : int option;
      (** when set, a timed-out external trigger whose arrived
          equivalent-view responses all agree — and number at least
          this quorum — is decided [Ok_degraded] instead of raising a
          response-timeout alarm; [None] = seed behaviour *)
}

val config :
  ?state_aware:bool -> ?nondet_rule:bool -> ?adaptive_timeout:bool ->
  ?min_timeout:Jury_sim.Time.t ->
  ?policies:Jury_policy.Engine.t ->
  ?master_lookup:(Jury_openflow.Of_types.Dpid.t -> int option) ->
  ?ack_peers_of:(int -> int list) ->
  ?retransmit:retransmit -> ?degraded_quorum:int ->
  k:int -> timeout:Jury_sim.Time.t ->
  unit -> config

type t

val create : Jury_sim.Engine.t -> config -> t

val register_external :
  t -> taint:Types.Taint.t -> at:Jury_sim.Time.t -> primary:int ->
  secondaries:int list -> unit
(** The replicator announces an intercepted external trigger: which
    replica is primary and which secondaries received the replica. The
    validation timer starts here. *)

val deliver : t -> Response.t -> unit
(** A response arrives on the out-of-band channel. *)

val set_alarm_handler : t -> (Alarm.t -> unit) -> unit
(** Called for every {e faulty} verdict, at decision time. *)

val set_verdict_handler : t -> (Alarm.t -> unit) -> unit
(** Called for every verdict, faulty or not. *)

val set_retransmit_handler : t -> (Types.Taint.t -> secondary:int -> unit) -> unit
(** Called once per straggling secondary per retry round when
    [config.retransmit] is set; the deployment re-replicates the stored
    trigger over its (lossy) channel. Default: no-op. *)

val on_response : t -> (Response.t -> unit) -> unit
(** Append an observer invoked for every delivered response (audit
    trail, metrics); observers never affect validation. *)

val on_verdict : t -> (Alarm.t -> unit) -> unit
(** Append a verdict observer (in addition to the handlers above). *)

(** {1 Results} *)

val verdicts : t -> Alarm.t list
(** All decided verdicts, oldest first. *)

val alarms : t -> Alarm.t list
(** Only the faulty ones. *)

val detection_times_ms : t -> float array
(** Detection time (trigger → decision) of every decided trigger, ms. *)

val decided_count : t -> int

val total_decided : unit -> int
(** Process-wide decided-verdict count, summed over every validator on
    every domain (parallel experiment sweeps run one validator per pool
    task). The bench records per-experiment deltas of this in its
    [--json] output. *)

val fault_count : t -> int
val pending_count : t -> int
val unverifiable_count : t -> int

val degraded_count : t -> int
(** Triggers decided [Ok_degraded] (reduced quorum). *)

val duplicate_count : t -> int
(** Responses discarded as stale channel duplicates. *)

val late_count : t -> int
(** Responses that arrived after their trigger was already decided. *)

val retransmit_count : t -> int
(** Retransmission requests issued (per secondary, per round). *)

val straggler_count : t -> int
(** Secondary slots that never produced an execution response by
    decision time, summed over all decided triggers. *)

val flush : t -> unit
(** Force-decide everything still pending (end of an experiment). *)

val current_timeout_value : t -> Jury_sim.Time.t
(** The θτ a trigger registered now would get (adaptive or fixed). *)
