(** The one front door for configuring a JURY deployment.

    [Jury_config.make] is a validated builder covering every knob that
    used to be scattered across [Validator.config] record literals,
    [Channel] profile parameters and [Validator.retransmit]:
    replication factor, timeouts, consensus ablations, policies,
    channel loss model, retransmission, degraded quorum, and the
    sharded/bounded validator introduced with it ([shards],
    [max_inflight], [batch]). The old record types remain public as the
    internal representation (and for record-literal construction in
    equivalence tests); their smart constructors are deprecated in
    favour of this module.

    A [Jury_config.make ()] with no arguments reproduces the seed
    deployment (k = 2) byte-for-byte. *)

type t
(** An immutable, validated configuration. *)

val make :
  ?k:int ->
  ?timeout:Jury_sim.Time.t ->
  ?adaptive_timeout:bool ->
  ?state_aware:bool ->
  ?nondet_rule:bool ->
  ?random_secondaries:bool ->
  ?policies:Jury_policy.Engine.t ->
  ?encapsulation:bool ->
  ?channel:Channel.profile ->
  ?drop:float ->
  ?duplicate:float ->
  ?jitter_us:float ->
  ?retransmit:Validator.retransmit ->
  ?degraded_quorum:int ->
  ?shards:int ->
  ?max_inflight:int ->
  ?batch:Jury_sim.Time.t ->
  ?deterministic_latencies:bool ->
  ?pipeline_jobs:int ->
  ?election:Jury_controller.Cluster.election_config ->
  unit -> t
(** Defaults match the seed: k 2, timeout 150 ms (800 ms when
    [encapsulation]), fixed timeout, state-aware consensus and the
    non-determinism rule on, random secondaries, no policies, reliable
    channel, no retransmission, no degraded quorum, 1 validator shard,
    unbounded in-flight state, per-event ingestion.

    The channel may be given either as a prebuilt [?channel] profile or
    inline via [?drop]/[?duplicate]/[?jitter_us] (validated through
    {!Channel.lossy}); passing both is an error. [shards] is a hint,
    rounded up to the next power of two. Raises [Invalid_argument] on
    any out-of-range value.

    A [?policies] rule set is compiled here, once, into the
    {!Jury_policy.Compiled} decision structure the validator consults
    per response (memoised on the engine; see
    {!Jury_policy.Engine.compiled}).

    [deterministic_latencies] (default false) pins the replication and
    response-collection links to their base latencies — their jitter
    RNGs are never drawn — and forces [random_secondaries:false], so
    the replicator consumes no randomness at all. Pair it with
    {!Jury_controller.Profile.deterministic} to make a whole deployment
    jitter-free; the [Jury_mc] schedule explorer requires such a
    configuration (see DESIGN.md).

    [pipeline_jobs] (default 1) > 1 runs validation as a staged
    pipeline over the domain pool (see {!Stage} and DESIGN.md
    "Staged validation pipeline"): raises [Invalid_argument] when
    combined with [retransmit], [adaptive_timeout], [max_inflight] or
    a non-empty [policies] set; defaults [batch] to 200 µs when unset
    and requires it below the timeout. [pipeline_jobs:1] is the serial
    oracle path, byte-identical to the seed.

    [election] (default [None]) enables dynamic master election and
    mid-run failover re-attribution — see the [election] field of
    {!Deployment.config} and {!election}. Rejected with
    [pipeline_jobs > 1]. *)

val retransmit :
  ?fraction:float -> ?backoff:float -> ?max_retries:int -> unit ->
  Validator.retransmit
(** Validated retransmission policy (defaults: first retry at 0.4·θτ,
    backoff 2.0, 2 rounds) — the facade's replacement for the
    deprecated [Validator.retransmit]. *)

val lossy_channel :
  ?drop:float -> ?duplicate:float -> ?jitter_us:float -> unit ->
  Channel.profile
(** Re-export of {!Channel.lossy} so callers can build a profile
    without leaving the facade. *)

val election :
  ?period:Jury_sim.Time.t -> ?timeout_beats:int -> unit ->
  Jury_controller.Cluster.election_config
(** Validated election tuning (defaults: 100 ms beat period, 3 missed
    beats to declare a node dead). Raises [Invalid_argument] on a
    non-positive period or [timeout_beats < 1]. *)

val deployment : t -> Deployment.config
(** The deployment record this configuration denotes — what
    {!Deployment.install} consumes. *)

val validator :
  ?min_timeout:Jury_sim.Time.t ->
  ?master_lookup:(Jury_openflow.Of_types.Dpid.t -> int option) ->
  ?term_lookup:(unit -> int) ->
  ?ack_peers_of:(int -> int list) ->
  t -> Validator.config
(** A bare validator configuration carrying this facade's knobs, for
    driving a {!Validator.t} without a deployment (tests, offline
    replay). The closures default like the historical
    [Validator.config] smart constructor. *)

val install : Jury_controller.Cluster.t -> t -> Deployment.t
(** [install cluster t] = [Deployment.install cluster (deployment t)]. *)

(** {1 Accessors} *)

val k : t -> int
(** Replication factor. *)

val timeout : t -> Jury_sim.Time.t
(** Validation timeout θτ (after adaptive/encapsulation adjustments). *)

val shards : t -> int
(** Normalised shard count (power of two). *)

val max_inflight : t -> int option
(** In-flight trigger bound, [None] = unbounded. *)

val batch_window : t -> Jury_sim.Time.t option
(** Response batching window, [None] = per-event ingestion. *)

val channel : t -> Channel.profile
(** Out-of-band channel profile the deployment will use. *)

val pipeline_jobs : t -> int
(** Intra-run pipeline parallelism (1 = serial oracle path). *)

val election_of : t -> Jury_controller.Cluster.election_config option
(** Election tuning, [None] when leadership is static. *)
