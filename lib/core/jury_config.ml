(* The sole construction path for deployment and validator configs:
   the pre-facade smart constructors were deleted (deprecated PR 4,
   removed PR 9), so their validation logic lives here and the records
   are built as literals. Documented in DESIGN.md ("Deprecation
   policy"). *)

open Jury_sim

(* Internal representation: the historical deployment record, so the
   facade adds no translation layer and `deployment` is the identity. *)
type t = Deployment.config

let retransmit ?(fraction = 0.4) ?(backoff = 2.0) ?(max_retries = 2) () =
  if not (fraction > 0. && fraction <= 1.) then
    invalid_arg "Jury_config.retransmit: fraction must be in (0, 1]";
  if not (backoff >= 1.) then
    invalid_arg "Jury_config.retransmit: backoff must be >= 1";
  if max_retries < 0 then
    invalid_arg "Jury_config.retransmit: max_retries must be >= 0";
  { Validator.fraction; backoff; max_retries }

let lossy_channel = Channel.lossy

let election ?(period = Time.ms 100) ?(timeout_beats = 3) () =
  if not Time.(period > zero) then
    invalid_arg "Jury_config.election: period must be positive";
  if timeout_beats < 1 then
    invalid_arg "Jury_config.election: timeout_beats must be >= 1";
  { Jury_controller.Cluster.period; timeout_beats }

let make ?(k = 2) ?timeout ?(adaptive_timeout = false) ?(state_aware = true)
    ?(nondet_rule = true) ?random_secondaries ?policies
    ?(encapsulation = false) ?channel ?drop ?duplicate ?jitter_us ?retransmit
    ?degraded_quorum ?(shards = 1) ?max_inflight ?batch
    ?(deterministic_latencies = false) ?(pipeline_jobs = 1) ?election () =
  if k < 0 then invalid_arg "Jury_config.make: k must be >= 0";
  let policies =
    match policies with Some p -> p | None -> Jury_policy.Engine.create []
  in
  (* Compile the policy set here, once, so the validator's per-response
     checks hit a warm decision structure (and so a config shared
     across worker domains shares a read-only compiled view instead of
     racing to build it). *)
  ignore (Jury_policy.Engine.compiled policies);
  let channel =
    match (channel, drop, duplicate, jitter_us) with
    | Some c, None, None, None -> c
    | Some _, _, _, _ ->
        invalid_arg
          "Jury_config.make: pass either ~channel or ~drop/~duplicate/~jitter_us, not both"
    | None, None, None, None -> Channel.reliable
    | None, _, _, _ -> Channel.lossy ?drop ?duplicate ?jitter_us ()
  in
  (* Deterministic latencies pin both out-of-band links to their base
     delays (and skip their RNG draws entirely) and replace randomly
     sampled secondaries with the static peer set — the replicator then
     consumes no randomness at all, which the schedule explorer's
     dependence relation relies on. *)
  let random_secondaries =
    if deterministic_latencies then false
    else Option.value random_secondaries ~default:true
  in
  let validator_jitter_us = if deterministic_latencies then 0. else 60. in
  let replication_jitter_us = if deterministic_latencies then 0. else 80. in
  let timeout =
    match timeout with
    | Some t -> t
    | None -> if encapsulation then Time.ms 800 else Time.ms 150
  in
  if shards < 1 then invalid_arg "Jury_config.make: shards must be >= 1";
  (match max_inflight with
  | Some m when m < 1 ->
      invalid_arg "Jury_config.make: max_inflight must be >= 1"
  | _ -> ());
  (match batch with
  | Some w when not Time.(w > zero) ->
      invalid_arg "Jury_config.make: batch window must be positive"
  | _ -> ());
  if pipeline_jobs < 1 then
    invalid_arg "Jury_config.make: pipeline_jobs must be >= 1";
  (* The staged pipeline runs validation off the main domain; every
     feature that feeds verdict state back into the capture/channel
     stage (or reads live cluster state from a replica) is rejected
     up front rather than silently degraded. *)
  let batch =
    if pipeline_jobs > 1 then begin
      if retransmit <> None then
        invalid_arg "Jury_config.make: pipeline_jobs > 1 excludes retransmit";
      if adaptive_timeout then
        invalid_arg
          "Jury_config.make: pipeline_jobs > 1 excludes adaptive_timeout";
      if max_inflight <> None then
        invalid_arg "Jury_config.make: pipeline_jobs > 1 excludes max_inflight";
      if Jury_policy.Engine.rule_count policies > 0 then
        invalid_arg "Jury_config.make: pipeline_jobs > 1 excludes policy rules";
      if election <> None then
        invalid_arg "Jury_config.make: pipeline_jobs > 1 excludes election";
      let batch = match batch with None -> Time.us 200 | Some w -> w in
      if not Time.(batch < timeout) then
        invalid_arg
          "Jury_config.make: pipeline batch window must be below the \
           validation timeout";
      Some batch
    end
    else batch
  in
  { Deployment.k;
    timeout;
    adaptive_timeout;
    state_aware;
    nondet_rule;
    random_secondaries;
    policies;
    validator_latency = Time.us 120;
    validator_jitter_us;
    replication_latency = Time.us 200;
    replication_jitter_us;
    chatter_cost = Time.us 13;
    chatter_bytes = 96;
    encapsulation;
    channel;
    retransmit;
    degraded_quorum;
    shards = Validator.shards_of_hint shards;
    max_inflight;
    batch_window = batch;
    pipeline_jobs;
    election }

let deployment t = t

let validator ?(min_timeout = Time.ms 10) ?(master_lookup = fun _ -> None)
    ?(term_lookup = fun () -> 0) ?(ack_peers_of = fun _ -> []) (t : t) =
  (match t.Deployment.degraded_quorum with
  | Some q when q < 1 ->
      invalid_arg "Jury_config.validator: degraded_quorum must be >= 1"
  | _ -> ());
  { Validator.k = t.Deployment.k;
    timeout = t.Deployment.timeout;
    adaptive_timeout = t.Deployment.adaptive_timeout;
    min_timeout;
    state_aware = t.Deployment.state_aware;
    nondet_rule = t.Deployment.nondet_rule;
    policies = t.Deployment.policies;
    master_lookup;
    term_lookup;
    ack_peers_of;
    retransmit = t.Deployment.retransmit;
    degraded_quorum = t.Deployment.degraded_quorum;
    shards = Validator.shards_of_hint t.Deployment.shards;
    max_inflight = t.Deployment.max_inflight }

let install cluster t = Deployment.install cluster (deployment t)

let k (t : t) = t.Deployment.k
let timeout (t : t) = t.Deployment.timeout
let shards (t : t) = t.Deployment.shards
let max_inflight (t : t) = t.Deployment.max_inflight
let batch_window (t : t) = t.Deployment.batch_window
let channel (t : t) = t.Deployment.channel
let pipeline_jobs (t : t) = t.Deployment.pipeline_jobs
let election_of (t : t) = t.Deployment.election
