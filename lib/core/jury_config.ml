(* The one module allowed to call the deprecated record smart
   constructors it replaces: this facade IS their successor. Documented
   in DESIGN.md ("Deprecation policy") — keep this allowlist to exactly
   this module plus the test that pins facade/record equivalence. *)
[@@@alert "-deprecated"]

(* Internal representation: the historical deployment record, so the
   facade adds no translation layer and `deployment` is the identity. *)
type t = Deployment.config

let retransmit = Validator.retransmit

let lossy_channel = Channel.lossy

let make ?(k = 2) ?timeout ?adaptive_timeout ?state_aware ?nondet_rule
    ?random_secondaries ?policies ?encapsulation ?channel ?drop ?duplicate
    ?jitter_us ?retransmit ?degraded_quorum ?shards ?max_inflight ?batch
    ?(deterministic_latencies = false) ?pipeline_jobs () =
  if k < 0 then invalid_arg "Jury_config.make: k must be >= 0";
  (* Compile the policy set here, once, so the validator's per-response
     checks hit a warm decision structure (and so a config shared
     across worker domains shares a read-only compiled view instead of
     racing to build it). *)
  Option.iter
    (fun p -> ignore (Jury_policy.Engine.compiled p))
    policies;
  let channel =
    match (channel, drop, duplicate, jitter_us) with
    | Some c, None, None, None -> Some c
    | Some _, _, _, _ ->
        invalid_arg
          "Jury_config.make: pass either ~channel or ~drop/~duplicate/~jitter_us, not both"
    | None, None, None, None -> None
    | None, _, _, _ -> Some (Channel.lossy ?drop ?duplicate ?jitter_us ())
  in
  (* Deterministic latencies pin both out-of-band links to their base
     delays (and skip their RNG draws entirely) and replace randomly
     sampled secondaries with the static peer set — the replicator then
     consumes no randomness at all, which the schedule explorer's
     dependence relation relies on. *)
  let random_secondaries =
    if deterministic_latencies then Some false else random_secondaries
  in
  if deterministic_latencies then
    Deployment.config ?timeout ?adaptive_timeout ?state_aware ?nondet_rule
      ?random_secondaries ?policies ?encapsulation ?channel ?retransmit
      ?degraded_quorum ?shards ?max_inflight ?batch ~validator_jitter_us:0.
      ~replication_jitter_us:0. ?pipeline_jobs ~k ()
  else
    Deployment.config ?timeout ?adaptive_timeout ?state_aware ?nondet_rule
      ?random_secondaries ?policies ?encapsulation ?channel ?retransmit
      ?degraded_quorum ?shards ?max_inflight ?batch ?pipeline_jobs ~k ()

let deployment t = t

let validator ?min_timeout ?master_lookup ?ack_peers_of (t : t) =
  Validator.config ~state_aware:t.Deployment.state_aware
    ~nondet_rule:t.Deployment.nondet_rule
    ~adaptive_timeout:t.Deployment.adaptive_timeout ?min_timeout
    ~policies:t.Deployment.policies ?master_lookup ?ack_peers_of
    ?retransmit:t.Deployment.retransmit
    ?degraded_quorum:t.Deployment.degraded_quorum
    ~shards:t.Deployment.shards ?max_inflight:t.Deployment.max_inflight
    ~k:t.Deployment.k ~timeout:t.Deployment.timeout ()

let install cluster t = Deployment.install cluster (deployment t)

let k (t : t) = t.Deployment.k
let timeout (t : t) = t.Deployment.timeout
let shards (t : t) = t.Deployment.shards
let max_inflight (t : t) = t.Deployment.max_inflight
let batch_window (t : t) = t.Deployment.batch_window
let channel (t : t) = t.Deployment.channel
let pipeline_jobs (t : t) = t.Deployment.pipeline_jobs
