(** The distributed data store shared by a controller cluster.

    One [t] models the whole data-distribution platform (Hazelcast for
    ONOS, Infinispan for ODL): per-node cache views, write replication
    under an {!consistency} model, listener dispatch, inter-node byte
    accounting, and the fault hooks the paper's scenarios need (cache
    locking, node partition).

    Replication model:
    - [Eventual] (Hazelcast-like): a write applies locally immediately
      and is multicast to peers, each applying after an independent
      small delay. The writer does not wait — {!sync_cost} is ~0 — which
      is why clustering barely dents ONOS throughput (Fig. 4f).
    - [Strong] (Infinispan-like): the writer blocks for a coordination
      round that grows with cluster size; peers apply in the same
      round. {!sync_cost} is the per-write latency a controller's
      pipeline must absorb, which is what collapses ODL's clustered
      throughput (Fig. 4g). *)

type consistency = Eventual | Strong

type latency_profile = {
  local_apply : Jury_sim.Time.t;      (** local cache write cost *)
  replication_base : Jury_sim.Time.t; (** one-way peer delay, fixed part *)
  replication_jitter_us : float;      (** exponential jitter mean, µs *)
  strong_round_base : Jury_sim.Time.t;
  strong_round_per_node : Jury_sim.Time.t;
}

val default_eventual_profile : latency_profile
val default_strong_profile : latency_profile

type t

type listener = local:bool -> Event.t -> unit
(** [local = true] when the event originated at the subscribing node
    itself. *)

val create :
  Jury_sim.Engine.t -> consistency:consistency -> nodes:int ->
  ?standalone:bool -> ?profile:latency_profile -> unit -> t
(** [standalone] (default [false]) models instances with {e no}
    data-distribution platform at all (Ryu-style standalone
    controllers): writes apply locally and are never replicated to
    peers — each node's tables evolve independently. All other
    machinery (locking, listeners, partition flags, resync) still
    works per node. *)

val nodes : t -> int
val consistency : t -> consistency

val standalone : t -> bool
(** Whether this fabric was created with [~standalone:true] (writes
    never replicate). *)

val write :
  t -> node:int -> ?taint:string -> cache:string -> Event.op -> key:string ->
  value:string -> (Event.t, string) result
(** Issues a cache update from [node]. Applies locally (unless the
    cache is locked at that node — the ONOS database-locking fault),
    replicates to all non-partitioned peers, fires listeners. Returns
    the event as seen on the wire. *)

val read : t -> node:int -> cache:string -> key:string -> string option
val entries : t -> node:int -> cache:string -> (string * string) list
(** Sorted by key. *)

val entry_count : t -> node:int -> cache:string -> int

val subscribe : t -> node:int -> listener -> unit

val sync_cost : t -> Jury_sim.Time.t
(** Latency a writer's pipeline pays per write under the current
    consistency model and cluster size. *)

val strong_acquire : t -> Jury_sim.Time.t
(** For strongly-consistent fabrics: block on the cluster-wide
    coordination channel and hold it for one round; returns the total
    stall (queueing + round) the writer pays. Writes from every node
    serialise through this channel — the reason clustering collapses
    ODL's throughput (Fig. 4g). *)

(** {1 Fault hooks} *)

val set_cache_locked : t -> node:int -> cache:string -> bool -> unit
(** While locked, {!write} at that node fails with
    ["failed to obtain lock"]. *)

val set_partitioned : t -> node:int -> bool -> unit
(** A partitioned node neither receives nor emits replication. *)

val is_partitioned : t -> node:int -> bool

val resync : t -> from:int -> node:int -> unit
(** State transfer for a rejoining node: [node]'s cache tables are
    silently replaced with a deep copy of [from]'s — no events, no
    listener dispatch, no sequence bumps — so divergence accumulated
    while crashed or partitioned vanishes without traffic the validator
    would have to account for. Raises [Invalid_argument] when
    [from = node]. *)

val inject_divergent_write :
  t -> node:int -> cache:string -> Event.op -> key:string -> value:string ->
  Event.t
(** Applies a write at [node] only, {e without} replication — simulates
    a faulty replica whose state silently diverges. Listeners at [node]
    still fire (the node believes the write is normal). *)

(** {1 Accounting} *)

val bytes_replicated : t -> int
(** Cumulative inter-node replication bytes. *)

val events_applied : t -> int
val reset_accounting : t -> unit
