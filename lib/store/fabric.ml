open Jury_sim

type consistency = Eventual | Strong

type latency_profile = {
  local_apply : Time.t;
  replication_base : Time.t;
  replication_jitter_us : float;
  strong_round_base : Time.t;
  strong_round_per_node : Time.t;
}

let default_eventual_profile =
  { local_apply = Time.us 20;
    replication_base = Time.us 300;
    replication_jitter_us = 150.;
    strong_round_base = Time.zero;
    strong_round_per_node = Time.zero }

let default_strong_profile =
  { local_apply = Time.us 50;
    replication_base = Time.us 400;
    replication_jitter_us = 200.;
    strong_round_base = Time.ms 1;
    strong_round_per_node = Time.of_float_us 350. }

type node_state = {
  caches : (string, (string, string) Hashtbl.t) Hashtbl.t;
  mutable listeners : (local:bool -> Event.t -> unit) list;
  locked : (string, unit) Hashtbl.t;
  mutable partitioned : bool;
}

type t = {
  engine : Engine.t;
  consistency : consistency;
  standalone : bool;
  profile : latency_profile;
  node_states : node_state array;
  seqs : int array;
  rng : Rng.t;
  channel_clear : Time.t array array;
      (* per (origin, peer) channel: earliest next delivery — state
         synchronisation rides TCP, so per-channel order is preserved *)
  mutable strong_channel_clear : Time.t;
      (* strongly-consistent writes serialise through one cluster-wide
         coordination round (Infinispan transactions): this is when the
         channel next frees up *)
  mutable bytes_replicated : int;
  mutable events_applied : int;
}

type listener = local:bool -> Event.t -> unit

let create engine ~consistency ~nodes ?(standalone = false) ?profile () =
  if nodes <= 0 then invalid_arg "Fabric.create: need >= 1 node";
  let profile =
    match profile with
    | Some p -> p
    | None -> (
        match consistency with
        | Eventual -> default_eventual_profile
        | Strong -> default_strong_profile)
  in
  { engine;
    consistency;
    standalone;
    profile;
    node_states =
      Array.init nodes (fun _ ->
          { caches = Hashtbl.create 8;
            listeners = [];
            locked = Hashtbl.create 4;
            partitioned = false });
    seqs = Array.make nodes 0;
    rng = Rng.split (Engine.rng engine);
    channel_clear = Array.make_matrix nodes nodes Time.zero;
    strong_channel_clear = Time.zero;
    bytes_replicated = 0;
    events_applied = 0 }

let nodes t = Array.length t.node_states
let consistency t = t.consistency
let standalone t = t.standalone

let check_node t node =
  if node < 0 || node >= nodes t then invalid_arg "Fabric: bad node id"

let cache_table st name =
  match Hashtbl.find_opt st.caches name with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 32 in
      Hashtbl.add st.caches name tbl;
      tbl

let trace_apply t node (ev : Event.t) ~local =
  match ev.taint with
  | None -> ()
  | Some taint ->
      let tr = Engine.trace t.engine in
      if Jury_obs.Trace.enabled tr then
        Jury_obs.Trace.point tr ~t_ns:(Engine.now_ns t.engine) ~taint
          ~phase:Jury_obs.Trace.Cache_write ~node
          [ ("cache", ev.cache);
            ("op", Event.op_to_string ev.op);
            ("key", ev.key);
            ("origin", string_of_int ev.origin);
            ("apply", if local then "local" else "remote") ]

let apply_event t node (ev : Event.t) ~local =
  let st = t.node_states.(node) in
  let tbl = cache_table st ev.cache in
  (match ev.op with
  | Event.Create | Event.Update -> Hashtbl.replace tbl ev.key ev.value
  | Event.Delete -> Hashtbl.remove tbl ev.key);
  t.events_applied <- t.events_applied + 1;
  trace_apply t node ev ~local;
  List.iter (fun listener -> listener ~local ev) st.listeners

let replicate t ~origin (ev : Event.t) =
  if t.standalone then ()
  else
  let n = nodes t in
  for peer = 0 to n - 1 do
    if peer <> origin && not t.node_states.(peer).partitioned then begin
      t.bytes_replicated <- t.bytes_replicated + Event.wire_size ev;
      let delay =
        match t.consistency with
        | Eventual ->
            (* Zero jitter draws nothing, so a deterministic-latency
               profile keeps the RNG stream untouched (the schedule
               explorer depends on that). *)
            if t.profile.replication_jitter_us <= 0. then
              t.profile.replication_base
            else
              Time.add t.profile.replication_base
                (Time.of_float_us
                   (Rng.exponential t.rng t.profile.replication_jitter_us))
        | Strong ->
            (* The write's coordination round completes when the global
               channel clears (strong_acquire advanced it just before
               this write): peers see the entry only then. *)
            Time.sub
              (Time.max t.strong_channel_clear (Engine.now t.engine))
              (Engine.now t.engine)
      in
      let at =
        Time.max
          (Time.add (Engine.now t.engine) delay)
          t.channel_clear.(origin).(peer)
      in
      t.channel_clear.(origin).(peer) <- Time.add at (Time.ns 1);
      (* Delivery mutates the peer's replica tables and runs its
         listeners (controller cache manager, validator relay). *)
      let footprint =
        Footprint.touches [ Footprint.store peer; Footprint.controller peer ]
      in
      ignore
        (Engine.schedule_at t.engine ~footprint ~at (fun () ->
             if not t.node_states.(peer).partitioned then
               apply_event t peer ev ~local:false))
    end
  done

let next_event t ~node ?taint ~cache op ~key ~value () =
  t.seqs.(node) <- t.seqs.(node) + 1;
  { Event.cache = Cache_names.normalize cache;
    op;
    key;
    value;
    origin = node;
    seq = t.seqs.(node);
    taint }

let write t ~node ?taint ~cache op ~key ~value =
  check_node t node;
  let st = t.node_states.(node) in
  let cache = Cache_names.normalize cache in
  if Hashtbl.mem st.locked cache then Error "failed to obtain lock"
  else begin
    let ev = next_event t ~node ?taint ~cache op ~key ~value () in
    apply_event t node ev ~local:true;
    if not st.partitioned then replicate t ~origin:node ev;
    Ok ev
  end

let read t ~node ~cache ~key =
  check_node t node;
  let st = t.node_states.(node) in
  match Hashtbl.find_opt st.caches (Cache_names.normalize cache) with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl key

let entries t ~node ~cache =
  check_node t node;
  let st = t.node_states.(node) in
  match Hashtbl.find_opt st.caches (Cache_names.normalize cache) with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entry_count t ~node ~cache = List.length (entries t ~node ~cache)

let subscribe t ~node listener =
  check_node t node;
  let st = t.node_states.(node) in
  st.listeners <- st.listeners @ [ listener ]

let strong_round t =
  Time.add t.profile.strong_round_base
    (Time.mul t.profile.strong_round_per_node (nodes t))

let strong_acquire t =
  (* Wait for the global coordination channel, then hold it for one
     round. Returns the total stall the writer experiences. *)
  let now = Engine.now t.engine in
  let start = Time.max now t.strong_channel_clear in
  let round = strong_round t in
  t.strong_channel_clear <- Time.add start round;
  Time.add (Time.sub start now) round

let sync_cost t =
  match t.consistency with
  | Eventual -> t.profile.local_apply
  | Strong ->
      Time.add t.profile.local_apply
        (Time.add t.profile.strong_round_base
           (Time.mul t.profile.strong_round_per_node (nodes t)))

let set_cache_locked t ~node ~cache locked =
  check_node t node;
  let st = t.node_states.(node) in
  let cache = Cache_names.normalize cache in
  if locked then Hashtbl.replace st.locked cache ()
  else Hashtbl.remove st.locked cache

let set_partitioned t ~node p =
  check_node t node;
  t.node_states.(node).partitioned <- p

let is_partitioned t ~node =
  check_node t node;
  t.node_states.(node).partitioned

(* State transfer, not event replay: the rejoining node's tables are
   silently overwritten with a deep copy of the source's — no events,
   no listeners, no sequence bumps — so divergence accumulated while
   crashed or partitioned vanishes without generating traffic the
   validator would have to account for. *)
let resync t ~from ~node =
  check_node t from;
  check_node t node;
  if from = node then invalid_arg "Fabric.resync: from = node";
  let src = t.node_states.(from) and dst = t.node_states.(node) in
  Hashtbl.reset dst.caches;
  Hashtbl.iter
    (fun name tbl -> Hashtbl.replace dst.caches name (Hashtbl.copy tbl))
    src.caches

let inject_divergent_write t ~node ~cache op ~key ~value =
  check_node t node;
  let ev =
    next_event t ~node ~cache:(Cache_names.normalize cache) op ~key ~value ()
  in
  apply_event t node ev ~local:true;
  ev

let bytes_replicated t = t.bytes_replicated
let events_applied t = t.events_applied

let reset_accounting t =
  t.bytes_replicated <- 0;
  t.events_applied <- 0
