let arpdb = "ARPDB"
let hostdb = "HOSTDB"
let edgedb = "EDGEDB"
let linksdb = "LINKSDB"
let flowsdb = "FLOWSDB"
let switchdb = "SWITCHDB"
let masterdb = "MASTERDB"
let all = [ arpdb; hostdb; edgedb; linksdb; flowsdb; switchdb; masterdb ]
(* Allocation-free when the name is already normalised — the validator
   and the compiled policy trie normalise every query's cache key on
   the per-response path. *)
let normalize s =
  let rec has_lower i =
    i < String.length s
    && ((s.[i] >= 'a' && s.[i] <= 'z') || has_lower (i + 1))
  in
  if has_lower 0 then String.uppercase_ascii s else s
let is_known name = List.mem (normalize name) all
