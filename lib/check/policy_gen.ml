module Ast = Jury_policy.Ast
module Pattern = Jury_policy.Pattern
module Engine = Jury_policy.Engine
module Compiled = Jury_policy.Compiled
module Event = Jury_store.Event
module Values = Jury_controller.Values
module Of_match = Jury_openflow.Of_match
module Of_message = Jury_openflow.Of_message
module Of_action = Jury_openflow.Of_action

(* Mixed-case cache names on purpose: the engine and the compiler must
   both normalise, so DSL/XML policies and hand-built queries cannot
   disagree on casing — rule caches and query caches draw from
   different spellings of the same stores. *)
let rule_caches = [ "FLOWSDB"; "LinksDB"; "edgedb"; "HOSTDB"; "ArpDB" ]
let query_caches =
  [ "FLOWSDB"; "flowsdb"; "LINKSDB"; "LinksDB"; "EDGEDB"; "HostDB"; "ARPDB";
    "NOSUCHDB" ]

(* A tiny alphabet so globs and subjects collide often — near-miss
   patterns are what distinguish the matchers. *)
let glyph = Gen.choose [ "a"; "b"; "k"; "/" ]

let word ~max_len : string Gen.t =
  Gen.map (String.concat "") (Gen.list_of ~len:(Gen.int_in 0 max_len) glyph)

let pattern_source : string Gen.t =
  let token =
    Gen.frequency_gen
      [ (3, word ~max_len:2);
        (2, Gen.return "*");
        (1, Gen.return "?") ]
  in
  Gen.map (String.concat "") (Gen.list_of ~len:(Gen.int_in 0 5) token)

let subject : string Gen.t = word ~max_len:8

(* Occasional real FLOWSDB values so Flow_hierarchy_violation and
   Flow_drops_packets exercise both arms instead of always failing to
   parse. *)
let flow_value : string Gen.t =
  let mac i = Jury_packet.Addr.Mac.of_host_index i in
  let good =
    Of_message.flow_mod (Of_match.l2_dst ~dst:(mac 1)) [ Of_action.Output 2 ]
  in
  let drop = Of_message.flow_mod (Of_match.l2_dst ~dst:(mac 1)) [] in
  let bad_hier =
    Of_message.flow_mod
      { Of_match.wildcard_all with Of_match.tp_dst = Some 80 }
      [ Of_action.Output 1 ]
  in
  Gen.map Values.Flow.value (Gen.choose [ good; drop; bad_hier ])

let entry_check : Ast.entry_check Gen.t =
  Gen.frequency_gen
    [ (4, Gen.return Ast.Entry_any);
      (4,
       Gen.bind pattern_source (fun key ->
           Gen.map
             (fun value ->
               Ast.Entry_glob
                 { key = Pattern.compile key; value = Pattern.compile value })
             pattern_source));
      (1, Gen.return Ast.Flow_hierarchy_violation);
      (1, Gen.return Ast.Flow_drops_packets) ]

let rule : Ast.rule Gen.t =
 fun rng ->
  let controller =
    Gen.frequency_gen
      [ (1, Gen.return Ast.Any_controller);
        (1, Gen.map (fun id -> Ast.Controller_id id) (Gen.int_in 0 3)) ]
      rng
  in
  let trigger =
    Gen.choose [ Ast.Any_trigger; Ast.Internal_only; Ast.External_only ] rng
  in
  let cache = Gen.option 0.7 (Gen.choose rule_caches) rng in
  let operation =
    Gen.frequency_gen
      [ (2, Gen.return Ast.Any_op);
        (3,
         Gen.map
           (fun op -> Ast.Op_is op)
           (Gen.choose [ Event.Create; Event.Update; Event.Delete ])) ]
      rng
  in
  let entry = entry_check rng in
  let destination =
    Gen.choose [ Ast.Any_dest; Ast.Local_only; Ast.Remote_only ] rng
  in
  let allow = Gen.bool rng in
  Ast.rule ~allow ~controller ~trigger ?cache ~operation ~entry ~destination ()

let query : Ast.query Gen.t =
 fun rng ->
  let q_controller = Gen.int_in 0 4 rng in
  let q_trigger = Gen.choose [ `Internal; `External ] rng in
  let q_cache = Gen.choose query_caches rng in
  let q_op = Gen.choose [ Event.Create; Event.Update; Event.Delete ] rng in
  let q_key = subject rng in
  let q_value = Gen.frequency_gen [ (5, subject); (2, flow_value) ] rng in
  let q_destination = Gen.choose [ `Local; `Remote ] rng in
  { Ast.q_controller; q_trigger; q_cache; q_op; q_key; q_value; q_destination }

(* --- the equivalence check ---------------------------------------- *)

let verdicts_agree (a : Engine.verdict) (b : Compiled.verdict) =
  match (a, b) with
  | Engine.Allowed, Compiled.Allowed -> true
  | Engine.Denied r1, Compiled.Denied r2 ->
      (* Physical identity: both sides must return the very rule object
         the engine stores, not merely an equal-looking one. *)
      r1 == r2
  | _ -> false

let pp_verdict fmt = function
  | Compiled.Allowed -> Format.fprintf fmt "allowed"
  | Compiled.Denied r -> Format.fprintf fmt "denied by %a" Ast.pp_rule r

let first_disagreement engine queries =
  let compiled = Engine.compiled engine in
  List.find_map
    (fun q ->
      let a = Engine.check engine q in
      let b = Compiled.check compiled q in
      if verdicts_agree a b then None
      else
        Some
          (Format.asprintf "%a: interpreter %a, compiled %a" Ast.pp_query q
             pp_verdict a pp_verdict b))
    queries

let diff ?(rules = 24) ?(queries = 40) ~seed () =
  Gen.run ~seed (fun rng ->
      let rs = Gen.list_of ~len:(Gen.int_in 0 rules) rule rng in
      let qs = Gen.list_of ~len:(Gen.int_in 1 queries) query rng in
      let engine = Engine.create rs in
      match first_disagreement engine qs with
      | Some msg -> Some msg
      | None ->
          (* Grow the rule set mid-stream: add_rule must invalidate the
             memoised compiled view, and the recompiled trie must agree
             with the interpreter on the same queries again. *)
          Engine.add_rule engine (rule rng);
          Option.map
            (fun msg -> "after add_rule: " ^ msg)
            (first_disagreement engine qs))
