type entry = {
  id : string;
  base_seed : int;
  trace : (string * int) list;
  case : Case.t;
  novel : string list;
}

type t = {
  mutable entries_rev : entry list;
  mutable count : int;
  mutable seen : Coverage.t;
}

let create () = { entries_rev = []; count = 0; seen = Coverage.empty }
let entries t = List.rev t.entries_rev
let size t = t.count
let features t = t.seen
let feature_count t = Coverage.cardinal t.seen

let lineage_of ~base_seed ~trace =
  String.concat " "
    (Printf.sprintf "seed=%d" base_seed
    :: List.map (fun (m, s) -> Printf.sprintf "%s@%d" m s) trace)

let lineage e = lineage_of ~base_seed:e.base_seed ~trace:e.trace

let lineage_of_string s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ' ' (String.trim s))
  in
  match parts with
  | [] -> Error "empty lineage"
  | seed :: steps -> (
      match
        if String.length seed > 5 && String.sub seed 0 5 = "seed=" then
          int_of_string_opt (String.sub seed 5 (String.length seed - 5))
        else None
      with
      | None -> Error (Printf.sprintf "bad lineage head %S (want seed=N)" seed)
      | Some base_seed ->
          let step p =
            match String.rindex_opt p '@' with
            | None -> Error (Printf.sprintf "bad lineage step %S (want name@N)" p)
            | Some i -> (
                let name = String.sub p 0 i in
                match
                  int_of_string_opt (String.sub p (i + 1) (String.length p - i - 1))
                with
                | None -> Error (Printf.sprintf "bad step seed in %S" p)
                | Some s -> Ok (name, s))
          in
          let rec all acc = function
            | [] -> Ok (base_seed, List.rev acc)
            | p :: rest -> (
                match step p with
                | Error _ as e -> e
                | Ok st -> all (st :: acc) rest)
          in
          all [] steps)

let id_of ~base_seed ~trace =
  String.sub (Digest.to_hex (Digest.string (lineage_of ~base_seed ~trace))) 0 12

let replay_trace ~base_seed ~trace =
  let case = Case.generate ~seed:base_seed in
  List.fold_left
    (fun case (name, step_seed) ->
      match Mutate.find name with
      | None -> invalid_arg (Printf.sprintf "Corpus.replay: unknown mutator %s" name)
      | Some m -> (
          match Mutate.apply m ~step_seed case with
          | Some case' -> case'
          | None ->
              invalid_arg
                (Printf.sprintf "Corpus.replay: step %s@%d no longer applies"
                   name step_seed)))
    case trace

let replay e = replay_trace ~base_seed:e.base_seed ~trace:e.trace

let admit t ~base_seed ~trace case coverage =
  let novel = Coverage.diff coverage t.seen in
  if Coverage.is_empty novel then None
  else begin
    let e =
      { id = id_of ~base_seed ~trace;
        base_seed;
        trace;
        case;
        novel = Coverage.features novel }
    in
    t.entries_rev <- e :: t.entries_rev;
    t.count <- t.count + 1;
    t.seen <- Coverage.union t.seen coverage;
    Some e
  end

let nth t i = List.nth (entries t) i
