(** Deterministic generator combinators for the fuzz harness.

    A generator is a function of a {!Jury_sim.Rng.t}; composing
    generators threads the one splitmix64 stream through every draw, so
    a whole generated case is a pure function of a single integer seed
    and replays bit-identically. No QCheck dependency: the harness's
    shrinking works on typed case records (see {!Shrink}), not on
    generator traces, so all we need from this layer is deterministic
    sampling. *)

type 'a t = Jury_sim.Rng.t -> 'a
(** A value sampler drawing from the supplied stream. *)

val run : seed:int -> 'a t -> 'a
(** Sample once from a fresh stream seeded with [seed]. *)

val return : 'a -> 'a t
(** Constant generator; draws nothing. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Transform the generated value; draws exactly what [g] draws. *)

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Sequence two generators; the second may depend on the first's
    value. *)

val int_in : int -> int -> int t
(** [int_in lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float_in : float -> float -> float t
(** [float_in lo hi] is uniform in [\[lo, hi)]. *)

val bool : bool t
(** A fair coin flip. *)

val bernoulli : float -> bool t
(** [bernoulli p] is [true] with probability [p]. *)

val choose : 'a list -> 'a t
(** Uniform pick from a non-empty list. *)

val oneof : 'a t list -> 'a t
(** Pick one of the generators uniformly, then sample it. *)

val frequency : (int * 'a) list -> 'a t
(** Weighted pick among values; weights must be positive. *)

val frequency_gen : (int * 'a t) list -> 'a t
(** Weighted pick among generators. *)

val list_of : len:int t -> 'a t -> 'a list t
(** A list whose length is drawn first, then each element in order. *)

val option : float -> 'a t -> 'a option t
(** [option p g] is [Some] (sampled from [g]) with probability [p]. *)
