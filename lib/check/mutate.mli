(** Sequence-aware case mutators — the guided fuzzer's move set.

    Each mutator perturbs one axis of a {!Case.t} through the
    {!Case.Lens} surface, so every mutant respects the same validity
    floors the generator and shrinker do; the one cross-axis
    constraint ({!Case.Lens.hosts_floor}) is checked after the fact
    and violating mutants are rejected.

    The fault-schedule mutators are the heart of the move set: splice
    (two levers exchange schedule slots), duplicate, shift, drop and
    inject. {e Inject draws from the full fault vocabulary} — including
    crash-rejoin, Byzantine responses, store partitions and mid-run
    policy churn, which the blind generator never emits — so mutation
    is the only path by which a case acquires the stateful levers.

    {!apply} is a pure function of [(mutator, step_seed, case)]: the
    step seed deterministically reconstructs the mutation, which is
    what makes a {!Corpus} entry replayable from its printed lineage
    alone. [None] means the move did not apply (empty schedule, no-op
    draw) or produced an invalid/unchanged case. *)

type t = {
  name : string;  (** stable identifier, printed in corpus lineages *)
  mutate : Jury_sim.Rng.t -> Case.t -> Case.t option;
}

val all : t list
val names : string list
val find : string -> t option

val apply : t -> step_seed:int -> Case.t -> Case.t option
(** Run one mutation step. Deterministic; rejects no-ops and mutants
    violating {!Case.Lens.hosts_floor}. *)
