(** The single registration path for oracles.

    Every consumer of the battery — [jury_cli check], [jury_cli mc],
    the guided fuzzer, the shrinker, the pinned repro corpus — resolves
    selectors and enumerates oracles through this table. Adding an
    oracle means writing its check in {!Oracle} and registering it
    here; the CLI selector, the unknown-name error listing and the
    default battery all pick it up from the one entry. *)

val register :
  family:string -> name:string -> doc:string -> (Oracle.ctx -> Oracle.result) ->
  unit
(** Append an oracle to the catalog. Raises [Invalid_argument] on a
    duplicate name. The built-in battery registers itself when this
    module is linked; call this only to add new oracles. *)

val all : unit -> Oracle.t list
(** Every registered oracle, in registration order. *)

val families : unit -> string list
(** The distinct family names, sorted. *)

val by_family : string -> Oracle.t list
(** Oracles of one family; [\[\]] for an unknown name. *)

val names : unit -> string list
(** Every oracle name, in catalog order. *)

val find : string -> Oracle.t option
(** Look one oracle up by exact name. *)

val resolve : string -> (Oracle.t list, string) result
(** Resolve a user-supplied selector — a family or a single oracle
    name — to its oracles. [Error] carries a message listing every
    valid family and name; the CLI's [check --oracle], [mc --oracle]
    and [check --fuzz] share this table. *)

val check_run : ?oracles:Oracle.t list -> Oracle.ctx -> (Oracle.t * string) list
(** {!Oracle.check_run} defaulting to the full registered battery. *)

val check_case : ?oracles:Oracle.t list -> Case.t -> (Oracle.t * string) list
(** [check_run ?oracles (Oracle.ctx case)]. *)
