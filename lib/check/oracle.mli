(** The machine-checkable invariants each generated case is held to.

    Oracles are grouped into eight families, one per soundness claim
    the codebase accumulated over PR 1–4, the policy compiler and the
    staged validation pipeline:

    - [conservation] — every registered trigger reaches exactly one
      verdict (or a counted retirement): after flush nothing is
      pending, the verdict list, alarm list, detection-time samples and
      {!Jury.Report} roll-ups all agree with the validator's counters —
      and a second execution of the same case reproduces the run
      bit-identically (the replay guarantee every other oracle rests
      on).
    - [sharding] — verdicts are independent of the shard count: the
      case at [shards = 1] and [shards = 4] yields equal fingerprints.
    - [batching] — [deliver_batch] is equivalent to per-event
      [deliver]: a synthetic response stream (random registrations,
      omissions, duplicates, divergent snapshots and actions) drives a
      bare validator to the same verdicts however it is chunked, and
      whatever the shard count.
    - [parallel] — a mini-sweep of the case fanned out on a
      {!Jury_par.Pool} returns byte-identical results at [jobs = 1] and
      [jobs = 2].
    - [pipeline] — intra-run parallelism is unobservable: the case
      (projected onto the pipeline-eligible feature set, see
      {!Case.jury_config}) yields the same verdict multiset and
      conserved channel/ingestion counters at [pipeline_jobs] 1, 2
      and 4; only the rendered report (whose suspect ranking breaks
      ties in hash order) is outside the comparison.
    - [channel] — per-link counter conservation
      ([sent = delivered + dropped], retransmits only when configured),
      and on zero-loss cases, bit-identity with an explicit
      {!Jury.Channel.reliable} profile.
    - [obs] — the counters {!Jury.Obs_bridge} exports as metrics series
      sum back to the validator's and channels' own totals.
    - [policy] — the {!Jury_policy.Compiled} decision structure agrees
      with the {!Jury_policy.Engine} reference interpreter
      verdict-for-verdict on a rule set and query batch fuzzed from the
      case seed (see {!Policy_gen}); the only family that never
      executes the deployment.

    Each oracle receives a {!ctx} whose base outcome is computed
    lazily and shared across oracles, so a case is executed once for
    the families that only inspect a single run.

    The battery is executor-polymorphic: a context built with
    {!ctx_with} routes the base run {e and} every oracle re-execution
    (replay, shard/reliability overrides, the mini parallel sweep)
    through the caller's executor. The schedule explorer uses this to
    assert the full battery on a run pinned to one explored schedule;
    {!ctx} keeps the plain {!Run.execute} path. An executor must be
    safe to call from worker domains (the [parallel] family fans out on
    a {!Jury_par.Pool}): derive per-call state inside each invocation,
    never share mutable state across calls. *)

type result = Pass | Fail of string

type executor =
  ?shards:int -> ?batch_us:int option -> ?pipeline_jobs:int ->
  ?force_reliable:bool -> Case.t ->
  Run.outcome
(** How this battery run turns a case into an outcome; the optional
    axes mirror {!Run.execute}. *)

type ctx = {
  case : Case.t;
  execute : executor;         (** runs every (re-)execution the oracles need *)
  base : Run.outcome Lazy.t;  (** the case run as generated, memoised *)
}

val ctx : Case.t -> ctx
(** A context whose base outcome is not yet forced; executes through
    plain {!Run.execute}. *)

val ctx_with : execute:executor -> Case.t -> ctx
(** A context routing all executions through [execute] (base outcome
    [execute case], forced lazily). *)

type t = {
  name : string;    (** stable identifier, e.g. ["verdict-conservation"] *)
  family : string;  (** one of the eight families above *)
  doc : string;     (** one-line description, surfaced by the CLI *)
  check : ctx -> result;
}

(** The individual invariant checks, in battery order. {!Registry}
    registers each of these exactly once with its family, name and doc;
    resolve names and enumerate the battery through {!Registry}, never
    here. *)

val verdict_conservation : ctx -> result
val report_consistency : ctx -> result
val replay_determinism : ctx -> result
val shard_independence : ctx -> result
val batch_equivalence : ctx -> result
val parallel_identity : ctx -> result
val pipeline_jobs_independence : ctx -> result
val channel_conservation : ctx -> result
val zero_loss_identity : ctx -> result
val obs_consistency : ctx -> result
val policy_equivalence : ctx -> result

val check_run : oracles:t list -> ctx -> (t * string) list
(** Run the given oracles against a prebuilt context — the
    single-completed-run entry point shared by [jury_check] and
    [jury_mc]; returns the failures as (oracle, message) pairs. For the
    default full battery use {!Registry.check_run}. *)

val check_case : oracles:t list -> Case.t -> (t * string) list
(** [check_run ~oracles (ctx case)]: run the oracles against one case;
    empty result means the case upholds every invariant. *)
