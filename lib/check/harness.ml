type failure = {
  index : int;
  case_seed : int;
  case : Case.t;
  violations : (Oracle.t * string) list;
  shrink : Shrink.outcome option;
}

type summary = {
  cases : int;
  oracles : Oracle.t list;
  failures : failure list;
}

let repro f =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "case %d FAILED (case seed %d)" f.index f.case_seed;
  line "  replay: jury_cli check --cases 1 --seed %d" f.case_seed;
  line "  generated: %s" (Format.asprintf "%a" Case.pp f.case);
  List.iter
    (fun ((o : Oracle.t), msg) ->
      line "  oracle %s [%s]: %s" o.Oracle.name o.Oracle.family msg)
    f.violations;
  (match f.shrink with
  | None -> ()
  | Some s ->
      line "  shrunk (%d reductions, %d executions): %s" s.Shrink.shrunk
        s.Shrink.steps
        (Format.asprintf "%a" Case.pp s.Shrink.minimal);
      List.iter
        (fun ((o : Oracle.t), msg) ->
          line "  still violates %s: %s" o.Oracle.name msg)
        s.Shrink.failures);
  let minimal =
    match f.shrink with Some s -> s.Shrink.minimal | None -> f.case
  in
  line "  corpus entry:";
  line "let () =";
  line "  add ~name:\"seed-%d\" ~oracle:\"%s\"" f.case_seed
    (match f.violations with
    | ((o : Oracle.t), _) :: _ -> o.Oracle.name
    | [] -> "unknown");
  Buffer.add_string b (Case.to_ocaml ~indent:"    " minimal);
  Buffer.contents b

let check_one ~oracles ~max_shrink ~seed index =
  let case_seed = seed + index in
  let case = Case.generate ~seed:case_seed in
  match Oracle.check_case ~oracles case with
  | [] -> None
  | violations ->
      let shrink =
        if max_shrink <= 0 then None
        else Some (Shrink.minimise ~max_steps:max_shrink ~oracles case violations)
      in
      Some { index; case_seed; case; violations; shrink }

let run ?(log = ignore) ?(jobs = 1) ?oracles ?(max_shrink = 200)
    ~cases ~seed () =
  let oracles = match oracles with Some os -> os | None -> Registry.all () in
  let indices = List.init cases (fun i -> i) in
  let results =
    if jobs <= 1 then
      List.map
        (fun i ->
          let r = check_one ~oracles ~max_shrink ~seed i in
          if (i + 1) mod 25 = 0 then
            log (Printf.sprintf "  ... %d/%d cases" (i + 1) cases);
          r)
        indices
    else begin
      let pool = Jury_par.Pool.create ~jobs () in
      Fun.protect
        ~finally:(fun () -> Jury_par.Pool.shutdown pool)
        (fun () ->
          Jury_par.Pool.map_ordered pool indices
            (check_one ~oracles ~max_shrink ~seed))
    end
  in
  let failures = List.filter_map Fun.id results in
  List.iter (fun f -> log (repro f)) failures;
  { cases; oracles; failures }
