(** The guided fuzzer's seed pool: cases that discovered behaviour
    features no earlier case exhibited.

    Admission is AFL-style: a candidate enters iff its {!Coverage}
    holds at least one feature the corpus has not yet seen; the entry
    records exactly those [novel] features. Every entry is replayable
    from plain data — a base generator seed plus the ordered
    [(mutator, step_seed)] trace that produced it — so a corpus line
    in a log or CI artifact reconstructs the exact case with
    {!replay} (or by hand from the printed {!lineage}). *)

type entry = {
  id : string;       (** short stable digest of the lineage *)
  base_seed : int;   (** {!Case.generate} seed the lineage starts from *)
  trace : (string * int) list;
      (** mutation steps applied in order: (mutator name, step seed) *)
  case : Case.t;     (** the materialised case (= {!replay} of the above) *)
  novel : string list;  (** features this entry added, sorted *)
}

type t

val create : unit -> t

val admit :
  t -> base_seed:int -> trace:(string * int) list -> Case.t -> Coverage.t ->
  entry option
(** [admit t ~base_seed ~trace case cov] adds the case iff [cov] has
    features the corpus lacks; returns the new entry. The corpus's
    feature set absorbs [cov] on admission. *)

val entries : t -> entry list
(** Admission order. *)

val nth : t -> int -> entry
val size : t -> int
val features : t -> Coverage.t
val feature_count : t -> int

val replay : entry -> Case.t
(** Regenerate the entry's case from seed + trace alone. Raises
    [Invalid_argument] if a mutator name is unknown or a step no
    longer applies (i.e. the lineage predates an incompatible mutator
    change). *)

val replay_trace : base_seed:int -> trace:(string * int) list -> Case.t
(** {!replay} from raw lineage data (e.g. parsed from a log). *)

val lineage : entry -> string
(** Printable one-line lineage: ["seed=42 fault-inject@7 burst-rate@3"]. *)

val lineage_of : base_seed:int -> trace:(string * int) list -> string
(** {!lineage} from raw parts (used before an entry exists). *)

val lineage_of_string : string -> (int * (string * int) list, string) result
(** Parse {!lineage} output back into replayable data. *)
