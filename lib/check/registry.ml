(* The one place oracles are registered. Everything that consumes the
   battery — check, mc, the guided fuzzer, the CLI's --oracle selector —
   resolves names through this table, so adding an oracle here is the
   whole job. *)

let table : Oracle.t list ref = ref []

let register ~family ~name ~doc check =
  if List.exists (fun (o : Oracle.t) -> o.Oracle.name = name) !table then
    invalid_arg (Printf.sprintf "Registry.register: duplicate oracle %S" name);
  table := !table @ [ { Oracle.name; family; doc; check } ]

let all () = !table

let families () =
  List.sort_uniq compare (List.map (fun (o : Oracle.t) -> o.Oracle.family) !table)

let by_family f =
  List.filter (fun (o : Oracle.t) -> o.Oracle.family = f) !table

let names () = List.map (fun (o : Oracle.t) -> o.Oracle.name) !table

let find n = List.find_opt (fun (o : Oracle.t) -> o.Oracle.name = n) !table

let resolve s =
  match by_family s with
  | _ :: _ as os -> Ok os
  | [] -> (
      match find s with
      | Some o -> Ok [ o ]
      | None ->
          Error
            (Printf.sprintf "unknown oracle %S; families: %s; oracles: %s" s
               (String.concat ", " (families ()))
               (String.concat ", " (names ()))))

let check_run ?oracles ctx =
  let oracles = match oracles with Some os -> os | None -> all () in
  Oracle.check_run ~oracles ctx

let check_case ?oracles case = check_run ?oracles (Oracle.ctx case)

(* --- the catalog, in battery order --- *)

let () =
  register ~family:"conservation" ~name:"verdict-conservation"
    ~doc:
      "after flush nothing is pending and the verdict list, alarms and \
       detection-time samples agree with the validator's counters"
    Oracle.verdict_conservation;
  register ~family:"conservation" ~name:"report-consistency"
    ~doc:"the rendered report's roll-ups match the verdict stream exactly"
    Oracle.report_consistency;
  register ~family:"conservation" ~name:"replay-determinism"
    ~doc:"a second execution of the same case reproduces the run bit-identically"
    Oracle.replay_determinism;
  register ~family:"sharding" ~name:"shard-independence"
    ~doc:"shards=1 and shards=4 yield equal fingerprints"
    Oracle.shard_independence;
  register ~family:"batching" ~name:"batch-equivalence"
    ~doc:
      "deliver_batch is equivalent to per-event deliver on a synthetic \
       response stream, however chunked and sharded"
    Oracle.batch_equivalence;
  register ~family:"parallel" ~name:"serial-parallel-identity"
    ~doc:"a mini-sweep on the domain pool is byte-identical at jobs 1 and 2"
    Oracle.parallel_identity;
  register ~family:"pipeline" ~name:"pipeline-jobs-independence"
    ~doc:
      "the staged pipeline's job count is unobservable: same verdict \
       multiset and conserved counters at pipeline_jobs 1, 2 and 4"
    Oracle.pipeline_jobs_independence;
  register ~family:"channel" ~name:"channel-conservation"
    ~doc:"per-link sent = delivered + dropped, retransmits only when configured"
    Oracle.channel_conservation;
  register ~family:"channel" ~name:"zero-loss-identity"
    ~doc:"zero-loss cases are bit-identical to an explicit reliable profile"
    Oracle.zero_loss_identity;
  register ~family:"obs" ~name:"obs-consistency"
    ~doc:"Obs_bridge metric series sum back to the validator and channel totals"
    Oracle.obs_consistency;
  register ~family:"policy" ~name:"compiled-interpreted"
    ~doc:
      "the compiled policy decision structure agrees with the reference \
       interpreter on a fuzzed rule set, before and after add_rule"
    Oracle.policy_equivalence
