module Rng = Jury_sim.Rng
module Lens = Case.Lens

type t = {
  name : string;
  mutate : Rng.t -> Case.t -> Case.t option;
}

(* --- fault-schedule helpers --- *)

let nth_fault rng (c : Case.t) =
  match c.Case.faults with
  | [] -> None
  | fs ->
      let i = Rng.int rng (List.length fs) in
      Some (i, List.nth fs i)

let set_faults (c : Case.t) fs = Lens.faults.Lens.set c fs

(* The full lever vocabulary — including the four stateful levers the
   blind generator never draws (crash-rejoin, Byzantine, partition,
   policy churn), so guided fuzzing is the one door into them. *)
let fresh_action rng (c : Case.t) : Case.fault_action =
  let node = Rng.int rng c.Case.nodes in
  let caches = [| "SWITCHDB"; "LINKSDB"; "HOSTDB"; "FLOWSDB" |] in
  let rules =
    [| "deny name=fuzz-external-hostdb trigger=external cache=HOSTDB";
       "deny name=fuzz-internal-linksdb trigger=internal cache=LINKSDB";
       "deny name=fuzz-external-flowsdb trigger=external cache=FLOWSDB";
       "deny name=fuzz-any-switchdb cache=SWITCHDB" |]
  in
  match Rng.int rng 17 with
  | 0 -> Case.Slow { node; delay_ms = 1 + Rng.int rng 120 }
  | 1 -> Case.Lossy { node; omit = Rng.float rng 1.0 }
  | 2 -> Case.Crash { node }
  | 3 -> Case.Drop_sends { node }
  | 4 -> Case.Blackhole { node }
  | 5 -> Case.Lock_cache { node; cache = Rng.choice rng caches }
  | 6 -> Case.Heal { node }
  (* the stateful half of the vocabulary gets the heavier weight: it
     is reachable only through mutation *)
  | 7 | 8 -> Case.Rejoin { node }
  | 9 | 10 -> Case.Byzantine { node }
  | 11 | 12 -> Case.Partition { node }
  | 13 | 14 -> Case.Add_rule { rule = Rng.choice rng rules }
  | _ -> Case.Fail_master { node }

let fault_splice rng (c : Case.t) =
  match c.Case.faults with
  | [] | [ _ ] -> None
  | fs ->
      let n = List.length fs in
      let i = Rng.int rng n in
      let j = Rng.int rng n in
      if i = j then None
      else
        let fi = List.nth fs i and fj = List.nth fs j in
        let fs' =
          List.mapi
            (fun idx f ->
              if idx = i then { fi with Case.at_ms = fj.Case.at_ms }
              else if idx = j then { fj with Case.at_ms = fi.Case.at_ms }
              else f)
            fs
        in
        Some (set_faults c fs')

let fault_duplicate rng (c : Case.t) =
  match nth_fault rng c with
  | None -> None
  | Some (_, f) ->
      let at_ms = Rng.int rng (max 1 c.Case.duration_ms) in
      Some (set_faults c ({ f with Case.at_ms } :: c.Case.faults))

let fault_shift rng (c : Case.t) =
  match nth_fault rng c with
  | None -> None
  | Some (i, f) ->
      let delta = Rng.int_in rng (-c.Case.duration_ms / 2) (c.Case.duration_ms / 2) in
      if delta = 0 then None
      else
        let fs' =
          List.mapi
            (fun idx g ->
              if idx = i then { g with Case.at_ms = f.Case.at_ms + delta }
              else g)
            c.Case.faults
        in
        Some (set_faults c fs')

let fault_drop rng (c : Case.t) =
  match nth_fault rng c with
  | None -> None
  | Some (i, _) ->
      Some (set_faults c (List.filteri (fun idx _ -> idx <> i) c.Case.faults))

let fault_inject rng (c : Case.t) =
  let at_ms = Rng.int rng (max 1 c.Case.duration_ms) in
  let action = fresh_action rng c in
  Some (set_faults c ({ Case.at_ms; action } :: c.Case.faults))

(* --- workload perturbation --- *)

let burst_rate rng (c : Case.t) =
  let factor = Rng.choice rng [| 0.25; 0.5; 2.; 4.; 8. |] in
  Some (Lens.rate.Lens.set c (c.Case.rate *. factor))

let burst_duration rng (c : Case.t) =
  let factor = Rng.choice rng [| 0.5; 2. |] in
  Some
    (Lens.duration_ms.Lens.set c
       (int_of_float (float_of_int c.Case.duration_ms *. factor)))

let workload_flip rng (c : Case.t) =
  let w =
    Rng.choice rng [| Case.Mix; Case.Connections; Case.Joins; Case.Blast |]
  in
  if w = c.Case.workload then None else Some (Lens.workload.Lens.set c w)

let topo_flip rng (c : Case.t) =
  let t = Rng.choice rng [| Case.Linear; Case.Ring; Case.Star; Case.Single |] in
  if t = c.Case.topo then None else Some (Lens.topo.Lens.set c t)

let trigger_churn rng (c : Case.t) =
  Some (Lens.triggers.Lens.set c (1 + Rng.int rng 80))

(* --- knob churn --- *)

let channel_churn rng (c : Case.t) =
  match Rng.int rng 4 with
  | 0 -> Some (Lens.drop.Lens.set c (Rng.float rng 0.3))
  | 1 -> Some (Lens.duplicate.Lens.set c (Rng.float rng 0.3))
  | 2 -> Some (Lens.jitter_us.Lens.set c (Rng.float rng 400.))
  | _ -> Some (Lens.retries.Lens.set c (Rng.int rng 4))

let validator_churn rng (c : Case.t) =
  match Rng.int rng 4 with
  | 0 -> Some (Lens.shards.Lens.set c (1 + Rng.int rng 8))
  | 1 ->
      Some
        (Lens.max_inflight.Lens.set c
           (if Rng.bool rng then None else Some (1 + Rng.int rng 64)))
  | 2 ->
      Some
        (Lens.batch_us.Lens.set c
           (if Rng.bool rng then None else Some (50 + Rng.int rng 450)))
  | _ ->
      Some
        (Lens.degraded_quorum.Lens.set c
           (if Rng.bool rng then None else Some (1 + Rng.int rng c.Case.k)))

let cluster_churn rng (c : Case.t) =
  match Rng.int rng 3 with
  | 0 -> Some (Lens.nodes.Lens.set c (3 + Rng.int rng 7))
  | 1 -> Some (Lens.k.Lens.set c (1 + Rng.int rng (c.Case.nodes - 1)))
  | _ -> Some (Lens.odl.Lens.set c (not c.Case.odl))

let all =
  [ { name = "fault-splice"; mutate = fault_splice };
    { name = "fault-duplicate"; mutate = fault_duplicate };
    { name = "fault-shift"; mutate = fault_shift };
    { name = "fault-drop"; mutate = fault_drop };
    { name = "fault-inject"; mutate = fault_inject };
    { name = "burst-rate"; mutate = burst_rate };
    { name = "burst-duration"; mutate = burst_duration };
    { name = "workload-flip"; mutate = workload_flip };
    { name = "topo-flip"; mutate = topo_flip };
    { name = "trigger-churn"; mutate = trigger_churn };
    { name = "channel-churn"; mutate = channel_churn };
    { name = "validator-churn"; mutate = validator_churn };
    { name = "cluster-churn"; mutate = cluster_churn } ]

let names = List.map (fun m -> m.name) all
let find name = List.find_opt (fun m -> m.name = name) all

let apply m ~step_seed case =
  let rng = Rng.create step_seed in
  match m.mutate rng case with
  | None -> None
  | Some case' ->
      if Case.equal case' case then None
      else if not (Lens.hosts_floor case') then None
      else Some case'
