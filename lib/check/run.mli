(** Executes a generated case end-to-end and distils the run into the
    machine-checkable observations the oracles assert over.

    One {!execute} builds a fresh engine, network, cluster and JURY
    deployment from the case alone (no ambient state), drives the
    workload and fault schedule, flushes the validator, and snapshots
    every counter the invariants mention. Equivalence oracles re-run
    the same case with exactly one axis overridden and compare
    {!fingerprint}s. *)

(** The verdict-relevant residue of a run. Two runs of equivalent
    configurations must produce equal fingerprints; [verdict_lines] is
    sorted so the comparison is insensitive to the order in which
    shards fold their tables at flush time. *)
type fingerprint = {
  decided : int;
  faults : int;
  unverifiable : int;
  degraded : int;
  overload : int;
  verdict_lines : string list;
      (** one canonical line per verdict (taint, verdict, primary,
          suspects, trigger and decision times), sorted *)
  report : string;  (** rendered {!Jury.Report.t} *)
}

(** Everything a single run exposes to the oracles. *)
type outcome = {
  fp : fingerprint;
  pending_after_flush : int;
  alarm_count : int;       (** [Validator.alarms] length *)
  detection_count : int;   (** [Validator.detection_times_ms] length *)
  duplicates : int;
  late : int;
  retransmits : int;
  stragglers : int;
  batches : int;
  batched_responses : int;
  shard_count : int;
  epoch : int;
  links : (string * Jury.Channel.stats) list;
  totals : Jury.Channel.stats;
  (* Obs_bridge cross-checks: the same counters read back through the
     metrics series the bridge records. *)
  obs_decided : int;
  obs_batches : int;
  obs_overloads : int;
  obs_retransmits : int;
  obs_epoch : int;
  obs_channel_sent : int;
}

val fingerprint_of_validator : Jury.Validator.t -> fingerprint
(** Distil a validator's verdict state (used both by {!execute} and by
    oracles that drive a bare validator directly). *)

val fingerprint_equal : fingerprint -> fingerprint -> bool
(** Structural equality (fingerprints are plain data). *)

val diff_fingerprint : fingerprint -> fingerprint -> string option
(** [None] when equal; otherwise a short human-readable description of
    the first divergence, for failure messages. *)

val schedule_blind : fingerprint -> fingerprint
(** The residue a schedule (equal-timestamp execution order) may never
    change: verdict counts plus each verdict's [taint-class | verdict |
    primary | suspects] line with the taint's serial wildcarded and the
    trigger/decision timestamps dropped (tie order legitimately shifts
    serial assignment and per-trigger timings). The report is cleared.
    The [Jury_mc] explorer compares schedules through this
    projection. *)

val diff_schedule_blind : fingerprint -> fingerprint -> string option
(** {!diff_fingerprint} on the {!schedule_blind} projections. *)

val execute :
  ?chooser:Jury_sim.Engine.chooser -> ?deterministic:bool ->
  ?shards:int -> ?batch_us:int option -> ?pipeline_jobs:int ->
  ?force_reliable:bool -> ?trace:Jury_obs.Trace.t -> Case.t ->
  outcome
(** Run the case (optionally with one axis overridden, see
    {!Case.jury_config}) and collect the outcome. Deterministic: equal
    arguments give equal outcomes, whatever ran before in the process.

    [chooser] installs an equal-timestamp tie chooser on the run's
    engine ({!Jury_sim.Engine.set_chooser}) — the schedule explorer's
    entry point; omitted, the run is the seed's FIFO order.
    [deterministic] (default false) collapses every stochastic latency:
    {!Jury_controller.Profile.deterministic} on the controller profile
    and [deterministic_latencies] on the deployment. The explorer
    requires both together. [pipeline_jobs] forwards to
    {!Case.jury_config}, which also projects the case onto the
    pipeline-eligible feature set — pass it on {e every} run being
    compared, [1] included. [trace] attaches a causal-trace sink to
    the run's engine before anything is scheduled; trace emission draws
    no randomness, so an attached trace never perturbs the run —
    coverage extraction reads span phases from it without disturbing
    blind determinism. *)
