(** The fuzzing loop: generate cases, run the oracles, shrink and
    report failures.

    Case [i] of a run with base seed [s] is generated from seed
    [s + i], so any failure replays standalone: rerun with
    [~seed:(s + i) ~cases:1] (the per-case seed is printed in every
    failure report) and the identical case — topology, workload, fault
    schedule, channel and validator knobs — is regenerated and
    re-executed bit-for-bit.

    With [jobs > 1] the per-case oracle batteries fan out on a
    {!Jury_par.Pool}; results are collected with [map_ordered], so the
    report is independent of the job count. *)

type failure = {
  index : int;           (** case number within the run *)
  case_seed : int;       (** regenerates the case: [seed + index] *)
  case : Case.t;         (** as generated *)
  violations : (Oracle.t * string) list;  (** against [case] *)
  shrink : Shrink.outcome option;
      (** [None] when shrinking was disabled ([max_shrink = 0]) *)
}

type summary = {
  cases : int;           (** cases executed *)
  oracles : Oracle.t list;  (** battery that was applied *)
  failures : failure list;
}

val repro : failure -> string
(** A standalone report for one failure: the per-case seed and CLI
    replay line, the violated oracles, the (shrunk) case as both a
    one-line description and an OCaml literal ready to append to the
    [test/repros] corpus. *)

val run :
  ?log:(string -> unit) ->
  ?jobs:int ->
  ?oracles:Oracle.t list ->
  ?max_shrink:int ->
  cases:int -> seed:int -> unit -> summary
(** Fuzz [cases] cases from [seed]. [log] (default silent) receives
    one line per progress tick and per failure. [max_shrink] (default
    200) bounds shrinking executions per failure; [0] disables
    shrinking. [jobs] defaults to 1. *)
