open Jury_sim
module Types = Jury_controller.Types
module Validator = Jury.Validator
module Response = Jury.Response
module Snapshot = Jury.Snapshot
module Event = Jury_store.Event
module Names = Jury_store.Cache_names

type result = Pass | Fail of string

type executor =
  ?shards:int -> ?batch_us:int option -> ?pipeline_jobs:int ->
  ?force_reliable:bool -> Case.t ->
  Run.outcome

type ctx = { case : Case.t; execute : executor; base : Run.outcome Lazy.t }

let ctx_with ~execute case = { case; execute; base = lazy (execute case) }

let ctx case =
  ctx_with case
    ~execute:(fun ?shards ?batch_us ?pipeline_jobs ?force_reliable c ->
      Run.execute ?shards ?batch_us ?pipeline_jobs ?force_reliable c)

type t = {
  name : string;
  family : string;
  doc : string;
  check : ctx -> result;
}

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

let all_pass checks =
  let rec go = function
    | [] -> Pass
    | (true, _) :: rest -> go rest
    | (false, msg) :: _ -> Fail msg
  in
  go checks

(* --- conservation ------------------------------------------------- *)

let verdict_conservation { base; _ } =
  let o = Lazy.force base in
  let fp = o.Run.fp in
  all_pass
    [ (o.Run.pending_after_flush = 0,
       Printf.sprintf "%d triggers still pending after flush"
         o.Run.pending_after_flush);
      (List.length fp.Run.verdict_lines = fp.Run.decided,
       Printf.sprintf "decided=%d but %d verdicts recorded" fp.Run.decided
         (List.length fp.Run.verdict_lines));
      (o.Run.detection_count = fp.Run.decided,
       Printf.sprintf "decided=%d but %d detection-time samples"
         fp.Run.decided o.Run.detection_count);
      (o.Run.alarm_count = fp.Run.faults,
       Printf.sprintf "fault_count=%d but %d alarms" fp.Run.faults
         o.Run.alarm_count) ]

let report_consistency { base; _ } =
  let o = Lazy.force base in
  let fp = o.Run.fp in
  (* The report is an aggregation of the same verdict stream; its
     roll-ups must match the validator's counters exactly. *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let header =
    Printf.sprintf "validated %d responses" fp.Run.decided
  in
  all_pass
    [ (contains header fp.Run.report,
       Printf.sprintf "report does not state %S" header);
      (fp.Run.faults <= fp.Run.decided, "more faults than verdicts");
      (fp.Run.overload
       = List.length
           (List.filter
              (fun l -> contains "|overload|" l)
              fp.Run.verdict_lines),
       "overload counter disagrees with Overload verdicts");
      (fp.Run.degraded
       = List.length
           (List.filter
              (fun l -> contains "|ok-degraded|" l)
              fp.Run.verdict_lines),
       "degraded counter disagrees with Ok_degraded verdicts") ]

let replay_determinism { case; base; execute } =
  let a = Lazy.force base in
  let b = execute case in
  match Run.diff_fingerprint a.Run.fp b.Run.fp with
  | None ->
      if a.Run.totals = b.Run.totals then Pass
      else Fail "channel totals differ between identical executions"
  | Some d -> failf "replay diverged: %s" d

(* --- sharding ----------------------------------------------------- *)

let shard_independence { case; base; execute } =
  let at_1 =
    if case.Case.shards = 1 then Lazy.force base else execute ~shards:1 case
  in
  let at_4 =
    if case.Case.shards = 4 then Lazy.force base else execute ~shards:4 case
  in
  match Run.diff_fingerprint at_1.Run.fp at_4.Run.fp with
  | None -> Pass
  | Some d -> failf "shards=1 vs shards=4: %s" d

(* --- batching (synthetic stream against a bare validator) --------- *)

(* A randomised but deterministic response stream: [case.triggers]
   registered external triggers; per participant a response that may be
   omitted or duplicated, with snapshots and planned actions drawn from
   small pools so the consensus, non-determinism, unverifiable and
   timeout paths all get exercised. *)
let synthetic_stream (case : Case.t) =
  let rng = Rng.create (case.Case.case_seed lxor 0x5eed_beef) in
  let nodes = max 3 case.Case.nodes in
  let event i =
    { Event.cache = Names.flowsdb; op = Event.Create;
      key = Printf.sprintf "k%d" i; value = "v"; origin = 0; seq = i;
      taint = None }
  in
  let snapshots =
    [| Snapshot.pristine;
       Snapshot.observe Snapshot.pristine (event 1);
       Snapshot.observe
         (Snapshot.observe Snapshot.pristine (event 1))
         (event 2) |]
  in
  let action key =
    Types.Cache_write
      { cache = Names.flowsdb; op = Event.Create; key; value = "v" }
  in
  let registrations = ref [] and responses = ref [] in
  for serial = 0 to case.Case.triggers - 1 do
    let primary = Rng.int rng nodes in
    let taint = Types.Taint.external_trigger ~primary ~serial in
    let others =
      List.filter (fun n -> n <> primary) (List.init nodes (fun i -> i))
    in
    let secondaries =
      Rng.sample_without_replacement rng (min case.Case.k (nodes - 1)) others
      |> List.sort compare
    in
    registrations := (taint, primary, secondaries) :: !registrations;
    let respond controller role =
      if Rng.bernoulli rng 0.85 then begin
        let snapshot = Rng.choice rng snapshots in
        let actions =
          if Rng.bernoulli rng 0.8 then [ action "k0" ]
          else [ action (Printf.sprintf "k%d" (Rng.int rng 3)) ]
        in
        let r =
          { Response.controller; taint; snapshot; sent_at = Time.zero; term = 0;
            body = Response.Execution { role; actions } }
        in
        responses := r :: !responses;
        if Rng.bernoulli rng 0.1 then responses := r :: !responses
      end
    in
    respond primary `Primary;
    List.iter (fun s -> respond s `Secondary) secondaries
  done;
  let stream = Array.of_list (List.rev !responses) in
  Rng.shuffle rng stream;
  (List.rev !registrations, Array.to_list stream)

let bare_validator (case : Case.t) ~shards =
  let engine = Engine.create ~seed:case.Case.case_seed () in
  let max_inflight =
    Option.map (fun _ -> max 2 (case.Case.triggers / 2)) case.Case.max_inflight
  in
  let cfg =
    Jury.Jury_config.validator
      ~ack_peers_of:(fun _ -> [])
      (Jury.Jury_config.make ~k:case.Case.k ~timeout:(Time.ms 100) ~shards
         ?max_inflight ())
  in
  Validator.create engine cfg

let chunk sizes_rng stream =
  let rec go acc = function
    | [] -> List.rev acc
    | rest ->
        let n = 1 + Rng.int sizes_rng 5 in
        let rec take i xs taken =
          match xs with
          | x :: xs' when i < n -> take (i + 1) xs' (x :: taken)
          | _ -> (List.rev taken, xs)
        in
        let batch, rest = take 0 rest [] in
        go (batch :: acc) rest
  in
  go [] stream

let batch_equivalence { case; _ } =
  let registrations, stream = synthetic_stream case in
  let drive ~shards deliver =
    let v = bare_validator case ~shards in
    List.iter
      (fun (taint, primary, secondaries) ->
        Validator.register_external v ~taint ~at:Time.zero ~primary
          ~secondaries)
      registrations;
    deliver v;
    Validator.flush v;
    ( Run.fingerprint_of_validator v,
      Validator.duplicate_count v,
      Validator.late_count v,
      Validator.straggler_count v )
  in
  let per_event =
    drive ~shards:1 (fun v -> List.iter (Validator.deliver v) stream)
  in
  let one_batch = drive ~shards:1 (fun v -> Validator.deliver_batch v stream) in
  let chunked =
    drive ~shards:1 (fun v ->
        let rng = Rng.create (case.Case.case_seed lxor 0x0c_4a_11) in
        List.iter (Validator.deliver_batch v) (chunk rng stream))
  in
  let sharded = drive ~shards:4 (fun v -> Validator.deliver_batch v stream) in
  let compare_to label (fp', d', l', s') =
    let fp, d, l, s = per_event in
    match Run.diff_fingerprint fp fp' with
    | Some diff -> Some (Printf.sprintf "%s: %s" label diff)
    | None ->
        if (d, l, s) <> (d', l', s') then
          Some
            (Printf.sprintf
               "%s: dedup counters diverged (dup %d vs %d, late %d vs %d, \
                stragglers %d vs %d)"
               label d d' l l' s s')
        else None
  in
  match
    List.filter_map Fun.id
      [ compare_to "one-batch" one_batch;
        compare_to "chunked" chunked;
        compare_to "sharded-batch" sharded ]
  with
  | [] -> Pass
  | msg :: _ -> Fail msg

(* --- parallel ----------------------------------------------------- *)

let parallel_identity { case; execute; _ } =
  (* A trimmed copy keeps the mini-sweep cheap: the invariant is about
     the pool, not the workload size. *)
  let trimmed =
    { case with
      Case.duration_ms = min case.Case.duration_ms 300;
      rate = Float.min case.Case.rate 400.;
      faults =
        List.filter (fun (f : Case.fault_event) -> f.Case.at_ms <= 300)
          case.Case.faults }
  in
  let seeds = [ case.Case.case_seed; case.Case.case_seed + 7919 ] in
  let sweep jobs =
    (* Throwaway pool: shut it down or every checked case parks a
       worker domain until process exit and a long battery runs into
       the runtime's domain cap. *)
    let pool = Jury_par.Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Jury_par.Pool.shutdown pool)
      (fun () ->
        Jury_par.Pool.map_ordered pool seeds (fun seed ->
            (execute { trimmed with Case.case_seed = seed }).Run.fp))
  in
  let serial = sweep 1 and parallel = sweep 2 in
  let rec first_diff i = function
    | [], [] -> Pass
    | a :: xs, b :: ys -> (
        match Run.diff_fingerprint a b with
        | None -> first_diff (i + 1) (xs, ys)
        | Some d -> failf "sweep point %d: %s" i d)
    | _ -> Fail "sweep result lists have different lengths"
  in
  first_diff 0 (serial, parallel)

(* --- pipeline ----------------------------------------------------- *)

(* The staged pipeline's contract is that the job count is
   unobservable: the same case at jobs 1 (the serial oracle path), 2
   and 4 must yield the same verdict multiset and conserve every
   channel and ingestion counter. [Run.execute ~pipeline_jobs]
   projects the case onto the pipeline-eligible feature set — jobs=1
   included, so all three runs share one configuration and differ only
   in where validation executes. The rendered report is excluded from
   the comparison: its suspect ranking breaks alarm-count ties in hash
   order, which the shard merge may legitimately permute. *)
let pipeline_jobs_independence { case; execute; _ } =
  let trimmed =
    { case with
      Case.duration_ms = min case.Case.duration_ms 400;
      rate = Float.min case.Case.rate 400.;
      faults =
        (* Add_rule is also dropped: the staged path excludes policy
           rules by construction (the install-time gate sees an empty
           engine), and a mid-run [add_rule] would mutate an engine
           shared with detached shard replicas. The invariant under
           test — job count unobservable — is about the pipeline, not
           policy churn. *)
        List.filter
          (fun (f : Case.fault_event) ->
            f.Case.at_ms <= 400
            && match f.Case.action with Case.Add_rule _ -> false | _ -> true)
          case.Case.faults }
  in
  let strip (o : Run.outcome) = { o.Run.fp with Run.report = "" } in
  let conserved (o : Run.outcome) =
    ( o.Run.pending_after_flush, o.Run.duplicates, o.Run.late,
      o.Run.stragglers, o.Run.batches, o.Run.batched_responses,
      o.Run.epoch, o.Run.totals, o.Run.obs_decided, o.Run.obs_batches,
      o.Run.obs_channel_sent )
  in
  let serial = execute ~pipeline_jobs:1 trimmed in
  let against jobs =
    let o = execute ~pipeline_jobs:jobs trimmed in
    match Run.diff_fingerprint (strip serial) (strip o) with
    | Some d -> Some (Printf.sprintf "jobs=1 vs jobs=%d: %s" jobs d)
    | None ->
        if conserved serial <> conserved o then
          Some
            (Printf.sprintf
               "jobs=1 vs jobs=%d: channel/ingestion counters diverged" jobs)
        else None
  in
  match List.filter_map against [ 2; 4 ] with
  | [] -> Pass
  | msg :: _ -> Fail msg

(* --- channel ------------------------------------------------------ *)

let channel_conservation { case; base; _ } =
  let o = Lazy.force base in
  let link_ok (name, (s : Jury.Channel.stats)) =
    if s.Jury.Channel.sent <> s.Jury.Channel.delivered + s.Jury.Channel.dropped
    then
      Some
        (Printf.sprintf "%s: sent=%d <> delivered=%d + dropped=%d" name
           s.Jury.Channel.sent s.Jury.Channel.delivered s.Jury.Channel.dropped)
    else if s.Jury.Channel.dropped > 0 && case.Case.drop = 0. then
      Some (Printf.sprintf "%s: drops on a drop-free channel" name)
    else if s.Jury.Channel.duplicated > 0 && case.Case.duplicate = 0. then
      Some (Printf.sprintf "%s: duplicates on a duplicate-free channel" name)
    else None
  in
  match List.filter_map link_ok o.Run.links with
  | msg :: _ -> Fail msg
  | [] ->
      let sum f = List.fold_left (fun acc (_, s) -> acc + f s) 0 o.Run.links in
      all_pass
        [ (o.Run.totals.Jury.Channel.sent = sum (fun s -> s.Jury.Channel.sent),
           "channel totals disagree with the per-link sum");
          (case.Case.retries > 0 || o.Run.totals.Jury.Channel.retransmitted = 0,
           "retransmissions recorded with retransmit disabled");
          (case.Case.retries > 0 || o.Run.retransmits = 0,
           "validator retransmit count nonzero with retransmit disabled") ]

let zero_loss_identity { case; base; execute } =
  if not (Case.zero_loss case) then Pass
  else
    let o = Lazy.force base in
    let reliable = execute ~force_reliable:true case in
    match Run.diff_fingerprint o.Run.fp reliable.Run.fp with
    | None ->
        if o.Run.totals = reliable.Run.totals then Pass
        else Fail "zero-loss vs reliable: channel totals differ"
    | Some d -> failf "zero-loss vs reliable: %s" d

(* --- obs ---------------------------------------------------------- *)

let obs_consistency { base; _ } =
  let o = Lazy.force base in
  all_pass
    [ (o.Run.obs_decided = o.Run.fp.Run.decided,
       Printf.sprintf "obs shard decided sum %d <> decided %d"
         o.Run.obs_decided o.Run.fp.Run.decided);
      (o.Run.obs_batches = o.Run.batches,
       Printf.sprintf "obs batches sum %d <> batch count %d" o.Run.obs_batches
         o.Run.batches);
      (o.Run.obs_overloads = o.Run.fp.Run.overload,
       Printf.sprintf "obs overload sum %d <> overload count %d"
         o.Run.obs_overloads o.Run.fp.Run.overload);
      (o.Run.obs_retransmits = o.Run.retransmits,
       Printf.sprintf "obs retransmit sum %d <> retransmit count %d"
         o.Run.obs_retransmits o.Run.retransmits);
      (o.Run.obs_epoch = o.Run.epoch,
       Printf.sprintf "obs epoch %d <> current epoch %d" o.Run.obs_epoch
         o.Run.epoch);
      (o.Run.obs_channel_sent = o.Run.totals.Jury.Channel.sent,
       Printf.sprintf "obs channel sent sum %d <> channel totals %d"
         o.Run.obs_channel_sent o.Run.totals.Jury.Channel.sent) ]

(* --- policy ------------------------------------------------------- *)

(* Independent of the deployment run (never forces [base]): draws a
   rule set and a query batch from the case seed and requires the
   compiled decision structure to agree with the reference interpreter
   verdict-for-verdict, before and after a mid-stream add_rule. *)
let policy_equivalence { case; _ } =
  match Policy_gen.diff ~seed:case.Case.case_seed () with
  | None -> Pass
  | Some msg -> failf "compiled <> interpreted: %s" msg

(* The catalog lives in {!Registry}; this module only defines the
   invariant checks and the context they run against. *)

let check_run ~oracles c =
  List.filter_map
    (fun o ->
      match o.check c with
      | Pass -> None
      | Fail msg -> Some (o, msg)
      | exception e ->
          Some
            (o, Printf.sprintf "oracle raised %s" (Printexc.to_string e)))
    oracles

let check_case ~oracles case = check_run ~oracles (ctx case)
