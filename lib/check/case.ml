type topo_kind = Linear | Ring | Star | Single
type workload_kind = Mix | Connections | Joins | Blast

type fault_action =
  | Slow of { node : int; delay_ms : int }
  | Lossy of { node : int; omit : float }
  | Crash of { node : int }
  | Drop_sends of { node : int }
  | Blackhole of { node : int }
  | Lock_cache of { node : int; cache : string }
  | Heal of { node : int }
  (* The stateful vocabulary below is never drawn by the blind
     generator (its draw sequence is pinned by replayability); these
     actions enter cases only through Mutate, so blind-mode runs stay
     byte-identical across releases. *)
  | Rejoin of { node : int }
  | Byzantine of { node : int }
  | Partition of { node : int }
  | Add_rule of { rule : string }
  | Fail_master of { node : int }

type fault_event = { at_ms : int; action : fault_action }

type t = {
  case_seed : int;
  topo : topo_kind;
  switches : int;
  hosts_per_switch : int;
  nodes : int;
  k : int;
  odl : bool;
  workload : workload_kind;
  rate : float;
  duration_ms : int;
  faults : fault_event list;
  drop : float;
  duplicate : float;
  jitter_us : float;
  retries : int;
  degraded_quorum : int option;
  shards : int;
  max_inflight : int option;
  batch_us : int option;
  triggers : int;
}

(* Locked caches must be ones the controllers actually write during a
   benign run, so the fault has something to block. *)
let lockable_caches =
  [ Jury_store.Cache_names.flowsdb; Jury_store.Cache_names.linksdb;
    Jury_store.Cache_names.switchdb; Jury_store.Cache_names.hostdb ]

let gen_fault_action ~nodes : fault_action Gen.t =
  let open Gen in
  bind (int_in 0 (nodes - 1)) (fun node ->
      frequency_gen
        [ (3, map (fun delay_ms -> Slow { node; delay_ms }) (int_in 5 120));
          (2, map (fun omit -> Lossy { node; omit }) (float_in 0.2 0.9));
          (1, return (Crash { node }));
          (2, return (Drop_sends { node }));
          (2, return (Blackhole { node }));
          (1, map (fun cache -> Lock_cache { node; cache })
               (choose lockable_caches));
          (1, return (Heal { node })) ])

let gen : int -> t Gen.t =
 fun case_seed ->
  let open Gen in
  bind (frequency [ (5, Linear); (2, Ring); (2, Star); (1, Single) ])
  @@ fun topo ->
  bind (int_in 2 6) @@ fun switches ->
  bind (int_in 1 2) @@ fun hosts_per_switch ->
  bind (int_in 3 5) @@ fun nodes ->
  bind (int_in 1 (nodes - 1)) @@ fun k ->
  bind (bernoulli 0.25) @@ fun odl ->
  bind (frequency [ (5, Mix); (3, Connections); (1, Joins); (1, Blast) ])
  @@ fun workload ->
  bind (float_in 100. 900.) @@ fun rate ->
  bind (int_in 200 800) @@ fun duration_ms ->
  bind
    (list_of ~len:(int_in 0 4)
       (bind (int_in 0 duration_ms) (fun at_ms ->
            map (fun action -> { at_ms; action }) (gen_fault_action ~nodes))))
  @@ fun faults ->
  bind (frequency_gen [ (5, return 0.); (5, float_in 0.01 0.15) ])
  @@ fun drop ->
  bind (frequency_gen [ (7, return 0.); (3, float_in 0.005 0.05) ])
  @@ fun duplicate ->
  bind (frequency_gen [ (6, return 0.); (4, float_in 10. 200.) ])
  @@ fun jitter_us ->
  bind (int_in 0 2) @@ fun retries ->
  bind (option 0.3 (int_in 1 k)) @@ fun degraded_quorum ->
  bind (choose [ 1; 2; 4 ]) @@ fun shards ->
  bind (option 0.2 (int_in 64 512)) @@ fun max_inflight ->
  bind (option 0.4 (int_in 50 500)) @@ fun batch_us ->
  map
    (fun triggers ->
      { case_seed;
        topo;
        (* A ring degenerates below three switches; the builder rejects
           it, so the generator never proposes one. *)
        switches = (if topo = Ring then max 3 switches else switches);
        (* Cbench blasts SYNs between two hosts on one switch. *)
        hosts_per_switch = (if workload = Blast then 2 else hosts_per_switch);
        nodes;
        k;
        odl;
        workload;
        rate;
        duration_ms;
        faults = List.sort (fun a b -> compare a.at_ms b.at_ms) faults;
        drop;
        duplicate;
        jitter_us;
        retries;
        degraded_quorum;
        shards;
        max_inflight;
        batch_us;
        triggers })
    (int_in 5 40)

let generate ~seed = Gen.run ~seed (gen seed)

let zero_loss t = t.drop = 0. && t.duplicate = 0. && t.jitter_us = 0.

let channel t =
  Jury.Jury_config.lossy_channel ~drop:t.drop ~duplicate:t.duplicate
    ~jitter_us:t.jitter_us ()

let jury_config ?shards ?batch_us ?pipeline_jobs ?policies
    ?(force_reliable = false) ?(deterministic = false) t =
  let shards = Option.value shards ~default:t.shards in
  let batch_us = Option.value batch_us ~default:t.batch_us in
  let channel =
    if force_reliable then (
      if not (zero_loss t) then
        invalid_arg "Case.jury_config: force_reliable on a lossy case";
      Jury.Channel.reliable)
    else channel t
  in
  let retransmit =
    if t.retries > 0 then
      Some (Jury.Jury_config.retransmit ~max_retries:t.retries ())
    else None
  in
  (* Asking for an explicit job count — including 1 — projects the case
     onto the pipeline-eligible feature set, so that jobs=1 and jobs=N
     runs of the same case are apples-to-apples: retransmission and the
     in-flight cap are dropped, and batching is forced on (the staged
     pipeline only ingests per-tick batches). *)
  let retransmit, max_inflight, batch_us =
    match pipeline_jobs with
    | None -> (retransmit, t.max_inflight, batch_us)
    | Some _ -> (None, None, Some (Option.value batch_us ~default:200))
  in
  Jury.Jury_config.make ~k:t.k ~encapsulation:t.odl ~channel ?retransmit
    ?degraded_quorum:t.degraded_quorum ~shards ?max_inflight
    ?batch:(Option.map Jury_sim.Time.us batch_us)
    ?pipeline_jobs ?policies ~deterministic_latencies:deterministic ()

(* --- rendering --- *)

let topo_name = function
  | Linear -> "Linear"
  | Ring -> "Ring"
  | Star -> "Star"
  | Single -> "Single"

let workload_name = function
  | Mix -> "Mix"
  | Connections -> "Connections"
  | Joins -> "Joins"
  | Blast -> "Blast"

let action_name = function
  | Slow { node; delay_ms } -> Printf.sprintf "slow(%d,%dms)" node delay_ms
  | Lossy { node; omit } -> Printf.sprintf "lossy(%d,%.2f)" node omit
  | Crash { node } -> Printf.sprintf "crash(%d)" node
  | Drop_sends { node } -> Printf.sprintf "drop-sends(%d)" node
  | Blackhole { node } -> Printf.sprintf "blackhole(%d)" node
  | Lock_cache { node; cache } -> Printf.sprintf "lock(%d,%s)" node cache
  | Heal { node } -> Printf.sprintf "heal(%d)" node
  | Rejoin { node } -> Printf.sprintf "rejoin(%d)" node
  | Byzantine { node } -> Printf.sprintf "byzantine(%d)" node
  | Partition { node } -> Printf.sprintf "partition(%d)" node
  | Add_rule { rule } -> Printf.sprintf "add-rule(%s)" rule
  | Fail_master { node } -> Printf.sprintf "fail-master(%d)" node

let pp ppf t =
  Format.fprintf ppf
    "seed=%d %s sw=%d hps=%d n=%d k=%d %s %s rate=%.0f dur=%dms faults=[%s] \
     drop=%.3f dup=%.3f jit=%.0fus retries=%d degq=%s shards=%d inflight=%s \
     batch=%s triggers=%d"
    t.case_seed (topo_name t.topo) t.switches t.hosts_per_switch t.nodes t.k
    (if t.odl then "odl" else "onos")
    (workload_name t.workload) t.rate t.duration_ms
    (String.concat ";"
       (List.map
          (fun f -> Printf.sprintf "%dms:%s" f.at_ms (action_name f.action))
          t.faults))
    t.drop t.duplicate t.jitter_us t.retries
    (match t.degraded_quorum with None -> "-" | Some q -> string_of_int q)
    t.shards
    (match t.max_inflight with None -> "-" | Some m -> string_of_int m)
    (match t.batch_us with None -> "-" | Some b -> string_of_int b ^ "us")
    t.triggers

(* Exact decimal round-trip, and a valid OCaml literal. *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let option_lit f = function
  | None -> "None"
  | Some v -> Printf.sprintf "Some %s" (f v)

let action_ocaml = function
  | Slow { node; delay_ms } ->
      Printf.sprintf "Jury_check.Case.Slow { node = %d; delay_ms = %d }" node
        delay_ms
  | Lossy { node; omit } ->
      Printf.sprintf "Jury_check.Case.Lossy { node = %d; omit = %s }" node
        (float_lit omit)
  | Crash { node } -> Printf.sprintf "Jury_check.Case.Crash { node = %d }" node
  | Drop_sends { node } ->
      Printf.sprintf "Jury_check.Case.Drop_sends { node = %d }" node
  | Blackhole { node } ->
      Printf.sprintf "Jury_check.Case.Blackhole { node = %d }" node
  | Lock_cache { node; cache } ->
      Printf.sprintf "Jury_check.Case.Lock_cache { node = %d; cache = %S }"
        node cache
  | Heal { node } -> Printf.sprintf "Jury_check.Case.Heal { node = %d }" node
  | Rejoin { node } ->
      Printf.sprintf "Jury_check.Case.Rejoin { node = %d }" node
  | Byzantine { node } ->
      Printf.sprintf "Jury_check.Case.Byzantine { node = %d }" node
  | Partition { node } ->
      Printf.sprintf "Jury_check.Case.Partition { node = %d }" node
  | Add_rule { rule } ->
      Printf.sprintf "Jury_check.Case.Add_rule { rule = %S }" rule
  | Fail_master { node } ->
      Printf.sprintf "Jury_check.Case.Fail_master { node = %d }" node

let to_ocaml ?(indent = "  ") t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (indent ^ s ^ "\n")) fmt in
  Buffer.add_string b "{ Jury_check.Case.case_seed = ";
  Buffer.add_string b (string_of_int t.case_seed);
  Buffer.add_string b ";\n";
  line "topo = Jury_check.Case.%s;" (topo_name t.topo);
  line "switches = %d;" t.switches;
  line "hosts_per_switch = %d;" t.hosts_per_switch;
  line "nodes = %d;" t.nodes;
  line "k = %d;" t.k;
  line "odl = %b;" t.odl;
  line "workload = Jury_check.Case.%s;" (workload_name t.workload);
  line "rate = %s;" (float_lit t.rate);
  line "duration_ms = %d;" t.duration_ms;
  line "faults =";
  line "  [ %s ];"
    (String.concat ";\n    "
       (List.map
          (fun f ->
            Printf.sprintf "{ Jury_check.Case.at_ms = %d; action = %s }"
              f.at_ms (action_ocaml f.action))
          t.faults));
  line "drop = %s;" (float_lit t.drop);
  line "duplicate = %s;" (float_lit t.duplicate);
  line "jitter_us = %s;" (float_lit t.jitter_us);
  line "retries = %d;" t.retries;
  line "degraded_quorum = %s;" (option_lit string_of_int t.degraded_quorum);
  line "shards = %d;" t.shards;
  line "max_inflight = %s;" (option_lit string_of_int t.max_inflight);
  line "batch_us = %s;" (option_lit string_of_int t.batch_us);
  line "triggers = %d }" t.triggers;
  Buffer.contents b

let equal = ( = )

(* --- axis lenses --- *)

module Lens = struct
  type case = t

  type 'a axis = {
    name : string;
    get : case -> 'a;
    set : case -> 'a -> case;
  }

  let min_switches (c : case) = if c.topo = Ring then 3 else 1
  let min_hosts_per_switch (c : case) = if c.workload = Blast then 2 else 1

  (* Every workload except host-joins needs two reachable hosts in
     total (Blast needs them on one switch); the topology builders and
     workload drivers reject anything below this. Not clampable along a
     single axis (several axis combinations satisfy it), so it stays a
     predicate: Shrink drops violating candidates, Mutate retries. *)
  let hosts_floor (c : case) =
    match c.workload with
    | Joins -> c.switches * c.hosts_per_switch >= 1
    | Mix | Connections ->
        (if c.topo = Single then max 2 c.switches
         else c.switches * c.hosts_per_switch)
        >= 2
    | Blast -> c.hosts_per_switch >= 2

  let clamp_fault_nodes ~nodes faults =
    let clamp_node n = max 0 (min n (nodes - 1)) in
    List.map
      (fun f ->
        { f with
          action =
            (match f.action with
            | Slow s -> Slow { s with node = clamp_node s.node }
            | Lossy l -> Lossy { l with node = clamp_node l.node }
            | Crash { node } -> Crash { node = clamp_node node }
            | Drop_sends { node } -> Drop_sends { node = clamp_node node }
            | Blackhole { node } -> Blackhole { node = clamp_node node }
            | Lock_cache l -> Lock_cache { l with node = clamp_node l.node }
            | Heal { node } -> Heal { node = clamp_node node }
            | Rejoin { node } -> Rejoin { node = clamp_node node }
            | Byzantine { node } -> Byzantine { node = clamp_node node }
            | Partition { node } -> Partition { node = clamp_node node }
            | Add_rule _ as a -> a
            | Fail_master { node } -> Fail_master { node = clamp_node node }) })
      faults

  let topo =
    { name = "topo";
      get = (fun c -> c.topo);
      set =
        (fun c v ->
          { c with topo = v; switches = max (if v = Ring then 3 else 1) c.switches }) }

  let switches =
    { name = "switches";
      get = (fun c -> c.switches);
      set = (fun c v -> { c with switches = max (min_switches c) v }) }

  let hosts_per_switch =
    { name = "hosts_per_switch";
      get = (fun c -> c.hosts_per_switch);
      set =
        (fun c v -> { c with hosts_per_switch = max (min_hosts_per_switch c) v }) }

  let workload =
    { name = "workload";
      get = (fun c -> c.workload);
      set =
        (fun c v ->
          let c = { c with workload = v } in
          { c with hosts_per_switch = max (min_hosts_per_switch c) c.hosts_per_switch }) }

  (* Shrinking or churning the cluster keeps k < nodes, the degraded
     quorum <= k, and every fault's node reference in range. *)
  let nodes =
    { name = "nodes";
      get = (fun c -> c.nodes);
      set =
        (fun c v ->
          let nodes = max 3 v in
          let k = max 1 (min c.k (nodes - 1)) in
          { c with
            nodes;
            k;
            degraded_quorum = Option.map (fun q -> max 1 (min q k)) c.degraded_quorum;
            faults = clamp_fault_nodes ~nodes c.faults }) }

  let k =
    { name = "k";
      get = (fun c -> c.k);
      set =
        (fun c v ->
          let k = max 1 (min v (c.nodes - 1)) in
          { c with
            k;
            degraded_quorum = Option.map (fun q -> max 1 (min q k)) c.degraded_quorum }) }

  let odl =
    { name = "odl"; get = (fun c -> c.odl); set = (fun c v -> { c with odl = v }) }

  let rate =
    { name = "rate";
      get = (fun c -> c.rate);
      set = (fun c v -> { c with rate = Float.max 25. v }) }

  let duration_ms =
    { name = "duration_ms";
      get = (fun c -> c.duration_ms);
      set = (fun c v -> { c with duration_ms = max 50 v }) }

  let faults =
    { name = "faults";
      get = (fun c -> c.faults);
      set =
        (fun c v ->
          { c with
            faults =
              (* stable: equal-at_ms entries keep their order, so
                 setting an already-sorted schedule is the identity *)
              List.stable_sort (fun a b -> compare a.at_ms b.at_ms)
                (clamp_fault_nodes ~nodes:c.nodes
                   (List.map (fun f -> { f with at_ms = max 0 f.at_ms }) v)) }) }

  let drop =
    { name = "drop";
      get = (fun c -> c.drop);
      set = (fun c v -> { c with drop = Float.max 0. (Float.min 0.5 v) }) }

  let duplicate =
    { name = "duplicate";
      get = (fun c -> c.duplicate);
      set = (fun c v -> { c with duplicate = Float.max 0. (Float.min 0.5 v) }) }

  let jitter_us =
    { name = "jitter_us";
      get = (fun c -> c.jitter_us);
      set = (fun c v -> { c with jitter_us = Float.max 0. (Float.min 500. v) }) }

  let retries =
    { name = "retries";
      get = (fun c -> c.retries);
      set = (fun c v -> { c with retries = max 0 (min 3 v) }) }

  let degraded_quorum =
    { name = "degraded_quorum";
      get = (fun c -> c.degraded_quorum);
      set =
        (fun c v ->
          { c with
            degraded_quorum = Option.map (fun q -> max 1 (min q c.k)) v }) }

  let shards =
    { name = "shards";
      get = (fun c -> c.shards);
      set = (fun c v -> { c with shards = max 1 (min 8 v) }) }

  let max_inflight =
    { name = "max_inflight";
      get = (fun c -> c.max_inflight);
      set =
        (fun c v -> { c with max_inflight = Option.map (fun m -> max 1 m) v }) }

  let batch_us =
    { name = "batch_us";
      get = (fun c -> c.batch_us);
      set = (fun c v -> { c with batch_us = Option.map (fun b -> max 1 b) v }) }

  let triggers =
    { name = "triggers";
      get = (fun c -> c.triggers);
      set = (fun c v -> { c with triggers = max 1 (min 80 v) }) }
end
