type topo_kind = Linear | Ring | Star | Single
type workload_kind = Mix | Connections | Joins | Blast

type fault_action =
  | Slow of { node : int; delay_ms : int }
  | Lossy of { node : int; omit : float }
  | Crash of { node : int }
  | Drop_sends of { node : int }
  | Blackhole of { node : int }
  | Lock_cache of { node : int; cache : string }
  | Heal of { node : int }

type fault_event = { at_ms : int; action : fault_action }

type t = {
  case_seed : int;
  topo : topo_kind;
  switches : int;
  hosts_per_switch : int;
  nodes : int;
  k : int;
  odl : bool;
  workload : workload_kind;
  rate : float;
  duration_ms : int;
  faults : fault_event list;
  drop : float;
  duplicate : float;
  jitter_us : float;
  retries : int;
  degraded_quorum : int option;
  shards : int;
  max_inflight : int option;
  batch_us : int option;
  triggers : int;
}

(* Locked caches must be ones the controllers actually write during a
   benign run, so the fault has something to block. *)
let lockable_caches =
  [ Jury_store.Cache_names.flowsdb; Jury_store.Cache_names.linksdb;
    Jury_store.Cache_names.switchdb; Jury_store.Cache_names.hostdb ]

let gen_fault_action ~nodes : fault_action Gen.t =
  let open Gen in
  bind (int_in 0 (nodes - 1)) (fun node ->
      frequency_gen
        [ (3, map (fun delay_ms -> Slow { node; delay_ms }) (int_in 5 120));
          (2, map (fun omit -> Lossy { node; omit }) (float_in 0.2 0.9));
          (1, return (Crash { node }));
          (2, return (Drop_sends { node }));
          (2, return (Blackhole { node }));
          (1, map (fun cache -> Lock_cache { node; cache })
               (choose lockable_caches));
          (1, return (Heal { node })) ])

let gen : int -> t Gen.t =
 fun case_seed ->
  let open Gen in
  bind (frequency [ (5, Linear); (2, Ring); (2, Star); (1, Single) ])
  @@ fun topo ->
  bind (int_in 2 6) @@ fun switches ->
  bind (int_in 1 2) @@ fun hosts_per_switch ->
  bind (int_in 3 5) @@ fun nodes ->
  bind (int_in 1 (nodes - 1)) @@ fun k ->
  bind (bernoulli 0.25) @@ fun odl ->
  bind (frequency [ (5, Mix); (3, Connections); (1, Joins); (1, Blast) ])
  @@ fun workload ->
  bind (float_in 100. 900.) @@ fun rate ->
  bind (int_in 200 800) @@ fun duration_ms ->
  bind
    (list_of ~len:(int_in 0 4)
       (bind (int_in 0 duration_ms) (fun at_ms ->
            map (fun action -> { at_ms; action }) (gen_fault_action ~nodes))))
  @@ fun faults ->
  bind (frequency_gen [ (5, return 0.); (5, float_in 0.01 0.15) ])
  @@ fun drop ->
  bind (frequency_gen [ (7, return 0.); (3, float_in 0.005 0.05) ])
  @@ fun duplicate ->
  bind (frequency_gen [ (6, return 0.); (4, float_in 10. 200.) ])
  @@ fun jitter_us ->
  bind (int_in 0 2) @@ fun retries ->
  bind (option 0.3 (int_in 1 k)) @@ fun degraded_quorum ->
  bind (choose [ 1; 2; 4 ]) @@ fun shards ->
  bind (option 0.2 (int_in 64 512)) @@ fun max_inflight ->
  bind (option 0.4 (int_in 50 500)) @@ fun batch_us ->
  map
    (fun triggers ->
      { case_seed;
        topo;
        (* A ring degenerates below three switches; the builder rejects
           it, so the generator never proposes one. *)
        switches = (if topo = Ring then max 3 switches else switches);
        (* Cbench blasts SYNs between two hosts on one switch. *)
        hosts_per_switch = (if workload = Blast then 2 else hosts_per_switch);
        nodes;
        k;
        odl;
        workload;
        rate;
        duration_ms;
        faults = List.sort (fun a b -> compare a.at_ms b.at_ms) faults;
        drop;
        duplicate;
        jitter_us;
        retries;
        degraded_quorum;
        shards;
        max_inflight;
        batch_us;
        triggers })
    (int_in 5 40)

let generate ~seed = Gen.run ~seed (gen seed)

let zero_loss t = t.drop = 0. && t.duplicate = 0. && t.jitter_us = 0.

let channel t =
  Jury.Jury_config.lossy_channel ~drop:t.drop ~duplicate:t.duplicate
    ~jitter_us:t.jitter_us ()

let jury_config ?shards ?batch_us ?pipeline_jobs ?(force_reliable = false)
    ?(deterministic = false) t =
  let shards = Option.value shards ~default:t.shards in
  let batch_us = Option.value batch_us ~default:t.batch_us in
  let channel =
    if force_reliable then (
      if not (zero_loss t) then
        invalid_arg "Case.jury_config: force_reliable on a lossy case";
      Jury.Channel.reliable)
    else channel t
  in
  let retransmit =
    if t.retries > 0 then
      Some (Jury.Jury_config.retransmit ~max_retries:t.retries ())
    else None
  in
  (* Asking for an explicit job count — including 1 — projects the case
     onto the pipeline-eligible feature set, so that jobs=1 and jobs=N
     runs of the same case are apples-to-apples: retransmission and the
     in-flight cap are dropped, and batching is forced on (the staged
     pipeline only ingests per-tick batches). *)
  let retransmit, max_inflight, batch_us =
    match pipeline_jobs with
    | None -> (retransmit, t.max_inflight, batch_us)
    | Some _ -> (None, None, Some (Option.value batch_us ~default:200))
  in
  Jury.Jury_config.make ~k:t.k ~encapsulation:t.odl ~channel ?retransmit
    ?degraded_quorum:t.degraded_quorum ~shards ?max_inflight
    ?batch:(Option.map Jury_sim.Time.us batch_us)
    ?pipeline_jobs ~deterministic_latencies:deterministic ()

(* --- rendering --- *)

let topo_name = function
  | Linear -> "Linear"
  | Ring -> "Ring"
  | Star -> "Star"
  | Single -> "Single"

let workload_name = function
  | Mix -> "Mix"
  | Connections -> "Connections"
  | Joins -> "Joins"
  | Blast -> "Blast"

let action_name = function
  | Slow { node; delay_ms } -> Printf.sprintf "slow(%d,%dms)" node delay_ms
  | Lossy { node; omit } -> Printf.sprintf "lossy(%d,%.2f)" node omit
  | Crash { node } -> Printf.sprintf "crash(%d)" node
  | Drop_sends { node } -> Printf.sprintf "drop-sends(%d)" node
  | Blackhole { node } -> Printf.sprintf "blackhole(%d)" node
  | Lock_cache { node; cache } -> Printf.sprintf "lock(%d,%s)" node cache
  | Heal { node } -> Printf.sprintf "heal(%d)" node

let pp ppf t =
  Format.fprintf ppf
    "seed=%d %s sw=%d hps=%d n=%d k=%d %s %s rate=%.0f dur=%dms faults=[%s] \
     drop=%.3f dup=%.3f jit=%.0fus retries=%d degq=%s shards=%d inflight=%s \
     batch=%s triggers=%d"
    t.case_seed (topo_name t.topo) t.switches t.hosts_per_switch t.nodes t.k
    (if t.odl then "odl" else "onos")
    (workload_name t.workload) t.rate t.duration_ms
    (String.concat ";"
       (List.map
          (fun f -> Printf.sprintf "%dms:%s" f.at_ms (action_name f.action))
          t.faults))
    t.drop t.duplicate t.jitter_us t.retries
    (match t.degraded_quorum with None -> "-" | Some q -> string_of_int q)
    t.shards
    (match t.max_inflight with None -> "-" | Some m -> string_of_int m)
    (match t.batch_us with None -> "-" | Some b -> string_of_int b ^ "us")
    t.triggers

(* Exact decimal round-trip, and a valid OCaml literal. *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let option_lit f = function
  | None -> "None"
  | Some v -> Printf.sprintf "Some %s" (f v)

let action_ocaml = function
  | Slow { node; delay_ms } ->
      Printf.sprintf "Jury_check.Case.Slow { node = %d; delay_ms = %d }" node
        delay_ms
  | Lossy { node; omit } ->
      Printf.sprintf "Jury_check.Case.Lossy { node = %d; omit = %s }" node
        (float_lit omit)
  | Crash { node } -> Printf.sprintf "Jury_check.Case.Crash { node = %d }" node
  | Drop_sends { node } ->
      Printf.sprintf "Jury_check.Case.Drop_sends { node = %d }" node
  | Blackhole { node } ->
      Printf.sprintf "Jury_check.Case.Blackhole { node = %d }" node
  | Lock_cache { node; cache } ->
      Printf.sprintf "Jury_check.Case.Lock_cache { node = %d; cache = %S }"
        node cache
  | Heal { node } -> Printf.sprintf "Jury_check.Case.Heal { node = %d }" node

let to_ocaml ?(indent = "  ") t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (indent ^ s ^ "\n")) fmt in
  Buffer.add_string b "{ Jury_check.Case.case_seed = ";
  Buffer.add_string b (string_of_int t.case_seed);
  Buffer.add_string b ";\n";
  line "topo = Jury_check.Case.%s;" (topo_name t.topo);
  line "switches = %d;" t.switches;
  line "hosts_per_switch = %d;" t.hosts_per_switch;
  line "nodes = %d;" t.nodes;
  line "k = %d;" t.k;
  line "odl = %b;" t.odl;
  line "workload = Jury_check.Case.%s;" (workload_name t.workload);
  line "rate = %s;" (float_lit t.rate);
  line "duration_ms = %d;" t.duration_ms;
  line "faults =";
  line "  [ %s ];"
    (String.concat ";\n    "
       (List.map
          (fun f ->
            Printf.sprintf "{ Jury_check.Case.at_ms = %d; action = %s }"
              f.at_ms (action_ocaml f.action))
          t.faults));
  line "drop = %s;" (float_lit t.drop);
  line "duplicate = %s;" (float_lit t.duplicate);
  line "jitter_us = %s;" (float_lit t.jitter_us);
  line "retries = %d;" t.retries;
  line "degraded_quorum = %s;" (option_lit string_of_int t.degraded_quorum);
  line "shards = %d;" t.shards;
  line "max_inflight = %s;" (option_lit string_of_int t.max_inflight);
  line "batch_us = %s;" (option_lit string_of_int t.batch_us);
  line "triggers = %d }" t.triggers;
  Buffer.contents b

let equal = ( = )
