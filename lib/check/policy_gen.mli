(** Fuzzed policy rule sets and queries, and the compiled-vs-
    interpreted differential check.

    The [policy] oracle family holds {!Jury_policy.Compiled} to its
    contract: verdict-for-verdict equivalence with the
    {!Jury_policy.Engine} interpreter — the semantics of record — on
    randomly drawn rule sets and queries. Everything derives from one
    integer seed through {!Gen}, so a failing comparison replays from
    the per-case seed like every other harness failure.

    Rule caches and query caches deliberately mix spellings of the
    same store names (["FLOWSDB"], ["flowsdb"], ["LinksDB"]…) so the
    normalisation both checkers promise is continuously exercised, and
    globs/subjects draw from a tiny alphabet so near-miss patterns are
    common. *)

val pattern_source : string Gen.t
(** Glob source text over a small alphabet with [*] and [?] tokens —
    shared with the [Pattern.matches] differential test. *)

val subject : string Gen.t
(** A string to match patterns against, from the same alphabet. *)

val rule : Jury_policy.Ast.rule Gen.t
(** One random rule (selectors, globs, flow checks, allow/deny). *)

val query : Jury_policy.Ast.query Gen.t
(** One random query, cache name in a random spelling; values are
    sometimes real FLOWSDB flow encodings so the flow checks exercise
    both arms. *)

val diff : ?rules:int -> ?queries:int -> seed:int -> unit -> string option
(** Draw a rule set (up to [rules], default 24) and a query batch (up
    to [queries], default 40) from [seed]; check every query under
    both {!Jury_policy.Engine.check} and {!Jury_policy.Compiled.check}
    — [Denied] verdicts must carry the {e physically} identical rule —
    then {!Jury_policy.Engine.add_rule} one more rule and re-check the
    batch against the recompiled view. [None] on agreement; [Some msg]
    describes the first disagreement. *)
