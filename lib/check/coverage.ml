module SS = Set.Make (String)

type t = SS.t

let empty = SS.empty
let features = SS.elements
let cardinal = SS.cardinal
let union = SS.union
let diff = SS.diff
let is_empty = SS.is_empty
let equal = SS.equal
let mem = SS.mem
let of_features = SS.of_list

(* Power-of-four bucketing keeps the feature space finite and coarse:
   a counter moving from 5 to 6 (or 15) is the same behaviour, 5 to
   50 is not. Coarse buckets deliberately under-reward smooth knob
   variation so categorical novelty (a verdict class, a fault kind, a
   phase) dominates admission. *)
let bucket n =
  let rec go n b = if n <= 1 then b else go (n / 4) (b + 1) in
  go n 0

let counter acc name n =
  if n <= 0 then acc
  else SS.add (Printf.sprintf "ctr:%s:b%d" name (bucket n)) acc

let fault_kind (a : Case.fault_action) =
  match a with
  | Case.Slow _ -> "slow"
  | Case.Lossy _ -> "lossy"
  | Case.Crash _ -> "crash"
  | Case.Drop_sends _ -> "drop-sends"
  | Case.Blackhole _ -> "blackhole"
  | Case.Lock_cache _ -> "lock-cache"
  | Case.Heal _ -> "heal"
  | Case.Rejoin _ -> "rejoin"
  | Case.Byzantine _ -> "byzantine"
  | Case.Partition _ -> "partition"
  | Case.Add_rule _ -> "add-rule"
  | Case.Fail_master _ -> "fail-master"

let verdict_class line =
  match String.split_on_char '|' line with
  | _ :: c :: _ -> c
  | _ -> "unparsed"

let of_run ?trace (case : Case.t) (o : Run.outcome) =
  let acc = ref SS.empty in
  let add f = acc := SS.add f !acc in
  (* Verdict-class histogram: which classes appeared, at what
     magnitude. *)
  let classes = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let c = verdict_class line in
      Hashtbl.replace classes c
        (1 + Option.value ~default:0 (Hashtbl.find_opt classes c)))
    o.Run.fp.Run.verdict_lines;
  Hashtbl.iter
    (fun c n ->
      add (Printf.sprintf "verdict:%s" c);
      add (Printf.sprintf "verdict:%s:b%d" c (bucket n)))
    classes;
  (* Oracle-relevant counters that moved. *)
  List.iter
    (fun (name, n) -> acc := counter !acc name n)
    [ ("decided", o.Run.fp.Run.decided);
      ("faults", o.Run.fp.Run.faults);
      ("unverifiable", o.Run.fp.Run.unverifiable);
      ("degraded", o.Run.fp.Run.degraded);
      ("overload", o.Run.fp.Run.overload);
      ("pending", o.Run.pending_after_flush);
      ("alarms", o.Run.alarm_count);
      ("duplicates", o.Run.duplicates);
      ("late", o.Run.late);
      ("retransmits", o.Run.retransmits);
      ("stragglers", o.Run.stragglers);
      ("batches", o.Run.batches);
      ("epoch", o.Run.epoch);
      ("channel-dropped", o.Run.totals.Jury.Channel.dropped);
      ("channel-duplicated", o.Run.totals.Jury.Channel.duplicated) ];
  (* Span phases the run visited (trace emission is passive, so
     reading them costs nothing in determinism). *)
  (match trace with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (ev : Jury_obs.Trace.event) ->
          match ev.Jury_obs.Trace.kind with
          | Jury_obs.Trace.Open p | Jury_obs.Trace.Point p ->
              add ("phase:" ^ Jury_obs.Trace.phase_name p)
          | Jury_obs.Trace.Close -> ())
        (Jury_obs.Trace.events tr));
  (* Fault interleavings: which levers ran, and in what adjacent
     order. *)
  let kinds =
    List.map (fun (f : Case.fault_event) -> fault_kind f.Case.action)
      (List.sort
         (fun (a : Case.fault_event) b -> compare a.Case.at_ms b.Case.at_ms)
         case.Case.faults)
  in
  List.iter (fun k -> add ("fault:" ^ k)) kinds;
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        add (Printf.sprintf "fault2:%s>%s" a b);
        pairs rest
    | _ -> []
  in
  ignore (pairs kinds);
  !acc
