(** Coverage-guided stateful fuzzing — the budget loop behind
    [jury_cli check --fuzz].

    The loop seeds a {!Corpus} with blind generator cases, then spends
    the remaining execution budget mutating corpus entries with
    {!Mutate} moves: each mutant runs once (with a {!Jury_obs.Trace}
    attached), its {!Coverage} features are extracted, the configured
    oracle battery is checked against the same outcome, and the mutant
    enters the corpus iff it exhibited a feature no earlier run did.

    Everything is deterministic in [(seed, budget)]: the same
    invocation reproduces the same corpus (ids, lineages and feature
    maps) run after run, and any single entry replays bit-identically
    from its printed lineage via {!Corpus.replay}. Because the mutation
    move set — not the blind generator — owns the stateful fault
    vocabulary (crash-rejoin, Byzantine, partition, policy churn),
    guided runs reach behaviours blind runs cannot, which is the whole
    point: the corpus's feature count strictly dominates an equal
    budget of blind cases. *)

type failure = {
  lineage : string;  (** replayable provenance of the failing mutant *)
  case : Case.t;
  violations : (Oracle.t * string) list;
  shrink : Shrink.outcome option;  (** [None] when [max_shrink = 0] *)
}

type summary = {
  executed : int;      (** primary executions spent (≤ budget) *)
  seed_cases : int;    (** blind cases used to seed the corpus *)
  corpus : Corpus.t;
  blind_features : int;
      (** corpus feature count right after seeding — the blind
          baseline the guided phase grows from *)
  failures : failure list;
}

val default_oracles : unit -> Oracle.t list
(** The cheap per-run families ([conservation], [channel], [obs]) —
    one execution plus a replay per case, no cross-run sweeps. *)

val repro : failure -> string
(** Standalone report: lineage, replay command, violated oracles and
    the (shrunk) case as a [test/repros] corpus entry. *)

val run :
  ?log:(string -> unit) ->
  ?oracles:Oracle.t list ->
  ?seed_cases:int ->
  ?max_shrink:int ->
  budget:int -> seed:int -> unit -> summary
(** Fuzz with [budget] primary executions from [seed]. [seed_cases]
    (default three quarters of the budget, capped at it) blind cases
    seed the corpus, so guided coverage starts from blind mode's own
    diversity;
    [oracles] defaults to {!default_oracles}; [max_shrink] (default 0,
    i.e. off) bounds shrink executions per failure. [log] receives
    progress lines, admissions and failure reports. *)

val blind_feature_count : cases:int -> seed:int -> unit -> int
(** Feature count of [cases] purely blind cases from [seed] — the
    comparison arm for guided-vs-blind coverage claims. *)
