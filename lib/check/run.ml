open Jury_sim
module Validator = Jury.Validator
module Injector = Jury_faults.Injector

type fingerprint = {
  decided : int;
  faults : int;
  unverifiable : int;
  degraded : int;
  overload : int;
  verdict_lines : string list;
  report : string;
}

type outcome = {
  fp : fingerprint;
  pending_after_flush : int;
  alarm_count : int;
  detection_count : int;
  duplicates : int;
  late : int;
  retransmits : int;
  stragglers : int;
  batches : int;
  batched_responses : int;
  shard_count : int;
  epoch : int;
  links : (string * Jury.Channel.stats) list;
  totals : Jury.Channel.stats;
  obs_decided : int;
  obs_batches : int;
  obs_overloads : int;
  obs_retransmits : int;
  obs_epoch : int;
  obs_channel_sent : int;
}

let verdict_line (a : Jury.Alarm.t) =
  Printf.sprintf "%s|%s|%s|%s|%d|%d"
    (Jury_controller.Types.Taint.to_string a.Jury.Alarm.taint)
    (Jury.Alarm.verdict_name a.Jury.Alarm.verdict)
    (match a.Jury.Alarm.primary with None -> "-" | Some p -> string_of_int p)
    (String.concat "," (List.map string_of_int a.Jury.Alarm.suspects))
    (Time.to_ns a.Jury.Alarm.trigger_at)
    (Time.to_ns a.Jury.Alarm.decided_at)

let fingerprint_of_validator v =
  let verdicts = Validator.verdicts v in
  { decided = Validator.decided_count v;
    faults = Validator.fault_count v;
    unverifiable = Validator.unverifiable_count v;
    degraded = Validator.degraded_count v;
    overload = Validator.overload_count v;
    verdict_lines = List.sort compare (List.map verdict_line verdicts);
    report = Jury.Report.to_string (Jury.Report.of_validator v) }

let fingerprint_equal a b = a = b

let diff_fingerprint a b =
  if a = b then None
  else if a.decided <> b.decided then
    Some (Printf.sprintf "decided %d vs %d" a.decided b.decided)
  else if a.faults <> b.faults then
    Some (Printf.sprintf "faults %d vs %d" a.faults b.faults)
  else if a.unverifiable <> b.unverifiable then
    Some
      (Printf.sprintf "unverifiable %d vs %d" a.unverifiable b.unverifiable)
  else if a.degraded <> b.degraded then
    Some (Printf.sprintf "degraded %d vs %d" a.degraded b.degraded)
  else if a.overload <> b.overload then
    Some (Printf.sprintf "overload %d vs %d" a.overload b.overload)
  else if a.verdict_lines <> b.verdict_lines then
    let rec first_diff i xs ys =
      match (xs, ys) with
      | x :: xs', y :: ys' ->
          if String.equal x y then first_diff (i + 1) xs' ys'
          else Some (Printf.sprintf "verdict[%d]: %S vs %S" i x y)
      | x :: _, [] -> Some (Printf.sprintf "extra verdict[%d]: %S" i x)
      | [], y :: _ -> Some (Printf.sprintf "missing verdict[%d]: %S" i y)
      | [], [] -> Some "verdict lists differ"
    in
    first_diff 0 a.verdict_lines b.verdict_lines
  else Some "reports differ"

(* --- schedule-blind projection ------------------------------------ *)

(* What a schedule may legitimately change: taint serials (assignment
   order of same-instant triggers) and per-trigger timings (pipeline
   queue order at equal timestamps shifts service start times). What it
   must never change: how many triggers were decided, and each
   trigger's verdict class, primary and suspect set. The projection
   keeps exactly the latter — the explorer's cross-schedule invariant
   ("no schedule loses a verdict or raises a false alarm") compares
   these. Serial-stripping collisions are harmless: two triggers that
   collapse to the same line were interchangeable anyway, and the
   multiset (sorted list) keeps their count. *)
let blind_line line =
  match String.split_on_char '|' line with
  | taint :: verdict :: primary :: suspects :: _times ->
      let taint_class =
        match String.rindex_opt taint ':' with
        | Some i -> String.sub taint 0 i ^ ":*"
        | None -> taint
      in
      String.concat "|" [ taint_class; verdict; primary; suspects ]
  | _ -> line

let schedule_blind fp =
  { fp with
    verdict_lines = List.sort compare (List.map blind_line fp.verdict_lines);
    report = "" }

let diff_schedule_blind a b = diff_fingerprint (schedule_blind a) (schedule_blind b)

let apply_fault deployment ~policies (action : Case.fault_action) =
  let cluster = Jury.Deployment.cluster deployment in
  let mutate node m =
    Jury_controller.Controller.set_mutator
      (Jury_controller.Cluster.controller cluster node)
      (Some m)
  in
  match action with
  | Case.Slow { node; delay_ms } ->
      Injector.make_slow cluster ~node ~delay:(Time.ms delay_ms)
  | Case.Lossy { node; omit } ->
      Injector.make_lossy cluster ~node ~omit_probability:omit
  | Case.Crash { node } -> Injector.crash cluster ~node
  | Case.Drop_sends { node } -> mutate node Injector.drop_network_sends
  | Case.Blackhole { node } -> mutate node Injector.blackhole_flow_mods
  | Case.Lock_cache { node; cache } -> Injector.lock_cache cluster ~node ~cache
  | Case.Heal { node } -> Injector.heal cluster ~node
  | Case.Rejoin { node } -> Injector.rejoin deployment ~node
  | Case.Byzantine { node } -> Injector.make_byzantine cluster ~node
  | Case.Partition { node } -> Injector.partition cluster ~node
  | Case.Add_rule { rule } -> (
      (* Policy churn: recompile-on-next-read happens inside the
         engine; an unparseable rule is dropped rather than aborting
         the run (mutators draw from a fixed vocabulary, so this only
         guards hand-written cases). *)
      match Jury_policy.Parse.dsl_line rule with
      | Ok ast -> Jury_policy.Engine.add_rule policies ast
      | Error _ -> ())
  | Case.Fail_master { node } ->
      (* Crash plus an explicit HA failover: the dead node's switches
         move to the survivors mid-run. Skipped when every other node
         has already been failed over (fail_over rejects a cluster with
         no survivors). *)
      Injector.crash cluster ~node;
      if
        List.exists
          (fun i -> i <> node)
          (Jury_controller.Cluster.alive_nodes cluster)
      then Jury_controller.Cluster.fail_over cluster ~node

let plan_of (case : Case.t) =
  match case.Case.topo with
  | Case.Linear ->
      Jury_topo.Builder.linear ~switches:case.Case.switches
        ~hosts_per_switch:case.Case.hosts_per_switch
  | Case.Ring ->
      Jury_topo.Builder.ring ~switches:case.Case.switches
        ~hosts_per_switch:case.Case.hosts_per_switch
  | Case.Star ->
      Jury_topo.Builder.star ~leaves:case.Case.switches
        ~hosts_per_leaf:case.Case.hosts_per_switch
  | Case.Single -> Jury_topo.Builder.single ~hosts:(max 2 case.Case.switches)

let run_workload (case : Case.t) network ~rng ~duration =
  match case.Case.workload with
  | Case.Mix ->
      Jury_workload.Flows.controlled_mix network ~rng
        ~packet_in_rate:case.Case.rate ~duration
  | Case.Connections ->
      Jury_workload.Flows.new_connections network ~rng ~rate:case.Case.rate
        ~duration ()
  | Case.Joins ->
      Jury_workload.Flows.host_joins network ~rng ~rate:case.Case.rate
        ~duration
  | Case.Blast ->
      let plan = Jury_net.Network.plan network in
      let slot = Jury_topo.Builder.find_host_slot plan 0 in
      Jury_workload.Cbench.blast network ~rng
        ~dpid:slot.Jury_topo.Builder.dpid ~burst:25 ~burst_gap:(Time.ms 10)
        ~duration

let metrics_sum metrics ~shards fmt =
  let total = ref 0 in
  for i = 0 to shards - 1 do
    total := !total + Metrics.count metrics (Printf.sprintf fmt i)
  done;
  !total

let execute ?chooser ?(deterministic = false) ?shards ?batch_us
    ?pipeline_jobs ?force_reliable ?trace (case : Case.t) =
  (* Every run gets its own policy engine so [Add_rule] fault events
     mutate run-local state; an empty engine is what [Case.jury_config]
     would have built anyway, so blind runs are unaffected. *)
  let policies = Jury_policy.Engine.create [] in
  let config =
    Case.jury_config ?shards ?batch_us ?pipeline_jobs ?force_reliable
      ~policies ~deterministic case
  in
  let engine = Engine.create ~seed:case.Case.case_seed () in
  Option.iter (fun tr -> Engine.set_trace engine tr) trace;
  Option.iter (fun c -> Engine.set_chooser engine (Some c)) chooser;
  let plan = plan_of case in
  let network = Jury_net.Network.create engine plan () in
  let profile =
    if case.Case.odl then Jury_controller.Profile.odl
    else Jury_controller.Profile.onos
  in
  let profile =
    if deterministic then Jury_controller.Profile.deterministic profile
    else profile
  in
  let cluster =
    Jury_controller.Cluster.create engine ~profile ~nodes:case.Case.nodes
      ~network ()
  in
  let deployment = Jury.Jury_config.install cluster config in
  let validator = Jury.Deployment.validator deployment in
  Jury_controller.Cluster.converge cluster;
  List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  let duration = Time.ms case.Case.duration_ms in
  let rng = Rng.split (Engine.rng engine) in
  run_workload case network ~rng ~duration;
  List.iter
    (fun (f : Case.fault_event) ->
      ignore
        (Engine.schedule engine ~after:(Time.ms f.Case.at_ms) (fun () ->
             apply_fault deployment ~policies f.Case.action)))
    case.Case.faults;
  (* Settle for two seconds past the workload window so every timer
     (validation timeouts, retransmissions, link recoveries) fires. *)
  Engine.run engine
    ~until:(Time.add (Engine.now engine) (Time.add duration (Time.sec 2)));
  Validator.flush validator;
  let links = Jury.Deployment.channel_stats deployment in
  let metrics = Metrics.create () in
  Jury.Obs_bridge.record_validator_shards validator metrics;
  Jury.Obs_bridge.record_channel_counters links metrics;
  let shard_count = Validator.shard_count validator in
  { fp = fingerprint_of_validator validator;
    pending_after_flush = Validator.pending_count validator;
    alarm_count = List.length (Validator.alarms validator);
    detection_count = Array.length (Validator.detection_times_ms validator);
    duplicates = Validator.duplicate_count validator;
    late = Validator.late_count validator;
    retransmits = Validator.retransmit_count validator;
    stragglers = Validator.straggler_count validator;
    batches = Validator.batch_count validator;
    batched_responses = Validator.batched_response_count validator;
    shard_count;
    epoch = Validator.current_epoch validator;
    links;
    totals = Jury.Deployment.channel_totals deployment;
    obs_decided =
      metrics_sum metrics ~shards:shard_count "validator/shard%d/decided";
    obs_batches =
      metrics_sum metrics ~shards:shard_count "validator/shard%d/batches";
    obs_overloads =
      metrics_sum metrics ~shards:shard_count "validator/shard%d/overloads";
    obs_retransmits =
      metrics_sum metrics ~shards:shard_count "validator/shard%d/retransmits";
    obs_epoch = Metrics.count metrics "validator/epoch";
    obs_channel_sent =
      List.fold_left
        (fun acc (name, _) ->
          acc + Metrics.count metrics ("channel/" ^ name ^ "/sent"))
        0 links }
