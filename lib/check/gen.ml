module Rng = Jury_sim.Rng

type 'a t = Rng.t -> 'a

let run ~seed g = g (Rng.create seed)
let return v _rng = v
let map f g rng = f (g rng)
let bind g f rng = f (g rng) rng
let int_in lo hi rng = Rng.int_in rng lo hi
let float_in lo hi rng = lo +. Rng.float rng (hi -. lo)
let bool rng = Rng.bool rng
let bernoulli p rng = Rng.bernoulli rng p

let choose xs rng =
  match xs with
  | [] -> invalid_arg "Gen.choose: empty list"
  | _ -> List.nth xs (Rng.int rng (List.length xs))

let oneof gs rng = (choose gs rng) rng

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
  let roll = Rng.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Gen.frequency: empty list"
    | (w, v) :: rest -> if roll < acc + w then v else pick (acc + w) rest
  in
  pick 0 weighted

let frequency_gen weighted rng = (frequency weighted rng) rng

(* Draw order is part of a case's identity, so build the list with an
   explicit left-to-right loop ([List.init]'s application order is
   unspecified). *)
let list_of ~len g rng =
  let n = len rng in
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (g rng :: acc) in
  go 0 []

let option p g rng = if Rng.bernoulli rng p then Some (g rng) else None
