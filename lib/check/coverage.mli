(** Deterministic behaviour features of a finished run — the guided
    fuzzer's notion of "did this mutant do something new?".

    A feature is a short string naming one observed behaviour:

    - [verdict:<class>] and [verdict:<class>:b<n>] — a verdict class
      appeared, and its count's power-of-two bucket;
    - [ctr:<name>:b<n>] — an oracle-relevant counter (retransmits,
      stragglers, overload retirements, channel drops, …) moved, with
      its magnitude bucket;
    - [phase:<name>] — a {!Jury_obs.Trace} span phase the run visited
      (only when a trace was attached to the execution);
    - [fault:<kind>] and [fault2:<a>><b>] — which fault levers the
      case ran, and their adjacent interleaving order.

    Extraction is a pure function of the case and the outcome (plus
    the optional trace), so equal runs yield equal feature sets — the
    fuzz determinism suite depends on exactly that. Buckets are
    power-of-two so the feature space stays finite and corpus growth
    converges. *)

type t

val empty : t
val of_run : ?trace:Jury_obs.Trace.t -> Case.t -> Run.outcome -> t
val features : t -> string list
(** Sorted. *)

val of_features : string list -> t
val cardinal : t -> int
val union : t -> t -> t

val diff : t -> t -> t
(** [diff a b]: features in [a] not in [b] — the novelty test. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val mem : string -> t -> bool
