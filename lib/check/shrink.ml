type outcome = {
  minimal : Case.t;
  failures : (Oracle.t * string) list;
  steps : int;
  shrunk : int;
}

let size (c : Case.t) =
  let opt = function None -> 0 | Some _ -> 1 in
  c.Case.switches + c.Case.hosts_per_switch + c.Case.nodes + c.Case.k
  + c.Case.triggers
  + (3 * List.length c.Case.faults)
  + (c.Case.duration_ms / 50)
  + (int_of_float c.Case.rate / 50)
  + (if c.Case.drop > 0. then 1 else 0)
  + (if c.Case.duplicate > 0. then 1 else 0)
  + (if c.Case.jitter_us > 0. then 1 else 0)
  + c.Case.retries
  + opt c.Case.degraded_quorum
  + opt c.Case.max_inflight
  + opt c.Case.batch_us
  + (if c.Case.odl then 1 else 0)
  + (if c.Case.topo = Case.Ring then 1 else 0)
  + (if c.Case.shards > 1 then 1 else 0)

(* Each axis proposes big jumps first (halving) so minimisation takes
   O(log) accepted steps per axis, then unit steps to polish. All
   record surgery goes through {!Case.Lens}, the axis surface shared
   with {!Mutate}: a lens [set] clamps to the axis's validity floor, so
   each proposal only has to pick the smaller value. *)
let candidates (c : Case.t) =
  let open Case in
  let set (a : _ Lens.axis) v = a.Lens.set c v in
  let proposals = ref [] in
  let add c' = proposals := c' :: !proposals in
  (* fault schedule: drop all, drop half, drop each one *)
  (match c.faults with
  | [] -> ()
  | faults ->
      add (set Lens.faults []);
      let n = List.length faults in
      if n > 1 then
        add (set Lens.faults (List.filteri (fun i _ -> i < n / 2) faults));
      List.iteri
        (fun i _ ->
          add (set Lens.faults (List.filteri (fun j _ -> j <> i) faults)))
        faults);
  (* trigger budget for the synthetic batching stream *)
  if c.triggers > 5 then add (set Lens.triggers (max 5 (c.triggers / 2)));
  if c.triggers > 5 then add (set Lens.triggers (c.triggers - 1));
  (* topology — the ring floor lives in the lens, the workloads' host
     floor is the cross-axis predicate no single lens can repair *)
  let add c' = if Lens.hosts_floor c' then add c' in
  let min_switches = Lens.min_switches c in
  if c.switches > min_switches then add (set Lens.switches (c.switches / 2));
  if c.switches > min_switches then add (set Lens.switches (c.switches - 1));
  if c.topo = Ring then add (set Lens.topo Linear);
  if c.hosts_per_switch > 1 && c.workload <> Blast then
    add (set Lens.hosts_per_switch 1);
  (* workload intensity *)
  if c.duration_ms > 100 then
    add (set Lens.duration_ms (max 100 (c.duration_ms / 2)));
  if c.rate > 50. then add (set Lens.rate (Float.max 50. (c.rate /. 2.)));
  (* cluster: the lenses keep k < nodes, the quorum <= k and every
     fault's node reference in range *)
  if c.nodes > 3 then add (set Lens.nodes (c.nodes - 1));
  if c.k > 1 then add (set Lens.k (c.k - 1));
  (* channel *)
  if c.drop > 0. || c.duplicate > 0. || c.jitter_us > 0. then
    add { c with drop = 0.; duplicate = 0.; jitter_us = 0. };
  if c.drop > 0. then add (set Lens.drop 0.);
  if c.duplicate > 0. then add (set Lens.duplicate 0.);
  if c.jitter_us > 0. then add (set Lens.jitter_us 0.);
  if c.retries > 0 then add (set Lens.retries 0);
  (* validator knobs *)
  if c.degraded_quorum <> None then add (set Lens.degraded_quorum None);
  if c.max_inflight <> None then add (set Lens.max_inflight None);
  if c.batch_us <> None then add (set Lens.batch_us None);
  if c.shards <> 1 then add (set Lens.shards 1);
  if c.odl then add (set Lens.odl false);
  (* keep only strict reductions, largest jumps first as inserted *)
  List.filter (fun c' -> size c' < size c) (List.rev !proposals)

let minimise ?(max_steps = 200) ~oracles case failures =
  if failures = [] then invalid_arg "Shrink.minimise: case does not fail";
  (* Only re-check the oracles that originally failed: cheaper, and the
     repro stays a witness of the reported violation rather than
     drifting onto an unrelated one. *)
  let watched =
    List.filter
      (fun (o : Oracle.t) ->
        List.exists (fun ((f : Oracle.t), _) -> f.Oracle.name = o.Oracle.name)
          failures)
      oracles
  in
  (* A candidate that merely crashes an oracle (rather than reproducing
     a genuine violation) is not a smaller witness — unless the
     original failure was itself a crash. *)
  let is_crash (_, msg) =
    String.length msg >= 13 && String.sub msg 0 13 = "oracle raised"
  in
  let crashes_count = List.exists is_crash failures in
  let steps = ref 0 and shrunk = ref 0 in
  let still_fails c =
    incr steps;
    let fs = Oracle.check_case ~oracles:watched c in
    if crashes_count then fs else List.filter (fun f -> not (is_crash f)) fs
  in
  let rec fixpoint current current_failures =
    let rec try_candidates = function
      | [] -> (current, current_failures)
      | _ when !steps >= max_steps -> (current, current_failures)
      | cand :: rest -> (
          match still_fails cand with
          | [] -> try_candidates rest
          | fs ->
              incr shrunk;
              fixpoint cand fs)
    in
    if !steps >= max_steps then (current, current_failures)
    else try_candidates (candidates current)
  in
  let minimal, failures = fixpoint case failures in
  { minimal; failures; steps = !steps; shrunk = !shrunk }
